// Command trinit-bench regenerates the paper's evaluation artefacts
// (experiments E1–E6) plus the ablation studies E7–E8; see DESIGN.md §4
// and EXPERIMENTS.md.
//
// Usage:
//
//	trinit-bench [-exp all|e1|...|e8] [-scale small|bench] [-queries 70] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"trinit/internal/dataset"
	"trinit/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, e1..e8")
	scale := flag.String("scale", "small", "world scale: small or bench")
	queries := flag.Int("queries", 70, "workload size (paper: 70)")
	seed := flag.Int64("seed", 1, "world seed")
	flag.Parse()

	cfg := dataset.DefaultConfig()
	if *scale == "bench" {
		cfg = dataset.BenchConfig()
	}
	cfg.Seed = *seed

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }

	var w *dataset.World
	world := func() *dataset.World {
		if w == nil {
			start := time.Now()
			w = dataset.Generate(cfg)
			fmt.Printf("generated synthetic world (%d people, %d KG facts, %d docs) in %v\n\n",
				cfg.People, w.KGSize(), len(w.Docs()), time.Since(start).Round(time.Millisecond))
		}
		return w
	}

	ran := false
	if want("e1") {
		ran = true
		fmt.Println(experiments.FormatE1(experiments.RunE1(world(), *queries, 10)))
	}
	if want("e2") {
		ran = true
		fmt.Println(experiments.FormatE2(experiments.RunE2(world()), 8))
	}
	if want("e3") {
		ran = true
		fmt.Println(experiments.FormatE3(experiments.RunE3()))
	}
	if want("e4") {
		ran = true
		fmt.Println(experiments.FormatE4(experiments.RunE4(world())))
	}
	if want("e5") {
		ran = true
		fmt.Println(experiments.FormatE5(experiments.RunE5(world(), min(*queries, 20), nil)))
		fmt.Println(experiments.FormatE5Depth(experiments.RunE5Depth(world(), min(*queries, 20), nil)))
		fmt.Println(experiments.FormatE5Kernels(experiments.RunE5Kernels(world(), min(*queries, 20), 10)))
	}
	if want("e6") {
		ran = true
		fmt.Println(experiments.FormatE6(experiments.RunE6(world())))
	}
	if want("e7") {
		ran = true
		fmt.Println(experiments.FormatE7(experiments.RunE7(world(), min(*queries, 30))))
	}
	if want("e8") {
		ran = true
		fmt.Println(experiments.FormatE8(experiments.RunE8(world(), min(*queries, 30))))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "trinit-bench: unknown experiment %q (use all, e1..e8)\n", *exp)
		os.Exit(2)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
