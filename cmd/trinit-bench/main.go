// Command trinit-bench regenerates the paper's evaluation artefacts
// (experiments E1–E6) plus the ablation studies E7–E8, the durability
// experiment E9 and the sharded-execution experiment E10; see DESIGN.md
// §4 and EXPERIMENTS.md.
//
// Usage:
//
//	trinit-bench [-exp all|e1|...|e10|e5,e9,e10] [-scale small|bench|benchxN] [-queries 70] [-seed 1] [-json BENCH_10.json]
//
// -scale benchxN multiplies the bench world's entity counts by N (e.g.
// benchx100 for a ~100× world) — the regime where zero-copy mapped
// segments pay off.
//
// -exp accepts a comma-separated list. With -json, the E5 efficiency
// metrics (main table, join-kernel ablation, token-matching ablation,
// serial-vs-parallel scheduling, each with ns/op) — plus the E9
// persistence rows when e9 runs and the E10 sharding rows when e10 runs
// — are additionally written as a machine-readable artifact, so CI runs
// accumulate a perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"trinit/internal/dataset"
	"trinit/internal/experiments"
)

// benchArtifact is the JSON shape written by -json.
type benchArtifact struct {
	Schema       string                    `json:"schema"`
	Scale        string                    `json:"scale"`
	Queries      int                       `json:"queries"`
	Seed         int64                     `json:"seed"`
	E5           []experiments.E5Row       `json:"e5"`
	E5Kernels    []experiments.E5KernelRow `json:"e5_kernels"`
	E5TokenMatch []experiments.E5TokenRow  `json:"e5_token_match"`
	// E5Parallel holds the serial-vs-parallel scheduler rows (ns/op and
	// speedup ratio per width) on the wide-rewrite workload.
	E5Parallel []experiments.E5ParallelRow `json:"e5_parallel"`
	// E5Block holds the block-vs-tuple join-execution rows (ns/op and
	// speedup ratio per kernel) on the wide-rewrite workload.
	E5Block []experiments.E5BlockRow `json:"e5_block"`
	// TokenMatchIndexScanRatio is baseline/resolved mean IndexScanned on
	// the token-pattern workload — the list-building reduction factor.
	TokenMatchIndexScanRatio float64 `json:"token_match_index_scan_ratio"`
	// Persist holds the E9 durability rows (snapshot write/load
	// wall-clock and bytes, delta-log throughput), present when e9 ran.
	Persist []experiments.E9PersistRow `json:"persist,omitempty"`
	// E10Shards holds the sharded scatter-gather rows (speedup vs
	// unsharded, skew, bound broadcasts, cross-shard prunes, residual
	// rewrites per N), present when e10 ran.
	E10Shards []experiments.E10ShardRow `json:"e10_shards,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiments to run: all, or a comma list of e1..e10")
	scale := flag.String("scale", "small", "world scale: small, bench, or benchxN for an N-times bench world")
	queries := flag.Int("queries", 70, "workload size (paper: 70)")
	seed := flag.Int64("seed", 1, "world seed")
	jsonPath := flag.String("json", "", "write E5 metrics to this file as JSON (requires e5 to run)")
	flag.Parse()

	cfg := dataset.DefaultConfig()
	switch {
	case *scale == "small":
	case *scale == "bench":
		cfg = dataset.BenchConfig()
	case strings.HasPrefix(*scale, "benchx"):
		factor, err := strconv.Atoi(strings.TrimPrefix(*scale, "benchx"))
		if err != nil || factor < 1 {
			fmt.Fprintf(os.Stderr, "trinit-bench: bad -scale %q (want benchxN with N >= 1)\n", *scale)
			os.Exit(2)
		}
		cfg = dataset.BenchConfig().Scaled(factor)
	default:
		fmt.Fprintf(os.Stderr, "trinit-bench: unknown -scale %q (use small, bench, or benchxN)\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			s = strings.TrimSpace(s)
			if s == "all" || strings.EqualFold(s, name) {
				return true
			}
		}
		return false
	}

	var w *dataset.World
	world := func() *dataset.World {
		if w == nil {
			start := time.Now()
			w = dataset.Generate(cfg)
			fmt.Printf("generated synthetic world (%d people, %d KG facts, %d docs) in %v\n\n",
				cfg.People, w.KGSize(), len(w.Docs()), time.Since(start).Round(time.Millisecond))
		}
		return w
	}

	ran := false
	var art *benchArtifact
	if want("e1") {
		ran = true
		fmt.Println(experiments.FormatE1(experiments.RunE1(world(), *queries, 10)))
	}
	if want("e2") {
		ran = true
		fmt.Println(experiments.FormatE2(experiments.RunE2(world()), 8))
	}
	if want("e3") {
		ran = true
		fmt.Println(experiments.FormatE3(experiments.RunE3()))
	}
	if want("e4") {
		ran = true
		fmt.Println(experiments.FormatE4(experiments.RunE4(world())))
	}
	if want("e5") {
		ran = true
		// E5 caps the workload at 20 queries; the artifact records the
		// effective size so runs stay comparable across -queries values.
		e5Queries := min(*queries, 20)
		e5 := experiments.RunE5(world(), e5Queries, nil)
		fmt.Println(experiments.FormatE5(e5))
		fmt.Println(experiments.FormatE5Depth(experiments.RunE5Depth(world(), e5Queries, nil)))
		kernels := experiments.RunE5Kernels(world(), e5Queries, 10)
		fmt.Println(experiments.FormatE5Kernels(kernels))
		tokens := experiments.RunE5TokenMatch(world(), e5Queries, 10)
		fmt.Println(experiments.FormatE5TokenMatch(tokens))
		parallel := experiments.RunE5Parallel(world(), e5Queries, 10, nil)
		fmt.Println(experiments.FormatE5Parallel(parallel))
		blocks := experiments.RunE5Blocks(world(), e5Queries, 10)
		fmt.Println(experiments.FormatE5Blocks(blocks))
		art = &benchArtifact{
			Schema:                   "trinit-bench/e5/v6",
			Scale:                    *scale,
			Queries:                  e5Queries,
			Seed:                     *seed,
			E5:                       e5,
			E5Kernels:                kernels,
			E5TokenMatch:             tokens,
			E5Parallel:               parallel,
			E5Block:                  blocks,
			TokenMatchIndexScanRatio: experiments.TokenMatchIndexScanRatio(tokens),
		}
	}
	if want("e6") {
		ran = true
		fmt.Println(experiments.FormatE6(experiments.RunE6(world())))
	}
	if want("e7") {
		ran = true
		fmt.Println(experiments.FormatE7(experiments.RunE7(world(), min(*queries, 30))))
	}
	if want("e8") {
		ran = true
		fmt.Println(experiments.FormatE8(experiments.RunE8(world(), min(*queries, 30))))
	}
	if want("e9") {
		ran = true
		// The default sizes top out at 1M triples regardless of -scale:
		// the store is synthesised directly, not from the world generator,
		// and the 1M row backs the "snapshot loads in seconds" claim.
		rows, err := experiments.RunE9Persist(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinit-bench: e9: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatE9Persist(rows))
		if art != nil {
			art.Persist = rows
		}
	}
	if want("e10") {
		ran = true
		rows := experiments.RunE10Shards(world(), min(*queries, 20), 10, nil)
		fmt.Println(experiments.FormatE10Shards(rows))
		if art != nil {
			art.E10Shards = rows
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "trinit-bench: unknown experiment %q (use all, or a comma list of e1..e10)\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if art == nil {
			fmt.Fprintf(os.Stderr, "trinit-bench: -json requires e5 to run (got -exp %s); no artifact written\n", *exp)
			os.Exit(2)
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinit-bench: marshal %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "trinit-bench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", *jsonPath)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
