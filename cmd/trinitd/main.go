// Command trinitd serves the TriniT demo over HTTP (§5 demonstration): a
// query interface with auto-completion, ranked answers with explanations,
// and a user-defined relaxation-rule editor.
//
// Usage:
//
//	trinitd [-addr :8080] [-synthetic] [-people N] [-seed S] [-data DIR] [-shards N] [-mmap=false] [-pprof localhost:6060]
//
// By default the server hosts the paper's worked example (Figures 1-4);
// with -synthetic it generates the synthetic world, builds the XKG from
// its corpus, and mines relaxation rules. With -data the engine is
// durable: the directory's checksummed snapshot is loaded and its
// write-ahead delta log replayed (or, on first run, the selected dataset
// is persisted into it), the listener answers probes while recovery
// runs, and rule edits made over the API survive a crash or restart.
// With -pprof, net/http/pprof is served on a separate address, so a
// production profile of the query pipeline (e.g. the parallel rewrite
// scheduler) is one `go tool pprof http://host:6060/debug/pprof/profile`
// away; it is off unless the flag is set, and never on the public
// listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only under -pprof
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"trinit"
	"trinit/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	synthetic := flag.Bool("synthetic", false, "serve the synthetic world instead of the paper demo")
	people := flag.Int("people", 120, "synthetic world size (people)")
	seed := flag.Int64("seed", 1, "synthetic world seed")
	load := flag.String("load", "", "serve a saved XKG (.tnt file) instead of demo/synthetic data")
	dataDir := flag.String("data", "", "durable data directory: recover its snapshot + delta log, or bootstrap it from the selected dataset on first run")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	maxInflight := flag.Int("max-inflight-cost", 4*runtime.GOMAXPROCS(0),
		"admission capacity: total evaluation weight (queries x parallelism) running concurrently; 0 disables admission")
	admissionQueue := flag.Int("admission-queue", 0,
		"admission wait-queue bound; beyond it queries are shed with 429 (0 = 4x capacity)")
	queryBudget := flag.Int64("query-budget", 0,
		"default per-query cost budget in join branches; exceeding it returns a partial result (0 = unlimited)")
	shards := flag.Int("shards", 1,
		"partition the store into N shards and scatter-gather queries across them (1 = unsharded)")
	mmap := flag.Bool("mmap", true,
		"serve the -data snapshot zero-copy from a memory-mapped segment when the file and host allow it (-mmap=false forces eager decode)")
	flag.Parse()

	engineOpts := &trinit.Options{NoMapSegments: !*mmap}

	if *pprofAddr != "" {
		// Profiling listens on its own address — the main listener never
		// exposes /debug/pprof — and uses DefaultServeMux, where the
		// net/http/pprof import registered its handlers. Same header
		// timeout as the public server (profile writes themselves may
		// legitimately stream for ~30s, so no write timeout); shutdown
		// is not graceful here, a dropped profile on SIGTERM is fine.
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			log.Printf("trinitd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil {
				log.Printf("trinitd: pprof listener: %v", err)
			}
		}()
	}

	// buildEngine assembles the in-memory dataset selected by flags —
	// the -data recovery path only runs it when the directory is empty
	// and needs bootstrapping.
	buildEngine := func() (*trinit.Engine, error) {
		if *load != "" {
			e, err := trinit.LoadFile(*load, nil)
			if err != nil {
				return nil, err
			}
			e.Freeze()
			return e, nil
		}
		if *synthetic {
			cfg := trinit.DefaultSyntheticConfig()
			cfg.People = *people
			cfg.Seed = *seed
			e, _, err := trinit.NewSyntheticEngine(cfg, 0)
			return e, err
		}
		return trinit.NewDemoEngine(), nil
	}

	// loadEngine produces the engine to serve. With -data it recovers the
	// directory (or bootstraps it on first run); without, it serves the
	// in-memory dataset directly.
	loadEngine := func() (*trinit.Engine, error) {
		if *dataDir == "" {
			return buildEngine()
		}
		if trinit.HasData(*dataDir) {
			e, info, err := trinit.Open(*dataDir, engineOpts)
			if err != nil {
				return nil, err
			}
			rebuilt := ""
			if info.IndexesRebuilt {
				rebuilt = ", indexes rebuilt"
			}
			torn := ""
			if info.TornBytes > 0 {
				torn = fmt.Sprintf(", %d torn tail bytes truncated", info.TornBytes)
			}
			residency := "decoded onto the heap"
			if info.Mapped {
				residency = fmt.Sprintf("mapped zero-copy (%d bytes)", info.MappedBytes)
			}
			log.Printf("trinitd: recovered %s: snapshot epoch %d (%d bytes%s) %s, %d delta records replayed (%d stale skipped%s) in %v",
				*dataDir, info.SnapshotEpoch, info.SnapshotBytes, rebuilt, residency,
				info.WALReplayed, info.WALSkipped, torn, info.LoadTime)
			return e, nil
		}
		e, err := buildEngine()
		if err != nil {
			return nil, err
		}
		if err := e.Persist(*dataDir); err != nil {
			return nil, err
		}
		log.Printf("trinitd: bootstrapped %s: snapshot written at epoch 1", *dataDir)
		return e, nil
	}

	// The listener comes up before recovery finishes: the server starts
	// in a loading state (probes answer, API traffic gets 503 +
	// Retry-After) and the engine is published when the data directory
	// has replayed.
	hs := server.NewLoading()
	var published atomic.Pointer[trinit.Engine]
	go func() {
		engine, err := loadEngine()
		if err != nil {
			log.Printf("trinitd: %v", err)
			os.Exit(1)
		}
		engine.SetAdmissionControl(*maxInflight, *admissionQueue)
		if *queryBudget > 0 {
			engine.SetDefaultBudget(trinit.Budget{JoinBranches: *queryBudget})
		}
		if *shards > 1 {
			// Degrade to unsharded rather than refuse to serve: the data
			// is identical either way, only the execution layout differs.
			if err := engine.Reshard(*shards); err != nil {
				log.Printf("trinitd: sharding disabled: %v", err)
			}
		}
		published.Store(engine)
		hs.Publish(engine)

		s := engine.Stats()
		log.Printf("trinitd: serving XKG with %d triples (%d KG + %d XKG), %d rules on %s",
			s.Triples, s.KGTriples, s.XKGTriples, s.Rules, *addr)
		if ms := engine.MemoryStats(); ms.Mapped {
			log.Printf("trinitd: base segment at epoch %d served from a %d-byte memory mapping; live ingest folds at checkpoint",
				ms.Epoch, ms.MappedBytes)
		}
		if *maxInflight > 0 {
			log.Printf("trinitd: admission capacity %d (queue %d), default budget %d join branches",
				*maxInflight, *admissionQueue, *queryBudget)
		}
		if ss := engine.ShardingStats(); ss.Shards > 0 {
			log.Printf("trinitd: sharded execution across %d shards: triples per shard %v (owned %v), %d replicated predicates, skew %.2f",
				ss.Shards, ss.Triples, ss.Owned, ss.ReplicatedPreds, ss.Skew)
		}
	}()

	// Request handlers pass r.Context() into QueryContext, so draining
	// a shutdown also cancels any query still joining when the drain
	// deadline closes the connection. WriteTimeout stays generous: the
	// SSE endpoint holds a response open for the lifetime of a query.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           hs,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "trinitd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("trinitd: shutting down (draining up to %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("trinitd: drain incomplete: %v", err)
			_ = srv.Close()
		}
	}
	// Release the write-ahead log after the drain so in-flight rule
	// edits finish logging first; surfaces any sticky durability error.
	if e := published.Load(); e != nil {
		if err := e.Close(); err != nil {
			log.Printf("trinitd: close: %v", err)
		}
	}
}
