// Command trinitd serves the TriniT demo over HTTP (§5 demonstration): a
// query interface with auto-completion, ranked answers with explanations,
// and a user-defined relaxation-rule editor.
//
// Usage:
//
//	trinitd [-addr :8080] [-synthetic] [-people N] [-seed S]
//
// By default the server hosts the paper's worked example (Figures 1-4);
// with -synthetic it generates the synthetic world, builds the XKG from
// its corpus, and mines relaxation rules.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"trinit"
	"trinit/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	synthetic := flag.Bool("synthetic", false, "serve the synthetic world instead of the paper demo")
	people := flag.Int("people", 120, "synthetic world size (people)")
	seed := flag.Int64("seed", 1, "synthetic world seed")
	load := flag.String("load", "", "serve a saved XKG (.tnt file) instead of demo/synthetic data")
	flag.Parse()

	var engine *trinit.Engine
	if *load != "" {
		e, err := trinit.LoadFile(*load, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinitd: %v\n", err)
			os.Exit(1)
		}
		e.Freeze()
		engine = e
	} else if *synthetic {
		cfg := trinit.DefaultSyntheticConfig()
		cfg.People = *people
		cfg.Seed = *seed
		e, _, err := trinit.NewSyntheticEngine(cfg, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinitd: %v\n", err)
			os.Exit(1)
		}
		engine = e
	} else {
		engine = trinit.NewDemoEngine()
	}

	s := engine.Stats()
	log.Printf("trinitd: serving XKG with %d triples (%d KG + %d XKG), %d rules on %s",
		s.Triples, s.KGTriples, s.XKGTriples, s.Rules, *addr)
	if err := http.ListenAndServe(*addr, server.New(engine)); err != nil {
		fmt.Fprintf(os.Stderr, "trinitd: %v\n", err)
		os.Exit(1)
	}
}
