// Command trinitd serves the TriniT demo over HTTP (§5 demonstration): a
// query interface with auto-completion, ranked answers with explanations,
// and a user-defined relaxation-rule editor.
//
// Usage:
//
//	trinitd [-addr :8080] [-synthetic] [-people N] [-seed S] [-pprof localhost:6060]
//
// By default the server hosts the paper's worked example (Figures 1-4);
// with -synthetic it generates the synthetic world, builds the XKG from
// its corpus, and mines relaxation rules. With -pprof, net/http/pprof is
// served on a separate address, so a production profile of the query
// pipeline (e.g. the parallel rewrite scheduler) is one
// `go tool pprof http://host:6060/debug/pprof/profile` away; it is off
// unless the flag is set, and never on the public listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only under -pprof
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"trinit"
	"trinit/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	synthetic := flag.Bool("synthetic", false, "serve the synthetic world instead of the paper demo")
	people := flag.Int("people", 120, "synthetic world size (people)")
	seed := flag.Int64("seed", 1, "synthetic world seed")
	load := flag.String("load", "", "serve a saved XKG (.tnt file) instead of demo/synthetic data")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	maxInflight := flag.Int("max-inflight-cost", 4*runtime.GOMAXPROCS(0),
		"admission capacity: total evaluation weight (queries x parallelism) running concurrently; 0 disables admission")
	admissionQueue := flag.Int("admission-queue", 0,
		"admission wait-queue bound; beyond it queries are shed with 429 (0 = 4x capacity)")
	queryBudget := flag.Int64("query-budget", 0,
		"default per-query cost budget in join branches; exceeding it returns a partial result (0 = unlimited)")
	flag.Parse()

	if *pprofAddr != "" {
		// Profiling listens on its own address — the main listener never
		// exposes /debug/pprof — and uses DefaultServeMux, where the
		// net/http/pprof import registered its handlers. Same header
		// timeout as the public server (profile writes themselves may
		// legitimately stream for ~30s, so no write timeout); shutdown
		// is not graceful here, a dropped profile on SIGTERM is fine.
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			log.Printf("trinitd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil {
				log.Printf("trinitd: pprof listener: %v", err)
			}
		}()
	}

	var engine *trinit.Engine
	if *load != "" {
		e, err := trinit.LoadFile(*load, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinitd: %v\n", err)
			os.Exit(1)
		}
		e.Freeze()
		engine = e
	} else if *synthetic {
		cfg := trinit.DefaultSyntheticConfig()
		cfg.People = *people
		cfg.Seed = *seed
		e, _, err := trinit.NewSyntheticEngine(cfg, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinitd: %v\n", err)
			os.Exit(1)
		}
		engine = e
	} else {
		engine = trinit.NewDemoEngine()
	}

	engine.SetAdmissionControl(*maxInflight, *admissionQueue)
	if *queryBudget > 0 {
		engine.SetDefaultBudget(trinit.Budget{JoinBranches: *queryBudget})
	}

	s := engine.Stats()
	log.Printf("trinitd: serving XKG with %d triples (%d KG + %d XKG), %d rules on %s",
		s.Triples, s.KGTriples, s.XKGTriples, s.Rules, *addr)
	if *maxInflight > 0 {
		log.Printf("trinitd: admission capacity %d (queue %d), default budget %d join branches",
			*maxInflight, *admissionQueue, *queryBudget)
	}

	// Request handlers pass r.Context() into QueryContext, so draining
	// a shutdown also cancels any query still joining when the drain
	// deadline closes the connection. WriteTimeout stays generous: the
	// SSE endpoint holds a response open for the lifetime of a query.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(engine),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "trinitd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("trinitd: shutting down (draining up to %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("trinitd: drain incomplete: %v", err)
			_ = srv.Close()
		}
	}
}
