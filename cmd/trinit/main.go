// Command trinit is an interactive REPL for exploratory querying of an
// extended knowledge graph.
//
// Usage:
//
//	trinit [-synthetic] [-people N] [-seed S]
//
// Enter triple-pattern queries directly; dot-commands control the session:
//
//	.help                      show commands
//	.stats                     XKG statistics
//	.rules                     list relaxation rules
//	.rule <id> <w> <rule...>   add a manual rule, e.g.
//	                           .rule r9 0.7 ?x affiliation ?y => ?x 'lectured at' ?y
//	.complete <prefix>         auto-complete a resource or phrase
//	.explain <n>               explain answer n of the last result
//	.save <path>               persist the XKG and rules: a checksummed
//	                           binary snapshot, or the TNT text format
//	                           when the path ends in .tnt
//	.load <path>               replace the session with a saved snapshot
//	.quit                      exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"trinit"
)

func main() {
	synthetic := flag.Bool("synthetic", false, "load the synthetic world instead of the paper demo")
	people := flag.Int("people", 120, "synthetic world size (people)")
	seed := flag.Int64("seed", 1, "synthetic world seed")
	load := flag.String("load", "", "load a saved XKG (.tnt file) instead of demo/synthetic data")
	flag.Parse()

	var engine *trinit.Engine
	if *load != "" {
		e, err := trinit.LoadFile(*load, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinit: %v\n", err)
			os.Exit(1)
		}
		e.Freeze()
		engine = e
	} else if *synthetic {
		cfg := trinit.DefaultSyntheticConfig()
		cfg.People = *people
		cfg.Seed = *seed
		e, _, err := trinit.NewSyntheticEngine(cfg, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinit: %v\n", err)
			os.Exit(1)
		}
		engine = e
	} else {
		engine = trinit.NewDemoEngine()
	}

	runREPL(engine, os.Stdin, os.Stdout)
}

// runREPL drives the interactive session; separated from main so the
// command logic is testable with scripted input.
func runREPL(engine *trinit.Engine, in io.Reader, out io.Writer) {
	st := engine.Stats()
	fmt.Fprintf(out, "TriniT REPL — %d triples (%d KG, %d XKG), %d rules. Type .help for commands.\n",
		st.Triples, st.KGTriples, st.XKGTriples, st.Rules)

	var last *trinit.Result
	scanner := bufio.NewScanner(in)
	fmt.Fprint(out, "trinit> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Fprintln(out, "queries: triple patterns, e.g.  AlbertEinstein affiliation ?x ; ?x member IvyLeague")
			fmt.Fprintln(out, "commands: .ask <question> .watch <query> .stats .serving .shards [n] .rules .rule <id> <w> <rule> .complete <prefix> .explain <n> .trace .save <path> .load <path> .quit")
		case line == ".stats":
			s := engine.Stats()
			fmt.Fprintf(out, "triples=%d (KG %d, XKG %d) terms=%d predicates=%d (%d token) rules=%d\n",
				s.Triples, s.KGTriples, s.XKGTriples, s.Terms, s.Predicates, s.TokenPreds, s.Rules)
		case line == ".serving":
			sv := engine.ServingStats()
			fmt.Fprintf(out, "queries=%d in_flight=%d shed=%d budget_exhausted=%d panics_recovered=%d\n",
				sv.QueriesTotal, sv.InFlight, sv.QueriesShed, sv.BudgetExhausted, sv.PanicsRecovered)
			a := sv.Admission
			if a.Capacity == 0 {
				fmt.Fprintln(out, "admission: disabled")
			} else {
				fmt.Fprintf(out, "admission: capacity=%d in_use=%d queued=%d admitted=%d avg_wait=%s\n",
					a.Capacity, a.InUse, a.Queued, a.Admitted, a.AvgWait)
			}
		case line == ".shards" || strings.HasPrefix(line, ".shards "):
			// .shards prints the sharded-execution state; .shards <n>
			// repartitions the frozen store in place (1 = unsharded).
			if arg := strings.TrimSpace(strings.TrimPrefix(line, ".shards")); arg != "" {
				n, err := strconv.Atoi(arg)
				if err != nil || n < 1 {
					fmt.Fprintln(out, "usage: .shards [n>=1]")
					break
				}
				if err := engine.Reshard(n); err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
					break
				}
			}
			ss := engine.ShardingStats()
			if ss.Shards == 0 {
				fmt.Fprintln(out, "sharding: off (single store; .shards <n> to partition)")
				break
			}
			fmt.Fprintf(out, "sharding: %d shards, skew %.2f, %d replicated predicates (%d triples copied)\n",
				ss.Shards, ss.Skew, ss.ReplicatedPreds, ss.ReplicatedTriples)
			for j := range ss.Triples {
				fmt.Fprintf(out, "  shard %d: %d triples (%d owned)\n", j, ss.Triples[j], ss.Owned[j])
			}
			fmt.Fprintf(out, "  queries=%d bound_broadcasts=%d cross_shard_prunes=%d residual_rewrites=%d merge=%s\n",
				ss.ShardedQueries, ss.BoundBroadcasts, ss.CrossShardPrunes, ss.ResidualRewrites, ss.MergeTime)
		case line == ".rules":
			for _, r := range engine.Rules() {
				fmt.Fprintf(out, "  %-24s %s\n", r.ID, r.Rule)
			}
		case strings.HasPrefix(line, ".rule "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				fmt.Fprintln(out, "usage: .rule <id> <weight> <rule>")
				break
			}
			w, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				fmt.Fprintf(out, "bad weight: %v\n", err)
				break
			}
			if err := engine.AddRule(parts[1], parts[3], w); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else {
				fmt.Fprintln(out, "rule added")
			}
		case line == ".trace":
			if last == nil {
				fmt.Fprintln(out, "no previous result")
				break
			}
			for _, tr := range last.Trace {
				fmt.Fprintf(out, "  w=%.2f %-24s answers=%d matches=%v rules=%v\n     %s\n",
					tr.Weight, tr.Status, tr.Answers, tr.PatternMatches, tr.Rules, tr.Query)
			}
		case strings.HasPrefix(line, ".watch "):
			// Progressive output: provisional answers print the moment
			// the incremental processor admits them into its top-k,
			// before the final ranking is known.
			qtext := strings.TrimSpace(strings.TrimPrefix(line, ".watch"))
			res, err := engine.QueryStream(context.Background(), qtext, func(ev trinit.AnswerEvent) error {
				if ev.Type == trinit.EventProvisional {
					fmt.Fprintf(out, "  ~ %-50s score %.4f\n", bindingsLine(ev.Answer.Bindings), ev.Answer.Score)
				}
				return nil
			})
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				break
			}
			fmt.Fprintln(out, "final ranking:")
			last = res
			printResult(out, res)
		case strings.HasPrefix(line, ".ask "):
			question := strings.TrimSpace(strings.TrimPrefix(line, ".ask"))
			res, translated, err := engine.Ask(question)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				break
			}
			fmt.Fprintf(out, "translated: %s\n", translated)
			last = res
			printResult(out, res)
		case strings.HasPrefix(line, ".save "):
			// .tnt keeps the line-oriented text format; any other path gets
			// the checksummed binary segment snapshot (see .load).
			path := strings.TrimSpace(strings.TrimPrefix(line, ".save"))
			var err error
			if strings.HasSuffix(path, ".tnt") {
				err = engine.SaveFile(path)
			} else {
				err = engine.SaveSnapshot(path)
			}
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else {
				fmt.Fprintf(out, "saved XKG and rules to %s\n", path)
			}
		case strings.HasPrefix(line, ".load "):
			path := strings.TrimSpace(strings.TrimPrefix(line, ".load"))
			e, err := trinit.LoadSnapshot(path, nil)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				break
			}
			engine, last = e, nil
			s := engine.Stats()
			residency := ""
			if ms := engine.MemoryStats(); ms.Mapped {
				residency = fmt.Sprintf(", served zero-copy from a %d-byte mapping", ms.MappedBytes)
			}
			fmt.Fprintf(out, "loaded snapshot %s: %d triples (%d KG, %d XKG), %d rules%s\n",
				path, s.Triples, s.KGTriples, s.XKGTriples, s.Rules, residency)
		case strings.HasPrefix(line, ".complete "):
			prefix := strings.TrimSpace(strings.TrimPrefix(line, ".complete"))
			for _, c := range engine.Complete(prefix, 10) {
				fmt.Fprintf(out, "  %s\n", c.Text)
			}
		case strings.HasPrefix(line, ".explain "):
			if last == nil {
				fmt.Fprintln(out, "no previous result")
				break
			}
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".explain")))
			if err != nil || n < 1 || n > len(last.Answers) {
				fmt.Fprintf(out, "usage: .explain <1..%d>\n", len(last.Answers))
				break
			}
			fmt.Fprint(out, last.Answers[n-1].Explanation.Text)
		case strings.HasPrefix(line, "."):
			fmt.Fprintln(out, "unknown command; try .help")
		default:
			res, err := engine.Query(line)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				break
			}
			last = res
			printResult(out, res)
		}
		fmt.Fprint(out, "trinit> ")
	}
}

// bindingsLine renders bindings with sorted variable names, so output
// is deterministic across runs (map iteration order is not).
func bindingsLine(b map[string]string) string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprintf("?%s = %s", v, b[v])
	}
	return strings.Join(parts, ", ")
}

func printResult(out io.Writer, res *trinit.Result) {
	if res.Partial {
		fmt.Fprintln(out, "(partial result: the query was cut short before completion)")
	}
	for _, n := range res.Notices {
		fmt.Fprintf(out, "note: %s\n", n.Message)
	}
	for _, s := range res.Suggestions {
		fmt.Fprintf(out, "suggestion: replace '%s' (%s) with %s (overlap %.2f)\n",
			s.Token, s.Position, s.Resource, s.Overlap)
	}
	if len(res.Answers) == 0 {
		fmt.Fprintln(out, "no answers")
		return
	}
	for i, a := range res.Answers {
		fmt.Fprintf(out, "%2d. %-50s score %.4f\n", i+1, bindingsLine(a.Bindings), a.Score)
	}
	fmt.Fprintf(out, "(%d rewrites considered, %d evaluated, %d accesses, %d join branches, %d hash probes, %d semi-join drops, %d blocks emitted, %d block rows filtered, %d index entries scanned, %d token resolutions, %d scan fallbacks; .explain <n> for provenance)\n",
		res.Metrics.RewritesTotal, res.Metrics.RewritesEvaluated, res.Metrics.SortedAccesses,
		res.Metrics.JoinBranches, res.Metrics.HashProbes, res.Metrics.SemiJoinDropped,
		res.Metrics.BlocksEmitted, res.Metrics.BlockRowsFiltered,
		res.Metrics.IndexScanned, res.Metrics.TokenResolutions, res.Metrics.ScanFallbacks)
}
