package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"trinit"
)

// session runs the REPL over scripted input and returns the transcript.
func session(t *testing.T, input string) string {
	t.Helper()
	var out bytes.Buffer
	runREPL(trinit.NewDemoEngine(), strings.NewReader(input), &out)
	return out.String()
}

func TestREPLQueryAndExplain(t *testing.T) {
	out := session(t, "AlbertEinstein hasAdvisor ?x\n.explain 1\n.quit\n")
	for _, want := range []string{
		"AlfredKleiner",
		"score 1.0000",
		"relaxations invoked",
		"fig4-2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestREPLHelpStatsRules(t *testing.T) {
	out := session(t, ".help\n.stats\n.rules\n.quit\n")
	for _, want := range []string{
		"commands:",
		"triples=12 (KG 8, XKG 4)",
		"fig4-1",
		"fig4-4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestREPLWatchStreamsProgressively(t *testing.T) {
	out := session(t, ".watch AlbertEinstein hasAdvisor ?x\n.quit\n")
	if !strings.Contains(out, "~") {
		t.Errorf("no provisional line in watch output:\n%s", out)
	}
	if !strings.Contains(out, "final ranking:") {
		t.Errorf("no final ranking in watch output:\n%s", out)
	}
	if !strings.Contains(out, "AlfredKleiner") {
		t.Errorf("watch missed the answer:\n%s", out)
	}
	idx := strings.Index(out, "~")
	if fin := strings.Index(out, "final ranking:"); fin >= 0 && idx >= 0 && fin < idx {
		t.Errorf("final ranking printed before provisional answers:\n%s", out)
	}
}

func TestREPLAddRuleAndUse(t *testing.T) {
	out := session(t, ".rule basedin 0.9 ?x basedIn ?y => ?x 'housed in' ?y\nIAS basedIn ?x\n.quit\n")
	if !strings.Contains(out, "rule added") {
		t.Fatalf("rule not added:\n%s", out)
	}
	if !strings.Contains(out, "PrincetonUniversity") {
		t.Errorf("user rule did not produce answers:\n%s", out)
	}
}

func TestREPLAsk(t *testing.T) {
	out := session(t, ".ask Who was the advisor of Albert Einstein?\n.quit\n")
	if !strings.Contains(out, "translated: AlbertEinstein hasAdvisor ?a") {
		t.Errorf("translation missing:\n%s", out)
	}
	if !strings.Contains(out, "AlfredKleiner") {
		t.Errorf("answer missing:\n%s", out)
	}
}

func TestREPLTrace(t *testing.T) {
	out := session(t, ".trace\nAlbertEinstein hasAdvisor ?x\n.trace\n.quit\n")
	if !strings.Contains(out, "no previous result") {
		t.Errorf("trace before query should say so:\n%s", out)
	}
	if !strings.Contains(out, "no matches") || !strings.Contains(out, "evaluated") {
		t.Errorf("trace output missing statuses:\n%s", out)
	}
}

func TestREPLComplete(t *testing.T) {
	out := session(t, ".complete Albert\n.quit\n")
	if !strings.Contains(out, "AlbertEinstein") {
		t.Errorf("completion missing:\n%s", out)
	}
}

func TestREPLErrors(t *testing.T) {
	out := session(t, ".bogus\nbroken ' query\n.rule incomplete\n.rule x notanumber ?a p ?b => ?a q ?b\n.explain 1\n.quit\n")
	for _, want := range []string{
		"unknown command",
		"error: query parse error",
		"usage: .rule",
		"bad weight",
		"no previous result",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestREPLSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.tnt")
	out := session(t, ".save "+path+"\n.quit\n")
	if !strings.Contains(out, "saved XKG and rules") {
		t.Fatalf("save failed:\n%s", out)
	}
	e, err := trinit.LoadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Freeze()
	if e.Stats().Triples != 12 {
		t.Fatalf("saved file triples = %d", e.Stats().Triples)
	}
}

// TestREPLSnapshotSaveLoad: .save without a .tnt suffix writes the
// binary segment snapshot, and .load swaps the session onto it —
// queries keep answering against the reloaded store.
func TestREPLSnapshotSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.snap")
	out := session(t, ".save "+path+"\n.load "+path+"\nAlbertEinstein hasAdvisor ?x\n.quit\n")
	if !strings.Contains(out, "saved XKG and rules") {
		t.Fatalf("save failed:\n%s", out)
	}
	if !strings.Contains(out, "loaded snapshot") || !strings.Contains(out, "12 triples") {
		t.Fatalf("load failed:\n%s", out)
	}
	if !strings.Contains(out, "AlfredKleiner") {
		t.Errorf("query against reloaded snapshot missed the answer:\n%s", out)
	}
}

// TestREPLShards: .shards reports the off state, .shards <n> partitions
// the demo store in place, queries still answer (through the
// coordinator), and .shards 1 returns to the single-store pipeline.
func TestREPLShards(t *testing.T) {
	out := session(t, ".shards\n.shards 2\nAlbertEinstein hasAdvisor ?x\n.shards 1\n.shards bogus\n.quit\n")
	for _, want := range []string{
		"sharding: off",
		"sharding: 2 shards",
		"shard 0:",
		"shard 1:",
		"AlfredKleiner",
		"usage: .shards",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestREPLEOFExits(t *testing.T) {
	// No .quit: the loop must end at EOF without hanging.
	out := session(t, ".stats\n")
	if !strings.Contains(out, "triples=12") {
		t.Errorf("transcript: %s", out)
	}
}
