// Package trinit is a Go implementation of TriniT, the system for
// exploratory querying of extended knowledge graphs demonstrated in
//
//	M. Yahya, K. Berberich, M. Ramanath, G. Weikum:
//	"Exploratory Querying of Extended Knowledge Graphs", PVLDB 9(13), 2016.
//
// TriniT addresses two pain points of querying knowledge graphs: users do
// not know the KG's vocabulary and structure, and the KG itself is
// incomplete. It extends the KG with token triples mined from text by Open
// Information Extraction (the XKG), supports triple-pattern queries whose
// slots may hold textual tokens, applies weighted query-relaxation rules,
// ranks answers with a query-likelihood model, and explains every answer.
//
// The Engine is the entry point:
//
//	e := trinit.New(nil)
//	e.AddKGFact("AlbertEinstein", "bornIn", "Ulm")
//	e.ExtendFromDocuments([]trinit.Document{{ID: "d1", Text: "..."}})
//	e.Freeze()
//	e.MineRules(trinit.DefaultMiningConfig())
//	res, err := e.Query("?x bornIn Germany LIMIT 5")
package trinit

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trinit/internal/admission"
	"trinit/internal/dataset"
	"trinit/internal/explain"
	"trinit/internal/ned"
	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/serial"
	"trinit/internal/shard"
	"trinit/internal/store"
	"trinit/internal/suggest"
	"trinit/internal/topk"
	"trinit/internal/xkg"
)

// Sentinel errors of the public API. Errors returned by the Engine wrap
// these, so callers dispatch with errors.Is instead of matching strings
// — and the server maps them to proper HTTP status codes.
var (
	// ErrNotFrozen reports a query-side call on an engine that has not
	// been frozen yet (call Freeze first).
	ErrNotFrozen = errors.New("trinit: engine is not frozen")
	// ErrFrozen reports a mutation of graph data after Freeze.
	ErrFrozen = errors.New("trinit: engine is frozen")
	// ErrParse reports a malformed query (or an untranslatable
	// question); the wrapped error carries the parse detail.
	ErrParse = errors.New("trinit: parse error")
	// ErrCanceled reports a query cut short by context cancellation or
	// deadline expiry. The returned Result is still valid: it carries
	// the answers found so far and Result.Partial is true. The wrapped
	// chain includes the context error, so errors.Is(err,
	// context.DeadlineExceeded) distinguishes timeouts from cancels.
	ErrCanceled = errors.New("trinit: query canceled")
	// ErrBudgetExhausted reports a query cut short by its cost budget
	// (WithBudget or Options.DefaultBudget). The returned Result is
	// still valid: Result.Partial is true and Answers holds a sound
	// partial top-k — every answer is real, its score a lower bound on
	// the unbudgeted score.
	ErrBudgetExhausted = errors.New("trinit: query budget exhausted")
	// ErrOverloaded reports a query shed by admission control: the wait
	// queue was full, or the request's deadline was predicted unmeetable
	// given the current queue. No evaluation work was done; the server
	// maps this to 429 with a Retry-After hint.
	ErrOverloaded = errors.New("trinit: engine overloaded")
	// ErrInternal reports an evaluation panic that was recovered at the
	// query or worker boundary. The engine stays serviceable; the
	// returned Result carries any answers found before the panic and a
	// "panic" trace entry with the captured stack.
	ErrInternal = errors.New("trinit: internal query error")
)

// Options configure an Engine.
type Options struct {
	// K is the default number of answers per query (queries may lower
	// it with LIMIT). Default 10.
	K int
	// MaxRelaxationDepth bounds rule applications per derivation
	// (default 2).
	MaxRelaxationDepth int
	// MaxRewrites bounds the rewrite space per query (default 64).
	MaxRewrites int
	// MinRewriteWeight prunes derivations below this weight (default
	// 0.05).
	MinRewriteWeight float64
	// MinTokenSimilarity is the threshold for textual token slots to
	// match a term (default 0.34).
	MinTokenSimilarity float64
	// Exhaustive disables the incremental top-k optimisations; answers
	// are identical, work is not. Meant for baselines and testing.
	Exhaustive bool
	// MatchCacheSize caps the engine's shared match-list cache, in
	// pattern entries (default 4096). Least-recently-used lists are
	// evicted beyond the cap.
	MatchCacheSize int
	// NoPlanner disables join planning; match lists are built and
	// joined in query-text pattern order (a naive baseline — even
	// below the pre-planner engine, which sorted joins by exact list
	// length). Answers are identical, work is not. Meant for
	// baselines and testing.
	NoPlanner bool
	// NoHashJoin disables the hash-indexed join kernel: joins fall back
	// to scanning every entry of every match list in exact-list-length
	// order, without semi-join reduction (the pre-hash-join kernel).
	// Answers are identical, work is not. Meant for baselines and
	// testing.
	NoHashJoin bool
	// NoSemiJoin keeps hash-index probing but disables the semi-join
	// reduction pass. Answers are identical, work is not. Meant for
	// ablations.
	NoSemiJoin bool
	// NoBlockJoin disables block-at-a-time join execution: joins fall
	// back to the tuple-at-a-time backtracking kernel (still
	// hash-probed and semi-join-reduced unless those are also
	// disabled). Answers are identical, work is not. Meant for
	// ablations.
	NoBlockJoin bool
	// NoTokenIndex disables inverted-index token resolution in the
	// pattern matcher: textual token slots fall back to scanning the
	// wildcard permutation range and similarity-testing every triple
	// (the pre-token-resolution list builder). Answers are identical,
	// work is not. Meant for baselines and testing.
	NoTokenIndex bool
	// Parallelism is the default number of workers each query may use
	// to evaluate its rewrite space concurrently (overridable per query
	// with WithParallelism). 0 or 1 keeps the serial schedule — the
	// default, best for engines already saturated by concurrent
	// queries; values > 1 use that many workers per query; negative
	// values use one worker per logical CPU. Answers are byte-identical
	// at every setting.
	Parallelism int
	// AdmissionCapacity enables admission control: the total evaluation
	// weight (queries × their effective parallelism) allowed to run
	// concurrently. 0 disables admission — every query runs
	// immediately, the pre-admission behaviour. Adjustable after
	// construction with SetAdmissionControl.
	AdmissionCapacity int
	// AdmissionQueue bounds the admission wait queue (queries holding
	// for capacity). 0 defaults to 4× AdmissionCapacity; beyond the
	// bound, arrivals are shed with ErrOverloaded. Ignored without
	// AdmissionCapacity.
	AdmissionQueue int
	// DefaultBudget caps the evaluation work of every query that does
	// not set its own WithBudget. The zero value is unlimited.
	// Adjustable after construction with SetDefaultBudget.
	DefaultBudget Budget
	// Shards splits the frozen store into that many subject-hashed
	// partitions evaluated by a scatter-gather coordinator (see package
	// internal/shard and README "Sharded execution"). 0 or 1 keeps the
	// classic single-store pipeline. Rankings are byte-identical at
	// every shard count; shards exchange their running k-th-score bound
	// so incremental pruning keeps working across the split. Overridable
	// per query with WithoutSharding.
	Shards int
	// ShardReplicateFactor tunes which predicates the partitioner
	// replicates to every shard for join co-location (see
	// shard.PartitionOptions.ReplicateFactor): 0 uses the default,
	// negative disables replication. Ignored without Shards > 1.
	ShardReplicateFactor int
	// CompactAfter triggers a background compaction (fold of the
	// live-ingest delta into the base store, see Compact) once the delta
	// holds at least that many triples. 0 disables auto-compaction:
	// deltas grow until an explicit Compact or Checkpoint.
	CompactAfter int
	// NoMapSegments forces Open and LoadSnapshot to decode snapshot
	// segments eagerly onto the heap instead of memory-mapping them.
	// Answers are identical; open time and resident memory are not.
	NoMapSegments bool
}

// WithShards returns Options running the engine's queries over n
// subject-hashed shards — convenience for trinit.New(trinit.WithShards(4)).
func WithShards(n int) *Options {
	return &Options{Shards: n}
}

// Budget caps the evaluation work of one query: join branches explored,
// hash buckets probed, frontier blocks emitted. Zero fields are
// unlimited. A query that spends its budget stops at the processor's
// next poll point and returns the answers found so far with
// Result.Partial set and an error wrapping ErrBudgetExhausted.
type Budget = topk.Budget

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.K <= 0 {
		out.K = 10
	}
	if out.MaxRelaxationDepth <= 0 {
		out.MaxRelaxationDepth = 2
	}
	if out.MaxRewrites <= 0 {
		out.MaxRewrites = 64
	}
	if out.MinRewriteWeight <= 0 {
		out.MinRewriteWeight = 0.05
	}
	return out
}

// Document is one text input to XKG construction.
type Document struct {
	// ID identifies the document in answer provenance.
	ID string
	// Text is the document body.
	Text string
}

// ExtendConfig controls XKG construction from documents.
type ExtendConfig struct {
	// MinConfidence drops extractions below this extractor confidence.
	MinConfidence float64
	// MinRelationPairs applies ReVerb's lexical filter: relation
	// phrases with fewer distinct argument pairs are dropped (<2
	// disables).
	MinRelationPairs int
	// DisableEntityLinking keeps all argument phrases as raw tokens.
	DisableEntityLinking bool
}

// DefaultExtendConfig mirrors xkg.DefaultOptions.
func DefaultExtendConfig() ExtendConfig {
	return ExtendConfig{MinConfidence: 0.3, MinRelationPairs: 1}
}

// ExtendStats reports what XKG construction did.
type ExtendStats struct {
	Documents      int
	Sentences      int
	Extractions    int
	Kept           int
	LinkedSubjects int
	LinkedObjects  int
	TriplesAdded   int
}

// MiningConfig controls relaxation-rule mining.
type MiningConfig struct {
	// MinSupport is the minimum args-intersection size (default 2).
	MinSupport int
	// MinWeight drops rules below this weight (default 0.1).
	MinWeight float64
	// MaxRules caps the mined rule count (0 = unbounded).
	MaxRules int
	// DisableInversion skips predicate-inversion rules.
	DisableInversion bool
	// ContainmentPredicates are used for composition rules (Figure 4
	// rule 1 shape); default: locatedIn, partOf, memberOf.
	ContainmentPredicates []string
	// HornRules additionally mines AMIE-style chain rules
	// p(x,y) ⇐ q(x,z) ∧ r(z,y), weighted by PCA confidence (§3 cites
	// AMIE as a rule source).
	HornRules bool
	// Paraphrases additionally derives rules from a built-in
	// PATTY-style paraphrase repository (§3 cites paraphrase
	// repositories as a rule source).
	Paraphrases bool
	// Relatedness additionally derives rules from predicate-label
	// similarity (§3 cites semantic relatedness measures).
	Relatedness bool
	// TypedCompositions additionally mines rules in the exact Figure 4
	// rule 1 shape, with type constraints on both sides.
	TypedCompositions bool
	// RelatednessMinSim is the label-similarity threshold for
	// Relatedness rules (default 0.5).
	RelatednessMinSim float64
}

// DefaultMiningConfig returns the engine defaults.
func DefaultMiningConfig() MiningConfig {
	return MiningConfig{MinSupport: 2, MinWeight: 0.1}
}

// RuleSpec is a relaxation rule in textual form, as accepted by AddRule and
// returned by MineRules: "?x hasAdvisor ?y => ?y hasStudent ?x".
type RuleSpec struct {
	ID     string
	Rule   string
	Weight float64
	Origin string
}

// OperatorFunc is the public relaxation-operator API (§3): a function that
// inspects the engine and contributes relaxation rules. Operators run when
// RunOperators is called.
type OperatorFunc func(e *Engine) []RuleSpec

// Engine is a TriniT instance: an extended knowledge graph plus rules,
// ranking and suggestion machinery.
//
// Once frozen, an Engine is safe for concurrent use: Query, Ask, Complete
// and Stats take no engine-wide lock — the store is immutable, match
// lists live in a concurrency-safe shared cache, and per-query state sits
// in pooled executors. Mutation APIs (AddRule, RemoveRule, MineRules, …)
// serialise behind a write lock and publish the rule set copy-on-write,
// so in-flight queries keep the snapshot they started with.
type Engine struct {
	// mu guards the mutable engine state: rules (replaced wholesale,
	// never appended in place), operators, frozen, and the published
	// store version. Read paths hold it only long enough to snapshot.
	mu        sync.RWMutex
	opts      Options
	st        *store.Store
	rules     []*relax.Rule
	operators []OperatorFunc
	frozen    bool

	// ver is the published store version: the store plus everything
	// derived from it (match-list cache, executor pool, suggester,
	// question translator). Queries pin it at admission and read it
	// lock-free; IngestFacts and Compact publish successors. e.st always
	// mirrors ver.st. See version.go.
	ver *storeVersion

	// group is the sharded-execution coordinator (nil when Options.Shards
	// <= 1): per-shard stores, caches and executor pools behind one
	// scatter-gather merge. Built when the engine freezes, guarded by mu
	// like ver. The full store e.st is retained either way — it serves
	// as the corpus-wide normalisation-mass oracle, the WithoutSharding
	// path, and the durability image. groupVer holds the store version
	// the group partitioned, pinned for the group's lifetime so a
	// compaction can never unmap columns the shards still reference.
	group    *shard.Group
	groupVer *storeVersion

	// ingestMu serialises live ingest and compaction against each other
	// (never against queries). Lock order: durability.mu, then ingestMu,
	// then e.mu.
	ingestMu sync.Mutex

	// Live-ingest counters and state, exposed through MemoryStats and
	// /metrics.
	compacting    atomic.Bool
	compactions   atomic.Uint64
	retiredLive   atomic.Int64
	ingestedFacts atomic.Uint64

	// Sharding counters, exposed through ShardingStats and /metrics.
	shardedQueries   atomic.Uint64
	boundBroadcasts  atomic.Int64
	crossShardPrunes atomic.Int64
	shardMergeNanos  atomic.Int64
	residualRewrites atomic.Int64

	// admit gates query admission (nil = admission disabled); guarded
	// by mu for replacement, snapshotted per query. defBudget is the
	// engine-wide default cost budget (zero = unlimited).
	admit     *admission.Controller
	defBudget Budget

	// dur is the engine's attachment to a durable data directory (nil
	// for in-memory engines); set once by Open or Persist, cleared by
	// Close. See durable.go for the write-ahead protocol.
	dur atomic.Pointer[durability]

	// Serving counters, exposed through ServingStats and /metrics.
	queriesTotal    atomic.Uint64
	queriesShed     atomic.Uint64
	budgetExhausted atomic.Uint64
	panicsRecovered atomic.Uint64
	inFlight        atomic.Int64
}

// New creates an empty engine. Pass nil for default options.
func New(opts *Options) *Engine {
	o := opts.withDefaults()
	return &Engine{
		opts:      o,
		st:        store.New(nil, nil),
		admit:     newAdmission(o.AdmissionCapacity, o.AdmissionQueue),
		defBudget: o.DefaultBudget,
	}
}

// newAdmission builds the admission controller for a capacity/queue
// pair: nil (admission disabled) for capacity <= 0, a 4×capacity
// default queue when the queue bound is unset.
func newAdmission(capacity, queue int) *admission.Controller {
	if capacity <= 0 {
		return nil
	}
	if queue <= 0 {
		queue = 4 * capacity
	}
	return admission.New(int64(capacity), queue)
}

// SetAdmissionControl replaces the engine's admission controller:
// capacity is the total evaluation weight (queries × their effective
// parallelism) allowed to run concurrently, queue bounds the waiters
// behind it (0 = 4×capacity). capacity <= 0 disables admission.
// In-flight queries keep the controller they were admitted by and
// release back into it, so replacement mid-traffic never leaks or
// double-frees capacity.
func (e *Engine) SetAdmissionControl(capacity, queue int) {
	e.mu.Lock()
	e.admit = newAdmission(capacity, queue)
	e.mu.Unlock()
}

// SetDefaultBudget replaces the engine-wide default cost budget applied
// to queries without their own WithBudget. The zero Budget removes the
// default (unlimited).
func (e *Engine) SetDefaultBudget(b Budget) {
	e.mu.Lock()
	e.defBudget = b
	e.mu.Unlock()
}

// AddKGFact adds a curated KG fact between resources (confidence 1).
func (e *Engine) AddKGFact(subject, predicate, object string) error {
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.frozen {
		return ErrFrozen
	}
	e.st.AddKG(rdf.Resource(subject), rdf.Resource(predicate), rdf.Resource(object))
	if d != nil {
		return e.logDrainedAdds(d)
	}
	return nil
}

// AddKGLiteral adds a curated KG fact whose object is a literal value.
func (e *Engine) AddKGLiteral(subject, predicate, literal string) error {
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.frozen {
		return ErrFrozen
	}
	e.st.AddFact(rdf.Resource(subject), rdf.Resource(predicate), rdf.Literal(literal), rdf.SourceKG, 1, rdf.NoProv)
	if d != nil {
		return e.logDrainedAdds(d)
	}
	return nil
}

// AddTokenTriple adds an XKG token triple directly (subject and object are
// resources when they name known entities — pass viaEntity true — and
// token phrases otherwise).
func (e *Engine) AddTokenTriple(subject, relation, object string, confidence float64, doc, sentence string) error {
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.frozen {
		return ErrFrozen
	}
	if confidence <= 0 || confidence > 1 {
		return fmt.Errorf("trinit: confidence %v outside (0, 1]", confidence)
	}
	prov := rdf.NoProv
	if doc != "" || sentence != "" {
		prov = e.st.Prov().Add(rdf.Prov{Doc: doc, Sentence: sentence})
	}
	s := rdf.Term(rdf.Token(subject))
	if _, ok := e.st.Dict().Lookup(rdf.Resource(subject)); ok {
		s = rdf.Resource(subject)
	}
	o := rdf.Term(rdf.Token(object))
	if _, ok := e.st.Dict().Lookup(rdf.Resource(object)); ok {
		o = rdf.Resource(object)
	}
	e.st.AddFact(s, rdf.Token(relation), o, rdf.SourceXKG, confidence, prov)
	if d != nil {
		return e.logDrainedAdds(d)
	}
	return nil
}

// ExtendFromDocuments runs the Open IE pipeline (extraction, filtering,
// entity linking) over the documents and adds the resulting token triples
// to the XKG. Call after loading the KG and before Freeze.
func (e *Engine) ExtendFromDocuments(docs []Document) (ExtendStats, error) {
	return e.ExtendFromDocumentsWith(docs, DefaultExtendConfig())
}

// ExtendFromDocumentsWith is ExtendFromDocuments with explicit config.
func (e *Engine) ExtendFromDocumentsWith(docs []Document, cfg ExtendConfig) (ExtendStats, error) {
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.frozen {
		return ExtendStats{}, ErrFrozen
	}
	xdocs := make([]xkg.Document, len(docs))
	for i, d := range docs {
		xdocs[i] = xkg.Document{ID: d.ID, Text: d.Text}
	}
	var linker *ned.Linker
	if !cfg.DisableEntityLinking {
		linker = ned.NewLinker(e.st)
	}
	stats := xkg.Build(e.st, linker, xdocs, xkg.Options{
		MinConf:      cfg.MinConfidence,
		MinRelPairs:  cfg.MinRelationPairs,
		LinkEntities: !cfg.DisableEntityLinking,
	})
	if d != nil {
		if err := e.logDrainedAdds(d); err != nil {
			return ExtendStats{}, err
		}
	}
	return ExtendStats{
		Documents:      stats.Documents,
		Sentences:      stats.Sentences,
		Extractions:    stats.Extractions,
		Kept:           stats.Kept,
		LinkedSubjects: stats.LinkedSubj,
		LinkedObjects:  stats.LinkedObj,
		TriplesAdded:   stats.Added,
	}, nil
}

// initQueryPipeline publishes the first store version over e.st —
// wrapping the mapped segment backing it, if any — and, with
// Options.Shards > 1, partitions the frozen store and builds the shard
// coordinator. Called once, under e.mu, when the engine freezes or a
// snapshot engine is assembled.
func (e *Engine) initQueryPipeline(mapped *mappedRef, epoch uint64) {
	e.publishLocked(newStoreVersion(e, e.st, e.st, nil, mapped, epoch))
	if e.opts.Shards > 1 && e.st.Frozen() {
		g, err := shard.NewGroup(e.st, e.opts.Shards,
			e.topkOptions(), shard.PartitionOptions{ReplicateFactor: e.opts.ShardReplicateFactor})
		if err == nil {
			e.group = g
			// The shard stores reference the partitioned version's columns
			// (and, for replicated predicates, its dictionary); pin it for
			// the group's lifetime so retirement can never unmap them.
			e.groupVer = e.ver
			e.groupVer.pin()
		}
		// Partition can only fail on an unfrozen store or n < 1, both
		// excluded here; if it ever does, the engine degrades to the
		// (identical-answer) unsharded pipeline rather than failing.
	}
}

// Freeze finalises the graph: indexes are built and the engine becomes
// queryable. No facts can be added afterwards. Freeze is idempotent.
func (e *Engine) Freeze() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.frozen {
		return
	}
	e.st.Freeze()
	e.initQueryPipeline(nil, 0)
	e.frozen = true
}

// Frozen reports whether Freeze has been called.
func (e *Engine) Frozen() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.frozen
}

// AddRule registers a manual relaxation rule in textual form, e.g.
//
//	e.AddRule("r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0)
func (e *Engine) AddRule(id, rule string, weight float64) error {
	r, err := relax.ParseRule(id, rule, weight, "manual")
	if err != nil {
		return err
	}
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if d != nil {
		// Write-ahead: the rule is published only once its record is
		// durable, so a crash can never reveal a rule the log lacks.
		if err := d.append(ruleAddRecord(r)); err != nil {
			return err
		}
	}
	e.appendRules(r)
	return nil
}

// appendRules publishes a new rule-set snapshot. Callers hold e.mu. The
// old slice is never mutated, so queries that snapshotted it race-free
// keep a consistent rule set.
func (e *Engine) appendRules(rs ...*relax.Rule) {
	next := make([]*relax.Rule, 0, len(e.rules)+len(rs))
	next = append(next, e.rules...)
	next = append(next, rs...)
	e.rules = next
}

// MineRules mines relaxation rules from the XKG (predicate alignment,
// inversion, and composition rules; §3) and registers them. It returns the
// mined rules as specs. The engine must be frozen.
func (e *Engine) MineRules(cfg MiningConfig) ([]RuleSpec, error) {
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.frozen {
		return nil, fmt.Errorf("%w: MineRules requires a frozen engine", ErrNotFrozen)
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 2
	}
	if cfg.MinWeight <= 0 {
		cfg.MinWeight = 0.1
	}
	mopts := relax.MiningOptions{
		MinSupport:     cfg.MinSupport,
		MinWeight:      cfg.MinWeight,
		MaxRules:       cfg.MaxRules,
		IncludeInverse: !cfg.DisableInversion,
	}
	mined := relax.Mine(e.st, mopts)
	containment := cfg.ContainmentPredicates
	if len(containment) == 0 {
		containment = []string{"locatedIn", "partOf", "memberOf"}
	}
	mined = append(mined, relax.MineCompositions(e.st, containment, mopts)...)
	if cfg.HornRules {
		horn := relax.DefaultHornOptions()
		horn.MinSupport = cfg.MinSupport
		horn.MaxRules = cfg.MaxRules
		mined = append(mined, relax.MineHornRules(e.st, horn)...)
	}
	if cfg.TypedCompositions {
		topts := relax.DefaultTypedCompositionOptions()
		topts.MinSupport = cfg.MinSupport
		topts.MinWeight = cfg.MinWeight
		topts.Containment = containment
		topts.MaxRules = cfg.MaxRules
		mined = append(mined, relax.MineTypedCompositions(e.st, topts)...)
	}
	if cfg.Paraphrases {
		para, err := (relax.ParaphraseOperator{}).Rules(e.st)
		if err != nil {
			return nil, err
		}
		mined = append(mined, para...)
	}
	if cfg.Relatedness {
		rel, err := (relax.RelatednessOperator{MinSim: cfg.RelatednessMinSim, MaxRules: cfg.MaxRules}).Rules(e.st)
		if err != nil {
			return nil, err
		}
		mined = append(mined, rel...)
	}
	if d != nil && len(mined) > 0 {
		recs := make([]serial.WALRecord, len(mined))
		for i, r := range mined {
			recs[i] = ruleAddRecord(r)
		}
		if err := d.append(recs...); err != nil {
			return nil, err
		}
	}
	e.appendRules(mined...)
	specs := make([]RuleSpec, len(mined))
	for i, r := range mined {
		specs[i] = RuleSpec{ID: r.ID, Rule: r.String(), Weight: r.Weight, Origin: r.Origin}
	}
	return specs, nil
}

// AddOperator registers a relaxation operator (§3's plug-in API).
func (e *Engine) AddOperator(op OperatorFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.operators = append(e.operators, op)
}

// RunOperators invokes all registered operators and registers the rules
// they produce.
func (e *Engine) RunOperators() error {
	// Operators run without the engine lock so that they may call back
	// into the engine (Query, Rules, Stats, ...).
	e.mu.Lock()
	ops := append([]OperatorFunc(nil), e.operators...)
	e.mu.Unlock()

	var parsed []*relax.Rule
	for _, op := range ops {
		for _, spec := range op(e) {
			origin := spec.Origin
			if origin == "" {
				origin = "operator"
			}
			r, err := relax.ParseRule(spec.ID, spec.Rule, spec.Weight, origin)
			if err != nil {
				return err
			}
			parsed = append(parsed, r)
		}
	}
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if d != nil && len(parsed) > 0 {
		recs := make([]serial.WALRecord, len(parsed))
		for i, r := range parsed {
			recs[i] = ruleAddRecord(r)
		}
		if err := d.append(recs...); err != nil {
			return err
		}
	}
	e.appendRules(parsed...)
	return nil
}

// Rules lists the currently registered rules.
func (e *Engine) Rules() []RuleSpec {
	e.mu.RLock()
	rules := e.rules
	e.mu.RUnlock()
	out := make([]RuleSpec, len(rules))
	for i, r := range rules {
		out[i] = RuleSpec{ID: r.ID, Rule: r.String(), Weight: r.Weight, Origin: r.Origin}
	}
	return out
}

// RemoveRule deletes the rule(s) with the given ID; it reports whether any
// rule was removed. On a durable engine whose write-ahead log has failed,
// the rules are left in place and RemoveRule reports false.
func (e *Engine) RemoveRule(id string) bool {
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	kept := make([]*relax.Rule, 0, len(e.rules))
	removed := false
	for _, r := range e.rules {
		if r.ID == id {
			removed = true
			continue
		}
		kept = append(kept, r)
	}
	if !removed {
		return false
	}
	if d != nil {
		if err := d.append(serial.WALRecord{Op: serial.WALRuleRemove, RuleID: id}); err != nil {
			return false
		}
	}
	e.rules = kept
	return true
}

// ClearRules removes all registered rules. On a durable engine whose
// write-ahead log has failed, the rules are left in place.
func (e *Engine) ClearRules() {
	d, unlock := e.durLocked()
	defer unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if d != nil {
		if err := d.append(serial.WALRecord{Op: serial.WALRuleClear}); err != nil {
			return
		}
	}
	e.rules = nil
}

// Answer is one ranked query result.
type Answer struct {
	// Bindings maps projected variables to the display text of their
	// bound terms (token phrases and literals are quoted).
	Bindings map[string]string
	// Score is the answer's query-likelihood score.
	Score float64
	// Explanation is the answer's provenance.
	Explanation Explanation
}

// Explanation is the public form of an answer explanation (§5).
type Explanation struct {
	OriginalQuery  string
	RewrittenQuery string
	Weight         float64
	KGTriples      []TripleEvidence
	XKGTriples     []TripleEvidence
	Rules          []RuleEvidence
	// Text is the rendered multi-line explanation.
	Text string
}

// TripleEvidence is one contributing triple.
type TripleEvidence struct {
	Triple     string
	Pattern    string
	Source     string // "KG" or "XKG"
	Confidence float64
	Prob       float64
	Doc        string
	Sentence   string
}

// RuleEvidence is one invoked relaxation rule.
type RuleEvidence struct {
	ID     string
	Rule   string
	Origin string
	Weight float64
}

// Notice reports that a structural relaxation contributed to the answers.
type Notice struct {
	RuleID  string
	Origin  string
	Rule    string
	Message string
	Answers int
}

// Suggestion proposes replacing a textual token with a KG resource.
type Suggestion struct {
	Token    string
	Resource string
	Overlap  float64
	Position string
}

// Completion is an auto-completion candidate.
type Completion struct {
	Text   string
	Weight float64
}

// Metrics quantify the processing work of one query. See topk.Metrics for
// the per-field documentation.
type Metrics struct {
	RewritesTotal     int
	RewritesEvaluated int
	RewritesSkipped   int
	SortedAccesses    int
	IndexScanned      int
	PatternsMatched   int
	JoinBranches      int
	PrunedBranches    int
	// HashProbes counts hash-index bucket lookups the join kernel issued
	// in place of full match-list scans.
	HashProbes int
	// SemiJoinDropped counts match-list entries pruned by the semi-join
	// reduction pass before join enumeration.
	SemiJoinDropped int
	// TokenResolutions counts token slots resolved through the inverted
	// token index while building match lists.
	TokenResolutions int
	// ScanFallbacks counts token-slot patterns whose match lists were
	// built by the legacy wildcard scan instead of token resolution.
	ScanFallbacks int
	// BlocksEmitted counts frontier blocks the block-at-a-time join
	// kernel flushed to the next join depth (0 with NoBlockJoin).
	BlocksEmitted int
	// BlockRowsFiltered counts candidate join rows the block kernel cut
	// with the shared top-k bound before they were materialised.
	BlockRowsFiltered int
	// BoundBroadcasts counts bound-raising k-th-score exchanges between
	// shards during this query (0 on unsharded engines and under
	// WithoutSharding).
	BoundBroadcasts int
	// CrossShardPrunes counts prune decisions taken against a bound that
	// arrived from another shard — work the bound exchange saved that
	// shard-local knowledge alone would not have.
	CrossShardPrunes int
}

// TraceEntry is one internal processing step: a rewrite considered by the
// top-k processor and what happened to it (§5: "TriniT can show internal
// steps").
type TraceEntry struct {
	// Query is the rewritten query.
	Query string
	// Weight is the derivation weight.
	Weight float64
	// Rules lists the IDs of the rules applied in the derivation.
	Rules []string
	// Status is "evaluated", "skipped (weight bound)", "no matches",
	// "missing projection", "canceled", "budget" (the query's cost
	// budget ran out at or before this rewrite), or "panic" (this
	// rewrite's evaluation panicked and was recovered).
	Status string
	// Detail carries extra status context — for "panic" entries, the
	// panic value and recovered stack. Empty otherwise.
	Detail string `json:",omitempty"`
	// PatternMatches holds per-pattern match-list sizes.
	PatternMatches []int
	// Plan holds the pattern indices in the order the planner processed
	// them (ascending estimated selectivity, refined by join-graph
	// connectivity); nil when the rewrite was not matched.
	Plan []int
	// SemiJoinKept holds the per-pattern number of match-list entries
	// surviving the semi-join reduction pass, in pattern order (nil when
	// the pass did not run).
	SemiJoinKept []int
	// Answers counts answers created or improved by the rewrite.
	Answers int
	// Shard is the shard whose run produced this entry (always 0 on
	// unsharded engines; on a sharded engine the trace carries every
	// shard's entries, shard-major).
	Shard int
}

// Result is the outcome of one query.
type Result struct {
	// Query is the parsed, canonicalised query.
	Query string
	// Answers are the top-k results in descending score order.
	Answers []Answer
	// Notices report structural relaxations that contributed (§5).
	Notices []Notice
	// Suggestions propose canonical resources for textual tokens (§5).
	Suggestions []Suggestion
	// Metrics quantify the processing work.
	Metrics Metrics
	// Trace lists the internal processing steps, one per rewrite.
	Trace []TraceEntry
	// Partial reports that the query was cut short — the request's
	// context was cancelled or its deadline expired — and Answers holds
	// only what had been found by then.
	Partial bool
	// Shards is the number of shards the query was scattered over (0
	// when it ran the single-store pipeline).
	Shards int

	// src links back to the engine state needed to render explanations
	// on demand (nil on results restored from serialisation).
	src *resultSource
}

// resultSource is the explanation raw material a Result keeps so that
// Explain can render lazily: the store version the query ran against is
// immutable and pinned (a runtime cleanup on this struct releases the pin
// once the Result is unreachable), and the raw topk answers are private
// to this result, so reading them later is safe — even after the version
// has been superseded by ingest or compaction.
type resultSource struct {
	ver   *storeVersion
	st    *store.Store
	query *query.Query
	raw   []topk.Answer
	// stores[i] is the store raw[i]'s derivation must be resolved
	// against — the winning shard's store on a sharded run, whose triple
	// IDs are shard-local. nil means every answer reads st.
	stores []*store.Store
}

// store returns the store answer i's derivation resolves against.
func (s *resultSource) store(i int) *store.Store {
	if s.stores != nil && i < len(s.stores) && s.stores[i] != nil {
		return s.stores[i]
	}
	return s.st
}

// Explain renders the explanation of Answers[i] (0-based), computing it
// on demand when the query ran with WithoutExplanations and reusing the
// eager rendering otherwise. The computed explanation is memoised into
// Answers[i].Explanation. Explain is not safe for concurrent use on the
// same Result.
func (r *Result) Explain(i int) (Explanation, error) {
	if i < 0 || i >= len(r.Answers) {
		return Explanation{}, fmt.Errorf("trinit: Explain(%d): result has %d answers", i, len(r.Answers))
	}
	if r.Answers[i].Explanation.Text != "" {
		return r.Answers[i].Explanation, nil
	}
	if r.src == nil || i >= len(r.src.raw) {
		return Explanation{}, errors.New("trinit: result carries no explanation source")
	}
	ex := explain.Explain(r.src.store(i), r.src.query, r.src.raw[i])
	pub := publicExplanation(ex)
	r.Answers[i].Explanation = pub
	return pub, nil
}

// QueryMode selects the per-query processing strategy for WithMode.
type QueryMode int

const (
	// ModeDefault keeps the engine's configured mode.
	ModeDefault QueryMode = iota
	// ModeIncremental forces the paper's adaptive top-k strategy.
	ModeIncremental
	// ModeExhaustive forces full evaluation of every rewrite — the
	// correctness baseline; identical answers, more work.
	ModeExhaustive
)

// queryConfig is the resolved option set of one query. The zero value
// reproduces the classic Query behaviour exactly.
type queryConfig struct {
	k           int
	timeout     time.Duration
	mode        QueryMode
	parallelism int
	budget      Budget
	noTrace     bool
	noExplain   bool
	noShard     bool
}

// QueryOption is a per-query knob of QueryContext, QueryStream and
// AskContext. Options scope to the one call that receives them; the
// engine's configuration is never touched.
type QueryOption func(*queryConfig)

// WithK overrides the engine's default answer count for this query
// (values < 1 are ignored; a query LIMIT below k still applies).
func WithK(k int) QueryOption {
	return func(c *queryConfig) {
		if k > 0 {
			c.k = k
		}
	}
}

// WithTimeout derives a deadline for this query from the call's context.
// On expiry the query returns the answers found so far with
// Result.Partial set and an error wrapping ErrCanceled and
// context.DeadlineExceeded.
func WithTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithoutTrace skips collecting the per-rewrite processing trace,
// trimming allocation on the hot path for callers that never read it.
func WithoutTrace() QueryOption {
	return func(c *queryConfig) { c.noTrace = true }
}

// WithoutExplanations skips the eager rendering of per-answer
// explanations — the expensive part of result assembly for high-QPS
// callers that only want bindings. Explanations stay available on
// demand through Result.Explain.
func WithoutExplanations() QueryOption {
	return func(c *queryConfig) { c.noExplain = true }
}

// WithoutSharding runs this one query on the engine's full store
// through the single-store pipeline, bypassing the shard coordinator of
// an Options.Shards engine. Answers are identical by the sharding
// guarantee — this is the in-API oracle for differential testing, and
// an escape hatch for latency-critical point queries on small stores.
// A no-op on unsharded engines.
func WithoutSharding() QueryOption {
	return func(c *queryConfig) { c.noShard = true }
}

// WithMode overrides the engine's processing mode for this query.
func WithMode(m QueryMode) QueryOption {
	return func(c *queryConfig) { c.mode = m }
}

// WithBudget caps this query's evaluation work, overriding the engine's
// Options.DefaultBudget. A query that exhausts its budget stops at the
// processor's next poll point and returns the answers found so far:
// Result.Partial is set and the error wraps ErrBudgetExhausted — a
// sound partial top-k, never an empty error. Exhausted rewrites are
// marked with a "budget" trace status.
func WithBudget(b Budget) QueryOption {
	return func(c *queryConfig) { c.budget = b }
}

// WithParallelism sets how many workers evaluate this query's rewrite
// space concurrently: n > 1 uses n workers, n == 1 forces the serial
// schedule (overriding an engine-wide Options.Parallelism), and n <= 0
// uses one worker per logical CPU. The final ranking is byte-identical
// to serial execution at every width — a parallel worker may act on a
// slightly stale top-k bound, which can only cause extra join work,
// never a missed or different answer. Parallelism pays off on wide
// rewrite spaces (relaxation-heavy queries) when the host has idle
// cores; an engine already saturated by concurrent queries gains
// nothing from it.
func WithParallelism(n int) QueryOption {
	return func(c *queryConfig) {
		if n <= 0 {
			c.parallelism = topk.AutoParallelism
		} else {
			c.parallelism = n
		}
	}
}

// EventType discriminates the events of a streaming query.
type EventType int

const (
	// EventProvisional reports an answer the incremental processor just
	// admitted into (or improved within) its running top-k. Provisional
	// answers may later be displaced by better ones, and an answer that
	// merely ties the k-th score can reach the final ranking without a
	// prior provisional event — the EventAnswer sequence is
	// authoritative.
	EventProvisional EventType = iota
	// EventAnswer reports one final ranked answer, in rank order.
	EventAnswer
	// EventDone is the terminal event of every stream whose callback
	// did not itself fail.
	EventDone
)

// String names the event type as it appears on the wire (SSE event
// names and REPL prefixes).
func (t EventType) String() string {
	switch t {
	case EventProvisional:
		return "provisional"
	case EventAnswer:
		return "answer"
	case EventDone:
		return "done"
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// AnswerEvent is one notification of a streaming query (QueryStream).
type AnswerEvent struct {
	// Type discriminates the payload.
	Type EventType
	// Answer is the admitted (provisional) or final answer; nil on the
	// done event. Provisional answers carry no explanation — render
	// them with Result.Explain after the stream completes if needed.
	Answer *Answer
	// Rank is the 1-based final rank (EventAnswer only).
	Rank int
	// Partial mirrors Result.Partial on the done event.
	Partial bool
	// Metrics mirrors Result.Metrics on the done event.
	Metrics *Metrics
}

// Query parses and evaluates a query with relaxation and top-k ranking.
// The engine must be frozen. It is QueryContext without cancellation —
// a background context and the default options.
func (e *Engine) Query(text string) (*Result, error) {
	return e.QueryContext(context.Background(), text)
}

// QueryContext parses and evaluates a query with relaxation and top-k
// ranking, scoped to ctx: cancellation and deadline expiry are observed
// at every rewrite boundary and every few join branches, returning the
// answers found so far with Result.Partial set and an error wrapping
// ErrCanceled. Options override the engine defaults for this call only.
// The engine must be frozen.
//
// QueryContext is safe for concurrent use: it holds no engine-wide lock
// during evaluation. Each call snapshots the rule set, borrows an
// executor from the pool, and runs it against the immutable store and
// the shared match-list cache.
func (e *Engine) QueryContext(ctx context.Context, text string, opts ...QueryOption) (*Result, error) {
	return e.queryContext(ctx, text, nil, opts)
}

// QueryStream evaluates a query like QueryContext while streaming
// processing events to fn: zero or more EventProvisional events as the
// incremental processor admits answers into its running top-k, then one
// EventAnswer per final ranked answer, then a terminal EventDone. Calls
// to fn are serialised, never concurrent; under WithParallelism above 1
// provisional events may arrive from scheduler worker goroutines rather
// than the calling goroutine. An error returned from fn stops the query
// and is returned verbatim (no done event follows). The final Result is
// returned as from QueryContext.
func (e *Engine) QueryStream(ctx context.Context, text string, fn func(AnswerEvent) error, opts ...QueryOption) (*Result, error) {
	return e.queryContext(ctx, text, fn, opts)
}

// queryContext is the request-scoped query core behind Query,
// QueryContext and QueryStream.
func (e *Engine) queryContext(ctx context.Context, text string, fn func(AnswerEvent) error, opts []QueryOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	q, err := query.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	e.mu.RLock()
	frozen, rules := e.frozen, e.rules
	admit, defBudget, group := e.admit, e.defBudget, e.group
	e.mu.RUnlock()
	if !frozen {
		return nil, fmt.Errorf("%w (call Freeze before querying)", ErrNotFrozen)
	}
	if cfg.noShard {
		group = nil
	}
	// Pin the published store version: the query reads this one store
	// state — and the cache, executor pool and suggester derived from it —
	// for its whole lifetime, no matter how many ingest batches or
	// compactions publish successors meanwhile.
	ver := e.currentVersion()
	defer ver.unpin()
	st := ver.st
	dict := st.Dict()
	q.Projection = q.ProjectedVars()

	// Admission: a query weighs as many units as evaluation goroutines
	// it may occupy, so capacity bounds total evaluation concurrency,
	// not query count. Shed queries never reach expansion — no work is
	// wasted on a query the engine cannot run. A sharded query scatters
	// its evaluation over every shard at once, so it weighs N times a
	// single-store query of the same parallelism.
	e.queriesTotal.Add(1)
	p := cfg.parallelism
	if p == 0 {
		p = e.opts.Parallelism
	}
	weight := int64(topk.EffectiveParallelism(p))
	if group != nil {
		weight *= int64(group.Shards())
	}
	if err := admit.Acquire(ctx, weight); err != nil {
		if errors.Is(err, admission.ErrQueueFull) || errors.Is(err, admission.ErrDeadline) {
			e.queriesShed.Add(1)
			return nil, fmt.Errorf("%w: %w", ErrOverloaded, err)
		}
		// The caller went away while queued: a cancellation, not a shed.
		return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	defer admit.Release(weight)
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)

	exp := relax.NewExpander(rules)
	exp.MaxDepth = e.opts.MaxRelaxationDepth
	exp.MaxRewrites = e.opts.MaxRewrites
	exp.MinWeight = e.opts.MinRewriteWeight
	rewrites, runErr := exp.ExpandContext(ctx, q)

	// Streaming: fn errors cancel the run through a private context, so
	// the processor unwinds at its next cancellation check.
	runCtx := ctx
	var fnErr error
	rcfg := topk.RunConfig{K: cfg.k, NoTrace: cfg.noTrace, Parallelism: cfg.parallelism, Budget: cfg.budget}
	if !budgetLimited(cfg.budget) {
		rcfg.Budget = defBudget
	}
	switch cfg.mode {
	case ModeIncremental:
		rcfg.Mode, rcfg.ModeSet = topk.Incremental, true
	case ModeExhaustive:
		rcfg.Mode, rcfg.ModeSet = topk.Exhaustive, true
	}
	if fn != nil {
		var cancelRun context.CancelFunc
		runCtx, cancelRun = context.WithCancel(ctx)
		defer cancelRun()
		rcfg.Emit = func(a topk.Answer) {
			if fnErr != nil {
				return
			}
			pub := publicAnswer(dict, a)
			if err := fn(AnswerEvent{Type: EventProvisional, Answer: &pub}); err != nil {
				fnErr = err
				cancelRun()
			}
		}
	}

	var answers []topk.Answer
	var metrics topk.Metrics
	var traces []TraceEntry
	var shardStores []*store.Store
	var broadcasts int64
	switch {
	case runErr != nil:
	case group != nil:
		// Sharded scatter-gather. The coordinator is its own panic
		// boundary — a shard panic cancels the siblings and surfaces as
		// a *topk.PanicError return — so no recover is needed here.
		e.shardedQueries.Add(1)
		var sres shard.RunResult
		sres, runErr = group.Run(runCtx, q, rewrites, rcfg)
		answers, metrics, broadcasts = sres.Answers, sres.Metrics, sres.Broadcasts
		// Explanations must resolve each answer's derivation against the
		// store that produced it: derivation triple IDs are store-local,
		// and residual answers live in the retained full store.
		shardStores = make([]*store.Store, len(sres.Answers))
		for i, si := range sres.Shards {
			shardStores[i] = group.AnswerStore(si)
		}
		e.boundBroadcasts.Add(sres.Broadcasts)
		e.crossShardPrunes.Add(int64(sres.Metrics.CrossShardPrunes))
		e.shardMergeNanos.Add(int64(sres.MergeTime))
		e.residualRewrites.Add(int64(sres.Residual))
		if !cfg.noTrace {
			// Shard-major: shard 0's full rewrite trace, then shard 1's…
			// Each entry names its shard, so provenance survives the
			// concatenation.
			for si, tr := range sres.Traces {
				for _, t := range tr {
					traces = append(traces, publicTraceEntry(t, si))
				}
			}
		}
	default:
		// The query-level panic boundary: a panic unwinding out of the
		// serial evaluation path (worker panics are already recovered by
		// the parallel scheduler and surface as a *topk.PanicError return)
		// is converted to the same typed error here, keeping the engine —
		// and the daemon above it — serviceable. The borrowed executor is
		// returned to the pool only on a clean exit: a panic may leave its
		// scratch state mid-join.
		func() {
			pool := ver.execs
			ev := pool.Get().(*topk.Executor)
			defer func() {
				if rec := recover(); rec != nil {
					runErr = &topk.PanicError{Value: rec, Stack: debug.Stack()}
					return
				}
				pool.Put(ev)
			}()
			answers, metrics, runErr = ev.Run(runCtx, q, rewrites, rcfg)
			// TraceLen sizes the conversion up front and skips the
			// LastTrace copy entirely for empty traces — the copy would be
			// pure waste when only the length is needed.
			if n := ev.TraceLen(); !cfg.noTrace && n > 0 {
				traces = make([]TraceEntry, 0, n)
				for _, t := range ev.LastTrace() {
					traces = append(traces, publicTraceEntry(t, 0))
				}
			}
		}()
	}
	// Map processor-level degradations to the public typed errors (and
	// their counters). Panics outrank budget exhaustion; both leave the
	// Result valid and Partial.
	if runErr != nil {
		var pe *topk.PanicError
		switch {
		case errors.As(runErr, &pe):
			e.panicsRecovered.Add(1)
			// Parallel-worker panics already marked their rewrite's trace
			// entry; a panic recovered at this boundary (serial path) gets
			// a synthetic entry so the stack is never lost.
			marked := false
			for i := range traces {
				if traces[i].Status == "panic" {
					marked = true
					break
				}
			}
			if !cfg.noTrace && !marked {
				traces = append(traces, TraceEntry{Status: "panic", Detail: pe.Error() + "\n" + string(pe.Stack)})
			}
			runErr = fmt.Errorf("%w: %v", ErrInternal, pe.Value)
		case errors.Is(runErr, topk.ErrBudgetExhausted):
			e.budgetExhausted.Add(1)
			runErr = fmt.Errorf("%w: %w", ErrBudgetExhausted, runErr)
		}
	}
	if fnErr != nil {
		// The callback failed: the private-context cancellation above
		// is an implementation detail, not a partial query.
		runErr = fnErr
	}
	metrics.RewritesTotal = len(rewrites)

	res := &Result{
		Query:   q.String(),
		Trace:   traces,
		Partial: runErr != nil && fnErr == nil,
		Metrics: Metrics{
			RewritesTotal:     metrics.RewritesTotal,
			RewritesEvaluated: metrics.RewritesEvaluated,
			RewritesSkipped:   metrics.RewritesSkipped,
			SortedAccesses:    metrics.SortedAccesses,
			IndexScanned:      metrics.IndexScanned,
			PatternsMatched:   metrics.PatternsMatched,
			JoinBranches:      metrics.JoinBranches,
			PrunedBranches:    metrics.PrunedBranches,
			HashProbes:        metrics.HashProbes,
			SemiJoinDropped:   metrics.SemiJoinDropped,
			TokenResolutions:  metrics.TokenResolutions,
			ScanFallbacks:     metrics.ScanFallbacks,
			BlocksEmitted:     metrics.BlocksEmitted,
			BlockRowsFiltered: metrics.BlockRowsFiltered,
			BoundBroadcasts:   int(broadcasts),
			CrossShardPrunes:  metrics.CrossShardPrunes,
		},
	}
	if group != nil {
		res.Shards = group.Shards()
	}
	if cfg.noExplain {
		// Keep the raw answers only when Explain may still need them: on
		// the eager path every explanation is already rendered, and
		// retaining the derivations would just pin the rewrite data for
		// the result's lifetime. The source holds its own version pin —
		// explanations dereference the pinned store, possibly long after
		// this version is retired — released by a runtime cleanup when the
		// source becomes unreachable.
		res.src = &resultSource{ver: ver, st: st, query: q, raw: answers, stores: shardStores}
		ver.pin()
		runtime.AddCleanup(res.src, releaseVersionPin, ver)
	}
	for i, a := range answers {
		pub := publicAnswer(dict, a)
		if !cfg.noExplain {
			est := st
			if shardStores != nil {
				est = shardStores[i]
			}
			pub.Explanation = publicExplanation(explain.Explain(est, q, a))
		}
		res.Answers = append(res.Answers, pub)
	}
	for _, n := range suggest.RuleNotices(answers) {
		res.Notices = append(res.Notices, Notice{
			RuleID:  n.RuleID,
			Origin:  n.Origin,
			Rule:    n.Rule,
			Message: n.Message,
			Answers: n.Answers,
		})
	}
	for _, s := range ver.suggester().Suggest(q) {
		res.Suggestions = append(res.Suggestions, Suggestion{
			Token:    s.Token,
			Resource: s.Resource,
			Overlap:  s.Overlap,
			Position: s.Position,
		})
	}

	if fn != nil && fnErr == nil {
		// Final ranked answers, then the terminal done event — sent
		// even for partial results so streams always terminate cleanly.
		for i := range res.Answers {
			if err := fn(AnswerEvent{Type: EventAnswer, Answer: &res.Answers[i], Rank: i + 1}); err != nil {
				fnErr = err
				break
			}
		}
		if fnErr == nil {
			m := res.Metrics
			fnErr = fn(AnswerEvent{Type: EventDone, Partial: res.Partial, Metrics: &m})
		}
		if fnErr != nil {
			return res, fnErr
		}
	}
	if runErr != nil {
		if fnErr != nil || (!errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded)) {
			return res, runErr
		}
		return res, fmt.Errorf("%w: %w", ErrCanceled, runErr)
	}
	return res, nil
}

// budgetLimited reports whether any cap of b is set.
func budgetLimited(b Budget) bool {
	return b.JoinBranches > 0 || b.HashProbes > 0 || b.Blocks > 0
}

// publicTraceEntry converts one processor trace record, tagging the
// shard it came from (0 on the single-store pipeline).
func publicTraceEntry(t topk.RewriteTrace, shard int) TraceEntry {
	return TraceEntry{
		Query:          t.Query,
		Weight:         t.Weight,
		Rules:          t.Rules,
		Status:         t.Status,
		Detail:         t.Detail,
		PatternMatches: t.PatternMatches,
		Plan:           t.Plan,
		SemiJoinKept:   t.SemiJoinKept,
		Answers:        t.Answers,
		Shard:          shard,
	}
}

// publicAnswer converts a processor answer to its public form, without
// an explanation. dict must be the dictionary of the store version the
// answer was computed against.
func publicAnswer(dict *rdf.Dict, a topk.Answer) Answer {
	pub := Answer{
		Bindings: make(map[string]string, len(a.Bindings)),
		Score:    a.Score,
	}
	for v, id := range a.Bindings {
		pub.Bindings[v] = dict.Term(id).Text
	}
	return pub
}

func publicExplanation(ex explain.Explanation) Explanation {
	out := Explanation{
		OriginalQuery:  ex.OriginalQuery,
		RewrittenQuery: ex.RewrittenQuery,
		Weight:         ex.Weight,
		Text:           ex.String(),
	}
	conv := func(ts []explain.TripleInfo) []TripleEvidence {
		out := make([]TripleEvidence, len(ts))
		for i, t := range ts {
			out[i] = TripleEvidence{
				Triple:     t.Text,
				Pattern:    t.Pattern,
				Source:     t.Source.String(),
				Confidence: t.Conf,
				Prob:       t.Prob,
				Doc:        t.Doc,
				Sentence:   t.Sentence,
			}
		}
		return out
	}
	out.KGTriples = conv(ex.KGTriples)
	out.XKGTriples = conv(ex.XKGTriples)
	for _, r := range ex.Rules {
		out.Rules = append(out.Rules, RuleEvidence{ID: r.ID, Rule: r.Rule, Origin: r.Origin, Weight: r.Weight})
	}
	return out
}

// Complete returns auto-completions for a prefix typed into an S, P or O
// field (§5). The engine must be frozen. Safe for concurrent use: each
// store version's suggester trie is immutable once built.
func (e *Engine) Complete(prefix string, limit int) []Completion {
	e.mu.RLock()
	frozen := e.frozen
	e.mu.RUnlock()
	if !frozen {
		return nil
	}
	ver := e.currentVersion()
	defer ver.unpin()
	var out []Completion
	for _, c := range ver.suggester().Complete(prefix, limit) {
		out = append(out, Completion{Text: c.Text, Weight: c.Weight})
	}
	return out
}

// Stats summarises the extended knowledge graph.
type Stats struct {
	Triples        int
	KGTriples      int
	XKGTriples     int
	Terms          int
	Resources      int
	Literals       int
	Tokens         int
	Predicates     int
	TokenPreds     int
	ResourcePreds  int
	ProvenanceRecs int
	Rules          int
}

// Stats returns summary statistics of the engine's XKG.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.st.Stats()
	return Stats{
		Triples:        s.Triples,
		KGTriples:      s.KGTriples,
		XKGTriples:     s.XKGTriples,
		Terms:          s.Terms,
		Resources:      s.Resources,
		Literals:       s.Literals,
		Tokens:         s.Tokens,
		Predicates:     s.Predicates,
		TokenPreds:     s.TokenPreds,
		ResourcePreds:  s.ResourcePreds,
		ProvenanceRecs: s.ProvenanceRecs,
		Rules:          len(e.rules),
	}
}

// CacheStats reports the activity of the engine's shared match-list cache
// and of the selectivity planner (§4 processing shared across queries).
// See topk.CacheStats for the field documentation.
type CacheStats = topk.CacheStats

// CacheStats returns a snapshot of match-list cache and planner activity
// for the current store version (each published version starts a fresh
// cache — match lists are relative to one store state).
func (e *Engine) CacheStats() CacheStats {
	v := e.currentVersion()
	defer v.unpin()
	return v.cache.Stats()
}

// AdmissionStats snapshots the admission controller's counters. See
// admission.Stats for the field documentation.
type AdmissionStats = admission.Stats

// ServingStats reports the engine's serving health: query and
// degradation counters plus the admission controller's state. All
// counters are cumulative since engine construction.
type ServingStats struct {
	// QueriesTotal counts queries that reached admission (parse and
	// frozen checks passed), including shed ones.
	QueriesTotal uint64
	// InFlight is the number of queries currently evaluating.
	InFlight int64
	// QueriesShed counts queries rejected by admission control
	// (ErrOverloaded).
	QueriesShed uint64
	// BudgetExhausted counts queries degraded by cost-budget exhaustion
	// (ErrBudgetExhausted).
	BudgetExhausted uint64
	// PanicsRecovered counts evaluation panics converted to ErrInternal
	// at the query or worker boundary.
	PanicsRecovered uint64
	// Admission is the admission controller's snapshot (zero when
	// admission is disabled).
	Admission AdmissionStats
}

// ServingStats returns a snapshot of the engine's serving counters.
func (e *Engine) ServingStats() ServingStats {
	e.mu.RLock()
	admit := e.admit
	e.mu.RUnlock()
	return ServingStats{
		QueriesTotal:    e.queriesTotal.Load(),
		InFlight:        e.inFlight.Load(),
		QueriesShed:     e.queriesShed.Load(),
		BudgetExhausted: e.budgetExhausted.Load(),
		PanicsRecovered: e.panicsRecovered.Load(),
		Admission:       admit.Stats(),
	}
}

// Reshard rebuilds the engine's sharded-execution coordinator over n
// subject-hashed partitions; n <= 1 returns the engine to the
// single-store pipeline. The engine must be frozen. Rankings are
// byte-identical at every n, so resharding is safe mid-traffic:
// in-flight queries keep the coordinator (or the unsharded pipeline)
// they started with. The cumulative sharding counters are not reset.
func (e *Engine) Reshard(n int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.frozen {
		return fmt.Errorf("%w: Reshard requires a frozen engine", ErrNotFrozen)
	}
	dropGroupVer := func() {
		if e.groupVer != nil {
			e.groupVer.unpin()
			e.groupVer = nil
		}
	}
	if n <= 1 {
		e.group = nil
		dropGroupVer()
		return nil
	}
	g, err := shard.NewGroup(e.st, n, e.topkOptions(),
		shard.PartitionOptions{ReplicateFactor: e.opts.ShardReplicateFactor})
	if err != nil {
		return err
	}
	e.group = g
	// Pin the partitioned version for the new group's lifetime (the shard
	// stores reference its columns), releasing the previous group's pin.
	dropGroupVer()
	if e.ver != nil {
		e.groupVer = e.ver
		e.groupVer.pin()
	}
	return nil
}

// topkOptions maps the engine options onto the processor's option set —
// the one configuration every executor (pooled, per-shard, resharded)
// is built from.
func (e *Engine) topkOptions() topk.Options {
	mode := topk.Incremental
	if e.opts.Exhaustive {
		mode = topk.Exhaustive
	}
	return topk.Options{
		K:            e.opts.K,
		Mode:         mode,
		MinTokenSim:  e.opts.MinTokenSimilarity,
		NoPlan:       e.opts.NoPlanner,
		NoHashJoin:   e.opts.NoHashJoin,
		NoSemiJoin:   e.opts.NoSemiJoin,
		NoBlockJoin:  e.opts.NoBlockJoin,
		NoTokenIndex: e.opts.NoTokenIndex,
		Parallelism:  e.opts.Parallelism,
	}
}

// ShardingStats reports the partitioning and activity of an engine's
// sharded execution. Zero on unsharded engines (Shards == 0).
type ShardingStats struct {
	// Shards is the shard count (Options.Shards), 0 when sharding is
	// off.
	Shards int
	// Triples[j] is shard j's total store size, replicated copies
	// included; Owned[j] counts only the triples shard j owns by subject
	// hash.
	Triples []int
	Owned   []int
	// ReplicatedPreds counts predicates replicated to every shard for
	// join co-location; ReplicatedTriples counts the source triples
	// those predicates contribute (each copied to all shards).
	ReplicatedPreds   int
	ReplicatedTriples int
	// Skew is max(Owned) over mean(Owned): 1.0 is a perfect balance.
	Skew float64
	// ShardedQueries counts queries that ran through the coordinator
	// (WithoutSharding queries are excluded).
	ShardedQueries uint64
	// BoundBroadcasts counts bound-raising k-th-score exchanges between
	// shards; CrossShardPrunes counts prune decisions taken against a
	// bound received from another shard. Both cumulative since
	// construction.
	BoundBroadcasts  int64
	CrossShardPrunes int64
	// MergeTime is the cumulative wall-clock time spent gathering and
	// merging per-shard rankings.
	MergeTime time.Duration
	// ResidualRewrites counts rewrites the coordinator evaluated on the
	// retained full store because the partitioning could not co-locate
	// their joins on any single shard.
	ResidualRewrites int64
}

// ShardingStats returns a snapshot of the engine's sharded-execution
// state, or the zero value when the engine is unsharded.
func (e *Engine) ShardingStats() ShardingStats {
	e.mu.RLock()
	group := e.group
	e.mu.RUnlock()
	if group == nil {
		return ShardingStats{}
	}
	ps := group.Stats()
	return ShardingStats{
		Shards:            group.Shards(),
		Triples:           append([]int(nil), ps.Triples...),
		Owned:             append([]int(nil), ps.Owned...),
		ReplicatedPreds:   ps.ReplicatedPreds,
		ReplicatedTriples: ps.ReplicatedTriples,
		Skew:              ps.Skew,
		ShardedQueries:    e.shardedQueries.Load(),
		BoundBroadcasts:   e.boundBroadcasts.Load(),
		CrossShardPrunes:  e.crossShardPrunes.Load(),
		MergeTime:         time.Duration(e.shardMergeNanos.Load()),
		ResidualRewrites:  e.residualRewrites.Load(),
	}
}

// ReadyState classifies why an engine can or cannot usefully accept a
// new query — the /readyz signal. (A fourth state, "still loading from
// disk", exists only at the serving layer: before Open returns there is
// no engine to ask.)
type ReadyState int

const (
	// ReadyOK: frozen and accepting queries.
	ReadyOK ReadyState = iota
	// ReadyNotFrozen: the graph is still being built; queries would
	// fail with ErrNotFrozen.
	ReadyNotFrozen
	// ReadySaturated: admission control is at capacity with a full
	// wait queue; new queries would be shed.
	ReadySaturated
)

// String names the state as /readyz reports it.
func (s ReadyState) String() string {
	switch s {
	case ReadyOK:
		return "ready"
	case ReadyNotFrozen:
		return "not frozen"
	case ReadySaturated:
		return "saturated"
	default:
		return fmt.Sprintf("ReadyState(%d)", int(s))
	}
}

// ReadyState reports the engine's current readiness.
func (e *Engine) ReadyState() ReadyState {
	e.mu.RLock()
	frozen, admit := e.frozen, e.admit
	e.mu.RUnlock()
	switch {
	case !frozen:
		return ReadyNotFrozen
	case admit.Saturated():
		return ReadySaturated
	default:
		return ReadyOK
	}
}

// Ready reports whether the engine can usefully accept a new query
// right now: frozen, and admission (when enabled) is not saturated.
func (e *Engine) Ready() bool {
	return e.ReadyState() == ReadyOK
}

// NewDemoEngine returns an engine preloaded with the paper's running
// example: the Figure 1 KG, the Figure 3 XKG extension, and the Figure 4
// relaxation rules. It is frozen and ready to query.
func NewDemoEngine() *Engine {
	d := dataset.NewDemo()
	e := &Engine{
		opts:  (*Options)(nil).withDefaults(),
		st:    d.Store,
		rules: d.Rules,
	}
	e.initQueryPipeline(nil, 0)
	e.frozen = true
	return e
}

// DemoQuery is one of the paper's Figure 2 information needs.
type DemoQuery struct {
	User                   string
	Need                   string
	Query                  string
	Want                   string
	EmptyWithoutRelaxation bool
}

// DemoQueries returns the four Figure 2 queries (users A–D).
func DemoQueries() []DemoQuery {
	var out []DemoQuery
	for _, q := range dataset.NewDemo().Queries {
		out = append(out, DemoQuery{
			User:                   q.User,
			Need:                   q.Need,
			Query:                  q.Query,
			Want:                   q.Want,
			EmptyWithoutRelaxation: q.EmptyWithoutRelaxation,
		})
	}
	return out
}

// SyntheticConfig configures the synthetic world generator that stands in
// for the paper's Yago2s + ClueWeb substrate (see DESIGN.md).
type SyntheticConfig struct {
	Seed         int64
	People       int
	Cities       int
	Countries    int
	Universities int
	Fields       int
	Prizes       int
	Leagues      int
}

// DefaultSyntheticConfig returns the small default world.
func DefaultSyntheticConfig() SyntheticConfig {
	c := dataset.DefaultConfig()
	return SyntheticConfig{
		Seed: c.Seed, People: c.People, Cities: c.Cities,
		Countries: c.Countries, Universities: c.Universities,
		Fields: c.Fields, Prizes: c.Prizes, Leagues: c.Leagues,
	}
}

// EvalQuery is one workload query with graded relevance judgments.
type EvalQuery struct {
	ID        string
	Category  string
	Text      string
	Var       string
	Judgments map[string]float64
}

// NewSyntheticEngine generates a synthetic world, builds the XKG from its
// corpus, freezes the engine, registers the default manual rules plus
// mined rules, and returns the engine together with a workload of
// evaluation queries.
func NewSyntheticEngine(cfg SyntheticConfig, numQueries int) (*Engine, []EvalQuery, error) {
	dcfg := dataset.DefaultConfig()
	if cfg.Seed != 0 {
		dcfg.Seed = cfg.Seed
	}
	if cfg.People > 0 {
		dcfg.People = cfg.People
	}
	if cfg.Cities > 0 {
		dcfg.Cities = cfg.Cities
	}
	if cfg.Countries > 0 {
		dcfg.Countries = cfg.Countries
	}
	if cfg.Universities > 0 {
		dcfg.Universities = cfg.Universities
	}
	if cfg.Fields > 0 {
		dcfg.Fields = cfg.Fields
	}
	if cfg.Prizes > 0 {
		dcfg.Prizes = cfg.Prizes
	}
	if cfg.Leagues > 0 {
		dcfg.Leagues = cfg.Leagues
	}
	world := dataset.Generate(dcfg)

	e := New(nil)
	world.PopulateKG(e.st)
	docs := make([]Document, len(world.Docs()))
	for i, d := range world.Docs() {
		docs[i] = Document{ID: d.ID, Text: d.Text}
	}
	if _, err := e.ExtendFromDocuments(docs); err != nil {
		return nil, nil, err
	}
	e.Freeze()
	if err := e.AddRule("advisor-inv", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0); err != nil {
		return nil, nil, err
	}
	if _, err := e.MineRules(DefaultMiningConfig()); err != nil {
		return nil, nil, err
	}

	var queries []EvalQuery
	for _, wq := range world.Workload(numQueries) {
		j := make(map[string]float64, len(wq.Judgments))
		for k, v := range wq.Judgments {
			j[k] = v
		}
		queries = append(queries, EvalQuery{
			ID: wq.ID, Category: wq.Category, Text: wq.Text, Var: wq.Var, Judgments: j,
		})
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i].ID < queries[j].ID })
	return e, queries, nil
}

// Ask translates a natural-language question into an extended
// triple-pattern query and evaluates it (§6: TriniT as a QA back-end).
// It returns the result together with the generated query text. Questions
// outside the template repertoire return an error wrapping ErrParse; the
// caller can fall back to the structured Query syntax. It is AskContext
// without cancellation.
func (e *Engine) Ask(question string) (*Result, string, error) {
	return e.AskContext(context.Background(), question)
}

// AskContext is Ask scoped to ctx, with per-query options — the same
// cancellation and option semantics as QueryContext.
func (e *Engine) AskContext(ctx context.Context, question string, opts ...QueryOption) (*Result, string, error) {
	e.mu.RLock()
	frozen := e.frozen
	e.mu.RUnlock()
	if !frozen {
		return nil, "", fmt.Errorf("%w (call Freeze before asking)", ErrNotFrozen)
	}
	ver := e.currentVersion()
	tl, err := ver.translator().Translate(question)
	ver.unpin()
	if err != nil {
		return nil, "", fmt.Errorf("%w: %w", ErrParse, err)
	}
	res, err := e.QueryContext(ctx, tl.Query, opts...)
	if err != nil {
		return res, tl.Query, err
	}
	return res, tl.Query, nil
}

// Save writes the engine's extended knowledge graph and relaxation rules
// to w in the line-oriented TNT format (see internal/serial). A saved
// engine can be restored with Load, skipping corpus re-extraction.
func (e *Engine) Save(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := serial.WriteStore(w, e.st); err != nil {
		return err
	}
	return serial.WriteRules(w, e.rules)
}

// Load restores an engine from a TNT stream written by Save (or authored
// by hand). The returned engine is not frozen, so further facts and
// documents may be added before calling Freeze.
func Load(r io.Reader, opts *Options) (*Engine, error) {
	e := New(opts)
	dec, err := serial.Read(r, e.st)
	if err != nil {
		return nil, err
	}
	e.rules = dec.Rules
	return e, nil
}

// SaveFile and LoadFile are path-based conveniences over Save and Load.
func (e *Engine) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores an engine from a file written by SaveFile.
func LoadFile(path string, opts *Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts)
}
