package trinit

// Public-API contract of sharded execution: an Options.Shards engine
// answers every query identically to an unsharded engine over the same
// graph — bindings, scores, and explanations — and WithoutSharding is
// the in-API oracle; per-shard snapshots reload into working engines,
// with the 1-shard image byte-identical to SaveSnapshot's output; a
// durable directory written unsharded reopens sharded and vice versa.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// shardedTwin snapshots the shared synthetic engine and reloads it with
// n shards, so tests get a sharded engine over the identical graph and
// rule set without mutating the shared fixture.
func shardedTwin(t *testing.T, n int) (*Engine, []EvalQuery) {
	t.Helper()
	base, queries := syntheticWorkload(t)
	path := filepath.Join(t.TempDir(), "world.trnt")
	if err := base.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	e, err := LoadSnapshot(path, WithShards(n))
	if err != nil {
		t.Fatal(err)
	}
	return e, queries
}

func TestEngineShardedParity(t *testing.T) {
	base, queries := syntheticWorkload(t)
	sharded, _ := shardedTwin(t, 3)

	ss := sharded.ShardingStats()
	if ss.Shards != 3 || len(ss.Triples) != 3 || len(ss.Owned) != 3 {
		t.Fatalf("ShardingStats = %+v, want 3 shards", ss)
	}
	owned := 0
	for _, c := range ss.Owned {
		owned += c
	}
	if owned != base.Stats().Triples {
		t.Fatalf("owned triples sum to %d, store has %d", owned, base.Stats().Triples)
	}
	if ss.Skew < 1 {
		t.Fatalf("skew %v < 1", ss.Skew)
	}

	marshal := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	broadcasts := 0
	// Trace coverage accumulates across the workload: narrow queries may
	// run only on the shards, join-heavy ones only residually.
	seen := map[int]bool{}
	for _, wq := range queries {
		want, err := base.Query(wq.Text)
		if err != nil {
			t.Fatalf("%s unsharded: %v", wq.ID, err)
		}
		got, err := sharded.Query(wq.Text)
		if err != nil {
			t.Fatalf("%s sharded: %v", wq.ID, err)
		}
		// Answers — bindings, scores and rendered explanations — must
		// agree exactly; the explanation check is what proves each
		// derivation was resolved against its winning shard's store.
		if g, w := marshal(got.Answers), marshal(want.Answers); g != w {
			t.Fatalf("%s: sharded answers differ\n got:  %s\n want: %s", wq.ID, g, w)
		}
		if got.Shards != 3 {
			t.Errorf("%s: Result.Shards = %d, want 3", wq.ID, got.Shards)
		}
		if want.Shards != 0 {
			t.Errorf("%s: unsharded Result.Shards = %d, want 0", wq.ID, want.Shards)
		}
		// The trace carries every run's provenance, shard-major; index 3
		// (== Result.Shards) is the coordinator's residual run.
		for _, tr := range got.Trace {
			if tr.Shard < 0 || tr.Shard > 3 {
				t.Errorf("%s: trace names shard %d outside 0..3", wq.ID, tr.Shard)
			}
			seen[tr.Shard] = true
		}
		broadcasts += got.Metrics.BoundBroadcasts

		// WithoutSharding is the in-API oracle: full result equality
		// with a plain unsharded engine, derivations included.
		oracle, err := sharded.QueryContext(t.Context(), wq.Text, WithoutSharding())
		if err != nil {
			t.Fatalf("%s WithoutSharding: %v", wq.ID, err)
		}
		if oracle.Shards != 0 {
			t.Errorf("%s: WithoutSharding Result.Shards = %d, want 0", wq.ID, oracle.Shards)
		}
		if g, w := marshal(oracle.Answers), marshal(want.Answers); g != w {
			t.Fatalf("%s: WithoutSharding answers differ from unsharded engine", wq.ID)
		}

		// Lazy explanations resolve against the winning shard's store
		// exactly as eager ones do.
		lazy, err := sharded.QueryContext(t.Context(), wq.Text, WithoutExplanations())
		if err != nil {
			t.Fatalf("%s lazy: %v", wq.ID, err)
		}
		for i := range lazy.Answers {
			ex, err := lazy.Explain(i)
			if err != nil {
				t.Fatalf("%s: Explain(%d): %v", wq.ID, i, err)
			}
			if !reflect.DeepEqual(ex, got.Answers[i].Explanation) {
				t.Fatalf("%s: lazy explanation %d differs from eager", wq.ID, i)
			}
		}
	}
	if broadcasts == 0 {
		t.Error("no bound broadcasts surfaced in Result.Metrics across the workload")
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("workload traces never touched every shard: %v", seen)
	}
	if !seen[3] {
		t.Errorf("workload never exercised the residual run: %v", seen)
	}
	ss = sharded.ShardingStats()
	if ss.ShardedQueries == 0 || ss.BoundBroadcasts == 0 {
		t.Errorf("sharding counters did not advance: %+v", ss)
	}
}

func TestReshard(t *testing.T) {
	e, queries := shardedTwin(t, 1) // Shards=1: group stays off
	if e.ShardingStats().Shards != 0 {
		t.Fatalf("1-shard engine built a coordinator: %+v", e.ShardingStats())
	}
	want, err := e.Query(queries[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reshard(2); err != nil {
		t.Fatal(err)
	}
	if got := e.ShardingStats().Shards; got != 2 {
		t.Fatalf("after Reshard(2): %d shards", got)
	}
	got, err := e.Query(queries[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 2 || len(got.Answers) != len(want.Answers) {
		t.Fatalf("resharded query: Shards=%d, %d answers (want %d)", got.Shards, len(got.Answers), len(want.Answers))
	}
	for i := range got.Answers {
		if got.Answers[i].Score != want.Answers[i].Score ||
			!reflect.DeepEqual(got.Answers[i].Bindings, want.Answers[i].Bindings) {
			t.Fatalf("answer %d diverged after Reshard", i)
		}
	}
	if err := e.Reshard(1); err != nil {
		t.Fatal(err)
	}
	if e.ShardingStats().Shards != 0 {
		t.Fatal("Reshard(1) did not return to the single-store pipeline")
	}

	unfrozen := New(nil)
	if err := unfrozen.Reshard(2); err == nil {
		t.Fatal("Reshard on an unfrozen engine did not fail")
	}
}

func TestSaveShardSnapshots(t *testing.T) {
	base, queries := syntheticWorkload(t)
	dir := t.TempDir()

	// Unsharded: the single shard image is byte-identical to
	// SaveSnapshot's output.
	single := filepath.Join(dir, "full.trnt")
	if err := base.SaveSnapshot(single); err != nil {
		t.Fatal(err)
	}
	paths, err := base.SaveShardSnapshots(filepath.Join(dir, "unsharded"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("unsharded engine wrote %d shard snapshots", len(paths))
	}
	full, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, got) {
		t.Fatalf("unsharded shard-000.trnt differs from SaveSnapshot output (%d vs %d bytes)", len(got), len(full))
	}

	// Sharded: one image per shard, each a standalone loadable engine
	// whose store size matches the coordinator's stats.
	sharded, _ := shardedTwin(t, 2)
	paths, err = sharded.SaveShardSnapshots(filepath.Join(dir, "sharded"))
	if err != nil {
		t.Fatal(err)
	}
	ss := sharded.ShardingStats()
	if len(paths) != 2 {
		t.Fatalf("2-shard engine wrote %d snapshots", len(paths))
	}
	for i, p := range paths {
		se, err := LoadSnapshot(p, nil)
		if err != nil {
			t.Fatalf("shard %d snapshot does not load: %v", i, err)
		}
		if se.Stats().Triples != ss.Triples[i] {
			t.Errorf("shard %d snapshot holds %d triples, stats say %d", i, se.Stats().Triples, ss.Triples[i])
		}
		if se.Stats().Rules != base.Stats().Rules {
			t.Errorf("shard %d snapshot carries %d rules, engine has %d", i, se.Stats().Rules, base.Stats().Rules)
		}
		if _, err := se.Query(queries[0].Text); err != nil {
			t.Errorf("shard %d engine does not answer: %v", i, err)
		}
	}
}

func TestPersistOpenSharded(t *testing.T) {
	base, queries := syntheticWorkload(t)
	dir := t.TempDir()

	// A sharded engine persists the full store: the directory written by
	// an unsharded engine reopens sharded, answers unchanged.
	twin, _ := shardedTwin(t, 2)
	if err := twin.Persist(dir); err != nil {
		t.Fatal(err)
	}
	if err := twin.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on a sharded engine: %v", err)
	}
	if err := twin.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, info, err := Open(dir, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if info.SnapshotEpoch != 2 {
		t.Fatalf("snapshot epoch %d after one checkpoint, want 2", info.SnapshotEpoch)
	}
	if got := reopened.ShardingStats().Shards; got != 3 {
		t.Fatalf("reopened engine has %d shards, want 3", got)
	}
	for _, wq := range queries[:5] {
		want, err := base.Query(wq.Text)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reopened.Query(wq.Text)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Answers) != len(want.Answers) {
			t.Fatalf("%s: %d answers after reopen, want %d", wq.ID, len(got.Answers), len(want.Answers))
		}
		for i := range got.Answers {
			if got.Answers[i].Score != want.Answers[i].Score ||
				!reflect.DeepEqual(got.Answers[i].Bindings, want.Answers[i].Bindings) {
				t.Fatalf("%s: answer %d diverged across persist/open", wq.ID, i)
			}
		}
	}
}
