package trinit

// Live-ingest contract, run with -race:
//
//   - an engine that freezes early and ingests the remaining facts live
//     (in one batch, in two batches, and with a compaction in between)
//     is byte-identical to an oracle that saw everything before Freeze —
//     same answers, explanations, suggestions, notices;
//   - ingest never blocks queries: concurrent readers keep the version
//     they pinned while batches land and compactions fold;
//   - lazy explanations survive compaction (the pinned version outlives
//     the publish that replaced it);
//   - durable engines write batches ahead to the log, rebuild the delta
//     overlay on recovery, and fold it into the next-epoch segment on
//     Checkpoint.

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// ingestWorld returns a small fact sequence with KG facts, literals, XKG
// token facts, and both directions of duplicate-key confidence conflict
// (a later higher-confidence replacement that must win and a later
// lower-confidence duplicate that must be dropped), plus queries whose
// answers straddle the freeze point.
func ingestWorld() (facts []Fact, queries []string) {
	facts = []Fact{
		{Subject: "MarieCurie", Predicate: "bornIn", Object: "Warsaw"},
		{Subject: "Warsaw", Predicate: "locatedIn", Object: "Poland"},
		{Subject: "MarieCurie", Predicate: "hasWonPrize", Object: "NobelPrize"},
		{Subject: "MarieCurie", Predicate: "bornOn", Object: "1867-11-07", LiteralObject: true},
		{Subject: "PierreCurie", Predicate: "bornIn", Object: "Paris"},
		{Subject: "MarieCurie", Predicate: "worked with", Object: "PierreCurie", XKG: true, Confidence: 0.55, Doc: "d1", Sentence: "s1"},
		// --- freeze point: everything below arrives via IngestFacts ---
		{Subject: "Paris", Predicate: "locatedIn", Object: "France"},
		{Subject: "PierreCurie", Predicate: "hasWonPrize", Object: "NobelPrize"},
		{Subject: "IreneCurie", Predicate: "bornIn", Object: "Paris"},
		{Subject: "IreneCurie", Predicate: "bornOn", Object: "1897-09-12", LiteralObject: true},
		// Higher confidence for an existing XKG key: must replace in place.
		{Subject: "MarieCurie", Predicate: "worked with", Object: "PierreCurie", XKG: true, Confidence: 0.9, Doc: "d2", Sentence: "s2"},
		// Lower confidence for the same key: must be dropped.
		{Subject: "MarieCurie", Predicate: "worked with", Object: "PierreCurie", XKG: true, Confidence: 0.3, Doc: "d3", Sentence: "s3"},
		{Subject: "IreneCurie", Predicate: "studied under", Object: "MarieCurie", XKG: true, Confidence: 0.8, Doc: "d4", Sentence: "s4"},
		{Subject: "NewTokenLab", Predicate: "employs", Object: "IreneCurie", XKG: true, Confidence: 0.7},
	}
	queries = []string{
		"?x bornIn ?y",
		"?x bornIn ?y . ?y locatedIn ?z",
		"?x hasWonPrize NobelPrize",
		"MarieCurie 'worked with' ?x",
		"?x 'studied under' MarieCurie",
		"IreneCurie ?p ?y",
		"?x bornIn Paris . ?x 'studied under' ?t",
	}
	return facts, queries
}

// ingestFreezeAt is the index of the first fact applied after Freeze in
// ingestWorld's sequence.
const ingestFreezeAt = 6

// applyPreFreeze routes a Fact through the pre-Freeze mutation API.
func applyPreFreeze(t *testing.T, e *Engine, f Fact) {
	t.Helper()
	var err error
	switch {
	case f.XKG:
		err = e.AddTokenTriple(f.Subject, f.Predicate, f.Object, f.Confidence, f.Doc, f.Sentence)
	case f.LiteralObject:
		err = e.AddKGLiteral(f.Subject, f.Predicate, f.Object)
	default:
		err = e.AddKGFact(f.Subject, f.Predicate, f.Object)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// ingestOracle builds the reference engine that saw every fact before
// Freeze.
func ingestOracle(t *testing.T, opts *Options) *Engine {
	t.Helper()
	facts, _ := ingestWorld()
	e := New(opts)
	for _, f := range facts {
		applyPreFreeze(t, e, f)
	}
	e.Freeze()
	ingestRules(t, e)
	return e
}

// ingestPartial builds an engine frozen at the freeze point, leaving the
// tail of the world for IngestFacts.
func ingestPartial(t *testing.T, opts *Options) (*Engine, []Fact) {
	t.Helper()
	facts, _ := ingestWorld()
	e := New(opts)
	for _, f := range facts[:ingestFreezeAt] {
		applyPreFreeze(t, e, f)
	}
	e.Freeze()
	ingestRules(t, e)
	return e, facts[ingestFreezeAt:]
}

func ingestRules(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.AddRule("family-city", "?x bornIn ?y => ?x livesIn ?y", 0.8); err != nil {
		t.Fatal(err)
	}
}

// compareIngest runs every world query against both engines after
// warming both caches and demands byte-identical full results —
// explanations and metrics included.
func compareIngest(t *testing.T, got, want *Engine, label string) {
	t.Helper()
	_, queries := ingestWorld()
	for _, q := range queries {
		_, _ = got.Query(q)
		_, _ = want.Query(q)
		g, err := got.Query(q)
		if err != nil {
			t.Fatalf("%s: %q: %v", label, q, err)
		}
		w, err := want.Query(q)
		if err != nil {
			t.Fatalf("%s oracle: %q: %v", label, q, err)
		}
		if a, b := renderResult(t, g), renderResult(t, w); a != b {
			t.Fatalf("%s: %q differs\n live:   %s\n oracle: %s", label, q, a, b)
		}
	}
}

func TestIngestDifferential(t *testing.T) {
	oracle := ingestOracle(t, nil)

	t.Run("one-batch", func(t *testing.T) {
		e, tail := ingestPartial(t, nil)
		n, err := e.IngestFacts(tail)
		if err != nil {
			t.Fatal(err)
		}
		// Every tail fact changes state except the lower-confidence
		// duplicate, which the Add path would also drop.
		if want := len(tail) - 1; n != want {
			t.Fatalf("IngestFacts applied %d facts, want %d", n, want)
		}
		ms := e.MemoryStats()
		if ms.DeltaTriples == 0 || ms.DeltaOverrides == 0 {
			t.Fatalf("expected live delta with overrides, got %+v", ms)
		}
		compareIngest(t, e, oracle, "one-batch")
	})

	t.Run("two-batches-then-compact", func(t *testing.T) {
		e, tail := ingestPartial(t, nil)
		if _, err := e.IngestFacts(tail[:3]); err != nil {
			t.Fatal(err)
		}
		if _, err := e.IngestFacts(tail[3:]); err != nil {
			t.Fatal(err)
		}
		compareIngest(t, e, oracle, "two-batches")
		if err := e.Compact(); err != nil {
			t.Fatal(err)
		}
		ms := e.MemoryStats()
		if ms.DeltaTriples != 0 || ms.DeltaOverrides != 0 {
			t.Fatalf("delta not folded by Compact: %+v", ms)
		}
		if ms.Compactions == 0 {
			t.Fatal("Compact did not count a compaction")
		}
		compareIngest(t, e, oracle, "compacted")
	})

	t.Run("rejections", func(t *testing.T) {
		e := New(nil)
		if err := e.AddKGFact("A", "p", "B"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.IngestFacts([]Fact{{Subject: "A", Predicate: "p", Object: "C"}}); err == nil {
			t.Fatal("IngestFacts on an unfrozen engine succeeded")
		}
		e.Freeze()
		if _, err := e.IngestFacts([]Fact{{Subject: "A", Predicate: "q", Object: "B", XKG: true, Confidence: 1.5}}); err == nil {
			t.Fatal("IngestFacts accepted confidence > 1")
		}
		// A batch that changes nothing reports zero without publishing.
		n, err := e.IngestFacts([]Fact{{Subject: "A", Predicate: "p", Object: "B"}})
		if err != nil || n != 0 {
			t.Fatalf("no-op batch: n=%d err=%v", n, err)
		}
	})
}

// TestIngestConcurrentQueries interleaves queries from several goroutines
// with live ingest batches and a compaction. No query may fail or block
// on ingest, and the settled engine must match the oracle.
func TestIngestConcurrentQueries(t *testing.T) {
	oracle := ingestOracle(t, nil)
	e, tail := ingestPartial(t, nil)
	_, queries := ingestWorld()

	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.QueryContext(context.Background(), queries[i%len(queries)])
				if err != nil {
					errs <- err
					return
				}
				// The pinned version stays coherent: every explanation
				// renders against the store the answer came from, even if
				// ingest or compaction published meanwhile.
				for j := range res.Answers {
					if _, err := res.Explain(j); err != nil {
						errs <- fmt.Errorf("Explain(%d): %w", j, err)
						return
					}
				}
			}
		}()
	}
	for _, f := range tail {
		if _, err := e.IngestFacts([]Fact{f}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	compareIngest(t, e, oracle, "settled")
}

// TestIngestLazyExplainAfterCompaction pins the MVCC guarantee directly:
// a result obtained before ingest+compaction must still render its lazy
// explanations from the version it pinned, identical to an eager run on
// the same pre-ingest state.
func TestIngestLazyExplainAfterCompaction(t *testing.T) {
	e, tail := ingestPartial(t, nil)
	eager, _ := ingestPartial(t, nil)

	const q = "?x bornIn ?y"
	res, err := e.QueryContext(context.Background(), q, WithoutExplanations())
	if err != nil {
		t.Fatal(err)
	}
	want, err := eager.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestFacts(tail); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(want.Answers) {
		t.Fatalf("answer count %d vs %d", len(res.Answers), len(want.Answers))
	}
	for i := range res.Answers {
		ex, err := res.Explain(i)
		if err != nil {
			t.Fatalf("Explain(%d) after compaction: %v", i, err)
		}
		if a, b := fmt.Sprintf("%+v", ex), fmt.Sprintf("%+v", want.Answers[i].Explanation); a != b {
			t.Fatalf("answer %d explanation drifted after compaction\n lazy:  %s\n eager: %s", i, a, b)
		}
	}
}

// TestIngestDurableRecovery round-trips live ingest through the
// write-ahead log: batches land durable before acknowledgement, a kill
// without Checkpoint replays them into the same delta overlay, and a
// Checkpoint folds the overlay into the next-epoch segment that reopens
// with an empty delta.
func TestIngestDurableRecovery(t *testing.T) {
	oracle := ingestOracle(t, nil)
	dir := t.TempDir()
	e, tail := ingestPartial(t, nil)
	if err := e.Persist(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestFacts(tail); err != nil {
		t.Fatal(err)
	}
	// Kill: abandon the engine without Close or Checkpoint.

	re, info, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only applied facts were logged: the dropped lower-confidence
	// duplicate never reached the WAL.
	if want := len(tail) - 1; info.WALReplayed != want {
		t.Fatalf("WALReplayed = %d, want %d", info.WALReplayed, want)
	}
	ms := re.MemoryStats()
	if ms.DeltaTriples == 0 {
		t.Fatalf("recovery did not rebuild the delta overlay: %+v", ms)
	}
	compareIngest(t, re, oracle, "recovered")

	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if ms := re.MemoryStats(); ms.DeltaTriples != 0 || ms.Compactions == 0 {
		t.Fatalf("Checkpoint did not fold the delta: %+v", ms)
	}
	compareIngest(t, re, oracle, "checkpointed")
	re.Close()

	re2, info2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if info2.SnapshotEpoch != 2 || info2.WALReplayed != 0 {
		t.Fatalf("post-checkpoint recovery info: %+v", info2)
	}
	if ms := re2.MemoryStats(); ms.DeltaTriples != 0 {
		t.Fatalf("post-checkpoint reopen still has a delta: %+v", ms)
	}
	compareIngest(t, re2, oracle, "reopened")
}

// TestIngestAutoCompact checks the CompactAfter threshold: once the
// delta outgrows it, a background fold runs and the delta drains.
func TestIngestAutoCompact(t *testing.T) {
	e, tail := ingestPartial(t, &Options{CompactAfter: 2})
	for _, f := range tail {
		if _, err := e.IngestFacts([]Fact{f}); err != nil {
			t.Fatal(err)
		}
	}
	// The background compaction is asynchronous; force any remainder.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	ms := e.MemoryStats()
	if ms.DeltaTriples != 0 {
		t.Fatalf("delta not drained: %+v", ms)
	}
	if ms.Compactions == 0 {
		t.Fatal("no compaction ran")
	}
	compareIngest(t, e, ingestOracle(t, nil), "auto-compacted")
}
