module trinit

go 1.24
