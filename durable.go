package trinit

// Durability: crash-safe persistence of the engine behind a data
// directory.
//
// A data directory holds at most two files — snapshot.trnt, a
// checksummed binary segment image of the frozen store plus rules at one
// epoch, and wal.log, the write-ahead delta log of everything that
// happened since (triple ingest before Freeze, rule edits after it).
// Open loads the snapshot, replays the log, and verifies every checksum;
// Checkpoint folds the log into a fresh snapshot via temp-file + fsync +
// atomic rename.
//
// The protocol invariants:
//
//   - A mutation is acknowledged only after its WAL record is fsynced;
//     rule mutations append before publishing in memory, batch ingest
//     appends before returning to the caller.
//   - WAL records carry the epoch they apply on top of. Recovery applies
//     records at the snapshot's epoch, skips older ones (a crash between
//     publishing a new snapshot and rotating the log leaves both — the
//     snapshot already contains those deltas), and rejects newer ones as
//     corruption.
//   - Durability fails stop: after any write-ahead or checkpoint error
//     the on-disk state may no longer mirror memory, so the engine
//     refuses further durable mutations with the original error and the
//     directory must be reopened. Recovery then lands on the last
//     acknowledged consistent state.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/serial"
	"trinit/internal/store"
	"trinit/internal/suggest"
)

const (
	snapshotFile = "snapshot.trnt"
	walFile      = "wal.log"
)

// ErrCorrupt is the typed error for damaged on-disk state: checksum
// mismatches, truncated snapshots, mid-file WAL corruption, or log
// records inconsistent with the snapshot they accompany. It aliases
// internal/serial's sentinel so errors.Is works across the API boundary.
var ErrCorrupt = serial.ErrCorrupt

// durability is the engine's attachment to a data directory.
type durability struct {
	mu    sync.Mutex
	dir   string
	wal   *serial.WAL
	epoch uint64
	// err is sticky: the first durability failure. Once set, disk and
	// memory may diverge, so every later durable mutation fails with it.
	err error
}

// append stamps the records with the current epoch and writes them ahead
// of publication. Callers hold d.mu.
func (d *durability) append(recs ...serial.WALRecord) error {
	if d.err != nil {
		return fmt.Errorf("trinit: durability disabled by earlier failure: %w", d.err)
	}
	for i := range recs {
		recs[i].Epoch = d.epoch
	}
	if err := d.wal.Append(recs...); err != nil {
		d.err = err
		return fmt.Errorf("trinit: write-ahead log append: %w", err)
	}
	return nil
}

// HasData reports whether dir already holds a snapshot or write-ahead
// log — i.e. whether Open would recover state rather than start empty.
// Callers bootstrapping a directory (build an engine, Persist it) use
// this to decide between the two paths.
func HasData(dir string) bool {
	for _, name := range []string{snapshotFile, walFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// SnapshotEpoch is the loaded snapshot's epoch; 0 means the
	// directory held no snapshot yet.
	SnapshotEpoch uint64
	// SnapshotBytes is the snapshot file size (0 without a snapshot).
	SnapshotBytes int64
	// IndexesRebuilt reports that the snapshot predated the current
	// index format, so the permutation indexes were re-sorted from the
	// triple column instead of loaded eagerly.
	IndexesRebuilt bool
	// WALReplayed counts delta-log records applied on top of the
	// snapshot; WALSkipped counts stale records from older epochs.
	WALReplayed, WALSkipped int
	// TornBytes counts the bytes of a torn WAL tail that recovery
	// truncated away (an interrupted append; its mutation was never
	// acknowledged).
	TornBytes int
	// LoadTime is the wall-clock duration of Open.
	LoadTime time.Duration
}

// Open loads the engine persisted in dir, creating the directory if
// needed. With a snapshot present the store loads frozen and the delta
// log replays rule edits on top; without one, the log replays triple
// ingest into an unfrozen engine that may keep ingesting. Every
// checksum is verified; damage surfaces as an error wrapping ErrCorrupt,
// never as a silently partial store. Pass nil opts for defaults.
//
// The returned engine appends its mutations to dir's write-ahead log;
// call Checkpoint to fold the log into a fresh snapshot and Close when
// done.
func Open(dir string, opts *Options) (*Engine, *RecoveryInfo, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// Sweep temp files: a crash mid-checkpoint leaves snapshot.trnt.tmp
	// behind, and the next checkpoint would truncate it anyway.
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}

	info := &RecoveryInfo{}
	var e *Engine
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		snap, err := serial.ReadSnapshotFile(snapPath)
		if err != nil {
			return nil, nil, err
		}
		e = engineFromSnapshot(snap, opts)
		info.SnapshotEpoch = snap.Epoch
		info.SnapshotBytes = snap.Bytes
		info.IndexesRebuilt = snap.IndexesRebuilt
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	} else {
		e = New(opts)
	}

	wal, replay, err := serial.OpenWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, nil, err
	}
	info.TornBytes = replay.TornBytes
	for _, rec := range replay.Records {
		switch {
		case rec.Epoch < info.SnapshotEpoch:
			// Folded into the snapshot already: a crash hit between the
			// snapshot rename and the log rotation.
			info.WALSkipped++
			continue
		case rec.Epoch > info.SnapshotEpoch:
			wal.Close()
			return nil, nil, fmt.Errorf("%w: delta-log record at epoch %d, snapshot at epoch %d",
				ErrCorrupt, rec.Epoch, info.SnapshotEpoch)
		}
		if err := e.applyWALRecord(rec); err != nil {
			wal.Close()
			return nil, nil, err
		}
		info.WALReplayed++
	}
	if !e.frozen {
		// Mirror further batch ingest into the log (replayed rows are
		// drained away first so they are not logged twice).
		e.st.DrainAdds()
		e.st.TrackAdds(true)
	}
	e.dur.Store(&durability{dir: dir, wal: wal, epoch: info.SnapshotEpoch})
	info.LoadTime = time.Since(start)
	return e, info, nil
}

// engineFromSnapshot assembles a frozen, queryable engine around a
// decoded snapshot.
func engineFromSnapshot(snap *serial.Snapshot, opts *Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{
		opts:      o,
		st:        snap.Store,
		rules:     snap.Rules,
		admit:     newAdmission(o.AdmissionCapacity, o.AdmissionQueue),
		defBudget: o.DefaultBudget,
	}
	e.suggester = suggest.New(e.st)
	e.initQueryPipeline()
	e.frozen = true
	return e
}

// applyWALRecord replays one delta-log record during Open. The engine is
// single-owner here, so no locks are taken.
func (e *Engine) applyWALRecord(rec serial.WALRecord) error {
	switch rec.Op {
	case serial.WALTriple:
		if e.frozen {
			return fmt.Errorf("%w: triple delta-log record at the snapshot's epoch (the store froze before the snapshot)", ErrCorrupt)
		}
		prov := rdf.NoProv
		if rec.Doc != "" || rec.Sentence != "" {
			prov = e.st.Prov().Add(rdf.Prov{Doc: rec.Doc, Sentence: rec.Sentence})
		}
		e.st.AddFact(rec.S, rec.P, rec.O, rec.Source, rec.Conf, prov)
	case serial.WALRuleAdd:
		r, err := relax.ParseRule(rec.RuleID, rec.RuleText, rec.RuleWeight, rec.RuleOrigin)
		if err != nil {
			return fmt.Errorf("%w: delta-log rule %q: %v", ErrCorrupt, rec.RuleID, err)
		}
		e.rules = append(e.rules, r)
	case serial.WALRuleRemove:
		kept := e.rules[:0:0]
		for _, r := range e.rules {
			if r.ID != rec.RuleID {
				kept = append(kept, r)
			}
		}
		e.rules = kept
	case serial.WALRuleClear:
		e.rules = nil
	default:
		return fmt.Errorf("%w: unknown delta-log op %d", ErrCorrupt, rec.Op)
	}
	return nil
}

// Persist attaches a durable data directory to a frozen in-memory engine
// (demo, synthetic, or TNT-loaded): it writes the initial snapshot at
// epoch 1 and opens a fresh write-ahead log. The directory must not
// already hold a snapshot or log — reopen those with Open instead.
//
// Sharded engines persist exactly like unsharded ones: the snapshot
// always images the retained full store, never the per-shard partitions,
// so the on-disk format is independent of Options.Shards and a directory
// written at one shard count reopens at any other (partitioning is a
// deterministic function of the store and N, recomputed by Open). Use
// SaveShardSnapshots for per-shard images.
func (e *Engine) Persist(dir string) error {
	if e.dur.Load() != nil {
		return fmt.Errorf("trinit: engine is already durable")
	}
	e.mu.RLock()
	frozen, st, rules := e.frozen, e.st, e.rules
	e.mu.RUnlock()
	if !frozen {
		return fmt.Errorf("%w: Persist requires a frozen engine", ErrNotFrozen)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range []string{snapshotFile, walFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return fmt.Errorf("trinit: %s already exists in %s (use Open)", name, dir)
		}
	}
	if err := serial.WriteSnapshotFile(filepath.Join(dir, snapshotFile), st, rules, 1); err != nil {
		return err
	}
	wal, _, err := serial.OpenWAL(filepath.Join(dir, walFile))
	if err != nil {
		return err
	}
	e.dur.Store(&durability{dir: dir, wal: wal, epoch: 1})
	return nil
}

// Checkpoint folds the write-ahead log into a fresh snapshot at the next
// epoch: the snapshot is written atomically (temp file, fsync, rename,
// directory fsync), then the log is rotated. A crash between the rename
// and the rotation is safe — recovery skips the log's now-stale records
// by epoch. The engine must be frozen and durable. On failure the
// engine's durability fails stop (see the package invariants): the
// directory still holds a consistent state, but it must be reopened.
// Like Persist, Checkpoint snapshots the retained full store, so its
// output is identical whether or not the engine runs sharded.
func (e *Engine) Checkpoint() error {
	d := e.dur.Load()
	if d == nil {
		return fmt.Errorf("trinit: engine has no data directory (use Open or Persist)")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return fmt.Errorf("trinit: durability disabled by earlier failure: %w", d.err)
	}
	e.mu.RLock()
	frozen, st, rules := e.frozen, e.st, e.rules
	e.mu.RUnlock()
	if !frozen {
		return fmt.Errorf("%w: Checkpoint requires a frozen engine", ErrNotFrozen)
	}
	// st is immutable after Freeze and the rules slice is copy-on-write,
	// so the snapshot encodes a consistent view without holding e.mu;
	// concurrent rule mutations serialize behind d.mu.
	if err := serial.WriteSnapshotFile(filepath.Join(d.dir, snapshotFile), st, rules, d.epoch+1); err != nil {
		// The rename may or may not have happened; either way the
		// on-disk state is consistent, but continuing to append at the
		// old epoch could lose acknowledged mutations if it did.
		d.err = err
		return err
	}
	d.epoch++
	if err := d.wal.Rotate(); err != nil {
		d.err = err
		return err
	}
	return nil
}

// Close detaches the engine from its data directory, closing the
// write-ahead log. The engine stays queryable in memory. Close returns
// the sticky durability error, if any, so a fail-stopped engine cannot
// shut down looking healthy.
func (e *Engine) Close() error {
	d := e.dur.Swap(nil)
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.wal.Close()
	if d.err != nil {
		return d.err
	}
	return err
}

// durLocked acquires the durability lock when the engine is durable and
// returns (d, unlock). Mutating methods take it before e.mu — the lock
// order that lets Checkpoint hold d.mu across a long snapshot write
// while queries keep reading — and release it after publishing.
func (e *Engine) durLocked() (*durability, func()) {
	d := e.dur.Load()
	if d == nil {
		return nil, func() {}
	}
	d.mu.Lock()
	return d, d.mu.Unlock
}

// logDrainedAdds mirrors the store rows inserted or replaced by the
// just-finished batch into the write-ahead log. Callers hold e.mu and
// d.mu. The rows are already applied in memory: a failure here therefore
// fails stop (sticky error) and the caller surfaces it.
func (e *Engine) logDrainedAdds(d *durability) error {
	ids := e.st.DrainAdds()
	if len(ids) == 0 {
		return nil
	}
	dict, prov := e.st.Dict(), e.st.Prov()
	recs := make([]serial.WALRecord, len(ids))
	for i, id := range ids {
		t := e.st.Triple(id)
		pv := prov.Get(t.Prov)
		recs[i] = serial.WALRecord{
			Op:       serial.WALTriple,
			S:        dict.Term(t.S),
			P:        dict.Term(t.P),
			O:        dict.Term(t.O),
			Source:   t.Source,
			Conf:     t.Conf,
			Doc:      pv.Doc,
			Sentence: pv.Sentence,
		}
	}
	return d.append(recs...)
}

// ruleAddRecord encodes a rule for the write-ahead log, in the same
// re-parseable text form the snapshot's rule section uses.
func ruleAddRecord(r *relax.Rule) serial.WALRecord {
	return serial.WALRecord{
		Op:         serial.WALRuleAdd,
		RuleID:     r.ID,
		RuleText:   serial.RuleText(r),
		RuleWeight: r.Weight,
		RuleOrigin: r.Origin,
	}
}

// SaveSnapshot writes a standalone binary snapshot of the frozen engine
// (store + rules) to path, atomically. Standalone snapshots always carry
// epoch 1; they are complete images with no accompanying delta log, made
// for the REPL's .save/.load and for benchmarks. Restore with
// LoadSnapshot.
func (e *Engine) SaveSnapshot(path string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.frozen {
		return fmt.Errorf("%w: SaveSnapshot requires a frozen engine", ErrNotFrozen)
	}
	return serial.WriteSnapshotFile(path, e.st, e.rules, 1)
}

// SaveShardSnapshots writes one standalone snapshot per shard into dir
// (shard-000.trnt, shard-001.trnt, …) and returns the paths written.
// Each file is a complete engine image — the shard's store, the shared
// (replicated) dictionary and provenance table, and the full rule set —
// loadable with LoadSnapshot: the bootstrap file a shard node of a
// networked deployment would receive. The engine must be frozen.
//
// On an unsharded engine the single shard-000.trnt images the full
// store and is byte-identical to SaveSnapshot's output; a 1-shard
// engine produces the same bytes, because shard 0 of a 1-shard
// partition replays the source store's exact triple sequence.
func (e *Engine) SaveShardSnapshots(dir string) ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.frozen {
		return nil, fmt.Errorf("%w: SaveShardSnapshots requires a frozen engine", ErrNotFrozen)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stores := []*store.Store{e.st}
	if e.group != nil {
		stores = stores[:0]
		for i := 0; i < e.group.Shards(); i++ {
			stores = append(stores, e.group.Store(i))
		}
	}
	paths := make([]string, 0, len(stores))
	for i, st := range stores {
		p := filepath.Join(dir, fmt.Sprintf("shard-%03d.trnt", i))
		if err := serial.WriteSnapshotFile(p, st, e.rules, 1); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// LoadSnapshot restores a frozen, queryable engine from a snapshot file
// written by SaveSnapshot (or from a data directory's snapshot.trnt,
// ignoring any delta log next to it). Pass nil opts for defaults.
func LoadSnapshot(path string, opts *Options) (*Engine, error) {
	snap, err := serial.ReadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return engineFromSnapshot(snap, opts), nil
}
