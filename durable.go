package trinit

// Durability: crash-safe persistence of the engine behind a data
// directory.
//
// A data directory holds at most two files — snapshot.trnt, a
// checksummed binary segment image of the frozen store plus rules at one
// epoch, and wal.log, the write-ahead delta log of everything that
// happened since (triple ingest before Freeze, rule edits after it).
// Open loads the snapshot, replays the log, and verifies every checksum;
// Checkpoint folds the log into a fresh snapshot via temp-file + fsync +
// atomic rename.
//
// The protocol invariants:
//
//   - A mutation is acknowledged only after its WAL record is fsynced;
//     rule mutations append before publishing in memory, batch ingest
//     appends before returning to the caller.
//   - WAL records carry the epoch they apply on top of. Recovery applies
//     records at the snapshot's epoch, skips older ones (a crash between
//     publishing a new snapshot and rotating the log leaves both — the
//     snapshot already contains those deltas), and rejects newer ones as
//     corruption.
//   - Durability fails stop: after any write-ahead or checkpoint error
//     the on-disk state may no longer mirror memory, so the engine
//     refuses further durable mutations with the original error and the
//     directory must be reopened. Recovery then lands on the last
//     acknowledged consistent state.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"trinit/internal/faultinject"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/serial"
	"trinit/internal/store"
)

const (
	snapshotFile = "snapshot.trnt"
	walFile      = "wal.log"
)

// ErrCorrupt is the typed error for damaged on-disk state: checksum
// mismatches, truncated snapshots, mid-file WAL corruption, or log
// records inconsistent with the snapshot they accompany. It aliases
// internal/serial's sentinel so errors.Is works across the API boundary.
var ErrCorrupt = serial.ErrCorrupt

// durability is the engine's attachment to a data directory.
type durability struct {
	mu    sync.Mutex
	dir   string
	wal   *serial.WAL
	epoch uint64
	// err is sticky: the first durability failure. Once set, disk and
	// memory may diverge, so every later durable mutation fails with it.
	err error
}

// append stamps the records with the current epoch and writes them ahead
// of publication. Callers hold d.mu.
func (d *durability) append(recs ...serial.WALRecord) error {
	if d.err != nil {
		return fmt.Errorf("trinit: durability disabled by earlier failure: %w", d.err)
	}
	for i := range recs {
		recs[i].Epoch = d.epoch
	}
	if err := d.wal.Append(recs...); err != nil {
		d.err = err
		return fmt.Errorf("trinit: write-ahead log append: %w", err)
	}
	return nil
}

// HasData reports whether dir already holds a snapshot or write-ahead
// log — i.e. whether Open would recover state rather than start empty.
// Callers bootstrapping a directory (build an engine, Persist it) use
// this to decide between the two paths.
func HasData(dir string) bool {
	for _, name := range []string{snapshotFile, walFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// SnapshotEpoch is the loaded snapshot's epoch; 0 means the
	// directory held no snapshot yet.
	SnapshotEpoch uint64
	// SnapshotBytes is the snapshot file size (0 without a snapshot).
	SnapshotBytes int64
	// IndexesRebuilt reports that the snapshot predated the current
	// index format, so the permutation indexes were re-sorted from the
	// triple column instead of loaded eagerly.
	IndexesRebuilt bool
	// Mapped reports that the snapshot is served zero-copy from a
	// memory-mapped segment (v2 format, mappable host) rather than
	// decoded onto the heap; MappedBytes is the mapping size.
	Mapped      bool
	MappedBytes int
	// WALReplayed counts delta-log records applied on top of the
	// snapshot; WALSkipped counts stale records from older epochs.
	WALReplayed, WALSkipped int
	// TornBytes counts the bytes of a torn WAL tail that recovery
	// truncated away (an interrupted append; its mutation was never
	// acknowledged).
	TornBytes int
	// LoadTime is the wall-clock duration of Open.
	LoadTime time.Duration
}

// Open loads the engine persisted in dir, creating the directory if
// needed. With a snapshot present the store loads frozen and the delta
// log replays rule edits on top; without one, the log replays triple
// ingest into an unfrozen engine that may keep ingesting. Every
// checksum is verified; damage surfaces as an error wrapping ErrCorrupt,
// never as a silently partial store. Pass nil opts for defaults.
//
// The returned engine appends its mutations to dir's write-ahead log;
// call Checkpoint to fold the log into a fresh snapshot and Close when
// done.
func Open(dir string, opts *Options) (*Engine, *RecoveryInfo, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// Sweep temp files: a crash mid-checkpoint leaves snapshot.trnt.tmp
	// behind, and the next checkpoint would truncate it anyway.
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}

	info := &RecoveryInfo{}
	var e *Engine
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		snap, mapped, err := openSnapshot(snapPath, opts)
		if err != nil {
			return nil, nil, err
		}
		e = engineFromSnapshot(snap, mapped, opts)
		info.SnapshotEpoch = snap.Epoch
		info.SnapshotBytes = snap.Bytes
		info.IndexesRebuilt = snap.IndexesRebuilt
		info.Mapped = mapped != nil
		info.MappedBytes = mapped.MappedBytes()
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	} else {
		e = New(opts)
	}

	wal, replay, err := serial.OpenWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, nil, err
	}
	info.TornBytes = replay.TornBytes
	var pendingIngest []serial.WALRecord
	for _, rec := range replay.Records {
		switch {
		case rec.Epoch < info.SnapshotEpoch:
			// Folded into the snapshot already: a crash hit between the
			// snapshot rename and the log rotation.
			info.WALSkipped++
			continue
		case rec.Epoch > info.SnapshotEpoch:
			wal.Close()
			return nil, nil, fmt.Errorf("%w: delta-log record at epoch %d, snapshot at epoch %d",
				ErrCorrupt, rec.Epoch, info.SnapshotEpoch)
		}
		if rec.Op == serial.WALTriple && e.frozen {
			// Live-ingest records, appended after the snapshot froze:
			// replayed as one delta batch once the rule records are in, so
			// recovery rebuilds the same overlay IngestFacts published.
			pendingIngest = append(pendingIngest, rec)
			info.WALReplayed++
			continue
		}
		if err := e.applyWALRecord(rec); err != nil {
			wal.Close()
			return nil, nil, err
		}
		info.WALReplayed++
	}
	if len(pendingIngest) > 0 {
		if err := e.replayIngest(pendingIngest); err != nil {
			wal.Close()
			return nil, nil, err
		}
	}
	if !e.frozen {
		// Mirror further batch ingest into the log (replayed rows are
		// drained away first so they are not logged twice).
		e.st.DrainAdds()
		e.st.TrackAdds(true)
	}
	e.dur.Store(&durability{dir: dir, wal: wal, epoch: info.SnapshotEpoch})
	info.LoadTime = time.Since(start)
	return e, info, nil
}

// openSnapshot opens the segment at path mapped when possible (and not
// disabled by Options.NoMapSegments), falling back to the eager decoder
// for structurally unmappable files. Damage surfaces as an error either
// way — a corrupt file must never silently fall back to decoding the
// same bad bytes.
func openSnapshot(path string, opts *Options) (*serial.Snapshot, *serial.MappedSnapshot, error) {
	if opts == nil || !opts.NoMapSegments {
		m, err := serial.OpenSnapshotMapped(path)
		switch {
		case err == nil:
			return &m.Snapshot, m, nil
		case errors.Is(err, serial.ErrNotMappable):
			// v1 segment, stale index version, or unmappable host: the
			// eager decoder handles all of these.
		default:
			return nil, nil, err
		}
	}
	snap, err := serial.ReadSnapshotFile(path)
	if err != nil {
		return nil, nil, err
	}
	return snap, nil, nil
}

// engineFromSnapshot assembles a frozen, queryable engine around a
// decoded or mapped snapshot (mapped is nil for heap-decoded ones).
func engineFromSnapshot(snap *serial.Snapshot, mapped *serial.MappedSnapshot, opts *Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{
		opts:      o,
		st:        snap.Store,
		rules:     snap.Rules,
		admit:     newAdmission(o.AdmissionCapacity, o.AdmissionQueue),
		defBudget: o.DefaultBudget,
	}
	e.initQueryPipeline(newMappedRef(mapped), snap.Epoch)
	e.frozen = true
	return e
}

// replayIngest rebuilds the live-ingest delta overlay from the replayed
// WAL records during Open. The engine is single-owner here, so the
// records intern straight into the snapshot store's dictionary and the
// batch is not re-logged — it is already in the log being replayed.
func (e *Engine) replayIngest(recs []serial.WALRecord) error {
	cur := e.currentVersion()
	defer cur.unpin()
	dict, prov := cur.st.Dict(), cur.st.Prov()
	triples := make([]rdf.Triple, len(recs))
	for i, rec := range recs {
		pv := rdf.NoProv
		if rec.Doc != "" || rec.Sentence != "" {
			pv = prov.Add(rdf.Prov{Doc: rec.Doc, Sentence: rec.Sentence})
		}
		triples[i] = rdf.Triple{
			S:      dict.Intern(rec.S),
			P:      dict.Intern(rec.P),
			O:      dict.Intern(rec.O),
			Source: rec.Source,
			Conf:   rec.Conf,
			Prov:   pv,
		}
	}
	delta, applied, err := store.BuildDelta(cur.base, dict, nil, triples)
	if err != nil {
		return fmt.Errorf("%w: delta-log ingest replay: %v", ErrCorrupt, err)
	}
	if len(applied) == 0 {
		return nil
	}
	overlay := cur.base.WithDelta(delta, dict, prov)
	e.mu.Lock()
	e.publishLocked(newStoreVersion(e, overlay, cur.base, delta, cur.mapped, cur.epoch))
	e.mu.Unlock()
	e.ingestedFacts.Add(uint64(len(applied)))
	return nil
}

// applyWALRecord replays one delta-log record during Open. The engine is
// single-owner here, so no locks are taken.
func (e *Engine) applyWALRecord(rec serial.WALRecord) error {
	switch rec.Op {
	case serial.WALTriple:
		if e.frozen {
			return fmt.Errorf("%w: triple delta-log record at the snapshot's epoch (the store froze before the snapshot)", ErrCorrupt)
		}
		prov := rdf.NoProv
		if rec.Doc != "" || rec.Sentence != "" {
			prov = e.st.Prov().Add(rdf.Prov{Doc: rec.Doc, Sentence: rec.Sentence})
		}
		e.st.AddFact(rec.S, rec.P, rec.O, rec.Source, rec.Conf, prov)
	case serial.WALRuleAdd:
		r, err := relax.ParseRule(rec.RuleID, rec.RuleText, rec.RuleWeight, rec.RuleOrigin)
		if err != nil {
			return fmt.Errorf("%w: delta-log rule %q: %v", ErrCorrupt, rec.RuleID, err)
		}
		e.rules = append(e.rules, r)
	case serial.WALRuleRemove:
		kept := e.rules[:0:0]
		for _, r := range e.rules {
			if r.ID != rec.RuleID {
				kept = append(kept, r)
			}
		}
		e.rules = kept
	case serial.WALRuleClear:
		e.rules = nil
	default:
		return fmt.Errorf("%w: unknown delta-log op %d", ErrCorrupt, rec.Op)
	}
	return nil
}

// Persist attaches a durable data directory to a frozen in-memory engine
// (demo, synthetic, or TNT-loaded): it writes the initial snapshot at
// epoch 1 and opens a fresh write-ahead log. The directory must not
// already hold a snapshot or log — reopen those with Open instead.
//
// Sharded engines persist exactly like unsharded ones: the snapshot
// always images the retained full store, never the per-shard partitions,
// so the on-disk format is independent of Options.Shards and a directory
// written at one shard count reopens at any other (partitioning is a
// deterministic function of the store and N, recomputed by Open). Use
// SaveShardSnapshots for per-shard images.
func (e *Engine) Persist(dir string) error {
	if e.dur.Load() != nil {
		return fmt.Errorf("trinit: engine is already durable")
	}
	e.mu.RLock()
	frozen, rules := e.frozen, e.rules
	e.mu.RUnlock()
	if !frozen {
		return fmt.Errorf("%w: Persist requires a frozen engine", ErrNotFrozen)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range []string{snapshotFile, walFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return fmt.Errorf("trinit: %s already exists in %s (use Open)", name, dir)
		}
	}
	if err := serial.WriteSnapshotFile(filepath.Join(dir, snapshotFile), e.snapshotStore(), rules, 1); err != nil {
		return err
	}
	wal, _, err := serial.OpenWAL(filepath.Join(dir, walFile))
	if err != nil {
		return err
	}
	e.dur.Store(&durability{dir: dir, wal: wal, epoch: 1})
	return nil
}

// Checkpoint folds the write-ahead log into a fresh snapshot at the next
// epoch: the snapshot is written atomically (temp file, fsync, rename,
// directory fsync), then the log is rotated. A crash between the rename
// and the rotation is safe — recovery skips the log's now-stale records
// by epoch. The engine must be frozen and durable. On failure the
// engine's durability fails stop (see the package invariants): the
// directory still holds a consistent state, but it must be reopened.
// Like Persist, Checkpoint snapshots the retained full store, so its
// output is identical whether or not the engine runs sharded.
func (e *Engine) Checkpoint() error {
	d := e.dur.Load()
	if d == nil {
		return fmt.Errorf("trinit: engine has no data directory (use Open or Persist)")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if d.err != nil {
		return fmt.Errorf("trinit: durability disabled by earlier failure: %w", d.err)
	}
	e.mu.RLock()
	frozen, rules := e.frozen, e.rules
	e.mu.RUnlock()
	if !frozen {
		return fmt.Errorf("%w: Checkpoint requires a frozen engine", ErrNotFrozen)
	}
	// Every published version is immutable and the rules slice is
	// copy-on-write, so the snapshot encodes a consistent view without
	// holding e.mu; concurrent rule mutations serialize behind d.mu, and
	// concurrent ingest behind ingestMu. A live delta overlay is folded
	// into a merged image first — the snapshot is always one segment.
	cur := e.currentVersion()
	defer cur.unpin()
	st := cur.st
	hadDelta := cur.delta.Rows()+cur.delta.Overrides() > 0
	if hadDelta {
		st = materializeStore(st)
	}
	snapPath := filepath.Join(d.dir, snapshotFile)
	if err := serial.WriteSnapshotFile(snapPath, st, rules, d.epoch+1); err != nil {
		// The rename may or may not have happened; either way the
		// on-disk state is consistent, but continuing to append at the
		// old epoch could lose acknowledged mutations if it did.
		d.err = err
		return err
	}
	d.epoch++
	if err := d.wal.Rotate(); err != nil {
		d.err = err
		return err
	}
	// The rotation truncated the log in place and fsynced the file, but
	// only a directory fsync makes the truncation's metadata durable on
	// every filesystem; without it, a crash can resurrect pre-rotation
	// records whose epoch now collides with post-checkpoint appends.
	if err := syncDir(d.dir); err != nil {
		d.err = err
		return err
	}
	if hadDelta {
		// Publish the folded image so queries stop paying the two-source
		// merge — remapped zero-copy from the fresh segment when possible,
		// the merged heap store otherwise.
		newSt := st
		var mapped *mappedRef
		if !e.opts.NoMapSegments {
			if m, err := serial.OpenSnapshotMapped(snapPath); err == nil {
				newSt = m.Store
				mapped = newMappedRef(m)
			}
		}
		e.mu.Lock()
		e.publishLocked(newStoreVersion(e, newSt, newSt, nil, mapped, d.epoch))
		e.mu.Unlock()
		e.compactions.Add(1)
	}
	return nil
}

// syncDir fsyncs a directory so renames and truncations inside it are
// durable. The faultinject site simulates the disk (or process) dying at
// exactly this point.
func syncDir(dir string) error {
	if err := faultinject.FireErr(faultinject.SiteFsync, "wal-dir"); err != nil {
		return err
	}
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Close detaches the engine from its data directory, closing the
// write-ahead log. The engine stays queryable in memory. Close returns
// the sticky durability error, if any, so a fail-stopped engine cannot
// shut down looking healthy.
func (e *Engine) Close() error {
	d := e.dur.Swap(nil)
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.wal.Close()
	if d.err != nil {
		return d.err
	}
	return err
}

// durLocked acquires the durability lock when the engine is durable and
// returns (d, unlock). Mutating methods take it before e.mu — the lock
// order that lets Checkpoint hold d.mu across a long snapshot write
// while queries keep reading — and release it after publishing.
func (e *Engine) durLocked() (*durability, func()) {
	d := e.dur.Load()
	if d == nil {
		return nil, func() {}
	}
	d.mu.Lock()
	return d, d.mu.Unlock
}

// logDrainedAdds mirrors the store rows inserted or replaced by the
// just-finished batch into the write-ahead log. Callers hold e.mu and
// d.mu. The rows are already applied in memory: a failure here therefore
// fails stop (sticky error) and the caller surfaces it.
func (e *Engine) logDrainedAdds(d *durability) error {
	ids := e.st.DrainAdds()
	if len(ids) == 0 {
		return nil
	}
	dict, prov := e.st.Dict(), e.st.Prov()
	recs := make([]serial.WALRecord, len(ids))
	for i, id := range ids {
		t := e.st.Triple(id)
		pv := prov.Get(t.Prov)
		recs[i] = serial.WALRecord{
			Op:       serial.WALTriple,
			S:        dict.Term(t.S),
			P:        dict.Term(t.P),
			O:        dict.Term(t.O),
			Source:   t.Source,
			Conf:     t.Conf,
			Doc:      pv.Doc,
			Sentence: pv.Sentence,
		}
	}
	return d.append(recs...)
}

// ruleAddRecord encodes a rule for the write-ahead log, in the same
// re-parseable text form the snapshot's rule section uses.
func ruleAddRecord(r *relax.Rule) serial.WALRecord {
	return serial.WALRecord{
		Op:         serial.WALRuleAdd,
		RuleID:     r.ID,
		RuleText:   serial.RuleText(r),
		RuleWeight: r.Weight,
		RuleOrigin: r.Origin,
	}
}

// SaveSnapshot writes a standalone binary snapshot of the frozen engine
// (store + rules) to path, atomically. Standalone snapshots always carry
// epoch 1; they are complete images with no accompanying delta log, made
// for the REPL's .save/.load and for benchmarks. Restore with
// LoadSnapshot.
func (e *Engine) SaveSnapshot(path string) error {
	e.mu.RLock()
	frozen, rules := e.frozen, e.rules
	e.mu.RUnlock()
	if !frozen {
		return fmt.Errorf("%w: SaveSnapshot requires a frozen engine", ErrNotFrozen)
	}
	return serial.WriteSnapshotFile(path, e.snapshotStore(), rules, 1)
}

// snapshotStore returns the store to image in a snapshot: the current
// version's store, with any live delta overlay folded into a merged heap
// store first — a snapshot is always one self-contained segment.
func (e *Engine) snapshotStore() *store.Store {
	cur := e.currentVersion()
	defer cur.unpin()
	if cur.delta.Rows()+cur.delta.Overrides() > 0 {
		return materializeStore(cur.st)
	}
	return cur.st
}

// SaveShardSnapshots writes one standalone snapshot per shard into dir
// (shard-000.trnt, shard-001.trnt, …) and returns the paths written.
// Each file is a complete engine image — the shard's store, the shared
// (replicated) dictionary and provenance table, and the full rule set —
// loadable with LoadSnapshot: the bootstrap file a shard node of a
// networked deployment would receive. The engine must be frozen.
//
// On an unsharded engine the single shard-000.trnt images the full
// store and is byte-identical to SaveSnapshot's output; a 1-shard
// engine produces the same bytes, because shard 0 of a 1-shard
// partition replays the source store's exact triple sequence.
func (e *Engine) SaveShardSnapshots(dir string) ([]string, error) {
	e.mu.RLock()
	frozen, rules, group := e.frozen, e.rules, e.group
	e.mu.RUnlock()
	if !frozen {
		return nil, fmt.Errorf("%w: SaveShardSnapshots requires a frozen engine", ErrNotFrozen)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var stores []*store.Store
	if group != nil {
		for i := 0; i < group.Shards(); i++ {
			stores = append(stores, group.Store(i))
		}
	} else {
		stores = []*store.Store{e.snapshotStore()}
	}
	paths := make([]string, 0, len(stores))
	for i, st := range stores {
		p := filepath.Join(dir, fmt.Sprintf("shard-%03d.trnt", i))
		if err := serial.WriteSnapshotFile(p, st, rules, 1); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// LoadSnapshot restores a frozen, queryable engine from a snapshot file
// written by SaveSnapshot (or from a data directory's snapshot.trnt,
// ignoring any delta log next to it). v2 segments are served zero-copy
// from a memory mapping when the host allows it (disable with
// Options.NoMapSegments); v1 segments decode eagerly. Pass nil opts for
// defaults.
func LoadSnapshot(path string, opts *Options) (*Engine, error) {
	snap, mapped, err := openSnapshot(path, opts)
	if err != nil {
		return nil, err
	}
	return engineFromSnapshot(snap, mapped, opts), nil
}
