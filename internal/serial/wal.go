package serial

// The write-ahead delta log.
//
// Mutations that arrive between snapshots — triple ingest before Freeze,
// rule edits after it — append one CRC-framed record each to wal.log
// before they are published in memory, so a crash at any byte offset
// recovers to the last complete record:
//
//	magic "TRNTWAL1"
//	records, each: u32 payload length | u32 payload CRC | payload
//	payload: uvarint epoch | u8 op | op fields
//
// Recovery classifies damage by position. An incomplete or CRC-failed
// frame at the very end of the file is a torn tail — the record that was
// being appended when the process died — and is truncated away with a
// warning (WALReplay.TornBytes). The same damage followed by further
// intact bytes is mid-file corruption and returns ErrCorrupt: bits
// changed under records that were once durable, and silently dropping
// them would un-happen acknowledged writes.
//
// Records carry the epoch of the snapshot they apply on top of. Recovery
// skips records from older epochs (a crash between publishing a new
// snapshot and rotating the log leaves both on disk — the snapshot
// already contains those deltas) and rejects records from future epochs
// as corruption.

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"

	"trinit/internal/faultinject"
	"trinit/internal/rdf"
)

const (
	walMagic = "TRNTWAL1"
	// maxWALRecord bounds a single record's declared payload size; a
	// complete in-bounds frame above it is corruption, not data.
	maxWALRecord = 16 << 20
)

// WALOp identifies a delta-log record kind.
type WALOp uint8

const (
	// WALTriple is a triple added before Freeze, with terms by value.
	WALTriple WALOp = 1
	// WALRuleAdd is a relaxation rule added or replaced.
	WALRuleAdd WALOp = 2
	// WALRuleRemove removes a rule by ID.
	WALRuleRemove WALOp = 3
	// WALRuleClear removes all rules.
	WALRuleClear WALOp = 4
)

func (op WALOp) String() string {
	switch op {
	case WALTriple:
		return "triple"
	case WALRuleAdd:
		return "rule-add"
	case WALRuleRemove:
		return "rule-remove"
	case WALRuleClear:
		return "rule-clear"
	default:
		return "unknown"
	}
}

// WALRecord is one delta-log record. Triples are stored by term value,
// not TermID — the log must replay into a store whose dictionary grew
// differently than the writer's.
type WALRecord struct {
	Epoch uint64
	Op    WALOp

	// WALTriple fields.
	S, P, O       rdf.Term
	Source        rdf.Source
	Conf          float64
	Doc, Sentence string

	// WALRuleAdd / WALRuleRemove fields.
	RuleID     string
	RuleText   string
	RuleWeight float64
	RuleOrigin string
}

// WALReplay reports what OpenWAL found in an existing log.
type WALReplay struct {
	// Records holds every complete record, in append order.
	Records []WALRecord
	// TornBytes counts the bytes of a torn tail that were truncated
	// away; 0 means the log ended cleanly.
	TornBytes int
}

// WAL is an append handle on the delta log.
type WAL struct {
	f    *os.File
	path string
	buf  []byte
}

// OpenWAL opens the delta log at path, creating it if absent, replays
// every complete record, truncates a torn tail, and returns an append
// handle positioned at the end. Mid-file damage returns ErrCorrupt and
// no handle.
func OpenWAL(path string) (*WAL, *WALReplay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}

	replay := &WALReplay{}
	if len(data) < len(walMagic) {
		// Nothing durable yet: either a fresh log or a crash while the
		// header itself was being written. Anything that is not a
		// prefix of the magic is foreign data, not a torn header.
		if string(data) != walMagic[:len(data)] {
			f.Close()
			return nil, nil, corruptf("%s: bad delta-log magic", path)
		}
		replay.TornBytes = len(data)
		if err := resetWAL(f, len(data) > 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &WAL{f: f, path: path}, replay, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		f.Close()
		return nil, nil, corruptf("%s: bad delta-log magic", path)
	}

	off := len(walMagic)
	end := off // offset just past the last complete record
	for off < len(data) {
		if len(data)-off < 8 {
			break // torn frame header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		frameEnd := off + 8 + int(n)
		if n == 0 {
			// A zero frame is what a zero-filled tail (preallocated
			// blocks after a crash) parses as; it is never written.
			break
		}
		if int(n) > len(data)-off-8 {
			break // frame extends past EOF: torn
		}
		payload := data[off+8 : frameEnd]
		if n > maxWALRecord || crc32.Checksum(payload, castagnoli) != crc {
			if frameEnd >= len(data) {
				break // damaged final frame: torn
			}
			f.Close()
			return nil, nil, corruptf("%s: record at offset %d fails checksum with %d intact bytes after it",
				path, off, len(data)-frameEnd)
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			f.Close()
			return nil, nil, corruptf("%s: record at offset %d: %v", path, off, err)
		}
		replay.Records = append(replay.Records, rec)
		off = frameEnd
		end = off
	}
	if end < len(data) {
		replay.TornBytes = len(data) - end
		if err := f.Truncate(int64(end)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(end), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &WAL{f: f, path: path}, replay, nil
}

// resetWAL rewrites the log to an empty one (magic only).
func resetWAL(f *os.File, truncate bool) error {
	if truncate {
		if err := f.Truncate(0); err != nil {
			return err
		}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		return err
	}
	return f.Sync()
}

// Append frames and writes the records, then fsyncs once. The records
// are durable — and may be published in memory — only when Append
// returns nil. An injected fault tears the frame mid-write, leaving
// exactly the bytes a crash would have left.
func (w *WAL) Append(recs ...WALRecord) error {
	for _, rec := range recs {
		payload := encodeWALRecord(w.buf[:0], rec)
		w.buf = payload
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
		if err := faultinject.FireErr(faultinject.SiteWALAppend, rec.Op.String()); err != nil {
			// Tear the record: the frame header and part of the payload
			// reach the file, the rest never does.
			w.f.Write(frame[:])
			w.f.Write(payload[:len(payload)/2])
			return err
		}
		if _, err := w.f.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.f.Write(payload); err != nil {
			return err
		}
	}
	if err := faultinject.FireErr(faultinject.SiteFsync, "wal"); err != nil {
		return err
	}
	return w.f.Sync()
}

// Rotate empties the log after a snapshot has been published: every
// record it held is covered by the snapshot's epoch.
func (w *WAL) Rotate() error {
	return resetWAL(w.f, true)
}

// Close closes the append handle.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

func encodeWALRecord(buf []byte, rec WALRecord) []byte {
	buf = binary.AppendUvarint(buf, rec.Epoch)
	buf = append(buf, byte(rec.Op))
	switch rec.Op {
	case WALTriple:
		buf = appendWALTerm(buf, rec.S)
		buf = appendWALTerm(buf, rec.P)
		buf = appendWALTerm(buf, rec.O)
		buf = append(buf, byte(rec.Source))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Conf))
		buf = appendStr(buf, rec.Doc)
		buf = appendStr(buf, rec.Sentence)
	case WALRuleAdd:
		buf = appendStr(buf, rec.RuleID)
		buf = appendStr(buf, rec.RuleOrigin)
		buf = appendStr(buf, rec.RuleText)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.RuleWeight))
	case WALRuleRemove:
		buf = appendStr(buf, rec.RuleID)
	case WALRuleClear:
	}
	return buf
}

func decodeWALRecord(payload []byte) (WALRecord, error) {
	r := &byteReader{data: payload}
	var rec WALRecord
	var err error
	if rec.Epoch, err = r.uvarint(); err != nil {
		return rec, err
	}
	op, err := r.u8()
	if err != nil {
		return rec, err
	}
	rec.Op = WALOp(op)
	switch rec.Op {
	case WALTriple:
		if rec.S, err = readWALTerm(r); err != nil {
			return rec, err
		}
		if rec.P, err = readWALTerm(r); err != nil {
			return rec, err
		}
		if rec.O, err = readWALTerm(r); err != nil {
			return rec, err
		}
		src, err := r.u8()
		if err != nil {
			return rec, err
		}
		if src > uint8(rdf.SourceXKG) {
			return rec, corruptf("unknown triple source %d", src)
		}
		rec.Source = rdf.Source(src)
		bits, err := r.u64()
		if err != nil {
			return rec, err
		}
		rec.Conf = math.Float64frombits(bits)
		if !(rec.Conf > 0 && rec.Conf <= 1) {
			return rec, corruptf("triple confidence %v outside (0, 1]", rec.Conf)
		}
		if rec.Doc, err = r.str("provenance doc"); err != nil {
			return rec, err
		}
		if rec.Sentence, err = r.str("provenance sentence"); err != nil {
			return rec, err
		}
	case WALRuleAdd:
		if rec.RuleID, err = r.str("rule id"); err != nil {
			return rec, err
		}
		if rec.RuleOrigin, err = r.str("rule origin"); err != nil {
			return rec, err
		}
		if rec.RuleText, err = r.str("rule text"); err != nil {
			return rec, err
		}
		bits, err := r.u64()
		if err != nil {
			return rec, err
		}
		rec.RuleWeight = math.Float64frombits(bits)
	case WALRuleRemove:
		if rec.RuleID, err = r.str("rule id"); err != nil {
			return rec, err
		}
	case WALRuleClear:
	default:
		return rec, corruptf("unknown record op %d", op)
	}
	if err := r.done(); err != nil {
		return rec, err
	}
	return rec, nil
}

func appendWALTerm(buf []byte, t rdf.Term) []byte {
	buf = append(buf, byte(t.Kind))
	return appendStr(buf, t.Text)
}

func readWALTerm(r *byteReader) (rdf.Term, error) {
	kind, err := r.u8()
	if err != nil {
		return rdf.Term{}, err
	}
	if kind > uint8(rdf.KindToken) {
		return rdf.Term{}, corruptf("unknown term kind %d", kind)
	}
	text, err := r.str("term text")
	if err != nil {
		return rdf.Term{}, err
	}
	return rdf.Term{Kind: rdf.TermKind(kind), Text: text}, nil
}
