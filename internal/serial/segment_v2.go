package serial

// Segment format v2: the mmap-ready layout.
//
// v1 frames varint-packed payloads, which a decoder must materialise into
// heap slices. v2 keeps the same file family (magic, canonical section
// order, CRC-32C everywhere) but lays the hot columns out so a reader can
// serve them in place from a memory-mapped file:
//
//	magic "TRNTSEG1"
//	u32 format version (2) | u32 index version | u64 epoch
//	u32 reserved (0) | u32 header CRC            → 32-byte header
//	sections, each at an 8-byte-aligned offset:
//	  u8 id | 3 zero bytes | u32 payload CRC | u64 payload length
//	  payload, zero-padded to the next 8-byte boundary
//	end marker: section id 0xFF with empty payload
//
// The section CRC covers the padded stored bytes, so verification is one
// pass over exactly the bytes on disk. Fixed-width little-endian columns
// replace varints in the sections a mapped reader serves zero-copy:
//
//	triples: u64 n | f64 conf[n] | u32 s[n] | u32 p[n] | u32 o[n]
//	         | u32 prov[n] | u8 src[n]
//	index:   u64 n | u32 ids[n] | u32 k1[n] | u32 k2[n]
//
// Every array starts at an offset aligned to its element size (the
// payload itself starts 8-aligned: 32-byte header, 16-byte frames, padded
// payloads). The dictionary, provenance and rule sections keep their v1
// varint encodings — they are always decoded eagerly, because their
// strings must survive an unmap.

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

const (
	snapFormatVersionV2 = 2

	v2HeaderSize = 32
	v2FrameSize  = 16
)

// sectionBufPool recycles the writer's per-section encode buffer across
// snapshot writes, so checkpoint loops do not regrow a multi-megabyte
// scratch slice every epoch.
var sectionBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1<<16); return &b }}

// v2Pad returns the stored (padded) length of a payload.
func v2Pad(n int) int { return (n + 7) &^ 7 }

// writeSnapshotV2 encodes the frozen store and rules at the given epoch in
// segment format v2.
func writeSnapshotV2(w io.Writer, st *store.Store, rules []*relax.Rule, epoch uint64) error {
	var hdr [v2HeaderSize]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapFormatVersionV2)
	binary.LittleEndian.PutUint32(hdr[12:], store.IndexFormatVersion)
	binary.LittleEndian.PutUint64(hdr[16:], epoch)
	binary.LittleEndian.PutUint32(hdr[28:], crc32.Checksum(hdr[:28], castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	idx := st.IndexSnapshot()
	sections := []struct {
		id     byte
		encode func(buf []byte) []byte
	}{
		{secDict, func(buf []byte) []byte { return appendDict(buf, st.Dict()) }},
		{secProv, func(buf []byte) []byte { return appendProv(buf, st.Prov()) }},
		{secTriples, func(buf []byte) []byte { return appendTriplesV2(buf, st) }},
		{secSPO, func(buf []byte) []byte { return appendIndexV2(buf, idx.SPO) }},
		{secPOS, func(buf []byte) []byte { return appendIndexV2(buf, idx.POS) }},
		{secOSP, func(buf []byte) []byte { return appendIndexV2(buf, idx.OSP) }},
		{secRules, func(buf []byte) []byte { return appendRules(buf, rules) }},
		{secEnd, func(buf []byte) []byte { return buf }},
	}
	bufp := sectionBufPool.Get().(*[]byte)
	payload := *bufp
	defer func() { *bufp = payload[:0]; sectionBufPool.Put(bufp) }()
	for _, s := range sections {
		payload = s.encode(payload[:0])
		rawLen := len(payload)
		for len(payload) < v2Pad(rawLen) {
			payload = append(payload, 0)
		}
		// The length field records the unpadded payload; the stored
		// length is derived by rounding up, and the CRC covers the
		// padded bytes so verification reads exactly what is on disk.
		var frame [v2FrameSize]byte
		frame[0] = s.id
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
		binary.LittleEndian.PutUint64(frame[8:], uint64(rawLen))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// appendTriplesV2 encodes the triple set column-at-a-time in fixed-width
// little-endian layout (see the package comment for offsets).
func appendTriplesV2(buf []byte, st *store.Store) []byte {
	n := st.Len()
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Triple(store.ID(i)).Conf))
	}
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Triple(store.ID(i)).S))
	}
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Triple(store.ID(i)).P))
	}
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Triple(store.ID(i)).O))
	}
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Triple(store.ID(i)).Prov))
	}
	for i := 0; i < n; i++ {
		buf = append(buf, byte(st.Triple(store.ID(i)).Source))
	}
	return buf
}

// appendIndexV2 encodes one permutation index as three fixed-width columns.
func appendIndexV2(buf []byte, c store.IndexColumns) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.IDs)))
	for _, id := range c.IDs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	for _, k := range c.K1 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	}
	for _, k := range c.K2 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	}
	return buf
}

// v2TriplesLen and v2IndexLen are the exact payload sizes for n records;
// the decoders reject any section whose length disagrees, so a count lie
// can never cause over-allocation or an out-of-bounds column view.
func v2TriplesLen(n uint64) uint64 { return 8 + 25*n }
func v2IndexLen(n uint64) uint64   { return 8 + 12*n }

// v2TriplesN validates a v2 triple-section payload and returns its record
// count.
func v2TriplesN(payload []byte) (int, error) {
	if len(payload) < 8 {
		return 0, corruptf("triple section truncated (%d bytes)", len(payload))
	}
	n := binary.LittleEndian.Uint64(payload)
	if uint64(len(payload)) != v2TriplesLen(n) {
		return 0, corruptf("triple section claims %d records in %d bytes (want %d)", n, len(payload), v2TriplesLen(n))
	}
	return int(n), nil
}

// v2IndexN validates a v2 index-section payload and returns its entry count.
func v2IndexN(payload []byte) (int, error) {
	if len(payload) < 8 {
		return 0, corruptf("index section truncated (%d bytes)", len(payload))
	}
	n := binary.LittleEndian.Uint64(payload)
	if uint64(len(payload)) != v2IndexLen(n) {
		return 0, corruptf("index section claims %d entries in %d bytes (want %d)", n, len(payload), v2IndexLen(n))
	}
	return int(n), nil
}

// walkSectionsV2 verifies the framing and checksums of every v2 section in
// data (which must start with a verified v2 header) and calls fn with each
// unpadded payload in canonical order. The payloads alias data.
func walkSectionsV2(data []byte, fn func(id byte, off int, payload []byte) error) error {
	off := v2HeaderSize
	for _, want := range sectionOrder {
		if off+v2FrameSize > len(data) {
			return corruptf("snapshot truncated at section header (offset %d)", off)
		}
		id := data[off]
		if id != want {
			return corruptf("snapshot section %#x out of order (want %#x)", id, want)
		}
		if data[off+1] != 0 || data[off+2] != 0 || data[off+3] != 0 {
			return corruptf("section %#x frame padding is not zero", id)
		}
		crc := binary.LittleEndian.Uint32(data[off+4:])
		n := binary.LittleEndian.Uint64(data[off+8:])
		off += v2FrameSize
		stored := (n + 7) &^ 7
		if stored > uint64(len(data)-off) {
			return corruptf("section %#x claims %d bytes, only %d remain", id, n, len(data)-off)
		}
		padded := data[off : off+int(stored)]
		if crc32.Checksum(padded, castagnoli) != crc {
			return corruptf("section %#x checksum mismatch", id)
		}
		if err := fn(id, off, padded[:n]); err != nil {
			return err
		}
		off += int(stored)
	}
	if off != len(data) {
		return corruptf("%d trailing bytes after end marker", len(data)-off)
	}
	return nil
}

// decodeSnapshotV2 eagerly decodes a v2 image into a heap store — the path
// taken when mapping is unavailable (platform, alignment, forced decode)
// or undesired. It mirrors decodeSnapshot's v1 semantics exactly,
// including the index-version rebuild fallback.
func decodeSnapshotV2(data []byte, forceRebuild bool) (*Snapshot, error) {
	snap := &Snapshot{
		Epoch:        binary.LittleEndian.Uint64(data[16:]),
		IndexVersion: binary.LittleEndian.Uint32(data[12:]),
	}
	loadIndexes := !forceRebuild && snap.IndexVersion == store.IndexFormatVersion

	dict := rdf.NewDict()
	prov := rdf.NewProvTable()
	st := store.New(dict, prov)
	var idx store.IndexSnapshot

	err := walkSectionsV2(data, func(id byte, _ int, payload []byte) error {
		switch id {
		case secDict:
			return decodeDict(payload, dict)
		case secProv:
			return decodeProv(payload, prov)
		case secTriples:
			return decodeTriplesV2(payload, st)
		case secSPO, secPOS, secOSP:
			if !loadIndexes {
				return nil
			}
			cols, err := decodeIndexV2(payload)
			if err != nil {
				return err
			}
			switch id {
			case secSPO:
				idx.SPO = cols
			case secPOS:
				idx.POS = cols
			case secOSP:
				idx.OSP = cols
			}
			return nil
		case secRules:
			rules, err := decodeRules(payload)
			snap.Rules = rules
			return err
		case secEnd:
			if len(payload) != 0 {
				return corruptf("end marker carries %d payload bytes", len(payload))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	if loadIndexes {
		if err := st.FreezeWithIndexes(idx); err != nil {
			return nil, corruptf("%v", err)
		}
	} else {
		st.Freeze()
		snap.IndexesRebuilt = true
	}
	snap.Store = st
	return snap, nil
}

// decodeTriplesV2 decodes the columnar triple section into the store,
// applying the same per-record validation as the v1 decoder.
func decodeTriplesV2(payload []byte, st *store.Store) error {
	n, err := v2TriplesN(payload)
	if err != nil {
		return err
	}
	conf := payload[8:]
	s := payload[8+8*n:]
	p := payload[8+12*n:]
	o := payload[8+16*n:]
	pv := payload[8+20*n:]
	src := payload[8+24*n:]
	dict, prov := st.Dict(), st.Prov()
	for i := 0; i < n; i++ {
		t := rdf.Triple{
			S:      rdf.TermID(binary.LittleEndian.Uint32(s[4*i:])),
			P:      rdf.TermID(binary.LittleEndian.Uint32(p[4*i:])),
			O:      rdf.TermID(binary.LittleEndian.Uint32(o[4*i:])),
			Source: rdf.Source(src[i]),
			Conf:   math.Float64frombits(binary.LittleEndian.Uint64(conf[8*i:])),
			Prov:   rdf.ProvID(binary.LittleEndian.Uint32(pv[4*i:])),
		}
		if err := validateTriple(t, i, dict, prov); err != nil {
			return err
		}
		if id := st.Add(t); int(id) != i {
			return corruptf("triple %d duplicates triple %d", i, id)
		}
	}
	return nil
}

// validateTriple applies the shared per-record checks of the v1, v2 and
// mapped triple decoders.
func validateTriple(t rdf.Triple, i int, dict *rdf.Dict, prov *rdf.ProvTable) error {
	if !dict.Valid(t.S) || !dict.Valid(t.P) || !dict.Valid(t.O) {
		return corruptf("triple %d references a term outside the dictionary", i)
	}
	if uint8(t.Source) > uint8(rdf.SourceXKG) {
		return corruptf("triple %d has unknown source %d", i, t.Source)
	}
	if !(t.Conf > 0 && t.Conf <= 1) {
		return corruptf("triple %d confidence %v outside (0, 1]", i, t.Conf)
	}
	if t.Prov != rdf.NoProv && int(t.Prov) > prov.Len() {
		return corruptf("triple %d references provenance record %d of %d", i, t.Prov, prov.Len())
	}
	return nil
}

// decodeIndexV2 decodes one columnar index section into heap columns.
func decodeIndexV2(payload []byte) (store.IndexColumns, error) {
	n, err := v2IndexN(payload)
	if err != nil {
		return store.IndexColumns{}, err
	}
	c := store.IndexColumns{
		IDs: make([]store.ID, n),
		K1:  make([]rdf.TermID, n),
		K2:  make([]rdf.TermID, n),
	}
	ids := payload[8:]
	k1 := payload[8+4*n:]
	k2 := payload[8+8*n:]
	for i := 0; i < n; i++ {
		c.IDs[i] = store.ID(binary.LittleEndian.Uint32(ids[4*i:]))
		c.K1[i] = rdf.TermID(binary.LittleEndian.Uint32(k1[4*i:]))
		c.K2[i] = rdf.TermID(binary.LittleEndian.Uint32(k2[4*i:]))
	}
	return c, nil
}
