package serial

// Zero-copy snapshot opening. OpenSnapshotMapped memory-maps a v2 segment
// file and serves its triple columns and permutation indexes directly as
// typed views into the mapping: open time is dominated by the one
// verification pass (header CRC, per-section CRCs, O(n) store validation)
// plus the eager decode of the small string-bearing sections (dictionary,
// provenance, rules) — never by materialising the columns.
//
// Two failure families are kept distinct. ErrNotMappable means the file or
// host cannot be served zero-copy for a structural reason (v1 format,
// stale index version, big-endian host, platform without mmap) and the
// caller should fall back to the eager decoder. ErrCorrupt means the file
// is damaged; falling back would decode the same bad bytes, so the caller
// must surface it. Every byte the mapped store will ever dereference is
// CRC-verified and bounds-validated at open, so a truncated or bit-flipped
// file fails here with ErrCorrupt rather than faulting mid-query.

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"unsafe"

	"encoding/binary"
	"hash/crc32"

	"trinit/internal/rdf"
	"trinit/internal/store"
)

// ErrNotMappable reports that a snapshot cannot be served zero-copy and
// the caller should fall back to eager decoding. It is never returned for
// damaged files — those are ErrCorrupt.
var ErrNotMappable = errors.New("serial: snapshot not mappable")

// hostLittleEndian reports whether the running host matches the file
// format's little-endian column layout; a big-endian host must decode.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// MappedSnapshot is a Snapshot whose store serves triples and indexes from
// a private read-only mapping of the segment file. Close unmaps it; the
// caller owns the ordering between Close and the last reader (the engine
// defers Close until every epoch-pinned query over the mapping drains).
type MappedSnapshot struct {
	Snapshot
	data   []byte
	closed atomic.Bool
}

// MappedBytes returns the size of the underlying mapping.
func (m *MappedSnapshot) MappedBytes() int {
	if m == nil {
		return 0
	}
	return len(m.data)
}

// Close unmaps the snapshot. The store becomes unusable; Close is
// idempotent.
func (m *MappedSnapshot) Close() error {
	if m == nil || !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	return munmapBytes(m.data)
}

// OpenSnapshotMapped maps the segment file at path and assembles a store
// over zero-copy column views. It returns ErrNotMappable (possibly
// wrapped) when the file or host requires the eager decode path, and
// ErrCorrupt when the file is damaged.
func OpenSnapshotMapped(path string) (*MappedSnapshot, error) {
	if !mmapSupported {
		return nil, fmt.Errorf("%w: no mmap on this platform", ErrNotMappable)
	}
	if !hostLittleEndian {
		return nil, fmt.Errorf("%w: big-endian host", ErrNotMappable)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() < v2HeaderSize {
		f.Close()
		return nil, corruptf("snapshot file is %d bytes, smaller than a header", fi.Size())
	}
	data, err := mmapFile(f, int(fi.Size()))
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%w: mmap %s: %v", ErrNotMappable, path, err)
	}
	snap, err := openMapped(data)
	if err != nil {
		munmapBytes(data)
		return nil, err
	}
	return snap, nil
}

// openMapped verifies the mapped image and builds the snapshot over it.
func openMapped(data []byte) (*MappedSnapshot, error) {
	if string(data[:8]) != snapMagic {
		return nil, corruptf("bad snapshot magic")
	}
	version := binary.LittleEndian.Uint32(data[8:])
	switch version {
	case snapFormatVersion:
		return nil, fmt.Errorf("%w: v1 segment (decode eagerly)", ErrNotMappable)
	case snapFormatVersionV2:
	default:
		return nil, corruptf("unsupported snapshot format version %d", version)
	}
	if crc := binary.LittleEndian.Uint32(data[28:]); crc != crc32.Checksum(data[:28], castagnoli) {
		return nil, corruptf("snapshot header checksum mismatch")
	}
	indexVersion := binary.LittleEndian.Uint32(data[12:])
	if indexVersion != store.IndexFormatVersion {
		// A mapped store trusts the on-disk permutation order after
		// validating it; an older sort order cannot be fixed in place.
		return nil, fmt.Errorf("%w: index format v%d, want v%d", ErrNotMappable, indexVersion, store.IndexFormatVersion)
	}

	snap := &MappedSnapshot{
		Snapshot: Snapshot{
			Epoch:        binary.LittleEndian.Uint64(data[16:]),
			IndexVersion: indexVersion,
			Bytes:        int64(len(data)),
		},
		data: data,
	}
	dict := rdf.NewDict()
	prov := rdf.NewProvTable()
	var cols *store.MappedColumns
	var idx store.IndexSnapshot
	err := walkSectionsV2(data, func(id byte, _ int, payload []byte) error {
		switch id {
		case secDict:
			return decodeDict(payload, dict)
		case secProv:
			return decodeProv(payload, prov)
		case secTriples:
			var err error
			cols, err = viewTriplesV2(payload)
			return err
		case secSPO, secPOS, secOSP:
			c, err := viewIndexV2(payload)
			if err != nil {
				return err
			}
			switch id {
			case secSPO:
				idx.SPO = c
			case secPOS:
				idx.POS = c
			case secOSP:
				idx.OSP = c
			}
		case secRules:
			rules, err := decodeRules(payload)
			snap.Rules = rules
			return err
		case secEnd:
			if len(payload) != 0 {
				return corruptf("end marker carries %d payload bytes", len(payload))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st, err := store.NewMapped(dict, prov, cols, idx)
	if err != nil {
		return nil, corruptf("%v", err)
	}
	snap.Store = st
	return snap, nil
}

// viewTriplesV2 casts the columnar triple section into zero-copy column
// views over the mapping.
func viewTriplesV2(payload []byte) (*store.MappedColumns, error) {
	n, err := v2TriplesN(payload)
	if err != nil {
		return nil, err
	}
	conf, err := viewF64(payload[8:], n)
	if err != nil {
		return nil, err
	}
	s, err := viewU32[rdf.TermID](payload[8+8*n:], n)
	if err != nil {
		return nil, err
	}
	p, err := viewU32[rdf.TermID](payload[8+12*n:], n)
	if err != nil {
		return nil, err
	}
	o, err := viewU32[rdf.TermID](payload[8+16*n:], n)
	if err != nil {
		return nil, err
	}
	pv, err := viewU32[rdf.ProvID](payload[8+20*n:], n)
	if err != nil {
		return nil, err
	}
	return &store.MappedColumns{
		S:    s,
		P:    p,
		O:    o,
		Conf: conf,
		Prov: pv,
		Src:  payload[8+24*n : 8+25*n],
	}, nil
}

// viewIndexV2 casts one columnar index section into zero-copy views.
func viewIndexV2(payload []byte) (store.IndexColumns, error) {
	n, err := v2IndexN(payload)
	if err != nil {
		return store.IndexColumns{}, err
	}
	ids, err := viewU32[store.ID](payload[8:], n)
	if err != nil {
		return store.IndexColumns{}, err
	}
	k1, err := viewU32[rdf.TermID](payload[8+4*n:], n)
	if err != nil {
		return store.IndexColumns{}, err
	}
	k2, err := viewU32[rdf.TermID](payload[8+8*n:], n)
	if err != nil {
		return store.IndexColumns{}, err
	}
	return store.IndexColumns{IDs: ids, K1: k1, K2: k2}, nil
}

// viewU32 reinterprets b's first 4n bytes as a []T without copying. The
// format guarantees element-size alignment (8-aligned payload starts,
// column offsets that are multiples of 4); the check is a defensive
// invariant, not a reachable decode path.
func viewU32[T ~uint32](b []byte, n int) ([]T, error) {
	if n == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%4 != 0 {
		return nil, corruptf("column view misaligned for 4-byte elements")
	}
	return unsafe.Slice((*T)(p), n), nil
}

// viewF64 reinterprets b's first 8n bytes as a []float64 without copying.
func viewF64(b []byte, n int) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 != 0 {
		return nil, corruptf("column view misaligned for 8-byte elements")
	}
	return unsafe.Slice((*float64)(p), n), nil
}
