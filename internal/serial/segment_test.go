package serial

// Segment snapshot contract: a frozen store round-trips losslessly
// through the binary format (triples with source/confidence/provenance,
// dictionary, eager permutation indexes, rules), an index-version
// mismatch falls back to rebuild-by-sort instead of failing, and every
// single-bit flip or truncation of the file surfaces as ErrCorrupt —
// never a panic, never a silently partial store.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

// segStore builds a frozen store with n people: KG facts (resources and
// literals), XKG token triples with provenance, and duplicate adds that
// exercise the keep-max-confidence path.
func segStore(t testing.TB, n int) (*store.Store, []*relax.Rule) {
	t.Helper()
	st := store.New(nil, nil)
	for i := 0; i < n; i++ {
		p := rdf.Resource(fmt.Sprintf("Person%d", i))
		st.AddKG(p, rdf.Resource("worksAt"), rdf.Resource(fmt.Sprintf("Org%d", i%7)))
		st.AddFact(p, rdf.Resource("bornOn"), rdf.Literal(fmt.Sprintf("19%02d-01-02", i%100)), rdf.SourceKG, 1, rdf.NoProv)
		prov := st.Prov().Add(rdf.Prov{Doc: fmt.Sprintf("doc-%d", i), Sentence: fmt.Sprintf("Person%d lectured at Org%d.", i, i%7)})
		st.AddFact(p, rdf.Token("lectured at"), rdf.Token(fmt.Sprintf("the institute of Org%d", i%7)), rdf.SourceXKG, 0.5+float64(i%5)/10, prov)
	}
	// Duplicate with a higher confidence: the survivor must persist.
	st.AddFact(rdf.Resource("Person0"), rdf.Token("lectured at"), rdf.Token("the institute of Org0"), rdf.SourceXKG, 0.99, rdf.NoProv)
	st.Freeze()
	rules := []*relax.Rule{
		mustRule(t, "r1", "?x worksAt ?y => ?x 'lectured at' ?y", 0.8, "manual"),
		mustRule(t, "r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 0.7, "mined"),
	}
	return st, rules
}

func mustRule(t testing.TB, id, text string, w float64, origin string) *relax.Rule {
	t.Helper()
	r, err := relax.ParseRule(id, text, w, origin)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func encodeSeg(t testing.TB, st *store.Store, rules []*relax.Rule, epoch uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, st, rules, epoch); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameStore asserts the decoded store matches the source triple for
// triple, including metadata and index-served match lists.
func sameStore(t *testing.T, src, dst *store.Store) {
	t.Helper()
	if dst.Len() != src.Len() {
		t.Fatalf("triples: %d, want %d", dst.Len(), src.Len())
	}
	if dst.Dict().Len() != src.Dict().Len() {
		t.Fatalf("dict terms: %d, want %d", dst.Dict().Len(), src.Dict().Len())
	}
	for i := 0; i < src.Len(); i++ {
		a, b := src.Triple(store.ID(i)), dst.Triple(store.ID(i))
		if src.Dict().Term(a.S) != dst.Dict().Term(b.S) ||
			src.Dict().Term(a.P) != dst.Dict().Term(b.P) ||
			src.Dict().Term(a.O) != dst.Dict().Term(b.O) ||
			a.Source != b.Source || a.Conf != b.Conf {
			t.Fatalf("triple %d: %+v vs %+v", i, a, b)
		}
		if src.Prov().Get(a.Prov) != dst.Prov().Get(b.Prov) {
			t.Fatalf("triple %d provenance differs", i)
		}
	}
	// Index-served lookups agree: same match lists for a bound predicate.
	p, ok := src.Dict().Lookup(rdf.Resource("worksAt"))
	if !ok {
		t.Fatal("worksAt missing in source")
	}
	p2, ok := dst.Dict().Lookup(rdf.Resource("worksAt"))
	if !ok {
		t.Fatal("worksAt missing after decode")
	}
	ms, md := src.Match(rdf.NoTerm, p, rdf.NoTerm), dst.Match(rdf.NoTerm, p2, rdf.NoTerm)
	if len(ms) != len(md) {
		t.Fatalf("match list length %d, want %d", len(md), len(ms))
	}
	for i := range ms {
		if ms[i] != md[i] {
			t.Fatalf("match list order diverges at %d", i)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st, rules := segStore(t, 50)
	data := encodeSeg(t, st, rules, 3)
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 3 || snap.IndexesRebuilt {
		t.Fatalf("epoch=%d rebuilt=%v, want epoch 3 with eager indexes", snap.Epoch, snap.IndexesRebuilt)
	}
	if !snap.Store.Frozen() {
		t.Fatal("decoded store not frozen")
	}
	sameStore(t, st, snap.Store)
	if len(snap.Rules) != len(rules) {
		t.Fatalf("rules: %d, want %d", len(snap.Rules), len(rules))
	}
	for i, r := range snap.Rules {
		if r.ID != rules[i].ID || r.Weight != rules[i].Weight ||
			r.Origin != rules[i].Origin || RuleText(r) != RuleText(rules[i]) {
			t.Fatalf("rule %d: %+v vs %+v", i, r, rules[i])
		}
	}
}

func TestSnapshotForceRebuildMatchesEagerLoad(t *testing.T) {
	st, rules := segStore(t, 50)
	data := encodeSeg(t, st, rules, 1)
	snap, err := DecodeSnapshotForceRebuild(data)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IndexesRebuilt {
		t.Fatal("force-rebuild did not report a rebuild")
	}
	sameStore(t, st, snap.Store)
}

// TestSnapshotOldIndexVersionRebuilds: a file stamped with an older
// index-format version still loads — the permutation indexes are
// re-sorted from the triple column instead of trusted eagerly.
func TestSnapshotOldIndexVersionRebuilds(t *testing.T) {
	st, rules := segStore(t, 20)
	data := encodeSeg(t, st, rules, 1)
	binary.LittleEndian.PutUint32(data[12:], store.IndexFormatVersion-1)
	binary.LittleEndian.PutUint32(data[28:], crc32.Checksum(data[:28], castagnoli))
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IndexesRebuilt {
		t.Fatal("older index version should force a rebuild")
	}
	sameStore(t, st, snap.Store)
}

// TestSnapshotBitFlips: flipping any single bit of the encoded file
// must surface as ErrCorrupt (CRC-32C catches all single-bit errors in
// checksummed regions; frame structure checks catch the rest), never a
// panic and never a silently different store.
func TestSnapshotBitFlips(t *testing.T) {
	st, rules := segStore(t, 8)
	data := encodeSeg(t, st, rules, 1)
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 1 << (i % 8)
		snap, err := DecodeSnapshot(mut)
		if err == nil {
			t.Fatalf("bit flip at byte %d decoded silently", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: error %v does not wrap ErrCorrupt", i, err)
		}
		if snap != nil {
			t.Fatalf("bit flip at byte %d returned a partial snapshot", i)
		}
	}
}

// TestSnapshotTruncations: every proper prefix of the file is rejected
// with ErrCorrupt — the end marker means truncation is always visible.
func TestSnapshotTruncations(t *testing.T) {
	st, rules := segStore(t, 8)
	data := encodeSeg(t, st, rules, 1)
	for n := 0; n < len(data); n++ {
		if _, err := DecodeSnapshot(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err=%v, want ErrCorrupt", n, err)
		}
	}
	// Trailing garbage after the end marker is equally corrupt.
	if _, err := DecodeSnapshot(append(bytes.Clone(data), 0xAA)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// TestSnapshotLengthLies: a section length claiming more bytes than the
// file holds, and a record count claiming more records than the payload
// can carry, are rejected before any proportional allocation happens.
func TestSnapshotLengthLies(t *testing.T) {
	st, rules := segStore(t, 4)
	data := encodeSeg(t, st, rules, 1)
	// The first section header starts at byte 28: id at 28, u64 length at
	// 29. Claim near-max length.
	lie := bytes.Clone(data)
	binary.LittleEndian.PutUint64(lie[29:], 1<<60)
	if _, err := DecodeSnapshot(lie); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("length lie accepted: %v", err)
	}
	// A dict count lie inside the payload: huge uvarint count, tiny
	// payload. Rebuild the section frame so the CRC is valid — the count
	// check itself must reject it.
	payload := binary.AppendUvarint(nil, 1<<40)
	frame := []byte{secDict}
	frame = binary.LittleEndian.AppendUint64(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	lie2 := append(bytes.Clone(data[:28]), frame...)
	if _, err := DecodeSnapshot(lie2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("count lie accepted: %v", err)
	}
}

func TestWriteSnapshotFileAtomicity(t *testing.T) {
	st, rules := segStore(t, 10)
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.trnt")
	if err := WriteSnapshotFile(path, st, rules, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind after a successful write")
	}
	snap, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Bytes == 0 {
		t.Fatal("ReadSnapshotFile did not record the file size")
	}
	sameStore(t, st, snap.Store)

	// Overwrite with a new epoch: readers must never see a mix.
	if err := WriteSnapshotFile(path, st, rules, 2); err != nil {
		t.Fatal(err)
	}
	snap2, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch != 2 {
		t.Fatalf("epoch after overwrite = %d", snap2.Epoch)
	}
}

func TestWriteSnapshotRequiresFrozen(t *testing.T) {
	st := store.New(nil, nil)
	if err := WriteSnapshot(&bytes.Buffer{}, st, nil, 1); err == nil {
		t.Fatal("unfrozen store accepted")
	}
}
