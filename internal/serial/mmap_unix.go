//go:build unix

package serial

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared; the mapping outlives
// the file descriptor, so callers may close f immediately after.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) error {
	return syscall.Munmap(b)
}
