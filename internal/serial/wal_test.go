package serial

// Delta-log contract: records round-trip through append/reopen, a crash
// at any byte offset recovers to the last complete record (truncating
// the torn tail), and damage under once-durable records — mid-file bit
// flips — is refused as ErrCorrupt rather than silently un-happening
// acknowledged writes.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"trinit/internal/rdf"
)

func walRecords() []WALRecord {
	return []WALRecord{
		{
			Epoch: 2, Op: WALTriple,
			S: rdf.Resource("AlbertEinstein"), P: rdf.Token("lectured at"), O: rdf.Token("the institute"),
			Source: rdf.SourceXKG, Conf: 0.9, Doc: "doc-1", Sentence: "He lectured at the institute.",
		},
		{
			Epoch: 2, Op: WALRuleAdd,
			RuleID: "r1", RuleText: "?x worksAt ?y => ?x 'lectured at' ?y", RuleWeight: 0.8, RuleOrigin: "manual",
		},
		{Epoch: 2, Op: WALRuleRemove, RuleID: "r1"},
		{Epoch: 2, Op: WALRuleClear},
	}
}

// writeWAL creates a log at path holding the records and returns the
// file's bytes.
func writeWAL(t testing.TB, path string, recs []WALRecord) []byte {
	t.Helper()
	w, replay, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Records) != 0 || replay.TornBytes != 0 {
		t.Fatalf("fresh log replayed %+v", replay)
	}
	if err := w.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := walRecords()
	writeWAL(t, path, recs)

	w, replay, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if replay.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", replay.TornBytes)
	}
	if len(replay.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(replay.Records), len(recs))
	}
	for i, got := range replay.Records {
		if got != recs[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got, recs[i])
		}
	}
	// The handle appends after the replayed tail, not over it.
	extra := WALRecord{Epoch: 2, Op: WALRuleClear}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, replay2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay2.Records) != len(recs)+1 {
		t.Fatalf("after extra append: %d records, want %d", len(replay2.Records), len(recs)+1)
	}
}

// TestWALTornTailEveryOffset simulates a crash at every byte offset of
// the log: the truncated file must always reopen, recovering exactly
// the records whose frames are complete and truncating the rest.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	recs := walRecords()
	full := writeWAL(t, filepath.Join(dir, "full.log"), recs)

	// recordEnds[i] = file offset just past record i.
	var recordEnds []int
	{
		_, replay, err := OpenWAL(filepath.Join(dir, "full.log"))
		if err != nil || len(replay.Records) != len(recs) {
			t.Fatalf("full log replay: %v, %d records", err, len(replay.Records))
		}
	}
	off := len(walMagic)
	for range recs {
		n := int(uint32(full[off]) | uint32(full[off+1])<<8 | uint32(full[off+2])<<16 | uint32(full[off+3])<<24)
		off += 8 + n
		recordEnds = append(recordEnds, off)
	}
	if off != len(full) {
		t.Fatalf("frame walk ended at %d of %d", off, len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, replay, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		w.Close()
		wantComplete := 0
		for _, end := range recordEnds {
			if end <= cut {
				wantComplete++
			}
		}
		if len(replay.Records) != wantComplete {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(replay.Records), wantComplete)
		}
		wantEnd := len(walMagic)
		if wantComplete > 0 {
			wantEnd = recordEnds[wantComplete-1]
		}
		if cut < len(walMagic) {
			wantEnd = len(walMagic) // header rewritten in place
		}
		if wantTorn := cut - wantEnd; wantTorn >= 0 && replay.TornBytes != wantTorn {
			t.Fatalf("cut at %d: torn bytes %d, want %d", cut, replay.TornBytes, wantTorn)
		}
		// The torn tail is gone: a second open is clean and idempotent.
		w2, replay2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut at %d, reopen: %v", cut, err)
		}
		w2.Close()
		if replay2.TornBytes != 0 || len(replay2.Records) != wantComplete {
			t.Fatalf("cut at %d: reopen not clean (%d torn, %d records)", cut, replay2.TornBytes, len(replay2.Records))
		}
	}
}

// TestWALMidFileCorruption: a bit flip under a record that has intact
// records after it is not a torn tail — recovery must refuse with
// ErrCorrupt instead of dropping acknowledged writes.
func TestWALMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	full := writeWAL(t, filepath.Join(dir, "full.log"), walRecords())

	// Flip a payload byte of the first record (frame starts after the
	// magic; payload starts 8 bytes later).
	mut := bytes.Clone(full)
	mut[len(walMagic)+8] ^= 0x40
	path := filepath.Join(dir, "mid.log")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file flip: err=%v, want ErrCorrupt", err)
	}
	// The same flip in the final record is a torn tail: truncate-and-warn.
	mut2 := bytes.Clone(full)
	mut2[len(full)-1] ^= 0x40
	path2 := filepath.Join(dir, "tail.log")
	if err := os.WriteFile(path2, mut2, 0o644); err != nil {
		t.Fatal(err)
	}
	w, replay, err := OpenWAL(path2)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if replay.TornBytes == 0 {
		t.Fatal("damaged final frame not reported as torn")
	}
	if len(replay.Records) != len(walRecords())-1 {
		t.Fatalf("recovered %d records, want %d", len(replay.Records), len(walRecords())-1)
	}
}

// TestWALZeroFilledTail: a zero-filled tail (preallocated blocks after
// a crash) parses as a zero frame and is truncated, not replayed.
func TestWALZeroFilledTail(t *testing.T) {
	dir := t.TempDir()
	full := writeWAL(t, filepath.Join(dir, "full.log"), walRecords()[:2])
	path := filepath.Join(dir, "zeros.log")
	if err := os.WriteFile(path, append(bytes.Clone(full), make([]byte, 64)...), 0o644); err != nil {
		t.Fatal(err)
	}
	w, replay, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if len(replay.Records) != 2 || replay.TornBytes != 64 {
		t.Fatalf("zero tail: %d records, %d torn", len(replay.Records), replay.TornBytes)
	}
}

func TestWALBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("NOTAWAL0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err=%v, want ErrCorrupt", err)
	}
}

func TestWALRotateEmptiesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecords()...); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WALRecord{Epoch: 3, Op: WALRuleClear}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, replay, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Records) != 1 || replay.Records[0].Epoch != 3 {
		t.Fatalf("after rotate: %+v", replay.Records)
	}
}
