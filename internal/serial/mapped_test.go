package serial

// Memory-mapped segment contract at the serial level:
//
//   - a v2 segment opened with OpenSnapshotMapped serves the identical
//     store (triples, metadata, index-served match lists, rules) without
//     decoding the columns onto the heap;
//   - every single-bit flip and every truncation of the file surfaces as
//     ErrCorrupt at open time — columns are validated before any view is
//     published, so damage can never SIGBUS a query later;
//   - files the mapped path cannot serve (v1 segments, stale index
//     versions) fail with ErrNotMappable so callers fall back to the
//     eager decoder, and that classification never swallows corruption;
//   - v1 files written by WriteSnapshotV1 still decode eagerly, so old
//     snapshot directories keep opening after the format change.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"trinit/internal/store"
)

// writeSegFile writes an encoded segment to a temp file and returns its
// path.
func writeSegFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snapshot.trnt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// openMappedFile opens a segment file via the mapped path, skipping the
// test on hosts without mmap support.
func openMappedFile(t *testing.T, path string) *MappedSnapshot {
	t.Helper()
	m, err := OpenSnapshotMapped(path)
	if errors.Is(err, ErrNotMappable) && runtime.GOOS == "windows" {
		t.Skipf("mapped open unsupported here: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMappedRoundTrip(t *testing.T) {
	st, rules := segStore(t, 50)
	data := encodeSeg(t, st, rules, 7)
	m := openMappedFile(t, writeSegFile(t, data))
	defer m.Close()

	if m.Epoch != 7 {
		t.Fatalf("epoch = %d, want 7", m.Epoch)
	}
	if !m.Store.Mapped() {
		t.Fatal("mapped open materialised the columns")
	}
	if m.MappedBytes() != len(data) {
		t.Fatalf("MappedBytes = %d, want %d", m.MappedBytes(), len(data))
	}
	if !m.Store.Frozen() {
		t.Fatal("mapped store not frozen")
	}
	sameStore(t, st, m.Store)
	if len(m.Rules) != len(rules) {
		t.Fatalf("rules: %d, want %d", len(m.Rules), len(rules))
	}
	for i, r := range m.Rules {
		if r.ID != rules[i].ID || r.Weight != rules[i].Weight || RuleText(r) != RuleText(rules[i]) {
			t.Fatalf("rule %d: %+v vs %+v", i, r, rules[i])
		}
	}
}

// TestMappedMatchesEagerDecode pins representation equivalence one level
// down: the mapped store and the eagerly decoded store of the same bytes
// agree triple for triple and match list for match list.
func TestMappedMatchesEagerDecode(t *testing.T) {
	st, rules := segStore(t, 30)
	data := encodeSeg(t, st, rules, 1)
	m := openMappedFile(t, writeSegFile(t, data))
	defer m.Close()
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	sameStore(t, snap.Store, m.Store)
}

// TestMappedBitFlips: every single-bit flip must fail the open with
// ErrCorrupt — never a panic, never ErrNotMappable (which would silently
// route damaged bytes to the eager decoder), and never a mapping that
// faults later.
func TestMappedBitFlips(t *testing.T) {
	st, rules := segStore(t, 3)
	data := encodeSeg(t, st, rules, 1)
	// Probe once for platform support before the loop.
	openMappedFile(t, writeSegFile(t, data)).Close()

	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 1 << (i % 8)
		m, err := OpenSnapshotMapped(writeSegFile(t, mut))
		if err == nil {
			m.Close()
			t.Fatalf("bit flip at byte %d mapped silently", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
}

// TestMappedTruncations: every proper prefix fails the open with
// ErrCorrupt.
func TestMappedTruncations(t *testing.T) {
	st, rules := segStore(t, 3)
	data := encodeSeg(t, st, rules, 1)
	openMappedFile(t, writeSegFile(t, data)).Close()

	for n := 0; n < len(data); n++ {
		if m, err := OpenSnapshotMapped(writeSegFile(t, data[:n])); !errors.Is(err, ErrCorrupt) {
			if m != nil {
				m.Close()
			}
			t.Fatalf("truncation to %d bytes: err=%v, want ErrCorrupt", n, err)
		}
	}
	if m, err := OpenSnapshotMapped(writeSegFile(t, append(bytes.Clone(data), 0xAA))); !errors.Is(err, ErrCorrupt) {
		if m != nil {
			m.Close()
		}
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// TestMappedV1NotMappable: a v1 segment is structurally unmappable —
// the mapped open classifies it for eager fallback rather than calling
// it corrupt, and the eager decoder still round-trips it.
func TestMappedV1NotMappable(t *testing.T) {
	st, rules := segStore(t, 10)
	var buf bytes.Buffer
	if err := WriteSnapshotV1(&buf, st, rules, 2); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := OpenSnapshotMapped(writeSegFile(t, data)); !errors.Is(err, ErrNotMappable) {
		t.Fatalf("v1 mapped open: err=%v, want ErrNotMappable", err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 2 {
		t.Fatalf("v1 epoch = %d, want 2", snap.Epoch)
	}
	sameStore(t, st, snap.Store)
	if len(snap.Rules) != len(rules) {
		t.Fatalf("v1 rules: %d, want %d", len(snap.Rules), len(rules))
	}
}

// TestMappedStaleIndexVersionNotMappable: the zero-copy path serves the
// permutation indexes verbatim, so a stale index format must fall back
// to the eager decoder's rebuild-by-sort instead of trusting the bytes.
func TestMappedStaleIndexVersionNotMappable(t *testing.T) {
	st, rules := segStore(t, 10)
	data := encodeSeg(t, st, rules, 1)
	binary.LittleEndian.PutUint32(data[12:], store.IndexFormatVersion-1)
	binary.LittleEndian.PutUint32(data[28:], crc32.Checksum(data[:28], castagnoli))
	if _, err := OpenSnapshotMapped(writeSegFile(t, data)); !errors.Is(err, ErrNotMappable) {
		t.Fatalf("stale index version: err=%v, want ErrNotMappable", err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IndexesRebuilt {
		t.Fatal("eager fallback did not rebuild the indexes")
	}
	sameStore(t, st, snap.Store)
}

// TestMappedCloseIdempotent: Close unmaps once; double Close and Close
// after MappedBytes are safe.
func TestMappedCloseIdempotent(t *testing.T) {
	st, rules := segStore(t, 5)
	m := openMappedFile(t, writeSegFile(t, encodeSeg(t, st, rules, 1)))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSnap *MappedSnapshot
	if nilSnap.MappedBytes() != 0 || nilSnap.Close() != nil {
		t.Fatal("nil MappedSnapshot must be inert")
	}
}
