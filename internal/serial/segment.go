package serial

// Binary segment snapshots of a frozen store.
//
// A snapshot is the durable image of the XKG at one epoch: dictionary,
// provenance, the triple column, the three columnar permutation indexes,
// and the relaxation rules, each in its own CRC-framed section:
//
//	magic "TRNTSEG1"
//	u32 format version | u32 index version | u64 epoch | u32 header CRC
//	sections, each: u8 id | u64 payload length | payload | u32 payload CRC
//	end marker: section id 0xFF with empty payload
//
// All integers are little-endian; checksums are CRC-32C (Castagnoli).
// Sections appear in a fixed canonical order, and the end marker means a
// truncated file is always detectable. The index sections carry exactly
// what store.Freeze would have sorted; when the file's index version
// predates store.IndexFormatVersion the decoder checksums but skips them
// and rebuilds by sorting the triple column instead — an older snapshot
// is a slower open, never a wrong one.
//
// Every decoding failure surfaces as an error wrapping ErrCorrupt. The
// decoder validates section lengths and record counts against the bytes
// actually present before allocating, so a length-field lie cannot make
// it over-allocate, and a snapshot can never load partially: the caller
// gets the whole frozen store or a typed error.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"trinit/internal/faultinject"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

// ErrCorrupt is wrapped by every error reporting damaged or inconsistent
// on-disk data — checksum mismatches, truncation, length-field lies,
// records that fail validation. Callers test with errors.Is.
var ErrCorrupt = errors.New("serial: corrupt data")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

const (
	snapMagic         = "TRNTSEG1"
	snapFormatVersion = 1
)

const (
	secDict    byte = 1
	secProv    byte = 2
	secTriples byte = 3
	secSPO     byte = 4
	secPOS     byte = 5
	secOSP     byte = 6
	secRules   byte = 7
	secEnd     byte = 0xFF
)

// sectionOrder is the canonical section sequence of a snapshot file.
var sectionOrder = []byte{secDict, secProv, secTriples, secSPO, secPOS, secOSP, secRules, secEnd}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is a decoded segment snapshot: a frozen store plus the rules
// and epoch it was written with.
type Snapshot struct {
	// Epoch is the snapshot's epoch stamp; WAL records carry the same
	// stamp so recovery can tell live deltas from stale ones.
	Epoch uint64
	// IndexVersion is the index-format version the file was written
	// under.
	IndexVersion uint32
	// IndexesRebuilt reports that the permutation indexes were re-sorted
	// from the triple column instead of loaded eagerly, because the file
	// predates store.IndexFormatVersion (or a rebuild was forced).
	IndexesRebuilt bool
	// Bytes is the encoded size, when known (ReadSnapshotFile sets it).
	Bytes int64
	// Store is the decoded store, already frozen.
	Store *store.Store
	// Rules holds the relaxation rules in file order.
	Rules []*relax.Rule
}

// WriteSnapshot encodes a snapshot of the frozen store and rules at the
// given epoch to w, in the current (v2, mmap-ready) segment format.
func WriteSnapshot(w io.Writer, st *store.Store, rules []*relax.Rule, epoch uint64) error {
	if !st.Frozen() {
		return fmt.Errorf("serial: WriteSnapshot requires a frozen store")
	}
	return writeSnapshotV2(w, st, rules, epoch)
}

// WriteSnapshotV1 encodes a snapshot in the legacy v1 (varint-packed)
// segment format. v1 files stay fully readable — DecodeSnapshot dispatches
// on the header's version field — but cannot be memory-mapped; the
// exported writer exists so back-compat tests and migration tooling can
// still produce them.
func WriteSnapshotV1(w io.Writer, st *store.Store, rules []*relax.Rule, epoch uint64) error {
	if !st.Frozen() {
		return fmt.Errorf("serial: WriteSnapshotV1 requires a frozen store")
	}
	var hdr [28]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapFormatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], store.IndexFormatVersion)
	binary.LittleEndian.PutUint64(hdr[16:], epoch)
	binary.LittleEndian.PutUint32(hdr[24:], crc32.Checksum(hdr[:24], castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	idx := st.IndexSnapshot()
	sections := []struct {
		id     byte
		encode func(buf []byte) []byte
	}{
		{secDict, func(buf []byte) []byte { return appendDict(buf, st.Dict()) }},
		{secProv, func(buf []byte) []byte { return appendProv(buf, st.Prov()) }},
		{secTriples, func(buf []byte) []byte { return appendTriples(buf, st) }},
		{secSPO, func(buf []byte) []byte { return appendIndex(buf, idx.SPO) }},
		{secPOS, func(buf []byte) []byte { return appendIndex(buf, idx.POS) }},
		{secOSP, func(buf []byte) []byte { return appendIndex(buf, idx.OSP) }},
		{secRules, func(buf []byte) []byte { return appendRules(buf, rules) }},
		{secEnd, func(buf []byte) []byte { return buf }},
	}
	var payload []byte
	for _, s := range sections {
		payload = s.encode(payload[:0])
		var frame [9]byte
		frame[0] = s.id
		binary.LittleEndian.PutUint64(frame[1:], uint64(len(payload)))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
		if _, err := w.Write(crc[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshotFile writes the snapshot atomically: encode to path+".tmp",
// fsync the file, rename over path, fsync the directory. Readers see the
// old snapshot or the new one, never a mix. On failure the temp file is
// left behind — exactly the state a crash would leave — and recovery
// sweeps stale temp files on open.
func WriteSnapshotFile(path string, st *store.Store, rules []*relax.Rule, epoch uint64) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(&faultWriter{w: f}, st, rules, epoch); err != nil {
		f.Close()
		return err
	}
	if err := faultinject.FireErr(faultinject.SiteFsync, "snapshot"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := faultinject.FireErr(faultinject.SiteRename, "before"); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := faultinject.FireErr(faultinject.SiteRename, "after"); err != nil {
		return err
	}
	if err := faultinject.FireErr(faultinject.SiteFsync, "dir"); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// faultWriter injects short writes at SiteSnapshotWrite: on an injected
// error, half the chunk reaches the underlying file and the rest never
// does — the on-disk state a power cut mid-write leaves behind.
type faultWriter struct {
	w io.Writer
	n int
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	fw.n++
	key := ""
	if faultinject.Enabled() {
		key = strconv.Itoa(fw.n)
	}
	if err := faultinject.FireErr(faultinject.SiteSnapshotWrite, key); err != nil {
		half := len(p) / 2
		if half > 0 {
			fw.w.Write(p[:half])
		}
		return half, err
	}
	return fw.w.Write(p)
}

// ReadSnapshotFile reads and decodes a snapshot file.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	snap.Bytes = int64(len(data))
	return snap, nil
}

// DecodeSnapshot decodes an in-memory snapshot image into a frozen store.
// Any damage — truncation, checksum mismatch, invalid records — returns
// an error wrapping ErrCorrupt.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	return decodeSnapshot(data, false)
}

// DecodeSnapshotForceRebuild decodes like DecodeSnapshot but ignores the
// eager index sections (after checksumming them) and re-sorts the
// permutation indexes from the triple column — the path every snapshot
// takes after an index-format bump. Benchmarks and tests use it to
// compare eager load against rebuild.
func DecodeSnapshotForceRebuild(data []byte) (*Snapshot, error) {
	return decodeSnapshot(data, true)
}

func decodeSnapshot(data []byte, forceRebuild bool) (*Snapshot, error) {
	if len(data) < 28 {
		return nil, corruptf("snapshot header truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != snapMagic {
		return nil, corruptf("bad snapshot magic")
	}
	// The version field sits at the same offset in every format; the
	// header CRC's position depends on it, so dispatch before verifying.
	version := binary.LittleEndian.Uint32(data[8:])
	switch version {
	case snapFormatVersion:
		if crc := binary.LittleEndian.Uint32(data[24:]); crc != crc32.Checksum(data[:24], castagnoli) {
			return nil, corruptf("snapshot header checksum mismatch")
		}
	case snapFormatVersionV2:
		if len(data) < v2HeaderSize {
			return nil, corruptf("snapshot header truncated (%d bytes)", len(data))
		}
		if crc := binary.LittleEndian.Uint32(data[28:]); crc != crc32.Checksum(data[:28], castagnoli) {
			return nil, corruptf("snapshot header checksum mismatch")
		}
		return decodeSnapshotV2(data, forceRebuild)
	default:
		return nil, corruptf("unsupported snapshot format version %d", version)
	}
	snap := &Snapshot{
		Epoch:        binary.LittleEndian.Uint64(data[16:]),
		IndexVersion: binary.LittleEndian.Uint32(data[12:]),
	}
	loadIndexes := !forceRebuild && snap.IndexVersion == store.IndexFormatVersion

	dict := rdf.NewDict()
	prov := rdf.NewProvTable()
	st := store.New(dict, prov)
	var idx store.IndexSnapshot

	off := 28
	for _, want := range sectionOrder {
		if off+9 > len(data) {
			return nil, corruptf("snapshot truncated at section header (offset %d)", off)
		}
		id := data[off]
		if id != want {
			return nil, corruptf("snapshot section %#x out of order (want %#x)", id, want)
		}
		n := binary.LittleEndian.Uint64(data[off+1 : off+9])
		off += 9
		if n > uint64(len(data)-off) {
			return nil, corruptf("section %#x claims %d bytes, only %d remain", id, n, len(data)-off)
		}
		payload := data[off : off+int(n)]
		off += int(n)
		if off+4 > len(data) {
			return nil, corruptf("snapshot truncated at section %#x checksum", id)
		}
		if crc := binary.LittleEndian.Uint32(data[off:]); crc != crc32.Checksum(payload, castagnoli) {
			return nil, corruptf("section %#x checksum mismatch", id)
		}
		off += 4

		var err error
		switch id {
		case secDict:
			err = decodeDict(payload, dict)
		case secProv:
			err = decodeProv(payload, prov)
		case secTriples:
			err = decodeTriples(payload, st)
		case secSPO, secPOS, secOSP:
			if loadIndexes {
				var cols store.IndexColumns
				cols, err = decodeIndex(payload)
				switch id {
				case secSPO:
					idx.SPO = cols
				case secPOS:
					idx.POS = cols
				case secOSP:
					idx.OSP = cols
				}
			}
		case secRules:
			snap.Rules, err = decodeRules(payload)
		case secEnd:
			if n != 0 {
				err = corruptf("end marker carries %d payload bytes", n)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	if off != len(data) {
		return nil, corruptf("%d trailing bytes after end marker", len(data)-off)
	}

	if loadIndexes {
		if err := st.FreezeWithIndexes(idx); err != nil {
			return nil, corruptf("%v", err)
		}
	} else {
		st.Freeze()
		snap.IndexesRebuilt = true
	}
	snap.Store = st
	return snap, nil
}

// --- section payloads ---

func appendDict(buf []byte, d *rdf.Dict) []byte {
	buf = binary.AppendUvarint(buf, uint64(d.Len()))
	d.All(func(_ rdf.TermID, t rdf.Term) bool {
		buf = append(buf, byte(t.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(t.Text)))
		buf = append(buf, t.Text...)
		return true
	})
	return buf
}

func decodeDict(payload []byte, d *rdf.Dict) error {
	r := &byteReader{data: payload}
	count, err := r.count("dict terms", 2)
	if err != nil {
		return err
	}
	d.Reserve(count)
	for i := 0; i < count; i++ {
		kind, err := r.u8()
		if err != nil {
			return err
		}
		if kind > uint8(rdf.KindToken) {
			return corruptf("dict term %d has unknown kind %d", i, kind)
		}
		text, err := r.str("dict term text")
		if err != nil {
			return err
		}
		t := rdf.Term{Kind: rdf.TermKind(kind), Text: text}
		if id := d.Intern(t); int(id) != i+1 {
			return corruptf("dict term %d duplicates term %d", i+1, id)
		}
	}
	return r.done()
}

func appendProv(buf []byte, pt *rdf.ProvTable) []byte {
	buf = binary.AppendUvarint(buf, uint64(pt.Len()))
	for i := 1; i <= pt.Len(); i++ {
		p := pt.Get(rdf.ProvID(i))
		buf = binary.AppendUvarint(buf, uint64(len(p.Doc)))
		buf = append(buf, p.Doc...)
		buf = binary.AppendUvarint(buf, uint64(len(p.Sentence)))
		buf = append(buf, p.Sentence...)
	}
	return buf
}

func decodeProv(payload []byte, pt *rdf.ProvTable) error {
	r := &byteReader{data: payload}
	count, err := r.count("provenance records", 2)
	if err != nil {
		return err
	}
	pt.Reserve(count)
	for i := 0; i < count; i++ {
		doc, err := r.str("provenance doc")
		if err != nil {
			return err
		}
		sentence, err := r.str("provenance sentence")
		if err != nil {
			return err
		}
		pt.Add(rdf.Prov{Doc: doc, Sentence: sentence})
	}
	return r.done()
}

func appendTriples(buf []byte, st *store.Store) []byte {
	buf = binary.AppendUvarint(buf, uint64(st.Len()))
	for i := 0; i < st.Len(); i++ {
		t := st.Triple(store.ID(i))
		buf = binary.AppendUvarint(buf, uint64(t.S))
		buf = binary.AppendUvarint(buf, uint64(t.P))
		buf = binary.AppendUvarint(buf, uint64(t.O))
		buf = append(buf, byte(t.Source))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Conf))
		buf = binary.AppendUvarint(buf, uint64(t.Prov))
	}
	return buf
}

func decodeTriples(payload []byte, st *store.Store) error {
	r := &byteReader{data: payload}
	count, err := r.count("triples", 13)
	if err != nil {
		return err
	}
	dict, prov := st.Dict(), st.Prov()
	for i := 0; i < count; i++ {
		s, err1 := r.uvarint()
		p, err2 := r.uvarint()
		o, err3 := r.uvarint()
		src, err4 := r.u8()
		bits, err5 := r.u64()
		pv, err6 := r.uvarint()
		if err := firstErr(err1, err2, err3, err4, err5, err6); err != nil {
			return corruptf("triple %d truncated: %v", i, err)
		}
		t := rdf.Triple{
			S:      rdf.TermID(s),
			P:      rdf.TermID(p),
			O:      rdf.TermID(o),
			Source: rdf.Source(src),
			Conf:   math.Float64frombits(bits),
			Prov:   rdf.ProvID(pv),
		}
		if !dict.Valid(t.S) || !dict.Valid(t.P) || !dict.Valid(t.O) {
			return corruptf("triple %d references a term outside the dictionary", i)
		}
		if src > uint8(rdf.SourceXKG) {
			return corruptf("triple %d has unknown source %d", i, src)
		}
		if !(t.Conf > 0 && t.Conf <= 1) {
			return corruptf("triple %d confidence %v outside (0, 1]", i, t.Conf)
		}
		if t.Prov != rdf.NoProv && int(t.Prov) > prov.Len() {
			return corruptf("triple %d references provenance record %d of %d", i, t.Prov, prov.Len())
		}
		if id := st.Add(t); int(id) != i {
			return corruptf("triple %d duplicates triple %d", i, id)
		}
	}
	return r.done()
}

func appendIndex(buf []byte, c store.IndexColumns) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(c.IDs)))
	for _, id := range c.IDs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	for _, k := range c.K1 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	}
	for _, k := range c.K2 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	}
	return buf
}

func decodeIndex(payload []byte) (store.IndexColumns, error) {
	r := &byteReader{data: payload}
	n, err := r.count("index entries", 12)
	if err != nil {
		return store.IndexColumns{}, err
	}
	c := store.IndexColumns{
		IDs: make([]store.ID, n),
		K1:  make([]rdf.TermID, n),
		K2:  make([]rdf.TermID, n),
	}
	for i := range c.IDs {
		v, err := r.u32()
		if err != nil {
			return store.IndexColumns{}, err
		}
		c.IDs[i] = store.ID(v)
	}
	for i := range c.K1 {
		v, err := r.u32()
		if err != nil {
			return store.IndexColumns{}, err
		}
		c.K1[i] = rdf.TermID(v)
	}
	for i := range c.K2 {
		v, err := r.u32()
		if err != nil {
			return store.IndexColumns{}, err
		}
		c.K2[i] = rdf.TermID(v)
	}
	if err := r.done(); err != nil {
		return store.IndexColumns{}, err
	}
	return c, nil
}

func appendRules(buf []byte, rules []*relax.Rule) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rules)))
	for _, r := range rules {
		buf = appendStr(buf, r.ID)
		buf = appendStr(buf, r.Origin)
		buf = appendStr(buf, RuleText(r))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Weight))
	}
	return buf
}

func decodeRules(payload []byte) ([]*relax.Rule, error) {
	r := &byteReader{data: payload}
	count, err := r.count("rules", 11)
	if err != nil {
		return nil, err
	}
	rules := make([]*relax.Rule, 0, count)
	for i := 0; i < count; i++ {
		id, err1 := r.str("rule id")
		origin, err2 := r.str("rule origin")
		text, err3 := r.str("rule text")
		bits, err4 := r.u64()
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, err
		}
		rule, perr := relax.ParseRule(id, text, math.Float64frombits(bits), origin)
		if perr != nil {
			return nil, corruptf("rule %d: %v", i, perr)
		}
		rules = append(rules, rule)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rules, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// byteReader is a bounds-checked cursor over one section payload. Every
// read that would pass the end returns ErrCorrupt, and count() validates
// a declared record count against the bytes actually present before the
// caller allocates — the defence against length-field lies.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) remaining() int { return len(r.data) - r.off }

func (r *byteReader) u8() (uint8, error) {
	if r.remaining() < 1 {
		return 0, corruptf("payload truncated")
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *byteReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, corruptf("payload truncated")
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, corruptf("payload truncated")
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, corruptf("bad varint")
	}
	r.off += n
	return v, nil
}

// count reads a record count and rejects it unless count*minRecordSize
// fits in the remaining payload.
func (r *byteReader) count(what string, minRecordSize int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()/minRecordSize) {
		return 0, corruptf("%s count %d exceeds payload capacity (%d bytes)", what, v, r.remaining())
	}
	return int(v), nil
}

// str reads a length-prefixed string, bounding the length by the bytes
// present.
func (r *byteReader) str(what string) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", corruptf("%s length %d exceeds payload", what, n)
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// done asserts the payload was consumed exactly.
func (r *byteReader) done() error {
	if r.remaining() != 0 {
		return corruptf("%d trailing bytes in section payload", r.remaining())
	}
	return nil
}
