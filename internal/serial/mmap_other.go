//go:build !unix

package serial

import (
	"fmt"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("serial: memory mapping is unsupported on this platform")
}

func munmapBytes(b []byte) error { return nil }
