// Package serial persists extended knowledge graphs and relaxation rules
// in a line-oriented text format ("TNT" — TriniT triples), so that an XKG
// built from a corpus once can be reloaded without re-running extraction.
//
// The format is tab-separated, one record per line, with Go-quoted fields:
//
//	KG	R"AlbertEinstein"	R"bornIn"	R"Ulm"
//	KG	R"AlbertEinstein"	R"bornOn"	L"1879-03-14"
//	XKG	R"AlbertEinstein"	T"won Nobel for"	T"discovery ..."	0.9	"doc-1"	"Einstein won ..."
//	RULE	"fig4-2"	1	"manual"	"?x hasAdvisor ?y => ?y hasStudent ?x"
//
// Term fields are a kind sigil (R resource, L literal, T token) followed by
// a Go-quoted string. XKG lines carry confidence and optional provenance
// (document, sentence). Lines starting with '#' and blank lines are
// ignored.
package serial

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

// WriteStore writes every triple of the store, KG lines first in ID order.
func WriteStore(w io.Writer, st *store.Store) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# TriniT extended knowledge graph"); err != nil {
		return err
	}
	dict := st.Dict()
	for i := 0; i < st.Len(); i++ {
		t := st.Triple(store.ID(i))
		s := formatTerm(dict.Term(t.S))
		p := formatTerm(dict.Term(t.P))
		o := formatTerm(dict.Term(t.O))
		var err error
		if t.Source == rdf.SourceKG {
			_, err = fmt.Fprintf(bw, "KG\t%s\t%s\t%s\n", s, p, o)
		} else {
			prov := st.Prov().Get(t.Prov)
			_, err = fmt.Fprintf(bw, "XKG\t%s\t%s\t%s\t%s\t%s\t%s\n",
				s, p, o,
				strconv.FormatFloat(t.Conf, 'g', -1, 64),
				strconv.Quote(prov.Doc), strconv.Quote(prov.Sentence))
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRules appends RULE records for the given rules.
func WriteRules(w io.Writer, rules []*relax.Rule) error {
	bw := bufio.NewWriter(w)
	for _, r := range rules {
		lhs := patternsText(r.LHS)
		rhs := patternsText(r.RHS)
		if _, err := fmt.Fprintf(bw, "RULE\t%s\t%s\t%s\t%s\n",
			strconv.Quote(r.ID),
			strconv.FormatFloat(r.Weight, 'g', -1, 64),
			strconv.Quote(r.Origin),
			strconv.Quote(lhs+" => "+rhs)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RuleText renders a rule as the "LHS => RHS" text relax.ParseRule
// accepts — the rule body every serial format (TNT, snapshot, WAL)
// persists.
func RuleText(r *relax.Rule) string {
	return patternsText(r.LHS) + " => " + patternsText(r.RHS)
}

// patternsText renders rule patterns in re-parseable query syntax. Rule
// terms are identifier-like resources, quoted tokens, or variables, all of
// which round-trip through relax.ParseRule.
func patternsText(ps []query.Pattern) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ; ")
}

func formatTerm(t rdf.Term) string {
	var sigil byte
	switch t.Kind {
	case rdf.KindResource:
		sigil = 'R'
	case rdf.KindLiteral:
		sigil = 'L'
	default:
		sigil = 'T'
	}
	return string(sigil) + strconv.Quote(t.Text)
}

func parseTerm(field string, line int) (rdf.Term, error) {
	if len(field) < 3 {
		return rdf.Term{}, fmt.Errorf("serial: line %d: malformed term %q", line, field)
	}
	text, err := strconv.Unquote(field[1:])
	if err != nil {
		return rdf.Term{}, fmt.Errorf("serial: line %d: bad term quoting %q: %v", line, field, err)
	}
	switch field[0] {
	case 'R':
		return rdf.Resource(text), nil
	case 'L':
		return rdf.Literal(text), nil
	case 'T':
		return rdf.Token(text), nil
	default:
		return rdf.Term{}, fmt.Errorf("serial: line %d: unknown term kind %q", line, field[0])
	}
}

// Decoded is the result of reading a TNT stream.
type Decoded struct {
	// Triples is the number of triples added to the store.
	Triples int
	// Rules holds the RULE records, in file order.
	Rules []*relax.Rule
}

// Read parses a TNT stream, adding triples into st (which must not be
// frozen) and collecting rules.
func Read(r io.Reader, st *store.Store) (Decoded, error) {
	var out Decoded
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "KG":
			if len(fields) != 4 {
				return out, fmt.Errorf("serial: line %d: KG record needs 4 fields, got %d", lineNo, len(fields))
			}
			s, err := parseTerm(fields[1], lineNo)
			if err != nil {
				return out, err
			}
			p, err := parseTerm(fields[2], lineNo)
			if err != nil {
				return out, err
			}
			o, err := parseTerm(fields[3], lineNo)
			if err != nil {
				return out, err
			}
			st.AddFact(s, p, o, rdf.SourceKG, 1, rdf.NoProv)
			out.Triples++
		case "XKG":
			if len(fields) != 7 {
				return out, fmt.Errorf("serial: line %d: XKG record needs 7 fields, got %d", lineNo, len(fields))
			}
			s, err := parseTerm(fields[1], lineNo)
			if err != nil {
				return out, err
			}
			p, err := parseTerm(fields[2], lineNo)
			if err != nil {
				return out, err
			}
			o, err := parseTerm(fields[3], lineNo)
			if err != nil {
				return out, err
			}
			conf, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || conf <= 0 || conf > 1 {
				return out, fmt.Errorf("serial: line %d: bad confidence %q", lineNo, fields[4])
			}
			doc, err := strconv.Unquote(fields[5])
			if err != nil {
				return out, fmt.Errorf("serial: line %d: bad doc field: %v", lineNo, err)
			}
			sentence, err := strconv.Unquote(fields[6])
			if err != nil {
				return out, fmt.Errorf("serial: line %d: bad sentence field: %v", lineNo, err)
			}
			prov := rdf.NoProv
			if doc != "" || sentence != "" {
				prov = st.Prov().Add(rdf.Prov{Doc: doc, Sentence: sentence})
			}
			st.AddFact(s, p, o, rdf.SourceXKG, conf, prov)
			out.Triples++
		case "RULE":
			if len(fields) != 5 {
				return out, fmt.Errorf("serial: line %d: RULE record needs 5 fields, got %d", lineNo, len(fields))
			}
			id, err := strconv.Unquote(fields[1])
			if err != nil {
				return out, fmt.Errorf("serial: line %d: bad rule id: %v", lineNo, err)
			}
			weight, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return out, fmt.Errorf("serial: line %d: bad rule weight: %v", lineNo, err)
			}
			origin, err := strconv.Unquote(fields[3])
			if err != nil {
				return out, fmt.Errorf("serial: line %d: bad rule origin: %v", lineNo, err)
			}
			text, err := strconv.Unquote(fields[4])
			if err != nil {
				return out, fmt.Errorf("serial: line %d: bad rule text: %v", lineNo, err)
			}
			rule, err := relax.ParseRule(id, text, weight, origin)
			if err != nil {
				return out, fmt.Errorf("serial: line %d: %v", lineNo, err)
			}
			out.Rules = append(out.Rules, rule)
		default:
			return out, fmt.Errorf("serial: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
