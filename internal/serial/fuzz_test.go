package serial

import (
	"strings"
	"testing"

	"trinit/internal/store"
)

// FuzzRead checks the TNT reader never panics on malformed input and that
// whatever it accepts re-serialises losslessly.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"# comment only\n",
		"KG\tR\"A\"\tR\"p\"\tR\"B\"\n",
		"XKG\tR\"A\"\tT\"p q\"\tT\"o o\"\t0.5\t\"d\"\t\"s\"\n",
		"RULE\t\"r\"\t0.7\t\"manual\"\t\"?x p ?y => ?x q ?y\"\n",
		"KG\tZ\"bad\"\tR\"p\"\tR\"B\"\n",
		"BOGUS\n",
		"KG\tR\"A\"\n",
		"\t\t\t\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st := store.New(nil, nil)
		dec, err := Read(strings.NewReader(input), st)
		if err != nil {
			return
		}
		if dec.Triples != st.Len() {
			t.Fatalf("decoded %d triples but store holds %d", dec.Triples, st.Len())
		}
		// Round trip what was accepted.
		var buf strings.Builder
		if err := WriteStore(&buf, st); err != nil {
			t.Fatal(err)
		}
		st2 := store.New(nil, nil)
		dec2, err := Read(strings.NewReader(buf.String()), st2)
		if err != nil {
			t.Fatalf("re-read of serialised store failed: %v", err)
		}
		if dec2.Triples != dec.Triples {
			t.Fatalf("round trip changed triple count: %d -> %d", dec.Triples, dec2.Triples)
		}
	})
}
