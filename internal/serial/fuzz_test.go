package serial

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trinit/internal/rdf"
	"trinit/internal/store"
)

// FuzzRead checks the TNT reader never panics on malformed input and that
// whatever it accepts re-serialises losslessly.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"# comment only\n",
		"KG\tR\"A\"\tR\"p\"\tR\"B\"\n",
		"XKG\tR\"A\"\tT\"p q\"\tT\"o o\"\t0.5\t\"d\"\t\"s\"\n",
		"RULE\t\"r\"\t0.7\t\"manual\"\t\"?x p ?y => ?x q ?y\"\n",
		"KG\tZ\"bad\"\tR\"p\"\tR\"B\"\n",
		"BOGUS\n",
		"KG\tR\"A\"\n",
		"\t\t\t\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st := store.New(nil, nil)
		dec, err := Read(strings.NewReader(input), st)
		if err != nil {
			return
		}
		if dec.Triples != st.Len() {
			t.Fatalf("decoded %d triples but store holds %d", dec.Triples, st.Len())
		}
		// Round trip what was accepted.
		var buf strings.Builder
		if err := WriteStore(&buf, st); err != nil {
			t.Fatal(err)
		}
		st2 := store.New(nil, nil)
		dec2, err := Read(strings.NewReader(buf.String()), st2)
		if err != nil {
			t.Fatalf("re-read of serialised store failed: %v", err)
		}
		if dec2.Triples != dec.Triples {
			t.Fatalf("round trip changed triple count: %d -> %d", dec.Triples, dec2.Triples)
		}
	})
}

// fuzzSnapshotSeed builds one valid encoded snapshot for the corpus.
func fuzzSnapshotSeed(f *testing.F) []byte {
	f.Helper()
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("A"), rdf.Resource("p"), rdf.Resource("B"))
	prov := st.Prov().Add(rdf.Prov{Doc: "d", Sentence: "s"})
	st.AddFact(rdf.Resource("A"), rdf.Token("p q"), rdf.Token("o o"), rdf.SourceXKG, 0.5, prov)
	st.Freeze()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, st, nil, 1); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeSnapshot: the segment decoder must never panic or
// over-allocate on adversarial input — truncations, bit flips and
// length-field lies all land on ErrCorrupt — and whatever it accepts
// must re-encode to an image that decodes to the same store.
func FuzzDecodeSnapshot(f *testing.F) {
	valid := fuzzSnapshotSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncation
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/3] ^= 0x10 // bit flip
	f.Add(flipped)
	lie := bytes.Clone(valid)
	for i := 29; i < 37 && i < len(lie); i++ { // first section length field
		lie[i] = 0xFF
	}
	f.Add(lie)
	f.Add([]byte("TRNTSEG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		// Accepted input must round-trip losslessly.
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, snap.Store, snap.Rules, snap.Epoch); err != nil {
			t.Fatalf("re-encode of accepted snapshot: %v", err)
		}
		again, err := DecodeSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot: %v", err)
		}
		if again.Store.Len() != snap.Store.Len() || len(again.Rules) != len(snap.Rules) {
			t.Fatalf("round trip changed shape: %d/%d triples, %d/%d rules",
				snap.Store.Len(), again.Store.Len(), len(snap.Rules), len(again.Rules))
		}
		// The rebuild path must agree with whatever the file carried.
		rb, err := DecodeSnapshotForceRebuild(data)
		if err != nil {
			t.Fatalf("force-rebuild rejects what eager decode accepted: %v", err)
		}
		if rb.Store.Len() != snap.Store.Len() {
			t.Fatalf("rebuild store shape differs: %d vs %d", rb.Store.Len(), snap.Store.Len())
		}
	})
}

// FuzzWALReplay: the delta-log reader must never panic; damage is
// either a truncated torn tail (reopen is then clean and idempotent) or
// a typed ErrCorrupt, and replayed records always re-encode losslessly.
func FuzzWALReplay(f *testing.F) {
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	f.Add(bytes.Clone(buf.Bytes()))
	{
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.log")
		w, _, err := OpenWAL(path)
		if err != nil {
			f.Fatal(err)
		}
		err = w.Append(
			WALRecord{Epoch: 1, Op: WALTriple, S: rdf.Resource("A"), P: rdf.Token("p q"), O: rdf.Literal("x"),
				Source: rdf.SourceXKG, Conf: 0.5, Doc: "d", Sentence: "s"},
			WALRecord{Epoch: 1, Op: WALRuleAdd, RuleID: "r", RuleText: "?x p ?y => ?x q ?y", RuleWeight: 0.7, RuleOrigin: "manual"},
			WALRecord{Epoch: 1, Op: WALRuleRemove, RuleID: "r"},
			WALRecord{Epoch: 1, Op: WALRuleClear},
		)
		w.Close()
		if err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bytes.Clone(data))
		f.Add(bytes.Clone(data[:len(data)-3])) // torn tail
		mid := bytes.Clone(data)
		mid[len(walMagic)+9] ^= 0x01 // mid-file flip
		f.Add(mid)
		f.Add(append(bytes.Clone(data), make([]byte, 32)...)) // zero tail
	}
	f.Add([]byte("NOTAWAL0junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, replay, err := OpenWAL(path)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed replay error: %v", err)
			}
			return
		}
		w.Close()
		// Whatever was truncated away, a second open must be clean: no new
		// torn bytes, identical records.
		w2, replay2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("reopen after recovery failed: %v", err)
		}
		w2.Close()
		if replay2.TornBytes != 0 {
			t.Fatalf("recovery not idempotent: %d torn bytes on reopen", replay2.TornBytes)
		}
		if len(replay2.Records) != len(replay.Records) {
			t.Fatalf("recovery not idempotent: %d then %d records", len(replay.Records), len(replay2.Records))
		}
		// Replayed records re-encode and decode losslessly.
		for i, rec := range replay.Records {
			payload := encodeWALRecord(nil, rec)
			back, err := decodeWALRecord(payload)
			if err != nil {
				t.Fatalf("record %d does not re-encode: %v", i, err)
			}
			if back != rec {
				t.Fatalf("record %d changed across re-encode: %+v vs %+v", i, back, rec)
			}
		}
	})
}
