package serial

import (
	"bytes"
	"strings"
	"testing"

	"trinit/internal/dataset"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

func demoStore() *store.Store {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Resource("bornOn"), rdf.Literal("1879-03-14"), rdf.SourceKG, 1, rdf.NoProv)
	prov := st.Prov().Add(rdf.Prov{Doc: "doc-1", Sentence: "Einstein won a Nobel for his discovery."})
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("won Nobel for"), rdf.Token("discovery of the photoelectric effect"), rdf.SourceXKG, 0.9, prov)
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	src := demoStore()
	var buf bytes.Buffer
	if err := WriteStore(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := store.New(nil, nil)
	dec, err := Read(&buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Triples != src.Len() || dst.Len() != src.Len() {
		t.Fatalf("triples: wrote %d, read %d", src.Len(), dec.Triples)
	}
	// Every triple must survive with source, confidence and provenance.
	for i := 0; i < src.Len(); i++ {
		a := src.Triple(store.ID(i))
		sTerm := src.Dict().Term(a.S)
		pTerm := src.Dict().Term(a.P)
		oTerm := src.Dict().Term(a.O)
		sid, ok1 := dst.Dict().Lookup(sTerm)
		pid, ok2 := dst.Dict().Lookup(pTerm)
		oid, ok3 := dst.Dict().Lookup(oTerm)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("terms of %v missing after round trip", a)
		}
		if !dst.Contains(sid, pid, oid) {
			t.Fatalf("fact %s %s %s missing after round trip", sTerm, pTerm, oTerm)
		}
	}
	// Check the XKG triple's metadata survived.
	dst.Freeze()
	p, _ := dst.Dict().Lookup(rdf.Token("won Nobel for"))
	ms := dst.Match(rdf.NoTerm, p, rdf.NoTerm)
	if len(ms) != 1 {
		t.Fatalf("XKG triple not found")
	}
	tr := dst.Triple(ms[0])
	if tr.Conf != 0.9 || tr.Source != rdf.SourceXKG {
		t.Fatalf("metadata lost: %+v", tr)
	}
	if got := dst.Prov().Get(tr.Prov); got.Doc != "doc-1" || !strings.Contains(got.Sentence, "Nobel") {
		t.Fatalf("provenance lost: %+v", got)
	}
}

func TestRulesRoundTrip(t *testing.T) {
	rules := []*relax.Rule{
		relax.MustParseRule("fig4-2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual"),
		relax.MustParseRule("fig4-3", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y", 0.8, "manual"),
	}
	var buf bytes.Buffer
	if err := WriteRules(&buf, rules); err != nil {
		t.Fatal(err)
	}
	dec, err := Read(&buf, store.New(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Rules) != 2 {
		t.Fatalf("rules = %d", len(dec.Rules))
	}
	for i, r := range dec.Rules {
		if r.ID != rules[i].ID || r.Weight != rules[i].Weight || r.Origin != rules[i].Origin {
			t.Fatalf("rule %d metadata: %+v vs %+v", i, r, rules[i])
		}
		if r.String() != rules[i].String() {
			t.Fatalf("rule %d text: %q vs %q", i, r.String(), rules[i].String())
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header\n\nKG\tR\"A\"\tR\"p\"\tR\"B\"\n   \n# trailing\n"
	st := store.New(nil, nil)
	dec, err := Read(strings.NewReader(input), st)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Triples != 1 {
		t.Fatalf("triples = %d", dec.Triples)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"unknown record", "BOGUS\tR\"A\"\n"},
		{"short KG", "KG\tR\"A\"\tR\"p\"\n"},
		{"bad term sigil", "KG\tZ\"A\"\tR\"p\"\tR\"B\"\n"},
		{"bad quoting", "KG\tR\"A\tR\"p\"\tR\"B\"\n"},
		{"bad confidence", "XKG\tR\"A\"\tT\"p\"\tR\"B\"\t2.5\t\"\"\t\"\"\n"},
		{"short XKG", "XKG\tR\"A\"\tT\"p\"\tR\"B\"\t0.5\n"},
		{"bad rule text", "RULE\t\"r\"\t0.5\t\"manual\"\t\"no arrow\"\n"},
		{"bad rule weight", "RULE\t\"r\"\tXX\t\"manual\"\t\"?x p ?y => ?x q ?y\"\n"},
	}
	for _, tc := range cases {
		st := store.New(nil, nil)
		if _, err := Read(strings.NewReader(tc.input), st); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestWeirdTextRoundTrips(t *testing.T) {
	st := store.New(nil, nil)
	nasty := "line\nbreak\tand \"quotes\" and 'apostrophes'"
	st.AddFact(rdf.Token(nasty), rdf.Token("rel\twith\ttabs"), rdf.Literal("val\\back"), rdf.SourceXKG, 0.5,
		st.Prov().Add(rdf.Prov{Doc: "d\t1", Sentence: "s\n2"}))
	var buf bytes.Buffer
	if err := WriteStore(&buf, st); err != nil {
		t.Fatal(err)
	}
	dst := store.New(nil, nil)
	if _, err := Read(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 1 {
		t.Fatalf("len = %d", dst.Len())
	}
	if _, ok := dst.Dict().Lookup(rdf.Token(nasty)); !ok {
		t.Fatal("nasty token text did not round trip")
	}
}

func TestSyntheticWorldRoundTrip(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.People = 30
	w := dataset.Generate(cfg)
	src := store.New(nil, nil)
	w.PopulateKG(src)
	var buf bytes.Buffer
	if err := WriteStore(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := store.New(nil, nil)
	dec, err := Read(&buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Triples != src.Len() {
		t.Fatalf("triples: %d vs %d", dec.Triples, src.Len())
	}
	if dst.Stats() != src.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", dst.Stats(), src.Stats())
	}
}
