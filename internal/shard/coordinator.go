package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
	"trinit/internal/topk"
)

// Group is a set of shard engines behind one coordinator: per-shard
// stores with their own match-list caches and executor pools, plus the
// corpus-wide normalisation-mass service every shard's matcher consults.
// A Group is safe for concurrent Run calls; executors are pooled per
// shard exactly as the unsharded engine pools them.
//
// The coordinator also keeps a residual executor over the retained full
// store: rewrites whose derivations are not guaranteed co-resident on a
// single shard (more than one pattern reading partitioned predicates)
// are evaluated there, sharing the run's bound broadcast and budget —
// the in-process analogue of a coordinator-side join for query shapes
// the partitioning cannot co-locate.
type Group struct {
	stores []*store.Store
	caches []*topk.Cache
	pools  []sync.Pool
	topts  topk.Options
	stats  PartitionStats

	// src is the full corpus: the normalisation-mass oracle and the
	// residual executor's store. srcCache/srcPool serve the residual
	// runs, mirroring the per-shard pools.
	src      *store.Store
	srcCache *topk.Cache
	srcPool  sync.Pool

	// mass serves each pattern's corpus-wide match mass to the shard
	// matchers (see score.Matcher.Mass), memoised per pattern text —
	// the store is frozen, so a mass never changes. nil under
	// NoNormalize, where emission probabilities are unnormalised and
	// shard-independent by construction. In-process the oracle reads
	// the retained source store; a network layer would compute the same
	// number by summing the shards' disjoint owned masses.
	mass   func(p query.Pattern, local float64) float64
	massMu sync.Mutex
	masses map[string]float64
}

// NewGroup partitions a frozen source store into n shards and builds
// their engines. The source store is retained as the statistics oracle
// for score normalisation and as the residual executor's store;
// co-located matching and joining runs against the shard stores.
func NewGroup(src *store.Store, n int, topts topk.Options, popts PartitionOptions) (*Group, error) {
	shards, stats, err := Partition(src, n, popts)
	if err != nil {
		return nil, err
	}
	return newGroup(src, shards, stats, topts), nil
}

// NewGroupFromStores builds a group over pre-built shard stores — the
// restore path for per-shard snapshots, and the test seam. src must
// hold the full corpus: it supplies the normalisation-mass oracle and
// the residual executor. replicated is the set of predicates present on
// every shard (PartitionStats.Replicated); nil is safe but conservative
// — without it the coordinator cannot prove any multi-pattern rewrite
// co-located and evaluates them all residually. The shard stores must
// be frozen and share one dictionary with src.
func NewGroupFromStores(src *store.Store, stores []*store.Store, replicated map[rdf.TermID]bool, topts topk.Options) (*Group, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("shard: group over zero stores")
	}
	for i, st := range stores {
		if !st.Frozen() {
			return nil, fmt.Errorf("shard: store %d is not frozen", i)
		}
	}
	if src == nil {
		return nil, fmt.Errorf("shard: group needs the source store (mass oracle and residual executor)")
	}
	stats := PartitionStats{
		Shards:     len(stores),
		Owned:      make([]int, len(stores)),
		Triples:    make([]int, len(stores)),
		Replicated: replicated,
	}
	for i, st := range stores {
		stats.Owned[i] = st.Len()
		stats.Triples[i] = st.Len()
	}
	return newGroup(src, stores, stats, topts), nil
}

func newGroup(src *store.Store, stores []*store.Store, stats PartitionStats, topts topk.Options) *Group {
	if topts.K <= 0 {
		// Mirror NewExecutor's default so the merge cut and the
		// per-shard runs agree on k.
		topts.K = 10
	}
	g := &Group{
		stores:   stores,
		caches:   make([]*topk.Cache, len(stores)),
		pools:    make([]sync.Pool, len(stores)),
		topts:    topts,
		stats:    stats,
		src:      src,
		srcCache: topk.NewCache(0),
	}
	// The residual executor evaluates against the full corpus, so its
	// local masses already are the global ones — no hook needed.
	g.srcPool.New = func() any { return topk.NewExecutor(src, g.srcCache, g.topts) }
	if !topts.NoNormalize && src != nil {
		oracle := topk.MatcherFor(src, topts)
		g.masses = make(map[string]float64)
		g.mass = func(p query.Pattern, _ float64) float64 {
			key := p.String()
			g.massMu.Lock()
			v, ok := g.masses[key]
			g.massMu.Unlock()
			if ok {
				return v
			}
			// Compute outside the lock — the matcher is concurrency-safe
			// and deterministic, so a duplicated computation stores the
			// same float.
			v = oracle.MatchMass(p)
			g.massMu.Lock()
			g.masses[key] = v
			g.massMu.Unlock()
			return v
		}
	}
	for i := range stores {
		i := i
		g.caches[i] = topk.NewCache(0)
		g.pools[i].New = func() any {
			ex := topk.NewExecutor(g.stores[i], g.caches[i], g.topts)
			if g.mass != nil {
				ex.SetMassHook(g.mass)
			}
			return ex
		}
	}
	return g
}

// Shards returns the shard count.
func (g *Group) Shards() int { return len(g.stores) }

// Store returns shard i's store.
func (g *Group) Store(i int) *store.Store { return g.stores[i] }

// AnswerStore resolves a RunResult.Shards attribution to the store the
// answer's derivation lives in: shard i's store, or the full source
// store for answers the coordinator's residual run produced (attribution
// == Shards()).
func (g *Group) AnswerStore(i int) *store.Store {
	if i == len(g.stores) {
		return g.src
	}
	return g.stores[i]
}

// shardable reports whether every derivation of the rewrite is fully
// co-resident on at least one shard: at most one pattern may read
// partitioned triples, and every other pattern must read a predicate
// replicated to all shards. Then each derivation joins that one
// partitioned triple — present on the shard owning its subject — with
// triples present everywhere, so the owning shard computes it exactly.
func (g *Group) shardable(rw relax.Rewrite) bool {
	partitioned := 0
	for _, p := range rw.Query.Patterns {
		if !g.everywhere(p) {
			partitioned++
			if partitioned > 1 {
				return false
			}
		}
	}
	return true
}

// everywhere reports whether every triple pattern p can match is
// replicated to all shards: the predicate slot names a concrete
// resource in the replicated set. Variable predicates range over
// partitioned ones, and token predicates match similar predicates by
// text similarity, which may include partitioned ones — both are
// conservatively treated as partitioned.
func (g *Group) everywhere(p query.Pattern) bool {
	if p.P.IsVar() || p.P.Term.Kind != rdf.KindResource || g.stats.Replicated == nil {
		return false
	}
	id, ok := g.src.Dict().Lookup(p.P.Term)
	return ok && g.stats.Replicated[id]
}

// Stats returns the partitioning statistics.
func (g *Group) Stats() PartitionStats { return g.stats }

// RunResult is one coordinated scatter-gather run.
type RunResult struct {
	// Answers is the merged global top-k, ranked exactly as one
	// unsharded run ranks: score descending, ties by binding key.
	Answers []topk.Answer
	// Shards[i] is the shard whose derivation backs Answers[i] (the
	// shard that achieved the answer's score; the lowest such index on
	// exact ties). The value Shards() marks the coordinator's residual
	// run. Explanations must resolve Derivation.Triples against the
	// attributed store — see AnswerStore.
	Shards []int
	// Metrics aggregates the per-shard and residual runs' work counters.
	Metrics topk.Metrics
	// Traces holds each shard's rewrite-by-rewrite trace, indexed by
	// shard; when the run had residual rewrites, the extra entry at
	// index Shards() is the coordinator's residual trace (nil under
	// RunConfig.NoTrace).
	Traces [][]topk.RewriteTrace
	// Broadcasts counts the bound-raising exchanges through the run's
	// BoundBroadcast.
	Broadcasts int64
	// Residual counts the rewrites the coordinator evaluated on the
	// full store because their derivations were not provably co-located
	// on any single shard (more than one pattern over partitioned
	// predicates).
	Residual int
	// MergeTime is the wall-clock cost of the gather/merge phase.
	MergeTime time.Duration
}

// Run scatter-gathers one query: every shard evaluates the co-located
// rewrites against its partition — sharing one fresh BoundBroadcast,
// one budget account and the caller's cancellation — rewrites the
// partitioning cannot co-locate run on the coordinator's residual
// full-store executor under the same bound and budget, and the
// coordinator merges all the rankings into the global top-k.
//
// Merge correctness: a rewrite is given to the shards only when each of
// its derivations joins at most one partitioned triple — co-resident on
// the shard owning that triple's subject, next to replicated triples
// that are everywhere — so that shard computes the derivation's exact
// global score: per-pattern probabilities are normalised with
// corpus-wide masses, making scores bit-identical to an unsharded
// run's. Every other rewrite is evaluated once, exactly, on the full
// store. Any run's answers can only score at or below their global
// scores, hence taking the max score per binding key across runs,
// sorting by (score desc, key asc) and cutting to k reproduces the
// unsharded ranking byte for byte.
//
// Errors follow the engine's precedence: a panic (which cancels the
// sibling runs) outranks budget exhaustion, which outranks
// cancellation; in every case the merged partial answers are returned.
func (g *Group) Run(ctx context.Context, q *query.Query, rewrites []relax.Rewrite, cfg topk.RunConfig) (RunResult, error) {
	n := len(g.stores)
	bb := &BoundBroadcast{}
	cfg.Bound = bb

	// Split the rewrite list into shard-local and residual work. A
	// single shard holds the whole corpus, so nothing is residual at
	// N=1 — the run is the unsharded run, derivation for derivation.
	local, residual := rewrites, []relax.Rewrite(nil)
	if n > 1 {
		shardableAll := true
		for _, rw := range rewrites {
			if !g.shardable(rw) {
				shardableAll = false
				break
			}
		}
		if !shardableAll {
			local = make([]relax.Rewrite, 0, len(rewrites))
			for _, rw := range rewrites {
				if g.shardable(rw) {
					local = append(local, rw)
				} else {
					residual = append(residual, rw)
				}
			}
		}
	}
	if cfg.BudgetShare == nil {
		// One shared account across all shards, as runParallel shares
		// one across workers; nil when the budget is unlimited.
		cfg.BudgetShare = topk.NewBudgetShare(cfg.Budget)
		cfg.Budget = topk.Budget{}
	}
	if cfg.Emit != nil {
		// Serialise the caller's emit hook across shards (the parallel
		// scheduler already serialises within one shard).
		var emitMu sync.Mutex
		inner := cfg.Emit
		cfg.Emit = func(a topk.Answer) {
			emitMu.Lock()
			defer emitMu.Unlock()
			inner(a)
		}
	}

	base := ctx
	if base == nil {
		base = context.Background()
	}
	ictx, icancel := context.WithCancel(base)
	defer icancel()

	// Slot n, when occupied, is the coordinator's residual run.
	slots := n
	if len(residual) > 0 {
		slots = n + 1
	}
	var (
		answers = make([][]topk.Answer, slots)
		metrics = make([]topk.Metrics, slots)
		errs    = make([]error, slots)
		traces  = make([][]topk.RewriteTrace, slots)
		wg      sync.WaitGroup
	)
	run := func(i int, pool *sync.Pool, rws []relax.Rewrite) {
		defer wg.Done()
		ex := pool.Get().(*topk.Executor)
		clean := false
		defer func() {
			if rec := recover(); rec != nil {
				// The serial executor path does not recover; this is
				// the per-run panic boundary. Cancel the siblings
				// and drop the (possibly poisoned) executor.
				errs[i] = &topk.PanicError{Value: rec, Stack: debug.Stack()}
				icancel()
				return
			}
			if clean {
				pool.Put(ex)
			}
		}()
		a, m, err := ex.Run(ictx, q, rws, cfg)
		if !cfg.NoTrace {
			traces[i] = ex.LastTrace()
		}
		answers[i], metrics[i], errs[i] = a, m, err
		clean = true
	}
	if n == 1 || len(local) > 0 {
		// A fully-residual rewrite list leaves the shards nothing to do;
		// skip their goroutines entirely rather than run them empty.
		for i := 0; i < n; i++ {
			wg.Add(1)
			go run(i, &g.pools[i], local)
		}
	}
	if len(residual) > 0 {
		// The residual run prunes with the same shared bound: its local
		// k-th best — computed over a subset of the rewrites — is never
		// above the global k-th, so publishing and consuming through bb
		// stays strictly safe.
		wg.Add(1)
		go run(n, &g.srcPool, residual)
	}
	wg.Wait()

	k := g.topts.K
	if cfg.K > 0 {
		k = cfg.K
	}
	if q.Limit > 0 && q.Limit < k {
		k = q.Limit
	}

	mergeStart := time.Now()
	proj := q.ProjectedVars()
	type slot struct {
		a     topk.Answer
		shard int
		key   string
	}
	var (
		list []slot
		pos  = make(map[string]int)
		buf  []byte
	)
	for si := 0; si < slots; si++ {
		for _, a := range answers[si] {
			buf = topk.AnswerKey(buf[:0], a.Bindings, proj)
			if i, ok := pos[string(buf)]; ok {
				// Max score per answer key; on exact ties the lowest
				// index wins (si ascends), fixing which run's
				// derivation backs the answer deterministically — the
				// residual run, at index n, loses ties to real shards.
				if a.Score > list[i].a.Score {
					list[i].a, list[i].shard = a, si
				}
				continue
			}
			pos[string(buf)] = len(list)
			list = append(list, slot{a: a, shard: si, key: string(buf)})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].a.Score != list[j].a.Score {
			return list[i].a.Score > list[j].a.Score
		}
		return list[i].key < list[j].key
	})
	if len(list) > k {
		list = list[:k]
	}

	res := RunResult{
		Answers:    make([]topk.Answer, len(list)),
		Shards:     make([]int, len(list)),
		Broadcasts: bb.Broadcasts(),
		Residual:   len(residual),
	}
	for i, s := range list {
		res.Answers[i] = s.a
		res.Shards[i] = s.shard
	}
	if !cfg.NoTrace {
		res.Traces = traces
	}
	for _, m := range metrics {
		res.Metrics.Add(m)
	}
	res.MergeTime = time.Since(mergeStart)

	// Error precedence: panic > budget > cancellation — mirroring the
	// parallel scheduler's rationale (a panic cancels the siblings, and
	// an exhausted shared budget stops every shard, so the weaker
	// signals are side effects of the stronger ones).
	var budgetErr, cancelErr error
	for _, e := range errs {
		var pe *topk.PanicError
		switch {
		case e == nil:
		case errors.As(e, &pe):
			return res, pe
		case errors.Is(e, topk.ErrBudgetExhausted):
			budgetErr = e
		case cancelErr == nil:
			cancelErr = e
		}
	}
	switch {
	case budgetErr != nil:
		return res, budgetErr
	case cancelErr != nil:
		if ctx != nil && ctx.Err() != nil {
			// Report the caller's cancellation cause (deadline vs
			// cancel), not the internal context's.
			return res, ctx.Err()
		}
		return res, cancelErr
	}
	return res, nil
}
