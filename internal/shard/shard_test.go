package shard

import (
	"fmt"
	"testing"

	"trinit/internal/rdf"
	"trinit/internal/store"
)

func TestBoundBroadcastKeepsMax(t *testing.T) {
	var b BoundBroadcast
	if b.Load() != 0 {
		t.Fatalf("zero broadcast loads %v", b.Load())
	}
	b.Publish(0.5)
	b.Publish(0.3) // lower: no-op
	if got := b.Load(); got != 0.5 {
		t.Fatalf("Load = %v, want 0.5", got)
	}
	b.Publish(0.5) // equal: no-op
	b.Publish(0.7)
	if got := b.Load(); got != 0.7 {
		t.Fatalf("Load = %v, want 0.7", got)
	}
	if got := b.Broadcasts(); got != 2 {
		t.Fatalf("Broadcasts = %d, want 2 (only raising publishes count)", got)
	}
}

// hubWorld builds a store shaped like the corpus: many person-subject
// facts (partitioned) pointing at a few hub entities that are themselves
// subjects of a containment predicate (replicated).
func hubWorld(people int) *store.Store {
	st := store.New(nil, nil)
	for i := 0; i < people; i++ {
		p := rdf.Resource(fmt.Sprintf("Person%03d", i))
		st.AddKG(p, rdf.Resource("affiliation"), rdf.Resource(fmt.Sprintf("Uni%d", i%4)))
		st.AddKG(p, rdf.Resource("bornIn"), rdf.Resource(fmt.Sprintf("City%d", i%3)))
	}
	for u := 0; u < 4; u++ {
		st.AddKG(rdf.Resource(fmt.Sprintf("Uni%d", u)), rdf.Resource("locatedIn"), rdf.Resource(fmt.Sprintf("City%d", u%3)))
	}
	st.Freeze()
	return st
}

func TestPartitionErrors(t *testing.T) {
	unfrozen := store.New(nil, nil)
	if _, _, err := Partition(unfrozen, 2, PartitionOptions{}); err == nil {
		t.Error("partition of unfrozen store did not fail")
	}
	st := hubWorld(8)
	if _, _, err := Partition(st, 0, PartitionOptions{}); err == nil {
		t.Error("partition into 0 shards did not fail")
	}
}

func TestPartitionInvariants(t *testing.T) {
	src := hubWorld(40)
	for _, n := range []int{1, 2, 3, 4} {
		shards, stats, err := Partition(src, n, PartitionOptions{})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if len(shards) != n || stats.Shards != n {
			t.Fatalf("N=%d: got %d shards, stats say %d", n, len(shards), stats.Shards)
		}

		// Owned sets are disjoint and cover the source exactly.
		totalOwned := 0
		for _, c := range stats.Owned {
			totalOwned += c
		}
		if totalOwned != src.Len() {
			t.Fatalf("N=%d: owned triples sum to %d, source has %d", n, totalOwned, src.Len())
		}

		// locatedIn is a hub predicate (4 distinct subjects out of 44+):
		// its triples must be present on every shard.
		locIn, _ := src.Dict().Lookup(rdf.Resource("locatedIn"))
		want := src.Count(rdf.NoTerm, locIn, rdf.NoTerm)
		for j, sh := range shards {
			if got := sh.Count(rdf.NoTerm, locIn, rdf.NoTerm); got != want {
				t.Errorf("N=%d shard %d: %d locatedIn triples, want all %d replicated", n, j, got, want)
			}
			if !sh.Frozen() {
				t.Errorf("N=%d shard %d: not frozen", n, j)
			}
		}
		if stats.ReplicatedPreds == 0 || stats.ReplicatedTriples == 0 {
			t.Errorf("N=%d: no replication recorded (%+v)", n, stats)
		}

		// Every shard triple is either owned by that shard or carries a
		// replicated predicate; per-shard sizes match the stats.
		for j, sh := range shards {
			if sh.Len() != stats.Triples[j] {
				t.Errorf("N=%d shard %d: Len %d, stats.Triples %d", n, j, sh.Len(), stats.Triples[j])
			}
		}

		if n == 1 {
			// The single shard replays the exact source sequence.
			if shards[0].Len() != src.Len() {
				t.Fatalf("N=1: shard has %d triples, source %d", shards[0].Len(), src.Len())
			}
			for id := 0; id < src.Len(); id++ {
				if shards[0].Triple(store.ID(id)) != src.Triple(store.ID(id)) {
					t.Fatalf("N=1: triple %d differs from source", id)
				}
			}
			if stats.Skew != 1 {
				t.Errorf("N=1: skew %v, want 1", stats.Skew)
			}
		} else if stats.Skew < 1 {
			t.Errorf("N=%d: skew %v < 1", n, stats.Skew)
		}
	}
}

func TestPartitionSharesDictionary(t *testing.T) {
	src := hubWorld(12)
	shards, _, err := Partition(src, 3, PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j, sh := range shards {
		if sh.Dict() != src.Dict() {
			t.Errorf("shard %d has a private dictionary", j)
		}
		if sh.Prov() != src.Prov() {
			t.Errorf("shard %d has a private provenance table", j)
		}
	}
}

func TestReplicateFactorDisabled(t *testing.T) {
	src := hubWorld(40)
	_, stats, err := Partition(src, 2, PartitionOptions{ReplicateFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplicatedPreds != 0 || stats.ReplicatedTriples != 0 {
		t.Fatalf("replication disabled but stats record %+v", stats)
	}
}
