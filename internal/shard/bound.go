// Package shard implements sharded query execution: a partitioner that
// splits a frozen store into N subject-hashed shards with predicate-aware
// replication, a coordinator that scatter-gathers per-shard incremental
// top-k runs, and the shared score-bound broadcast that lets shards prune
// against each other's progress.
//
// Everything runs in-process — the shards are ordinary stores sharing the
// source dictionary and provenance table — but the partitioning,
// bound-exchange and merge semantics are exactly those a network layer
// would need, and they are locked down by the byte-identical differential
// against the unsharded oracle (TestShardDifferential).
//
// Safety of the distributed bound rests on the threshold algorithm's
// tolerance for stale bounds. A shard's published k-th score can only
// rise towards its final local value, and every shard's final local k-th
// score is at most the global k-th score (each of its k local answers is
// a real answer whose global score is at least the local one). All
// pruning against the broadcast is strict (<), so a branch able to reach
// — or tie — the final global k-th score is never cut on the shard that
// owns its best derivation: a stale or forward bound prunes less or
// exactly right, never too much.
package shard

import (
	"math"
	"sync/atomic"
)

// BoundBroadcast is the shared k-th-score bound exchanged between shards
// — the distributed analogue of the parallel scheduler's atomic
// state.bits, satisfying topk.SharedBound. Publish keeps the maximum
// score offered so far via a CAS loop; Load is a single atomic read on
// the join kernels' prune path. The zero value is ready to use and
// reports bound 0 (no shard has proven k answers yet).
type BoundBroadcast struct {
	bits atomic.Uint64
	// broadcasts counts Publish calls that raised the bound — the
	// messages a network layer would actually send.
	broadcasts atomic.Int64
}

// Publish offers a shard's current k-th best score. The broadcast keeps
// the maximum: a lower or equal offer is a no-op.
func (b *BoundBroadcast) Publish(score float64) {
	nb := math.Float64bits(score)
	for {
		cur := b.bits.Load()
		if math.Float64frombits(cur) >= score {
			return
		}
		if b.bits.CompareAndSwap(cur, nb) {
			b.broadcasts.Add(1)
			return
		}
	}
}

// Load returns the best k-th score any shard has published, or 0.
func (b *BoundBroadcast) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Broadcasts returns the number of bound-raising Publish calls.
func (b *BoundBroadcast) Broadcasts() int64 {
	return b.broadcasts.Load()
}
