package shard

import (
	"fmt"

	"trinit/internal/rdf"
	"trinit/internal/store"
)

// PartitionOptions tunes the partitioner.
type PartitionOptions struct {
	// ReplicateFactor decides which predicates are replicated to every
	// shard instead of hash-partitioned: predicate p is replicated when
	// distinctSubjects(p) * ReplicateFactor <= distinctSubjects(store).
	// The intent is co-location of join edges: join variables in this
	// corpus bind hub entities (universities, cities, leagues) that are
	// the subjects of a handful of containment predicates (locatedIn,
	// member, partOf, …) with few distinct subjects each, while fan-out
	// predicates (person-subject facts) cover most of the subject
	// universe and partition cleanly. Replicating the former keeps every
	// star-plus-containment join shard-local at a small storage cost.
	// 0 means the default of 8; negative disables replication.
	ReplicateFactor int
}

// DefaultReplicateFactor is the replication threshold used when
// PartitionOptions.ReplicateFactor is 0.
const DefaultReplicateFactor = 8

// PartitionStats describes one partitioning: per-shard sizes, the
// replication decisions, and the ownership skew.
type PartitionStats struct {
	// Shards is the shard count N.
	Shards int
	// Owned[j] counts the triples shard j owns by subject hash.
	Owned []int
	// Triples[j] is shard j's total size, replicated copies included.
	Triples []int
	// ReplicatedPreds counts the predicates replicated to every shard.
	ReplicatedPreds int
	// ReplicatedTriples counts the source triples belonging to
	// replicated predicates (each present on all N shards).
	ReplicatedTriples int
	// Skew is max(Owned) / mean(Owned): 1.0 is a perfect balance. 0
	// when the store is empty.
	Skew float64
	// Replicated is the set of replicated predicates — the coordinator
	// consults it to decide which rewrites are fully co-located on the
	// shards and which need its residual full-store run.
	Replicated map[rdf.TermID]bool
}

// Partition splits a frozen source store into n shard stores. Every
// triple goes to the shard its subject hashes to; triples of replicated
// predicates (see PartitionOptions.ReplicateFactor) additionally go to
// every other shard. The shard stores share the source's dictionary and
// provenance table — the in-process form of the replicated dictionary —
// so TermIDs, answer bindings and ranking keys are identical across
// shards and to the source.
//
// Shard 0 of a 1-shard partition receives every triple in source
// triple-ID order, which makes its store — and its snapshot bytes —
// identical to a store rebuilt from the source sequence: the N=1 ≡
// unsharded guarantee starts here.
func Partition(src *store.Store, n int, o PartitionOptions) ([]*store.Store, PartitionStats, error) {
	if !src.Frozen() {
		return nil, PartitionStats{}, fmt.Errorf("shard: partition of an unfrozen store")
	}
	if n < 1 {
		return nil, PartitionStats{}, fmt.Errorf("shard: partition into %d shards", n)
	}

	replicated := replicatedPreds(src, o)
	stats := PartitionStats{
		Shards:          n,
		Owned:           make([]int, n),
		Triples:         make([]int, n),
		ReplicatedPreds: len(replicated),
		Replicated:      replicated,
	}
	for p := range replicated {
		stats.ReplicatedTriples += src.Count(rdf.NoTerm, p, rdf.NoTerm)
	}

	shards := make([]*store.Store, n)
	for j := 0; j < n; j++ {
		dst := store.New(src.Dict(), src.Prov())
		// Pass 1: owned triples, in source triple-ID order. With n == 1
		// this is the whole store in its original sequence.
		src.PartitionEach(j, n, func(id store.ID) bool {
			dst.Add(src.Triple(id))
			return true
		})
		stats.Owned[j] = dst.Len()
		// Pass 2: replicated copies owned elsewhere, predicate by
		// predicate in ascending TermID order (deterministic across
		// runs; a no-op at n == 1, where every owner is shard 0).
		for _, ps := range src.Predicates() {
			if !replicated[ps.Pred] {
				continue
			}
			src.MatchEach(rdf.NoTerm, ps.Pred, rdf.NoTerm, func(id store.ID) bool {
				t := src.Triple(id)
				if src.SubjectOwner(t.S, n) != j {
					dst.Add(t)
				}
				return true
			})
		}
		stats.Triples[j] = dst.Len()
		dst.Freeze()
		shards[j] = dst
	}

	if total := totalOwned(stats.Owned); total > 0 {
		maxOwned := 0
		for _, c := range stats.Owned {
			if c > maxOwned {
				maxOwned = c
			}
		}
		stats.Skew = float64(maxOwned) * float64(n) / float64(total)
	}
	return shards, stats, nil
}

func totalOwned(owned []int) int {
	total := 0
	for _, c := range owned {
		total += c
	}
	return total
}

// replicatedPreds selects the predicates to replicate: those whose
// distinct-subject count is small relative to the store's, per the
// ReplicateFactor rule.
func replicatedPreds(src *store.Store, o PartitionOptions) map[rdf.TermID]bool {
	factor := o.ReplicateFactor
	if factor == 0 {
		factor = DefaultReplicateFactor
	}
	if factor < 0 {
		return nil
	}

	allSubjects := make(map[rdf.TermID]struct{})
	perPred := make(map[rdf.TermID]map[rdf.TermID]struct{})
	for _, ps := range src.Predicates() {
		subs := make(map[rdf.TermID]struct{})
		src.MatchEach(rdf.NoTerm, ps.Pred, rdf.NoTerm, func(id store.ID) bool {
			s := src.Triple(id).S
			subs[s] = struct{}{}
			allSubjects[s] = struct{}{}
			return true
		})
		perPred[ps.Pred] = subs
	}

	out := make(map[rdf.TermID]bool)
	for p, subs := range perPred {
		if len(subs)*factor <= len(allSubjects) {
			out[p] = true
		}
	}
	return out
}
