// Package rdf defines the data model of the extended knowledge graph (XKG):
// terms, dictionary encoding, triples, and provenance records.
//
// The model follows the paper's extension of RDF: subjects, predicates and
// objects are terms, and a term is either a canonical resource (an entity,
// class, or relation of the curated KG), a literal value (string, number,
// date), or a textual token phrase produced by Open Information Extraction.
// Token phrases may appear in any of the S, P, O slots of an XKG triple.
package rdf

import "fmt"

// TermKind distinguishes the three kinds of terms that may occupy a slot of
// an XKG triple.
type TermKind uint8

const (
	// KindResource is a canonical KG resource such as AlbertEinstein or
	// bornIn. Resources are matched exactly by identity.
	KindResource TermKind = iota
	// KindLiteral is a literal value such as '1879-03-14'. Literals are
	// matched exactly by value.
	KindLiteral
	// KindToken is a textual token phrase extracted by Open IE, such as
	// 'won a Nobel for'. Token phrases are matched approximately, by
	// token-set similarity.
	KindToken
)

// String returns a short human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case KindResource:
		return "resource"
	case KindLiteral:
		return "literal"
	case KindToken:
		return "token"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a dictionary-decoded term: a kind together with its surface text.
type Term struct {
	Kind TermKind
	Text string
}

// Resource constructs a canonical-resource term.
func Resource(text string) Term { return Term{Kind: KindResource, Text: text} }

// Literal constructs a literal term.
func Literal(text string) Term { return Term{Kind: KindLiteral, Text: text} }

// Token constructs a textual token-phrase term.
func Token(text string) Term { return Term{Kind: KindToken, Text: text} }

// String renders the term in the paper's display convention: resources
// appear bare, literals and token phrases appear in single quotes.
// Embedded quotes and backslashes are backslash-escaped so that the
// rendering round-trips through the query parser.
func (t Term) String() string {
	switch t.Kind {
	case KindResource:
		return t.Text
	default:
		return "'" + escapeQuoted(t.Text) + "'"
	}
}

// escapeQuoted escapes backslashes and single quotes for quoted rendering.
func escapeQuoted(s string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\', '\'':
			b = append(b, '\\')
		}
		b = append(b, s[i])
	}
	return string(b)
}

// TermID is a dense dictionary identifier for a term. The zero value is
// reserved and never refers to a valid term.
type TermID uint32

// NoTerm is the invalid TermID. Dictionaries never assign it.
const NoTerm TermID = 0
