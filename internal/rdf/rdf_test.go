package rdf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndString(t *testing.T) {
	tests := []struct {
		term Term
		kind TermKind
		want string
	}{
		{Resource("AlbertEinstein"), KindResource, "AlbertEinstein"},
		{Literal("1879-03-14"), KindLiteral, "'1879-03-14'"},
		{Token("won a Nobel for"), KindToken, "'won a Nobel for'"},
	}
	for _, tc := range tests {
		if tc.term.Kind != tc.kind {
			t.Errorf("%v: kind = %v, want %v", tc.term, tc.term.Kind, tc.kind)
		}
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if KindResource.String() != "resource" || KindLiteral.String() != "literal" || KindToken.String() != "token" {
		t.Errorf("unexpected kind names: %v %v %v", KindResource, KindLiteral, KindToken)
	}
	if got := TermKind(99).String(); got != "TermKind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestDictInternIsIdempotent(t *testing.T) {
	d := NewDict()
	a := d.InternResource("AlbertEinstein")
	b := d.InternResource("AlbertEinstein")
	if a != b {
		t.Fatalf("re-interning same term gave different IDs: %d vs %d", a, b)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDictKindsAreDistinct(t *testing.T) {
	d := NewDict()
	r := d.InternResource("Ulm")
	l := d.InternLiteral("Ulm")
	tok := d.InternToken("Ulm")
	if r == l || l == tok || r == tok {
		t.Fatalf("same text with different kinds must get distinct IDs: %d %d %d", r, l, tok)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict()
	id := d.InternToken("lectured at")
	got, ok := d.Lookup(Token("lectured at"))
	if !ok || got != id {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, id)
	}
	if _, ok := d.Lookup(Resource("lectured at")); ok {
		t.Fatal("Lookup found a resource that was only interned as a token")
	}
	if _, ok := d.Lookup(Resource("missing")); ok {
		t.Fatal("Lookup found a term that was never interned")
	}
}

func TestDictTermPanicsOnInvalidID(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Fatal("Term(NoTerm) did not panic")
		}
	}()
	d.Term(NoTerm)
}

func TestDictValid(t *testing.T) {
	d := NewDict()
	id := d.InternResource("x")
	if !d.Valid(id) {
		t.Error("freshly interned ID reported invalid")
	}
	if d.Valid(NoTerm) {
		t.Error("NoTerm reported valid")
	}
	if d.Valid(id + 1000) {
		t.Error("out-of-range ID reported valid")
	}
}

func TestDictAllVisitsInIDOrder(t *testing.T) {
	d := NewDict()
	want := []string{"a", "b", "c"}
	for _, s := range want {
		d.InternResource(s)
	}
	var got []string
	d.All(func(id TermID, term Term) bool {
		got = append(got, term.Text)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d terms, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("All order: got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDictAllEarlyStop(t *testing.T) {
	d := NewDict()
	d.InternResource("a")
	d.InternResource("b")
	n := 0
	d.All(func(TermID, Term) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stopped All visited %d terms, want 1", n)
	}
}

// Property: interning any sequence of terms and decoding the returned IDs
// round-trips to the original terms.
func TestDictRoundTripProperty(t *testing.T) {
	f := func(texts []string, kinds []uint8) bool {
		d := NewDict()
		n := len(texts)
		if len(kinds) < n {
			n = len(kinds)
		}
		for i := 0; i < n; i++ {
			term := Term{Kind: TermKind(kinds[i] % 3), Text: texts[i]}
			id := d.Intern(term)
			if d.Term(id) != term {
				return false
			}
			// A second intern must return the same ID.
			if d.Intern(term) != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: IDs are dense, starting at 1, in order of first interning.
func TestDictDenseIDsProperty(t *testing.T) {
	f := func(n uint8) bool {
		d := NewDict()
		for i := 0; i < int(n); i++ {
			id := d.InternResource(string(rune('a' + i)))
			if id != TermID(i+1) {
				return false
			}
		}
		return d.Len() == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSourceString(t *testing.T) {
	if SourceKG.String() != "KG" || SourceXKG.String() != "XKG" {
		t.Errorf("Source names: %v %v", SourceKG, SourceXKG)
	}
}

func TestProvTable(t *testing.T) {
	pt := NewProvTable()
	if pt.Len() != 0 {
		t.Fatalf("empty table Len = %d", pt.Len())
	}
	p := Prov{Doc: "clueweb-doc-17", Sentence: "Einstein won a Nobel for his discovery of the photoelectric effect."}
	id := pt.Add(p)
	if id == NoProv {
		t.Fatal("Add returned NoProv")
	}
	if got := pt.Get(id); got != p {
		t.Fatalf("Get = %+v, want %+v", got, p)
	}
	if got := pt.Get(NoProv); got != (Prov{}) {
		t.Fatalf("Get(NoProv) = %+v, want zero", got)
	}
	if got := pt.Get(id + 99); got != (Prov{}) {
		t.Fatalf("Get(out of range) = %+v, want zero", got)
	}
}

func TestTripleKeyIgnoresMetadata(t *testing.T) {
	a := Triple{S: 1, P: 2, O: 3, Source: SourceKG, Conf: 1}
	b := Triple{S: 1, P: 2, O: 3, Source: SourceXKG, Conf: 0.5, Prov: 7}
	if a.Key() != b.Key() {
		t.Fatal("Key must depend only on S, P, O")
	}
	c := Triple{S: 1, P: 2, O: 4}
	if a.Key() == c.Key() {
		t.Fatal("different O must give different keys")
	}
}

func TestTripleFormat(t *testing.T) {
	d := NewDict()
	s := d.InternResource("AlbertEinstein")
	p := d.InternToken("won Nobel for")
	o := d.InternToken("discovery of the photoelectric effect")
	tr := Triple{S: s, P: p, O: o, Source: SourceXKG, Conf: 0.8}
	want := "AlbertEinstein 'won Nobel for' 'discovery of the photoelectric effect'"
	if got := tr.Format(d); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}

// TestDictKindCounts: per-kind counts are maintained incrementally by
// Intern and deduplicate repeated terms.
func TestDictKindCounts(t *testing.T) {
	d := NewDict()
	d.Intern(Resource("A"))
	d.Intern(Resource("A")) // duplicate: not recounted
	d.Intern(Resource("B"))
	d.Intern(Literal("1900"))
	d.Intern(Token("won nobel for"))
	d.Intern(Token("lectured at"))
	d.Intern(Token("won nobel for")) // duplicate
	r, l, tok := d.KindCounts()
	if r != 2 || l != 1 || tok != 2 {
		t.Fatalf("KindCounts = (%d, %d, %d), want (2, 1, 2)", r, l, tok)
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
}
