package rdf

// Dict is a term dictionary mapping (kind, text) pairs to dense TermIDs and
// back. IDs start at 1; TermID 0 (NoTerm) is reserved as the invalid ID.
//
// A Dict is not safe for concurrent mutation; once fully populated it may be
// read from any number of goroutines.
type Dict struct {
	terms []Term // terms[0] is a placeholder for NoTerm
	index map[Term]TermID
	// kindCounts[k] counts interned terms of kind k, maintained by
	// Intern so that per-kind statistics never rescan the dictionary.
	kindCounts [3]int
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		terms: make([]Term, 1), // reserve index 0
		index: make(map[Term]TermID),
	}
}

// Reserve pre-sizes the dictionary for n additional terms. Snapshot
// loading knows the exact term count up front, so the decode loop never
// regrows the term slice or rehashes the index.
func (d *Dict) Reserve(n int) {
	if n <= 0 {
		return
	}
	terms := make([]Term, len(d.terms), len(d.terms)+n)
	copy(terms, d.terms)
	d.terms = terms
	index := make(map[Term]TermID, len(d.index)+n)
	for t, id := range d.index {
		index[t] = id
	}
	d.index = index
}

// Intern returns the ID for the given term, assigning a fresh one if the
// term has not been seen before.
func (d *Dict) Intern(t Term) TermID {
	if id, ok := d.index[t]; ok {
		return id
	}
	id := TermID(len(d.terms))
	d.terms = append(d.terms, t)
	d.index[t] = id
	if int(t.Kind) < len(d.kindCounts) {
		d.kindCounts[t.Kind]++
	}
	return id
}

// KindCounts returns the number of interned resource, literal and token
// terms. It is O(1): the counts are maintained by Intern.
func (d *Dict) KindCounts() (resources, literals, tokens int) {
	return d.kindCounts[KindResource], d.kindCounts[KindLiteral], d.kindCounts[KindToken]
}

// InternResource interns a canonical-resource term.
func (d *Dict) InternResource(text string) TermID { return d.Intern(Resource(text)) }

// InternLiteral interns a literal term.
func (d *Dict) InternLiteral(text string) TermID { return d.Intern(Literal(text)) }

// InternToken interns a token-phrase term.
func (d *Dict) InternToken(text string) TermID { return d.Intern(Token(text)) }

// Lookup returns the ID of the term if it has been interned.
func (d *Dict) Lookup(t Term) (TermID, bool) {
	id, ok := d.index[t]
	return id, ok
}

// Term decodes an ID back to its term. It panics if the ID was not assigned
// by this dictionary, since that always indicates a programming error.
func (d *Dict) Term(id TermID) Term {
	if id == NoTerm || int(id) >= len(d.terms) {
		panic("rdf: Term called with ID not assigned by this dictionary")
	}
	return d.terms[id]
}

// Valid reports whether id was assigned by this dictionary.
func (d *Dict) Valid(id TermID) bool {
	return id != NoTerm && int(id) < len(d.terms)
}

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.terms) - 1 }

// All calls fn for every interned term in ID order, stopping early if fn
// returns false.
func (d *Dict) All(fn func(TermID, Term) bool) {
	for i := 1; i < len(d.terms); i++ {
		if !fn(TermID(i), d.terms[i]) {
			return
		}
	}
}

// Clone returns an independent copy of the dictionary: same IDs for every
// interned term, but interning into the clone never touches the original.
// Live ingest clones the published dictionary before mapping a batch's
// terms, so concurrent readers of the old dictionary are never racing a
// mutation.
func (d *Dict) Clone() *Dict {
	cp := &Dict{
		terms:      append([]Term(nil), d.terms...),
		index:      make(map[Term]TermID, len(d.index)),
		kindCounts: d.kindCounts,
	}
	for t, id := range d.index {
		cp.index[t] = id
	}
	return cp
}
