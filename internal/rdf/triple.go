package rdf

import "fmt"

// Source identifies which part of the extended knowledge graph a triple
// belongs to.
type Source uint8

const (
	// SourceKG marks a curated fact of the original knowledge graph.
	// KG triples carry confidence 1.
	SourceKG Source = iota
	// SourceXKG marks a token triple obtained by running Open IE over
	// text. XKG triples carry the extractor's confidence and a
	// provenance record pointing at the source document and sentence.
	SourceXKG
)

// String returns "KG" or "XKG".
func (s Source) String() string {
	if s == SourceKG {
		return "KG"
	}
	return "XKG"
}

// ProvID identifies a provenance record in a ProvTable. Zero means the
// triple has no recorded provenance (true for all KG triples).
type ProvID uint32

// NoProv is the absent provenance ID.
const NoProv ProvID = 0

// Prov records where an XKG triple was extracted from.
type Prov struct {
	// Doc is an identifier of the source document (URL, file, or
	// synthetic document name).
	Doc string
	// Sentence is the sentence the triple was extracted from.
	Sentence string
}

// ProvTable assigns dense IDs to provenance records.
type ProvTable struct {
	recs []Prov // recs[0] is the placeholder for NoProv
}

// NewProvTable returns an empty provenance table.
func NewProvTable() *ProvTable { return &ProvTable{recs: make([]Prov, 1)} }

// Reserve pre-sizes the table for n additional records (see Dict.Reserve).
func (pt *ProvTable) Reserve(n int) {
	if n <= 0 {
		return
	}
	recs := make([]Prov, len(pt.recs), len(pt.recs)+n)
	copy(recs, pt.recs)
	pt.recs = recs
}

// Add stores a provenance record and returns its ID.
func (pt *ProvTable) Add(p Prov) ProvID {
	pt.recs = append(pt.recs, p)
	return ProvID(len(pt.recs) - 1)
}

// Get decodes a provenance ID. Get(NoProv) returns the zero record.
func (pt *ProvTable) Get(id ProvID) Prov {
	if id == NoProv || int(id) >= len(pt.recs) {
		return Prov{}
	}
	return pt.recs[id]
}

// Len returns the number of stored records.
func (pt *ProvTable) Len() int { return len(pt.recs) - 1 }

// Clone returns an independent copy of the table with identical IDs (see
// Dict.Clone — live ingest clones before appending batch provenance).
func (pt *ProvTable) Clone() *ProvTable {
	return &ProvTable{recs: append([]Prov(nil), pt.recs...)}
}

// Triple is a dictionary-encoded SPO fact of the extended knowledge graph.
type Triple struct {
	S, P, O TermID
	// Source tells whether this is a curated KG fact or an Open-IE
	// extraction.
	Source Source
	// Conf is the extraction confidence in (0, 1]. Curated KG facts have
	// confidence 1.
	Conf float64
	// Prov points at the provenance record for XKG triples.
	Prov ProvID
}

// Key returns the (S, P, O) identity of the triple, ignoring metadata.
// Two triples with equal keys assert the same fact.
type Key struct{ S, P, O TermID }

// Key returns the SPO identity of the triple.
func (t Triple) Key() Key { return Key{t.S, t.P, t.O} }

// Format renders the triple using the given dictionary.
func (t Triple) Format(d *Dict) string {
	return fmt.Sprintf("%s %s %s", d.Term(t.S), d.Term(t.P), d.Term(t.O))
}
