// Package ned implements named entity disambiguation: linking the noun
// phrases of Open-IE extractions to canonical KG entities.
//
// It stands in for the AIDA/Spotlight/TagMe tools mentioned in §2 of the
// paper. The linker is a dictionary-based scorer in the AIDA spirit: an
// alias table derived from entity labels, a popularity prior derived from
// KG degree, and a context score from token overlap between the mention's
// sentence and the labels of the entity's KG neighbourhood.
package ned

import (
	"sort"
	"strings"

	"trinit/internal/rdf"
	"trinit/internal/store"
	"trinit/internal/text"
)

// Linker resolves mention phrases to KG entities.
type Linker struct {
	st *store.Store
	// aliases maps a normalised alias string to candidate entities.
	aliases map[string][]candidate
	// context maps an entity to the token set of its KG neighbourhood.
	context map[rdf.TermID]text.TokenSet
	// MinScore is the linking threshold; mentions whose best candidate
	// scores below it stay unlinked token phrases.
	MinScore float64
}

type candidate struct {
	entity rdf.TermID
	// aliasWeight is 1 for the full label, lower for partial aliases.
	aliasWeight float64
	// prior is the degree-based popularity prior, normalised to (0, 1].
	prior float64
}

// Candidate is a scored linking candidate returned by Candidates.
type Candidate struct {
	Entity rdf.TermID
	Score  float64
}

// NewLinker builds a linker from the KG portion of a store. The store must
// contain the KG triples; it does not need to be frozen.
func NewLinker(st *store.Store) *Linker {
	l := &Linker{
		st:       st,
		aliases:  make(map[string][]candidate),
		context:  make(map[rdf.TermID]text.TokenSet),
		MinScore: 0.35,
	}
	l.build()
	return l
}

func (l *Linker) build() {
	dict := l.st.Dict()
	// Degree counts over KG triples for the popularity prior, and
	// neighbourhood token sets for the context score.
	degree := make(map[rdf.TermID]int)
	maxDegree := 1
	for i := 0; i < l.st.Len(); i++ {
		t := l.st.Triple(store.ID(i))
		if t.Source != rdf.SourceKG {
			continue
		}
		for _, id := range []rdf.TermID{t.S, t.O} {
			if dict.Term(id).Kind != rdf.KindResource {
				continue
			}
			degree[id]++
			if degree[id] > maxDegree {
				maxDegree = degree[id]
			}
		}
		l.addContext(t.S, dict.Term(t.O).Text)
		l.addContext(t.S, dict.Term(t.P).Text)
		l.addContext(t.O, dict.Term(t.S).Text)
		l.addContext(t.O, dict.Term(t.P).Text)
	}
	for id, deg := range degree {
		label := dict.Term(id).Text
		toks := text.ContentTokens(label)
		prior := float64(deg) / float64(maxDegree)
		full := strings.Join(toks, " ")
		l.addAlias(full, id, 1.0, prior)
		// Partial aliases: each individual label token refers to the
		// entity with reduced weight ("Einstein" → AlbertEinstein,
		// "Princeton" → PrincetonUniversity).
		if len(toks) > 1 {
			for _, tok := range toks {
				l.addAlias(tok, id, 0.6, prior)
			}
		}
	}
}

func (l *Linker) addContext(id rdf.TermID, label string) {
	if l.st.Dict().Term(id).Kind != rdf.KindResource {
		return
	}
	set := l.context[id]
	if set == nil {
		set = make(text.TokenSet)
		l.context[id] = set
	}
	for _, tok := range text.ContentTokens(label) {
		set[tok] = true
	}
}

func (l *Linker) addAlias(alias string, id rdf.TermID, weight, prior float64) {
	if alias == "" {
		return
	}
	l.aliases[alias] = append(l.aliases[alias], candidate{entity: id, aliasWeight: weight, prior: prior})
}

// Candidates returns all candidates for the mention, scored and sorted
// descending. context is the sentence the mention occurred in (may be
// empty). Score = aliasWeight × (0.5 + 0.5·prior) × (0.8 + 0.4·
// overlap(context, entity neighbourhood)), clipped to (0, 1].
func (l *Linker) Candidates(mention, context string) []Candidate {
	norm := strings.Join(text.ContentTokens(mention), " ")
	cands := l.aliases[norm]
	if len(cands) == 0 {
		return nil
	}
	ctx := text.NewTokenSet(context)
	out := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		base := c.aliasWeight * (0.5 + 0.5*c.prior)
		ctxBoost := 0.8
		if len(ctx) > 0 {
			ctxBoost = 0.8 + 0.4*text.Overlap(ctx, l.context[c.entity])
		}
		score := base * ctxBoost
		if score > 1 {
			score = 1
		}
		out = append(out, Candidate{Entity: c.entity, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

// Link resolves a mention to its best entity. ok is false when no candidate
// reaches MinScore, in which case the mention should remain a token phrase.
func (l *Linker) Link(mention, context string) (entity rdf.TermID, score float64, ok bool) {
	cands := l.Candidates(mention, context)
	if len(cands) == 0 || cands[0].Score < l.MinScore {
		return rdf.NoTerm, 0, false
	}
	return cands[0].Entity, cands[0].Score, true
}
