package ned

import (
	"testing"

	"trinit/internal/rdf"
	"trinit/internal/store"
)

func kgStore() *store.Store {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("Ulm"), rdf.Resource("locatedIn"), rdf.Resource("Germany"))
	st.AddKG(rdf.Resource("AlfredKleiner"), rdf.Resource("hasStudent"), rdf.Resource("AlbertEinstein"))
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("affiliation"), rdf.Resource("IAS"))
	st.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("member"), rdf.Resource("IvyLeague"))
	st.AddKG(rdf.Resource("PrincetonNewJersey"), rdf.Resource("locatedIn"), rdf.Resource("NewJersey"))
	return st
}

func mustTerm(t *testing.T, st *store.Store, name string) rdf.TermID {
	t.Helper()
	id, ok := st.Dict().Lookup(rdf.Resource(name))
	if !ok {
		t.Fatalf("resource %s not in dictionary", name)
	}
	return id
}

func TestLinkFullLabel(t *testing.T) {
	st := kgStore()
	l := NewLinker(st)
	got, score, ok := l.Link("Albert Einstein", "")
	if !ok {
		t.Fatal("full-label mention not linked")
	}
	if got != mustTerm(t, st, "AlbertEinstein") {
		t.Fatalf("linked to %v", st.Dict().Term(got))
	}
	if score <= 0 || score > 1 {
		t.Fatalf("score = %v", score)
	}
}

func TestLinkSurname(t *testing.T) {
	st := kgStore()
	l := NewLinker(st)
	got, _, ok := l.Link("Einstein", "")
	if !ok {
		t.Fatal("surname mention not linked")
	}
	if got != mustTerm(t, st, "AlbertEinstein") {
		t.Fatalf("Einstein linked to %v", st.Dict().Term(got))
	}
}

func TestLinkUnknownMention(t *testing.T) {
	l := NewLinker(kgStore())
	if _, _, ok := l.Link("Marie Curie", ""); ok {
		t.Fatal("unknown mention was linked")
	}
	if _, _, ok := l.Link("", ""); ok {
		t.Fatal("empty mention was linked")
	}
}

func TestAmbiguousMentionPrefersPopular(t *testing.T) {
	st := kgStore()
	l := NewLinker(st)
	// "Princeton" is an alias of both PrincetonUniversity (degree 1) and
	// PrincetonNewJersey (degree 1); add KG facts to raise the
	// university's degree.
	// Rebuild with extra facts.
	st2 := kgStore()
	st2.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("locatedIn"), rdf.Resource("PrincetonNewJersey"))
	st2.AddKG(rdf.Resource("JohnVonNeumann"), rdf.Resource("affiliation"), rdf.Resource("PrincetonUniversity"))
	st2.AddKG(rdf.Resource("KurtGoedel"), rdf.Resource("affiliation"), rdf.Resource("PrincetonUniversity"))
	l2 := NewLinker(st2)

	cands := l.Candidates("Princeton", "")
	if len(cands) != 2 {
		t.Fatalf("expected 2 candidates, got %v", cands)
	}
	got, _, ok := l2.Link("Princeton", "")
	if !ok {
		t.Fatal("Princeton not linked")
	}
	if got != mustTerm(t, st2, "PrincetonUniversity") {
		t.Fatalf("Princeton linked to %v, want the higher-degree university", st2.Dict().Term(got))
	}
}

func TestContextDisambiguation(t *testing.T) {
	st := kgStore()
	st.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("type"), rdf.Resource("university"))
	st.AddKG(rdf.Resource("PrincetonNewJersey"), rdf.Resource("type"), rdf.Resource("city"))
	l := NewLinker(st)
	// A sentence about a university should pull the mention towards the
	// university entity even when priors tie.
	uni, _, ok := l.Link("Princeton", "he joined the university faculty")
	if !ok {
		t.Fatal("not linked with university context")
	}
	if uni != mustTerm(t, st, "PrincetonUniversity") {
		t.Fatalf("university context linked to %v", st.Dict().Term(uni))
	}
	city, _, ok := l.Link("Princeton", "the city in New Jersey")
	if !ok {
		t.Fatal("not linked with city context")
	}
	if city != mustTerm(t, st, "PrincetonNewJersey") {
		t.Fatalf("city context linked to %v", st.Dict().Term(city))
	}
}

func TestCandidatesSortedDescending(t *testing.T) {
	l := NewLinker(kgStore())
	cands := l.Candidates("Princeton", "")
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Score < cands[i].Score {
			t.Fatalf("candidates not sorted: %v", cands)
		}
	}
}

func TestMinScoreThreshold(t *testing.T) {
	l := NewLinker(kgStore())
	l.MinScore = 2.0 // impossible
	if _, _, ok := l.Link("Albert Einstein", ""); ok {
		t.Fatal("link above impossible threshold")
	}
}

func TestLinkCaseAndStopwordInsensitive(t *testing.T) {
	st := kgStore()
	l := NewLinker(st)
	a, _, ok1 := l.Link("albert einstein", "")
	b, _, ok2 := l.Link("the Albert Einstein", "")
	if !ok1 || !ok2 || a != b {
		t.Fatalf("normalisation failed: %v/%v %v/%v", a, ok1, b, ok2)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two entities with identical aliases, weights, priors: the lower
	// TermID must win consistently.
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("SpringfieldIllinois"), rdf.Resource("locatedIn"), rdf.Resource("Illinois"))
	st.AddKG(rdf.Resource("SpringfieldMassachusetts"), rdf.Resource("locatedIn"), rdf.Resource("Massachusetts"))
	l := NewLinker(st)
	first, _, ok := l.Link("Springfield", "")
	if !ok {
		t.Fatal("Springfield not linked")
	}
	for i := 0; i < 10; i++ {
		got, _, _ := l.Link("Springfield", "")
		if got != first {
			t.Fatal("tie-break not deterministic")
		}
	}
}
