// Package store implements TriniT's storage backend: an in-memory,
// dictionary-encoded triple store over the extended knowledge graph.
//
// It replaces the ElasticSearch backend of the original system. The query
// processor requires exactly two capabilities from the backend, both
// provided here:
//
//  1. matching a triple pattern with any combination of bound and unbound
//     slots, via three permutation indexes (SPO, POS, OSP), and
//  2. resolving a textual query token to candidate XKG token phrases or
//     resource labels, via an inverted index over term words.
package store

import (
	"fmt"
	"sort"

	"trinit/internal/rdf"
)

// Store is an immutable-after-Freeze triple store over the XKG.
type Store struct {
	dict *rdf.Dict
	prov *rdf.ProvTable

	triples []rdf.Triple
	byKey   map[rdf.Key]ID

	// Permutation indexes, built by Freeze.
	spo, pos, osp []ID
	frozen        bool

	// Predicate statistics, precomputed by Freeze (the triple set is
	// immutable afterwards, so one scan serves every later call).
	predStats                 []PredicateStat
	tokenPreds, resourcePreds int

	tokens *tokenIndex

	numKG, numXKG int
}

// ID identifies a triple inside a Store.
type ID uint32

// New returns an empty store sharing the given dictionary and provenance
// table. Passing nil creates fresh ones.
func New(dict *rdf.Dict, prov *rdf.ProvTable) *Store {
	if dict == nil {
		dict = rdf.NewDict()
	}
	if prov == nil {
		prov = rdf.NewProvTable()
	}
	return &Store{
		dict:   dict,
		prov:   prov,
		byKey:  make(map[rdf.Key]ID),
		tokens: newTokenIndex(),
	}
}

// Dict returns the store's term dictionary.
func (st *Store) Dict() *rdf.Dict { return st.dict }

// Prov returns the store's provenance table.
func (st *Store) Prov() *rdf.ProvTable { return st.prov }

// Add inserts a triple. Triples are deduplicated by their (S, P, O) key;
// when the same fact is added twice, the copy with the higher confidence is
// kept (the paper's XKG consists of distinct triples). Add panics if the
// store has been frozen, since index maintenance after Freeze is not
// supported.
func (st *Store) Add(t rdf.Triple) ID {
	if st.frozen {
		panic("store: Add after Freeze")
	}
	if t.Conf <= 0 || t.Conf > 1 {
		panic(fmt.Sprintf("store: triple confidence %v outside (0, 1]", t.Conf))
	}
	if id, ok := st.byKey[t.Key()]; ok {
		if t.Conf > st.triples[id].Conf {
			st.countSource(st.triples[id].Source, -1)
			st.triples[id] = t
			st.countSource(t.Source, +1)
		}
		return id
	}
	id := ID(len(st.triples))
	st.triples = append(st.triples, t)
	st.byKey[t.Key()] = id
	st.countSource(t.Source, +1)
	return id
}

func (st *Store) countSource(s rdf.Source, d int) {
	if s == rdf.SourceKG {
		st.numKG += d
	} else {
		st.numXKG += d
	}
}

// AddFact is a convenience that interns the three terms and adds a triple.
func (st *Store) AddFact(s, p, o rdf.Term, src rdf.Source, conf float64, prov rdf.ProvID) ID {
	return st.Add(rdf.Triple{
		S:      st.dict.Intern(s),
		P:      st.dict.Intern(p),
		O:      st.dict.Intern(o),
		Source: src,
		Conf:   conf,
		Prov:   prov,
	})
}

// AddKG adds a curated KG fact between resources with confidence 1.
func (st *Store) AddKG(s, p, o rdf.Term) ID {
	return st.AddFact(s, p, o, rdf.SourceKG, 1, rdf.NoProv)
}

// Triple returns the triple with the given ID.
func (st *Store) Triple(id ID) rdf.Triple { return st.triples[id] }

// Len returns the number of distinct triples.
func (st *Store) Len() int { return len(st.triples) }

// NumKG and NumXKG report the number of triples per source.
func (st *Store) NumKG() int  { return st.numKG }
func (st *Store) NumXKG() int { return st.numXKG }

// Contains reports whether the exact fact is stored.
func (st *Store) Contains(s, p, o rdf.TermID) bool {
	_, ok := st.byKey[rdf.Key{S: s, P: p, O: o}]
	return ok
}

// Freeze builds the permutation and token indexes. After Freeze the store
// is immutable and safe for concurrent reads. Freeze is idempotent.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	n := len(st.triples)
	st.spo = make([]ID, n)
	st.pos = make([]ID, n)
	st.osp = make([]ID, n)
	for i := 0; i < n; i++ {
		st.spo[i], st.pos[i], st.osp[i] = ID(i), ID(i), ID(i)
	}
	sort.Slice(st.spo, func(a, b int) bool { return st.lessSPO(st.spo[a], st.spo[b]) })
	sort.Slice(st.pos, func(a, b int) bool { return st.lessPOS(st.pos[a], st.pos[b]) })
	sort.Slice(st.osp, func(a, b int) bool { return st.lessOSP(st.osp[a], st.osp[b]) })
	st.buildTokenIndex()
	st.predStats = st.computePredicates()
	for _, ps := range st.predStats {
		if st.dict.Term(ps.Pred).Kind == rdf.KindToken {
			st.tokenPreds++
		} else {
			st.resourcePreds++
		}
	}
	st.frozen = true
}

// Frozen reports whether Freeze has been called.
func (st *Store) Frozen() bool { return st.frozen }

func (st *Store) lessSPO(a, b ID) bool {
	ta, tb := st.triples[a], st.triples[b]
	if ta.S != tb.S {
		return ta.S < tb.S
	}
	if ta.P != tb.P {
		return ta.P < tb.P
	}
	return ta.O < tb.O
}

func (st *Store) lessPOS(a, b ID) bool {
	ta, tb := st.triples[a], st.triples[b]
	if ta.P != tb.P {
		return ta.P < tb.P
	}
	if ta.O != tb.O {
		return ta.O < tb.O
	}
	return ta.S < tb.S
}

func (st *Store) lessOSP(a, b ID) bool {
	ta, tb := st.triples[a], st.triples[b]
	if ta.O != tb.O {
		return ta.O < tb.O
	}
	if ta.S != tb.S {
		return ta.S < tb.S
	}
	return ta.P < tb.P
}

// Match returns the IDs of all triples matching the pattern, where NoTerm
// in a slot acts as a wildcard. The result is in index order of the chosen
// permutation, which is deterministic. Match requires a frozen store.
func (st *Store) Match(s, p, o rdf.TermID) []ID {
	if !st.frozen {
		panic("store: Match before Freeze")
	}
	switch {
	case s != rdf.NoTerm && p != rdf.NoTerm && o != rdf.NoTerm:
		if id, ok := st.byKey[rdf.Key{S: s, P: p, O: o}]; ok {
			return []ID{id}
		}
		return nil
	case s == rdf.NoTerm && p == rdf.NoTerm && o == rdf.NoTerm:
		out := make([]ID, len(st.spo))
		copy(out, st.spo)
		return out
	}
	idx, cmp := st.indexFor(s, p, o)
	return st.scan(idx, cmp)
}

// indexFor picks the permutation index and range comparator for a
// partially bound pattern (at least one bound and one wildcard slot).
// Match and Count share it, so their index choice cannot diverge.
func (st *Store) indexFor(s, p, o rdf.TermID) ([]ID, func(rdf.Triple) int) {
	switch {
	case s != rdf.NoTerm && p != rdf.NoTerm:
		return st.spo, func(t rdf.Triple) int { return cmp2(t.S, s, t.P, p) }
	case s != rdf.NoTerm && o != rdf.NoTerm:
		return st.osp, func(t rdf.Triple) int { return cmp2(t.O, o, t.S, s) }
	case p != rdf.NoTerm && o != rdf.NoTerm:
		return st.pos, func(t rdf.Triple) int { return cmp2(t.P, p, t.O, o) }
	case s != rdf.NoTerm:
		return st.spo, func(t rdf.Triple) int { return cmp1(t.S, s) }
	case p != rdf.NoTerm:
		return st.pos, func(t rdf.Triple) int { return cmp1(t.P, p) }
	default:
		return st.osp, func(t rdf.Triple) int { return cmp1(t.O, o) }
	}
}

// Count returns the number of triples matching the pattern without
// materialising them: it binary-searches the same permutation index Match
// would use and returns the range length. It is the selectivity source of
// the query planner. Count requires a frozen store except in the fully
// bound and fully unbound cases, which need no index.
func (st *Store) Count(s, p, o rdf.TermID) int {
	switch {
	case s != rdf.NoTerm && p != rdf.NoTerm && o != rdf.NoTerm:
		if _, ok := st.byKey[rdf.Key{S: s, P: p, O: o}]; ok {
			return 1
		}
		return 0
	case s == rdf.NoTerm && p == rdf.NoTerm && o == rdf.NoTerm:
		return len(st.triples)
	}
	if !st.frozen {
		panic("store: Count before Freeze")
	}
	idx, cmp := st.indexFor(s, p, o)
	lo, hi := st.searchRange(idx, cmp)
	return hi - lo
}

// searchRange binary-searches the permutation index for the contiguous
// range where cmp returns 0. cmp must return <0 / 0 / >0 for triples
// ordering before / inside / after the wanted range.
func (st *Store) searchRange(idx []ID, cmp func(rdf.Triple) int) (lo, hi int) {
	lo = sort.Search(len(idx), func(i int) bool { return cmp(st.triples[idx[i]]) >= 0 })
	hi = sort.Search(len(idx), func(i int) bool { return cmp(st.triples[idx[i]]) > 0 })
	return lo, hi
}

// scan materialises the index range found by searchRange.
func (st *Store) scan(idx []ID, cmp func(rdf.Triple) int) []ID {
	lo, hi := st.searchRange(idx, cmp)
	if lo >= hi {
		return nil
	}
	out := make([]ID, hi-lo)
	copy(out, idx[lo:hi])
	return out
}

func cmp1(a, b rdf.TermID) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmp2(a1, b1, a2, b2 rdf.TermID) int {
	if c := cmp1(a1, b1); c != 0 {
		return c
	}
	return cmp1(a2, b2)
}

// Predicates returns the distinct predicate terms in ascending TermID
// order, with their triple counts. After Freeze the statistics are served
// from the snapshot precomputed there instead of rescanning all triples.
func (st *Store) Predicates() []PredicateStat {
	if st.frozen {
		return append([]PredicateStat(nil), st.predStats...)
	}
	return st.computePredicates()
}

// computePredicates scans the triples for per-predicate counts.
func (st *Store) computePredicates() []PredicateStat {
	counts := make(map[rdf.TermID]int)
	for _, t := range st.triples {
		counts[t.P]++
	}
	ids := make([]rdf.TermID, 0, len(counts))
	for p := range counts {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]PredicateStat, len(ids))
	for i, p := range ids {
		out[i] = PredicateStat{Pred: p, Count: counts[p]}
	}
	return out
}

// PredicateStat pairs a predicate with its number of triples.
type PredicateStat struct {
	Pred  rdf.TermID
	Count int
}

// Args returns the set of (subject, object) pairs connected by predicate p,
// the args(p) of the paper's rule-mining weight formula.
func (st *Store) Args(p rdf.TermID) map[[2]rdf.TermID]bool {
	out := make(map[[2]rdf.TermID]bool)
	for _, id := range st.Match(rdf.NoTerm, p, rdf.NoTerm) {
		t := st.triples[id]
		out[[2]rdf.TermID{t.S, t.O}] = true
	}
	return out
}

// Stats summarises the store contents (§5 reports these for the demo XKG).
type Stats struct {
	Triples        int
	KGTriples      int
	XKGTriples     int
	Terms          int
	Resources      int
	Literals       int
	Tokens         int
	Predicates     int
	TokenPreds     int // predicates that are token phrases
	ResourcePreds  int // predicates that are canonical resources
	ProvenanceRecs int
}

// Stats computes summary statistics. After Freeze it is O(1): predicate
// statistics come from the snapshot Freeze precomputed, and per-kind term
// counts are maintained incrementally by the dictionary (so terms interned
// after Freeze — e.g. by query-time components sharing the dictionary —
// are still counted).
func (st *Store) Stats() Stats {
	s := Stats{
		Triples:        len(st.triples),
		KGTriples:      st.numKG,
		XKGTriples:     st.numXKG,
		Terms:          st.dict.Len(),
		ProvenanceRecs: st.prov.Len(),
	}
	s.Resources, s.Literals, s.Tokens = st.dict.KindCounts()
	if st.frozen {
		s.Predicates = len(st.predStats)
		s.TokenPreds = st.tokenPreds
		s.ResourcePreds = st.resourcePreds
		return s
	}
	for _, ps := range st.computePredicates() {
		s.Predicates++
		if st.dict.Term(ps.Pred).Kind == rdf.KindToken {
			s.TokenPreds++
		} else {
			s.ResourcePreds++
		}
	}
	return s
}
