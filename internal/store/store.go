// Package store implements TriniT's storage backend: an in-memory,
// dictionary-encoded triple store over the extended knowledge graph.
//
// It replaces the ElasticSearch backend of the original system. The query
// processor requires exactly two capabilities from the backend, both
// provided here:
//
//  1. matching a triple pattern with any combination of bound and unbound
//     slots, via three permutation indexes (SPO, POS, OSP), and
//  2. resolving a textual query token to candidate XKG token phrases or
//     resource labels, via an inverted index over term words.
package store

import (
	"fmt"
	"sort"

	"trinit/internal/rdf"
	"trinit/internal/text"
)

// Store is an immutable-after-Freeze triple store over the XKG.
//
// A store serves its base triples from one of two representations: heap
// rows (triples, populated by Add) or zero-copy mapped columns (cols,
// installed by NewMapped over a memory-mapped segment). On top of either
// base, an optional immutable delta overlay (delta, installed by
// WithDelta) splices post-freeze ingest into every read path.
type Store struct {
	dict *rdf.Dict
	prov *rdf.ProvTable

	triples []rdf.Triple
	byKey   map[rdf.Key]ID

	// cols, when non-nil, holds the base triple columns as views into a
	// memory-mapped segment; triples and byKey are nil in that mode.
	cols *MappedColumns

	// delta, when non-nil, overlays post-freeze ingest on the frozen
	// base (see Delta). The overlay store is a shallow copy of the base,
	// so base reads stay zero-copy.
	delta *Delta

	// lazy, when non-nil, holds derived read structures (token index,
	// term token sets, predicate stats) built on first use instead of at
	// Freeze — mapped stores defer them so opening a segment stays O(1)
	// in the triple count. Shared by pointer across shallow copies.
	lazy *lazyDerived

	// Permutation indexes, built by Freeze.
	spo, pos, osp permIndex
	frozen        bool

	// termSets[id] is the content-token set of term id's surface text,
	// precomputed by Freeze for every term interned at that point, so that
	// phrase-similarity scoring against dictionary terms never re-tokenizes
	// the dictionary side.
	termSets []text.TokenSet

	// Predicate statistics, precomputed by Freeze (the triple set is
	// immutable afterwards, so one scan serves every later call).
	predStats                 []PredicateStat
	tokenPreds, resourcePreds int

	tokens *tokenIndex

	numKG, numXKG int

	// addLog records the IDs of triples inserted or replaced since the
	// last DrainAdds, when tracking is enabled. The durable engine uses
	// it to mirror batch ingest into the write-ahead log.
	addLog    []ID
	trackAdds bool
}

// ID identifies a triple inside a Store.
type ID uint32

// New returns an empty store sharing the given dictionary and provenance
// table. Passing nil creates fresh ones.
func New(dict *rdf.Dict, prov *rdf.ProvTable) *Store {
	if dict == nil {
		dict = rdf.NewDict()
	}
	if prov == nil {
		prov = rdf.NewProvTable()
	}
	return &Store{
		dict:   dict,
		prov:   prov,
		byKey:  make(map[rdf.Key]ID),
		tokens: newTokenIndex(),
	}
}

// Dict returns the store's term dictionary.
func (st *Store) Dict() *rdf.Dict { return st.dict }

// Prov returns the store's provenance table.
func (st *Store) Prov() *rdf.ProvTable { return st.prov }

// Add inserts a triple. Triples are deduplicated by their (S, P, O) key;
// when the same fact is added twice, the copy with the higher confidence is
// kept (the paper's XKG consists of distinct triples). Add panics if the
// store has been frozen, since index maintenance after Freeze is not
// supported.
func (st *Store) Add(t rdf.Triple) ID {
	if st.frozen {
		panic("store: Add after Freeze")
	}
	if t.Conf <= 0 || t.Conf > 1 {
		panic(fmt.Sprintf("store: triple confidence %v outside (0, 1]", t.Conf))
	}
	if id, ok := st.byKey[t.Key()]; ok {
		if t.Conf > st.triples[id].Conf {
			st.countSource(st.triples[id].Source, -1)
			st.triples[id] = t
			st.countSource(t.Source, +1)
			if st.trackAdds {
				st.addLog = append(st.addLog, id)
			}
		}
		return id
	}
	id := ID(len(st.triples))
	st.triples = append(st.triples, t)
	st.byKey[t.Key()] = id
	st.countSource(t.Source, +1)
	if st.trackAdds {
		st.addLog = append(st.addLog, id)
	}
	return id
}

// TrackAdds enables or disables recording of inserted/replaced triple IDs.
// The durable engine turns it on so that batch ingest (document pipelines
// that write straight into the store) can be mirrored into the write-ahead
// log after the fact.
func (st *Store) TrackAdds(on bool) { st.trackAdds = on }

// DrainAdds returns the IDs recorded since the last drain and resets the
// log. A replaced triple (same key, higher confidence) appears again with
// its original ID, so replaying the drained rows in order reproduces the
// final state.
func (st *Store) DrainAdds() []ID {
	out := st.addLog
	st.addLog = nil
	return out
}

func (st *Store) countSource(s rdf.Source, d int) {
	if s == rdf.SourceKG {
		st.numKG += d
	} else {
		st.numXKG += d
	}
}

// AddFact is a convenience that interns the three terms and adds a triple.
func (st *Store) AddFact(s, p, o rdf.Term, src rdf.Source, conf float64, prov rdf.ProvID) ID {
	return st.Add(rdf.Triple{
		S:      st.dict.Intern(s),
		P:      st.dict.Intern(p),
		O:      st.dict.Intern(o),
		Source: src,
		Conf:   conf,
		Prov:   prov,
	})
}

// AddKG adds a curated KG fact between resources with confidence 1.
func (st *Store) AddKG(s, p, o rdf.Term) ID {
	return st.AddFact(s, p, o, rdf.SourceKG, 1, rdf.NoProv)
}

// Triple returns the triple with the given ID. IDs at or past the base
// length address delta rows; base IDs reflect any delta override (same
// fact re-ingested at higher confidence).
func (st *Store) Triple(id ID) rdf.Triple {
	if st.delta != nil {
		if t, ok := st.delta.triple(id); ok {
			return t
		}
	}
	return st.baseTriple(id)
}

// baseTriple reads a base triple from whichever representation holds it.
func (st *Store) baseTriple(id ID) rdf.Triple {
	if c := st.cols; c != nil {
		return rdf.Triple{
			S:      c.S[id],
			P:      c.P[id],
			O:      c.O[id],
			Source: rdf.Source(c.Src[id]),
			Conf:   c.Conf[id],
			Prov:   c.Prov[id],
		}
	}
	return st.triples[id]
}

// baseLen returns the number of base (pre-delta) triples.
func (st *Store) baseLen() int {
	if st.cols != nil {
		return len(st.cols.S)
	}
	return len(st.triples)
}

// Len returns the number of distinct triples, including delta rows.
func (st *Store) Len() int {
	n := st.baseLen()
	if st.delta != nil {
		n += len(st.delta.rows)
	}
	return n
}

// NumKG and NumXKG report the number of triples per source.
func (st *Store) NumKG() int {
	if st.delta != nil {
		return st.numKG + st.delta.addKG
	}
	return st.numKG
}

func (st *Store) NumXKG() int {
	if st.delta != nil {
		return st.numXKG + st.delta.addXKG
	}
	return st.numXKG
}

// Contains reports whether the exact fact is stored.
func (st *Store) Contains(s, p, o rdf.TermID) bool {
	_, ok := st.lookupKey(rdf.Key{S: s, P: p, O: o})
	return ok
}

// lookupKey resolves an exact (S, P, O) key to its triple ID across the
// delta overlay and the base.
func (st *Store) lookupKey(k rdf.Key) (ID, bool) {
	if st.delta != nil {
		if id, ok := st.delta.byKey[k]; ok {
			return id, true
		}
	}
	return st.baseLookup(k)
}

// baseLookup resolves an exact key against the base representation: the
// byKey hash for heap stores, a binary search of the SPO permutation for
// mapped ones (whose strict sort order checkIndex verified at open).
func (st *Store) baseLookup(k rdf.Key) (ID, bool) {
	if st.byKey != nil {
		id, ok := st.byKey[k]
		return id, ok
	}
	lo, hi := st.spo.searchRange(k.S, k.P, true)
	i := lo + sort.Search(hi-lo, func(i int) bool {
		return st.baseTriple(st.spo.ids[lo+i]).O >= k.O
	})
	if i < hi {
		if id := st.spo.ids[i]; st.baseTriple(id).O == k.O {
			return id, true
		}
	}
	return 0, false
}

// permIndex is one permutation index in columnar struct-of-arrays form:
// ids holds the triple IDs in permutation order, and k1/k2 mirror the two
// leading key columns of that order, so range binary searches compare
// against contiguous []TermID arrays instead of chasing triples[ids[i]]
// through a comparator closure. The third key column never participates in
// a search — fully bound patterns resolve through the byKey hash — so it
// is not materialised.
type permIndex struct {
	ids    []ID
	k1, k2 []rdf.TermID
}

// searchRange binary-searches the columnar keys for the half-open
// [lo, hi) range where k1 equals a — and, when both is set, k2 equals b.
func (ix *permIndex) searchRange(a, b rdf.TermID, both bool) (lo, hi int) {
	n := len(ix.ids)
	if both {
		lo = sort.Search(n, func(i int) bool {
			return ix.k1[i] > a || (ix.k1[i] == a && ix.k2[i] >= b)
		})
		hi = sort.Search(n, func(i int) bool {
			return ix.k1[i] > a || (ix.k1[i] == a && ix.k2[i] > b)
		})
		return lo, hi
	}
	lo = sort.Search(n, func(i int) bool { return ix.k1[i] >= a })
	hi = sort.Search(n, func(i int) bool { return ix.k1[i] > a })
	return lo, hi
}

// buildPermIndex sorts the triple IDs with less and materialises the two
// leading key columns selected by keys.
func (st *Store) buildPermIndex(less func(a, b ID) bool, keys func(t rdf.Triple) (rdf.TermID, rdf.TermID)) permIndex {
	n := len(st.triples)
	ix := permIndex{
		ids: make([]ID, n),
		k1:  make([]rdf.TermID, n),
		k2:  make([]rdf.TermID, n),
	}
	for i := range ix.ids {
		ix.ids[i] = ID(i)
	}
	sort.Slice(ix.ids, func(a, b int) bool { return less(ix.ids[a], ix.ids[b]) })
	for i, id := range ix.ids {
		ix.k1[i], ix.k2[i] = keys(st.triples[id])
	}
	return ix
}

// Freeze builds the permutation and token indexes, the per-term token
// sets, and the predicate statistics. After Freeze the store is immutable
// and safe for concurrent reads. Freeze is idempotent.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	st.spo = st.buildPermIndex(st.lessSPO, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.S, t.P })
	st.pos = st.buildPermIndex(st.lessPOS, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.P, t.O })
	st.osp = st.buildPermIndex(st.lessOSP, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.O, t.S })
	st.finishFreeze()
}

// finishFreeze builds everything Freeze derives besides the permutation
// indexes — token index, per-term token sets, predicate statistics — and
// marks the store frozen. Shared by Freeze (which sorts the indexes) and
// FreezeWithIndexes (which installs pre-built ones from a snapshot).
func (st *Store) finishFreeze() {
	st.buildTokenIndex()
	st.termSets = make([]text.TokenSet, st.dict.Len()+1)
	for id := 1; id < len(st.termSets); id++ {
		st.termSets[id] = text.NewTokenSet(st.dict.Term(rdf.TermID(id)).Text)
	}
	st.predStats = st.computePredicates()
	for _, ps := range st.predStats {
		if st.dict.Term(ps.Pred).Kind == rdf.KindToken {
			st.tokenPreds++
		} else {
			st.resourcePreds++
		}
	}
	st.frozen = true
}

// TermTokenSet returns the content-token set of the term's surface text.
// For terms interned before Freeze it is the set precomputed there (or on
// first use, for mapped stores; shared, read-only); terms interned
// afterwards — query-time components and delta ingest share the
// dictionary — are tokenized on the fly.
func (st *Store) TermTokenSet(id rdf.TermID) text.TokenSet {
	sets := st.termSets
	if st.lazy != nil {
		st.lazy.ensureTokens(st)
		sets = st.lazy.termSets
	}
	if int(id) < len(sets) {
		return sets[id]
	}
	return text.NewTokenSet(st.dict.Term(id).Text)
}

// Frozen reports whether Freeze has been called.
func (st *Store) Frozen() bool { return st.frozen }

// permKind names one of the three permutation orders.
type permKind uint8

const (
	permSPO permKind = iota
	permPOS
	permOSP
)

// permKeys returns the triple's full key in the permutation's column
// order.
func permKeys(t rdf.Triple, which permKind) (a, b, c rdf.TermID) {
	switch which {
	case permSPO:
		return t.S, t.P, t.O
	case permPOS:
		return t.P, t.O, t.S
	default:
		return t.O, t.S, t.P
	}
}

// permKeyLess compares two triples under the permutation's lexicographic
// key order. Keys are unique within a store (Add deduplicates), so this
// is a strict total order over distinct facts.
func permKeyLess(ta, tb rdf.Triple, which permKind) bool {
	a1, a2, a3 := permKeys(ta, which)
	b1, b2, b3 := permKeys(tb, which)
	if a1 != b1 {
		return a1 < b1
	}
	if a2 != b2 {
		return a2 < b2
	}
	return a3 < b3
}

func (st *Store) lessSPO(a, b ID) bool {
	return permKeyLess(st.baseTriple(a), st.baseTriple(b), permSPO)
}

func (st *Store) lessPOS(a, b ID) bool {
	return permKeyLess(st.baseTriple(a), st.baseTriple(b), permPOS)
}

func (st *Store) lessOSP(a, b ID) bool {
	return permKeyLess(st.baseTriple(a), st.baseTriple(b), permOSP)
}

// Match returns the IDs of all triples matching the pattern, where NoTerm
// in a slot acts as a wildcard. The result is in index order of the chosen
// permutation, which is deterministic. Match requires a frozen store.
//
// Except in the fully bound case, the returned slice is a zero-copy view
// into the frozen permutation index — the store is immutable after Freeze,
// so it stays valid and concurrent-read-safe indefinitely — and callers
// must not modify it.
func (st *Store) Match(s, p, o rdf.TermID) []ID {
	if !st.frozen {
		panic("store: Match before Freeze")
	}
	if s != rdf.NoTerm && p != rdf.NoTerm && o != rdf.NoTerm {
		if id, ok := st.lookupKey(rdf.Key{S: s, P: p, O: o}); ok {
			return []ID{id}
		}
		return nil
	}
	// Base membership and order are unaffected by overrides (same key),
	// so a delta with no new rows answers straight from the base.
	merge := st.delta != nil && len(st.delta.rows) > 0
	if s == rdf.NoTerm && p == rdf.NoTerm && o == rdf.NoTerm {
		if !merge {
			return st.spo.ids
		}
		return st.mergePerm(st.spo.ids, st.delta.spo, permSPO)
	}
	ix, which, lo, hi := st.rangeFor(s, p, o)
	var base []ID
	if lo < hi {
		base = ix.ids[lo:hi]
	}
	if !merge {
		return base
	}
	dl := st.delta.matchPerm(which, s, p, o)
	if len(dl) == 0 {
		return base
	}
	return st.mergePerm(base, dl, which)
}

// mergePerm merges a base permutation range with a (small) delta ID list
// sorted under the same permutation. Keys are disjoint — a re-asserted
// fact becomes an override, never a delta row — so the merge is the exact
// order a compacted store's sorted index would produce.
func (st *Store) mergePerm(base, dl []ID, which permKind) []ID {
	out := make([]ID, 0, len(base)+len(dl))
	i, j := 0, 0
	for i < len(base) && j < len(dl) {
		if permKeyLess(st.Triple(base[i]), st.Triple(dl[j]), which) {
			out = append(out, base[i])
			i++
		} else {
			out = append(out, dl[j])
			j++
		}
	}
	out = append(out, base[i:]...)
	out = append(out, dl[j:]...)
	return out
}

// MatchEach calls fn for every matching triple ID, in the same
// deterministic order Match returns, without materialising a result slice.
// fn returning false stops the iteration. MatchEach requires a frozen
// store.
func (st *Store) MatchEach(s, p, o rdf.TermID, fn func(ID) bool) {
	if !st.frozen {
		panic("store: MatchEach before Freeze")
	}
	if s != rdf.NoTerm && p != rdf.NoTerm && o != rdf.NoTerm {
		if id, ok := st.lookupKey(rdf.Key{S: s, P: p, O: o}); ok {
			fn(id)
		}
		return
	}
	for _, id := range st.Match(s, p, o) {
		if !fn(id) {
			return
		}
	}
}

// rangeFor picks the permutation index and the key range for a partially
// bound pattern (at least one bound and one wildcard slot). Match, Count
// and MatchEach share it, so their index choice cannot diverge; the
// returned permKind lets the delta overlay filter under the same order.
func (st *Store) rangeFor(s, p, o rdf.TermID) (ix *permIndex, which permKind, lo, hi int) {
	switch {
	case s != rdf.NoTerm && p != rdf.NoTerm:
		ix, which = &st.spo, permSPO
		lo, hi = ix.searchRange(s, p, true)
	case s != rdf.NoTerm && o != rdf.NoTerm:
		ix, which = &st.osp, permOSP
		lo, hi = ix.searchRange(o, s, true)
	case p != rdf.NoTerm && o != rdf.NoTerm:
		ix, which = &st.pos, permPOS
		lo, hi = ix.searchRange(p, o, true)
	case s != rdf.NoTerm:
		ix, which = &st.spo, permSPO
		lo, hi = ix.searchRange(s, rdf.NoTerm, false)
	case p != rdf.NoTerm:
		ix, which = &st.pos, permPOS
		lo, hi = ix.searchRange(p, rdf.NoTerm, false)
	default:
		ix, which = &st.osp, permOSP
		lo, hi = ix.searchRange(o, rdf.NoTerm, false)
	}
	return ix, which, lo, hi
}

// Count returns the number of triples matching the pattern without
// materialising them: it binary-searches the same permutation index Match
// would use and returns the range length (plus the delta's matching rows).
// It is the selectivity source of the query planner. Count requires a
// frozen store except in the fully bound and fully unbound cases, which
// need no index.
func (st *Store) Count(s, p, o rdf.TermID) int {
	switch {
	case s != rdf.NoTerm && p != rdf.NoTerm && o != rdf.NoTerm:
		if _, ok := st.lookupKey(rdf.Key{S: s, P: p, O: o}); ok {
			return 1
		}
		return 0
	case s == rdf.NoTerm && p == rdf.NoTerm && o == rdf.NoTerm:
		return st.Len()
	}
	if !st.frozen {
		panic("store: Count before Freeze")
	}
	_, _, lo, hi := st.rangeFor(s, p, o)
	n := hi - lo
	if st.delta != nil {
		n += st.delta.countMatch(s, p, o)
	}
	return n
}

// Predicates returns the distinct predicate terms in ascending TermID
// order, with their triple counts. After Freeze the base statistics are
// served from a precomputed (or lazily built, for mapped stores) snapshot
// instead of rescanning all triples; delta rows are merged in.
func (st *Store) Predicates() []PredicateStat {
	base := st.basePredStats()
	if st.delta == nil || len(st.delta.predCounts) == 0 {
		return append([]PredicateStat(nil), base...)
	}
	counts := make(map[rdf.TermID]int, len(base)+len(st.delta.predCounts))
	for _, ps := range base {
		counts[ps.Pred] = ps.Count
	}
	for p, c := range st.delta.predCounts {
		counts[p] += c
	}
	ids := make([]rdf.TermID, 0, len(counts))
	for p := range counts {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]PredicateStat, len(ids))
	for i, p := range ids {
		out[i] = PredicateStat{Pred: p, Count: counts[p]}
	}
	return out
}

// basePredStats returns the per-predicate statistics of the base triples
// (not a defensive copy — callers must not modify it).
func (st *Store) basePredStats() []PredicateStat {
	if !st.frozen {
		return st.computePredicates()
	}
	if st.lazy != nil {
		st.lazy.ensurePreds(st)
		return st.lazy.predStats
	}
	return st.predStats
}

// computePredicates scans the base triples for per-predicate counts.
func (st *Store) computePredicates() []PredicateStat {
	counts := make(map[rdf.TermID]int)
	for i, n := 0, st.baseLen(); i < n; i++ {
		counts[st.baseTriple(ID(i)).P]++
	}
	ids := make([]rdf.TermID, 0, len(counts))
	for p := range counts {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]PredicateStat, len(ids))
	for i, p := range ids {
		out[i] = PredicateStat{Pred: p, Count: counts[p]}
	}
	return out
}

// PredicateStat pairs a predicate with its number of triples.
type PredicateStat struct {
	Pred  rdf.TermID
	Count int
}

// Args returns the set of (subject, object) pairs connected by predicate p,
// the args(p) of the paper's rule-mining weight formula. It streams the
// index range through MatchEach, so no intermediate ID slice is built.
func (st *Store) Args(p rdf.TermID) map[[2]rdf.TermID]bool {
	out := make(map[[2]rdf.TermID]bool, st.Count(rdf.NoTerm, p, rdf.NoTerm))
	st.MatchEach(rdf.NoTerm, p, rdf.NoTerm, func(id ID) bool {
		t := st.Triple(id)
		out[[2]rdf.TermID{t.S, t.O}] = true
		return true
	})
	return out
}

// Stats summarises the store contents (§5 reports these for the demo XKG).
type Stats struct {
	Triples        int
	KGTriples      int
	XKGTriples     int
	Terms          int
	Resources      int
	Literals       int
	Tokens         int
	Predicates     int
	TokenPreds     int // predicates that are token phrases
	ResourcePreds  int // predicates that are canonical resources
	ProvenanceRecs int
}

// Stats computes summary statistics. After Freeze the delta-free case is
// O(1) in the triple count: predicate statistics come from the snapshot
// precomputed at Freeze (or built once on demand for mapped stores), and
// per-kind term counts are maintained incrementally by the dictionary (so
// terms interned after Freeze — e.g. by query-time components sharing the
// dictionary — are still counted).
func (st *Store) Stats() Stats {
	s := Stats{
		Triples:        st.Len(),
		KGTriples:      st.NumKG(),
		XKGTriples:     st.NumXKG(),
		Terms:          st.dict.Len(),
		ProvenanceRecs: st.prov.Len(),
	}
	s.Resources, s.Literals, s.Tokens = st.dict.KindCounts()
	if st.frozen && st.delta == nil {
		if st.lazy != nil {
			st.lazy.ensurePreds(st)
			s.Predicates = len(st.lazy.predStats)
			s.TokenPreds = st.lazy.tokenPreds
			s.ResourcePreds = st.lazy.resourcePreds
			return s
		}
		s.Predicates = len(st.predStats)
		s.TokenPreds = st.tokenPreds
		s.ResourcePreds = st.resourcePreds
		return s
	}
	for _, ps := range st.Predicates() {
		s.Predicates++
		if st.dict.Term(ps.Pred).Kind == rdf.KindToken {
			s.TokenPreds++
		} else {
			s.ResourcePreds++
		}
	}
	return s
}
