package store

// Snapshot export/import of the permutation indexes.
//
// The durable segment format persists the three columnar permutation
// indexes next to the triple column, so that reopening a store is a
// sequential read plus validation instead of three O(n log n) sorts.
// IndexSnapshot exposes the frozen columns zero-copy for the encoder;
// FreezeWithIndexes installs decoded columns after checking they really
// are the permutations Freeze would have built — a snapshot that passed
// its checksums can still be wrong if the sort order ever changes, which
// is what IndexFormatVersion guards.

import (
	"fmt"

	"trinit/internal/rdf"
)

// IndexFormatVersion identifies the on-disk layout and sort order of the
// permutation indexes. Bump it whenever buildPermIndex's output changes
// (column layout, comparator, ID width): snapshots written under an older
// version then skip eager index loading and rebuild from the triple column.
const IndexFormatVersion = 1

// IndexColumns is the raw columnar content of one permutation index.
type IndexColumns struct {
	IDs    []ID
	K1, K2 []rdf.TermID
}

// IndexSnapshot carries the three permutation indexes in raw columnar form.
type IndexSnapshot struct {
	SPO, POS, OSP IndexColumns
}

// IndexSnapshot returns zero-copy views of the frozen permutation indexes.
// The store is immutable after Freeze, so the returned slices stay valid;
// callers must not modify them. It panics on an unfrozen store.
func (st *Store) IndexSnapshot() IndexSnapshot {
	if !st.frozen {
		panic("store: IndexSnapshot before Freeze")
	}
	if st.delta != nil && (len(st.delta.rows) > 0 || len(st.delta.override) > 0) {
		// The permutation indexes cover only the base; exporting them as
		// the image of an overlay would silently drop the delta. Callers
		// compact (materialise a merged store) before snapshotting.
		panic("store: IndexSnapshot on a store with a live delta overlay (compact first)")
	}
	return IndexSnapshot{
		SPO: IndexColumns{IDs: st.spo.ids, K1: st.spo.k1, K2: st.spo.k2},
		POS: IndexColumns{IDs: st.pos.ids, K1: st.pos.k1, K2: st.pos.k2},
		OSP: IndexColumns{IDs: st.osp.ids, K1: st.osp.k1, K2: st.osp.k2},
	}
}

// FreezeWithIndexes freezes the store installing pre-built permutation
// indexes instead of sorting. Every column is validated against the triple
// set — length, permutation property, key-column content, and strict sort
// order — so a snapshot that decodes cleanly but carries a wrong index
// (version skew, a crafted file with recomputed checksums) is rejected
// rather than silently serving wrong ranges. On error the store is left
// unfrozen and unchanged; the caller can fall back to Freeze.
func (st *Store) FreezeWithIndexes(snap IndexSnapshot) error {
	if st.frozen {
		return fmt.Errorf("store: FreezeWithIndexes on a frozen store")
	}
	spo, err := st.checkIndex("spo", snap.SPO, st.lessSPO, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.S, t.P })
	if err != nil {
		return err
	}
	pos, err := st.checkIndex("pos", snap.POS, st.lessPOS, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.P, t.O })
	if err != nil {
		return err
	}
	osp, err := st.checkIndex("osp", snap.OSP, st.lessOSP, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.O, t.S })
	if err != nil {
		return err
	}
	st.spo, st.pos, st.osp = spo, pos, osp
	st.finishFreeze()
	return nil
}

// checkIndex validates one decoded permutation index in O(n): the IDs must
// be a permutation of [0, Len), the key columns must mirror the triples'
// key slots, and adjacent entries must be in strictly increasing order
// under the permutation's comparator (the store holds no duplicate keys).
func (st *Store) checkIndex(name string, c IndexColumns, less func(a, b ID) bool, keys func(t rdf.Triple) (rdf.TermID, rdf.TermID)) (permIndex, error) {
	n := st.baseLen()
	if len(c.IDs) != n || len(c.K1) != n || len(c.K2) != n {
		return permIndex{}, fmt.Errorf("store: %s index columns have %d/%d/%d entries, want %d",
			name, len(c.IDs), len(c.K1), len(c.K2), n)
	}
	seen := make([]bool, n)
	for i, id := range c.IDs {
		if int(id) >= n || seen[id] {
			return permIndex{}, fmt.Errorf("store: %s index is not a permutation at row %d", name, i)
		}
		seen[id] = true
		k1, k2 := keys(st.baseTriple(id))
		if c.K1[i] != k1 || c.K2[i] != k2 {
			return permIndex{}, fmt.Errorf("store: %s index key columns diverge from triples at row %d", name, i)
		}
		if i > 0 && !less(c.IDs[i-1], id) {
			return permIndex{}, fmt.Errorf("store: %s index out of order at row %d", name, i)
		}
	}
	return permIndex{ids: c.IDs, k1: c.K1, k2: c.K2}, nil
}
