package store

import (
	"reflect"
	"testing"

	"trinit/internal/rdf"
)

// TestSubjectHashDictIndependent interns the same terms in two different
// orders and checks the hash depends only on the term, not its TermID.
func TestSubjectHashDictIndependent(t *testing.T) {
	a := New(nil, nil)
	a.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	a.AddKG(rdf.Resource("Ulm"), rdf.Resource("locatedIn"), rdf.Resource("Germany"))

	b := New(nil, nil)
	b.AddKG(rdf.Resource("Ulm"), rdf.Resource("locatedIn"), rdf.Resource("Germany"))
	b.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))

	for _, name := range []string{"AlbertEinstein", "Ulm", "Germany"} {
		ida, _ := a.Dict().Lookup(rdf.Resource(name))
		idb, _ := b.Dict().Lookup(rdf.Resource(name))
		if a.SubjectHash(ida) != b.SubjectHash(idb) {
			t.Errorf("SubjectHash(%s) differs across dictionaries", name)
		}
	}
	// Kind participates: a token and a resource with the same text must
	// not collide by construction.
	ta := a.Dict().Intern(rdf.Token("Ulm"))
	ra, _ := a.Dict().Lookup(rdf.Resource("Ulm"))
	if a.SubjectHash(ta) == a.SubjectHash(ra) {
		t.Errorf("SubjectHash ignores term kind")
	}
}

// TestPartitionEachCoversExactly checks that partitions are disjoint, cover
// every triple, and preserve triple-ID order; of == 1 must reproduce the
// full store sequence.
func TestPartitionEachCoversExactly(t *testing.T) {
	st := figure1()
	extend(st)
	for _, n := range []int{1, 2, 3, 4} {
		seen := make(map[ID]int)
		for part := 0; part < n; part++ {
			last := -1
			st.PartitionEach(part, n, func(id ID) bool {
				if int(id) <= last {
					t.Fatalf("n=%d part=%d: out-of-order id %d after %d", n, part, id, last)
				}
				last = int(id)
				seen[id]++
				return true
			})
		}
		if len(seen) != st.Len() {
			t.Fatalf("n=%d: %d triples seen, want %d", n, len(seen), st.Len())
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: triple %d seen %d times", n, id, c)
			}
		}
	}

	// of == 1 yields the identity sequence.
	var ids []ID
	st.PartitionEach(0, 1, func(id ID) bool { ids = append(ids, id); return true })
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("of=1: position %d holds id %d", i, id)
		}
	}

	// Early stop.
	calls := 0
	st.PartitionEach(0, 1, func(ID) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop: fn called %d times, want 1", calls)
	}
}

// TestMatchPartitionAllSlotCombinations drives MatchPartition through all
// eight bound/unbound slot combinations and compares against MatchEach
// filtered by subject ownership.
func TestMatchPartitionAllSlotCombinations(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()

	s := term(st, rdf.Resource("AlbertEinstein"))
	p := term(st, rdf.Resource("bornIn"))
	o := term(st, rdf.Resource("Ulm"))
	if s == rdf.NoTerm || p == rdf.NoTerm || o == rdf.NoTerm {
		t.Fatal("fixture terms missing")
	}

	patterns := []struct {
		name    string
		s, p, o rdf.TermID
	}{
		{"---", rdf.NoTerm, rdf.NoTerm, rdf.NoTerm},
		{"s--", s, rdf.NoTerm, rdf.NoTerm},
		{"-p-", rdf.NoTerm, p, rdf.NoTerm},
		{"--o", rdf.NoTerm, rdf.NoTerm, o},
		{"sp-", s, p, rdf.NoTerm},
		{"s-o", s, rdf.NoTerm, o},
		{"-po", rdf.NoTerm, p, o},
		{"spo", s, p, o},
	}
	for _, n := range []int{1, 2, 3, 4} {
		for _, pat := range patterns {
			total := 0
			for part := 0; part < n; part++ {
				var want, got []ID
				st.MatchEach(pat.s, pat.p, pat.o, func(id ID) bool {
					if st.SubjectOwner(st.Triple(id).S, n) == part {
						want = append(want, id)
					}
					return true
				})
				st.MatchPartition(pat.s, pat.p, pat.o, part, n, func(id ID) bool {
					got = append(got, id)
					return true
				})
				if !reflect.DeepEqual(got, want) {
					t.Errorf("n=%d part=%d pattern %s: got %v, want %v", n, part, pat.name, got, want)
				}
				total += len(got)
			}
			if want := st.Count(pat.s, pat.p, pat.o); total != want {
				t.Errorf("n=%d pattern %s: partitions yield %d matches, Count says %d", n, pat.name, total, want)
			}
		}
	}

	// Early stop propagates.
	calls := 0
	st.MatchPartition(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm, 0, 1, func(ID) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop: fn called %d times, want 1", calls)
	}
}
