package store

import (
	"sort"

	"trinit/internal/rdf"
	"trinit/internal/text"
)

// tokenIndex is an inverted index from content words to the terms whose
// surface text contains them. It backs the resolution of textual query
// tokens ("extended triple patterns", §2) to candidate XKG token phrases,
// and of token phrases to highly related KG resources (query suggestion,
// §5).
type tokenIndex struct {
	byWord map[string][]rdf.TermID
}

func newTokenIndex() *tokenIndex {
	return &tokenIndex{byWord: make(map[string][]rdf.TermID)}
}

func (ix *tokenIndex) add(id rdf.TermID, surface string) {
	seen := make(map[string]bool)
	for _, w := range text.ContentTokens(surface) {
		if seen[w] {
			continue
		}
		seen[w] = true
		ix.byWord[w] = append(ix.byWord[w], id)
	}
}

// buildTokenIndex indexes every term that occurs in at least one triple.
func (st *Store) buildTokenIndex() {
	st.buildTokenIndexInto(st.tokens)
}

// buildTokenIndexInto populates ix from the base triples. Shared by the
// eager Freeze path and the lazy build of mapped stores.
func (st *Store) buildTokenIndexInto(ix *tokenIndex) {
	n := st.baseLen()
	used := make(map[rdf.TermID]bool, 3*n)
	for i := 0; i < n; i++ {
		t := st.baseTriple(ID(i))
		used[t.S] = true
		used[t.P] = true
		used[t.O] = true
	}
	ids := make([]rdf.TermID, 0, len(used))
	for id := range used {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ix.add(id, st.dict.Term(id).Text)
	}
}

// KindMask selects which term kinds a token lookup may return.
type KindMask uint8

// Kind masks for MatchToken.
const (
	MaskResource KindMask = 1 << rdf.KindResource
	MaskLiteral  KindMask = 1 << rdf.KindLiteral
	MaskToken    KindMask = 1 << rdf.KindToken
	MaskAny               = MaskResource | MaskLiteral | MaskToken
)

func (m KindMask) has(k rdf.TermKind) bool { return m&(1<<k) != 0 }

// ScoredTerm is a candidate term for a textual query token, with its
// phrase-similarity score in (0, 1].
type ScoredTerm struct {
	Term rdf.TermID
	Sim  float64
}

// MatchToken resolves a textual query token to candidate terms whose
// surface text is similar to it. Results are restricted to kinds in mask,
// filtered at minSim, sorted by descending similarity (ties by TermID), and
// truncated to limit (0 = no limit).
//
// MatchToken is complete with respect to Similarity: a term scores
// above 0 exactly when its content-token set intersects the query's, the
// inverted index is keyed by precisely those content tokens (including the
// all-stopword fallback of text.ContentTokens, on both the indexing and
// the lookup side), and candidate similarities come from the term sets
// precomputed at Freeze — so no positive-similarity term is ever missed.
func (st *Store) MatchToken(tok string, mask KindMask, minSim float64, limit int) []ScoredTerm {
	if !st.frozen {
		panic("store: MatchToken before Freeze")
	}
	tokens := st.tokens
	if st.lazy != nil {
		st.lazy.ensureTokens(st)
		tokens = st.lazy.tokens
	}
	cands := make(map[rdf.TermID]bool)
	for _, w := range text.ContentTokens(tok) {
		for _, id := range tokens.byWord[w] {
			cands[id] = true
		}
		if st.delta != nil {
			// Delta rows index their terms in an auxiliary inverted
			// index; the candidate map deduplicates terms present in
			// both. Scoring and ordering below are shared, so the
			// overlay's result is byte-identical to a compacted store's.
			for _, id := range st.delta.tokens.byWord[w] {
				cands[id] = true
			}
		}
	}
	qset := text.NewTokenSet(tok)
	out := make([]ScoredTerm, 0, len(cands))
	for id := range cands {
		term := st.dict.Term(id)
		if !mask.has(term.Kind) {
			continue
		}
		sim := text.SimilaritySets(qset, st.TermTokenSet(id))
		if sim < minSim || sim == 0 {
			continue
		}
		out = append(out, ScoredTerm{Term: id, Sim: sim})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Term < out[j].Term
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
