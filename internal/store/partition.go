package store

import (
	"trinit/internal/rdf"
)

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// SubjectHash returns a stable partition hash of the subject term. It is
// computed from the term's kind and surface text — not its TermID — so two
// stores that interned terms in different orders (or a future network peer
// that never saw this dictionary) agree on every triple's owner shard.
func (st *Store) SubjectHash(s rdf.TermID) uint64 {
	t := st.dict.Term(s)
	h := fnvOffset
	h ^= uint64(t.Kind)
	h *= fnvPrime
	for i := 0; i < len(t.Text); i++ {
		h ^= uint64(t.Text[i])
		h *= fnvPrime
	}
	return h
}

// SubjectOwner returns the shard in [0, of) that owns triples with
// subject s under hash partitioning.
func (st *Store) SubjectOwner(s rdf.TermID, of int) int {
	return int(st.SubjectHash(s) % uint64(of))
}

// PartitionEach calls fn for every triple owned by partition part out of
// of, in ascending triple-ID order (the insertion order of the store). fn
// returning false stops the iteration. With of == 1 every triple is
// visited, so a single-shard partition reproduces the source store's
// triple sequence exactly. PartitionEach does not require a frozen store.
func (st *Store) PartitionEach(part, of int, fn func(ID) bool) {
	if of <= 0 {
		panic("store: PartitionEach with non-positive shard count")
	}
	for id, n := 0, st.Len(); id < n; id++ {
		if st.SubjectOwner(st.Triple(ID(id)).S, of) != part {
			continue
		}
		if !fn(ID(id)) {
			return
		}
	}
}

// MatchPartition is MatchEach restricted to the triples owned by partition
// part out of of: fn sees exactly the matching triples whose subject hashes
// to part, in the same deterministic order MatchEach yields them. It
// supports all eight bound/unbound slot combinations and requires a frozen
// store, like MatchEach.
func (st *Store) MatchPartition(s, p, o rdf.TermID, part, of int, fn func(ID) bool) {
	if of <= 0 {
		panic("store: MatchPartition with non-positive shard count")
	}
	st.MatchEach(s, p, o, func(id ID) bool {
		if st.SubjectOwner(st.Triple(id).S, of) != part {
			return true
		}
		return fn(id)
	})
}
