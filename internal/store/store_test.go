package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trinit/internal/rdf"
	"trinit/internal/text"
)

// figure1 builds the sample knowledge graph of Figure 1.
func figure1() *Store {
	st := New(nil, nil)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("Ulm"), rdf.Resource("locatedIn"), rdf.Resource("Germany"))
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Resource("bornOn"), rdf.Literal("1879-03-14"), rdf.SourceKG, 1, rdf.NoProv)
	st.AddKG(rdf.Resource("AlfredKleiner"), rdf.Resource("hasStudent"), rdf.Resource("AlbertEinstein"))
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("affiliation"), rdf.Resource("IAS"))
	st.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("member"), rdf.Resource("IvyLeague"))
	return st
}

// extend adds the Figure 3 XKG triples.
func extend(st *Store) {
	prov := st.Prov().Add(rdf.Prov{Doc: "clueweb-001", Sentence: "Einstein won a Nobel for his discovery of the photoelectric effect."})
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("won Nobel for"), rdf.Token("discovery of the photoelectric effect"), rdf.SourceXKG, 0.9, prov)
	st.AddFact(rdf.Resource("IAS"), rdf.Token("housed in"), rdf.Resource("PrincetonUniversity"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("lectured at"), rdf.Resource("PrincetonUniversity"), rdf.SourceXKG, 0.7, rdf.NoProv)
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("met his teacher"), rdf.Token("Prof. Kleiner"), rdf.SourceXKG, 0.6, rdf.NoProv)
}

func term(st *Store, t rdf.Term) rdf.TermID {
	id, ok := st.Dict().Lookup(t)
	if !ok {
		return rdf.NoTerm
	}
	return id
}

func TestAddDeduplicatesByKey(t *testing.T) {
	st := New(nil, nil)
	a := st.AddKG(rdf.Resource("A"), rdf.Resource("p"), rdf.Resource("B"))
	b := st.AddKG(rdf.Resource("A"), rdf.Resource("p"), rdf.Resource("B"))
	if a != b {
		t.Fatalf("duplicate fact got two IDs: %d, %d", a, b)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

func TestAddKeepsHigherConfidence(t *testing.T) {
	st := New(nil, nil)
	st.AddFact(rdf.Resource("A"), rdf.Token("p"), rdf.Resource("B"), rdf.SourceXKG, 0.3, rdf.NoProv)
	id := st.AddFact(rdf.Resource("A"), rdf.Token("p"), rdf.Resource("B"), rdf.SourceXKG, 0.8, rdf.NoProv)
	if got := st.Triple(id).Conf; got != 0.8 {
		t.Fatalf("kept conf %v, want 0.8", got)
	}
	// Lower-confidence re-add must not downgrade.
	st.AddFact(rdf.Resource("A"), rdf.Token("p"), rdf.Resource("B"), rdf.SourceXKG, 0.1, rdf.NoProv)
	if got := st.Triple(id).Conf; got != 0.8 {
		t.Fatalf("conf downgraded to %v", got)
	}
	if st.NumXKG() != 1 {
		t.Fatalf("NumXKG = %d, want 1", st.NumXKG())
	}
}

func TestAddRejectsBadConfidence(t *testing.T) {
	st := New(nil, nil)
	for _, conf := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add with conf %v did not panic", conf)
				}
			}()
			st.AddFact(rdf.Resource("A"), rdf.Token("p"), rdf.Resource("B"), rdf.SourceXKG, conf, rdf.NoProv)
		}()
	}
}

func TestAddAfterFreezePanics(t *testing.T) {
	st := figure1()
	st.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Freeze did not panic")
		}
	}()
	st.AddKG(rdf.Resource("X"), rdf.Resource("p"), rdf.Resource("Y"))
}

func TestMatchBeforeFreezePanics(t *testing.T) {
	st := figure1()
	defer func() {
		if recover() == nil {
			t.Fatal("Match before Freeze did not panic")
		}
	}()
	st.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm)
}

func TestMatchAllBoundCombinations(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()

	einstein := term(st, rdf.Resource("AlbertEinstein"))
	bornIn := term(st, rdf.Resource("bornIn"))
	ulm := term(st, rdf.Resource("Ulm"))
	princeton := term(st, rdf.Resource("PrincetonUniversity"))

	tests := []struct {
		name    string
		s, p, o rdf.TermID
		want    int
	}{
		{"SPO bound hit", einstein, bornIn, ulm, 1},
		{"SPO bound miss", ulm, bornIn, einstein, 0},
		{"SP bound", einstein, bornIn, rdf.NoTerm, 1},
		{"SO bound", einstein, rdf.NoTerm, princeton, 1}, // lectured at
		{"PO bound", bornIn, rdf.NoTerm, ulm, 0},         // wrong arg order for PO: bornIn as P, Ulm as O -> 1 actually
		{"S bound", einstein, rdf.NoTerm, rdf.NoTerm, 6},
		{"P bound", rdf.NoTerm, bornIn, rdf.NoTerm, 1},
		{"O bound", rdf.NoTerm, rdf.NoTerm, princeton, 2}, // housed in, lectured at
		{"all wildcards", rdf.NoTerm, rdf.NoTerm, rdf.NoTerm, 10},
	}
	// Fix the PO case: pattern (?, bornIn, Ulm) matches AlbertEinstein bornIn Ulm.
	tests[4].want = 1
	tests[4].s, tests[4].p, tests[4].o = rdf.NoTerm, bornIn, ulm

	for _, tc := range tests {
		got := st.Match(tc.s, tc.p, tc.o)
		if len(got) != tc.want {
			t.Errorf("%s: got %d matches, want %d", tc.name, len(got), tc.want)
		}
		if n := st.Count(tc.s, tc.p, tc.o); n != tc.want {
			t.Errorf("%s: Count = %d, want %d", tc.name, n, tc.want)
		}
		for _, id := range got {
			tr := st.Triple(id)
			if tc.s != rdf.NoTerm && tr.S != tc.s {
				t.Errorf("%s: matched triple has wrong S", tc.name)
			}
			if tc.p != rdf.NoTerm && tr.P != tc.p {
				t.Errorf("%s: matched triple has wrong P", tc.name)
			}
			if tc.o != rdf.NoTerm && tr.O != tc.o {
				t.Errorf("%s: matched triple has wrong O", tc.name)
			}
		}
	}
}

func TestMatchUnknownTerm(t *testing.T) {
	st := figure1()
	st.Freeze()
	// A term interned but never used in a triple must match nothing.
	ghost := st.Dict().InternResource("Ghost")
	if got := st.Match(ghost, rdf.NoTerm, rdf.NoTerm); len(got) != 0 {
		t.Fatalf("ghost subject matched %d triples", len(got))
	}
}

func TestContains(t *testing.T) {
	st := figure1()
	st.Freeze()
	e := term(st, rdf.Resource("AlbertEinstein"))
	b := term(st, rdf.Resource("bornIn"))
	u := term(st, rdf.Resource("Ulm"))
	if !st.Contains(e, b, u) {
		t.Fatal("Contains missed a stored fact")
	}
	if st.Contains(u, b, e) {
		t.Fatal("Contains found a reversed fact")
	}
}

// Property: Match agrees with a naive scan over all triples, for random
// stores and random patterns.
func TestMatchEquivalentToNaiveScanProperty(t *testing.T) {
	gen := rand.New(rand.NewSource(42))
	for round := 0; round < 30; round++ {
		st := New(nil, nil)
		nTerms := 2 + gen.Intn(8)
		terms := make([]rdf.TermID, nTerms)
		for i := range terms {
			terms[i] = st.Dict().InternResource(string(rune('A' + i)))
		}
		nTriples := gen.Intn(60)
		for i := 0; i < nTriples; i++ {
			st.Add(rdf.Triple{
				S:      terms[gen.Intn(nTerms)],
				P:      terms[gen.Intn(nTerms)],
				O:      terms[gen.Intn(nTerms)],
				Source: rdf.SourceKG,
				Conf:   1,
			})
		}
		st.Freeze()
		pick := func() rdf.TermID {
			if gen.Intn(2) == 0 {
				return rdf.NoTerm
			}
			return terms[gen.Intn(nTerms)]
		}
		for q := 0; q < 40; q++ {
			s, p, o := pick(), pick(), pick()
			got := st.Match(s, p, o)
			want := 0
			for id := 0; id < st.Len(); id++ {
				tr := st.Triple(ID(id))
				if (s == rdf.NoTerm || tr.S == s) && (p == rdf.NoTerm || tr.P == p) && (o == rdf.NoTerm || tr.O == o) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("round %d: Match(%d,%d,%d) = %d triples, naive scan = %d", round, s, p, o, len(got), want)
			}
			seen := make(map[ID]bool)
			for _, id := range got {
				if seen[id] {
					t.Fatalf("Match returned duplicate ID %d", id)
				}
				seen[id] = true
			}
		}
	}
}

func TestPredicatesAndArgs(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()
	preds := st.Predicates()
	// Figure 1 has 6 distinct predicates, Figure 3 adds 4 token predicates.
	if len(preds) != 10 {
		t.Fatalf("Predicates: got %d, want 10", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i-1].Pred >= preds[i].Pred {
			t.Fatal("Predicates not in ascending TermID order")
		}
	}
	bornIn := term(st, rdf.Resource("bornIn"))
	args := st.Args(bornIn)
	if len(args) != 1 {
		t.Fatalf("args(bornIn) = %d pairs, want 1", len(args))
	}
	e := term(st, rdf.Resource("AlbertEinstein"))
	u := term(st, rdf.Resource("Ulm"))
	if !args[[2]rdf.TermID{e, u}] {
		t.Fatal("args(bornIn) missing (AlbertEinstein, Ulm)")
	}
}

func TestStats(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()
	s := st.Stats()
	if s.Triples != 10 || s.KGTriples != 6 || s.XKGTriples != 4 {
		t.Fatalf("triple counts = %+v", s)
	}
	if s.Predicates != 10 || s.TokenPreds != 4 || s.ResourcePreds != 6 {
		t.Fatalf("predicate counts = %+v", s)
	}
	if s.Literals != 1 {
		t.Fatalf("literal count = %d, want 1", s.Literals)
	}
	if s.ProvenanceRecs != 1 {
		t.Fatalf("provenance count = %d, want 1", s.ProvenanceRecs)
	}
}

func TestMatchTokenFindsPhrases(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()

	// The §2 example: the user types 'won nobel for'; it must resolve to
	// the XKG predicate 'won Nobel for' with similarity 1.
	got := st.MatchToken("won nobel for", MaskToken, 0.1, 5)
	if len(got) == 0 {
		t.Fatal("MatchToken found nothing for 'won nobel for'")
	}
	best := st.Dict().Term(got[0].Term)
	if best.Text != "won Nobel for" || got[0].Sim != 1 {
		t.Fatalf("best match = %v (sim %v), want 'won Nobel for' sim 1", best, got[0].Sim)
	}
}

func TestMatchTokenKindMask(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()

	// "princeton university" should match the resource PrincetonUniversity
	// when resources are allowed, and nothing when only tokens are.
	res := st.MatchToken("princeton university", MaskResource, 0.5, 5)
	if len(res) != 1 || st.Dict().Term(res[0].Term).Text != "PrincetonUniversity" {
		t.Fatalf("resource match = %v", res)
	}
	tok := st.MatchToken("princeton university", MaskToken, 0.99, 5)
	if len(tok) != 0 {
		t.Fatalf("token-only match should be empty at high threshold, got %v", tok)
	}
}

func TestMatchTokenLimitAndOrder(t *testing.T) {
	st := New(nil, nil)
	st.AddFact(rdf.Resource("A"), rdf.Token("won prize"), rdf.Resource("B"), rdf.SourceXKG, 0.5, rdf.NoProv)
	st.AddFact(rdf.Resource("A"), rdf.Token("won a big prize"), rdf.Resource("B"), rdf.SourceXKG, 0.5, rdf.NoProv)
	st.AddFact(rdf.Resource("A"), rdf.Token("won the nobel prize in physics"), rdf.Resource("B"), rdf.SourceXKG, 0.5, rdf.NoProv)
	st.Freeze()
	got := st.MatchToken("won prize", MaskToken, 0, 0)
	if len(got) != 3 {
		t.Fatalf("got %d candidates, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Sim < got[i].Sim {
			t.Fatal("candidates not sorted by descending similarity")
		}
	}
	if st.Dict().Term(got[0].Term).Text != "won prize" {
		t.Fatalf("best candidate = %v", st.Dict().Term(got[0].Term))
	}
	if lim := st.MatchToken("won prize", MaskToken, 0, 2); len(lim) != 2 {
		t.Fatalf("limit ignored: %d results", len(lim))
	}
}

func TestMatchTokenOnlyIndexesUsedTerms(t *testing.T) {
	st := New(nil, nil)
	st.AddFact(rdf.Resource("A"), rdf.Token("won prize"), rdf.Resource("B"), rdf.SourceXKG, 0.5, rdf.NoProv)
	// Interned but not used in any triple: must not be suggested.
	st.Dict().InternToken("won everything")
	st.Freeze()
	got := st.MatchToken("won", MaskToken, 0, 0)
	if len(got) != 1 {
		t.Fatalf("got %d candidates, want only the used term: %v", len(got), got)
	}
}

func TestFreezeIdempotent(t *testing.T) {
	st := figure1()
	st.Freeze()
	st.Freeze() // must not panic or rebuild incorrectly
	if !st.Frozen() {
		t.Fatal("store not frozen")
	}
	if n := len(st.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm)); n != 6 {
		t.Fatalf("after double freeze, match-all = %d", n)
	}
}

// Property (testing/quick): Count is consistent with len(Match) for
// arbitrary small ID patterns on a fixed store.
func TestCountMatchesLenProperty(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()
	maxID := rdf.TermID(st.Dict().Len())
	f := func(s, p, o uint8) bool {
		sid := rdf.TermID(s) % (maxID + 1)
		pid := rdf.TermID(p) % (maxID + 1)
		oid := rdf.TermID(o) % (maxID + 1)
		return st.Count(sid, pid, oid) == len(st.Match(sid, pid, oid))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCountAllBoundCombinations asserts Count == len(Match) for every one
// of the 8 bound/unbound slot combinations, on present and absent terms,
// exercising the non-materialising binary-search range count.
func TestCountAllBoundCombinations(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()

	einstein := term(st, rdf.Resource("AlbertEinstein"))
	bornIn := term(st, rdf.Resource("bornIn"))
	ulm := term(st, rdf.Resource("Ulm"))
	housedIn := term(st, rdf.Token("housed in"))
	princeton := term(st, rdf.Resource("PrincetonUniversity"))
	absent := rdf.TermID(st.Dict().Len() + 7)

	subjects := []rdf.TermID{rdf.NoTerm, einstein, ulm, absent}
	predicates := []rdf.TermID{rdf.NoTerm, bornIn, housedIn, absent}
	objects := []rdf.TermID{rdf.NoTerm, ulm, princeton, absent}

	combos := 0
	seen := make(map[[3]bool]bool)
	for _, s := range subjects {
		for _, p := range predicates {
			for _, o := range objects {
				got := st.Count(s, p, o)
				want := len(st.Match(s, p, o))
				if got != want {
					t.Errorf("Count(%d,%d,%d) = %d, want len(Match) = %d", s, p, o, got, want)
				}
				combos++
				seen[[3]bool{s != rdf.NoTerm, p != rdf.NoTerm, o != rdf.NoTerm}] = true
			}
		}
	}
	if len(seen) != 8 {
		t.Fatalf("covered %d of 8 bound/unbound combinations", len(seen))
	}
	// Sanity anchors: a known range and the two index-free fast paths.
	if st.Count(rdf.NoTerm, bornIn, rdf.NoTerm) != 1 {
		t.Errorf("Count(*, bornIn, *) = %d, want 1", st.Count(rdf.NoTerm, bornIn, rdf.NoTerm))
	}
	if st.Count(einstein, bornIn, ulm) != 1 {
		t.Errorf("fully bound present fact: count != 1")
	}
	if st.Count(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm) != st.Len() {
		t.Errorf("unbounded count = %d, want %d", st.Count(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm), st.Len())
	}
}

// TestCountDoesNotRequireFreezeForTrivialCases covers the two patterns
// answerable without permutation indexes.
func TestCountDoesNotRequireFreezeForTrivialCases(t *testing.T) {
	st := figure1()
	if st.Count(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm) != st.Len() {
		t.Fatal("unfrozen unbounded count wrong")
	}
	einstein := term(st, rdf.Resource("AlbertEinstein"))
	bornIn := term(st, rdf.Resource("bornIn"))
	ulm := term(st, rdf.Resource("Ulm"))
	if st.Count(einstein, bornIn, ulm) != 1 {
		t.Fatal("unfrozen fully bound count wrong")
	}
}

// TestStatsFrozenMatchesUnfrozen: Freeze precomputes predicate statistics;
// the snapshot must agree exactly with the scan-based computation, and
// terms interned into the shared dictionary after Freeze must still be
// counted.
func TestStatsFrozenMatchesUnfrozen(t *testing.T) {
	st := figure1()
	extend(st)
	before := st.Stats()
	beforePreds := st.Predicates()
	st.Freeze()
	after := st.Stats()
	if before != after {
		t.Fatalf("Stats changed across Freeze:\nbefore %+v\nafter  %+v", before, after)
	}
	afterPreds := st.Predicates()
	if len(beforePreds) != len(afterPreds) {
		t.Fatalf("Predicates: %d before Freeze, %d after", len(beforePreds), len(afterPreds))
	}
	for i := range beforePreds {
		if beforePreds[i] != afterPreds[i] {
			t.Fatalf("Predicates[%d]: %+v before Freeze, %+v after", i, beforePreds[i], afterPreds[i])
		}
	}
	// The returned snapshot must be a copy: mutating it cannot corrupt
	// later calls.
	afterPreds[0].Count = -1
	if st.Predicates()[0].Count == -1 {
		t.Fatal("Predicates returned its internal snapshot")
	}
	// Post-freeze interning (query-time components share the dictionary)
	// shows up in term counts without a dictionary rescan.
	st.Dict().InternToken("fresh post-freeze token")
	s := st.Stats()
	if s.Tokens != after.Tokens+1 || s.Terms != after.Terms+1 {
		t.Fatalf("post-freeze intern not counted: %+v vs %+v", s, after)
	}
}

// TestMatchEachAgreesWithMatch: the streaming iterator must visit exactly
// the IDs Match returns, in the same order, for every slot combination,
// and honour early termination.
func TestMatchEachAgreesWithMatch(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()
	ae := term(st, rdf.Resource("AlbertEinstein"))
	born := term(st, rdf.Resource("bornIn"))
	ulm := term(st, rdf.Resource("Ulm"))
	for _, tc := range [][3]rdf.TermID{
		{rdf.NoTerm, rdf.NoTerm, rdf.NoTerm},
		{ae, rdf.NoTerm, rdf.NoTerm},
		{rdf.NoTerm, born, rdf.NoTerm},
		{rdf.NoTerm, rdf.NoTerm, ulm},
		{ae, born, rdf.NoTerm},
		{ae, rdf.NoTerm, ulm},
		{rdf.NoTerm, born, ulm},
		{ae, born, ulm},
	} {
		want := st.Match(tc[0], tc[1], tc[2])
		var got []ID
		st.MatchEach(tc[0], tc[1], tc[2], func(id ID) bool {
			got = append(got, id)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("MatchEach(%v) visited %d IDs, Match returned %d", tc, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MatchEach(%v) order differs at %d: %d vs %d", tc, i, got[i], want[i])
			}
		}
	}
	// Early termination stops after the first ID.
	visited := 0
	st.MatchEach(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm, func(ID) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Fatalf("early-terminated MatchEach visited %d IDs, want 1", visited)
	}
}

// TestMatchZeroCopyViewsStayConsistent: partially bound and unbound
// matches are views into the frozen index; repeated calls must return
// identical contents (the store is immutable, so views never go stale).
func TestMatchZeroCopyViewsStayConsistent(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()
	born := term(st, rdf.Resource("bornIn"))
	a := st.Match(rdf.NoTerm, born, rdf.NoTerm)
	b := st.Match(rdf.NoTerm, born, rdf.NoTerm)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("inconsistent view lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("views differ at %d", i)
		}
	}
	if &a[0] != &b[0] {
		t.Error("partially bound Match materialised a copy; want a zero-copy view")
	}
	all1 := st.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm)
	all2 := st.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm)
	if &all1[0] != &all2[0] {
		t.Error("unbound Match materialised a copy; want a zero-copy view")
	}
}

// TestTermTokenSet: Freeze precomputes per-term token sets identical to
// on-the-fly tokenization, and terms interned after Freeze still resolve.
func TestTermTokenSet(t *testing.T) {
	st := figure1()
	extend(st)
	st.Freeze()
	st.Dict().All(func(id rdf.TermID, tm rdf.Term) bool {
		got := st.TermTokenSet(id)
		want := text.NewTokenSet(tm.Text)
		if len(got) != len(want) {
			t.Fatalf("term %q: set size %d, want %d", tm.Text, len(got), len(want))
		}
		for w := range want {
			if !got[w] {
				t.Fatalf("term %q: set missing %q", tm.Text, w)
			}
		}
		return true
	})
	// Post-freeze interning falls back to on-the-fly tokenization.
	late := st.Dict().InternToken("freshly interned phrase")
	if got := st.TermTokenSet(late); !got["freshly"] || !got["interned"] || !got["phrase"] {
		t.Fatalf("post-freeze TermTokenSet = %v", got)
	}
}
