package store

// Mapped-column stores: a Store whose base triples and permutation
// indexes are zero-copy views into a memory-mapped segment file.
//
// The serial layer hands NewMapped the column views it cast out of a
// verified v2 segment. NewMapped re-validates everything it will trust at
// query time — triple fields against the dictionary and provenance table,
// and the three permutation indexes via the same checkIndex pass an eager
// snapshot load runs — so a crafted file with recomputed checksums is
// rejected rather than silently serving wrong ranges. What it does NOT do
// is materialise: no triple rows, no byKey hash (exact-key lookups binary
// search the SPO permutation instead), and the derived read structures
// (token index, term token sets, predicate statistics) are built lazily
// on first use, keeping open time independent of the triple count.

import (
	"fmt"
	"sync"

	"trinit/internal/rdf"
	"trinit/internal/text"
)

// MappedColumns holds the base triple columns of a mapped store. The
// slices alias a read-only memory-mapped file; they must never be written
// through, and they become invalid when the mapping is unmapped — the
// engine's epoch pinning defers unmap until the last reader drains.
type MappedColumns struct {
	S, P, O []rdf.TermID
	Conf    []float64
	Prov    []rdf.ProvID
	Src     []byte
}

// lazyDerived holds the read structures Freeze would have precomputed,
// built on first use instead. It is shared by pointer across the shallow
// store copies WithDelta creates, so one build serves every overlay over
// the same base.
type lazyDerived struct {
	tokOnce  sync.Once
	tokens   *tokenIndex
	termSets []text.TokenSet

	predOnce                  sync.Once
	predStats                 []PredicateStat
	tokenPreds, resourcePreds int
}

// ensureTokens builds the token index and per-term token sets once. They
// cover the base triples and the dictionary as of the build; terms
// interned later fall back to on-the-fly tokenization in TermTokenSet,
// which yields identical sets.
func (lz *lazyDerived) ensureTokens(st *Store) {
	lz.tokOnce.Do(func() {
		ix := newTokenIndex()
		st.buildTokenIndexInto(ix)
		sets := make([]text.TokenSet, st.dict.Len()+1)
		for id := 1; id < len(sets); id++ {
			sets[id] = text.NewTokenSet(st.dict.Term(rdf.TermID(id)).Text)
		}
		lz.termSets = sets
		lz.tokens = ix
	})
}

// ensurePreds computes the base predicate statistics once.
func (lz *lazyDerived) ensurePreds(st *Store) {
	lz.predOnce.Do(func() {
		lz.predStats = st.computePredicates()
		for _, ps := range lz.predStats {
			if st.dict.Term(ps.Pred).Kind == rdf.KindToken {
				lz.tokenPreds++
			} else {
				lz.resourcePreds++
			}
		}
	})
}

// NewMapped assembles a frozen store over mapped column views. It
// validates every triple field and all three permutation indexes in O(n)
// and returns an error (never a partially usable store) on any
// inconsistency. The dictionary and provenance table are the eagerly
// decoded ones — their strings must survive an unmap.
func NewMapped(dict *rdf.Dict, prov *rdf.ProvTable, cols *MappedColumns, idx IndexSnapshot) (*Store, error) {
	n := len(cols.S)
	if len(cols.P) != n || len(cols.O) != n || len(cols.Conf) != n || len(cols.Prov) != n || len(cols.Src) != n {
		return nil, fmt.Errorf("store: mapped columns have unequal lengths")
	}
	st := &Store{
		dict: dict,
		prov: prov,
		cols: cols,
		lazy: &lazyDerived{},
	}
	for i := 0; i < n; i++ {
		t := st.baseTriple(ID(i))
		if !dict.Valid(t.S) || !dict.Valid(t.P) || !dict.Valid(t.O) {
			return nil, fmt.Errorf("store: mapped triple %d references a term outside the dictionary", i)
		}
		if uint8(t.Source) > uint8(rdf.SourceXKG) {
			return nil, fmt.Errorf("store: mapped triple %d has unknown source %d", i, t.Source)
		}
		if !(t.Conf > 0 && t.Conf <= 1) {
			return nil, fmt.Errorf("store: mapped triple %d confidence %v outside (0, 1]", i, t.Conf)
		}
		if t.Prov != rdf.NoProv && int(t.Prov) > prov.Len() {
			return nil, fmt.Errorf("store: mapped triple %d references provenance record %d of %d", i, t.Prov, prov.Len())
		}
		st.countSource(t.Source, +1)
	}
	spo, err := st.checkIndex("spo", idx.SPO, st.lessSPO, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.S, t.P })
	if err != nil {
		return nil, err
	}
	pos, err := st.checkIndex("pos", idx.POS, st.lessPOS, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.P, t.O })
	if err != nil {
		return nil, err
	}
	osp, err := st.checkIndex("osp", idx.OSP, st.lessOSP, func(t rdf.Triple) (rdf.TermID, rdf.TermID) { return t.O, t.S })
	if err != nil {
		return nil, err
	}
	st.spo, st.pos, st.osp = spo, pos, osp
	st.frozen = true
	return st, nil
}

// Mapped reports whether the store's base triples are served from mapped
// column views rather than heap rows.
func (st *Store) Mapped() bool { return st.cols != nil }
