package store

// Delta segments: immutable overlays that absorb post-freeze triple
// ingest without touching the frozen (possibly memory-mapped) base.
//
// A Delta is built once per ingest batch by BuildDelta and never mutated
// after publication, so the engine's MVCC layer can hand a (base, delta)
// pair to any number of concurrent readers without locks. Ingest follows
// Add's semantics exactly: a fact whose (S, P, O) key already exists —
// in the base or in the delta — replaces the stored copy only at strictly
// higher confidence. A replacement of a base fact becomes an override
// (the base row's ID keeps addressing it, Triple returns the replacement)
// rather than a new row, so base permutation order, predicate counts and
// token-index membership are untouched: only new keys become delta rows.
//
// Delta rows get IDs following the base (baseLen+i in ingest order) —
// precisely the IDs they would have in a store that had ingested the same
// facts before Freeze. Together with the key-ordered two-source merge in
// Match, that makes an overlay read byte-identical to a compacted store.

import (
	"fmt"
	"sort"

	"trinit/internal/rdf"
)

// Delta is an immutable overlay of post-freeze ingest over a frozen base.
type Delta struct {
	baseLen int

	// rows are the facts whose keys are new; their IDs are baseLen+i.
	rows  []rdf.Triple
	byKey map[rdf.Key]ID

	// override maps a base triple ID to its replacement (same key,
	// higher confidence; possibly different source/provenance).
	override map[ID]rdf.Triple

	// Permutation orders over the delta rows only (global IDs), for the
	// two-source merge in Match.
	spo, pos, osp []ID

	// addKG/addXKG adjust the base source counts (rows added plus
	// override source flips; an override can make one negative).
	addKG, addXKG int

	// predCounts counts delta rows per predicate (overrides keep their
	// predicate, so they do not appear).
	predCounts map[rdf.TermID]int

	// tokens is an auxiliary inverted index over every term the delta
	// rows use, merged into MatchToken candidate resolution.
	tokens *tokenIndex
}

// Rows returns the number of delta rows (new facts; overrides excluded).
func (d *Delta) Rows() int {
	if d == nil {
		return 0
	}
	return len(d.rows)
}

// Overrides returns the number of base facts the delta replaces.
func (d *Delta) Overrides() int {
	if d == nil {
		return 0
	}
	return len(d.override)
}

// triple resolves an ID the delta is responsible for: its own rows, and
// overridden base rows.
func (d *Delta) triple(id ID) (rdf.Triple, bool) {
	if int(id) >= d.baseLen {
		return d.rows[int(id)-d.baseLen], true
	}
	if t, ok := d.override[id]; ok {
		return t, true
	}
	return rdf.Triple{}, false
}

// matchPat reports whether the triple matches the pattern (NoTerm is a
// wildcard), mirroring the index semantics of Match.
func matchPat(t rdf.Triple, s, p, o rdf.TermID) bool {
	return (s == rdf.NoTerm || t.S == s) &&
		(p == rdf.NoTerm || t.P == p) &&
		(o == rdf.NoTerm || t.O == o)
}

func (d *Delta) perm(which permKind) []ID {
	switch which {
	case permSPO:
		return d.spo
	case permPOS:
		return d.pos
	default:
		return d.osp
	}
}

// matchPerm returns the delta rows matching the pattern, in the given
// permutation's key order (a filtered subsequence of a sorted list stays
// sorted). The delta is expected to be small relative to the base, so the
// linear filter replaces index machinery.
func (d *Delta) matchPerm(which permKind, s, p, o rdf.TermID) []ID {
	var out []ID
	for _, id := range d.perm(which) {
		if matchPat(d.rows[int(id)-d.baseLen], s, p, o) {
			out = append(out, id)
		}
	}
	return out
}

// countMatch counts delta rows matching the pattern.
func (d *Delta) countMatch(s, p, o rdf.TermID) int {
	n := 0
	for i := range d.rows {
		if matchPat(d.rows[i], s, p, o) {
			n++
		}
	}
	return n
}

// BuildDelta derives the next immutable delta from the previous one plus
// a batch of new facts, against a frozen, overlay-free base. It returns
// the delta and the subset of facts that actually changed state (new keys
// and accepted higher-confidence replacements, in input order) — the rows
// a write-ahead log must record to replay the same state. dict is the
// dictionary the facts' terms were interned into (the ingest-side clone);
// the delta's auxiliary token index resolves surface text through it.
func BuildDelta(base *Store, dict *rdf.Dict, prev *Delta, facts []rdf.Triple) (*Delta, []rdf.Triple, error) {
	if !base.frozen {
		return nil, nil, fmt.Errorf("store: BuildDelta requires a frozen base")
	}
	if base.delta != nil {
		return nil, nil, fmt.Errorf("store: BuildDelta base must not itself be an overlay")
	}
	d := &Delta{
		baseLen:    base.baseLen(),
		byKey:      make(map[rdf.Key]ID),
		override:   make(map[ID]rdf.Triple),
		predCounts: make(map[rdf.TermID]int),
		tokens:     newTokenIndex(),
	}
	if prev != nil {
		if prev.baseLen != d.baseLen {
			return nil, nil, fmt.Errorf("store: delta base length %d does not match store %d", prev.baseLen, d.baseLen)
		}
		d.rows = append(d.rows, prev.rows...)
		for k, id := range prev.byKey {
			d.byKey[k] = id
		}
		for id, t := range prev.override {
			d.override[id] = t
		}
	}

	var applied []rdf.Triple
	for i, t := range facts {
		if !(t.Conf > 0 && t.Conf <= 1) {
			return nil, nil, fmt.Errorf("store: ingested fact %d confidence %v outside (0, 1]", i, t.Conf)
		}
		if !dict.Valid(t.S) || !dict.Valid(t.P) || !dict.Valid(t.O) {
			return nil, nil, fmt.Errorf("store: ingested fact %d references a term outside the dictionary", i)
		}
		k := t.Key()
		if id, ok := d.byKey[k]; ok {
			if t.Conf > d.rows[int(id)-d.baseLen].Conf {
				d.rows[int(id)-d.baseLen] = t
				applied = append(applied, t)
			}
			continue
		}
		if id, ok := base.baseLookup(k); ok {
			cur, overridden := d.override[id]
			if !overridden {
				cur = base.baseTriple(id)
			}
			if t.Conf > cur.Conf {
				d.override[id] = t
				applied = append(applied, t)
			}
			continue
		}
		d.byKey[k] = ID(d.baseLen + len(d.rows))
		d.rows = append(d.rows, t)
		applied = append(applied, t)
	}

	// Derived state is rebuilt from scratch: deltas are batch-sized, and
	// recomputing keeps Build idempotent over any prev/facts split.
	for _, t := range d.rows {
		if t.Source == rdf.SourceKG {
			d.addKG++
		} else {
			d.addXKG++
		}
		d.predCounts[t.P]++
	}
	for id, t := range d.override {
		b := base.baseTriple(id)
		if b.Source != t.Source {
			if t.Source == rdf.SourceKG {
				d.addKG++
				d.addXKG--
			} else {
				d.addXKG++
				d.addKG--
			}
		}
	}
	d.spo = d.sortPerm(permSPO)
	d.pos = d.sortPerm(permPOS)
	d.osp = d.sortPerm(permOSP)

	used := make(map[rdf.TermID]bool, 3*len(d.rows))
	for _, t := range d.rows {
		used[t.S] = true
		used[t.P] = true
		used[t.O] = true
	}
	ids := make([]rdf.TermID, 0, len(used))
	for id := range used {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d.tokens.add(id, dict.Term(id).Text)
	}
	return d, applied, nil
}

// sortPerm orders the delta rows' global IDs under the permutation's key
// comparator.
func (d *Delta) sortPerm(which permKind) []ID {
	ids := make([]ID, len(d.rows))
	for i := range ids {
		ids[i] = ID(d.baseLen + i)
	}
	sort.Slice(ids, func(a, b int) bool {
		return permKeyLess(d.rows[int(ids[a])-d.baseLen], d.rows[int(ids[b])-d.baseLen], which)
	})
	return ids
}

// WithDelta returns a read view splicing the delta into every lookup over
// this store. The receiver must be a frozen, overlay-free base. The view
// is a shallow copy sharing the base's (immutable) indexes and columns;
// dict and prov, when non-nil, replace the base's — ingest interns new
// terms into clones so concurrent readers of the published store never
// observe a mutation.
func (st *Store) WithDelta(d *Delta, dict *rdf.Dict, prov *rdf.ProvTable) *Store {
	if !st.frozen {
		panic("store: WithDelta before Freeze")
	}
	if st.delta != nil {
		panic("store: WithDelta on an overlay store")
	}
	cp := *st
	cp.delta = d
	if dict != nil {
		cp.dict = dict
	}
	if prov != nil {
		cp.prov = prov
	}
	cp.trackAdds = false
	cp.addLog = nil
	return &cp
}

// Base returns the overlay's underlying base store (or the store itself
// when no delta is attached).
func (st *Store) Base() *Store {
	if st.delta == nil {
		return st
	}
	cp := *st
	cp.delta = nil
	return &cp
}
