package xkg

import (
	"testing"

	"trinit/internal/ned"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

func baseKG() *store.Store {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("AlfredKleiner"), rdf.Resource("hasStudent"), rdf.Resource("AlbertEinstein"))
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("affiliation"), rdf.Resource("IAS"))
	st.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("member"), rdf.Resource("IvyLeague"))
	return st
}

func TestBuildAddsTokenTriples(t *testing.T) {
	st := baseKG()
	docs := []Document{
		{ID: "doc1", Text: "Einstein won a Nobel for his discovery of the photoelectric effect."},
		{ID: "doc2", Text: "Einstein lectured at Princeton University."},
	}
	stats := Build(st, ned.NewLinker(st), docs, Options{MinConf: 0, MinRelPairs: 1, LinkEntities: true})
	if stats.Documents != 2 || stats.Sentences != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Added == 0 {
		t.Fatal("no triples added")
	}
	st.Freeze()

	// The §2 example triple must exist with AlbertEinstein as a linked
	// resource subject and token predicate/object.
	einstein, _ := st.Dict().Lookup(rdf.Resource("AlbertEinstein"))
	won, ok := st.Dict().Lookup(rdf.Token("won a nobel for"))
	if !ok {
		t.Fatal("relation phrase 'won a nobel for' not interned")
	}
	ms := st.Match(einstein, won, rdf.NoTerm)
	if len(ms) != 1 {
		t.Fatalf("found %d matches for Einstein 'won a nobel for' ?x", len(ms))
	}
	tr := st.Triple(ms[0])
	if tr.Source != rdf.SourceXKG {
		t.Error("extracted triple not marked XKG")
	}
	if tr.Conf <= 0 || tr.Conf > 1 {
		t.Errorf("conf = %v", tr.Conf)
	}
	obj := st.Dict().Term(tr.O)
	if obj.Kind != rdf.KindToken {
		t.Errorf("object = %v, want token phrase", obj)
	}
}

func TestBuildRecordsProvenance(t *testing.T) {
	st := baseKG()
	docs := []Document{{ID: "news-42", Text: "Einstein lectured at Princeton University."}}
	Build(st, ned.NewLinker(st), docs, Options{MinConf: 0, MinRelPairs: 1, LinkEntities: true})
	st.Freeze()
	found := false
	for i := 0; i < st.Len(); i++ {
		tr := st.Triple(store.ID(i))
		if tr.Source != rdf.SourceXKG {
			continue
		}
		p := st.Prov().Get(tr.Prov)
		if p.Doc != "news-42" {
			t.Errorf("prov doc = %q", p.Doc)
		}
		if p.Sentence == "" {
			t.Error("prov sentence empty")
		}
		found = true
	}
	if !found {
		t.Fatal("no XKG triple with provenance")
	}
}

func TestBuildLinksSubjects(t *testing.T) {
	st := baseKG()
	docs := []Document{{ID: "d", Text: "Einstein lectured at Princeton University."}}
	stats := Build(st, ned.NewLinker(st), docs, Options{MinConf: 0, MinRelPairs: 1, LinkEntities: true})
	if stats.LinkedSubj == 0 {
		t.Fatal("subject 'Einstein' was not linked to AlbertEinstein")
	}
	if stats.LinkedObj == 0 {
		t.Fatal("object 'Princeton University' was not linked")
	}
}

func TestBuildWithoutLinking(t *testing.T) {
	st := baseKG()
	docs := []Document{{ID: "d", Text: "Einstein lectured at Princeton University."}}
	stats := Build(st, nil, docs, Options{MinConf: 0, MinRelPairs: 1, LinkEntities: false})
	if stats.LinkedSubj != 0 || stats.LinkedObj != 0 {
		t.Fatalf("linking happened despite LinkEntities=false: %+v", stats)
	}
	st.Freeze()
	// Subject stays the token phrase 'Einstein'.
	tok, ok := st.Dict().Lookup(rdf.Token("Einstein"))
	if !ok {
		t.Fatal("token subject not interned")
	}
	if len(st.Match(tok, rdf.NoTerm, rdf.NoTerm)) == 0 {
		t.Fatal("token-subject triple missing")
	}
}

func TestBuildConfidenceFilter(t *testing.T) {
	st := baseKG()
	docs := []Document{{ID: "d", Text: "Einstein lectured at Princeton University."}}
	stats := Build(st, nil, docs, Options{MinConf: 1.01, MinRelPairs: 1})
	if stats.Kept != 0 || stats.Added != 0 {
		t.Fatalf("impossible confidence threshold kept %+v", stats)
	}
}

func TestBuildLexicalFilter(t *testing.T) {
	st := baseKG()
	docs := []Document{
		{ID: "a", Text: "Einstein lectured at Princeton University. Kleiner lectured at Zurich University."},
		{ID: "b", Text: "Gauss rambled incoherently towards nothing in particular once."},
	}
	stats := Build(st, nil, docs, Options{MinConf: 0, MinRelPairs: 2, LinkEntities: false})
	// 'lectured at' has two distinct arg pairs and survives; whatever was
	// extracted from the rambling sentence occurs once and is dropped.
	if stats.Kept != 2 {
		t.Fatalf("Kept = %d, want 2 (stats %+v)", stats.Kept, stats)
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	st := baseKG()
	stats := Build(st, nil, nil, DefaultOptions())
	if stats.Added != 0 || stats.Documents != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestBuildDeduplicatesRepeatedFacts(t *testing.T) {
	st := baseKG()
	docs := []Document{
		{ID: "a", Text: "Einstein lectured at Princeton University."},
		{ID: "b", Text: "Einstein lectured at Princeton University."},
	}
	stats := Build(st, nil, docs, Options{MinConf: 0, MinRelPairs: 1})
	if stats.Kept != 2 {
		t.Fatalf("Kept = %d", stats.Kept)
	}
	// The same (S, P, O) from two documents is one distinct triple, as
	// in the paper's "440 million distinct triples".
	if stats.Added != 1 {
		t.Fatalf("Added = %d, want 1 (deduplicated)", stats.Added)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.MinConf <= 0 || !o.LinkEntities {
		t.Fatalf("DefaultOptions = %+v", o)
	}
}
