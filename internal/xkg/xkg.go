// Package xkg builds the Extended Knowledge Graph of §2: it runs Open IE
// over a document collection, links argument phrases to KG entities where
// possible, and adds the resulting token triples — with confidences and
// provenance — to the triple store alongside the curated KG.
package xkg

import (
	"trinit/internal/ned"
	"trinit/internal/openie"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

// Document is one input text with a stable identifier used for provenance.
type Document struct {
	ID   string
	Text string
}

// Options control XKG construction.
type Options struct {
	// MinConf drops extractions whose extractor confidence is below the
	// threshold. Zero keeps everything.
	MinConf float64
	// MinRelPairs applies ReVerb's lexical constraint: relation phrases
	// occurring with fewer distinct argument pairs are dropped. Values
	// below 2 disable the filter.
	MinRelPairs int
	// LinkEntities enables NED on the subject and object phrases. When
	// a phrase links, the slot holds the canonical entity resource (as
	// in the paper's example, where "Einstein" becomes AlbertEinstein);
	// otherwise it stays a token phrase.
	LinkEntities bool
}

// DefaultOptions are sensible defaults for synthetic corpora.
func DefaultOptions() Options {
	return Options{MinConf: 0.3, MinRelPairs: 1, LinkEntities: true}
}

// Stats reports what the pipeline did.
type Stats struct {
	Documents   int
	Sentences   int
	Extractions int // raw extractor output
	Kept        int // after confidence and lexical filters
	LinkedSubj  int // subject phrases linked to KG entities
	LinkedObj   int // object phrases linked to KG entities
	Added       int // distinct token triples added to the store
}

// Build extracts token triples from docs and adds them to st. The linker
// may be nil when Options.LinkEntities is false. Build must be called
// before the store is frozen.
func Build(st *store.Store, linker *ned.Linker, docs []Document, opts Options) Stats {
	var stats Stats
	stats.Documents = len(docs)

	type located struct {
		ext openie.Extraction
		doc string
	}
	var all []located
	for _, doc := range docs {
		sents := openie.SplitSentences(doc.Text)
		stats.Sentences += len(sents)
		for _, sent := range sents {
			for _, e := range openie.ExtractSentence(sent) {
				all = append(all, located{ext: e, doc: doc.ID})
			}
		}
	}
	stats.Extractions = len(all)

	// Confidence filter first, then the corpus-level lexical filter
	// (ReVerb's constraint: keep relation phrases with enough distinct
	// argument pairs).
	var conf []located
	pairs := make(map[string]map[[2]string]bool)
	for _, l := range all {
		if l.ext.Conf < opts.MinConf {
			continue
		}
		conf = append(conf, l)
		e := l.ext
		if pairs[e.Rel] == nil {
			pairs[e.Rel] = make(map[[2]string]bool)
		}
		pairs[e.Rel][[2]string{e.Arg1, e.Arg2}] = true
	}

	before := st.Len()
	for _, l := range conf {
		if opts.MinRelPairs > 1 && len(pairs[l.ext.Rel]) < opts.MinRelPairs {
			continue
		}
		stats.Kept++
		e := l.ext
		prov := st.Prov().Add(rdf.Prov{Doc: l.doc, Sentence: e.Sentence})

		s := rdf.Token(e.Arg1)
		o := rdf.Token(e.Arg2)
		if opts.LinkEntities && linker != nil {
			if ent, _, ok := linker.Link(e.Arg1, e.Sentence); ok {
				s = st.Dict().Term(ent)
				stats.LinkedSubj++
			}
			if ent, _, ok := linker.Link(e.Arg2, e.Sentence); ok {
				o = st.Dict().Term(ent)
				stats.LinkedObj++
			}
		}
		st.AddFact(s, rdf.Token(e.Rel), o, rdf.SourceXKG, e.Conf, prov)
	}
	stats.Added = st.Len() - before
	return stats
}
