package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"trinit"
)

func testServer() *Server {
	return New(trinit.NewDemoEngine())
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/query?q="+escaped("AlbertEinstein hasAdvisor ?x"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Bindings["x"] != "AlfredKleiner" {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	if len(resp.Notices) == 0 {
		t.Error("no notices for inverted query")
	}
	if resp.Metrics.RewritesTotal == 0 {
		t.Error("metrics missing")
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s := testServer()
	if rec := get(t, s, "/api/query"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: status %d", rec.Code)
	}
	if rec := get(t, s, "/api/query?q="+escaped("broken ' query")); rec.Code != http.StatusBadRequest {
		t.Errorf("bad query: status %d", rec.Code)
	}
}

func TestCompleteEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/complete?prefix=Albert&limit=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var comps []trinit.Completion
	if err := json.Unmarshal(rec.Body.Bytes(), &comps); err != nil {
		t.Fatal(err)
	}
	if len(comps) == 0 || comps[0].Text != "AlbertEinstein" {
		t.Fatalf("completions = %v", comps)
	}
	if rec := get(t, s, "/api/complete"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing prefix: status %d", rec.Code)
	}
	// Unknown prefix returns an empty array, not null.
	rec = get(t, s, "/api/complete?prefix=Zzzz")
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("empty completions = %q", rec.Body.String())
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var stats trinit.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.KGTriples != 8 || stats.XKGTriples != 4 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRulesEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/rules")
	var rules []trinit.RuleSpec
	if err := json.Unmarshal(rec.Body.Bytes(), &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("rules = %d", len(rules))
	}

	// Add a user-defined rule via POST, as the demo supports.
	body := strings.NewReader(`{"id":"user1","rule":"?x diedIn ?y => ?x 'passed away in' ?y","weight":0.6}`)
	req := httptest.NewRequest(http.MethodPost, "/api/rules", body)
	recPost := httptest.NewRecorder()
	s.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusCreated {
		t.Fatalf("POST status = %d: %s", recPost.Code, recPost.Body)
	}
	rec = get(t, s, "/api/rules")
	if err := json.Unmarshal(rec.Body.Bytes(), &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("rules after POST = %d", len(rules))
	}

	// Invalid rule rejected.
	req = httptest.NewRequest(http.MethodPost, "/api/rules", strings.NewReader(`{"id":"bad","rule":"no arrow","weight":0.5}`))
	recPost = httptest.NewRecorder()
	s.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusBadRequest {
		t.Errorf("invalid rule POST status = %d", recPost.Code)
	}

	// Unsupported method.
	req = httptest.NewRequest(http.MethodPatch, "/api/rules", nil)
	recPost = httptest.NewRecorder()
	s.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusMethodNotAllowed {
		t.Errorf("PATCH status = %d", recPost.Code)
	}
}

func TestUserRuleAffectsQueries(t *testing.T) {
	s := testServer()
	// Before the custom rule, a 'housed in'-style query via a fresh
	// predicate yields nothing.
	rec := get(t, s, "/api/query?q="+escaped("IAS basedIn ?x"))
	var resp QueryResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if len(resp.Answers) != 0 {
		t.Fatalf("unexpected answers before rule: %+v", resp.Answers)
	}
	body := strings.NewReader(`{"id":"user-basedin","rule":"?x basedIn ?y => ?x 'housed in' ?y","weight":0.9}`)
	req := httptest.NewRequest(http.MethodPost, "/api/rules", body)
	recPost := httptest.NewRecorder()
	s.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusCreated {
		t.Fatalf("rule POST failed: %s", recPost.Body)
	}
	rec = get(t, s, "/api/query?q="+escaped("IAS basedIn ?x"))
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if len(resp.Answers) != 1 || resp.Answers[0].Bindings["x"] != "PrincetonUniversity" {
		t.Fatalf("answers after rule = %+v", resp.Answers)
	}
}

func TestIndexPage(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "TriniT") {
		t.Error("index page missing title")
	}
	if rec := get(t, s, "/nosuchpage"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}

func escaped(q string) string {
	r := strings.NewReplacer(" ", "%20", "'", "%27", "?", "%3F", "{", "%7B", "}", "%7D", ";", "%3B")
	return r.Replace(q)
}

func TestAskEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/ask?q="+escaped("Who was the advisor of Albert Einstein?"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp AskResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Translated != "AlbertEinstein hasAdvisor ?a" {
		t.Fatalf("translated = %q", resp.Translated)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Bindings["a"] != "AlfredKleiner" {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	if rec := get(t, s, "/api/ask"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: %d", rec.Code)
	}
	if rec := get(t, s, "/api/ask?q="+escaped("gibberish beyond templates")); rec.Code != http.StatusBadRequest {
		t.Errorf("untranslatable question: %d", rec.Code)
	}
}

func TestQueryTraceParam(t *testing.T) {
	s := testServer()
	q := escaped("AlbertEinstein hasAdvisor ?x")
	var resp QueryResponse
	rec := get(t, s, "/api/query?q="+q)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) != 0 {
		t.Fatalf("trace included without trace=1: %v", resp.Trace)
	}
	rec = get(t, s, "/api/query?trace=1&q="+q)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("trace missing with trace=1")
	}
}

func TestRuleDeletion(t *testing.T) {
	s := testServer()
	req := httptest.NewRequest(http.MethodDelete, "/api/rules?id=fig4-4", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE status = %d: %s", rec.Code, rec.Body)
	}
	var rules []trinit.RuleSpec
	recGet := get(t, s, "/api/rules")
	if err := json.Unmarshal(recGet.Body.Bytes(), &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules after delete = %d, want 3", len(rules))
	}
	// Deleting again: not found.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/rules?id=fig4-4", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("second DELETE status = %d", rec.Code)
	}
	// Missing id.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/rules", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("DELETE without id status = %d", rec.Code)
	}
}
