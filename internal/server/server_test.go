package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"trinit"
)

func testServer() *Server {
	return New(trinit.NewDemoEngine())
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/query?q="+escaped("AlbertEinstein hasAdvisor ?x"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Bindings["x"] != "AlfredKleiner" {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	if len(resp.Notices) == 0 {
		t.Error("no notices for inverted query")
	}
	if resp.Metrics.RewritesTotal == 0 {
		t.Error("metrics missing")
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s := testServer()
	if rec := get(t, s, "/api/query"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: status %d", rec.Code)
	}
	if rec := get(t, s, "/api/query?q="+escaped("broken ' query")); rec.Code != http.StatusBadRequest {
		t.Errorf("bad query: status %d", rec.Code)
	}
}

func TestQueryParallelismParam(t *testing.T) {
	s := testServer()
	q := escaped("AlbertEinstein hasAdvisor ?x")
	serial := get(t, s, "/api/query?q="+q)
	if serial.Code != http.StatusOK {
		t.Fatalf("serial status = %d: %s", serial.Code, serial.Body)
	}
	var want QueryResponse
	if err := json.Unmarshal(serial.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	for _, ps := range []string{"2", "8", "max"} {
		rec := get(t, s, "/api/query?q="+q+"&parallelism="+ps)
		if rec.Code != http.StatusOK {
			t.Fatalf("parallelism=%s: status = %d: %s", ps, rec.Code, rec.Body)
		}
		var resp QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != len(want.Answers) {
			t.Fatalf("parallelism=%s: %d answers, serial %d", ps, len(resp.Answers), len(want.Answers))
		}
		for i := range resp.Answers {
			if resp.Answers[i].Score != want.Answers[i].Score ||
				resp.Answers[i].Bindings["x"] != want.Answers[i].Bindings["x"] {
				t.Fatalf("parallelism=%s: answer %d differs from serial", ps, i)
			}
		}
	}
	for _, bad := range []string{"0", "-1", "two", "1.5"} {
		if rec := get(t, s, "/api/query?q="+q+"&parallelism="+bad); rec.Code != http.StatusBadRequest {
			t.Errorf("parallelism=%s: status %d, want 400", bad, rec.Code)
		}
	}
}

func TestCompleteEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/complete?prefix=Albert&limit=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var comps []trinit.Completion
	if err := json.Unmarshal(rec.Body.Bytes(), &comps); err != nil {
		t.Fatal(err)
	}
	if len(comps) == 0 || comps[0].Text != "AlbertEinstein" {
		t.Fatalf("completions = %v", comps)
	}
	if rec := get(t, s, "/api/complete"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing prefix: status %d", rec.Code)
	}
	// Unknown prefix returns an empty array, not null.
	rec = get(t, s, "/api/complete?prefix=Zzzz")
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("empty completions = %q", rec.Body.String())
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var stats trinit.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.KGTriples != 8 || stats.XKGTriples != 4 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRulesEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/rules")
	var rules []trinit.RuleSpec
	if err := json.Unmarshal(rec.Body.Bytes(), &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("rules = %d", len(rules))
	}

	// Add a user-defined rule via POST, as the demo supports.
	body := strings.NewReader(`{"id":"user1","rule":"?x diedIn ?y => ?x 'passed away in' ?y","weight":0.6}`)
	req := httptest.NewRequest(http.MethodPost, "/api/rules", body)
	recPost := httptest.NewRecorder()
	s.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusCreated {
		t.Fatalf("POST status = %d: %s", recPost.Code, recPost.Body)
	}
	rec = get(t, s, "/api/rules")
	if err := json.Unmarshal(rec.Body.Bytes(), &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("rules after POST = %d", len(rules))
	}

	// Invalid rule rejected.
	req = httptest.NewRequest(http.MethodPost, "/api/rules", strings.NewReader(`{"id":"bad","rule":"no arrow","weight":0.5}`))
	recPost = httptest.NewRecorder()
	s.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusBadRequest {
		t.Errorf("invalid rule POST status = %d", recPost.Code)
	}

	// Unsupported method.
	req = httptest.NewRequest(http.MethodPatch, "/api/rules", nil)
	recPost = httptest.NewRecorder()
	s.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusMethodNotAllowed {
		t.Errorf("PATCH status = %d", recPost.Code)
	}
}

func TestUserRuleAffectsQueries(t *testing.T) {
	s := testServer()
	// Before the custom rule, a 'housed in'-style query via a fresh
	// predicate yields nothing.
	rec := get(t, s, "/api/query?q="+escaped("IAS basedIn ?x"))
	var resp QueryResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if len(resp.Answers) != 0 {
		t.Fatalf("unexpected answers before rule: %+v", resp.Answers)
	}
	body := strings.NewReader(`{"id":"user-basedin","rule":"?x basedIn ?y => ?x 'housed in' ?y","weight":0.9}`)
	req := httptest.NewRequest(http.MethodPost, "/api/rules", body)
	recPost := httptest.NewRecorder()
	s.ServeHTTP(recPost, req)
	if recPost.Code != http.StatusCreated {
		t.Fatalf("rule POST failed: %s", recPost.Body)
	}
	rec = get(t, s, "/api/query?q="+escaped("IAS basedIn ?x"))
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if len(resp.Answers) != 1 || resp.Answers[0].Bindings["x"] != "PrincetonUniversity" {
		t.Fatalf("answers after rule = %+v", resp.Answers)
	}
}

func TestIndexPage(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "TriniT") {
		t.Error("index page missing title")
	}
	if rec := get(t, s, "/nosuchpage"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}

func escaped(q string) string {
	r := strings.NewReplacer(" ", "%20", "'", "%27", "?", "%3F", "{", "%7B", "}", "%7D", ";", "%3B")
	return r.Replace(q)
}

func TestAskEndpoint(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/ask?q="+escaped("Who was the advisor of Albert Einstein?"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp AskResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Translated != "AlbertEinstein hasAdvisor ?a" {
		t.Fatalf("translated = %q", resp.Translated)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Bindings["a"] != "AlfredKleiner" {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	if rec := get(t, s, "/api/ask"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: %d", rec.Code)
	}
	if rec := get(t, s, "/api/ask?q="+escaped("gibberish beyond templates")); rec.Code != http.StatusBadRequest {
		t.Errorf("untranslatable question: %d", rec.Code)
	}
}

func TestQueryTraceParam(t *testing.T) {
	s := testServer()
	q := escaped("AlbertEinstein hasAdvisor ?x")
	var resp QueryResponse
	rec := get(t, s, "/api/query?q="+q)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) != 0 {
		t.Fatalf("trace included without trace=1: %v", resp.Trace)
	}
	rec = get(t, s, "/api/query?trace=1&q="+q)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("trace missing with trace=1")
	}
}

func TestRuleDeletion(t *testing.T) {
	s := testServer()
	req := httptest.NewRequest(http.MethodDelete, "/api/rules?id=fig4-4", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE status = %d: %s", rec.Code, rec.Body)
	}
	var rules []trinit.RuleSpec
	recGet := get(t, s, "/api/rules")
	if err := json.Unmarshal(recGet.Body.Bytes(), &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules after delete = %d, want 3", len(rules))
	}
	// Deleting again: not found.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/rules?id=fig4-4", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("second DELETE status = %d", rec.Code)
	}
	// Missing id.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/rules", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("DELETE without id status = %d", rec.Code)
	}
}

// sseEvent is one parsed Server-Sent Event block.
type sseEvent struct {
	name string
	data map[string]any
}

// parseSSE splits a text/event-stream body into its events.
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range strings.Split(strings.TrimSpace(body), "\n\n") {
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data); err != nil {
					t.Fatalf("bad event data %q: %v", line, err)
				}
			}
		}
		if ev.name == "" {
			t.Fatalf("event block without name: %q", block)
		}
		out = append(out, ev)
	}
	return out
}

// TestServerQueryStream is the SSE contract: on a multi-rewrite demo
// query the stream delivers at least one provisional event, then the
// final ranked answers, and always terminates with a done event.
func TestServerQueryStream(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/query/stream?q="+escaped("AlbertEinstein hasAdvisor ?x"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	events := parseSSE(t, rec.Body.String())
	if len(events) < 3 {
		t.Fatalf("only %d events: %+v", len(events), events)
	}
	if last := events[len(events)-1]; last.name != "done" {
		t.Fatalf("terminal event = %q, want done", last.name)
	}
	order := map[string]int{"provisional": 0, "answer": 1, "done": 2}
	phase, provisional, answers := 0, 0, 0
	for i, ev := range events {
		p, ok := order[ev.name]
		if !ok {
			t.Fatalf("unknown event %q", ev.name)
		}
		if p < phase {
			t.Fatalf("event %d (%s) out of order", i, ev.name)
		}
		phase = p
		switch ev.name {
		case "provisional":
			provisional++
		case "answer":
			answers++
			if rank := int(ev.data["rank"].(float64)); rank != answers {
				t.Fatalf("answer rank = %d, want %d", rank, answers)
			}
		case "done":
			if i != len(events)-1 {
				t.Fatalf("done event at position %d of %d", i, len(events))
			}
			if int(ev.data["answers"].(float64)) != answers {
				t.Fatalf("done reports %v answers, stream had %d", ev.data["answers"], answers)
			}
			if _, hasErr := ev.data["error"]; hasErr {
				t.Fatalf("done event carries an error: %v", ev.data["error"])
			}
		}
	}
	if provisional == 0 {
		t.Fatal("no provisional event before done")
	}
	if answers == 0 {
		t.Fatal("no final answer events")
	}
}

func TestServerQueryStreamParseError(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/query/stream?q="+escaped("broken ' query"))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q, want a plain JSON error", ct)
	}
	rec = get(t, s, "/api/query/stream")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing q: status = %d, want 400", rec.Code)
	}
}

// TestServerErrorStatusMapping pins the typed-error → HTTP status map:
// parse errors stay 400, an unfrozen engine is 503 (not ready), and the
// per-request timeout degrades to a 200 partial result, not an error.
func TestServerErrorStatusMapping(t *testing.T) {
	if rec := get(t, testServer(), "/api/query?q="+escaped("broken ' query")); rec.Code != http.StatusBadRequest {
		t.Fatalf("parse error status = %d, want 400", rec.Code)
	}
	unfrozen := New(trinit.New(nil))
	if rec := get(t, unfrozen, "/api/query?q="+escaped("?x bornIn ?y")); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unfrozen engine status = %d, want 503", rec.Code)
	}
	if rec := get(t, unfrozen, "/api/ask?q="+escaped("Who advised Einstein?")); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unfrozen engine ask status = %d, want 503", rec.Code)
	}

	rec := get(t, testServer(), "/api/query?timeout=1ns&q="+escaped("?x ?p ?y"))
	if rec.Code != http.StatusOK {
		t.Fatalf("timed-out query status = %d, want 200 with partial flag", rec.Code)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Fatal("timed-out query response not marked partial")
	}

	// /api/ask degrades identically on its timeout parameter.
	rec = get(t, testServer(), "/api/ask?timeout=1ns&q="+escaped("Who was the advisor of Albert Einstein?"))
	if rec.Code != http.StatusOK {
		t.Fatalf("timed-out ask status = %d, want 200 with partial flag", rec.Code)
	}
	var ask AskResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ask); err != nil {
		t.Fatal(err)
	}
	if !ask.Partial {
		t.Fatal("timed-out ask response not marked partial")
	}
}

// TestServerQueryParams covers the per-query option parameters.
func TestServerQueryParams(t *testing.T) {
	s := testServer()
	rec := get(t, s, "/api/query?k=1&q="+escaped("?x ?p ?y"))
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("k=1 returned %d answers", len(resp.Answers))
	}
	rec = get(t, s, "/api/query?explain=0&q="+escaped("AlbertEinstein hasAdvisor ?x"))
	resp = QueryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("no answers")
	}
	for i, a := range resp.Answers {
		if a.Explanation.Text != "" {
			t.Fatalf("answer %d carries an explanation under explain=0", i)
		}
	}
	rec = get(t, s, "/api/query?mode=exhaustive&q="+escaped("AlbertEinstein hasAdvisor ?x"))
	resp = QueryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Metrics.RewritesSkipped != 0 {
		t.Fatalf("exhaustive mode skipped %d rewrites", resp.Metrics.RewritesSkipped)
	}

	// Malformed option values are rejected, not silently dropped.
	for _, path := range []string{
		"/api/query?k=abc&q=" + escaped("?x ?p ?y"),
		"/api/query?k=0&q=" + escaped("?x ?p ?y"),
		"/api/query?timeout=500&q=" + escaped("?x ?p ?y"), // missing unit
		"/api/query?mode=Exhaustive&q=" + escaped("?x ?p ?y"),
		"/api/query/stream?timeout=oops&q=" + escaped("?x ?p ?y"),
		"/api/ask?k=-1&q=" + escaped("Who advised Einstein?"),
	} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, rec.Code)
		}
	}
}
