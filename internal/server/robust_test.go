package server

// Serving-under-load contract at the HTTP layer: liveness/readiness
// probes, Prometheus metrics, 429 + Retry-After on admission shed,
// budget degradation to 200 + partial, and the SSE client-disconnect
// regression (a dropped stream consumer must cancel the underlying
// query, not leave it evaluating for a reader that is gone). Run with
// -race; CI gates on these tests by name.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"trinit"
	"trinit/internal/faultinject"
)

func TestHealthzAlwaysOK(t *testing.T) {
	if rec := get(t, testServer(), "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz on a frozen engine: %d", rec.Code)
	}
	// Liveness is not readiness: an unfrozen engine is alive too.
	unfrozen := New(trinit.New(nil))
	if rec := get(t, unfrozen, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz on an unfrozen engine: %d", rec.Code)
	}
}

func TestReadyzTracksEngineState(t *testing.T) {
	if rec := get(t, testServer(), "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz on a frozen engine: %d", rec.Code)
	}
	unfrozen := New(trinit.New(nil))
	rec := get(t, unfrozen, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on an unfrozen engine: %d, want 503", rec.Code)
	}
	// "not frozen" must not be conflated with "loading": the engine
	// exists, it just cannot answer queries yet.
	if body := strings.TrimSpace(rec.Body.String()); body != "not frozen" {
		t.Fatalf("readyz body on an unfrozen engine = %q, want %q", body, "not frozen")
	}
}

// TestLoadingStateUntilPublish: a NewLoading server distinguishes
// "still recovering from disk" from every other unready state — probes
// answer, API traffic gets 503 + Retry-After — and flips atomically to
// serving when the engine is published.
func TestLoadingStateUntilPublish(t *testing.T) {
	s := NewLoading()

	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz while loading: %d", rec.Code)
	}
	rec := get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while loading: %d, want 503", rec.Code)
	}
	if body := strings.TrimSpace(rec.Body.String()); body != "loading" {
		t.Fatalf("readyz body while loading = %q, want %q", body, "loading")
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("readyz while loading: missing Retry-After")
	}
	for _, path := range []string{
		"/api/query?q=" + escaped("AlbertEinstein hasAdvisor ?x"),
		"/api/stats",
		"/api/rules",
	} {
		rec := get(t, s, path)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s while loading: %d, want 503", path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s while loading: missing Retry-After", path)
		}
	}
	if rec := get(t, s, "/metrics"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("metrics while loading: %d, want 503", rec.Code)
	}

	s.Publish(trinit.NewDemoEngine())
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after publish: %d", rec.Code)
	}
	if rec := get(t, s, "/api/query?q="+escaped("AlbertEinstein hasAdvisor ?x")); rec.Code != http.StatusOK {
		t.Fatalf("query after publish: %d", rec.Code)
	}
}

// TestMetricsEndpoint: the Prometheus text exposition carries the
// serving counters and they move with traffic.
func TestMetricsEndpoint(t *testing.T) {
	e := trinit.NewDemoEngine()
	s := New(e)
	if rec := get(t, s, "/api/query?q="+escaped("AlbertEinstein hasAdvisor ?x")); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"trinit_queries_total 1",
		"trinit_queries_in_flight 0",
		"trinit_queries_shed_total 0",
		"trinit_budget_exhausted_total 0",
		"trinit_panics_recovered_total 0",
		"trinit_admission_capacity 0",
		"trinit_cache_hits_total",
		"trinit_store_triples",
		"# TYPE trinit_queries_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "trinit_shards") {
		t.Fatal("unsharded engine exposes shard metrics")
	}
}

// TestMetricsEndpointSharded: a sharded engine additionally exposes the
// partitioning gauges — per-shard triple counts under a shard label —
// and the coordinator counters, and they move with traffic.
func TestMetricsEndpointSharded(t *testing.T) {
	e := trinit.NewDemoEngine()
	if err := e.Reshard(2); err != nil {
		t.Fatal(err)
	}
	s := New(e)
	if rec := get(t, s, "/api/query?q="+escaped("AlbertEinstein hasAdvisor ?x")); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"trinit_shards 2",
		`trinit_shard_triples{shard="0"}`,
		`trinit_shard_triples{shard="1"}`,
		`trinit_shard_owned_triples{shard="0"}`,
		"trinit_shard_skew",
		"trinit_shard_replicated_predicates",
		"trinit_sharded_queries_total 1",
		"trinit_bound_broadcasts_total",
		"trinit_cross_shard_prunes_total",
		"trinit_residual_rewrites_total",
		"trinit_shard_merge_seconds_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("sharded metrics missing %q:\n%s", want, body)
		}
	}
}

// holdQuery parks the next engine evaluations on the returned channel
// and reports (via entered) when the first one is inside the engine.
func holdQuery(t *testing.T) (hold chan struct{}, entered chan struct{}) {
	t.Helper()
	hold = make(chan struct{})
	entered = make(chan struct{}, 16)
	s := faultinject.NewScript().CallOn(faultinject.SiteRewriteEval, "", 0, func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	})
	s.Install()
	t.Cleanup(faultinject.Clear)
	return hold, entered
}

// TestOverloadSheds429WithRetryAfter: with one query running and one
// queued, a third is shed as 429 with a Retry-After hint, readiness
// flips to 503, and the shed counter shows in /metrics.
func TestOverloadSheds429WithRetryAfter(t *testing.T) {
	e := trinit.NewDemoEngine()
	e.SetAdmissionControl(1, 1)
	s := New(e)
	hold, entered := holdQuery(t)

	first := make(chan int, 1)
	go func() { first <- get(t, s, "/api/query?q="+escaped("AlbertEinstein hasAdvisor ?x")).Code }()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first query never started evaluating")
	}
	second := make(chan int, 1)
	go func() { second <- get(t, s, "/api/query?q="+escaped("?x bornIn Germany")).Code }()
	deadline := time.Now().Add(5 * time.Second)
	for e.ServingStats().Admission.Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if rec := get(t, s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while saturated = %d, want 503", rec.Code)
	}
	rec := get(t, s, "/api/query?q="+escaped("AlbertEinstein hasAdvisor ?x"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed query status = %d, want 429: %s", rec.Code, rec.Body)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", rec.Header().Get("Retry-After"))
	}

	close(hold)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("held query status = %d", code)
	}
	if code := <-second; code != http.StatusOK {
		t.Fatalf("queued query status = %d", code)
	}
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after drain = %d, want 200", rec.Code)
	}
	if !strings.Contains(get(t, s, "/metrics").Body.String(), "trinit_queries_shed_total 1") {
		t.Fatal("shed not visible in /metrics")
	}
}

// syntheticTestServer wraps a synthetic-world engine — the demo world
// is too small for any budget to trip — in a fresh server.
func syntheticTestServer(t *testing.T) (*Server, *trinit.Engine) {
	t.Helper()
	e, _, err := trinit.NewSyntheticEngine(trinit.DefaultSyntheticConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return New(e), e
}

// expensiveQ is a two-hop open join over the synthetic world: thousands
// of join branches, so a budget of one branch always trips.
const expensiveQ = "?x ?p ?y . ?y ?q ?z"

// TestBudgetParamDegradesTo200Partial: the budget=<n> query parameter
// degrades an expensive query into 200 + partial with
// partial_reason=budget — overload never masquerades as failure to a
// connected client.
func TestBudgetParamDegradesTo200Partial(t *testing.T) {
	s, _ := syntheticTestServer(t)
	rec := get(t, s, "/api/query?budget=1&mode=exhaustive&q="+escaped(expensiveQ))
	if rec.Code != http.StatusOK {
		t.Fatalf("budgeted query status = %d, want 200: %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"partial":true`) {
		t.Fatalf("budgeted response not partial: %s", body)
	}
	if !strings.Contains(body, `"partial_reason":"budget"`) {
		t.Fatalf("budgeted response missing partial_reason: %s", body)
	}
	if rec := get(t, s, "/api/query?budget=oops&q="+escaped("?x ?p ?y")); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed budget status = %d, want 400", rec.Code)
	}
	if !strings.Contains(get(t, s, "/metrics").Body.String(), "trinit_budget_exhausted_total 1") {
		t.Fatal("budget exhaustion not visible in /metrics")
	}
}

// TestStreamBudgetDoneEvent: on the SSE endpoint a budget-degraded
// query still terminates with a done event marked partial.
func TestStreamBudgetDoneEvent(t *testing.T) {
	s, _ := syntheticTestServer(t)
	rec := get(t, s, "/api/query/stream?budget=1&mode=exhaustive&q="+escaped(expensiveQ))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	events := parseSSE(t, rec.Body.String())
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("terminal event = %q, want done", last.name)
	}
	if last.data["partial"] != true {
		t.Fatalf("done event not partial: %v", last.data)
	}
	if last.data["partial_reason"] != "budget" {
		t.Fatalf("done partial_reason = %v, want budget", last.data["partial_reason"])
	}
}

// TestStreamClientDisconnectCancelsQuery is the disconnect regression:
// a client that drops an SSE stream mid-query must cancel the
// underlying evaluation. The first rewrite evaluation parks on a
// channel while the client disconnects; after release, cancellation
// must stop the query at the next poll — proven by the injection
// counter: exactly one rewrite evaluation ever started, where the
// fault-free query evaluates two.
func TestStreamClientDisconnectCancelsQuery(t *testing.T) {
	e := trinit.NewDemoEngine()
	s := New(e)
	srv := httptest.NewServer(s)
	defer srv.Close()

	hold := make(chan struct{})
	entered := make(chan struct{}, 16)
	script := faultinject.NewScript().CallOn(faultinject.SiteRewriteEval, "", 0, func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	})
	defer script.Install()()

	// The demo advisor query evaluates 2 rewrites fault-free.
	const streamQ = "AlbertEinstein hasAdvisor ?x"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/api/query/stream?mode=exhaustive&q="+escaped(streamQ), nil)
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("stream query never started evaluating")
	}
	if got := e.ServingStats().InFlight; got != 1 {
		t.Fatalf("InFlight = %d with an open stream, want 1", got)
	}

	// Drop the client, give the server time to observe the closed
	// connection and cancel r.Context(), then release the evaluation.
	cancel()
	<-clientDone
	time.Sleep(250 * time.Millisecond)
	close(hold)

	deadline := time.Now().Add(5 * time.Second)
	for e.ServingStats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight = %d long after client disconnect", e.ServingStats().InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fired := script.Fired(faultinject.SiteRewriteEval, ""); fired != 1 {
		t.Fatalf("%d rewrite evaluations started after disconnect, want 1 (cancellation did not stop the query)", fired)
	}

	// The engine is still serviceable.
	faultinject.Clear()
	if rec := get(t, s, "/api/query?q="+escaped(streamQ)); rec.Code != http.StatusOK {
		t.Fatalf("post-disconnect query status = %d", rec.Code)
	}
}
