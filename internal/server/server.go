// Package server exposes a TriniT engine over HTTP with a small embedded
// demo UI — the reproduction of the §5 demonstration setting: posing mixed
// resource/token triple-pattern queries, browsing ranked answers with
// explanations, registering user-defined relaxation rules, and
// auto-completing input.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"trinit"
)

// Server wraps an engine with HTTP handlers. Handlers run concurrently —
// one goroutine per request, as net/http does by default — since the
// frozen engine's read path (Query, Ask, Complete, Stats) takes no
// engine-wide lock; concurrent requests share the match-list cache.
//
// The engine slot is an atomic pointer so the daemon can start its
// listener before recovery finishes: NewLoading serves probes (and 503s
// API traffic with a Retry-After) until Publish installs the recovered
// engine.
type Server struct {
	engine atomic.Pointer[trinit.Engine]
	mux    *http.ServeMux
}

// New builds a server around a frozen engine.
func New(e *trinit.Engine) *Server {
	s := NewLoading()
	s.Publish(e)
	return s
}

// NewLoading builds a server with no engine yet — the daemon's
// listen-first mode while Open replays the data directory. Until
// Publish, /healthz reports the process alive, /readyz reports
// "loading" with 503 + Retry-After, and API requests are rejected the
// same way.
func NewLoading() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("/api/ask", s.handleAsk)
	s.mux.HandleFunc("/api/complete", s.handleComplete)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/rules", s.handleRules)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", s.handleIndex)
	return s
}

// Publish installs the engine, atomically flipping the server from
// loading to serving. Requests already past the loading check keep the
// nil-engine 503 they were routed to; new ones see the engine.
func (s *Server) Publish(e *trinit.Engine) { s.engine.Store(e) }

// eng returns the published engine, or nil while loading. Handlers past
// the ServeHTTP loading gate may assume non-nil: the slot is write-once.
func (s *Server) eng() *trinit.Engine { return s.engine.Load() }

// errLoading is the 503 body served while recovery is still running.
var errLoading = errors.New("loading: the engine is still recovering from disk")

// ServeHTTP implements http.Handler. While no engine is published, only
// the operational endpoints and the UI pass through; API requests are
// told to come back (503 + Retry-After) rather than being conflated
// with "not frozen".
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.eng() == nil {
		switch r.URL.Path {
		case "/healthz", "/readyz", "/metrics", "/":
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errLoading)
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// StatusClientClosedRequest is the nginx-convention status for requests
// abandoned by the client before the engine finished; there is no
// standard-library constant for 499.
const StatusClientClosedRequest = 499

// statusFor maps the engine's typed sentinel errors to HTTP status
// codes; the engine only ever surfaces input-shaped failures beyond
// these, so the fallback is 400 rather than a blanket 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, trinit.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, trinit.ErrInternal):
		return http.StatusInternalServerError
	case errors.Is(err, trinit.ErrParse):
		return http.StatusBadRequest
	case errors.Is(err, trinit.ErrNotFrozen):
		return http.StatusServiceUnavailable
	case errors.Is(err, trinit.ErrFrozen):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, trinit.ErrCanceled), errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, trinit.ErrBudgetExhausted):
		// Connected clients get 200 + partial (degradedPartial); this is
		// only reached when the client also went away mid-degradation.
		return StatusClientClosedRequest
	}
	return http.StatusBadRequest
}

// writeQueryError reports a failed query, attaching a Retry-After hint
// (the admission controller's predicted wait, at least 1s) when the
// engine shed the query under load.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		retry := time.Second
		if avg := s.eng().ServingStats().Admission.AvgWait; avg > retry {
			retry = avg.Round(time.Second)
		}
		secs := int(retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeError(w, status, err)
}

// degradedPartial reports whether an engine error should degrade to a
// 200 response with the partial flag instead of an error status: the
// query was cut short by its own timeout parameter or its cost budget
// while the client is still connected and a partial result is in hand.
func degradedPartial(r *http.Request, res *trinit.Result, err error) bool {
	if res == nil || r.Context().Err() != nil {
		return false
	}
	return errors.Is(err, trinit.ErrCanceled) || errors.Is(err, trinit.ErrBudgetExhausted)
}

// partialReason names why a degraded result is partial, for the
// response's partial_reason field: "budget" (cost budget exhausted) or
// "timeout" (the query's own deadline).
func partialReason(err error) string {
	switch {
	case errors.Is(err, trinit.ErrBudgetExhausted):
		return "budget"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case err != nil:
		return "canceled"
	}
	return ""
}

// queryOptions builds the per-query options from request parameters:
// k=<n> caps the answer count, timeout=<duration> bounds processing
// (e.g. 500ms; the request context still applies), mode=incremental|
// exhaustive overrides the engine strategy, parallelism=<n>|max sets
// how many workers evaluate the rewrite space concurrently (max = one
// per CPU; answers are byte-identical at every width), and explain=0
// skips eager explanation rendering. Malformed values are an error —
// silently dropping a mistyped timeout would run the query unbounded
// while the client believes its limit was applied.
func queryOptions(q url.Values) ([]trinit.QueryOption, error) {
	var opts []trinit.QueryOption
	if ks := q.Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad k parameter %q: want a positive integer", ks)
		}
		opts = append(opts, trinit.WithK(n))
	}
	if ts := q.Get("timeout"); ts != "" {
		d, err := time.ParseDuration(ts)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad timeout parameter %q: want a positive duration like 500ms", ts)
		}
		opts = append(opts, trinit.WithTimeout(d))
	}
	switch mode := q.Get("mode"); mode {
	case "":
	case "incremental":
		opts = append(opts, trinit.WithMode(trinit.ModeIncremental))
	case "exhaustive":
		opts = append(opts, trinit.WithMode(trinit.ModeExhaustive))
	default:
		return nil, fmt.Errorf("bad mode parameter %q: want incremental or exhaustive", mode)
	}
	if ps := q.Get("parallelism"); ps != "" {
		if ps == "max" {
			opts = append(opts, trinit.WithParallelism(0))
		} else if n, err := strconv.Atoi(ps); err == nil && n >= 1 {
			opts = append(opts, trinit.WithParallelism(n))
		} else {
			return nil, fmt.Errorf("bad parallelism parameter %q: want a positive integer or max", ps)
		}
	}
	if bs := q.Get("budget"); bs != "" {
		n, err := strconv.ParseInt(bs, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad budget parameter %q: want a positive join-branch count", bs)
		}
		opts = append(opts, trinit.WithBudget(trinit.Budget{JoinBranches: n}))
	}
	switch explain := q.Get("explain"); explain {
	case "", "1":
	case "0":
		opts = append(opts, trinit.WithoutExplanations())
	default:
		return nil, fmt.Errorf("bad explain parameter %q: want 0 or 1", explain)
	}
	return opts, nil
}

// QueryResponse is the JSON shape of /api/query.
type QueryResponse struct {
	Query       string              `json:"query"`
	Answers     []trinit.Answer     `json:"answers"`
	Notices     []trinit.Notice     `json:"notices,omitempty"`
	Suggestions []trinit.Suggestion `json:"suggestions,omitempty"`
	Metrics     trinit.Metrics      `json:"metrics"`
	// Partial marks a result cut short by the timeout or budget
	// parameter: the answers found before the cut, not the full top-k.
	Partial bool `json:"partial,omitempty"`
	// PartialReason names what cut the query short when Partial is set:
	// "timeout", "budget", or "canceled".
	PartialReason string `json:"partial_reason,omitempty"`
	// Trace is included when the request passes trace=1 (§5: internal
	// processing steps).
	Trace []trinit.TraceEntry `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	q := params.Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	opts, optErr := queryOptions(params)
	if optErr != nil {
		writeError(w, http.StatusBadRequest, optErr)
		return
	}
	wantTrace := params.Get("trace") == "1"
	if !wantTrace {
		// The trace is only serialized under trace=1; skip collecting
		// it at all on the common path.
		opts = append(opts, trinit.WithoutTrace())
	}
	res, err := s.eng().QueryContext(r.Context(), q, opts...)
	if err != nil && !degradedPartial(r, res, err) {
		s.writeQueryError(w, err)
		return
	}
	resp := QueryResponse{
		Query:       res.Query,
		Answers:     res.Answers,
		Notices:     res.Notices,
		Suggestions: res.Suggestions,
		Metrics:     res.Metrics,
		Partial:     res.Partial,
	}
	if res.Partial {
		resp.PartialReason = partialReason(err)
	}
	if wantTrace {
		resp.Trace = res.Trace
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamAnswer is the JSON payload of provisional and answer events on
// /api/query/stream.
type streamAnswer struct {
	Rank     int               `json:"rank,omitempty"`
	Bindings map[string]string `json:"bindings"`
	Score    float64           `json:"score"`
}

// streamDone is the JSON payload of the terminal done event.
type streamDone struct {
	Answers       int             `json:"answers"`
	Partial       bool            `json:"partial,omitempty"`
	PartialReason string          `json:"partial_reason,omitempty"`
	Error         string          `json:"error,omitempty"`
	Metrics       *trinit.Metrics `json:"metrics,omitempty"`
}

// handleQueryStream is /api/query/stream: Server-Sent Events over the
// engine's streaming query API. The stream carries zero or more
// `provisional` events (answers admitted into the running top-k), one
// `answer` event per final ranked answer, and always terminates with a
// `done` event — also on cancellation and partial results. Errors
// detected before the first event (e.g. parse errors) are reported as a
// plain JSON error with the proper status instead of a stream.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	q := params.Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	started := false
	sendEvent := func(event string, v any) error {
		if !started {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}

	// Stream events carry only rank/bindings/score, so eager explanation
	// rendering and trace collection would be pure waste on this
	// endpoint; clients that need provenance re-query with /api/query.
	opts, optErr := queryOptions(params)
	if optErr != nil {
		writeError(w, http.StatusBadRequest, optErr)
		return
	}
	opts = append(opts, trinit.WithoutExplanations(), trinit.WithoutTrace())
	res, err := s.eng().QueryStream(r.Context(), q, func(ev trinit.AnswerEvent) error {
		// A dropped client surfaces here before any doomed write: the
		// request context is cancelled by the server on disconnect, and
		// returning its error stops the underlying query at the
		// processor's next poll instead of evaluating — and buffering
		// events — for a reader that is gone.
		if err := r.Context().Err(); err != nil {
			return err
		}
		switch ev.Type {
		case trinit.EventProvisional, trinit.EventAnswer:
			return sendEvent(ev.Type.String(), streamAnswer{
				Rank:     ev.Rank,
				Bindings: ev.Answer.Bindings,
				Score:    ev.Answer.Score,
			})
		case trinit.EventDone:
			// Deferred below so the done payload can carry the final
			// answer count even on engine-side cancellation.
			return nil
		}
		return nil
	}, opts...)

	if err != nil && !started && !errors.Is(err, trinit.ErrCanceled) && !errors.Is(err, trinit.ErrBudgetExhausted) && !errors.Is(err, context.Canceled) {
		// Nothing streamed yet and not a mid-flight degradation:
		// report a plain error response with the right status.
		s.writeQueryError(w, err)
		return
	}
	done := streamDone{}
	if res != nil {
		done.Answers = len(res.Answers)
		done.Partial = res.Partial
		if res.Partial {
			done.PartialReason = partialReason(err)
		}
		m := res.Metrics
		done.Metrics = &m
	}
	if err != nil {
		done.Error = err.Error()
	}
	_ = sendEvent("done", done)
}

// AskResponse is the JSON shape of /api/ask: a QueryResponse plus the
// query the question was translated into.
type AskResponse struct {
	Question   string `json:"question"`
	Translated string `json:"translated"`
	QueryResponse
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	question := params.Get("q")
	if question == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	opts, optErr := queryOptions(params)
	if optErr != nil {
		writeError(w, http.StatusBadRequest, optErr)
		return
	}
	// The ask response never serializes a trace.
	opts = append(opts, trinit.WithoutTrace())
	res, translated, err := s.eng().AskContext(r.Context(), question, opts...)
	if err != nil && !degradedPartial(r, res, err) {
		s.writeQueryError(w, err)
		return
	}
	qr := QueryResponse{
		Query:       res.Query,
		Answers:     res.Answers,
		Notices:     res.Notices,
		Suggestions: res.Suggestions,
		Metrics:     res.Metrics,
		Partial:     res.Partial,
	}
	if res.Partial {
		qr.PartialReason = partialReason(err)
	}
	writeJSON(w, http.StatusOK, AskResponse{
		Question:      question,
		Translated:    translated,
		QueryResponse: qr,
	})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	if prefix == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing prefix parameter"))
		return
	}
	limit := 10
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if n, err := strconv.Atoi(ls); err == nil && n > 0 {
			limit = n
		}
	}
	comps := s.eng().Complete(prefix, limit)
	if comps == nil {
		comps = []trinit.Completion{}
	}
	writeJSON(w, http.StatusOK, comps)
}

// StatsResponse is the JSON shape of /api/stats: the XKG summary plus
// query-pipeline (match-list cache and planner) statistics. Embedding
// keeps the original flat field layout for existing clients.
type StatsResponse struct {
	trinit.Stats
	Cache trinit.CacheStats `json:"cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Stats: s.eng().Stats(),
		Cache: s.eng().CacheStats(),
	})
}

// ruleRequest is the POST body of /api/rules.
type ruleRequest struct {
	ID     string  `json:"id"`
	Rule   string  `json:"rule"`
	Weight float64 `json:"weight"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rules := s.eng().Rules()
		if rules == nil {
			rules = []trinit.RuleSpec{}
		}
		writeJSON(w, http.StatusOK, rules)
	case http.MethodPost:
		var req ruleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.eng().AddRule(req.ID, req.Rule, req.Weight); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "rule added"})
	case http.MethodDelete:
		id := r.URL.Query().Get("id")
		if id == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing id parameter"))
			return
		}
		if !s.eng().RemoveRule(id) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no rule with id %q", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "rule removed"})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

// indexHTML is the embedded demo UI: a query box with auto-completion, a
// rule editor, ranked answers with expandable explanations.
const indexHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>TriniT — Exploratory Querying of Extended Knowledge Graphs</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.5rem; }
textarea, input { width: 100%; font-family: ui-monospace, monospace; font-size: 0.95rem; padding: .4rem; box-sizing: border-box; }
button { margin-top: .5rem; padding: .4rem 1rem; }
.answer { border: 1px solid #ccc; border-radius: 6px; padding: .6rem .8rem; margin: .5rem 0; }
.score { color: #666; font-size: .85rem; }
pre { background: #f6f6f6; padding: .6rem; overflow-x: auto; font-size: .8rem; }
.notice { background: #fff8e0; border: 1px solid #e0d090; padding: .4rem .6rem; margin: .4rem 0; border-radius: 4px; }
.sugg { background: #e8f4ff; border: 1px solid #a8c8e8; padding: .4rem .6rem; margin: .4rem 0; border-radius: 4px; }
#completions { color: #555; font-size: .85rem; }
</style>
</head>
<body>
<h1>TriniT &mdash; exploratory querying of extended knowledge graphs</h1>
<p>Triple patterns, one per line or ';'-separated. Quoted strings are textual tokens,
bare names are KG resources, ?x are variables. Example:
<code>AlbertEinstein affiliation ?x ; ?x member IvyLeague</code></p>
<textarea id="q" rows="3">AlbertEinstein affiliation ?x ; ?x member IvyLeague</textarea>
<div id="completions"></div>
<button onclick="runQuery()">Run query</button>
<h2>Add relaxation rule</h2>
<input id="ruleid" placeholder="rule id">
<input id="ruletext" placeholder="?x affiliation ?y =&gt; ?x 'lectured at' ?y">
<input id="ruleweight" placeholder="weight (0..1)" value="0.7">
<button onclick="addRule()">Add rule</button>
<h2>Results</h2>
<div id="out"></div>
<script>
async function runQuery() {
  const q = document.getElementById('q').value;
  const res = await fetch('/api/query?q=' + encodeURIComponent(q));
  const data = await res.json();
  const out = document.getElementById('out');
  out.innerHTML = '';
  if (data.error) { out.textContent = 'error: ' + data.error; return; }
  (data.notices || []).forEach(n => {
    const d = document.createElement('div'); d.className = 'notice';
    d.textContent = n.Message; out.appendChild(d);
  });
  (data.suggestions || []).forEach(s => {
    const d = document.createElement('div'); d.className = 'sugg';
    d.textContent = 'suggestion: replace \'' + s.Token + '\' (' + s.Position + ') with ' + s.Resource;
    out.appendChild(d);
  });
  (data.answers || []).forEach(a => {
    const d = document.createElement('div'); d.className = 'answer';
    const b = Object.entries(a.Bindings).map(([k,v]) => '?' + k + ' = ' + v).join(', ');
    d.innerHTML = '<strong>' + b + '</strong> <span class="score">score ' +
      a.Score.toFixed(4) + '</span><details><summary>explanation</summary><pre>' +
      a.Explanation.Text.replace(/</g,'&lt;') + '</pre></details>';
    out.appendChild(d);
  });
  if (!(data.answers || []).length) out.textContent += 'no answers';
}
async function addRule() {
  const body = JSON.stringify({
    id: document.getElementById('ruleid').value,
    rule: document.getElementById('ruletext').value,
    weight: parseFloat(document.getElementById('ruleweight').value),
  });
  const res = await fetch('/api/rules', {method: 'POST', body});
  const data = await res.json();
  alert(data.error || data.status);
}
document.getElementById('q').addEventListener('input', async (ev) => {
  const text = ev.target.value;
  const word = text.split(/[\s;.{}]+/).pop();
  const el = document.getElementById('completions');
  if (!word || word.length < 2 || word.startsWith('?') || word.startsWith("'")) { el.textContent = ''; return; }
  const res = await fetch('/api/complete?prefix=' + encodeURIComponent(word) + '&limit=6');
  const comps = await res.json();
  el.textContent = comps.length ? 'complete: ' + comps.map(c => c.Text).join('  ') : '';
});
</script>
</body>
</html>
`
