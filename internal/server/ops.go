package server

// This file implements the operational endpoints of the daemon:
// liveness (/healthz), readiness (/readyz) and a Prometheus
// text-format /metrics rendering of the engine's serving, cache and
// store counters. The exposition format is hand-rendered — the
// counters are flat and the project carries no dependencies — following
// the text format's two-line contract (# HELP/# TYPE then samples).

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"trinit"
)

// handleHealthz is the liveness probe: the process is up and the
// handler loop is serving. It deliberately touches no engine state —
// an overloaded or not-yet-frozen engine is still alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 200 when the engine can usefully
// accept a query right now (frozen, and admission — when enabled — not
// saturated), 503 otherwise so load balancers steer traffic away. The
// body names the distinct cause — "loading" (recovery still replaying
// the data directory), "not frozen", or "saturated" — and 503s carry a
// Retry-After hint: a fixed second for loading/not-frozen, the
// admission queue's EWMA wait when saturated.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	e := s.eng()
	if e == nil {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "loading")
		return
	}
	state := e.ReadyState()
	if state != trinit.ReadyOK {
		retry := time.Second
		if state == trinit.ReadySaturated {
			if avg := e.ServingStats().Admission.AvgWait; avg > retry {
				retry = avg
			}
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Round(time.Second)/time.Second)))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, state.String())
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// metric writes one Prometheus sample with its HELP/TYPE preamble.
func metric(b *strings.Builder, name, typ, help string, value any) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
}

// handleMetrics renders the engine's counters in the Prometheus text
// exposition format: serving health (queries, sheds, budget
// exhaustions, recovered panics), admission state, match-list cache
// activity, and store size.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := s.eng()
	if e == nil {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "loading")
		return
	}
	serving := e.ServingStats()
	cache := e.CacheStats()
	stats := e.Stats()

	var b strings.Builder
	metric(&b, "trinit_queries_total", "counter",
		"Queries accepted for processing, including shed ones.", serving.QueriesTotal)
	metric(&b, "trinit_queries_in_flight", "gauge",
		"Queries currently evaluating.", serving.InFlight)
	metric(&b, "trinit_queries_shed_total", "counter",
		"Queries rejected by admission control.", serving.QueriesShed)
	metric(&b, "trinit_budget_exhausted_total", "counter",
		"Queries degraded to a partial result by cost-budget exhaustion.", serving.BudgetExhausted)
	metric(&b, "trinit_panics_recovered_total", "counter",
		"Evaluation panics recovered at the query or worker boundary.", serving.PanicsRecovered)

	adm := serving.Admission
	metric(&b, "trinit_admission_capacity", "gauge",
		"Total evaluation weight admission allows concurrently (0 = disabled).", adm.Capacity)
	metric(&b, "trinit_admission_in_use", "gauge",
		"Evaluation weight currently admitted.", adm.InUse)
	metric(&b, "trinit_admission_queued", "gauge",
		"Queries waiting for admission.", adm.Queued)
	metric(&b, "trinit_admission_admitted_total", "counter",
		"Queries admitted by the controller.", adm.Admitted)
	metric(&b, "trinit_admission_wait_seconds", "gauge",
		"EWMA of recent admission queue waits.", adm.AvgWait.Seconds())

	metric(&b, "trinit_cache_entries", "gauge",
		"Match lists currently cached.", cache.Entries)
	metric(&b, "trinit_cache_hits_total", "counter",
		"Match-list lookups served from the cache.", cache.Hits)
	metric(&b, "trinit_cache_misses_total", "counter",
		"Match-list lookups that built a new list.", cache.Misses)
	metric(&b, "trinit_cache_evictions_total", "counter",
		"Match lists evicted by the LRU cap.", cache.Evictions)
	metric(&b, "trinit_cache_singleflight_waits_total", "counter",
		"Lookups that waited on a concurrent build of the same pattern.", cache.SingleFlightWaits)
	metric(&b, "trinit_plans_computed_total", "counter",
		"Join-planner invocations.", cache.PlansComputed)
	metric(&b, "trinit_token_resolutions_total", "counter",
		"Distinct token resolutions built into the shared cache.", cache.TokenResolutions)

	metric(&b, "trinit_store_triples", "gauge",
		"Triples in the extended knowledge graph.", stats.Triples)
	metric(&b, "trinit_store_terms", "gauge",
		"Distinct terms in the dictionary.", stats.Terms)
	metric(&b, "trinit_rules", "gauge",
		"Registered relaxation rules.", stats.Rules)

	mem := e.MemoryStats()
	mapped := 0
	if mem.Mapped {
		mapped = 1
	}
	metric(&b, "trinit_segment_epoch", "gauge",
		"Snapshot epoch of the store version being served (0 = in-memory).", mem.Epoch)
	metric(&b, "trinit_segment_mapped", "gauge",
		"1 when the base segment serves zero-copy from a memory mapping.", mapped)
	metric(&b, "trinit_segment_mapped_bytes", "gauge",
		"Size of the memory-mapped base segment (0 = heap-resident).", mem.MappedBytes)
	metric(&b, "trinit_delta_triples", "gauge",
		"Live-ingest triples overlaid on the base segment.", mem.DeltaTriples)
	metric(&b, "trinit_delta_overrides", "gauge",
		"Higher-confidence live replacements of base facts in the overlay.", mem.DeltaOverrides)
	metric(&b, "trinit_compactions_total", "counter",
		"Delta-into-base folds since the engine started.", mem.Compactions)
	metric(&b, "trinit_pinned_versions", "gauge",
		"Retired store versions still pinned by in-flight queries or unreleased results.", mem.PinnedVersions)
	metric(&b, "trinit_ingested_facts_total", "counter",
		"Facts applied by live ingest since the engine started.", mem.IngestedFacts)

	if ss := e.ShardingStats(); ss.Shards > 0 {
		metric(&b, "trinit_shards", "gauge",
			"Shard count of the sharded execution group.", ss.Shards)
		fmt.Fprintf(&b, "# HELP trinit_shard_triples Triples held per shard, replicated copies included.\n# TYPE trinit_shard_triples gauge\n")
		for j, c := range ss.Triples {
			fmt.Fprintf(&b, "trinit_shard_triples{shard=%q} %d\n", strconv.Itoa(j), c)
		}
		fmt.Fprintf(&b, "# HELP trinit_shard_owned_triples Triples owned per shard by subject hash.\n# TYPE trinit_shard_owned_triples gauge\n")
		for j, c := range ss.Owned {
			fmt.Fprintf(&b, "trinit_shard_owned_triples{shard=%q} %d\n", strconv.Itoa(j), c)
		}
		metric(&b, "trinit_shard_skew", "gauge",
			"Ownership skew, max over mean owned triples (1.0 = balanced).", ss.Skew)
		metric(&b, "trinit_shard_replicated_predicates", "gauge",
			"Predicates replicated to every shard for join co-location.", ss.ReplicatedPreds)
		metric(&b, "trinit_sharded_queries_total", "counter",
			"Queries evaluated through the scatter-gather coordinator.", ss.ShardedQueries)
		metric(&b, "trinit_bound_broadcasts_total", "counter",
			"Bound-raising k-th-score exchanges between shards.", ss.BoundBroadcasts)
		metric(&b, "trinit_cross_shard_prunes_total", "counter",
			"Prune decisions taken against a bound another shard published.", ss.CrossShardPrunes)
		metric(&b, "trinit_residual_rewrites_total", "counter",
			"Rewrites evaluated on the coordinator's residual full-store run.", ss.ResidualRewrites)
		metric(&b, "trinit_shard_merge_seconds_total", "counter",
			"Cumulative wall-clock time merging per-shard rankings.", ss.MergeTime.Seconds())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
