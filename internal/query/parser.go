package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"trinit/internal/rdf"
)

// ParseError reports a syntax error with its byte offset in the input.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query parse error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses a query in the extended triple-pattern syntax.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses a query and panics on error; for tests and fixtures.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind uint8

const (
	tokIdent  tokKind = iota // bare word: resource name or keyword
	tokVar                   // ?name
	tokString                // 'quoted token phrase'
	tokNumber                // integer (for LIMIT)
	tokPunct                 // one of . ; { } ( )
	tokOp                    // comparison operator in FILTER
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		r := rune(input[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '.' || r == ';' || r == '{' || r == '}' || r == '(' || r == ')':
			toks = append(toks, token{tokPunct, string(r), i})
			i++
		case r == '<' || r == '>':
			op := string(r)
			if i+1 < n && input[i+1] == '=' {
				op += "="
			}
			toks = append(toks, token{tokOp, op, i})
			i += len(op)
		case r == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case r == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, &ParseError{i, "'!' must be followed by '='"}
			}
		case r == '?':
			start := i
			i++
			j := i
			for j < n && isIdentByte(input[j]) {
				j++
			}
			if j == i {
				return nil, &ParseError{start, "'?' must be followed by a variable name"}
			}
			toks = append(toks, token{tokVar, input[i:j], start})
			i = j
		case r == '\'' || r == '"':
			quote := input[i]
			start := i
			var text []byte
			j := i + 1
			for j < n && input[j] != quote {
				// Backslash escapes the next character, so token
				// phrases may embed quotes.
				if input[j] == '\\' && j+1 < n {
					j++
				}
				text = append(text, input[j])
				j++
			}
			if j >= n {
				return nil, &ParseError{start, "unterminated quoted token"}
			}
			toks = append(toks, token{tokString, string(text), start})
			i = j + 1
		case r >= '0' && r <= '9':
			j := i
			for j < n && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			// A digit run followed by identifier characters is part
			// of an identifier (e.g. a resource like 4thOfJuly).
			if j < n && isIdentByte(input[j]) {
				k := j
				for k < n && isIdentByte(input[k]) {
					k++
				}
				toks = append(toks, token{tokIdent, input[i:k], i})
				i = k
			} else {
				toks = append(toks, token{tokNumber, input[i:j], i})
				i = j
			}
		case isIdentByte(input[i]):
			j := i
			for j < n && isIdentByte(input[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, &ParseError{i, fmt.Sprintf("unexpected character %q", r)}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '-' || b == ':' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.isKeyword("select") {
		p.next()
		for p.cur().kind == tokVar {
			q.Projection = append(q.Projection, p.next().text)
		}
		if len(q.Projection) == 0 {
			return nil, &ParseError{p.cur().pos, "SELECT requires at least one ?variable"}
		}
		if !p.isKeyword("where") {
			return nil, &ParseError{p.cur().pos, "expected WHERE after SELECT clause"}
		}
		p.next()
		if t := p.cur(); t.kind != tokPunct || t.text != "{" {
			return nil, &ParseError{t.pos, "expected '{' after WHERE"}
		}
		p.next()
		if err := p.parsePatterns(q, true); err != nil {
			return nil, err
		}
	} else {
		if err := p.parsePatterns(q, false); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("limit") {
		kw := p.next()
		t := p.cur()
		if t.kind != tokNumber {
			return nil, &ParseError{kw.pos, "LIMIT requires an integer"}
		}
		p.next()
		k, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, &ParseError{t.pos, "invalid LIMIT value"}
		}
		q.Limit = k
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, &ParseError{t.pos, fmt.Sprintf("unexpected trailing input %q", t.text)}
	}
	return q, nil
}

// parsePatterns parses '.'- or ';'-separated triple patterns, consuming the
// closing '}' when braced is true.
func (p *parser) parsePatterns(q *Query, braced bool) error {
	for {
		if braced {
			if t := p.cur(); t.kind == tokPunct && t.text == "}" {
				p.next()
				return nil
			}
		}
		if p.isKeyword("filter") {
			f, err := p.parseFilter()
			if err != nil {
				return err
			}
			q.Filters = append(q.Filters, f)
			t := p.cur()
			if t.kind == tokPunct && (t.text == "." || t.text == ";") {
				p.next()
				continue
			}
			if braced {
				if t.kind == tokPunct && t.text == "}" {
					p.next()
					return nil
				}
				return &ParseError{t.pos, "expected '.', ';' or '}' after FILTER"}
			}
			return nil
		}
		pat, err := p.parsePattern()
		if err != nil {
			return err
		}
		q.Patterns = append(q.Patterns, pat)
		t := p.cur()
		if t.kind == tokPunct && (t.text == "." || t.text == ";") {
			p.next()
			continue
		}
		if braced {
			if t.kind == tokPunct && t.text == "}" {
				p.next()
				return nil
			}
			return &ParseError{t.pos, "expected '.', ';' or '}' after triple pattern"}
		}
		return nil
	}
}

func (p *parser) parsePattern() (Pattern, error) {
	s, err := p.parseSlot("subject")
	if err != nil {
		return Pattern{}, err
	}
	pr, err := p.parseSlot("predicate")
	if err != nil {
		return Pattern{}, err
	}
	o, err := p.parseSlot("object")
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{S: s, P: pr, O: o}, nil
}

func (p *parser) parseSlot(role string) (Slot, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.next()
		return Variable(t.text), nil
	case tokIdent:
		p.next()
		return Bound(rdf.Resource(t.text)), nil
	case tokString:
		p.next()
		if strings.TrimSpace(t.text) == "" {
			return Slot{}, &ParseError{t.pos, "empty quoted token"}
		}
		return Bound(rdf.Token(t.text)), nil
	case tokNumber:
		p.next()
		return Bound(rdf.Literal(t.text)), nil
	default:
		return Slot{}, &ParseError{t.pos, fmt.Sprintf("expected %s term, found %q", role, t.text)}
	}
}

// parseFilter parses FILTER ( ?var OP value ), where value is a variable,
// a quoted string, a number, or a bare identifier.
func (p *parser) parseFilter() (Filter, error) {
	kw := p.next() // consume FILTER
	if t := p.cur(); t.kind != tokPunct || t.text != "(" {
		return Filter{}, &ParseError{kw.pos, "expected '(' after FILTER"}
	}
	p.next()
	lhs := p.cur()
	if lhs.kind != tokVar {
		return Filter{}, &ParseError{lhs.pos, "FILTER requires a ?variable on the left"}
	}
	p.next()
	op := p.cur()
	if op.kind != tokOp {
		return Filter{}, &ParseError{op.pos, "expected comparison operator in FILTER"}
	}
	p.next()
	f := Filter{Var: lhs.text, Op: op.text}
	rhs := p.cur()
	switch rhs.kind {
	case tokVar:
		f.RHSVar = rhs.text
	case tokString:
		f.Value = rdf.Literal(rhs.text)
	case tokNumber:
		f.Value = rdf.Literal(rhs.text)
	case tokIdent:
		f.Value = rdf.Resource(rhs.text)
	default:
		return Filter{}, &ParseError{rhs.pos, "expected value or ?variable in FILTER"}
	}
	p.next()
	if t := p.cur(); t.kind != tokPunct || t.text != ")" {
		return Filter{}, &ParseError{t.pos, "expected ')' to close FILTER"}
	}
	p.next()
	return f, nil
}
