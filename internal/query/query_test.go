package query

import (
	"strings"
	"testing"

	"trinit/internal/rdf"
)

func TestParseShorthandSinglePattern(t *testing.T) {
	// User A's query from Figure 2.
	q, err := Parse("?x bornIn Germany")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 {
		t.Fatalf("got %d patterns", len(q.Patterns))
	}
	p := q.Patterns[0]
	if !p.S.IsVar() || p.S.Var != "x" {
		t.Errorf("S = %+v, want ?x", p.S)
	}
	if p.P.IsVar() || p.P.Term != rdf.Resource("bornIn") {
		t.Errorf("P = %+v", p.P)
	}
	if p.O.Term != rdf.Resource("Germany") {
		t.Errorf("O = %+v", p.O)
	}
	if got := q.ProjectedVars(); len(got) != 1 || got[0] != "x" {
		t.Errorf("ProjectedVars = %v", got)
	}
}

func TestParseJoinQueryWithSemicolon(t *testing.T) {
	// User C's query from Figure 2.
	q, err := Parse("AlbertEinstein affiliation ?x ; ?x member IvyLeague")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("got %d patterns, want 2", len(q.Patterns))
	}
	if q.Patterns[1].S.Var != "x" {
		t.Errorf("join variable lost: %+v", q.Patterns[1])
	}
}

func TestParseTokenPattern(t *testing.T) {
	// The §2 example: AlbertEinstein 'won nobel for' ?x.
	q, err := Parse("AlbertEinstein 'won nobel for' ?x")
	if err != nil {
		t.Fatal(err)
	}
	p := q.Patterns[0]
	if p.P.Term.Kind != rdf.KindToken || p.P.Term.Text != "won nobel for" {
		t.Fatalf("P = %+v, want token 'won nobel for'", p.P)
	}
}

func TestParseDoubleQuotes(t *testing.T) {
	q, err := Parse(`?x "lectured at" PrincetonUniversity`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].P.Term.Kind != rdf.KindToken {
		t.Fatal("double-quoted phrase not parsed as token")
	}
}

func TestParseSelectWhereLimit(t *testing.T) {
	q, err := Parse("SELECT ?x WHERE { AlbertEinstein affiliation ?y . ?y 'housed in' ?x } LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 1 || q.Projection[0] != "x" {
		t.Fatalf("Projection = %v", q.Projection)
	}
	if q.Limit != 5 {
		t.Fatalf("Limit = %d", q.Limit)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("Patterns = %d", len(q.Patterns))
	}
	if got := q.Vars(); len(got) != 2 || got[0] != "y" || got[1] != "x" {
		t.Fatalf("Vars = %v", got)
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse("select ?x where { ?x bornIn Ulm } limit 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 3 || len(q.Projection) != 1 {
		t.Fatalf("parsed: %+v", q)
	}
}

func TestParseNumberLiteralObject(t *testing.T) {
	q, err := Parse("?x population 120000")
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].O.Term != rdf.Literal("120000") {
		t.Fatalf("O = %+v, want literal 120000", q.Patterns[0].O)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		in     string
		substr string
	}{
		{"", "expected subject term"},
		{"?x bornIn", "expected object term"},
		{"?x bornIn 'unclosed", "unterminated"},
		{"? bornIn Ulm", "variable name"},
		{"SELECT WHERE { ?x p ?y }", "at least one ?variable"},
		{"SELECT ?x { ?x p ?y }", "expected WHERE"},
		{"SELECT ?x WHERE ?x p ?y", "expected '{'"},
		{"SELECT ?x WHERE { ?x p ?y", "expected '.', ';' or '}'"},
		{"SELECT ?z WHERE { ?x p ?y }", "does not occur in any pattern"},
		{"?x p ?y LIMIT", "requires an integer"},
		{"?x p ?y trailing garbage here", "unexpected trailing"},
		{"?x p ''", "empty quoted token"},
		{"?x p ?y @", "unexpected character"},
	}
	for _, tc := range tests {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.in, tc.substr)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.in, err, tc.substr)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("?x bornIn 'unclosed")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if pe.Pos != 10 {
		t.Errorf("Pos = %d, want 10", pe.Pos)
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		"?x bornIn Germany",
		"AlbertEinstein 'won nobel for' ?x",
		"SELECT ?x WHERE { AlbertEinstein affiliation ?y . ?y 'housed in' ?x } LIMIT 5",
		"AlbertEinstein affiliation ?x ; ?x member IvyLeague",
	}
	for _, in := range inputs {
		q1 := MustParse(in)
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-parse of %q (%q) failed: %v", in, q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed query: %q -> %q", q1.String(), q2.String())
		}
	}
}

func TestVarsDeduplicated(t *testing.T) {
	q := MustParse("?x knows ?y . ?y knows ?x . ?x ?p ?y")
	got := q.Vars()
	if len(got) != 3 {
		t.Fatalf("Vars = %v, want x, y, p", got)
	}
	if got[0] != "x" || got[1] != "y" || got[2] != "p" {
		t.Fatalf("Vars order = %v", got)
	}
}

func TestPatternVars(t *testing.T) {
	q := MustParse("?x ?p ?x")
	got := q.Patterns[0].Vars()
	if len(got) != 2 || got[0] != "x" || got[1] != "p" {
		t.Fatalf("Pattern.Vars = %v", got)
	}
}

func TestValidateNegativeLimit(t *testing.T) {
	q := &Query{Patterns: []Pattern{{S: Variable("x"), P: Bound(rdf.Resource("p")), O: Variable("y")}}, Limit: -1}
	if err := q.Validate(); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse("SELECT ?x WHERE { ?x bornIn Ulm }")
	c := q.Clone()
	c.Patterns[0].P = Bound(rdf.Resource("diedIn"))
	c.Projection[0] = "changed"
	if q.Patterns[0].P.Term.Text != "bornIn" || q.Projection[0] != "x" {
		t.Fatal("Clone shares state with original")
	}
}

func TestSlotString(t *testing.T) {
	if got := Variable("x").String(); got != "?x" {
		t.Errorf("var String = %q", got)
	}
	if got := Bound(rdf.Token("won nobel")).String(); got != "'won nobel'" {
		t.Errorf("token String = %q", got)
	}
	if got := Bound(rdf.Resource("Ulm")).String(); got != "Ulm" {
		t.Errorf("resource String = %q", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("not a ' query")
}

func TestIdentifierWithDigitsAndPunct(t *testing.T) {
	q, err := Parse("?x type wikicat_1879_births . Yago2s p ?x")
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].O.Term != rdf.Resource("wikicat_1879_births") {
		t.Fatalf("O = %+v", q.Patterns[0].O)
	}
	if q.Patterns[1].S.Term != rdf.Resource("Yago2s") {
		t.Fatalf("S = %+v", q.Patterns[1].S)
	}
}

func TestQuotedTokenEscapes(t *testing.T) {
	// Tokens may embed quotes via backslash escapes.
	q, err := Parse(`?x 'rock \'n\' roll' ?y`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Patterns[0].P.Term.Text; got != "rock 'n' roll" {
		t.Fatalf("token text = %q", got)
	}
	// And the canonical rendering round-trips.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("canonical %q does not re-parse: %v", q.String(), err)
	}
	if q2.Patterns[0].P.Term.Text != "rock 'n' roll" {
		t.Fatalf("round trip lost escapes: %q", q2.Patterns[0].P.Term.Text)
	}
}

func TestFullyBoundQueryString(t *testing.T) {
	q := MustParse("AlbertEinstein bornIn Ulm")
	s := q.String()
	if strings.Contains(s, "SELECT") {
		t.Fatalf("variable-free query rendered with SELECT: %q", s)
	}
	if _, err := Parse(s); err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", s, err)
	}
}

func TestParseFilter(t *testing.T) {
	q, err := Parse("SELECT ?x WHERE { ?x bornOn ?d . FILTER(?d < '1900-01-01') }")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %v", q.Filters)
	}
	f := q.Filters[0]
	if f.Var != "d" || f.Op != "<" || f.Value.Text != "1900-01-01" {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseFilterVariants(t *testing.T) {
	cases := []string{
		"?x p ?y . FILTER(?y != ?x)",
		"?x p ?y . FILTER(?y >= 42)",
		"?x p ?y . FILTER(?y = Germany)",
		"SELECT ?x WHERE { ?x p ?y . FILTER(?y <= '2000') . ?y q ?z }",
		"?x p ?y . FILTER(?y > '1900') . FILTER(?y < '1950')",
	}
	for _, in := range cases {
		q, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if len(q.Filters) == 0 {
			t.Errorf("Parse(%q): no filters", in)
		}
		// Canonical form must re-parse with the same filters.
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("canonical %q does not re-parse: %v", q.String(), err)
			continue
		}
		if len(q2.Filters) != len(q.Filters) {
			t.Errorf("%q: filter count changed on round trip", in)
		}
	}
}

func TestParseFilterErrors(t *testing.T) {
	cases := []struct{ in, substr string }{
		{"?x p ?y . FILTER ?y < 3", "expected '('"},
		{"?x p ?y . FILTER(y < 3)", "?variable on the left"},
		{"?x p ?y . FILTER(?y 3)", "comparison operator"},
		{"?x p ?y . FILTER(?y <)", "value or ?variable"},
		{"?x p ?y . FILTER(?y < 3", "expected ')'"},
		{"?x p ?y . FILTER(?z < 3)", "does not occur"},
		{"?x p ?y . FILTER(?y ! 3)", "'!' must be followed"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("Parse(%q) error = %q, want %q", tc.in, err, tc.substr)
		}
	}
}

func TestEvalFilter(t *testing.T) {
	tests := []struct {
		op, lhs, rhs string
		want         bool
	}{
		{"<", "1879-03-14", "1900-01-01", true},
		{"<", "1900-01-02", "1900-01-01", false},
		{">=", "42", "42", true},
		{">", "9", "10", false}, // numeric, not lexicographic
		{">", "b", "a", true},
		{"=", "x", "x", true},
		{"!=", "x", "y", true},
		{"<=", "3.5", "3.6", true},
	}
	for _, tc := range tests {
		if got := EvalFilter(tc.op, tc.lhs, tc.rhs); got != tc.want {
			t.Errorf("EvalFilter(%q, %q, %q) = %v, want %v", tc.op, tc.lhs, tc.rhs, got, tc.want)
		}
	}
}
