// Package query defines TriniT's extended triple-pattern query language and
// its parser.
//
// A query is a conjunction of triple patterns (§1). Each S, P, O slot holds
// either a variable (?x), a canonical KG resource (AlbertEinstein), or a
// quoted textual token ('won nobel for') — the extension of §2 that lets
// queries mix traditional-SPARQL patterns with text-style token patterns.
//
// The concrete syntax is a SPARQL-like subset:
//
//	SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague } LIMIT 5
//
// with two conveniences: the SELECT/WHERE wrapper may be omitted (all
// variables are then projected), and patterns may be separated by '.' or
// ';' as in the paper's Figure 2.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"trinit/internal/rdf"
)

// Slot is one position of a triple pattern: a variable or a bound term.
type Slot struct {
	// Var is the variable name (without the leading '?') when the slot
	// is a variable; empty otherwise.
	Var string
	// Term is the bound term when the slot is not a variable. Token
	// terms are matched approximately, resources and literals exactly.
	Term rdf.Term
}

// IsVar reports whether the slot is a variable.
func (s Slot) IsVar() bool { return s.Var != "" }

// Variable constructs a variable slot.
func Variable(name string) Slot { return Slot{Var: name} }

// Bound constructs a bound slot.
func Bound(t rdf.Term) Slot { return Slot{Term: t} }

// String renders the slot in query syntax.
func (s Slot) String() string {
	if s.IsVar() {
		return "?" + s.Var
	}
	return s.Term.String()
}

// Pattern is a single extended triple pattern.
type Pattern struct {
	S, P, O Slot
}

// String renders the pattern in query syntax.
func (p Pattern) String() string {
	return fmt.Sprintf("%s %s %s", p.S, p.P, p.O)
}

// Vars returns the distinct variable names of the pattern in S, P, O order.
func (p Pattern) Vars() []string {
	return p.AppendVars(nil)
}

// AppendVars appends the pattern's variable names to dst in S, P, O order,
// skipping names already present in dst, and returns the extended slice.
// It is Vars without the per-call allocations, for callers that resolve
// variables into reused scratch buffers on a hot path (a pattern has at
// most three variables, so the linear dedup scan beats a map).
func (p Pattern) AppendVars(dst []string) []string {
	for _, s := range [3]Slot{p.S, p.P, p.O} {
		if !s.IsVar() {
			continue
		}
		dup := false
		for _, v := range dst {
			if v == s.Var {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s.Var)
		}
	}
	return dst
}

// Filter is a comparison constraint on variable bindings, e.g.
// FILTER(?d < '1900-01-01') or FILTER(?x != ?y). Comparisons are numeric
// when both operands parse as numbers, lexicographic otherwise (which
// orders ISO dates correctly).
type Filter struct {
	// Var is the left-hand variable (without '?').
	Var string
	// Op is one of <, <=, >, >=, =, !=.
	Op string
	// RHSVar compares against another variable's binding when non-empty.
	RHSVar string
	// Value compares against a constant term when RHSVar is empty.
	Value rdf.Term
}

// String renders the filter in query syntax.
func (f Filter) String() string {
	rhs := f.Value.String()
	if f.RHSVar != "" {
		rhs = "?" + f.RHSVar
	}
	return fmt.Sprintf("FILTER(?%s %s %s)", f.Var, f.Op, rhs)
}

// Query is a parsed extended triple-pattern query.
type Query struct {
	// Projection lists the variables whose bindings form an answer, in
	// declaration order. If empty, all variables are projected.
	Projection []string
	// Patterns is the conjunctive set of triple patterns.
	Patterns []Pattern
	// Filters constrain variable bindings after pattern matching.
	Filters []Filter
	// Limit is the requested number of top-ranked answers (the k of
	// top-k processing); 0 means the engine default.
	Limit int
}

// Vars returns the distinct variables of all patterns, in first-occurrence
// order.
func (q *Query) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// ProjectedVars returns Projection, or all variables when the projection is
// empty.
func (q *Query) ProjectedVars() []string {
	if len(q.Projection) > 0 {
		return q.Projection
	}
	return q.Vars()
}

// String renders the query in canonical syntax. Queries with at least one
// variable use the SELECT/WHERE form; fully bound (boolean) queries render
// in the bare pattern shorthand, which is the only form that parses
// without variables.
func (q *Query) String() string {
	var b strings.Builder
	proj := q.ProjectedVars()
	if len(proj) > 0 {
		b.WriteString("SELECT")
		for _, v := range proj {
			b.WriteString(" ?" + v)
		}
		b.WriteString(" WHERE { ")
	}
	for i, p := range q.Patterns {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(p.String())
	}
	for _, f := range q.Filters {
		b.WriteString(" . ")
		b.WriteString(f.String())
	}
	if len(proj) > 0 {
		b.WriteString(" }")
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Validate checks structural well-formedness: at least one pattern, every
// projected and filtered variable bound somewhere, and no negative limit.
func (q *Query) Validate() error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("query has no triple patterns")
	}
	if q.Limit < 0 {
		return fmt.Errorf("negative LIMIT %d", q.Limit)
	}
	bound := make(map[string]bool)
	for _, v := range q.Vars() {
		bound[v] = true
	}
	for _, v := range q.Projection {
		if !bound[v] {
			return fmt.Errorf("projected variable ?%s does not occur in any pattern", v)
		}
	}
	for _, f := range q.Filters {
		switch f.Op {
		case "<", "<=", ">", ">=", "=", "!=":
		default:
			return fmt.Errorf("unknown filter operator %q", f.Op)
		}
		if !bound[f.Var] {
			return fmt.Errorf("filtered variable ?%s does not occur in any pattern", f.Var)
		}
		if f.RHSVar != "" && !bound[f.RHSVar] {
			return fmt.Errorf("filtered variable ?%s does not occur in any pattern", f.RHSVar)
		}
	}
	return nil
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	out := &Query{
		Projection: append([]string(nil), q.Projection...),
		Patterns:   append([]Pattern(nil), q.Patterns...),
		Filters:    append([]Filter(nil), q.Filters...),
		Limit:      q.Limit,
	}
	return out
}

// EvalFilter evaluates one filter against resolved binding texts. lhs and
// rhs are the surface texts of the bound terms. Comparison is numeric when
// both sides parse as numbers, lexicographic otherwise.
func EvalFilter(op, lhs, rhs string) bool {
	ln, lerr := strconv.ParseFloat(lhs, 64)
	rn, rerr := strconv.ParseFloat(rhs, 64)
	if lerr == nil && rerr == nil {
		switch op {
		case "<":
			return ln < rn
		case "<=":
			return ln <= rn
		case ">":
			return ln > rn
		case ">=":
			return ln >= rn
		case "=":
			return ln == rn
		default:
			return ln != rn
		}
	}
	switch op {
	case "<":
		return lhs < rhs
	case "<=":
		return lhs <= rhs
	case ">":
		return lhs > rhs
	case ">=":
		return lhs >= rhs
	case "=":
		return lhs == rhs
	default:
		return lhs != rhs
	}
}
