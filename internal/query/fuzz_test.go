package query

import "testing"

// FuzzParse checks that the parser never panics and that any successfully
// parsed query round-trips through its canonical rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"?x bornIn Germany",
		"AlbertEinstein 'won nobel for' ?x",
		"SELECT ?x WHERE { AlbertEinstein affiliation ?y . ?y 'housed in' ?x } LIMIT 5",
		"a b c . d e f ; g h i",
		"?x ?p ?y LIMIT 3",
		`?x "double quoted" ?y`,
		"SELECT ?x WHERE { }",
		"'' '' ''",
		"? ?? ???",
		"{}{}{}",
		"select ?x where { ?x p 42 }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, input, err)
		}
		if q2.String() != canon {
			t.Fatalf("canonical form not a fixpoint: %q -> %q", canon, q2.String())
		}
	})
}
