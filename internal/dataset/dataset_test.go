package dataset

import (
	"strings"
	"testing"

	"trinit/internal/ned"
	"trinit/internal/openie"
	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
	"trinit/internal/topk"
	"trinit/internal/xkg"
)

func TestDemoScenarioUsersAToD(t *testing.T) {
	d := NewDemo()
	if len(d.Queries) != 4 {
		t.Fatalf("demo queries = %d", len(d.Queries))
	}
	for _, dq := range d.Queries {
		q, err := query.Parse(dq.Query)
		if err != nil {
			t.Fatalf("user %s query does not parse: %v", dq.User, err)
		}
		q.Projection = q.ProjectedVars()

		// Without relaxation.
		plain := relax.NewExpander(nil).Expand(q)
		ansPlain, _ := topk.New(d.Store, topk.Options{K: 5}).Evaluate(q, plain)
		if dq.EmptyWithoutRelaxation && len(ansPlain) != 0 {
			t.Errorf("user %s: expected empty answer without relaxation, got %d", dq.User, len(ansPlain))
		}

		// With the Figure 4 rules.
		rws := relax.NewExpander(d.Rules).Expand(q)
		ans, _ := topk.New(d.Store, topk.Options{K: 5}).Evaluate(q, rws)
		if len(ans) == 0 {
			t.Fatalf("user %s: no answers with relaxation", dq.User)
		}
		var got string
		for _, v := range q.ProjectedVars() {
			got = d.Store.Dict().Term(ans[0].Bindings[v]).Text
		}
		if got != dq.Want {
			t.Errorf("user %s: top answer = %q, want %q", dq.User, got, dq.Want)
		}
	}
}

func TestDemoStoreMatchesFigureCounts(t *testing.T) {
	d := NewDemo()
	s := d.Store.Stats()
	// Figure 1 has 6 facts, plus 2 type facts; Figure 3 adds 4.
	if s.KGTriples != 8 || s.XKGTriples != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ProvenanceRecs != 4 {
		t.Fatalf("provenance records = %d, want 4", s.ProvenanceRecs)
	}
	if len(d.Rules) != 4 {
		t.Fatalf("Figure 4 rules = %d", len(d.Rules))
	}
	for _, r := range d.Rules {
		if err := r.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if a.KGSize() != b.KGSize() || len(a.Docs()) != len(b.Docs()) {
		t.Fatal("same seed produced different worlds")
	}
	for i := range a.Docs() {
		if a.Docs()[i] != b.Docs()[i] {
			t.Fatalf("doc %d differs", i)
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c := Generate(cfg)
	same := a.KGSize() == c.KGSize() && len(a.Docs()) == len(c.Docs())
	if same && a.Docs()[0] == c.Docs()[0] {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateEntityCounts(t *testing.T) {
	cfg := DefaultConfig()
	w := Generate(cfg)
	if len(w.People()) != cfg.People {
		t.Errorf("people = %d", len(w.People()))
	}
	if len(w.Cities()) != cfg.Cities || len(w.Countries()) != cfg.Countries || len(w.Universities()) != cfg.Universities {
		t.Errorf("entity counts: %d cities %d countries %d unis",
			len(w.Cities()), len(w.Countries()), len(w.Universities()))
	}
	// Resource names must be unique.
	seen := make(map[string]bool)
	for _, lists := range [][]string{w.People(), w.Cities(), w.Countries(), w.Universities()} {
		for _, r := range lists {
			if seen[r] {
				t.Fatalf("duplicate resource %q", r)
			}
			seen[r] = true
		}
	}
}

func TestGenerateTruthConsistency(t *testing.T) {
	w := Generate(DefaultConfig())
	tr := w.Truth
	for p, city := range tr.BornIn {
		if tr.CityCountry[city] == "" {
			t.Fatalf("person %s born in city %s with no country", p, city)
		}
	}
	for p, u := range tr.Affiliation {
		if tr.UniCity[u] == "" {
			t.Fatalf("person %s affiliated with unknown university %s", p, u)
		}
	}
	if len(tr.Advisor) == 0 || len(tr.PrizeField) == 0 {
		t.Fatal("truth missing advisors or prizes")
	}
	hidden := 0
	for p := range tr.Affiliation {
		if !tr.AffiliationInKG[p] {
			hidden++
		}
	}
	if hidden == 0 {
		t.Fatal("no corpus-only affiliations generated; incompleteness scenario missing")
	}
}

func TestGeneratedCorpusExtractsAndLinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.People = 40
	w := Generate(cfg)
	st := store.New(nil, nil)
	w.PopulateKG(st)
	linker := ned.NewLinker(st)
	stats := xkg.Build(st, linker, w.Docs(), xkg.DefaultOptions())
	if stats.Extractions == 0 || stats.Added == 0 {
		t.Fatalf("pipeline produced nothing: %+v", stats)
	}
	if stats.LinkedSubj == 0 {
		t.Fatalf("no subjects linked: %+v", stats)
	}
	st.Freeze()
	// The XKG must contain linked 'worked at'-style facts for people
	// whose affiliation is not in the KG.
	found := false
	for i := 0; i < st.Len(); i++ {
		tr := st.Triple(store.ID(i))
		if tr.Source != rdf.SourceXKG {
			continue
		}
		p := st.Dict().Term(tr.P)
		if p.Kind == rdf.KindToken && strings.Contains(p.Text, "at") &&
			st.Dict().Term(tr.S).Kind == rdf.KindResource &&
			st.Dict().Term(tr.O).Kind == rdf.KindResource {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no linked affiliation-style token triples in the XKG")
	}
}

func TestWorkloadSize(t *testing.T) {
	w := Generate(DefaultConfig())
	qs := w.Workload(70)
	if len(qs) != 70 {
		t.Fatalf("workload = %d queries, want 70", len(qs))
	}
	cats := make(map[string]int)
	for _, q := range qs {
		cats[q.Category]++
	}
	for _, cat := range []string{"born", "advisor", "affiliation", "prize", "cityjoin", "leaguejoin"} {
		if cats[cat] == 0 {
			t.Errorf("category %s missing from workload (%v)", cat, cats)
		}
	}
}

func TestWorkloadQueriesParseAndHaveJudgments(t *testing.T) {
	w := Generate(DefaultConfig())
	for _, wq := range w.Workload(70) {
		q, err := query.Parse(wq.Text)
		if err != nil {
			t.Fatalf("%s: %v", wq.ID, err)
		}
		proj := q.ProjectedVars()
		if len(proj) != 1 || proj[0] != wq.Var {
			t.Fatalf("%s: projected vars %v, want [%s]", wq.ID, proj, wq.Var)
		}
		if len(wq.Judgments) == 0 {
			t.Fatalf("%s: no judgments", wq.ID)
		}
		if wq.Judgments.NumRelevant() == 0 {
			t.Fatalf("%s: no relevant answers", wq.ID)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := Generate(DefaultConfig()).Workload(70)
	b := Generate(DefaultConfig()).Workload(70)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Text != b[i].Text {
			t.Fatalf("workload query %d differs", i)
		}
	}
}

func TestNameGenerators(t *testing.T) {
	// Uniqueness over a large range.
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		r, _, _ := personNameSpread(i)
		if seen[r] {
			t.Fatalf("duplicate person resource %q at %d", r, i)
		}
		seen[r] = true
	}
	seen = make(map[string]bool)
	for i := 0; i < 300; i++ {
		c := cityName(i)
		if seen[c] {
			t.Fatalf("duplicate city %q at %d", c, i)
		}
		seen[c] = true
	}
	if countryName(3) != "Drevania" || countryName(13) == countryName(3) {
		t.Error("country naming wrong")
	}
	if universityName("Northford") != "NorthfordUniversity" {
		t.Error("university naming wrong")
	}
	if universityMention("Northford") != "Northford University" {
		t.Error("university mention wrong")
	}
	if prizeMention(0) != "Nobel Prize" {
		t.Errorf("prize mention = %q", prizeMention(0))
	}
	if fieldPhrase(0) != "quantum mechanics" {
		t.Errorf("field phrase = %q", fieldPhrase(0))
	}
	if leagueName(0) != "IvyLeague" {
		t.Errorf("league name = %q", leagueName(0))
	}
}

func TestBenchConfigLargerThanDefault(t *testing.T) {
	d, b := DefaultConfig(), BenchConfig()
	if b.People <= d.People || b.Universities <= d.Universities {
		t.Fatalf("bench config not larger: %+v", b)
	}
}

// TestWorkloadJudgmentKeysResolvable verifies the glue between generator
// judgments and store vocabulary: every judged answer for born/advisor/
// affiliation queries is a KG resource, and every prize judgment is a
// field phrase that Open IE actually extracts from the corpus.
func TestWorkloadJudgmentKeysResolvable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.People = 60
	w := Generate(cfg)
	st := store.New(nil, nil)
	w.PopulateKG(st)
	xkg.Build(st, ned.NewLinker(st), w.Docs(), xkg.DefaultOptions())
	st.Freeze()

	for _, wq := range w.Workload(40) {
		for key := range wq.Judgments {
			switch wq.Category {
			case "prize":
				if _, ok := st.Dict().Lookup(rdf.Token(key)); !ok {
					t.Errorf("%s: judged field %q not extracted as a token", wq.ID, key)
				}
			default:
				if _, ok := st.Dict().Lookup(rdf.Resource(key)); !ok {
					t.Errorf("%s: judged entity %q not a KG resource", wq.ID, key)
				}
			}
		}
	}
}

func TestWorkloadScalesDown(t *testing.T) {
	w := Generate(DefaultConfig())
	qs := w.Workload(10)
	if len(qs) == 0 || len(qs) > 10 {
		t.Fatalf("workload(10) = %d queries", len(qs))
	}
	if def := w.Workload(0); len(def) != 70 {
		t.Fatalf("workload(0) = %d, want default 70", len(def))
	}
}

func TestDocsGroupedBySentencesPerDoc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SentencesPerDoc = 3
	w := Generate(cfg)
	for i, d := range w.Docs() {
		n := len(openie.SplitSentences(d.Text))
		if n > 3 {
			t.Fatalf("doc %d has %d sentences, want <= 3", i, n)
		}
		if d.ID == "" {
			t.Fatal("doc without ID")
		}
	}
}
