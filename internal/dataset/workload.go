package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"trinit/internal/eval"
)

// WorkloadQuery is one evaluation query with graded relevance judgments,
// mirroring the 70 entity-relationship queries of the paper's evaluation
// (§4). Judgments are keyed by the surface text of the projected
// variable's binding.
type WorkloadQuery struct {
	ID       string
	Category string
	// Text is the query in TriniT syntax.
	Text string
	// Var is the projected variable whose binding is judged.
	Var string
	// Judgments grade the relevant answers (3 = curated fact, 2 =
	// corpus-only fact).
	Judgments eval.Judgments
}

// Workload derives n queries (default and paper value: 70) from the
// world's ground truth. The mix mirrors the paper's pain points: queries
// needing structural relaxation (born-in-country), predicate inversion
// (advisor), XKG facts (hidden affiliations, prize fields), and
// join-intensive queries (§5: "TriniT is specifically geared for these
// join-intensive queries").
func (w *World) Workload(n int) []WorkloadQuery {
	if n <= 0 {
		n = 70
	}
	rng := rand.New(rand.NewSource(w.Config.Seed + 1000))
	t := &w.Truth

	// Quotas proportional to the default 70-query mix.
	quota := map[string]int{
		"born":        n * 12 / 70,
		"advisor":     n * 12 / 70,
		"affiliation": n * 16 / 70,
		"prize":       n * 10 / 70,
		"cityjoin":    n * 10 / 70,
		"leaguejoin":  n * 10 / 70,
	}
	used := 0
	for _, q := range quota {
		used += q
	}
	quota["affiliation"] += n - used // remainder

	// Candidate targets per category, deterministically shuffled.
	bornCountries := w.countriesWithBirths()
	students := sortedKeys(t.Advisor)
	unis := w.universitiesWithAffiliates()
	winners := sortedKeys(t.PrizeField)
	cities := w.citiesWithAffiliatedUnis()
	leagues := w.leaguesWithAffiliatedUnis()
	for _, s := range [][]string{bornCountries, students, unis, winners, cities, leagues} {
		rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	}

	var out []WorkloadQuery
	emit := func(cat string, i int, text, v string, j eval.Judgments) {
		out = append(out, WorkloadQuery{
			ID:        fmt.Sprintf("%s-%02d", cat, i+1),
			Category:  cat,
			Text:      text,
			Var:       v,
			Judgments: j,
		})
	}

	pick := func(list []string, i int) (string, bool) {
		if len(list) == 0 {
			return "", false
		}
		return list[i%len(list)], true
	}

	for i := 0; i < quota["born"]; i++ {
		country, ok := pick(bornCountries, i)
		if !ok {
			break
		}
		j := eval.Judgments{}
		for p, city := range t.BornIn {
			if t.CityCountry[city] == country {
				j[p] = 3
			}
		}
		emit("born", i, fmt.Sprintf("?x bornIn %s", country), "x", j)
	}

	for i := 0; i < quota["advisor"]; i++ {
		student, ok := pick(students, i)
		if !ok {
			break
		}
		emit("advisor", i, fmt.Sprintf("%s hasAdvisor ?x", student), "x",
			eval.Judgments{t.Advisor[student]: 3})
	}

	for i := 0; i < quota["affiliation"]; i++ {
		uni, ok := pick(unis, i)
		if !ok {
			break
		}
		j := eval.Judgments{}
		for p, u := range t.Affiliation {
			if u != uni {
				continue
			}
			if t.AffiliationInKG[p] {
				j[p] = 3
			} else {
				j[p] = 2
			}
		}
		emit("affiliation", i, fmt.Sprintf("?x affiliation %s", uni), "x", j)
	}

	for i := 0; i < quota["prize"]; i++ {
		person, ok := pick(winners, i)
		if !ok {
			break
		}
		emit("prize", i, fmt.Sprintf("%s 'won prize for' ?x", person), "x",
			eval.Judgments{t.PrizeField[person]: 3})
	}

	for i := 0; i < quota["cityjoin"]; i++ {
		city, ok := pick(cities, i)
		if !ok {
			break
		}
		j := eval.Judgments{}
		for p, u := range t.Affiliation {
			if t.UniCity[u] != city {
				continue
			}
			if t.AffiliationInKG[p] {
				j[p] = 3
			} else {
				j[p] = 2
			}
		}
		emit("cityjoin", i,
			fmt.Sprintf("SELECT ?x WHERE { ?x affiliation ?u . ?u locatedIn %s }", city), "x", j)
	}

	for i := 0; i < quota["leaguejoin"]; i++ {
		league, ok := pick(leagues, i)
		if !ok {
			break
		}
		j := eval.Judgments{}
		for p, u := range t.Affiliation {
			if t.UniLeague[u] != league {
				continue
			}
			if t.AffiliationInKG[p] {
				j[p] = 3
			} else {
				j[p] = 2
			}
		}
		emit("leaguejoin", i,
			fmt.Sprintf("SELECT ?x WHERE { ?x affiliation ?u . ?u member %s }", league), "x", j)
	}

	return out
}

func (w *World) countriesWithBirths() []string {
	has := make(map[string]bool)
	for _, city := range w.Truth.BornIn {
		has[w.Truth.CityCountry[city]] = true
	}
	return sortedSet(has)
}

func (w *World) universitiesWithAffiliates() []string {
	has := make(map[string]bool)
	for _, u := range w.Truth.Affiliation {
		has[u] = true
	}
	return sortedSet(has)
}

func (w *World) citiesWithAffiliatedUnis() []string {
	has := make(map[string]bool)
	for _, u := range w.Truth.Affiliation {
		if c, ok := w.Truth.UniCity[u]; ok {
			has[c] = true
		}
	}
	return sortedSet(has)
}

func (w *World) leaguesWithAffiliatedUnis() []string {
	has := make(map[string]bool)
	for _, u := range w.Truth.Affiliation {
		if l, ok := w.Truth.UniLeague[u]; ok {
			has[l] = true
		}
	}
	return sortedSet(has)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
