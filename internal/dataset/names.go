// Package dataset provides the data substrates of the reproduction: the
// paper's worked example (Figures 1–4), and seeded synthetic generators
// that stand in for the Yago2s knowledge graph, the ClueWeb'09 text corpus,
// and the 70-query evaluation workload (see DESIGN.md §2 for the
// substitution rationale).
package dataset

import (
	"fmt"
	"strings"
)

var firstNames = []string{
	"Alden", "Berta", "Clovis", "Dorian", "Elsa", "Falko", "Greta",
	"Hugo", "Irma", "Jonas", "Karla", "Ludwig", "Mira", "Nils",
	"Olga", "Piet", "Runa", "Stefan", "Thea", "Ulrich",
}

var lastNames = []string{
	"Ackermann", "Brenner", "Claussen", "Dittmar", "Eichel", "Falkner",
	"Gruber", "Hartwig", "Ibsen", "Jaeger", "Kessler", "Lindt",
	"Moser", "Nagel", "Oswald", "Planck", "Quandt", "Richter",
	"Sommer", "Tauber",
}

var cityPrefixes = []string{
	"North", "South", "East", "West", "New", "Old", "Upper", "Lower",
	"Great", "Fair",
}

var citySuffixes = []string{
	"ford", "burg", "ville", "stad", "haven", "field", "port",
	"bridge", "mouth", "wick",
}

var countryNames = []string{
	"Aldoria", "Belmont", "Cordova", "Drevania", "Elbonia",
	"Florin", "Genovia", "Hyrkania", "Illyria", "Jotunheim",
}

var fieldPhrases = []string{
	"quantum mechanics", "number theory", "organic chemistry",
	"cell biology", "game theory", "fluid dynamics",
	"plate tectonics", "machine learning", "radio astronomy",
	"microeconomics", "epidemiology", "crystallography",
}

var prizeNames = []string{
	"NobelPrize", "FieldsMedal", "TuringAward", "WolfPrize",
}

var leagueNames = []string{
	"IvyLeague", "CoastalLeague", "HanseaticLeague",
}

// cityName returns the resource name of city i.
func cityName(i int) string {
	p := cityPrefixes[i%len(cityPrefixes)]
	s := citySuffixes[(i/len(cityPrefixes))%len(citySuffixes)]
	name := p + s
	if n := i / (len(cityPrefixes) * len(citySuffixes)); n > 0 {
		name = fmt.Sprintf("%s%d", name, n)
	}
	return name
}

// countryName returns the resource name of country i.
func countryName(i int) string {
	if i < len(countryNames) {
		return countryNames[i]
	}
	return fmt.Sprintf("%s%d", countryNames[i%len(countryNames)], i/len(countryNames))
}

// universityName derives a university resource from its host city.
func universityName(city string) string { return city + "University" }

// universityMention renders the university's textual mention.
func universityMention(city string) string { return city + " University" }

// prizeName returns the resource name of prize i.
func prizeName(i int) string {
	if i < len(prizeNames) {
		return prizeNames[i]
	}
	return fmt.Sprintf("%s%d", prizeNames[i%len(prizeNames)], i/len(prizeNames))
}

// prizeMention renders a prize mention: "Nobel Prize" for NobelPrize.
func prizeMention(i int) string {
	name := prizeName(i)
	var b strings.Builder
	for j, r := range name {
		if j > 0 && r >= 'A' && r <= 'Z' {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// leagueName returns the resource name of league i.
func leagueName(i int) string {
	if i < len(leagueNames) {
		return leagueNames[i]
	}
	return fmt.Sprintf("%s%d", leagueNames[i%len(leagueNames)], i/len(leagueNames))
}

// fieldPhrase returns the token phrase of research field i.
func fieldPhrase(i int) string {
	if i < len(fieldPhrases) {
		return fieldPhrases[i]
	}
	return fmt.Sprintf("%s %d", fieldPhrases[i%len(fieldPhrases)], i/len(fieldPhrases))
}
