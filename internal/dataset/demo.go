package dataset

import (
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

// DemoQuery is one of the four information needs of Figure 2, with the
// query formulation attempted by the user and the answer the paper argues
// the system should produce.
type DemoQuery struct {
	// User is "A", "B", "C" or "D".
	User string
	// Need is the natural-language information need.
	Need string
	// Query is the user's attempted formulation in TriniT syntax. User
	// D could not formulate a KG query at all; her query uses the
	// extended token syntax of §2.
	Query string
	// Want is the text of the expected top answer binding.
	Want string
	// EmptyWithoutRelaxation records whether the raw KG query returns
	// nothing before relaxation / the XKG extension.
	EmptyWithoutRelaxation bool
}

// Demo bundles the paper's running example: the Figure 1 KG, the Figure 3
// XKG extension, the Figure 4 relaxation rules, and the Figure 2 queries.
type Demo struct {
	Store   *store.Store // frozen, KG + XKG
	Rules   []*relax.Rule
	Queries []DemoQuery
}

// NewDemo builds the complete worked example of the paper.
func NewDemo() *Demo {
	st := store.New(nil, nil)

	// Figure 1: sample knowledge graph.
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("Ulm"), rdf.Resource("locatedIn"), rdf.Resource("Germany"))
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Resource("bornOn"), rdf.Literal("1879-03-14"), rdf.SourceKG, 1, rdf.NoProv)
	st.AddKG(rdf.Resource("AlfredKleiner"), rdf.Resource("hasStudent"), rdf.Resource("AlbertEinstein"))
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("affiliation"), rdf.Resource("IAS"))
	st.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("member"), rdf.Resource("IvyLeague"))

	// Type facts backing Figure 4 rule 1's type constraints.
	st.AddKG(rdf.Resource("Ulm"), rdf.Resource("type"), rdf.Resource("city"))
	st.AddKG(rdf.Resource("Germany"), rdf.Resource("type"), rdf.Resource("country"))

	// Figure 3: sample knowledge graph extension (XKG), with the §2
	// provenance sentence for the Nobel triple.
	prov := st.Prov().Add(rdf.Prov{
		Doc:      "clueweb09-en0001-02-00017",
		Sentence: "Einstein won a Nobel for his discovery of the photoelectric effect.",
	})
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("won Nobel for"), rdf.Token("discovery of the photoelectric effect"), rdf.SourceXKG, 0.9, prov)
	st.AddFact(rdf.Resource("IAS"), rdf.Token("housed in"), rdf.Resource("PrincetonUniversity"), rdf.SourceXKG, 0.8,
		st.Prov().Add(rdf.Prov{Doc: "clueweb09-en0003-11-00542", Sentence: "The IAS was housed in Princeton."}))
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("lectured at"), rdf.Resource("PrincetonUniversity"), rdf.SourceXKG, 0.7,
		st.Prov().Add(rdf.Prov{Doc: "clueweb09-en0004-07-00231", Sentence: "Einstein lectured at Princeton."}))
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("met his teacher"), rdf.Token("Prof. Kleiner"), rdf.SourceXKG, 0.6,
		st.Prov().Add(rdf.Prov{Doc: "clueweb09-en0005-01-00099", Sentence: "In Zurich, Einstein met his teacher Prof. Kleiner."}))
	st.Freeze()

	// Figure 4: example relaxation rules, verbatim.
	rules := []*relax.Rule{
		relax.MustParseRule("fig4-1",
			"?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z type city ; ?z locatedIn ?y",
			1.0, "manual"),
		relax.MustParseRule("fig4-2",
			"?x hasAdvisor ?y => ?y hasStudent ?x",
			1.0, "manual"),
		relax.MustParseRule("fig4-3",
			"?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y",
			0.8, "manual"),
		relax.MustParseRule("fig4-4",
			"?x affiliation ?y => ?x 'lectured at' ?y",
			0.7, "manual"),
	}

	// Figure 2: questions and queries. User A's query is extended with
	// the type pattern so that Figure 4 rule 1 (which carries the type
	// constraint) applies; the paper's discussion makes the same
	// assumption.
	queries := []DemoQuery{
		{
			User:                   "A",
			Need:                   "Who was born in Germany?",
			Query:                  "SELECT ?x WHERE { ?x bornIn Germany . Germany type country }",
			Want:                   "AlbertEinstein",
			EmptyWithoutRelaxation: true,
		},
		{
			User:                   "B",
			Need:                   "Who was the advisor of Albert Einstein?",
			Query:                  "AlbertEinstein hasAdvisor ?x",
			Want:                   "AlfredKleiner",
			EmptyWithoutRelaxation: true,
		},
		{
			User:                   "C",
			Need:                   "Ivy League university Einstein was affiliated with.",
			Query:                  "SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }",
			Want:                   "PrincetonUniversity",
			EmptyWithoutRelaxation: true,
		},
		{
			User:                   "D",
			Need:                   "What did Albert Einstein win a Nobel prize for?",
			Query:                  "AlbertEinstein 'won nobel for' ?x",
			Want:                   "discovery of the photoelectric effect",
			EmptyWithoutRelaxation: false, // answered by the XKG directly
		},
	}

	return &Demo{Store: st, Rules: rules, Queries: queries}
}
