package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"trinit/internal/rdf"
	"trinit/internal/store"
	"trinit/internal/xkg"
)

// Config parameterises the synthetic world generator. All randomness is
// derived from Seed; equal configs generate identical worlds.
type Config struct {
	Seed         int64
	People       int
	Cities       int
	Countries    int
	Universities int
	Fields       int
	Prizes       int
	Leagues      int

	// AffiliationKGFraction is the fraction of affiliation facts that
	// make it into the curated KG; the rest exist only in the corpus —
	// the paper's incompleteness scenario (user C).
	AffiliationKGFraction float64
	// AdvisorFraction is the fraction of people with an advisor. The KG
	// stores these facts only in hasStudent direction (user B's
	// vocabulary mismatch).
	AdvisorFraction float64
	// PrizeFraction is the fraction of people who won a prize. The
	// prize itself may be in the KG, but what it was won *for* exists
	// only in text (user D's missing predicate).
	PrizeFraction float64
	// PrizeKGFraction is the fraction of prize wins recorded in the KG.
	PrizeKGFraction float64
	// BornSentenceFraction is the fraction of birth facts also
	// verbalised in the corpus (these drive alignment mining for
	// bornIn).
	BornSentenceFraction float64
	// NoiseFraction adds this many noise sentences per fact sentence.
	// Web crawls are mostly text unrelated to any KG fact, so large
	// values are the realistic regime.
	NoiseFraction float64
	// ParaphraseBoost emits additional distinct phrasings per fact
	// (0 or 1 = minimal). Higher values mimic the redundancy of a web
	// crawl, where the same fact is expressed many different ways, and
	// drive the XKG/KG triple ratio towards the paper's ~7.8.
	ParaphraseBoost int
	// SentencesPerDoc groups corpus sentences into documents.
	SentencesPerDoc int
}

// DefaultConfig is the small world used by tests and examples.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		People:                120,
		Cities:                20,
		Countries:             5,
		Universities:          12,
		Fields:                8,
		Prizes:                3,
		Leagues:               2,
		AffiliationKGFraction: 0.5,
		AdvisorFraction:       0.4,
		PrizeFraction:         0.25,
		PrizeKGFraction:       0.5,
		BornSentenceFraction:  0.6,
		NoiseFraction:         0.3,
		SentencesPerDoc:       8,
	}
}

// BenchConfig is the larger world used by the experiment harness; it keeps
// the paper's roughly 1:7.8 KG-to-extraction triple ratio at laptop scale
// by boosting paraphrase redundancy and unaligned noise, the regime of a
// real web crawl.
func BenchConfig() Config {
	c := DefaultConfig()
	c.People = 1200
	c.Cities = 60
	c.Countries = 8
	c.Universities = 40
	c.Fields = 12
	c.Prizes = 4
	c.Leagues = 3
	c.ParaphraseBoost = 3
	c.NoiseFraction = 4.0
	return c
}

// Scaled multiplies the world's entity counts by factor (≥1), keeping
// the fraction knobs fixed. Fact and corpus volume grow roughly linearly
// in the people count, so Scaled(100) on BenchConfig yields a world about
// two orders of magnitude past the default bench scale — the regime
// where mapped-segment open time and resident-set savings dominate.
func (c Config) Scaled(factor int) Config {
	if factor <= 1 {
		return c
	}
	c.People *= factor
	c.Cities *= factor
	c.Countries *= factor
	c.Universities *= factor
	c.Fields *= factor
	c.Prizes *= factor
	c.Leagues *= factor
	return c
}

// fact is a string-level triple destined for the KG; literal marks the
// object as a literal value rather than a resource.
type fact struct {
	s, p, o string
	literal bool
}

// Truth is the generator's hidden ground truth, from which workload
// judgments are derived.
type Truth struct {
	// BornIn maps person resource → city resource.
	BornIn map[string]string
	// CityCountry maps city resource → country resource.
	CityCountry map[string]string
	// UniCity maps university resource → host city resource.
	UniCity map[string]string
	// UniLeague maps university resource → league resource (if any).
	UniLeague map[string]string
	// Advisor maps student resource → advisor resource.
	Advisor map[string]string
	// Affiliation maps person resource → university resource (every
	// person has exactly one).
	Affiliation map[string]string
	// AffiliationInKG marks which affiliation facts entered the KG.
	AffiliationInKG map[string]bool
	// PrizeOf maps person resource → prize resource for winners.
	PrizeOf map[string]string
	// PrizeField maps person resource → the field phrase the prize was
	// won for (corpus-only knowledge).
	PrizeField map[string]string
	// PrizeInKG marks prize wins recorded in the KG.
	PrizeInKG map[string]bool
}

// World is a generated synthetic dataset: KG facts, a text corpus, and the
// ground truth behind both.
type World struct {
	Config Config
	Truth  Truth

	facts []fact
	docs  []xkg.Document

	people       []string
	cities       []string
	countries    []string
	universities []string
}

// Docs returns the generated corpus.
func (w *World) Docs() []xkg.Document { return w.docs }

// KGSize returns the number of KG facts.
func (w *World) KGSize() int { return len(w.facts) }

// People, Cities, Countries and Universities expose entity resource names.
func (w *World) People() []string       { return w.people }
func (w *World) Cities() []string       { return w.cities }
func (w *World) Countries() []string    { return w.countries }
func (w *World) Universities() []string { return w.universities }

// PopulateKG adds the world's curated KG facts to a store. Predicates and
// entities are resources; the store must not be frozen.
func (w *World) PopulateKG(st *store.Store) {
	for _, f := range w.facts {
		if f.literal {
			st.AddFact(rdf.Resource(f.s), rdf.Resource(f.p), rdf.Literal(f.o), rdf.SourceKG, 1, rdf.NoProv)
		} else {
			st.AddKG(rdf.Resource(f.s), rdf.Resource(f.p), rdf.Resource(f.o))
		}
	}
}

// Generate builds a world from the config.
func Generate(cfg Config) *World {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		Config: cfg,
		Truth: Truth{
			BornIn:          make(map[string]string),
			CityCountry:     make(map[string]string),
			UniCity:         make(map[string]string),
			UniLeague:       make(map[string]string),
			Advisor:         make(map[string]string),
			Affiliation:     make(map[string]string),
			AffiliationInKG: make(map[string]bool),
			PrizeOf:         make(map[string]string),
			PrizeField:      make(map[string]string),
			PrizeInKG:       make(map[string]bool),
		},
	}
	t := &w.Truth

	addFact := func(s, p, o string) { w.facts = append(w.facts, fact{s: s, p: p, o: o}) }
	addLiteral := func(s, p, o string) { w.facts = append(w.facts, fact{s: s, p: p, o: o, literal: true}) }

	// Geography.
	for i := 0; i < cfg.Countries; i++ {
		c := countryName(i)
		w.countries = append(w.countries, c)
		addFact(c, "type", "country")
	}
	for i := 0; i < cfg.Cities; i++ {
		city := cityName(i)
		country := w.countries[rng.Intn(cfg.Countries)]
		w.cities = append(w.cities, city)
		t.CityCountry[city] = country
		addFact(city, "type", "city")
		addFact(city, "locatedIn", country)
	}

	// Universities, hosted in cities, some in leagues.
	var leagues []string
	for i := 0; i < cfg.Leagues; i++ {
		l := leagueName(i)
		leagues = append(leagues, l)
		addFact(l, "type", "league")
	}
	for i := 0; i < cfg.Universities; i++ {
		city := w.cities[i%cfg.Cities]
		uni := universityName(city)
		if i >= cfg.Cities { // more universities than cities: suffix
			uni = fmt.Sprintf("%s%d", uni, i/cfg.Cities)
		}
		w.universities = append(w.universities, uni)
		t.UniCity[uni] = city
		addFact(uni, "type", "university")
		addFact(uni, "locatedIn", city)
		if len(leagues) > 0 && rng.Float64() < 0.5 {
			l := leagues[rng.Intn(len(leagues))]
			t.UniLeague[uni] = l
			addFact(uni, "member", l)
		}
	}

	// People and their relationships.
	type sentence struct{ text string }
	var sents []sentence
	say := func(format string, args ...any) {
		sents = append(sents, sentence{fmt.Sprintf(format, args...)})
	}

	mention := func(i int) string {
		_, first, last := personNameSpread(i)
		if rng.Float64() < 0.1 {
			return last // surname-only mention: realistic ambiguity
		}
		return first + " " + last
	}

	for i := 0; i < cfg.People; i++ {
		res, _, _ := personNameSpread(i)
		w.people = append(w.people, res)
		addFact(res, "type", "scientist")

		// sample emits up to n distinct templates from the list.
		sample := func(templates []string, n int, args ...any) {
			if n > len(templates) {
				n = len(templates)
			}
			for _, ti := range rng.Perm(len(templates))[:n] {
				say(templates[ti], args...)
			}
		}

		// Birthplace: always in the KG, as a city (user A's mismatch:
		// queries by country need the composition relaxation), with a
		// birth-date literal for FILTER queries.
		city := w.cities[rng.Intn(cfg.Cities)]
		t.BornIn[res] = city
		addFact(res, "bornIn", city)
		addLiteral(res, "bornOn", fmt.Sprintf("%04d-%02d-%02d",
			1850+rng.Intn(100), 1+rng.Intn(12), 1+rng.Intn(28)))
		if rng.Float64() < cfg.BornSentenceFraction {
			bornTemplates := []string{"%s was born in %s.", "%s grew up in %s.", "%s was raised in %s."}
			sample(bornTemplates, 1+cfg.ParaphraseBoost/2, mention(i), city)
		}

		// Affiliation: exactly one university; only a fraction makes
		// it into the KG, the rest is corpus-only (incompleteness).
		uni := w.universities[rng.Intn(cfg.Universities)]
		t.Affiliation[res] = uni
		inKG := rng.Float64() < cfg.AffiliationKGFraction
		t.AffiliationInKG[res] = inKG
		if inKG {
			addFact(res, "affiliation", uni)
		}
		uniMention := universityMention(strings.TrimSuffix(uni, "University"))
		affilTemplates := []string{"%s worked at %s.", "%s lectured at %s.", "%s taught at %s.", "%s joined %s."}
		nAffil := 1
		if rng.Float64() < 0.5 {
			nAffil = 2
		}
		sample(affilTemplates, nAffil+cfg.ParaphraseBoost, mention(i), uniMention)

		// Advisor: stored in the KG only as hasStudent (user B's
		// direction mismatch), verbalised both ways in the corpus.
		if i > 0 && rng.Float64() < cfg.AdvisorFraction {
			advIdx := rng.Intn(i)
			adv := w.people[advIdx]
			t.Advisor[res] = adv
			addFact(adv, "hasStudent", res)
			if rng.Float64() < 0.5 {
				say("%s advised %s.", mention(advIdx), mention(i))
			} else {
				say("%s studied under %s.", mention(i), mention(advIdx))
			}
			if cfg.ParaphraseBoost > 0 {
				say("%s supervised %s.", mention(advIdx), mention(i))
				if cfg.ParaphraseBoost > 1 {
					say("%s was the advisor of %s.", mention(advIdx), mention(i))
				}
			}
		}

		// Prizes: what the prize was won for exists only in text
		// (user D's missing predicate).
		if rng.Float64() < cfg.PrizeFraction {
			pi := rng.Intn(cfg.Prizes)
			prize := prizeName(pi)
			field := fieldPhrase(rng.Intn(cfg.Fields))
			t.PrizeOf[res] = prize
			t.PrizeField[res] = field
			if rng.Float64() < cfg.PrizeKGFraction {
				t.PrizeInKG[res] = true
				addFact(res, "hasWonPrize", prize)
			}
			say("%s won the %s for %s.", mention(i), prizeMention(pi), field)
			if rng.Float64() < 0.3 {
				say("%s received the %s.", mention(i), prizeMention(pi))
			}
			if cfg.ParaphraseBoost > 0 {
				say("%s was awarded the %s.", mention(i), prizeMention(pi))
			}
		}
	}

	// Noise sentences: plausible but irrelevant statements that the
	// extractor will happily turn into token triples. In a web crawl,
	// these dominate — the paper's XKG has ~7.8x more extracted triples
	// than KG facts.
	nNoise := int(cfg.NoiseFraction * float64(len(sents)))
	for i := 0; i < nNoise; i++ {
		switch rng.Intn(6) {
		case 0:
			say("%s visited %s.", mention(rng.Intn(cfg.People)), w.cities[rng.Intn(cfg.Cities)])
		case 1:
			say("%s published a paper on %s.", mention(rng.Intn(cfg.People)), fieldPhrase(rng.Intn(cfg.Fields)))
		case 2:
			say("%s traveled to %s.", mention(rng.Intn(cfg.People)), w.cities[rng.Intn(cfg.Cities)])
		case 3:
			say("%s wrote about %s.", mention(rng.Intn(cfg.People)), fieldPhrase(rng.Intn(cfg.Fields)))
		case 4:
			say("%s collaborated with %s.", mention(rng.Intn(cfg.People)), mention(rng.Intn(cfg.People)))
		default:
			a, b := rng.Intn(cfg.People), rng.Intn(cfg.People)
			say("%s met %s.", mention(a), mention(b))
		}
	}

	// Shuffle sentences and group them into documents.
	rng.Shuffle(len(sents), func(i, j int) { sents[i], sents[j] = sents[j], sents[i] })
	per := cfg.SentencesPerDoc
	if per <= 0 {
		per = 8
	}
	for start := 0; start < len(sents); start += per {
		end := start + per
		if end > len(sents) {
			end = len(sents)
		}
		var b strings.Builder
		for _, s := range sents[start:end] {
			b.WriteString(s.text)
			b.WriteByte(' ')
		}
		w.docs = append(w.docs, xkg.Document{
			ID:   fmt.Sprintf("web-%04d", len(w.docs)),
			Text: strings.TrimSpace(b.String()),
		})
	}
	return w
}

// personNameSpread is personName with surnames spread diagonally so that
// surname ambiguity is distributed rather than clustered on the first
// cohort of people.
func personNameSpread(i int) (resource, first, last string) {
	first = firstNames[i%len(firstNames)]
	last = lastNames[(i+i/len(firstNames))%len(lastNames)]
	resource = first + last
	if n := i / (len(firstNames) * len(lastNames)); n > 0 {
		resource = fmt.Sprintf("%s%s%d", first, last, n)
		last = fmt.Sprintf("%s%d", last, n)
	}
	return resource, first, last
}
