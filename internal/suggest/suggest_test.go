package suggest

import (
	"strings"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
	"trinit/internal/topk"
)

// suggestStore has a KG predicate worksFor whose argument pairs are mostly
// shared with the token predicate 'works at', so the token should suggest
// the resource.
func suggestStore() *store.Store {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("Alice"), rdf.Resource("worksFor"), rdf.Resource("Acme"))
	st.AddKG(rdf.Resource("Bob"), rdf.Resource("worksFor"), rdf.Resource("Globex"))
	st.AddKG(rdf.Resource("Carol"), rdf.Resource("worksFor"), rdf.Resource("Acme"))
	st.AddFact(rdf.Resource("Alice"), rdf.Token("works at"), rdf.Resource("Acme"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.AddFact(rdf.Resource("Bob"), rdf.Token("works at"), rdf.Resource("Globex"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.AddFact(rdf.Resource("Dave"), rdf.Token("works at"), rdf.Resource("Initech"), rdf.SourceXKG, 0.7, rdf.NoProv)
	st.Freeze()
	return st
}

func TestCompleteRanksFrequentFirst(t *testing.T) {
	st := suggestStore()
	s := New(st)
	got := s.Complete("A", 5)
	if len(got) < 2 {
		t.Fatalf("completions = %v", got)
	}
	// Acme occurs in 3 triples, Alice in 2.
	if got[0].Text != "Acme" {
		t.Errorf("top completion = %q, want Acme", got[0].Text)
	}
}

func TestCompleteMiss(t *testing.T) {
	s := New(suggestStore())
	if got := s.Complete("Zzz", 5); len(got) != 0 {
		t.Fatalf("completions for missing prefix: %v", got)
	}
}

func TestPredicateTokenSuggestion(t *testing.T) {
	st := suggestStore()
	s := New(st)
	q := query.MustParse("?x 'works at' ?y")
	suggs := s.Suggest(q)
	if len(suggs) != 1 {
		t.Fatalf("suggestions = %v", suggs)
	}
	sg := suggs[0]
	if sg.Resource != "worksFor" {
		t.Errorf("suggested %q, want worksFor", sg.Resource)
	}
	// 2 of the 3 token argument pairs are covered by worksFor.
	if want := 2.0 / 3.0; sg.Overlap < want-1e-9 || sg.Overlap > want+1e-9 {
		t.Errorf("overlap = %v, want %v", sg.Overlap, want)
	}
	if !strings.Contains(sg.Position, "predicate") {
		t.Errorf("position = %q", sg.Position)
	}
}

func TestEntityTokenSuggestion(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("member"), rdf.Resource("IvyLeague"))
	st.AddFact(rdf.Token("princeton university"), rdf.Token("is in"), rdf.Token("New Jersey"), rdf.SourceXKG, 0.5, rdf.NoProv)
	st.Freeze()
	s := New(st)
	q := query.MustParse("'princeton university' member ?x")
	suggs := s.Suggest(q)
	if len(suggs) != 1 {
		t.Fatalf("suggestions = %v", suggs)
	}
	if suggs[0].Resource != "PrincetonUniversity" {
		t.Errorf("suggested %q", suggs[0].Resource)
	}
	if !strings.Contains(suggs[0].Position, "subject") {
		t.Errorf("position = %q", suggs[0].Position)
	}
}

func TestNoSuggestionForResourceOnlyQuery(t *testing.T) {
	s := New(suggestStore())
	if suggs := s.Suggest(query.MustParse("?x worksFor ?y")); len(suggs) != 0 {
		t.Fatalf("suggestions for resource query: %v", suggs)
	}
}

func TestNoSuggestionBelowThreshold(t *testing.T) {
	st := suggestStore()
	s := New(st)
	s.MinOverlap = 0.9
	if suggs := s.Suggest(query.MustParse("?x 'works at' ?y")); len(suggs) != 0 {
		t.Fatalf("suggestion above impossible threshold: %v", suggs)
	}
}

func TestNoSuggestionForUnknownToken(t *testing.T) {
	s := New(suggestStore())
	if suggs := s.Suggest(query.MustParse("?x 'flies kites with' ?y")); len(suggs) != 0 {
		t.Fatalf("suggestion for unmatched token: %v", suggs)
	}
}

func TestRuleNotices(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("AlfredKleiner"), rdf.Resource("hasStudent"), rdf.Resource("AlbertEinstein"))
	st.Freeze()
	q := query.MustParse("AlbertEinstein hasAdvisor ?x")
	rules := []*relax.Rule{
		relax.MustParseRule("r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "inversion"),
	}
	rewrites := relax.NewExpander(rules).Expand(q)
	ans, _ := topk.New(st, topk.Options{K: 5}).Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d", len(ans))
	}
	notices := RuleNotices(ans)
	if len(notices) != 1 {
		t.Fatalf("notices = %v", notices)
	}
	n := notices[0]
	if n.RuleID != "r2" || n.Answers != 1 {
		t.Errorf("notice = %+v", n)
	}
	if !strings.Contains(n.Message, "opposite direction") {
		t.Errorf("inversion message = %q", n.Message)
	}
}

func TestRuleNoticesEmptyWithoutRelaxation(t *testing.T) {
	st := suggestStore()
	q := query.MustParse("?x worksFor ?y")
	rewrites := relax.NewExpander(nil).Expand(q)
	ans, _ := topk.New(st, topk.Options{K: 5}).Evaluate(q, rewrites)
	if len(ans) == 0 {
		t.Fatal("no answers")
	}
	if notices := RuleNotices(ans); len(notices) != 0 {
		t.Fatalf("notices without relaxation: %v", notices)
	}
}

func TestRuleNoticesCountAnswers(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("K"), rdf.Resource("hasStudent"), rdf.Resource("A"))
	st.AddKG(rdf.Resource("K"), rdf.Resource("hasStudent"), rdf.Resource("B"))
	st.Freeze()
	q := query.MustParse("?s hasAdvisor ?a")
	rules := []*relax.Rule{
		relax.MustParseRule("r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "inversion"),
	}
	rewrites := relax.NewExpander(rules).Expand(q)
	ans, _ := topk.New(st, topk.Options{K: 5}).Evaluate(q, rewrites)
	notices := RuleNotices(ans)
	if len(notices) != 1 || notices[0].Answers != 2 {
		t.Fatalf("notices = %+v", notices)
	}
}
