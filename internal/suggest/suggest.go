// Package suggest implements TriniT's query-suggestion features (§5):
//
//   - auto-completion of KG resources and XKG token phrases while typing;
//   - token → resource suggestions: when the matches of a textual token
//     overlap significantly with the matches of a highly related KG
//     resource, the canonical resource is suggested for future queries;
//   - structural-rule notices: when a structural relaxation (e.g. a
//     predicate inversion) contributed to the answers, the user is told,
//     gradually teaching them the KG's structure.
package suggest

import (
	"fmt"
	"sort"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
	"trinit/internal/text"
	"trinit/internal/topk"
)

// Suggester provides completions and reformulation suggestions over one
// frozen store.
type Suggester struct {
	st   *store.Store
	trie *text.Trie
	// MinOverlap is the match-overlap threshold for token → resource
	// suggestions.
	MinOverlap float64
}

// New builds a suggester; the store must be frozen.
func New(st *store.Store) *Suggester {
	s := &Suggester{st: st, trie: text.NewTrie(), MinOverlap: 0.3}
	// Weight completions by how often the term occurs in triples, so
	// that prominent entities and predicates surface first.
	freq := make(map[rdf.TermID]int)
	for i := 0; i < st.Len(); i++ {
		t := st.Triple(store.ID(i))
		freq[t.S]++
		freq[t.P]++
		freq[t.O]++
	}
	ids := make([]rdf.TermID, 0, len(freq))
	for id := range freq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		term := st.Dict().Term(id)
		s.trie.Insert(term.Text, uint32(id), float64(freq[id]))
	}
	return s
}

// Complete returns up to limit auto-completions for a prefix the user is
// typing into an S, P or O field.
func (s *Suggester) Complete(prefix string, limit int) []text.Completion {
	return s.trie.Complete(prefix, limit)
}

// TokenSuggestion proposes replacing a textual token of the query with a
// canonical KG resource.
type TokenSuggestion struct {
	// Token is the user's textual token.
	Token string
	// Resource is the suggested canonical resource.
	Resource string
	// Overlap is the fraction of the token's matches that the
	// resource's matches cover.
	Overlap float64
	// Position describes where in the query the token occurred,
	// e.g. "pattern 1, predicate".
	Position string
}

// Suggest computes token → resource suggestions for every textual token in
// the query. For a token in predicate position, candidate KG predicates are
// compared by argument-pair overlap; for subject/object tokens, candidate
// resources are compared by the overlap of the triple sets they match.
func (s *Suggester) Suggest(q *query.Query) []TokenSuggestion {
	var out []TokenSuggestion
	for pi, p := range q.Patterns {
		slots := [3]query.Slot{p.S, p.P, p.O}
		roles := [3]string{"subject", "predicate", "object"}
		for si, sl := range slots {
			if sl.IsVar() || sl.Term.Kind != rdf.KindToken {
				continue
			}
			var sugg *TokenSuggestion
			if si == 1 {
				sugg = s.predicateSuggestion(sl.Term.Text)
			} else {
				sugg = s.entitySuggestion(sl.Term.Text)
			}
			if sugg != nil {
				sugg.Position = fmt.Sprintf("pattern %d, %s", pi+1, roles[si])
				out = append(out, *sugg)
			}
		}
	}
	return out
}

// predicateSuggestion finds the KG predicate whose argument pairs best
// cover the matches of the token predicate.
func (s *Suggester) predicateSuggestion(tok string) *TokenSuggestion {
	// Gather the argument pairs matched by the token predicate.
	tokPairs := make(map[[2]rdf.TermID]bool)
	for _, cand := range s.st.MatchToken(tok, store.MaskToken, 0.5, 0) {
		for pair := range s.st.Args(cand.Term) {
			tokPairs[pair] = true
		}
	}
	if len(tokPairs) == 0 {
		return nil
	}
	best := TokenSuggestion{Token: tok}
	for _, ps := range s.st.Predicates() {
		term := s.st.Dict().Term(ps.Pred)
		if term.Kind != rdf.KindResource {
			continue
		}
		args := s.st.Args(ps.Pred)
		inter := 0
		for pair := range tokPairs {
			if args[pair] {
				inter++
			}
		}
		overlap := float64(inter) / float64(len(tokPairs))
		if overlap > best.Overlap {
			best.Overlap = overlap
			best.Resource = term.Text
		}
	}
	if best.Overlap < s.MinOverlap || best.Resource == "" {
		return nil
	}
	return &best
}

// entitySuggestion finds the KG resource whose label is most similar to a
// subject/object token, weighted by how many triples mention it.
func (s *Suggester) entitySuggestion(tok string) *TokenSuggestion {
	cands := s.st.MatchToken(tok, store.MaskResource, s.MinOverlap, 5)
	if len(cands) == 0 {
		return nil
	}
	best := cands[0]
	return &TokenSuggestion{
		Token:    tok,
		Resource: s.st.Dict().Term(best.Term).Text,
		Overlap:  best.Sim,
	}
}

// Notice informs the user that a structural relaxation contributed to the
// answer set (§5: "When a structural relaxation rule ... is invoked and
// contributes to the final answer set, TriniT informs the user").
type Notice struct {
	RuleID  string
	Origin  string
	Rule    string
	Message string
	// Answers counts how many of the returned answers used the rule.
	Answers int
}

// RuleNotices inspects the answers' best derivations and reports each rule
// that contributed, with a human-readable message.
func RuleNotices(answers []topk.Answer) []Notice {
	type agg struct {
		notice Notice
	}
	byID := make(map[string]*agg)
	var order []string
	for _, a := range answers {
		for _, r := range a.Derivation.Rewrite.Applied {
			if _, ok := byID[r.ID]; !ok {
				msg := fmt.Sprintf("relaxation %q (%s, weight %.2f) contributed to the answers", r.ID, r.Origin, r.Weight)
				if r.Origin == "inversion" {
					msg = fmt.Sprintf("your query's predicate runs in the opposite direction in the KG; rule %q inverted it", r.ID)
				}
				byID[r.ID] = &agg{notice: Notice{
					RuleID:  r.ID,
					Origin:  r.Origin,
					Rule:    r.String(),
					Message: msg,
				}}
				order = append(order, r.ID)
			}
			byID[r.ID].notice.Answers++
		}
	}
	out := make([]Notice, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id].notice)
	}
	return out
}
