// Package experiments implements the reproduction experiments E1–E6
// catalogued in DESIGN.md §4 — one per evaluation artefact of the paper —
// plus the ablation studies E7 (rule sources) and E8 (scoring effects).
// The same runners back both cmd/trinit-bench (human-readable tables) and
// the root-level testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"trinit/internal/dataset"
	"trinit/internal/eval"
	"trinit/internal/ned"
	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/store"
	"trinit/internal/suggest"
	"trinit/internal/topk"
	"trinit/internal/xkg"
)

// System is one configuration of the E1 comparison.
type System struct {
	Name     string
	UseXKG   bool
	UseRelax bool
}

// Systems returns the four E1 configurations, strongest first.
func Systems() []System {
	return []System{
		{Name: "TriniT (XKG + relaxation)", UseXKG: true, UseRelax: true},
		{Name: "TriniT w/o XKG (KG + relaxation)", UseXKG: false, UseRelax: true},
		{Name: "TriniT w/o relaxation (XKG only)", UseXKG: true, UseRelax: false},
		{Name: "KG-only exact match (baseline)", UseXKG: false, UseRelax: false},
	}
}

// Instance is a built system: store plus rule set, with one persistent
// evaluator per processing configuration (their pattern-list caches model
// the precomputed index lists of the original backend).
type Instance struct {
	Store      *store.Store
	Rules      []*relax.Rule
	evaluators map[topk.Options]*topk.Evaluator
}

// Build constructs an instance of a system over a generated world.
func Build(w *dataset.World, sys System) *Instance {
	st := store.New(nil, nil)
	w.PopulateKG(st)
	if sys.UseXKG {
		linker := ned.NewLinker(st)
		xkg.Build(st, linker, w.Docs(), xkg.DefaultOptions())
	}
	st.Freeze()
	inst := &Instance{Store: st}
	if sys.UseRelax {
		inst.Rules = append(inst.Rules,
			relax.MustParseRule("advisor-inv", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual"))
		mopts := relax.MiningOptions{MinSupport: 2, MinWeight: 0.1, IncludeInverse: true}
		inst.Rules = append(inst.Rules, relax.Mine(st, mopts)...)
		inst.Rules = append(inst.Rules,
			relax.MineCompositions(st, []string{"locatedIn", "partOf", "memberOf"}, mopts)...)
	}
	return inst
}

// RunQuery evaluates one workload query on an instance and returns the
// ranked answer texts of the projected variable.
func (inst *Instance) RunQuery(text, projVar string, k int, mode topk.Mode) ([]string, topk.Metrics, error) {
	return inst.RunQueryOpts(text, projVar, topk.Options{K: k, Mode: mode})
}

// RunQueryOpts is RunQuery with full control over the processing options,
// for kernel and planner ablations. Evaluators (and their warmed
// match-list caches) are kept per distinct option set with K normalised
// out, so a k sweep reuses one warmed cache per configuration — the
// caches model the precomputed index lists of the original backend.
func (inst *Instance) RunQueryOpts(text, projVar string, opts topk.Options) ([]string, topk.Metrics, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, topk.Metrics{}, err
	}
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(inst.Rules).Expand(q)
	if inst.evaluators == nil {
		inst.evaluators = make(map[topk.Options]*topk.Evaluator)
	}
	key := opts
	key.K = 0
	ev, ok := inst.evaluators[key]
	if !ok {
		ev = topk.New(inst.Store, opts)
		inst.evaluators[key] = ev
	}
	answers, m, _ := ev.Run(context.Background(), q, rewrites, topk.RunConfig{K: opts.K})
	ranked := make([]string, 0, len(answers))
	for _, a := range answers {
		ranked = append(ranked, inst.Store.Dict().Term(a.Bindings[projVar]).Text)
	}
	return ranked, m, nil
}

// ---------------------------------------------------------------------------
// E1 — §4 headline: NDCG@5 over 70 entity-relationship queries.
// ---------------------------------------------------------------------------

// E1Row is one system's effectiveness over the workload.
type E1Row struct {
	System string
	eval.Report
	PerCategory map[string]float64 // NDCG@5 per query category
}

// RunE1 builds every system over the world and evaluates the workload.
func RunE1(w *dataset.World, numQueries, k int) []E1Row {
	workload := w.Workload(numQueries)
	var rows []E1Row
	for _, sys := range Systems() {
		inst := Build(w, sys)
		var results []eval.QueryResult
		perCat := make(map[string][]float64)
		for _, wq := range workload {
			ranked, _, err := inst.RunQuery(wq.Text, wq.Var, k, topk.Incremental)
			if err != nil {
				continue
			}
			results = append(results, eval.QueryResult{ID: wq.ID, Ranked: ranked, Judged: wq.Judgments})
			perCat[wq.Category] = append(perCat[wq.Category], eval.NDCG(ranked, wq.Judgments, 5))
		}
		row := E1Row{System: sys.Name, Report: eval.Evaluate(results), PerCategory: make(map[string]float64)}
		for cat, vals := range perCat {
			row.PerCategory[cat] = eval.Mean(vals)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatE1 renders the E1 table.
func FormatE1(rows []E1Row) string {
	var b strings.Builder
	b.WriteString("E1: answer quality over the entity-relationship workload (paper §4: TriniT NDCG@5 = 0.775 vs next best 0.419)\n")
	fmt.Fprintf(&b, "%-36s %8s %8s %8s %8s %8s\n", "system", "NDCG@5", "NDCG@10", "P@5", "MAP", "MRR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			r.System, r.NDCG5, r.NDCG10, r.P5, r.MAP, r.MRR)
	}
	b.WriteString("\nNDCG@5 per query category:\n")
	cats := []string{"born", "advisor", "affiliation", "prize", "cityjoin", "leaguejoin"}
	fmt.Fprintf(&b, "%-36s", "system")
	for _, c := range cats {
		fmt.Fprintf(&b, " %10s", c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s", r.System)
		for _, c := range cats {
			fmt.Fprintf(&b, " %10.3f", r.PerCategory[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E2 — Figure 4: relaxation rules mined from the XKG with §3's weights.
// ---------------------------------------------------------------------------

// E2Result holds the mined rule inventory.
type E2Result struct {
	Alignment    []*relax.Rule
	Inversion    []*relax.Rule
	Composition  []*relax.Rule
	TotalMined   int
	KGToXKG      int // rules bridging a KG predicate to a token predicate
	SupportSweep []E2SweepRow
}

// E2SweepRow reports rule counts for one min-support setting.
type E2SweepRow struct {
	MinSupport int
	Rules      int
}

// RunE2 mines rules from the full XKG instance.
func RunE2(w *dataset.World) E2Result {
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: false})
	mopts := relax.MiningOptions{MinSupport: 2, MinWeight: 0.1, IncludeInverse: true}
	mined := relax.Mine(inst.Store, mopts)
	comp := relax.MineCompositions(inst.Store, []string{"locatedIn", "partOf", "memberOf"}, mopts)

	res := E2Result{Composition: comp, TotalMined: len(mined) + len(comp)}
	for _, r := range mined {
		if r.Origin == "inversion" {
			res.Inversion = append(res.Inversion, r)
		} else {
			res.Alignment = append(res.Alignment, r)
		}
		if bridgesKGToXKG(r) {
			res.KGToXKG++
		}
	}
	for _, ms := range []int{1, 2, 3, 5, 10} {
		n := len(relax.Mine(inst.Store, relax.MiningOptions{MinSupport: ms, MinWeight: 0.1, IncludeInverse: true}))
		res.SupportSweep = append(res.SupportSweep, E2SweepRow{MinSupport: ms, Rules: n})
	}
	return res
}

// bridgesKGToXKG reports whether a single-pattern rule rewrites between a
// resource predicate and a token predicate (Figure 4 rules 3/4 shape).
func bridgesKGToXKG(r *relax.Rule) bool {
	if len(r.LHS) != 1 || len(r.RHS) != 1 {
		return false
	}
	l, rr := r.LHS[0].P, r.RHS[0].P
	if l.IsVar() || rr.IsVar() {
		return false
	}
	return l.Term.Kind != rr.Term.Kind
}

// FormatE2 renders the E2 tables.
func FormatE2(res E2Result, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2: relaxation rules mined with w(p1->p2) = |args(p1) ∩ args(p2)| / |args(p2)| (Figure 4 analogues)\n")
	fmt.Fprintf(&b, "total mined: %d (alignment %d, inversion %d, composition %d); KG<->XKG bridges: %d\n\n",
		res.TotalMined, len(res.Alignment), len(res.Inversion), len(res.Composition), res.KGToXKG)
	section := func(name string, rules []*relax.Rule) {
		fmt.Fprintf(&b, "top %s rules:\n", name)
		for i, r := range rules {
			if i >= topN {
				break
			}
			fmt.Fprintf(&b, "  %s\n", r)
		}
		b.WriteByte('\n')
	}
	section("alignment", res.Alignment)
	section("inversion", res.Inversion)
	section("composition", res.Composition)
	b.WriteString("min-support sweep (alignment+inversion rules):\n")
	for _, row := range res.SupportSweep {
		fmt.Fprintf(&b, "  minSupport=%2d  rules=%d\n", row.MinSupport, row.Rules)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E3 — Figures 1–3 and §1: the users A–D demo scenario.
// ---------------------------------------------------------------------------

// E3Row is one user's query before and after relaxation.
type E3Row struct {
	User           string
	Need           string
	Query          string
	AnswersBefore  int
	AnswersAfter   int
	TopAnswer      string
	TopScore       float64
	ExpectedAnswer string
	Correct        bool
	RulesInvoked   []string
}

// RunE3 replays the Figure 2 queries against the Figure 1+3 XKG.
func RunE3() []E3Row {
	d := dataset.NewDemo()
	var rows []E3Row
	for _, dq := range d.Queries {
		q := query.MustParse(dq.Query)
		q.Projection = q.ProjectedVars()

		plain, _ := topk.New(d.Store, topk.Options{K: 5}).Evaluate(q, relax.NewExpander(nil).Expand(q))
		full, _ := topk.New(d.Store, topk.Options{K: 5}).Evaluate(q, relax.NewExpander(d.Rules).Expand(q))

		row := E3Row{
			User:           dq.User,
			Need:           dq.Need,
			Query:          dq.Query,
			AnswersBefore:  len(plain),
			AnswersAfter:   len(full),
			ExpectedAnswer: dq.Want,
		}
		if len(full) > 0 {
			top := full[0]
			for _, v := range q.ProjectedVars() {
				row.TopAnswer = d.Store.Dict().Term(top.Bindings[v]).Text
			}
			row.TopScore = top.Score
			for _, r := range top.Derivation.Rewrite.Applied {
				row.RulesInvoked = append(row.RulesInvoked, r.ID)
			}
			row.Correct = row.TopAnswer == dq.Want
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatE3 renders the E3 table.
func FormatE3(rows []E3Row) string {
	var b strings.Builder
	b.WriteString("E3: the paper's users A-D (Figure 2) on the Figure 1 KG + Figure 3 XKG\n")
	fmt.Fprintf(&b, "%-4s %-55s %7s %7s %-40s %7s %s\n", "user", "query", "before", "after", "top answer", "score", "rules")
	for _, r := range rows {
		status := "OK"
		if !r.Correct {
			status = "WRONG (want " + r.ExpectedAnswer + ")"
		}
		fmt.Fprintf(&b, "%-4s %-55s %7d %7d %-40s %7.3f %v  [%s]\n",
			r.User, r.Query, r.AnswersBefore, r.AnswersAfter, r.TopAnswer, r.TopScore, r.RulesInvoked, status)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E4 — §5 scale statistics: KG vs XKG triple counts and extraction yield.
// ---------------------------------------------------------------------------

// E4Result reports the constructed XKG's statistics.
type E4Result struct {
	Stats       store.Stats
	Pipeline    xkg.Stats
	Ratio       float64 // XKG-to-KG triple ratio (paper: 390M/50M ≈ 7.8)
	TopRelCount int
}

// RunE4 builds the XKG and reports statistics.
func RunE4(w *dataset.World) E4Result {
	st := store.New(nil, nil)
	w.PopulateKG(st)
	linker := ned.NewLinker(st)
	ps := xkg.Build(st, linker, w.Docs(), xkg.DefaultOptions())
	st.Freeze()
	s := st.Stats()
	ratio := 0.0
	if s.KGTriples > 0 {
		ratio = float64(s.XKGTriples) / float64(s.KGTriples)
	}
	return E4Result{Stats: s, Pipeline: ps, Ratio: ratio}
}

// FormatE4 renders the E4 table.
func FormatE4(r E4Result) string {
	var b strings.Builder
	b.WriteString("E4: XKG construction statistics (paper §5: 440M distinct triples = 50M KG + 390M Open IE; ratio 7.8)\n")
	fmt.Fprintf(&b, "  documents            %d\n", r.Pipeline.Documents)
	fmt.Fprintf(&b, "  sentences            %d\n", r.Pipeline.Sentences)
	fmt.Fprintf(&b, "  raw extractions      %d\n", r.Pipeline.Extractions)
	fmt.Fprintf(&b, "  kept after filters   %d\n", r.Pipeline.Kept)
	fmt.Fprintf(&b, "  linked subjects      %d\n", r.Pipeline.LinkedSubj)
	fmt.Fprintf(&b, "  linked objects       %d\n", r.Pipeline.LinkedObj)
	fmt.Fprintf(&b, "  KG triples           %d\n", r.Stats.KGTriples)
	fmt.Fprintf(&b, "  XKG token triples    %d\n", r.Stats.XKGTriples)
	fmt.Fprintf(&b, "  distinct triples     %d\n", r.Stats.Triples)
	fmt.Fprintf(&b, "  XKG/KG ratio         %.2f (paper: 7.8)\n", r.Ratio)
	fmt.Fprintf(&b, "  predicates           %d (%d canonical, %d token phrases)\n", r.Stats.Predicates, r.Stats.ResourcePreds, r.Stats.TokenPreds)
	fmt.Fprintf(&b, "  provenance records   %d\n", r.Stats.ProvenanceRecs)
	return b.String()
}

// ---------------------------------------------------------------------------
// E5 — §4 efficiency: incremental top-k vs exhaustive rewriting.
// ---------------------------------------------------------------------------

// E5Row is one (k, mode) measurement averaged over the workload.
type E5Row struct {
	K                  int     `json:"k"`
	Mode               string  `json:"mode"`
	MeanMillis         float64 `json:"mean_millis"`
	MeanAccesses       float64 `json:"mean_sorted_accesses"` // sorted accesses into per-pattern lists
	MeanIndexScanned   float64 `json:"mean_index_scanned"`   // posting entries touched building lists
	MeanRewritesEval   float64 `json:"mean_rewrites_evaluated"`
	MeanRewritesSkip   float64 `json:"mean_rewrites_skipped"`
	MeanJoinBranches   float64 `json:"mean_join_branches"`
	MeanPrunedBranches float64 `json:"mean_pruned_branches"`
	MeanHashProbes     float64 `json:"mean_hash_probes"`      // hash-index probes replacing list scans
	MeanSemiDropped    float64 `json:"mean_semijoin_dropped"` // entries pruned by semi-join reduction
	MeanTokenRes       float64 `json:"mean_token_resolutions"`
	MeanScanFallbacks  float64 `json:"mean_scan_fallbacks"`
}

// RunE5 measures processing cost across k for both modes on the full
// system.
func RunE5(w *dataset.World, numQueries int, ks []int) []E5Row {
	if len(ks) == 0 {
		ks = []int{1, 5, 10, 50}
	}
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: true})
	workload := w.Workload(numQueries)
	var rows []E5Row
	for _, k := range ks {
		for _, mode := range []topk.Mode{topk.Incremental, topk.Exhaustive} {
			var ms, acc, scan, rev, rsk, jb, pb, hp, sd, tr, sf float64
			n := 0
			for _, wq := range workload {
				start := time.Now()
				_, m, err := inst.RunQuery(wq.Text, wq.Var, k, mode)
				if err != nil {
					continue
				}
				ms += float64(time.Since(start).Microseconds()) / 1000
				acc += float64(m.SortedAccesses)
				scan += float64(m.IndexScanned)
				rev += float64(m.RewritesEvaluated)
				rsk += float64(m.RewritesSkipped)
				jb += float64(m.JoinBranches)
				pb += float64(m.PrunedBranches)
				hp += float64(m.HashProbes)
				sd += float64(m.SemiJoinDropped)
				tr += float64(m.TokenResolutions)
				sf += float64(m.ScanFallbacks)
				n++
			}
			if n == 0 {
				continue
			}
			name := "incremental"
			if mode == topk.Exhaustive {
				name = "exhaustive"
			}
			rows = append(rows, E5Row{
				K: k, Mode: name,
				MeanMillis:         ms / float64(n),
				MeanAccesses:       acc / float64(n),
				MeanIndexScanned:   scan / float64(n),
				MeanRewritesEval:   rev / float64(n),
				MeanRewritesSkip:   rsk / float64(n),
				MeanJoinBranches:   jb / float64(n),
				MeanPrunedBranches: pb / float64(n),
				MeanHashProbes:     hp / float64(n),
				MeanSemiDropped:    sd / float64(n),
				MeanTokenRes:       tr / float64(n),
				MeanScanFallbacks:  sf / float64(n),
			})
		}
	}
	return rows
}

// FormatE5 renders the E5 table.
func FormatE5(rows []E5Row) string {
	var b strings.Builder
	b.WriteString("E5: top-k processing cost, incremental vs exhaustive (paper §4: avoiding the full rewriting space is crucial)\n")
	fmt.Fprintf(&b, "%4s %-12s %10s %12s %12s %10s %10s %12s %12s %10s %10s\n",
		"k", "mode", "ms/query", "sorted.acc", "idx.scan", "rw.eval", "rw.skip", "join.br", "pruned.br", "probes", "semi.drop")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %-12s %10.2f %12.1f %12.1f %10.2f %10.2f %12.1f %12.1f %10.1f %10.1f\n",
			r.K, r.Mode, r.MeanMillis, r.MeanAccesses, r.MeanIndexScanned, r.MeanRewritesEval, r.MeanRewritesSkip,
			r.MeanJoinBranches, r.MeanPrunedBranches, r.MeanHashProbes, r.MeanSemiDropped)
	}
	return b.String()
}

// E5KernelRow is one join-kernel configuration measured over the workload.
type E5KernelRow struct {
	Kernel           string  `json:"kernel"`
	MeanMillis       float64 `json:"mean_millis"`
	NsPerOp          float64 `json:"ns_per_op"`
	MeanAccesses     float64 `json:"mean_sorted_accesses"`
	MeanJoinBranches float64 `json:"mean_join_branches"`
	MeanHashProbes   float64 `json:"mean_hash_probes"`
	MeanSemiDropped  float64 `json:"mean_semijoin_dropped"`
}

// RunE5Kernels compares join-kernel configurations on the full system:
// the legacy full-scan kernel (the PR 1 baseline), hash-index probing
// alone, and hash probing plus semi-join reduction (the default). Answers
// are identical across configurations; only the work differs.
func RunE5Kernels(w *dataset.World, numQueries, k int) []E5KernelRow {
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: true})
	workload := w.Workload(numQueries)
	configs := []struct {
		name string
		opts topk.Options
	}{
		{"scan (legacy)", topk.Options{K: k, NoHashJoin: true}},
		{"hash-probe", topk.Options{K: k, NoSemiJoin: true}},
		{"hash+semijoin", topk.Options{K: k}},
	}
	var rows []E5KernelRow
	for _, cfg := range configs {
		var ms, acc, jb, hp, sd float64
		n := 0
		for _, wq := range workload {
			start := time.Now()
			_, m, err := inst.RunQueryOpts(wq.Text, wq.Var, cfg.opts)
			if err != nil {
				continue
			}
			ms += float64(time.Since(start).Microseconds()) / 1000
			acc += float64(m.SortedAccesses)
			jb += float64(m.JoinBranches)
			hp += float64(m.HashProbes)
			sd += float64(m.SemiJoinDropped)
			n++
		}
		if n == 0 {
			continue
		}
		rows = append(rows, E5KernelRow{
			Kernel:           cfg.name,
			MeanMillis:       ms / float64(n),
			NsPerOp:          ms / float64(n) * 1e6,
			MeanAccesses:     acc / float64(n),
			MeanJoinBranches: jb / float64(n),
			MeanHashProbes:   hp / float64(n),
			MeanSemiDropped:  sd / float64(n),
		})
	}
	return rows
}

// FormatE5Kernels renders the kernel-comparison table.
func FormatE5Kernels(rows []E5KernelRow) string {
	var b strings.Builder
	b.WriteString("E5c: join-kernel ablation at k=10, incremental mode (answers identical across kernels)\n")
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %10s %10s\n",
		"kernel", "ms/query", "sorted.acc", "join.br", "probes", "semi.drop")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10.2f %12.1f %12.1f %10.1f %10.1f\n",
			r.Kernel, r.MeanMillis, r.MeanAccesses, r.MeanJoinBranches, r.MeanHashProbes, r.MeanSemiDropped)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E6 — §5 demo features: suggestion and auto-completion quality.
// ---------------------------------------------------------------------------

// E6Result reports suggestion coverage over token-predicate queries.
type E6Result struct {
	TokenQueries       int
	Suggested          int
	CorrectSuggestions int
	CompletionChecks   int
	CompletionHits     int
}

// RunE6 issues token-predicate variants of KG queries and checks that the
// suggester proposes the canonical predicate back; it also verifies
// auto-completion of entity-name prefixes.
func RunE6(w *dataset.World) E6Result {
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: false})
	sugg := suggest.New(inst.Store)

	var res E6Result
	// Token variants of canonical predicates, as a user would type them.
	variants := map[string]string{
		"'worked at'":   "affiliation",
		"'lectured at'": "affiliation",
		"'was born in'": "bornIn",
	}
	keys := make([]string, 0, len(variants))
	for k := range variants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, tok := range keys {
		want := variants[tok]
		q := query.MustParse("?x " + tok + " ?y")
		res.TokenQueries++
		ss := sugg.Suggest(q)
		if len(ss) == 0 {
			continue
		}
		res.Suggested++
		if ss[0].Resource == want {
			res.CorrectSuggestions++
		}
	}
	// Auto-completion: every university must complete from a prefix.
	for _, u := range w.Universities() {
		res.CompletionChecks++
		prefix := u[:4]
		for _, c := range sugg.Complete(prefix, 50) {
			if c.Text == u {
				res.CompletionHits++
				break
			}
		}
	}
	return res
}

// FormatE6 renders the E6 summary.
func FormatE6(r E6Result) string {
	var b strings.Builder
	b.WriteString("E6: query suggestion and auto-completion (paper §5 demo features)\n")
	fmt.Fprintf(&b, "  token-predicate queries      %d\n", r.TokenQueries)
	fmt.Fprintf(&b, "  received a suggestion        %d\n", r.Suggested)
	fmt.Fprintf(&b, "  suggestion was canonical     %d\n", r.CorrectSuggestions)
	fmt.Fprintf(&b, "  completion prefix checks     %d\n", r.CompletionChecks)
	fmt.Fprintf(&b, "  completion hits              %d\n", r.CompletionHits)
	return b.String()
}

// E5DepthRow reports rewrite-space growth and cost for one relaxation
// depth bound.
type E5DepthRow struct {
	MaxDepth     int
	MeanRewrites float64
	MeanMillis   float64
	NDCG5        float64
}

// RunE5Depth sweeps the relaxation-depth bound, showing why the rewrite
// space must be pruned: it grows combinatorially with derivation depth
// while answer quality saturates.
func RunE5Depth(w *dataset.World, numQueries int, depths []int) []E5DepthRow {
	if len(depths) == 0 {
		depths = []int{0, 1, 2, 3}
	}
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: true})
	workload := w.Workload(numQueries)
	var rows []E5DepthRow
	for _, d := range depths {
		ev := topk.New(inst.Store, topk.Options{K: 10})
		var rewrites, ms float64
		var ndcg []float64
		n := 0
		for _, wq := range workload {
			q, err := query.Parse(wq.Text)
			if err != nil {
				continue
			}
			q.Projection = q.ProjectedVars()
			exp := relax.NewExpander(inst.Rules)
			exp.MaxDepth = d
			exp.MaxRewrites = 256
			start := time.Now()
			rws := exp.Expand(q)
			answers, _ := ev.Evaluate(q, rws)
			ms += float64(time.Since(start).Microseconds()) / 1000
			rewrites += float64(len(rws))
			ranked := make([]string, 0, len(answers))
			for _, a := range answers {
				ranked = append(ranked, inst.Store.Dict().Term(a.Bindings[wq.Var]).Text)
			}
			ndcg = append(ndcg, eval.NDCG(ranked, wq.Judgments, 5))
			n++
		}
		if n == 0 {
			continue
		}
		rows = append(rows, E5DepthRow{
			MaxDepth:     d,
			MeanRewrites: rewrites / float64(n),
			MeanMillis:   ms / float64(n),
			NDCG5:        eval.Mean(ndcg),
		})
	}
	return rows
}

// FormatE5Depth renders the depth sweep.
func FormatE5Depth(rows []E5DepthRow) string {
	var b strings.Builder
	b.WriteString("E5b: rewrite-space growth vs relaxation depth (cap 256 rewrites/query)\n")
	fmt.Fprintf(&b, "%9s %12s %10s %8s\n", "maxDepth", "rewrites/q", "ms/query", "NDCG@5")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d %12.1f %10.2f %8.3f\n", r.MaxDepth, r.MeanRewrites, r.MeanMillis, r.NDCG5)
	}
	return b.String()
}
