package experiments

// E5e — serial vs parallel rewrite scheduling. The paper's incremental
// processor bounds the rewrite space with the running k-th score; the
// parallel scheduler evaluates that space on concurrent workers sharing
// one atomically-published bound. Answers are byte-identical at every
// width (pinned by the repo-root differential test); this experiment
// measures the wall-clock effect. On a single-core host the parallel
// rows degrade gracefully to roughly serial cost plus scheduling
// overhead; the speedup column is meaningful on multi-core hosts.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"trinit/internal/dataset"
	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/topk"
)

// E5ParallelRow is one scheduler width measured over the wide-rewrite
// workload.
type E5ParallelRow struct {
	Parallelism      int     `json:"parallelism"`
	MeanMillis       float64 `json:"mean_millis"`
	NsPerOp          float64 `json:"ns_per_op"`
	Speedup          float64 `json:"speedup_vs_serial"`
	MeanJoinBranches float64 `json:"mean_join_branches"`
	MeanRewritesEval float64 `json:"mean_rewrites_evaluated"`
}

// wideRewriteJobs pre-expands a wide rewrite space (relaxation depth 3,
// up to 256 rewrites per query) for every workload query, so the
// measurement isolates the scheduler from expansion cost.
type wideRewriteJob struct {
	Query    *query.Query
	Rewrites []relax.Rewrite
}

func wideRewriteWorkload(inst *Instance, w *dataset.World, numQueries int) []wideRewriteJob {
	var jobs []wideRewriteJob
	for _, wq := range w.Workload(numQueries) {
		q, err := query.Parse(wq.Text)
		if err != nil {
			continue
		}
		q.Projection = q.ProjectedVars()
		exp := relax.NewExpander(inst.Rules)
		exp.MaxDepth = 3
		exp.MaxRewrites = 256
		jobs = append(jobs, wideRewriteJob{Query: q, Rewrites: exp.Expand(q)})
	}
	return jobs
}

// RunE5Parallel measures the parallel rewrite scheduler against the
// serial schedule on a wide-rewrite workload (depth-3 expansion, up to
// 256 rewrites per query), at k answers per query. The serial row is
// always measured first and anchors the speedup column; the shared
// match-list cache is warmed before timing so every width sees
// identical list-build work.
func RunE5Parallel(w *dataset.World, numQueries, k int, parallelisms []int) []E5ParallelRow {
	if len(parallelisms) == 0 {
		parallelisms = []int{1, 2, 4, 8}
	}
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: true})
	jobs := wideRewriteWorkload(inst, w, numQueries)
	ev := topk.New(inst.Store, topk.Options{K: k})
	for _, j := range jobs {
		// Warm-up: builds and caches every match list and hash index.
		ev.Run(context.Background(), j.Query, j.Rewrites, topk.RunConfig{NoTrace: true})
	}

	measure := func(p int) E5ParallelRow {
		var ms, jb, rev float64
		for _, j := range jobs {
			start := time.Now()
			_, m, _ := ev.Run(context.Background(), j.Query, j.Rewrites,
				topk.RunConfig{NoTrace: true, Parallelism: p})
			ms += float64(time.Since(start).Microseconds()) / 1000
			jb += float64(m.JoinBranches)
			rev += float64(m.RewritesEvaluated)
		}
		n := float64(len(jobs))
		return E5ParallelRow{
			Parallelism:      p,
			MeanMillis:       ms / n,
			NsPerOp:          ms / n * 1e6,
			MeanJoinBranches: jb / n,
			MeanRewritesEval: rev / n,
		}
	}

	serial := measure(1)
	var rows []E5ParallelRow
	for _, p := range parallelisms {
		row := serial
		if p != 1 {
			row = measure(p)
		}
		if row.MeanMillis > 0 {
			row.Speedup = serial.MeanMillis / row.MeanMillis
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatE5Parallel renders the E5e table.
func FormatE5Parallel(rows []E5ParallelRow) string {
	var b strings.Builder
	b.WriteString("E5e: serial vs parallel rewrite scheduling on the wide-rewrite workload (depth-3 expansion, k=10; answers byte-identical at every width)\n")
	fmt.Fprintf(&b, "%11s %10s %14s %8s %12s %10s\n",
		"parallelism", "ms/query", "ns/op", "speedup", "join.br", "rw.eval")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11d %10.3f %14.0f %7.2fx %12.1f %10.2f\n",
			r.Parallelism, r.MeanMillis, r.NsPerOp, r.Speedup, r.MeanJoinBranches, r.MeanRewritesEval)
	}
	return b.String()
}
