package experiments

// E5f — block-at-a-time vs tuple-at-a-time join execution. Both kernels
// run the same hash-probed, semi-join-reduced plan and return
// byte-identical rankings (pinned by the repo-root differential tests);
// this experiment measures the wall-clock and join-work effect of
// extending a columnar frontier block per depth instead of backtracking
// tuple by tuple. The workload is the wide-rewrite expansion (depth-3,
// up to 256 rewrites per query) plus the kernel worst-case join query of
// the BenchmarkJoinKernel* suite, with the shared match-list cache
// warmed before timing so both kernels see identical list-build work.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"trinit/internal/dataset"
	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/topk"
)

// E5BlockRow is one join-execution strategy measured over the workload.
type E5BlockRow struct {
	Kernel           string  `json:"kernel"`
	MeanMillis       float64 `json:"mean_millis"`
	NsPerOp          float64 `json:"ns_per_op"`
	Speedup          float64 `json:"speedup_vs_tuple"`
	MeanJoinBranches float64 `json:"mean_join_branches"`
	MeanHashProbes   float64 `json:"mean_hash_probes"`
	MeanBlocks       float64 `json:"mean_blocks_emitted"`
	MeanRowsFiltered float64 `json:"mean_block_rows_filtered"`
}

// RunE5Blocks measures tuple-at-a-time (NoBlockJoin) against
// block-at-a-time execution at k answers per query. The tuple row is
// measured first and anchors the speedup column.
func RunE5Blocks(w *dataset.World, numQueries, k int) []E5BlockRow {
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: true})
	jobs := wideRewriteWorkload(inst, w, numQueries)
	// The worst-case three-pattern join of the benchmark suite: an
	// unbound-predicate pattern joined through two shared variables.
	if q, err := query.Parse("SELECT ?x WHERE { ?x ?p ?y . ?y locatedIn Northford . ?x affiliation ?u }"); err == nil {
		q.Projection = q.ProjectedVars()
		jobs = append(jobs, wideRewriteJob{Query: q, Rewrites: relax.NewExpander(inst.Rules).Expand(q)})
	}
	configs := []struct {
		name string
		opts topk.Options
	}{
		{"tuple (noblock)", topk.Options{K: k, NoBlockJoin: true}},
		{"block", topk.Options{K: k}},
	}
	var rows []E5BlockRow
	for _, cfg := range configs {
		ev := topk.New(inst.Store, cfg.opts)
		for _, j := range jobs {
			// Warm-up: match lists, hash indexes and semi-join
			// reductions all land in the shared cache.
			ev.Run(context.Background(), j.Query, j.Rewrites, topk.RunConfig{NoTrace: true})
		}
		// Warm-cache queries run in tens of microseconds, far below
		// scheduler noise on shared hosts; the mean is taken over many
		// passes of the whole workload to stabilise the comparison.
		const passes = 20
		var ms, jb, hp, be, rf float64
		for pass := 0; pass < passes; pass++ {
			for _, j := range jobs {
				start := time.Now()
				_, m, _ := ev.Run(context.Background(), j.Query, j.Rewrites, topk.RunConfig{NoTrace: true})
				ms += float64(time.Since(start).Nanoseconds()) / 1e6
				jb += float64(m.JoinBranches)
				hp += float64(m.HashProbes)
				be += float64(m.BlocksEmitted)
				rf += float64(m.BlockRowsFiltered)
			}
		}
		n := float64(len(jobs) * passes)
		rows = append(rows, E5BlockRow{
			Kernel:           cfg.name,
			MeanMillis:       ms / n,
			NsPerOp:          ms / n * 1e6,
			MeanJoinBranches: jb / n,
			MeanHashProbes:   hp / n,
			MeanBlocks:       be / n,
			MeanRowsFiltered: rf / n,
		})
	}
	for i := range rows {
		if rows[i].MeanMillis > 0 {
			rows[i].Speedup = rows[0].MeanMillis / rows[i].MeanMillis
		}
	}
	return rows
}

// FormatE5Blocks renders the E5f table.
func FormatE5Blocks(rows []E5BlockRow) string {
	var b strings.Builder
	b.WriteString("E5f: block-at-a-time vs tuple-at-a-time join execution on the wide-rewrite workload (k=10; rankings byte-identical)\n")
	fmt.Fprintf(&b, "%-16s %10s %14s %8s %12s %10s %10s %12s\n",
		"kernel", "ms/query", "ns/op", "speedup", "join.br", "probes", "blocks", "rows.cut")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10.3f %14.0f %7.2fx %12.1f %10.1f %10.1f %12.1f\n",
			r.Kernel, r.MeanMillis, r.NsPerOp, r.Speedup, r.MeanJoinBranches, r.MeanHashProbes, r.MeanBlocks, r.MeanRowsFiltered)
	}
	return b.String()
}
