package experiments

import (
	"strings"
	"testing"
)

// TestE5TokenMatchAblation pins the PR's headline acceptance criterion: on
// the token-pattern workload, token-resolved list building touches at
// least 5x fewer posting-list entries than the NoTokenIndex scan baseline,
// while both produce identical answers (pinned separately by the root
// differential suites).
func TestE5TokenMatchAblation(t *testing.T) {
	w := smallWorld()
	rows := RunE5TokenMatch(w, 0, 10)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	resolved, scan := rows[0], rows[1]
	if resolved.Config != "token-resolved" || scan.Config != "scan (NoTokenIndex)" {
		t.Fatalf("unexpected configs: %q, %q", resolved.Config, scan.Config)
	}
	if resolved.MeanTokenResolutions == 0 {
		t.Error("token-resolved config performed no token resolutions")
	}
	if scan.MeanTokenResolutions != 0 {
		t.Errorf("scan baseline performed %v token resolutions, want 0", scan.MeanTokenResolutions)
	}
	if scan.MeanScanFallbacks == 0 {
		t.Error("scan baseline reported no scan fallbacks on token patterns")
	}
	ratio := TokenMatchIndexScanRatio(rows)
	if ratio < 5 {
		t.Errorf("IndexScanned reduction = %.2fx, want >= 5x (resolved %.1f vs scan %.1f)",
			ratio, resolved.MeanIndexScanned, scan.MeanIndexScanned)
	}
	out := FormatE5TokenMatch(rows)
	if !strings.Contains(out, "list-building reduction") {
		t.Error("FormatE5TokenMatch missing the reduction line")
	}
}

// TestTokenPatternWorkloadShape: the workload mixes unbounded token
// predicates (the scan worst case) with bound-object and join queries.
func TestTokenPatternWorkloadShape(t *testing.T) {
	w := smallWorld()
	qs := TokenPatternWorkload(w, 0)
	if len(qs) < 6 {
		t.Fatalf("workload too small: %d queries", len(qs))
	}
	unbounded := 0
	for _, q := range qs {
		if strings.HasPrefix(q.Text, "?x '") && strings.Contains(q.Text, "' ?") {
			unbounded++
		}
	}
	if unbounded < 3 {
		t.Errorf("only %d unbounded token-predicate queries, want >= 3", unbounded)
	}
	if got := TokenPatternWorkload(w, 5); len(got) != 5 {
		t.Errorf("truncation to 5 returned %d", len(got))
	}
}
