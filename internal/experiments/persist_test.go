package experiments

import (
	"strings"
	"testing"
)

// TestRunE9Persist runs the durability experiment at a toy size: the
// snapshot must round-trip, the WAL must replay completely, and every
// measured quantity must be populated.
func TestRunE9Persist(t *testing.T) {
	rows, err := RunE9Persist([]int{3_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Triples < 2_900 || r.Triples > 3_100 {
		t.Fatalf("triples = %d, want ~3000", r.Triples)
	}
	if r.SnapshotBytes <= 0 || r.BytesPerTriple <= 0 {
		t.Fatalf("snapshot size not recorded: %+v", r)
	}
	if r.WALRecords <= 0 {
		t.Fatalf("wal records = %d", r.WALRecords)
	}
	out := FormatE9Persist(rows)
	if !strings.Contains(out, "E9: durability cost") || !strings.Contains(out, "3000") {
		t.Fatalf("format output:\n%s", out)
	}
}
