package experiments

import (
	"strings"
	"testing"
)

// TestE10ShardRows: one row per shard count, each carrying the
// partitioning quality (skew >= 1, replicated predicates) and the
// coordination counters; the multi-shard rows exchange bounds or fall
// back to residual evaluation, and the table renders every column.
func TestE10ShardRows(t *testing.T) {
	w := smallWorld()
	rows := RunE10Shards(w, 8, 10, []int{1, 2, 4})
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.MeanMillis <= 0 || r.NsPerOp <= 0 || r.Speedup <= 0 {
			t.Errorf("N=%d: non-positive timing %+v", r.Shards, r)
		}
		if r.Skew < 1 {
			t.Errorf("N=%d: skew %v < 1", r.Shards, r.Skew)
		}
		if r.Shards == 1 && r.ResidualRewrites != 0 {
			t.Errorf("N=1 evaluated %d rewrites residually", r.ResidualRewrites)
		}
		if r.Shards > 1 && r.BoundBroadcasts == 0 && r.ResidualRewrites == 0 {
			t.Errorf("N=%d: no bound broadcasts and no residual work", r.Shards)
		}
	}
	out := FormatE10Shards(rows)
	for _, col := range []string{"shards", "speedup", "skew", "bound.bcast", "residual"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing column %q:\n%s", col, out)
		}
	}
}
