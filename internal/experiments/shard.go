package experiments

// E10 — sharded scatter-gather execution. The store is hash-partitioned
// by subject with hub predicates replicated for join co-location, each
// shard runs the incremental top-k processor over the co-located
// rewrites while a shared atomic bound propagates every shard's k-th
// score, rewrites the partitioning cannot co-locate fall back to the
// coordinator's residual full-store run, and the coordinator merges the
// rankings. Answers are byte-identical to the unsharded run at every N
// (pinned by the repo-root TestShardDifferential); this experiment
// measures the wall-clock and pruning effects plus the partitioning
// quality. On a single-core host sharded rows degrade to roughly serial
// cost plus coordination overhead; the speedup column is meaningful on
// multi-core hosts.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"trinit/internal/dataset"
	"trinit/internal/shard"
	"trinit/internal/topk"
)

// E10ShardRow is one shard count measured over the wide-rewrite
// workload.
type E10ShardRow struct {
	Shards           int     `json:"shards"`
	MeanMillis       float64 `json:"mean_millis"`
	NsPerOp          float64 `json:"ns_per_op"`
	Speedup          float64 `json:"speedup_vs_unsharded"`
	Skew             float64 `json:"skew"`
	ReplicatedPreds  int     `json:"replicated_preds"`
	BoundBroadcasts  int64   `json:"bound_broadcasts"`
	CrossShardPrunes int64   `json:"cross_shard_prunes"`
	ResidualRewrites int64   `json:"residual_rewrites"`
}

// RunE10Shards measures coordinated scatter-gather execution at each
// shard count against the unsharded executor on the wide-rewrite
// workload (depth-3 expansion, up to 256 rewrites per query), at k
// answers per query. The unsharded run anchors the speedup column; every
// configuration is warmed before timing so each sees identical
// list-build work.
func RunE10Shards(w *dataset.World, numQueries, k int, shardCounts []int) []E10ShardRow {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 3, 4}
	}
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: true})
	jobs := wideRewriteWorkload(inst, w, numQueries)
	cfg := topk.RunConfig{NoTrace: true}

	ev := topk.New(inst.Store, topk.Options{K: k})
	for _, j := range jobs {
		ev.Run(context.Background(), j.Query, j.Rewrites, cfg)
	}
	var baseMs float64
	for _, j := range jobs {
		start := time.Now()
		ev.Run(context.Background(), j.Query, j.Rewrites, cfg)
		baseMs += float64(time.Since(start).Microseconds()) / 1000
	}
	baseMs /= float64(len(jobs))

	var rows []E10ShardRow
	for _, n := range shardCounts {
		g, err := shard.NewGroup(inst.Store, n, topk.Options{K: k}, shard.PartitionOptions{})
		if err != nil {
			continue
		}
		for _, j := range jobs {
			// Warm-up: builds every shard's match lists and hash indexes.
			g.Run(context.Background(), j.Query, j.Rewrites, cfg)
		}
		row := E10ShardRow{
			Shards:          n,
			Skew:            g.Stats().Skew,
			ReplicatedPreds: g.Stats().ReplicatedPreds,
		}
		var ms float64
		for _, j := range jobs {
			start := time.Now()
			res, _ := g.Run(context.Background(), j.Query, j.Rewrites, cfg)
			ms += float64(time.Since(start).Microseconds()) / 1000
			row.BoundBroadcasts += res.Broadcasts
			row.CrossShardPrunes += int64(res.Metrics.CrossShardPrunes)
			row.ResidualRewrites += int64(res.Residual)
		}
		row.MeanMillis = ms / float64(len(jobs))
		row.NsPerOp = row.MeanMillis * 1e6
		if row.MeanMillis > 0 {
			row.Speedup = baseMs / row.MeanMillis
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatE10Shards renders the E10 table.
func FormatE10Shards(rows []E10ShardRow) string {
	var b strings.Builder
	b.WriteString("E10: sharded scatter-gather execution on the wide-rewrite workload (depth-3 expansion, k=10; answers byte-identical at every N)\n")
	fmt.Fprintf(&b, "%6s %10s %14s %8s %6s %9s %11s %9s %9s\n",
		"shards", "ms/query", "ns/op", "speedup", "skew", "repl.pred", "bound.bcast", "xs.prune", "residual")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10.3f %14.0f %7.2fx %6.2f %9d %11d %9d %9d\n",
			r.Shards, r.MeanMillis, r.NsPerOp, r.Speedup, r.Skew,
			r.ReplicatedPreds, r.BoundBroadcasts, r.CrossShardPrunes, r.ResidualRewrites)
	}
	return b.String()
}
