package experiments

// E5d — ablation: token-resolved match building vs the legacy wildcard
// scan. The matcher resolves textual token slots to candidate terms
// through the store's inverted token index and scans only the candidate
// combinations' permutation-index ranges; the NoTokenIndex baseline
// materialises the wildcard range and similarity-tests every triple.
// Match lists and answers are byte-identical — only the list-building
// work (IndexScanned) differs, which is the quantity this table reports.

import (
	"fmt"
	"strings"
	"time"

	"trinit/internal/dataset"
	"trinit/internal/topk"
)

// TokenQuery is one query of the token-pattern workload: the query text
// and the projected variable whose bindings are reported.
type TokenQuery struct {
	Text string
	Var  string
}

// TokenPatternWorkload derives up to n token-heavy queries from the
// world: the user types textual phrases ("worked at", "was born in",
// "won prize for") instead of canonical predicates, exactly the extended
// triple patterns of §2. Several queries leave both entity slots unbound,
// the worst case for the scan baseline (a full-store wildcard range).
func TokenPatternWorkload(w *dataset.World, n int) []TokenQuery {
	var out []TokenQuery
	add := func(q, v string) {
		if n <= 0 || len(out) < n {
			out = append(out, TokenQuery{Text: q, Var: v})
		}
	}
	// Unbounded token-predicate patterns: the scan baseline walks the
	// entire store for each of these.
	add("?x 'worked at' ?u", "x")
	add("?x 'was born in' ?c", "x")
	add("?x 'won prize for' ?f", "x")
	add("?x 'lectured at' ?u", "x")
	// Token predicate with a bound object, and token joins.
	for i, uni := range w.Universities() {
		if i >= 4 {
			break
		}
		add(fmt.Sprintf("?x 'worked at' %s", uni), "x")
	}
	for i, city := range w.Cities() {
		if i >= 3 {
			break
		}
		add(fmt.Sprintf("SELECT ?x WHERE { ?x 'worked at' ?u . ?u locatedIn %s }", city), "x")
	}
	for i, p := range w.People() {
		if i >= 3 {
			break
		}
		add(fmt.Sprintf("%s 'won prize for' ?f", p), "f")
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// E5TokenRow is one matcher configuration measured over the token-pattern
// workload.
type E5TokenRow struct {
	Config               string  `json:"config"`
	MeanMillis           float64 `json:"mean_millis"`
	NsPerOp              float64 `json:"ns_per_op"`
	MeanIndexScanned     float64 `json:"mean_index_scanned"`
	MeanTokenResolutions float64 `json:"mean_token_resolutions"`
	MeanScanFallbacks    float64 `json:"mean_scan_fallbacks"`
	MeanPatternsMatched  float64 `json:"mean_patterns_matched"`
}

// RunE5TokenMatch compares token-resolved list building (the default)
// against the NoTokenIndex wildcard-scan baseline on the token-pattern
// workload. Answers are identical across configurations; only the
// list-building work differs.
func RunE5TokenMatch(w *dataset.World, numQueries, k int) []E5TokenRow {
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: true})
	workload := TokenPatternWorkload(w, numQueries)
	configs := []struct {
		name string
		opts topk.Options
	}{
		{"token-resolved", topk.Options{K: k}},
		{"scan (NoTokenIndex)", topk.Options{K: k, NoTokenIndex: true}},
	}
	var rows []E5TokenRow
	for _, cfg := range configs {
		var ms, scan, res, fb, pm float64
		n := 0
		for _, tq := range workload {
			start := time.Now()
			_, m, err := inst.RunQueryOpts(tq.Text, tq.Var, cfg.opts)
			if err != nil {
				continue
			}
			ms += float64(time.Since(start).Microseconds()) / 1000
			scan += float64(m.IndexScanned)
			res += float64(m.TokenResolutions)
			fb += float64(m.ScanFallbacks)
			pm += float64(m.PatternsMatched)
			n++
		}
		if n == 0 {
			continue
		}
		rows = append(rows, E5TokenRow{
			Config:               cfg.name,
			MeanMillis:           ms / float64(n),
			NsPerOp:              ms / float64(n) * 1e6,
			MeanIndexScanned:     scan / float64(n),
			MeanTokenResolutions: res / float64(n),
			MeanScanFallbacks:    fb / float64(n),
			MeanPatternsMatched:  pm / float64(n),
		})
	}
	return rows
}

// TokenMatchIndexScanRatio returns baseline-IndexScanned divided by
// token-resolved IndexScanned — the list-building reduction factor the
// inverted-index resolution buys (0 when either row is missing).
func TokenMatchIndexScanRatio(rows []E5TokenRow) float64 {
	var resolved, scan float64
	for _, r := range rows {
		if strings.HasPrefix(r.Config, "token-resolved") {
			resolved = r.MeanIndexScanned
		} else {
			scan = r.MeanIndexScanned
		}
	}
	if resolved <= 0 || scan <= 0 {
		return 0
	}
	return scan / resolved
}

// FormatE5TokenMatch renders the token-matching ablation table.
func FormatE5TokenMatch(rows []E5TokenRow) string {
	var b strings.Builder
	b.WriteString("E5d: match-list building ablation on the token-pattern workload (answers identical; IndexScanned is the list-building cost)\n")
	fmt.Fprintf(&b, "%-22s %10s %14s %10s %10s %12s\n",
		"matcher", "ms/query", "idx.scan", "tok.res", "scan.fb", "patterns")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10.2f %14.1f %10.1f %10.1f %12.1f\n",
			r.Config, r.MeanMillis, r.MeanIndexScanned, r.MeanTokenResolutions,
			r.MeanScanFallbacks, r.MeanPatternsMatched)
	}
	if ratio := TokenMatchIndexScanRatio(rows); ratio > 0 {
		fmt.Fprintf(&b, "list-building reduction: %.1fx fewer posting entries touched\n", ratio)
	}
	return b.String()
}
