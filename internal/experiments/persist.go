package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/serial"
	"trinit/internal/store"
)

// ---------------------------------------------------------------------------
// E9 — durability: segment-snapshot and delta-log cost at scale.
// ---------------------------------------------------------------------------

// E9PersistRow is one store size's persistence measurements: how long a
// checksummed snapshot takes to write and to load (eagerly, trusting the
// serialised permutation indexes, and via the rebuild-by-sort fallback),
// plus delta-log append/replay throughput at that scale.
type E9PersistRow struct {
	Triples        int     `json:"triples"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	BytesPerTriple float64 `json:"bytes_per_triple"`
	WriteMillis    float64 `json:"write_millis"`
	LoadMillis     float64 `json:"load_millis"`    // eager index load
	RebuildMillis  float64 `json:"rebuild_millis"` // index rebuild-by-sort load
	WALRecords     int     `json:"wal_records"`
	WALAppendUs    float64 `json:"wal_append_us_per_record"`
	WALReplayMs    float64 `json:"wal_replay_millis"`

	// Zero-copy mapped open versus the eager decode of the same file.
	// Heap figures are post-GC HeapAlloc deltas attributable to the opened
	// snapshot; the mapped store's columns live in the page cache instead,
	// so MappedHeapMB stays near-constant while EagerHeapMB scales with the
	// store. Cold/warm first-query times measure the lazily built token
	// index — the one per-query structure the mapped path defers.
	MappedOpenMillis  float64 `json:"mapped_open_millis,omitempty"`
	MappedOpenSpeedup float64 `json:"mapped_open_speedup,omitempty"` // load_millis / mapped_open_millis
	EagerHeapMB       float64 `json:"eager_heap_mb,omitempty"`
	MappedHeapMB      float64 `json:"mapped_heap_mb,omitempty"`
	ColdQueryMillis   float64 `json:"mapped_cold_query_millis,omitempty"`
	WarmQueryMillis   float64 `json:"mapped_warm_query_millis,omitempty"`
}

// heapAllocMB reports the live post-GC heap in MiB.
func heapAllocMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// persistStore synthesises a frozen store of about n triples in the shape
// the engine persists: KG resource facts, KG literal facts, and XKG token
// triples with provenance, one third each.
func persistStore(n int) (*store.Store, []*relax.Rule) {
	st := store.New(nil, nil)
	people := n / 3
	for i := 0; i < people; i++ {
		p := rdf.Resource(fmt.Sprintf("Person%d", i))
		org := fmt.Sprintf("Org%d", i%101)
		st.AddKG(p, rdf.Resource("worksAt"), rdf.Resource(org))
		st.AddFact(p, rdf.Resource("bornOn"), rdf.Literal(fmt.Sprintf("19%02d-01-%02d", i%100, 1+i%28)),
			rdf.SourceKG, 1, rdf.NoProv)
		prov := st.Prov().Add(rdf.Prov{
			Doc:      fmt.Sprintf("doc-%d", i%9973),
			Sentence: fmt.Sprintf("Person%d lectured at %s.", i, org),
		})
		st.AddFact(p, rdf.Token("lectured at"), rdf.Token("the institute of "+org),
			rdf.SourceXKG, 0.5+float64(i%5)/10, prov)
	}
	st.Freeze()
	rules := []*relax.Rule{
		relax.MustParseRule("persist-1", "?x worksAt ?y => ?x 'lectured at' ?y", 0.8, "manual"),
		relax.MustParseRule("persist-2", "?x hasAdvisor ?y => ?y hasStudent ?x", 0.7, "manual"),
	}
	return st, rules
}

// RunE9Persist measures snapshot write/load wall-clock and bytes for each
// store size, plus WAL append/replay throughput. Sizes default to 10k,
// 100k and 1M triples — the last backs the "a 1M-triple snapshot loads in
// seconds" durability claim.
func RunE9Persist(sizes []int) ([]E9PersistRow, error) {
	if len(sizes) == 0 {
		sizes = []int{10_000, 100_000, 1_000_000}
	}
	dir, err := os.MkdirTemp("", "trinit-persist")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var rows []E9PersistRow
	for _, n := range sizes {
		st, rules := persistStore(n)
		path := filepath.Join(dir, fmt.Sprintf("snap-%d.trnt", n))

		start := time.Now()
		if err := serial.WriteSnapshotFile(path, st, rules, 1); err != nil {
			return nil, fmt.Errorf("write %d-triple snapshot: %w", n, err)
		}
		writeMs := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		snap, err := serial.ReadSnapshotFile(path)
		if err != nil {
			return nil, fmt.Errorf("load %d-triple snapshot: %w", n, err)
		}
		loadMs := float64(time.Since(start).Microseconds()) / 1000
		if snap.Store.Len() != st.Len() {
			return nil, fmt.Errorf("snapshot round trip lost triples: %d vs %d", snap.Store.Len(), st.Len())
		}

		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if _, err := serial.DecodeSnapshotForceRebuild(data); err != nil {
			return nil, fmt.Errorf("rebuild-load %d-triple snapshot: %w", n, err)
		}
		rebuildMs := float64(time.Since(start).Microseconds()) / 1000

		// Delta-log throughput: one appended mutation per 100 snapshot
		// triples, replayed back on reopen.
		walPath := filepath.Join(dir, fmt.Sprintf("wal-%d.log", n))
		w, _, err := serial.OpenWAL(walPath)
		if err != nil {
			return nil, err
		}
		walN := n / 100
		if walN < 100 {
			walN = 100
		}
		start = time.Now()
		for i := 0; i < walN; i++ {
			rec := serial.WALRecord{
				Epoch: 1, Op: serial.WALTriple,
				S: rdf.Resource(fmt.Sprintf("Person%d", i)), P: rdf.Token("visited"), O: rdf.Token(fmt.Sprintf("City%d", i%211)),
				Source: rdf.SourceXKG, Conf: 0.6, Doc: "wal-doc", Sentence: "s",
			}
			if err := w.Append(rec); err != nil {
				w.Close()
				return nil, err
			}
		}
		appendUs := float64(time.Since(start).Microseconds()) / float64(walN)
		if err := w.Close(); err != nil {
			return nil, err
		}
		start = time.Now()
		w2, replay, err := serial.OpenWAL(walPath)
		if err != nil {
			return nil, err
		}
		replayMs := float64(time.Since(start).Microseconds()) / 1000
		w2.Close()
		if len(replay.Records) != walN {
			return nil, fmt.Errorf("wal replay lost records: %d vs %d", len(replay.Records), walN)
		}

		row := E9PersistRow{
			Triples:        st.Len(),
			SnapshotBytes:  snap.Bytes,
			BytesPerTriple: float64(snap.Bytes) / float64(st.Len()),
			WriteMillis:    writeMs,
			LoadMillis:     loadMs,
			RebuildMillis:  rebuildMs,
			WALRecords:     walN,
			WALAppendUs:    appendUs,
			WALReplayMs:    replayMs,
		}

		// Mapped-vs-eager open: wall-clock and resident heap. The eager
		// decode is re-run inside a heap bracket so the delta is its alone.
		st, snap = nil, nil
		before := heapAllocMB()
		eagerSnap, err := serial.DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		row.EagerHeapMB = heapAllocMB() - before
		runtime.KeepAlive(eagerSnap)
		eagerSnap = nil

		before = heapAllocMB()
		start = time.Now()
		msnap, err := serial.OpenSnapshotMapped(path)
		switch {
		case errors.Is(err, serial.ErrNotMappable):
			// Host without mmap: the mapped columns stay zero in the row.
		case err != nil:
			return nil, fmt.Errorf("mapped open %d-triple snapshot: %w", n, err)
		default:
			row.MappedOpenMillis = float64(time.Since(start).Microseconds()) / 1000
			if row.MappedOpenMillis > 0 {
				row.MappedOpenSpeedup = row.LoadMillis / row.MappedOpenMillis
			}
			row.MappedHeapMB = heapAllocMB() - before

			// First query on a mapped store pays the lazy token-index
			// build; the second rides it.
			start = time.Now()
			msnap.Store.MatchToken("lectured at", store.MaskToken, 0.3, 10)
			row.ColdQueryMillis = float64(time.Since(start).Microseconds()) / 1000
			start = time.Now()
			msnap.Store.MatchToken("institute", store.MaskToken, 0.3, 10)
			row.WarmQueryMillis = float64(time.Since(start).Microseconds()) / 1000
			msnap.Close()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatE9Persist renders the persistence table.
func FormatE9Persist(rows []E9PersistRow) string {
	var b strings.Builder
	b.WriteString("E9: durability cost — checksummed snapshot write/load and delta-log throughput\n")
	fmt.Fprintf(&b, "%10s %12s %8s %10s %10s %12s %10s %12s %12s\n",
		"triples", "bytes", "B/triple", "write.ms", "load.ms", "rebuild.ms", "wal.recs", "append.us/r", "replay.ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %12d %8.1f %10.1f %10.1f %12.1f %10d %12.2f %12.1f\n",
			r.Triples, r.SnapshotBytes, r.BytesPerTriple, r.WriteMillis, r.LoadMillis, r.RebuildMillis,
			r.WALRecords, r.WALAppendUs, r.WALReplayMs)
	}
	if len(rows) > 0 && rows[0].MappedOpenMillis > 0 {
		b.WriteString("\nE9 mapped: zero-copy open vs eager decode\n")
		fmt.Fprintf(&b, "%10s %10s %10s %10s %12s %12s %10s %10s\n",
			"triples", "eager.ms", "mapped.ms", "speedup", "eager.MB", "mapped.MB", "cold.ms", "warm.ms")
		for _, r := range rows {
			fmt.Fprintf(&b, "%10d %10.1f %10.2f %9.0fx %12.1f %12.1f %10.2f %10.2f\n",
				r.Triples, r.LoadMillis, r.MappedOpenMillis, r.MappedOpenSpeedup,
				r.EagerHeapMB, r.MappedHeapMB, r.ColdQueryMillis, r.WarmQueryMillis)
		}
	}
	return b.String()
}
