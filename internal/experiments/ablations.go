package experiments

import (
	"fmt"
	"strings"

	"trinit/internal/dataset"
	"trinit/internal/eval"
	"trinit/internal/ned"
	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/store"
	"trinit/internal/topk"
	"trinit/internal/xkg"
)

// ---------------------------------------------------------------------------
// E7 — ablation: which rule sources earn their keep?
//
// §3 lists four sources of relaxation rules: mining from the XKG, manual
// specification, rule mining à la AMIE, and paraphrase/relatedness
// resources. E7 enables them cumulatively and reports NDCG@5 and the
// rewrite-space size they induce.
// ---------------------------------------------------------------------------

// E7Row is one rule-source configuration.
type E7Row struct {
	Config       string
	Rules        int
	NDCG5        float64
	MeanRewrites float64
}

// RunE7 evaluates cumulative rule-source configurations on the full XKG.
func RunE7(w *dataset.World, numQueries int) []E7Row {
	st := store.New(nil, nil)
	w.PopulateKG(st)
	xkg.Build(st, ned.NewLinker(st), w.Docs(), xkg.DefaultOptions())
	st.Freeze()

	manual := []*relax.Rule{
		relax.MustParseRule("advisor-inv", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual"),
	}
	mopts := relax.MiningOptions{MinSupport: 2, MinWeight: 0.1, IncludeInverse: true}
	alignment := relax.Mine(st, mopts)
	composition := relax.MineCompositions(st, []string{"locatedIn", "partOf", "memberOf"}, mopts)
	horn := relax.MineHornRules(st, relax.HornOptions{MinSupport: 3, MinConfidence: 0.4, MaxPredicateTriples: 20000, MaxRules: 40})
	para, _ := (relax.ParaphraseOperator{}).Rules(st)
	rel, _ := (relax.RelatednessOperator{MinSim: 0.6, MaxRules: 40}).Rules(st)

	configs := []struct {
		name  string
		rules []*relax.Rule
	}{
		{"none (exact match)", nil},
		{"+ manual", manual},
		{"+ mined alignment/inversion", alignment},
		{"+ composition", composition},
		{"+ horn (AMIE-style)", horn},
		{"+ paraphrases", para},
		{"+ relatedness", rel},
	}

	workload := w.Workload(numQueries)
	var rows []E7Row
	var cum []*relax.Rule
	for _, cfg := range configs {
		cum = append(cum, cfg.rules...)
		rules := append([]*relax.Rule(nil), cum...)
		ev := topk.New(st, topk.Options{K: 10})
		var ndcg []float64
		var rewrites float64
		n := 0
		for _, wq := range workload {
			q, err := query.Parse(wq.Text)
			if err != nil {
				continue
			}
			q.Projection = q.ProjectedVars()
			rws := relax.NewExpander(rules).Expand(q)
			answers, _ := ev.Evaluate(q, rws)
			ranked := make([]string, 0, len(answers))
			for _, a := range answers {
				ranked = append(ranked, st.Dict().Term(a.Bindings[wq.Var]).Text)
			}
			ndcg = append(ndcg, eval.NDCG(ranked, wq.Judgments, 5))
			rewrites += float64(len(rws))
			n++
		}
		row := E7Row{Config: cfg.name, Rules: len(rules), NDCG5: eval.Mean(ndcg)}
		if n > 0 {
			row.MeanRewrites = rewrites / float64(n)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatE7 renders the rule-source ablation.
func FormatE7(rows []E7Row) string {
	var b strings.Builder
	b.WriteString("E7 (ablation): cumulative rule sources (§3 lists mining, manual rules, AMIE-style mining, paraphrases, relatedness)\n")
	fmt.Fprintf(&b, "%-32s %8s %8s %12s\n", "rule sources", "#rules", "NDCG@5", "rewrites/q")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %8d %8.3f %12.1f\n", r.Config, r.Rules, r.NDCG5, r.MeanRewrites)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E8 — ablation: the scoring model's tf-like and idf-like effects (§4).
// ---------------------------------------------------------------------------

// E8Row is one scoring configuration.
type E8Row struct {
	Config string
	NDCG5  float64
	MRR    float64
}

// RunE8 evaluates the full system under scoring ablations.
func RunE8(w *dataset.World, numQueries int) []E8Row {
	inst := Build(w, System{Name: "full", UseXKG: true, UseRelax: true})
	workload := w.Workload(numQueries)

	configs := []struct {
		name                     string
		uniformConf, noNormalize bool
	}{
		{"full scoring (tf + idf)", false, false},
		{"no tf (uniform confidence)", true, false},
		{"no idf (unnormalised)", false, true},
		{"neither", true, true},
	}
	var rows []E8Row
	for _, cfg := range configs {
		ev := topk.New(inst.Store, topk.Options{
			K: 10, UniformConf: cfg.uniformConf, NoNormalize: cfg.noNormalize,
		})
		var results []eval.QueryResult
		for _, wq := range workload {
			q, err := query.Parse(wq.Text)
			if err != nil {
				continue
			}
			q.Projection = q.ProjectedVars()
			rws := relax.NewExpander(inst.Rules).Expand(q)
			answers, _ := ev.Evaluate(q, rws)
			ranked := make([]string, 0, len(answers))
			for _, a := range answers {
				ranked = append(ranked, inst.Store.Dict().Term(a.Bindings[wq.Var]).Text)
			}
			results = append(results, eval.QueryResult{ID: wq.ID, Ranked: ranked, Judged: wq.Judgments})
		}
		rep := eval.Evaluate(results)
		rows = append(rows, E8Row{Config: cfg.name, NDCG5: rep.NDCG5, MRR: rep.MRR})
	}
	return rows
}

// FormatE8 renders the scoring ablation.
func FormatE8(rows []E8Row) string {
	var b strings.Builder
	b.WriteString("E8 (ablation): query-likelihood scoring effects (§4: tf-like confidence, idf-like selectivity)\n")
	fmt.Fprintf(&b, "%-32s %8s %8s\n", "scoring", "NDCG@5", "MRR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %8.3f %8.3f\n", r.Config, r.NDCG5, r.MRR)
	}
	return b.String()
}
