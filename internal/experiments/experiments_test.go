package experiments

import (
	"strings"
	"testing"

	"trinit/internal/dataset"
)

func smallWorld() *dataset.World {
	cfg := dataset.DefaultConfig()
	cfg.People = 60
	return dataset.Generate(cfg)
}

func TestE1SystemOrdering(t *testing.T) {
	w := smallWorld()
	rows := RunE1(w, 30, 10)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]E1Row)
	for _, r := range rows {
		byName[r.System] = r
		if r.NDCG5 < 0 || r.NDCG5 > 1 {
			t.Fatalf("%s: NDCG5 = %v", r.System, r.NDCG5)
		}
	}
	full := byName["TriniT (XKG + relaxation)"]
	base := byName["KG-only exact match (baseline)"]
	noXKG := byName["TriniT w/o XKG (KG + relaxation)"]
	noRelax := byName["TriniT w/o relaxation (XKG only)"]

	// The paper's headline shape: the full system clearly beats the
	// baseline (0.775 vs 0.419 — a ~1.85x gap), and each ablation falls
	// between them.
	if full.NDCG5 <= base.NDCG5 {
		t.Fatalf("full (%v) does not beat baseline (%v)", full.NDCG5, base.NDCG5)
	}
	if full.NDCG5 < 1.5*base.NDCG5 {
		t.Errorf("gap too small: full %v vs baseline %v (want >= 1.5x)", full.NDCG5, base.NDCG5)
	}
	if noXKG.NDCG5 > full.NDCG5+1e-9 || noRelax.NDCG5 > full.NDCG5+1e-9 {
		t.Errorf("an ablation beats the full system: full=%v noXKG=%v noRelax=%v",
			full.NDCG5, noXKG.NDCG5, noRelax.NDCG5)
	}
	if noXKG.NDCG5 < base.NDCG5-1e-9 || noRelax.NDCG5 < base.NDCG5-1e-9 {
		t.Errorf("an ablation is worse than the baseline: base=%v noXKG=%v noRelax=%v",
			base.NDCG5, noXKG.NDCG5, noRelax.NDCG5)
	}
	if !strings.Contains(FormatE1(rows), "NDCG@5") {
		t.Error("FormatE1 missing header")
	}
}

func TestE1CategoryDiagnostics(t *testing.T) {
	w := smallWorld()
	rows := RunE1(w, 30, 10)
	full := rows[0]
	base := rows[3]
	// Born-in-country and advisor queries need relaxation: the baseline
	// must score 0 on them; the full system must not.
	for _, cat := range []string{"born", "advisor"} {
		if base.PerCategory[cat] != 0 {
			t.Errorf("baseline NDCG on %s = %v, want 0", cat, base.PerCategory[cat])
		}
		if full.PerCategory[cat] == 0 {
			t.Errorf("full system NDCG on %s = 0", cat)
		}
	}
	// Prize queries need the XKG.
	if base.PerCategory["prize"] != 0 {
		t.Errorf("baseline NDCG on prize = %v, want 0", base.PerCategory["prize"])
	}
	if full.PerCategory["prize"] == 0 {
		t.Error("full system NDCG on prize = 0")
	}
}

func TestE2MinedRuleInventory(t *testing.T) {
	w := smallWorld()
	res := RunE2(w)
	if res.TotalMined == 0 {
		t.Fatal("no rules mined")
	}
	if len(res.Alignment) == 0 {
		t.Error("no alignment rules")
	}
	if res.KGToXKG == 0 {
		t.Error("no KG<->XKG bridge rules (Figure 4 rules 3/4 analogues)")
	}
	if len(res.Composition) == 0 {
		t.Error("no composition rules (Figure 4 rule 1 analogue)")
	}
	// Sweep must be monotone: higher support, fewer rules.
	for i := 1; i < len(res.SupportSweep); i++ {
		if res.SupportSweep[i].Rules > res.SupportSweep[i-1].Rules {
			t.Errorf("support sweep not monotone: %+v", res.SupportSweep)
		}
	}
	out := FormatE2(res, 5)
	if !strings.Contains(out, "alignment") || !strings.Contains(out, "composition") {
		t.Errorf("FormatE2 = %q", out)
	}
}

func TestE3AllUsersCorrect(t *testing.T) {
	rows := RunE3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("user %s: top answer %q, want %q", r.User, r.TopAnswer, r.ExpectedAnswer)
		}
		if r.User != "D" && r.AnswersBefore != 0 {
			t.Errorf("user %s: %d answers before relaxation, want 0", r.User, r.AnswersBefore)
		}
		if r.AnswersAfter == 0 {
			t.Errorf("user %s: no answers after relaxation", r.User)
		}
	}
	// User D's query is answered directly by the XKG without rules.
	if rows[3].User != "D" || rows[3].AnswersBefore == 0 {
		t.Errorf("user D row = %+v", rows[3])
	}
	if !strings.Contains(FormatE3(rows), "OK") {
		t.Error("FormatE3 lacks status")
	}
}

func TestE4Statistics(t *testing.T) {
	w := smallWorld()
	r := RunE4(w)
	if r.Stats.KGTriples == 0 || r.Stats.XKGTriples == 0 {
		t.Fatalf("stats = %+v", r.Stats)
	}
	if r.Ratio <= 0 {
		t.Fatalf("ratio = %v", r.Ratio)
	}
	if r.Pipeline.Extractions < r.Pipeline.Kept {
		t.Fatalf("pipeline stats inconsistent: %+v", r.Pipeline)
	}
	if !strings.Contains(FormatE4(r), "XKG/KG ratio") {
		t.Error("FormatE4 missing ratio")
	}
}

func TestE5IncrementalCheaper(t *testing.T) {
	w := smallWorld()
	rows := RunE5(w, 12, []int{1, 5})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Pair up incremental and exhaustive per k.
	byKey := make(map[string]E5Row)
	for _, r := range rows {
		byKey[r.Mode+string(rune('0'+r.K))] = r
	}
	for _, k := range []int{1, 5} {
		inc := byKey["incremental"+string(rune('0'+k))]
		exh := byKey["exhaustive"+string(rune('0'+k))]
		if inc.MeanAccesses > exh.MeanAccesses {
			t.Errorf("k=%d: incremental accesses %v > exhaustive %v", k, inc.MeanAccesses, exh.MeanAccesses)
		}
		if inc.MeanRewritesEval > exh.MeanRewritesEval {
			t.Errorf("k=%d: incremental evaluated more rewrites", k)
		}
	}
	if !strings.Contains(FormatE5(rows), "sorted.acc") {
		t.Error("FormatE5 missing header")
	}
}

func TestE6SuggestionQuality(t *testing.T) {
	w := smallWorld()
	r := RunE6(w)
	if r.TokenQueries == 0 {
		t.Fatal("no token queries checked")
	}
	if r.CorrectSuggestions == 0 {
		t.Error("no correct canonical suggestions")
	}
	if r.CompletionChecks == 0 || r.CompletionHits < r.CompletionChecks {
		t.Errorf("completion: %d/%d", r.CompletionHits, r.CompletionChecks)
	}
	if !strings.Contains(FormatE6(r), "auto-completion") {
		t.Error("FormatE6 missing header")
	}
}

func TestE7RuleSourceAblation(t *testing.T) {
	w := smallWorld()
	rows := RunE7(w, 20)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Config != "none (exact match)" || rows[0].Rules != 0 {
		t.Fatalf("first row = %+v", rows[0])
	}
	// Rule counts are cumulative and NDCG must never be hurt badly by
	// adding the core sources (manual, alignment, composition).
	for i := 1; i < len(rows); i++ {
		if rows[i].Rules < rows[i-1].Rules {
			t.Errorf("rule counts not cumulative: %+v", rows)
		}
	}
	if rows[3].NDCG5 <= rows[0].NDCG5 {
		t.Errorf("core rule sources did not improve NDCG: %v vs %v", rows[3].NDCG5, rows[0].NDCG5)
	}
	if !strings.Contains(FormatE7(rows), "rule sources") {
		t.Error("FormatE7 missing header")
	}
}

func TestE8ScoringAblation(t *testing.T) {
	w := smallWorld()
	rows := RunE8(w, 20)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NDCG5 < 0 || r.NDCG5 > 1 {
			t.Errorf("%s: NDCG = %v", r.Config, r.NDCG5)
		}
	}
	// The ablation is a report, not a contest with a fixed winner; but
	// full scoring must stay competitive (within 10% of the best
	// config) — a collapse would indicate a scoring bug rather than a
	// modelling trade-off.
	best := 0.0
	for _, r := range rows {
		if r.NDCG5 > best {
			best = r.NDCG5
		}
	}
	if rows[0].NDCG5 < 0.9*best {
		t.Errorf("full scoring (%v) collapsed vs best config (%v)", rows[0].NDCG5, best)
	}
	if !strings.Contains(FormatE8(rows), "scoring") {
		t.Error("FormatE8 missing header")
	}
}

func TestE5DepthSweep(t *testing.T) {
	w := smallWorld()
	rows := RunE5Depth(w, 10, []int{0, 1, 2})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Depth 0 = original query only.
	if rows[0].MeanRewrites != 1 {
		t.Fatalf("depth-0 rewrites = %v, want 1", rows[0].MeanRewrites)
	}
	// Rewrite space must grow with depth; NDCG must not decrease from
	// depth 0 to the engine default depth.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanRewrites < rows[i-1].MeanRewrites {
			t.Errorf("rewrite space shrank with depth: %+v", rows)
		}
	}
	if rows[2].NDCG5 < rows[0].NDCG5 {
		t.Errorf("relaxation hurt NDCG: %+v", rows)
	}
	if !strings.Contains(FormatE5Depth(rows), "maxDepth") {
		t.Error("FormatE5Depth missing header")
	}
}
