// Package eval provides the retrieval-effectiveness metrics used in the
// paper's evaluation (§4 reports NDCG at rank 5 over 70 entity-relationship
// queries), plus companions (precision, MAP, MRR) for the experiment
// harness.
package eval

import (
	"math"
	"sort"
)

// Judgments holds graded relevance assessments for one query, keyed by the
// answer's canonical text (e.g. the bound entity's label). Grades are
// non-negative; 0 means irrelevant.
type Judgments map[string]float64

// Grade returns the grade of an answer (0 when unjudged; the standard
// assumption that unjudged answers are irrelevant).
func (j Judgments) Grade(answer string) float64 { return j[answer] }

// NumRelevant counts answers with a positive grade.
func (j Judgments) NumRelevant() int {
	n := 0
	for _, g := range j {
		if g > 0 {
			n++
		}
	}
	return n
}

// DCG computes the discounted cumulative gain of a ranked grade list at
// cutoff k, using the standard exponential gain (2^g − 1) / log2(i + 2).
func DCG(grades []float64, k int) float64 {
	if k > len(grades) {
		k = len(grades)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += (math.Exp2(grades[i]) - 1) / math.Log2(float64(i)+2)
	}
	return sum
}

// IdealDCG computes the maximum achievable DCG@k for a judgment set.
func IdealDCG(j Judgments, k int) float64 {
	grades := make([]float64, 0, len(j))
	for _, g := range j {
		if g > 0 {
			grades = append(grades, g)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(grades)))
	return DCG(grades, k)
}

// NDCG computes the normalised DCG@k of a ranked answer list against the
// judgments. Queries with no relevant answers score 0.
func NDCG(ranked []string, j Judgments, k int) float64 {
	ideal := IdealDCG(j, k)
	if ideal == 0 {
		return 0
	}
	grades := make([]float64, len(ranked))
	for i, a := range ranked {
		grades[i] = j.Grade(a)
	}
	return DCG(grades, k) / ideal
}

// PrecisionAt computes P@k with binary relevance (grade > 0).
func PrecisionAt(ranked []string, j Judgments, k int) float64 {
	if k <= 0 {
		return 0
	}
	// Per IR convention the denominator stays k even when fewer than k
	// answers were returned: missing answers count as misses.
	hits := 0
	for i := 0; i < len(ranked) && i < k; i++ {
		if j.Grade(ranked[i]) > 0 {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// AveragePrecision computes AP over the full ranking with binary relevance.
func AveragePrecision(ranked []string, j Judgments) float64 {
	rel := j.NumRelevant()
	if rel == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for i, a := range ranked {
		if j.Grade(a) > 0 {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(rel)
}

// MRR computes the reciprocal rank of the first relevant answer.
func MRR(ranked []string, j Judgments) float64 {
	for i, a := range ranked {
		if j.Grade(a) > 0 {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// Mean averages a slice of per-query metric values; empty input gives 0.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// QueryResult pairs one query's ranked answers with its judgments.
type QueryResult struct {
	ID     string
	Ranked []string
	Judged Judgments
}

// Report aggregates the standard metric set over a batch of queries.
type Report struct {
	Queries int
	NDCG5   float64
	NDCG10  float64
	P5      float64
	MAP     float64
	MRR     float64
}

// Evaluate computes the aggregate report for a batch of query results.
func Evaluate(results []QueryResult) Report {
	var ndcg5, ndcg10, p5, ap, mrr []float64
	for _, r := range results {
		ndcg5 = append(ndcg5, NDCG(r.Ranked, r.Judged, 5))
		ndcg10 = append(ndcg10, NDCG(r.Ranked, r.Judged, 10))
		p5 = append(p5, PrecisionAt(r.Ranked, r.Judged, 5))
		ap = append(ap, AveragePrecision(r.Ranked, r.Judged))
		mrr = append(mrr, MRR(r.Ranked, r.Judged))
	}
	return Report{
		Queries: len(results),
		NDCG5:   Mean(ndcg5),
		NDCG10:  Mean(ndcg10),
		P5:      Mean(p5),
		MAP:     Mean(ap),
		MRR:     Mean(mrr),
	}
}
