package eval

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDCG(t *testing.T) {
	// DCG@2 of grades [3, 1] = (2^3-1)/log2(2) + (2^1-1)/log2(3).
	want := 7.0/1.0 + 1.0/math.Log2(3)
	if got := DCG([]float64{3, 1}, 2); !almostEqual(got, want) {
		t.Errorf("DCG = %v, want %v", got, want)
	}
	if got := DCG([]float64{3, 1}, 5); !almostEqual(got, want) {
		t.Errorf("DCG with k beyond list = %v, want %v", got, want)
	}
	if got := DCG(nil, 5); got != 0 {
		t.Errorf("DCG(empty) = %v", got)
	}
}

func TestNDCGPerfectRanking(t *testing.T) {
	j := Judgments{"a": 3, "b": 2, "c": 1}
	if got := NDCG([]string{"a", "b", "c"}, j, 5); !almostEqual(got, 1) {
		t.Errorf("perfect NDCG = %v, want 1", got)
	}
}

func TestNDCGWorseRankingScoresLower(t *testing.T) {
	j := Judgments{"a": 3, "b": 1}
	good := NDCG([]string{"a", "b"}, j, 5)
	bad := NDCG([]string{"b", "a"}, j, 5)
	if bad >= good {
		t.Errorf("swapped ranking NDCG %v >= correct %v", bad, good)
	}
	if bad <= 0 || good != 1 {
		t.Errorf("NDCG values: good %v bad %v", good, bad)
	}
}

func TestNDCGIrrelevantAnswers(t *testing.T) {
	j := Judgments{"a": 2}
	if got := NDCG([]string{"x", "y"}, j, 5); got != 0 {
		t.Errorf("all-irrelevant NDCG = %v", got)
	}
	if got := NDCG(nil, j, 5); got != 0 {
		t.Errorf("empty ranking NDCG = %v", got)
	}
	// No relevant answers at all: define as 0.
	if got := NDCG([]string{"a"}, Judgments{}, 5); got != 0 {
		t.Errorf("no-judgment NDCG = %v", got)
	}
}

func TestNDCGCutoff(t *testing.T) {
	j := Judgments{"a": 3}
	// The relevant answer at rank 6 does not count for NDCG@5.
	ranked := []string{"x1", "x2", "x3", "x4", "x5", "a"}
	if got := NDCG(ranked, j, 5); got != 0 {
		t.Errorf("NDCG@5 with hit at rank 6 = %v", got)
	}
	if got := NDCG(ranked, j, 6); got <= 0 {
		t.Errorf("NDCG@6 with hit at rank 6 = %v", got)
	}
}

// Property: NDCG is always in [0, 1] and invariant to adding irrelevant
// trailing answers beyond the cutoff.
func TestNDCGBoundsProperty(t *testing.T) {
	gen := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		j := Judgments{}
		n := 1 + gen.Intn(8)
		pool := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for k := 0; k < n; k++ {
			j[pool[k]] = float64(gen.Intn(4))
		}
		perm := gen.Perm(len(pool))
		ranked := make([]string, len(pool))
		for k, p := range perm {
			ranked[k] = pool[p]
		}
		got := NDCG(ranked, j, 5)
		if got < 0 || got > 1+1e-12 {
			t.Fatalf("NDCG out of bounds: %v (judgments %v, ranked %v)", got, j, ranked)
		}
		extended := append(append([]string{}, ranked...), "zzz")
		if !almostEqual(got, NDCG(extended, j, 5)) {
			t.Fatal("NDCG changed by trailing answer beyond cutoff")
		}
	}
}

func TestPrecisionAt(t *testing.T) {
	j := Judgments{"a": 1, "b": 2}
	if got := PrecisionAt([]string{"a", "x", "b"}, j, 3); !almostEqual(got, 2.0/3.0) {
		t.Errorf("P@3 = %v", got)
	}
	// Fewer answers than k: denominator stays k.
	if got := PrecisionAt([]string{"a"}, j, 5); !almostEqual(got, 0.2) {
		t.Errorf("P@5 with 1 answer = %v", got)
	}
	if got := PrecisionAt(nil, j, 0); got != 0 {
		t.Errorf("P@0 = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	j := Judgments{"a": 1, "b": 1}
	// Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
	want := (1.0 + 2.0/3.0) / 2
	if got := AveragePrecision([]string{"a", "x", "b"}, j); !almostEqual(got, want) {
		t.Errorf("AP = %v, want %v", got, want)
	}
	if got := AveragePrecision([]string{"x"}, Judgments{}); got != 0 {
		t.Errorf("AP with no relevant = %v", got)
	}
}

func TestMRR(t *testing.T) {
	j := Judgments{"a": 1}
	if got := MRR([]string{"x", "a"}, j); !almostEqual(got, 0.5) {
		t.Errorf("MRR = %v", got)
	}
	if got := MRR([]string{"x", "y"}, j); got != 0 {
		t.Errorf("MRR no hit = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestJudgments(t *testing.T) {
	j := Judgments{"a": 2, "b": 0, "c": 1}
	if j.NumRelevant() != 2 {
		t.Errorf("NumRelevant = %d", j.NumRelevant())
	}
	if j.Grade("missing") != 0 {
		t.Error("unjudged answer must grade 0")
	}
}

func TestEvaluateAggregates(t *testing.T) {
	results := []QueryResult{
		{ID: "q1", Ranked: []string{"a"}, Judged: Judgments{"a": 3}},
		{ID: "q2", Ranked: []string{"x"}, Judged: Judgments{"a": 3}},
	}
	r := Evaluate(results)
	if r.Queries != 2 {
		t.Fatalf("Queries = %d", r.Queries)
	}
	// q1 is perfect (1.0), q2 is zero: mean 0.5 for NDCG5 and MRR.
	if !almostEqual(r.NDCG5, 0.5) || !almostEqual(r.MRR, 0.5) {
		t.Errorf("report = %+v", r)
	}
	if !almostEqual(r.P5, 0.1) { // (1/5 + 0)/2
		t.Errorf("P5 = %v", r.P5)
	}
}

func TestIdealDCGIgnoresZeroGrades(t *testing.T) {
	j := Judgments{"a": 0, "b": 2}
	want := DCG([]float64{2}, 5)
	if got := IdealDCG(j, 5); !almostEqual(got, want) {
		t.Errorf("IdealDCG = %v, want %v", got, want)
	}
}
