// Package explain produces answer explanations (§5): for each answer, the
// KG triples that contributed, the XKG triples that contributed together
// with their provenance, and the relaxation rules that were invoked. This
// is the information behind the demo's answer-explanation interface
// (Figure 6), and it doubles as a way for users to learn the KG's schema
// and its shortcomings.
package explain

import (
	"fmt"
	"sort"
	"strings"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
	"trinit/internal/topk"
)

// TripleInfo describes one contributing triple.
type TripleInfo struct {
	// Text is the rendered triple.
	Text string
	// Pattern is the rewritten-query pattern the triple matched.
	Pattern string
	// JoinStep is the 1-based position at which the query planner
	// joined this pattern (selectivity order, not query-text order).
	JoinStep int
	// Source is KG or XKG.
	Source rdf.Source
	// Conf is the triple's confidence.
	Conf float64
	// Prob is the pattern's emission probability for this triple.
	Prob float64
	// Doc and Sentence carry provenance for XKG triples.
	Doc, Sentence string
}

// RuleInfo describes one invoked relaxation rule.
type RuleInfo struct {
	ID     string
	Rule   string
	Weight float64
	Origin string
}

// Explanation is the provenance of a single answer.
type Explanation struct {
	// OriginalQuery and RewrittenQuery show what relaxation changed.
	OriginalQuery  string
	RewrittenQuery string
	// Score is the answer's final score; Weight the derivation weight.
	Score  float64
	Weight float64
	// Bindings renders the projected variable bindings.
	Bindings map[string]string
	// KGTriples and XKGTriples are the contributing facts, split by
	// source as in the demo interface.
	KGTriples  []TripleInfo
	XKGTriples []TripleInfo
	// Rules are the relaxation rules invoked, in application order.
	Rules []RuleInfo
}

// Explain builds the explanation of an answer produced by the evaluator.
func Explain(st *store.Store, original *query.Query, a topk.Answer) Explanation {
	d := a.Derivation
	ex := Explanation{
		OriginalQuery:  original.String(),
		RewrittenQuery: d.Rewrite.Query.String(),
		Score:          a.Score,
		Weight:         d.Rewrite.Weight,
		Bindings:       make(map[string]string, len(a.Bindings)),
	}
	for v, id := range a.Bindings {
		ex.Bindings[v] = st.Dict().Term(id).String()
	}
	// joinStep maps pattern index -> 1-based position in the planner's
	// join order, so explanations reflect how the answer was assembled.
	joinStep := make(map[int]int, len(d.Plan))
	for step, pi := range d.Plan {
		joinStep[pi] = step + 1
	}
	for i, id := range d.Triples {
		tr := st.Triple(id)
		info := TripleInfo{
			Text:     tr.Format(st.Dict()),
			Source:   tr.Source,
			Conf:     tr.Conf,
			JoinStep: i + 1,
		}
		if s, ok := joinStep[i]; ok {
			info.JoinStep = s
		}
		if i < len(d.Rewrite.Query.Patterns) {
			info.Pattern = d.Rewrite.Query.Patterns[i].String()
		}
		if i < len(d.PatternProbs) {
			info.Prob = d.PatternProbs[i]
		}
		if tr.Source == rdf.SourceKG {
			ex.KGTriples = append(ex.KGTriples, info)
		} else {
			prov := st.Prov().Get(tr.Prov)
			info.Doc = prov.Doc
			info.Sentence = prov.Sentence
			ex.XKGTriples = append(ex.XKGTriples, info)
		}
	}
	for _, r := range d.Rewrite.Applied {
		ex.Rules = append(ex.Rules, RuleInfo{
			ID:     r.ID,
			Rule:   r.String(),
			Weight: r.Weight,
			Origin: r.Origin,
		})
	}
	return ex
}

// String renders the explanation as indented text, in the spirit of the
// demo's answer-explanation pane.
func (ex Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "answer (score %.4f):\n", ex.Score)
	vars := make([]string, 0, len(ex.Bindings))
	for v := range ex.Bindings {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		fmt.Fprintf(&b, "  ?%s = %s\n", v, ex.Bindings[v])
	}
	if len(ex.Rules) > 0 {
		fmt.Fprintf(&b, "relaxations invoked (derivation weight %.2f):\n", ex.Weight)
		for _, r := range ex.Rules {
			fmt.Fprintf(&b, "  [%s] %s: %s\n", r.Origin, r.ID, r.Rule)
		}
		fmt.Fprintf(&b, "rewritten query: %s\n", ex.RewrittenQuery)
	} else {
		b.WriteString("no relaxation needed\n")
	}
	if len(ex.KGTriples) > 0 {
		b.WriteString("KG triples:\n")
		for _, t := range ex.KGTriples {
			fmt.Fprintf(&b, "  %s  (matched %s, P=%.3f)\n", t.Text, t.Pattern, t.Prob)
		}
	}
	if len(ex.XKGTriples) > 0 {
		b.WriteString("XKG triples:\n")
		for _, t := range ex.XKGTriples {
			fmt.Fprintf(&b, "  %s  (conf %.2f, matched %s, P=%.3f)\n", t.Text, t.Conf, t.Pattern, t.Prob)
			if t.Doc != "" {
				fmt.Fprintf(&b, "    source: %s: %q\n", t.Doc, t.Sentence)
			}
		}
	}
	return b.String()
}
