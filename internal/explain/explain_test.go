package explain

import (
	"strings"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
	"trinit/internal/topk"
)

func demoXKG() *store.Store {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("affiliation"), rdf.Resource("IAS"))
	st.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("member"), rdf.Resource("IvyLeague"))
	prov := st.Prov().Add(rdf.Prov{Doc: "clueweb-17", Sentence: "The IAS was housed in Princeton."})
	st.AddFact(rdf.Resource("IAS"), rdf.Token("housed in"), rdf.Resource("PrincetonUniversity"), rdf.SourceXKG, 0.8, prov)
	st.Freeze()
	return st
}

func userCAnswer(t *testing.T, st *store.Store) (*query.Query, topk.Answer) {
	t.Helper()
	q := query.MustParse("SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }")
	rules := []*relax.Rule{
		relax.MustParseRule("r3", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y", 0.8, "manual"),
	}
	rewrites := relax.NewExpander(rules).Expand(q)
	ans, _ := topk.New(st, topk.Options{K: 5}).Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want 1", len(ans))
	}
	return q, ans[0]
}

func TestExplainSplitsKGAndXKG(t *testing.T) {
	st := demoXKG()
	q, a := userCAnswer(t, st)
	ex := Explain(st, q, a)
	if len(ex.KGTriples) != 2 {
		t.Fatalf("KG triples = %d, want 2 (affiliation + member)", len(ex.KGTriples))
	}
	if len(ex.XKGTriples) != 1 {
		t.Fatalf("XKG triples = %d, want 1 (housed in)", len(ex.XKGTriples))
	}
	x := ex.XKGTriples[0]
	if x.Doc != "clueweb-17" || !strings.Contains(x.Sentence, "housed in Princeton") {
		t.Fatalf("XKG provenance = %+v", x)
	}
	if x.Conf != 0.8 {
		t.Fatalf("XKG conf = %v", x.Conf)
	}
}

func TestExplainReportsRules(t *testing.T) {
	st := demoXKG()
	q, a := userCAnswer(t, st)
	ex := Explain(st, q, a)
	if len(ex.Rules) != 1 || ex.Rules[0].ID != "r3" {
		t.Fatalf("rules = %+v", ex.Rules)
	}
	if ex.Weight != 0.8 {
		t.Fatalf("derivation weight = %v", ex.Weight)
	}
	if ex.OriginalQuery == ex.RewrittenQuery {
		t.Fatal("rewritten query equals original despite relaxation")
	}
	if ex.Bindings["x"] != "PrincetonUniversity" {
		t.Fatalf("bindings = %v", ex.Bindings)
	}
}

func TestExplainNoRelaxation(t *testing.T) {
	st := demoXKG()
	q := query.MustParse("AlbertEinstein affiliation ?x")
	rewrites := relax.NewExpander(nil).Expand(q)
	ans, _ := topk.New(st, topk.Options{K: 5}).Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d", len(ans))
	}
	ex := Explain(st, q, ans[0])
	if len(ex.Rules) != 0 {
		t.Fatalf("rules = %v, want none", ex.Rules)
	}
	if len(ex.KGTriples) != 1 || len(ex.XKGTriples) != 0 {
		t.Fatalf("triples: KG=%d XKG=%d", len(ex.KGTriples), len(ex.XKGTriples))
	}
	s := ex.String()
	if !strings.Contains(s, "no relaxation needed") {
		t.Errorf("String() = %q", s)
	}
}

func TestExplanationString(t *testing.T) {
	st := demoXKG()
	q, a := userCAnswer(t, st)
	s := Explain(st, q, a).String()
	for _, want := range []string{
		"?x = PrincetonUniversity",
		"relaxations invoked",
		"r3",
		"KG triples:",
		"XKG triples:",
		"clueweb-17",
		"housed in",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation text missing %q:\n%s", want, s)
		}
	}
}

func TestExplainPatternProbabilities(t *testing.T) {
	st := demoXKG()
	q, a := userCAnswer(t, st)
	ex := Explain(st, q, a)
	for _, ti := range append(ex.KGTriples, ex.XKGTriples...) {
		if ti.Prob <= 0 || ti.Prob > 1 {
			t.Errorf("pattern prob = %v for %s", ti.Prob, ti.Text)
		}
		if ti.Pattern == "" {
			t.Errorf("pattern missing for %s", ti.Text)
		}
	}
}
