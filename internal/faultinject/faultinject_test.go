package faultinject

import (
	"sync"
	"testing"
	"time"
)

// TestDisabledByDefault: with no hook installed, Enabled is false and
// Fire is a no-op — the production configuration.
func TestDisabledByDefault(t *testing.T) {
	Clear()
	if Enabled() {
		t.Fatal("Enabled() = true with no hook installed")
	}
	Fire(SiteRewriteEval, "0") // must not panic or block
}

// TestSetFireClear: Set routes Fire calls to the hook, Clear restores
// the no-op production behaviour.
func TestSetFireClear(t *testing.T) {
	var calls []string
	Set(func(site Site, key string) { calls = append(calls, string(site)+"/"+key) })
	t.Cleanup(Clear)
	if !Enabled() {
		t.Fatal("Enabled() = false after Set")
	}
	Fire(SiteListBuild, "p1")
	Fire(SiteBlockFlush, "")
	Clear()
	Fire(SiteListBuild, "p2") // after Clear: dropped
	want := []string{"list-build/p1", "block-flush/"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls[%d] = %q, want %q", i, calls[i], want[i])
		}
	}
}

// TestScriptNth: a PanicOn rule with nth=3 fires exactly on the third
// matching occurrence, and Fired counts it.
func TestScriptNth(t *testing.T) {
	s := NewScript().PanicOn(SiteRewriteEval, "2", 3, "boom")
	defer s.Install()()

	fire := func() (panicked bool) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		Fire(SiteRewriteEval, "2")
		return false
	}

	Fire(SiteRewriteEval, "1") // wrong key: no match
	if fire() || fire() {
		t.Fatal("panicked before the 3rd occurrence")
	}
	if !fire() {
		t.Fatal("did not panic on the 3rd occurrence")
	}
	if fire() {
		t.Fatal("panicked again after the 3rd occurrence")
	}
	if got := s.Fired(SiteRewriteEval, "2"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

// TestScriptEveryAndAnyKey: nth=0 fires on every occurrence, key=""
// matches any key.
func TestScriptEveryAndAnyKey(t *testing.T) {
	n := 0
	s := NewScript().CallOn(SiteListBuild, "", 0, func() { n++ })
	defer s.Install()()
	Fire(SiteListBuild, "a")
	Fire(SiteListBuild, "b")
	Fire(SiteWorkerStart, "0") // different site: no match
	if n != 2 {
		t.Fatalf("action ran %d times, want 2", n)
	}
	if got := s.Fired(SiteListBuild, ""); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

// TestScriptSleepEvery: SleepEvery delays each firing occurrence.
func TestScriptSleepEvery(t *testing.T) {
	s := NewScript().SleepEvery(SiteBlockFlush, "", 20*time.Millisecond)
	defer s.Install()()
	start := time.Now()
	Fire(SiteBlockFlush, "")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("Fire returned after %v, want >= ~20ms sleep", d)
	}
}

// TestScriptConcurrentFire: concurrent Fire calls through one script
// must not race (run under -race) and must count every occurrence.
func TestScriptConcurrentFire(t *testing.T) {
	s := NewScript().CallOn(SiteWorkerStart, "", 0, func() {})
	defer s.Install()()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Fire(SiteWorkerStart, "w")
			}
		}()
	}
	wg.Wait()
	if got := s.Fired(SiteWorkerStart, ""); got != 800 {
		t.Fatalf("Fired = %d, want 800", got)
	}
}

// TestScriptPanicDoesNotWedge: a panicking action runs outside the
// script lock, so a concurrent Fire on another goroutine proceeds.
func TestScriptPanicDoesNotWedge(t *testing.T) {
	s := NewScript().PanicOn(SiteRewriteEval, "", 1, "boom")
	defer s.Install()()
	func() {
		defer func() { recover() }()
		Fire(SiteRewriteEval, "0")
	}()
	done := make(chan struct{})
	go func() {
		Fire(SiteRewriteEval, "1") // must not block on a held lock
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Fire blocked after a panicking action")
	}
}
