// Package faultinject provides the engine's fault-injection hook
// points: named sites on the query path (worker start, rewrite
// evaluation, match-list builds, block flushes) where a test can
// deterministically inject panics, latency or arbitrary side effects
// (cancelling a captured context, exhausting a budget) without build
// tags or test-only forks of the production code.
//
// In production no hook is installed and every site costs one atomic
// load of a false flag — Fire returns before touching its arguments, so
// call sites may guard any allocation needed to build a key behind
// Enabled(). Tests install a hook with Set (usually a Script) and must
// Clear it when done; the chaos differential test drives the whole
// engine through these sites and asserts that completed queries stay
// byte-identical to the fault-free oracle while injected faults degrade
// into typed, partial results.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Site names one fault-injection point on the query path.
type Site string

const (
	// SiteWorkerStart fires when a parallel scheduler worker starts,
	// keyed by the worker index. A panicking hook here simulates a
	// worker dying before it evaluates anything.
	SiteWorkerStart Site = "worker-start"
	// SiteRewriteEval fires at the top of every rewrite evaluation,
	// keyed by the rewrite's index in the rewrite space — on the serial
	// path and inside every parallel worker. A panicking hook here
	// simulates a crash mid-query; a sleeping hook simulates a slow
	// evaluation.
	SiteRewriteEval Site = "rewrite-eval"
	// SiteListBuild fires inside a match-list cache build, keyed by the
	// pattern key. A sleeping hook simulates slow index access (the
	// original system's remote ElasticSearch lists); a panicking hook
	// exercises the cache's failed-build recovery protocol.
	SiteListBuild Site = "list-build"
	// SiteBlockFlush fires every time the block kernel flushes a full
	// frontier block, with an empty key.
	SiteBlockFlush Site = "block-flush"

	// I/O fault sites on the durability path. These fire through FireErr:
	// an error-returning hook simulates the disk failing — or the process
	// being killed — at that exact point, and the caller leaves whatever
	// partial on-disk state a real crash would leave.

	// SiteSnapshotWrite fires on every write of snapshot bytes to the
	// temp file, keyed by the write ordinal. An error here produces a
	// short write: half the chunk lands on disk, the rest never does.
	SiteSnapshotWrite Site = "snapshot-write"
	// SiteWALAppend fires on every write-ahead-log append, keyed by the
	// record kind. An error here tears the record: a prefix of the frame
	// reaches the file, simulating a crash mid-append.
	SiteWALAppend Site = "wal-append"
	// SiteFsync fires before each fsync, keyed by what is being synced
	// ("snapshot", "wal", "dir"). An error here means the data may or may
	// not have reached the platter; the writer must treat it as failure.
	SiteFsync Site = "fsync"
	// SiteRename fires around the snapshot's atomic rename, keyed
	// "before" or "after". An error at "before" simulates a kill with the
	// temp file written but never published; at "after", a kill between
	// publishing the snapshot and rotating the WAL.
	SiteRename Site = "rename"
)

// Fn is an installed hook: it receives every Fire call and may sleep,
// panic, or run arbitrary side effects. It must be safe for concurrent
// use — parallel workers fire sites concurrently.
type Fn func(site Site, key string)

// ErrFn is an installed error hook: it receives every FireErr call and
// may return a non-nil error to make the I/O site fail. It must be safe
// for concurrent use.
type ErrFn func(site Site, key string) error

var (
	enabled atomic.Bool
	hook    atomic.Pointer[Fn]
	errHook atomic.Pointer[ErrFn]
)

// Enabled reports whether a hook is installed. Call sites use it to
// guard key construction that would allocate on the production path.
func Enabled() bool { return enabled.Load() }

// Fire invokes the installed hook, if any. It is the per-site
// production cost: one atomic load when no hook is installed.
func Fire(site Site, key string) {
	if !enabled.Load() {
		return
	}
	if f := hook.Load(); f != nil {
		(*f)(site, key)
	}
}

// FireErr invokes the installed error hook, if any, and returns its
// verdict. I/O sites call it before (or instead of) the real operation;
// a non-nil return makes the operation fail as if the disk — or the
// process — died right there. Production cost: one atomic load.
func FireErr(site Site, key string) error {
	if !enabled.Load() {
		return nil
	}
	if f := errHook.Load(); f != nil {
		return (*f)(site, key)
	}
	return nil
}

// Set installs fn as the process-wide hook. Tests must Clear when done
// (t.Cleanup(faultinject.Clear)); installing is not meant to be raced
// with other tests that also inject.
func Set(fn Fn) {
	hook.Store(&fn)
	enabled.Store(true)
}

// SetErr installs fn as the process-wide error hook for I/O sites.
// Tests must Clear when done.
func SetErr(fn ErrFn) {
	errHook.Store(&fn)
	enabled.Store(true)
}

// Clear removes every installed hook, restoring the production behaviour.
func Clear() {
	enabled.Store(false)
	hook.Store(nil)
	errHook.Store(nil)
}

// Script is a deterministic injector: an ordered set of rules matched
// against (site, key) occurrence counts. Each rule keeps its own match
// counter, so "panic on the 3rd rewrite evaluation" or "sleep on every
// list build" compose without interfering. Install with
// faultinject.Set(s.Fn) (or s.Install()).
type Script struct {
	mu    sync.Mutex
	rules []*rule
}

type rule struct {
	site  Site
	key   string // "" matches any key
	nth   int    // fire on the nth matching occurrence; 0 fires on every occurrence
	count int
	fired int
	act   func() // side-effect rule, matched by Fn
	err   error  // error rule, matched by ErrFn
}

// NewScript returns an empty script.
func NewScript() *Script { return &Script{} }

// PanicOn panics with value on the nth occurrence of site with key
// ("" = any key). The panic unwinds through the engine's panic
// isolation, not through the script.
func (s *Script) PanicOn(site Site, key string, nth int, value string) *Script {
	return s.on(site, key, nth, func() { panic(value) })
}

// SleepEvery sleeps d on every occurrence of site with key ("" = any
// key) — the latency-fault primitive.
func (s *Script) SleepEvery(site Site, key string, d time.Duration) *Script {
	return s.on(site, key, 0, func() { time.Sleep(d) })
}

// CallOn runs fn on the nth occurrence of site with key ("" = any key);
// nth 0 runs it on every occurrence. Use it to cancel a captured
// context mid-stream or to flip external state.
func (s *Script) CallOn(site Site, key string, nth int, fn func()) *Script {
	return s.on(site, key, nth, fn)
}

// ErrorOn makes the nth occurrence of I/O site with key ("" = any key)
// return err through FireErr; nth 0 fails every occurrence. The caller
// of the fault site decides what partial state the failure leaves, so an
// ErrorOn at SiteWALAppend produces a torn record, not a clean no-op.
func (s *Script) ErrorOn(site Site, key string, nth int, err error) *Script {
	s.mu.Lock()
	s.rules = append(s.rules, &rule{site: site, key: key, nth: nth, err: err})
	s.mu.Unlock()
	return s
}

func (s *Script) on(site Site, key string, nth int, act func()) *Script {
	s.mu.Lock()
	s.rules = append(s.rules, &rule{site: site, key: key, nth: nth, act: act})
	s.mu.Unlock()
	return s
}

// Fn is the Script's hook function. Matching and counting happen under
// the script's lock; the triggered actions run after it is released, so
// a panicking or sleeping action never wedges concurrent Fire calls.
func (s *Script) Fn(site Site, key string) {
	var acts []func()
	s.mu.Lock()
	for _, r := range s.rules {
		if r.err != nil || r.site != site || (r.key != "" && r.key != key) {
			continue
		}
		r.count++
		if r.nth == 0 || r.count == r.nth {
			r.fired++
			acts = append(acts, r.act)
		}
	}
	s.mu.Unlock()
	for _, a := range acts {
		a()
	}
}

// ErrFn is the Script's error hook: the first matching ErrorOn rule due
// to fire decides the site's fate. Side-effect rules never match here,
// so a script mixing both kinds counts each rule exactly once per Fire
// or FireErr.
func (s *Script) ErrFn(site Site, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules {
		if r.err == nil || r.site != site || (r.key != "" && r.key != key) {
			continue
		}
		r.count++
		if r.nth == 0 || r.count == r.nth {
			r.fired++
			return r.err
		}
	}
	return nil
}

// Install sets the script as the process-wide hook — both the
// side-effect and the error hook — and returns Clear for deferring:
// defer s.Install()().
func (s *Script) Install() func() {
	Set(s.Fn)
	SetErr(s.ErrFn)
	return Clear
}

// Fired reports how many times rules for site with key ("" = any key)
// have triggered their action — the test-side assertion that an
// injected fault actually happened.
func (s *Script) Fired(site Site, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.rules {
		if r.site == site && (key == "" || r.key == key) {
			n += r.fired
		}
	}
	return n
}
