package score

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

func demoStore() *store.Store {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("MaxBorn"), rdf.Resource("bornIn"), rdf.Resource("Breslau"))
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("affiliation"), rdf.Resource("IAS"))
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("won Nobel for"), rdf.Token("discovery of the photoelectric effect"), rdf.SourceXKG, 0.9, rdf.NoProv)
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("lectured at"), rdf.Resource("PrincetonUniversity"), rdf.SourceXKG, 0.7, rdf.NoProv)
	st.AddFact(rdf.Resource("MaxBorn"), rdf.Token("lectured at"), rdf.Resource("Goettingen"), rdf.SourceXKG, 0.5, rdf.NoProv)
	st.Freeze()
	return st
}

func TestMatchPatternExactResource(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	ms := m.MatchPattern(query.MustParse("?x bornIn ?y").Patterns[0])
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2", len(ms))
	}
	// Both KG triples have conf 1, so probabilities are uniform 0.5.
	for _, mt := range ms {
		if mt.Prob != 0.5 {
			t.Errorf("Prob = %v, want 0.5", mt.Prob)
		}
		if len(mt.Bindings) != 2 {
			t.Errorf("bindings = %v", mt.Bindings)
		}
	}
}

func TestMatchPatternProbsSumToOne(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	for _, qs := range []string{"?x bornIn ?y", "?x 'lectured at' ?y", "AlbertEinstein ?p ?o"} {
		ms := m.MatchPattern(query.MustParse(qs).Patterns[0])
		if len(ms) == 0 {
			t.Fatalf("%s: no matches", qs)
		}
		sum := 0.0
		for _, mt := range ms {
			sum += mt.Prob
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%s: probs sum to %v", qs, sum)
		}
	}
}

func TestMatchPatternTokenPredicate(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	// 'won nobel for' (user spelling) must match 'won Nobel for'.
	ms := m.MatchPattern(query.MustParse("AlbertEinstein 'won nobel for' ?x").Patterns[0])
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	if ms[0].Prob != 1 {
		t.Errorf("single-match prob = %v, want 1", ms[0].Prob)
	}
}

func TestMatchPatternTokenMatchesCamelCasePredicate(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	// The token 'born in' matches the KG predicate bornIn via camel-case
	// tokenisation — the XKG query language reaches KG facts too.
	ms := m.MatchPattern(query.MustParse("?x 'born in' ?y").Patterns[0])
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want the 2 bornIn facts", len(ms))
	}
}

func TestMatchPatternConfidenceOrdersMatches(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	ms := m.MatchPattern(query.MustParse("?x 'lectured at' ?y").Patterns[0])
	if len(ms) != 2 {
		t.Fatalf("matches = %d", len(ms))
	}
	// Einstein's 0.7 extraction outranks Born's 0.5.
	first := st.Triple(ms[0].Triple)
	if st.Dict().Term(first.S).Text != "AlbertEinstein" {
		t.Errorf("highest match = %v", st.Dict().Term(first.S))
	}
	if ms[0].Prob <= ms[1].Prob {
		t.Error("matches not sorted by probability")
	}
	// tf-effect: probabilities proportional to confidence.
	want0 := 0.7 / 1.2
	if math.Abs(ms[0].Prob-want0) > 1e-12 {
		t.Errorf("Prob = %v, want %v", ms[0].Prob, want0)
	}
}

func TestIdfEffectSelectivePatternsScoreHigher(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	// Selective: AlbertEinstein bornIn ?y (1 match, prob 1).
	sel := m.MatchPattern(query.MustParse("AlbertEinstein bornIn ?y").Patterns[0])
	// Unselective: ?x ?p ?y (6 matches).
	all := m.MatchPattern(query.MustParse("?x ?p ?y").Patterns[0])
	if len(sel) != 1 || len(all) != 6 {
		t.Fatalf("match counts: %d, %d", len(sel), len(all))
	}
	if sel[0].Prob != 1 {
		t.Errorf("selective prob = %v", sel[0].Prob)
	}
	if all[0].Prob >= sel[0].Prob {
		t.Errorf("idf effect missing: broad pattern prob %v >= selective %v", all[0].Prob, sel[0].Prob)
	}
}

func TestMatchPatternRepeatedVariable(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("A"), rdf.Resource("knows"), rdf.Resource("A"))
	st.AddKG(rdf.Resource("A"), rdf.Resource("knows"), rdf.Resource("B"))
	st.Freeze()
	m := NewMatcher(st)
	ms := m.MatchPattern(query.MustParse("?x knows ?x").Patterns[0])
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want only the self-loop", len(ms))
	}
	if ms[0].Prob != 1 {
		t.Errorf("prob = %v", ms[0].Prob)
	}
}

func TestMatchPatternUnknownResource(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	if ms := m.MatchPattern(query.MustParse("?x bornIn Atlantis").Patterns[0]); ms != nil {
		t.Fatalf("matches for unknown resource: %v", ms)
	}
}

func TestMatchPatternLiteral(t *testing.T) {
	st := store.New(nil, nil)
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Resource("bornOn"), rdf.Literal("1879-03-14"), rdf.SourceKG, 1, rdf.NoProv)
	st.Freeze()
	m := NewMatcher(st)
	ms := m.MatchPattern(query.MustParse("AlbertEinstein bornOn ?d").Patterns[0])
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	if got := st.Dict().Term(ms[0].Bindings[0].Term); got.Kind != rdf.KindLiteral {
		t.Errorf("bound to %v", got)
	}
}

func TestMinTokenSimThreshold(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	m.MinTokenSim = 0.99
	// 'gave lectures at' shares only 'lectures'≈'lectured'? tokens differ
	// — below 0.99 it cannot match.
	if ms := m.MatchPattern(query.MustParse("?x 'gave lectures at' ?y").Patterns[0]); len(ms) != 0 {
		t.Fatalf("high threshold still matched: %v", ms)
	}
}

func TestAccessCounting(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	_, stats := m.MatchPatternCounted(query.MustParse("?x ?p ?y").Patterns[0])
	if stats.IndexScanned != 6 {
		t.Fatalf("accesses = %d, want 6", stats.IndexScanned)
	}
	// A bound pattern touches only its index range.
	_, stats = m.MatchPatternCounted(query.MustParse("?x bornIn ?y").Patterns[0])
	if stats.IndexScanned != 2 {
		t.Fatalf("bound-pattern accesses = %d, want 2", stats.IndexScanned)
	}
	// A token pattern resolves its slot through the inverted index and
	// touches only the candidate ranges, not the wildcard range.
	_, stats = m.MatchPatternCounted(query.MustParse("?x 'lectured at' ?y").Patterns[0])
	if stats.TokenResolutions != 1 {
		t.Fatalf("token resolutions = %d, want 1", stats.TokenResolutions)
	}
	if stats.ScanFallback {
		t.Fatal("token pattern unexpectedly fell back to the scan path")
	}
	if stats.IndexScanned >= 6 {
		t.Fatalf("token pattern touched %d entries, want fewer than the full store (6)", stats.IndexScanned)
	}
}

func TestSelectivity(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	if n := m.Selectivity(query.MustParse("?x bornIn ?y").Patterns[0]); n != 2 {
		t.Fatalf("selectivity = %d", n)
	}
}

func TestDeterministicOrder(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	p := query.MustParse("?x ?p ?y").Patterns[0]
	a := m.MatchPattern(p)
	for i := 0; i < 5; i++ {
		b := m.MatchPattern(p)
		for j := range a {
			if a[j].Triple != b[j].Triple || a[j].Prob != b[j].Prob {
				t.Fatal("non-deterministic match order")
			}
		}
	}
}

// TestTokenResolvedMatchesScanByteIdentical: on the demo store, every
// token-pattern shape must produce the same rendered match list on the
// token-resolved and the NoTokenIndex scan path (probabilities compared
// exactly via %.17g).
func TestTokenResolvedMatchesScanByteIdentical(t *testing.T) {
	st := demoStore()
	resolved := NewMatcher(st)
	scan := NewMatcher(st)
	scan.NoTokenIndex = true
	render := func(ms []Match) string {
		var b strings.Builder
		for _, m := range ms {
			fmt.Fprintf(&b, "t%d raw=%.17g prob=%.17g %v\n", m.Triple, m.Raw, m.Prob, m.Bindings)
		}
		return b.String()
	}
	for _, qs := range []string{
		"?x 'lectured at' ?y",
		"?x 'born in' ?y",
		"AlbertEinstein 'won nobel for' ?x",
		"?x 'lectured at' ?x",        // repeated variable
		"?x 'of' ?y",                 // all-stopword phrase
		"?x 'zzz unknown phrase' ?y", // unknown token
		"?x 'won nobel for' 'photoelectric effect discovery'", // two token slots
	} {
		p := query.MustParse(qs).Patterns[0]
		rm, _ := resolved.MatchPatternCounted(p)
		sm, _ := scan.MatchPatternCounted(p)
		if got, want := render(rm), render(sm); got != want {
			t.Errorf("%s: lists differ\n--- token-resolved\n%s--- scan\n%s", qs, got, want)
		}
	}
}

// TestSelectivityTokenPatterns: Selectivity must equal the match-list
// length for token patterns and repeated-variable patterns on both paths.
func TestSelectivityTokenPatterns(t *testing.T) {
	st := demoStore()
	for _, noIndex := range []bool{false, true} {
		m := NewMatcher(st)
		m.NoTokenIndex = noIndex
		for _, qs := range []string{
			"?x 'lectured at' ?y",
			"?x 'lectured at' ?x",
			"?x ?p ?x",
			"?x 'zzz unknown phrase' ?y",
			"AlbertEinstein 'won nobel for' ?x",
		} {
			p := query.MustParse(qs).Patterns[0]
			if got, want := m.Selectivity(p), len(m.MatchPattern(p)); got != want {
				t.Errorf("NoTokenIndex=%v %s: Selectivity = %d, matches = %d", noIndex, qs, got, want)
			}
		}
	}
}

// TestMinTokenSimZeroFallsBackToScan: with a zero threshold,
// zero-similarity matches exist that the inverted index cannot enumerate,
// so the matcher must take the scan path (and still agree with it).
func TestMinTokenSimZeroFallsBackToScan(t *testing.T) {
	st := demoStore()
	m := NewMatcher(st)
	m.MinTokenSim = 0
	p := query.MustParse("?x 'lectured at' ?y").Patterns[0]
	ms, stats := m.MatchPatternCounted(p)
	if !stats.ScanFallback {
		t.Error("MinTokenSim=0 did not fall back to the scan path")
	}
	if stats.TokenResolutions != 0 {
		t.Errorf("resolutions = %d, want 0", stats.TokenResolutions)
	}
	// Zero-similarity triples survive the threshold with Raw = 0.
	if len(ms) != 6 {
		t.Errorf("matches = %d, want all 6 store triples", len(ms))
	}
}
