// Package score implements TriniT's answer-scoring model (§4): a
// query-likelihood approach in which each triple pattern is viewed as a
// document that emits triples with certain probabilities.
//
// For a pattern p and a matching triple t,
//
//	P(t | p) = conf(t) · match(t, p)  /  Σ_{t' ⊨ p} conf(t') · match(t', p)
//
// where conf is the triple's confidence (1 for curated KG facts — the
// tf-like effect rewards reliable, frequently-extracted facts since
// duplicate extractions keep the maximum confidence) and match is the
// token-similarity of textual slots (1 for exact resource matches). The
// denominator is the pattern's total match mass: selective patterns emit
// each of their matches with higher probability — the idf-like effect.
//
// Relaxation-weight attenuation and the max-over-derivations semantics are
// applied by the top-k processor on top of these per-pattern probabilities.
package score

import (
	"sort"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
	"trinit/internal/text"
)

// Binding assigns a term to a query variable.
type Binding struct {
	Var  string
	Term rdf.TermID
}

// Match is one triple matching a pattern, with its emission probability.
type Match struct {
	Triple store.ID
	// Raw is conf(t) · match(t, p), before normalisation.
	Raw float64
	// Prob is the normalised emission probability P(t | p).
	Prob float64
	// Bindings are the variable assignments this match induces. Every
	// match in one MatchPattern result binds the same variables in the
	// same order — slot order S, P, O with repeated variables
	// deduplicated — so callers building per-variable indexes over a
	// match list may resolve a variable's position once, on any entry,
	// and read that position on every other entry.
	Bindings []Binding
}

// BindingOf returns the term this match binds to variable v, or false when
// the match does not bind v.
func (m Match) BindingOf(v string) (rdf.TermID, bool) {
	for _, b := range m.Bindings {
		if b.Var == v {
			return b.Term, true
		}
	}
	return rdf.NoTerm, false
}

// Matcher evaluates single patterns against a frozen store. Once its
// configuration fields are set it is safe for concurrent use: matching
// only reads the frozen store and mutates no matcher state.
type Matcher struct {
	St *store.Store
	// MinTokenSim is the minimum similarity for a textual token slot to
	// match a term (default 0.34: roughly one shared content word out
	// of three).
	MinTokenSim float64
	// UniformConf treats every triple as confidence 1, ablating the
	// tf-like effect of the scoring model (experiment E8).
	UniformConf bool
	// NoNormalize skips the per-pattern normalisation, ablating the
	// idf-like selectivity effect (experiment E8).
	NoNormalize bool
}

// NewMatcher returns a matcher with default thresholds.
func NewMatcher(st *store.Store) *Matcher {
	return &Matcher{St: st, MinTokenSim: 0.34}
}

// MatchPattern returns all matches of the pattern, sorted by descending
// probability (ties by triple ID). Use MatchPatternCounted when the
// posting-list access cost matters (the E5 experiment reports it).
func (m *Matcher) MatchPattern(p query.Pattern) []Match {
	out, _ := m.MatchPatternCounted(p)
	return out
}

// MatchPatternCounted returns the matches together with the number of
// posting-list entries touched, leaving per-call accounting to the
// caller. It mutates no matcher state, so concurrent calls need no
// coordination. Token slots match approximately; the match factor of a
// triple is the product of its token-slot similarities.
func (m *Matcher) MatchPatternCounted(p query.Pattern) ([]Match, int) {
	// Resolve exactly-bound slots to term IDs; a bound resource or
	// literal that is not in the dictionary can never match.
	var ids [3]rdf.TermID // NoTerm = wildcard for the index scan
	var tokenText [3]string
	slots := [3]query.Slot{p.S, p.P, p.O}
	for i, sl := range slots {
		switch {
		case sl.IsVar():
			// wildcard
		case sl.Term.Kind == rdf.KindToken:
			tokenText[i] = sl.Term.Text
		default:
			id, ok := m.St.Dict().Lookup(sl.Term)
			if !ok {
				return nil, 0
			}
			ids[i] = id
		}
	}

	cands := m.St.Match(ids[0], ids[1], ids[2])
	out := make([]Match, 0, len(cands))
	var mass float64
	accesses := 0
	for _, id := range cands {
		accesses++
		tr := m.St.Triple(id)
		parts := [3]rdf.TermID{tr.S, tr.P, tr.O}
		matchFactor := 1.0
		ok := true
		for i := range slots {
			if tokenText[i] == "" {
				continue
			}
			sim := text.Similarity(tokenText[i], m.St.Dict().Term(parts[i]).Text)
			if sim < m.MinTokenSim {
				ok = false
				break
			}
			matchFactor *= sim
		}
		if !ok {
			continue
		}
		bindings, ok := bind(slots, parts)
		if !ok {
			continue
		}
		conf := tr.Conf
		if m.UniformConf {
			conf = 1
		}
		raw := conf * matchFactor
		mass += raw
		out = append(out, Match{Triple: id, Raw: raw, Bindings: bindings})
	}
	if m.NoNormalize {
		for i := range out {
			out[i].Prob = out[i].Raw
		}
	} else if mass > 0 {
		for i := range out {
			out[i].Prob = out[i].Raw / mass
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Triple < out[j].Triple
	})
	return out, accesses
}

// bind computes variable bindings for a triple, enforcing that repeated
// variables bind to the same term (e.g. ?x knows ?x).
func bind(slots [3]query.Slot, parts [3]rdf.TermID) ([]Binding, bool) {
	var out []Binding
	for i, sl := range slots {
		if !sl.IsVar() {
			continue
		}
		dup := false
		for _, b := range out {
			if b.Var == sl.Var {
				if b.Term != parts[i] {
					return nil, false
				}
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, Binding{Var: sl.Var, Term: parts[i]})
		}
	}
	return out, true
}

// Selectivity returns the number of triples matching the pattern, the
// quantity behind the idf-like effect.
func (m *Matcher) Selectivity(p query.Pattern) int {
	out, _ := m.MatchPatternCounted(p)
	return len(out)
}
