// Package score implements TriniT's answer-scoring model (§4): a
// query-likelihood approach in which each triple pattern is viewed as a
// document that emits triples with certain probabilities.
//
// For a pattern p and a matching triple t,
//
//	P(t | p) = conf(t) · match(t, p)  /  Σ_{t' ⊨ p} conf(t') · match(t', p)
//
// where conf is the triple's confidence (1 for curated KG facts — the
// tf-like effect rewards reliable, frequently-extracted facts since
// duplicate extractions keep the maximum confidence) and match is the
// token-similarity of textual slots (1 for exact resource matches). The
// denominator is the pattern's total match mass: selective patterns emit
// each of their matches with higher probability — the idf-like effect.
//
// Relaxation-weight attenuation and the max-over-derivations semantics are
// applied by the top-k processor on top of these per-pattern probabilities.
//
// Match lists are built token-resolved: each textual token slot is first
// resolved to its candidate terms through the store's inverted token index
// (store.MatchToken), and only the permutation-index ranges of the
// candidate combinations are scanned — instead of materialising the
// wildcard range and similarity-testing every triple. Candidate
// similarities use the same text.Similarity at the same MinTokenSim, so
// the resulting match lists are byte-identical to the scan path's; the
// scan path remains as the fallback for unbounded candidate cross-products
// and as the measured NoTokenIndex baseline.
package score

import (
	"sort"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
	"trinit/internal/text"
)

// Binding assigns a term to a query variable.
type Binding struct {
	Var  string
	Term rdf.TermID
}

// Match is one triple matching a pattern, with its emission probability.
type Match struct {
	Triple store.ID
	// Raw is conf(t) · match(t, p), before normalisation.
	Raw float64
	// Prob is the normalised emission probability P(t | p).
	Prob float64
	// Bindings are the variable assignments this match induces. Every
	// match in one MatchPattern result binds the same variables in the
	// same order — slot order S, P, O with repeated variables
	// deduplicated — so callers building per-variable indexes over a
	// match list may resolve a variable's position once, on any entry,
	// and read that position on every other entry.
	Bindings []Binding
}

// BoundedExtend is the column kernel of block-at-a-time join execution:
// it extends one running-probability value acc across the candidate
// entries of a score-sorted match list, appending the products acc·Prob
// to dst as a column. cand selects list positions (nil means every entry
// of ms, in order). The inner loop is a branch-free multiply except for
// one monotone cut: weighted is the row's weight-scaled prefix
// probability and suffix the best possible completion of the remaining
// patterns, so (weighted·Prob)·suffix is the branch's score bound —
// computed with exactly the association the tuple kernel uses, so both
// kernels take bit-identical pruning decisions. Candidates arrive in
// descending Prob order, hence the first bound strictly below limit cuts
// the whole remaining column. It returns the extended column and the
// number of candidates consumed; limit 0 never cuts (bounds are
// non-negative), which is the exhaustive mode.
func BoundedExtend(ms []Match, cand []int32, acc, weighted, suffix, limit float64, dst []float64) ([]float64, int) {
	if cand == nil {
		for j := range ms {
			prob := ms[j].Prob
			if (weighted*prob)*suffix < limit {
				return dst, j
			}
			dst = append(dst, acc*prob)
		}
		return dst, len(ms)
	}
	for j, p := range cand {
		prob := ms[p].Prob
		if (weighted*prob)*suffix < limit {
			return dst, j
		}
		dst = append(dst, acc*prob)
	}
	return dst, len(cand)
}

// BindingOf returns the term this match binds to variable v, or false when
// the match does not bind v.
func (m Match) BindingOf(v string) (rdf.TermID, bool) {
	for _, b := range m.Bindings {
		if b.Var == v {
			return b.Term, true
		}
	}
	return rdf.NoTerm, false
}

// MatchStats reports the work one MatchPatternCounted call performed.
type MatchStats struct {
	// IndexScanned counts posting-list entries touched while building the
	// match list: every entry of the wildcard range on the scan path, or
	// only the entries of the candidate-combination ranges on the
	// token-resolved path. Inverted-index postings read during token
	// resolution are not counted here; TokenResolutions meters those.
	IndexScanned int
	// TokenResolutions counts token slots resolved through the inverted
	// token index.
	TokenResolutions int
	// ScanFallback reports that a pattern with token slots was matched by
	// the legacy wildcard scan — because token resolution was disabled
	// (NoTokenIndex, MinTokenSim <= 0), the candidate cross-product
	// exceeded maxTokenCombos, or the candidate ranges were no smaller
	// than the wildcard range.
	ScanFallback bool
}

// Matcher evaluates single patterns against a frozen store. Once its
// configuration fields are set it is safe for concurrent use: matching
// only reads the frozen store and mutates no matcher state.
type Matcher struct {
	St *store.Store
	// MinTokenSim is the minimum similarity for a textual token slot to
	// match a term (default 0.34: roughly one shared content word out
	// of three).
	MinTokenSim float64
	// UniformConf treats every triple as confidence 1, ablating the
	// tf-like effect of the scoring model (experiment E8).
	UniformConf bool
	// NoNormalize skips the per-pattern normalisation, ablating the
	// idf-like selectivity effect (experiment E8).
	NoNormalize bool
	// NoTokenIndex forces the legacy wildcard-scan path for token slots,
	// ablating inverted-index candidate resolution. Match lists are
	// byte-identical either way; only the list-building work differs.
	NoTokenIndex bool
	// Resolver, when set, replaces direct store.MatchToken calls for
	// token-slot resolution. Implementations must return exactly
	// store.MatchToken(tok, store.MaskAny, minSim, 0) — the hook exists
	// so an engine can share one cached resolution between the planner's
	// selectivity estimate and the matcher. The returned slice is treated
	// as read-only and may be shared across goroutines.
	Resolver func(tok string, minSim float64) []store.ScoredTerm
	// Mass, when set, overrides the normalisation denominator of each
	// pattern's match list: it receives the pattern and the locally
	// accumulated mass and returns the mass to divide by. A sharded
	// engine installs a hook returning the pattern's mass over the
	// whole corpus, so per-shard lists normalise with global statistics
	// and every shard's emission probabilities are bit-identical to the
	// unsharded matcher's — the distributed-IDF exchange of search
	// engines, applied to the scoring model's idf-like effect. Ignored
	// under NoNormalize. Implementations must be safe for concurrent
	// use and deterministic.
	Mass func(p query.Pattern, local float64) float64
}

// NewMatcher returns a matcher with default thresholds.
func NewMatcher(st *store.Store) *Matcher {
	return &Matcher{St: st, MinTokenSim: 0.34}
}

// compiledPattern is a pattern with its bound slots resolved against the
// dictionary and its token slots tokenized once, so per-candidate work
// never re-tokenizes the query side.
type compiledPattern struct {
	slots [3]query.Slot
	// ids holds the term ID of each exactly-bound slot; NoTerm acts as a
	// wildcard for the index scan (variables and token slots).
	ids [3]rdf.TermID
	// tokText and tokSets hold the surface text and precomputed content
	// token set of each textual token slot (tokSets[i] == nil for
	// non-token slots; a token slot with empty text stays a wildcard,
	// matching the scan path's behaviour).
	tokText  [3]string
	tokSets  [3]text.TokenSet
	hasToken bool
}

// compile resolves the pattern's bound slots. ok is false when a bound
// resource or literal is not in the dictionary, in which case the pattern
// can never match.
func (m *Matcher) compile(p query.Pattern) (cp compiledPattern, ok bool) {
	cp.slots = [3]query.Slot{p.S, p.P, p.O}
	for i, sl := range cp.slots {
		switch {
		case sl.IsVar():
			// wildcard
		case sl.Term.Kind == rdf.KindToken:
			if sl.Term.Text == "" {
				continue // wildcard, as on the scan path
			}
			cp.tokText[i] = sl.Term.Text
			cp.tokSets[i] = text.NewTokenSet(sl.Term.Text)
			cp.hasToken = true
		default:
			id, found := m.St.Dict().Lookup(sl.Term)
			if !found {
				return cp, false
			}
			cp.ids[i] = id
		}
	}
	return cp, true
}

// MatchPattern returns all matches of the pattern, sorted by descending
// probability (ties by triple ID). Use MatchPatternCounted when the
// list-building cost matters (the E5 experiment reports it).
func (m *Matcher) MatchPattern(p query.Pattern) []Match {
	out, _ := m.MatchPatternCounted(p)
	return out
}

// MatchPatternCounted returns the matches together with statistics on the
// list-building work, leaving per-call accounting to the caller. It
// mutates no matcher state, so concurrent calls need no coordination.
// Token slots match approximately; the match factor of a triple is the
// product of its token-slot similarities.
func (m *Matcher) MatchPatternCounted(p query.Pattern) ([]Match, MatchStats) {
	var stats MatchStats
	cp, ok := m.compile(p)
	if !ok {
		return nil, stats
	}
	if ranges, empty, resolved := m.resolveCombos(&cp, &stats); resolved {
		if empty {
			return nil, stats
		}
		var out []Match
		for _, r := range ranges {
			for _, id := range r.ids {
				stats.IndexScanned++
				m.appendMatch(&out, &cp, id, r.factor)
			}
		}
		return m.finish(p, out), stats
	}
	stats.ScanFallback = cp.hasToken
	return m.finish(p, m.gatherScan(&cp, &stats)), stats
}

// appendMatch scores one candidate triple and appends it unless a repeated
// variable binds inconsistently.
func (m *Matcher) appendMatch(out *[]Match, cp *compiledPattern, id store.ID, factor float64) {
	tr := m.St.Triple(id)
	bindings, ok := bind(cp.slots, [3]rdf.TermID{tr.S, tr.P, tr.O})
	if !ok {
		return
	}
	conf := tr.Conf
	if m.UniformConf {
		conf = 1
	}
	*out = append(*out, Match{Triple: id, Raw: conf * factor, Bindings: bindings})
}

// gatherScan is the legacy list-building path: materialise the wildcard
// index range and similarity-test every candidate triple. It remains the
// fallback for patterns token resolution cannot bound, and the measured
// NoTokenIndex baseline.
func (m *Matcher) gatherScan(cp *compiledPattern, stats *MatchStats) []Match {
	cands := m.St.Match(cp.ids[0], cp.ids[1], cp.ids[2])
	out := make([]Match, 0, len(cands))
	for _, id := range cands {
		stats.IndexScanned++
		tr := m.St.Triple(id)
		factor, ok := m.tokenFactor(cp, [3]rdf.TermID{tr.S, tr.P, tr.O})
		if !ok {
			continue
		}
		m.appendMatch(&out, cp, id, factor)
	}
	return out
}

// tokenFactor computes the product of the pattern's token-slot
// similarities against the triple's terms, in slot order, reporting
// ok=false when any slot falls below MinTokenSim. It is the single copy
// of the scan path's similarity filter, shared by list building and
// Selectivity so the two can never diverge.
func (m *Matcher) tokenFactor(cp *compiledPattern, parts [3]rdf.TermID) (factor float64, ok bool) {
	factor = 1.0
	for i := range cp.slots {
		if cp.tokSets[i] == nil {
			continue
		}
		sim := text.SimilaritySets(cp.tokSets[i], m.St.TermTokenSet(parts[i]))
		if sim < m.MinTokenSim {
			return 0, false
		}
		factor *= sim
	}
	return factor, true
}

// maxTokenCombos bounds the cross-product of candidate terms across the
// token slots of one pattern. Beyond it, enumerating per-combination index
// ranges risks costing more than one wildcard scan, so the matcher falls
// back to the scan path — worst cases never regress.
const maxTokenCombos = 512

// comboRange is the permutation-index range of one candidate combination,
// with the combination's token match factor (the product of the chosen
// candidates' similarities, multiplied in slot order exactly as the scan
// path does).
type comboRange struct {
	ids    []store.ID
	factor float64
}

// resolveCombos resolves each token slot to candidate terms via the
// inverted token index and enumerates the candidate combinations as
// zero-copy permutation-index ranges. Each combination binds every token
// slot to a distinct term, so the ranges are disjoint and no triple is
// visited twice.
//
// resolved is false when the pattern must use the scan path: it has no
// token slots, resolution is disabled (NoTokenIndex, or MinTokenSim <= 0,
// where zero-similarity matches exist that the index cannot enumerate),
// the cross-product exceeds maxTokenCombos, or the combined ranges are no
// smaller than the wildcard range one scan would touch. empty reports a
// pattern proven matchless during resolution (a token slot with no
// candidate at MinTokenSim — MatchToken is complete for positive
// similarities, so nothing can match).
func (m *Matcher) resolveCombos(cp *compiledPattern, stats *MatchStats) (ranges []comboRange, empty, resolved bool) {
	if !cp.hasToken || m.NoTokenIndex || m.MinTokenSim <= 0 {
		return nil, false, false
	}
	// Resolve every token slot before enforcing the combo cap: a slot
	// with no candidate proves the pattern matchless, and that
	// short-circuit must win over the cap (resolutions are cheap and
	// cached; the fallback scan they avert is not).
	var cands [3][]store.ScoredTerm
	combos := 1
	for i := range cp.slots {
		if cp.tokSets[i] == nil {
			continue
		}
		c := m.resolveToken(cp.tokText[i])
		stats.TokenResolutions++
		if len(c) == 0 {
			return nil, true, true
		}
		cands[i] = c
		combos *= len(c)
	}
	if combos > maxTokenCombos {
		return nil, false, false
	}

	ranges = make([]comboRange, 0, combos)
	total := 0
	var walk func(slot int, probe [3]rdf.TermID, factor float64)
	walk = func(slot int, probe [3]rdf.TermID, factor float64) {
		if slot == 3 {
			ids := m.St.Match(probe[0], probe[1], probe[2])
			if len(ids) > 0 {
				ranges = append(ranges, comboRange{ids: ids, factor: factor})
				total += len(ids)
			}
			return
		}
		if cands[slot] == nil {
			walk(slot+1, probe, factor)
			return
		}
		for _, c := range cands[slot] {
			probe[slot] = c.Term
			walk(slot+1, probe, factor*c.Sim)
		}
	}
	walk(0, cp.ids, 1)

	if total >= m.St.Count(cp.ids[0], cp.ids[1], cp.ids[2]) {
		// The candidate ranges cover at least the wildcard range the
		// scan path would touch (the extreme case: every token slot's
		// candidates span the whole store) — scanning is cheaper, since
		// the ranges above were only binary searches but materialising
		// them would now do strictly more work than one scan.
		return nil, false, false
	}
	return ranges, false, true
}

// resolveToken resolves one token slot to its candidate terms.
func (m *Matcher) resolveToken(tok string) []store.ScoredTerm {
	if m.Resolver != nil {
		return m.Resolver(tok, m.MinTokenSim)
	}
	return m.St.MatchToken(tok, store.MaskAny, m.MinTokenSim, 0)
}

// finish normalises and sorts a gathered match list. The match mass is
// accumulated in ascending triple-ID order — a canonical order shared by
// the token-resolved and scan paths, so both sum the same floats in the
// same sequence and produce bit-identical probabilities.
func (m *Matcher) finish(p query.Pattern, out []Match) []Match {
	if len(out) == 0 {
		return out
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Triple < out[j].Triple })
	var mass float64
	for i := range out {
		mass += out[i].Raw
	}
	if m.NoNormalize {
		for i := range out {
			out[i].Prob = out[i].Raw
		}
	} else {
		if m.Mass != nil {
			mass = m.Mass(p, mass)
		}
		if mass > 0 {
			for i := range out {
				out[i].Prob = out[i].Raw / mass
			}
		}
	}
	// Stable on a triple-ID-sorted list: ties by ascending triple ID.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Prob > out[j].Prob })
	return out
}

// MatchMass returns the pattern's total match mass — the normalisation
// denominator Σ conf·match of MatchPattern, accumulated in the same
// canonical ascending triple-ID order finish uses, so the returned float
// is bit-identical to the denominator an unhooked matcher over the same
// store would divide by. It is the statistics side of distributed
// normalisation: a coordinator computes it over the whole corpus and
// serves it to per-shard matchers through the Mass hook.
func (m *Matcher) MatchMass(p query.Pattern) float64 {
	out, _ := m.MatchPatternCounted(p)
	sort.Slice(out, func(i, j int) bool { return out[i].Triple < out[j].Triple })
	var mass float64
	for i := range out {
		mass += out[i].Raw
	}
	return mass
}

// bind computes variable bindings for a triple, enforcing that repeated
// variables bind to the same term (e.g. ?x knows ?x).
func bind(slots [3]query.Slot, parts [3]rdf.TermID) ([]Binding, bool) {
	var out []Binding
	for i, sl := range slots {
		if !sl.IsVar() {
			continue
		}
		dup := false
		for _, b := range out {
			if b.Var == sl.Var {
				if b.Term != parts[i] {
					return nil, false
				}
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, Binding{Var: sl.Var, Term: parts[i]})
		}
	}
	return out, true
}

// consistentParts reports whether repeated variables bind to equal terms —
// bind's consistency check without allocating the binding list.
func consistentParts(slots [3]query.Slot, parts [3]rdf.TermID) bool {
	for i := 0; i < 3; i++ {
		if !slots[i].IsVar() {
			continue
		}
		for j := i + 1; j < 3; j++ {
			if slots[j].IsVar() && slots[j].Var == slots[i].Var && parts[i] != parts[j] {
				return false
			}
		}
	}
	return true
}

// hasRepeatedVar reports whether the same variable occupies two slots.
func hasRepeatedVar(slots [3]query.Slot) bool {
	for i := 0; i < 3; i++ {
		if !slots[i].IsVar() {
			continue
		}
		for j := i + 1; j < 3; j++ {
			if slots[j].IsVar() && slots[j].Var == slots[i].Var {
				return true
			}
		}
	}
	return false
}

// Selectivity returns the number of triples matching the pattern, the
// quantity behind the idf-like effect. It never materialises or scores a
// match list: patterns without token slots or repeated variables are
// answered by a permutation-index range count, token patterns by summing
// the candidate-combination range counts, and only the scan fallback
// walks candidates — counting, not building.
func (m *Matcher) Selectivity(p query.Pattern) int {
	cp, ok := m.compile(p)
	if !ok {
		return 0
	}
	repeated := hasRepeatedVar(cp.slots)
	if !cp.hasToken && !repeated {
		return m.St.Count(cp.ids[0], cp.ids[1], cp.ids[2])
	}
	var stats MatchStats
	if ranges, empty, resolved := m.resolveCombos(&cp, &stats); resolved {
		if empty {
			return 0
		}
		n := 0
		for _, r := range ranges {
			if !repeated {
				n += len(r.ids)
				continue
			}
			for _, id := range r.ids {
				tr := m.St.Triple(id)
				if consistentParts(cp.slots, [3]rdf.TermID{tr.S, tr.P, tr.O}) {
					n++
				}
			}
		}
		return n
	}
	n := 0
	for _, id := range m.St.Match(cp.ids[0], cp.ids[1], cp.ids[2]) {
		tr := m.St.Triple(id)
		parts := [3]rdf.TermID{tr.S, tr.P, tr.O}
		if _, ok := m.tokenFactor(&cp, parts); ok && consistentParts(cp.slots, parts) {
			n++
		}
	}
	return n
}
