package text

import "sort"

// Trie is a prefix tree over strings with per-entry payloads and weights,
// used for query auto-completion (§5: "User input is eased by
// auto-completion, guiding users towards meaningful query formulations").
type Trie struct {
	root *trieNode
}

type trieNode struct {
	children map[byte]*trieNode
	// entries holds the completions terminating at this node.
	entries []Completion
}

// Completion is an auto-completion candidate.
type Completion struct {
	// Text is the full completion string.
	Text string
	// Payload is an opaque identifier supplied at insert time (for
	// TriniT, the dictionary TermID of the completed resource).
	Payload uint32
	// Weight orders completions: higher weights are suggested first.
	Weight float64
}

// NewTrie returns an empty trie.
func NewTrie() *Trie { return &Trie{root: newTrieNode()} }

func newTrieNode() *trieNode { return &trieNode{children: make(map[byte]*trieNode)} }

// Insert adds a completion for the given text.
func (t *Trie) Insert(text string, payload uint32, weight float64) {
	n := t.root
	for i := 0; i < len(text); i++ {
		c := lowerByte(text[i])
		child, ok := n.children[c]
		if !ok {
			child = newTrieNode()
			n.children[c] = child
		}
		n = child
	}
	n.entries = append(n.entries, Completion{Text: text, Payload: payload, Weight: weight})
}

// Complete returns up to limit completions of prefix, ordered by descending
// weight, ties broken by text. Matching is case-insensitive.
func (t *Trie) Complete(prefix string, limit int) []Completion {
	n := t.root
	for i := 0; i < len(prefix); i++ {
		child, ok := n.children[lowerByte(prefix[i])]
		if !ok {
			return nil
		}
		n = child
	}
	var out []Completion
	collect(n, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Text < out[j].Text
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func collect(n *trieNode, out *[]Completion) {
	*out = append(*out, n.entries...)
	// Deterministic traversal order: visit children by byte value.
	for c := 0; c < 256; c++ {
		if child, ok := n.children[byte(c)]; ok {
			collect(child, out)
		}
	}
}

func lowerByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + ('a' - 'A')
	}
	return b
}
