package text

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"won a Nobel for", []string{"won", "a", "nobel", "for"}},
		{"AlbertEinstein", []string{"albert", "einstein"}},
		{"PrincetonUniversity", []string{"princeton", "university"}},
		{"IAS", []string{"ias"}}, // all-caps acronym stays whole
		{"1879-03-14", []string{"1879", "03", "14"}},
		{"  spaces\tand\npunct!,. ", []string{"spaces", "and", "punct"}},
		{"", nil},
		{"won-Nobel_for", []string{"won", "nobel", "for"}},
		{"Yago2s", []string{"yago", "2s"}},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if !equalStrings(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestContentTokensDropsStopwords(t *testing.T) {
	got := ContentTokens("won a Nobel for")
	want := []string{"won", "nobel"}
	if !equalStrings(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestContentTokensAllStopwordsFallsBack(t *testing.T) {
	got := ContentTokens("of the")
	want := []string{"of", "the"}
	if !equalStrings(got, want) {
		t.Errorf("ContentTokens(all-stopwords) = %v, want %v (full list)", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("nobel") {
		t.Error("stopword classification wrong for 'the'/'nobel'")
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("won a Nobel for"); got != "won nobel" {
		t.Errorf("Normalize = %q, want %q", got, "won nobel")
	}
	if Normalize("Won NOBEL") != Normalize("won a nobel") {
		t.Error("normalisation must be case- and stopword-insensitive")
	}
}

func TestJaccard(t *testing.T) {
	a := NewTokenSet("won a Nobel for")
	b := NewTokenSet("won Nobel")
	if got := Jaccard(a, b); got != 1.0 {
		t.Errorf("Jaccard(identical content) = %v, want 1", got)
	}
	c := NewTokenSet("lectured at")
	if got := Jaccard(a, c); got != 0 {
		t.Errorf("Jaccard(disjoint) = %v, want 0", got)
	}
	if got := Jaccard(TokenSet{}, TokenSet{}); got != 0 {
		t.Errorf("Jaccard(empty, empty) = %v, want 0", got)
	}
}

func TestOverlapSubPhrase(t *testing.T) {
	long := NewTokenSet("discovery of the photoelectric effect")
	short := NewTokenSet("photoelectric effect")
	if got := Overlap(short, long); got != 1.0 {
		t.Errorf("Overlap(subphrase) = %v, want 1", got)
	}
	if got := Overlap(TokenSet{}, long); got != 0 {
		t.Errorf("Overlap(empty, x) = %v, want 0", got)
	}
}

func TestSimilarityRange(t *testing.T) {
	tests := []struct {
		q, p string
		want float64
		cmp  string // "eq", "gt0lt1"
	}{
		{"won nobel for", "won a Nobel for", 1.0, "eq"},
		{"won nobel", "lectured at", 0.0, "eq"},
		{"nobel", "won a Nobel for", 0, "gt0lt1"},
	}
	for _, tc := range tests {
		got := Similarity(tc.q, tc.p)
		switch tc.cmp {
		case "eq":
			if got != tc.want {
				t.Errorf("Similarity(%q, %q) = %v, want %v", tc.q, tc.p, got, tc.want)
			}
		case "gt0lt1":
			if got <= 0 || got >= 1 {
				t.Errorf("Similarity(%q, %q) = %v, want in (0,1)", tc.q, tc.p, got)
			}
		}
	}
}

// Property: Similarity is symmetric up to the asymmetry-free components and
// always in [0, 1]; identical strings score 1 (when they contain a token).
func TestSimilarityProperties(t *testing.T) {
	words := []string{"won", "nobel", "prize", "physics", "lectured", "at", "princeton", "einstein", "the", "of"}
	gen := rand.New(rand.NewSource(7))
	phrase := func() string {
		n := 1 + gen.Intn(4)
		var parts []string
		for i := 0; i < n; i++ {
			parts = append(parts, words[gen.Intn(len(words))])
		}
		return strings.Join(parts, " ")
	}
	for i := 0; i < 500; i++ {
		a, b := phrase(), phrase()
		s := Similarity(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("Similarity(%q, %q) = %v out of [0,1]", a, b, s)
		}
		if got, rev := s, Similarity(b, a); got != rev {
			t.Fatalf("Similarity not symmetric: (%q,%q) %v vs %v", a, b, got, rev)
		}
		if self := Similarity(a, a); self != 1 {
			t.Fatalf("Similarity(%q, itself) = %v, want 1", a, self)
		}
	}
}

// Property: Tokenize output is always lower-case and contains no separators.
func TestTokenizeProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || strings.ToLower(tok) != tok {
				return false
			}
			if strings.ContainsAny(tok, " \t\n.,!?-_'\"") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrieCompleteOrdersByWeight(t *testing.T) {
	tr := NewTrie()
	tr.Insert("AlbertEinstein", 1, 0.9)
	tr.Insert("AlbertCamus", 2, 0.5)
	tr.Insert("AlfredKleiner", 3, 0.7)
	tr.Insert("Ulm", 4, 0.3)

	got := tr.Complete("Al", 10)
	wantOrder := []string{"AlbertEinstein", "AlfredKleiner", "AlbertCamus"}
	if len(got) != 3 {
		t.Fatalf("Complete returned %d entries, want 3: %v", len(got), got)
	}
	for i, w := range wantOrder {
		if got[i].Text != w {
			t.Errorf("Complete[%d] = %q, want %q", i, got[i].Text, w)
		}
	}
}

func TestTrieCompleteCaseInsensitive(t *testing.T) {
	tr := NewTrie()
	tr.Insert("PrincetonUniversity", 1, 1)
	if got := tr.Complete("princetonuniv", 5); len(got) != 1 {
		t.Fatalf("case-insensitive Complete = %v, want 1 hit", got)
	}
	if got := tr.Complete("PRINCETON", 5); len(got) != 1 {
		t.Fatalf("upper-case prefix Complete = %v, want 1 hit", got)
	}
}

func TestTrieCompleteLimitAndMiss(t *testing.T) {
	tr := NewTrie()
	for i, s := range []string{"aa", "ab", "ac", "ad"} {
		tr.Insert(s, uint32(i), float64(i))
	}
	if got := tr.Complete("a", 2); len(got) != 2 {
		t.Fatalf("limit not applied: %v", got)
	}
	if got := tr.Complete("zz", 5); got != nil {
		t.Fatalf("miss should return nil, got %v", got)
	}
}

func TestTrieExactEntryIncluded(t *testing.T) {
	tr := NewTrie()
	tr.Insert("bornIn", 1, 1)
	got := tr.Complete("bornIn", 5)
	if len(got) != 1 || got[0].Payload != 1 {
		t.Fatalf("exact-match completion missing: %v", got)
	}
}

// Property: every completion returned actually has the query as a
// case-insensitive prefix, and weights are non-increasing.
func TestTrieProperty(t *testing.T) {
	gen := rand.New(rand.NewSource(11))
	alphabet := "abcDE"
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[gen.Intn(len(alphabet))]
		}
		return string(b)
	}
	tr := NewTrie()
	inserted := make([]string, 0, 60)
	for i := 0; i < 60; i++ {
		s := randStr(1 + gen.Intn(6))
		tr.Insert(s, uint32(i), gen.Float64())
		inserted = append(inserted, s)
	}
	for i := 0; i < 200; i++ {
		prefix := randStr(1 + gen.Intn(3))
		got := tr.Complete(prefix, 0)
		for j, c := range got {
			if !strings.HasPrefix(strings.ToLower(c.Text), strings.ToLower(prefix)) {
				t.Fatalf("completion %q does not have prefix %q", c.Text, prefix)
			}
			if j > 0 && got[j-1].Weight < c.Weight {
				t.Fatalf("completions not sorted by weight: %v", got)
			}
		}
	}
	// Every inserted string must be findable via its own full text.
	for _, s := range inserted {
		found := false
		for _, c := range tr.Complete(s, 0) {
			if c.Text == s {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("inserted string %q not found by Complete", s)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStem(t *testing.T) {
	tests := map[string]string{
		"advised":  "advis",
		"advisor":  "advis",
		"students": "student",
		"lectured": "lectur",
		"lecturer": "lectur",
		"working":  "work",
		"was":      "was", // too short to strip
		"class":    "class",
		"born":     "born",
	}
	for in, want := range tests {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemSimilarity(t *testing.T) {
	if got := StemSimilarity("was advised by", "hasAdvisor"); got <= 0 {
		t.Errorf("StemSimilarity(advised, advisor) = %v, want > 0", got)
	}
	if got := StemSimilarity("was born in", "bornIn"); got != 1 {
		// content stems: {born} vs {ha, born}? "has" is not a stopword
		// here; accept anything positive.
		if got <= 0 {
			t.Errorf("StemSimilarity(born) = %v", got)
		}
	}
	if got := StemSimilarity("jousted near", "bornIn"); got != 0 {
		t.Errorf("StemSimilarity(unrelated) = %v, want 0", got)
	}
}

// TestSimilaritySetVariantsAgree: the precomputed-set forms must compute
// the identical score as the string form, bit for bit, since the matcher
// relies on this to keep token-resolved and scan match lists byte-equal.
func TestSimilaritySetVariantsAgree(t *testing.T) {
	pairs := [][2]string{
		{"worked at", "lectured at Princeton"},
		{"won nobel for", "won Nobel for"},
		{"the of", "of"},
		{"", "anything"},
		{"AlbertEinstein", "albert einstein"},
		{"photoelectric effect", "discovery of the photoelectric effect"},
	}
	for _, p := range pairs {
		want := Similarity(p[0], p[1])
		a, b := NewTokenSet(p[0]), NewTokenSet(p[1])
		if got := SimilaritySets(a, b); got != want {
			t.Errorf("SimilaritySets(%q, %q) = %v, Similarity = %v", p[0], p[1], got, want)
		}
		if got := SimilarityToSet(a, p[1]); got != want {
			t.Errorf("SimilarityToSet(%q, %q) = %v, Similarity = %v", p[0], p[1], got, want)
		}
	}
}
