// Package text provides the text-processing primitives used across TriniT:
// tokenization and normalisation of phrases, stopword handling, token-set
// similarity for matching textual query tokens against XKG token phrases,
// and a prefix trie used for query auto-completion.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lower-cased word tokens. Runs of letters or digits
// form tokens; everything else separates tokens. Camel-case resource names
// such as "AlbertEinstein" are split at case boundaries so that resources
// and token phrases become comparable ("albert", "einstein").
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	var prev rune
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			// Split CamelCase: boundary when an upper-case letter
			// follows a lower-case letter or digit.
			if unicode.IsUpper(r) && (unicode.IsLower(prev) || unicode.IsDigit(prev)) {
				flush()
			}
			cur.WriteRune(r)
		case unicode.IsDigit(r):
			if unicode.IsLetter(prev) {
				flush()
			}
			cur.WriteRune(r)
		default:
			flush()
		}
		prev = r
	}
	flush()
	return toks
}

// stopwords is a small closed-class list. Stopwords are dropped when
// comparing phrases so that 'won a Nobel for' and 'won Nobel for' match.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true,
	"of": true, "in": true, "on": true, "at": true, "to": true, "for": true,
	"by": true, "with": true, "from": true, "as": true, "into": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"been": true, "being": true, "his": true, "her": true, "its": true,
	"their": true, "and": true, "or": true, "s": true,
}

// IsStopword reports whether the (lower-case) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// ContentTokens tokenizes s and removes stopwords. If every token is a
// stopword, the full token list is returned instead so that phrases such as
// 'of' never normalise to nothing.
func ContentTokens(s string) []string {
	all := Tokenize(s)
	var content []string
	for _, t := range all {
		if !stopwords[t] {
			content = append(content, t)
		}
	}
	if len(content) == 0 {
		return all
	}
	return content
}

// Normalize returns the canonical comparison form of a phrase: content
// tokens joined by single spaces.
func Normalize(s string) string { return strings.Join(ContentTokens(s), " ") }

// TokenSet is a set of normalised tokens.
type TokenSet map[string]bool

// NewTokenSet builds the content-token set of a phrase.
func NewTokenSet(s string) TokenSet {
	set := make(TokenSet)
	for _, t := range ContentTokens(s) {
		set[t] = true
	}
	return set
}

// Jaccard returns |a ∩ b| / |a ∪ b|, and 0 for two empty sets.
func Jaccard(a, b TokenSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Overlap returns |a ∩ b| / min(|a|, |b|), the overlap coefficient, and 0
// when either set is empty. It is more forgiving than Jaccard when one
// phrase is a sub-phrase of the other, which is the common case when a
// short query token must match a longer extracted phrase.
func Overlap(a, b TokenSet) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	return float64(inter) / float64(min)
}

// Similarity is the phrase-match score used when a textual query token is
// matched against an XKG token phrase or a resource label: the mean of
// Jaccard and overlap coefficients. It is 1 for identical normalised
// phrases, and 0 for disjoint ones.
//
// Similarity tokenizes both sides on every call. Hot loops that compare
// one query phrase against many dictionary terms should build the token
// sets once and use SimilaritySets (or SimilarityToSet when only one side
// is precomputed); all three compute the identical score.
func Similarity(query, phrase string) float64 {
	return SimilaritySets(NewTokenSet(query), NewTokenSet(phrase))
}

// SimilaritySets is Similarity over precomputed token sets, for callers
// that hold both sides already normalised (e.g. the store's per-term sets
// built at Freeze against a pattern's per-slot query sets).
func SimilaritySets(a, b TokenSet) float64 {
	return (Jaccard(a, b) + Overlap(a, b)) / 2
}

// SimilarityToSet is Similarity with a precomputed query-side set, for
// loops that score one query phrase against many raw phrases.
func SimilarityToSet(query TokenSet, phrase string) float64 {
	return SimilaritySets(query, NewTokenSet(phrase))
}

// Stem reduces a token to a crude stem by suffix stripping, sufficient to
// relate morphological variants of relation words: advised/advisor →
// advis, lectured/lecturer → lectur, students/student → student. It is
// deliberately lighter than a full Porter stemmer.
func Stem(tok string) string {
	if len(tok) > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") {
		tok = tok[:len(tok)-1]
	}
	switch {
	case len(tok) > 5 && strings.HasSuffix(tok, "ing"):
		tok = tok[:len(tok)-3]
	case len(tok) > 4 && strings.HasSuffix(tok, "ed"):
		tok = tok[:len(tok)-2]
	case len(tok) > 5 && (strings.HasSuffix(tok, "or") || strings.HasSuffix(tok, "er")):
		tok = tok[:len(tok)-2]
	}
	return tok
}

// stemSet builds the stemmed content-token set of a phrase.
func stemSet(s string) TokenSet {
	set := make(TokenSet)
	for _, t := range ContentTokens(s) {
		set[Stem(t)] = true
	}
	return set
}

// StemSimilarity is Similarity computed over stemmed tokens, relating
// phrases that share word stems: 'was advised by' ~ hasAdvisor.
func StemSimilarity(a, b string) float64 {
	sa, sb := stemSet(a), stemSet(b)
	return (Jaccard(sa, sb) + Overlap(sa, sb)) / 2
}
