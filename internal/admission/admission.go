// Package admission implements engine-level admission control: a
// weighted semaphore sized in units of worker parallelism, with a
// bounded FIFO wait queue and deadline-aware load shedding.
//
// Each query acquires weight equal to its effective parallelism before
// it starts evaluating, so capacity bounds the total number of
// evaluation goroutines rather than the number of queries — one P=8
// query costs as much as eight serial ones. When capacity is exhausted
// arrivals wait in FIFO order, but never unboundedly: a full queue or a
// caller deadline that the controller predicts it cannot meet (from an
// EWMA of recent queue waits) is shed immediately with a typed error,
// which the HTTP layer maps to 429 + Retry-After. Shedding early keeps
// the queue short and the process live instead of queueing into
// collapse.
package admission

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Acquire when the wait queue is at
// capacity: the query is shed without waiting.
var ErrQueueFull = errors.New("admission: wait queue full")

// ErrDeadline is returned by Acquire when the caller's deadline is
// closer than the predicted queue wait: the query is shed immediately
// rather than admitted to time out.
var ErrDeadline = errors.New("admission: deadline unlikely to be met")

// Controller is a weighted semaphore with a bounded FIFO wait queue.
// The zero value is unusable; construct with New. A nil *Controller is
// valid and admits everything (admission disabled).
type Controller struct {
	mu       sync.Mutex
	capacity int64
	maxQueue int
	inUse    int64
	queue    []*waiter

	admitted uint64
	shed     uint64
	// avgWait is an EWMA of the queue wait observed by admitted
	// waiters, used to predict whether a deadline can be met.
	avgWait time.Duration
}

type waiter struct {
	weight  int64
	ready   chan struct{}
	granted bool
	since   time.Time
}

// New returns a controller admitting up to capacity units of weight
// concurrently, with at most maxQueue waiters queued behind them.
// capacity must be >= 1; maxQueue <= 0 disables queueing (arrivals
// that do not fit are shed immediately).
func New(capacity int64, maxQueue int) *Controller {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Controller{capacity: capacity, maxQueue: maxQueue}
}

// Acquire blocks until weight units are granted, the queue overflows
// (ErrQueueFull), the deadline is predicted unmeetable (ErrDeadline),
// or ctx is done (its error). On success the caller must Release the
// same weight. Weights above capacity are clamped so a query wider
// than the whole controller still runs (alone). On a nil controller
// Acquire is a no-op.
func (c *Controller) Acquire(ctx context.Context, weight int64) error {
	if c == nil {
		return nil
	}
	if weight < 1 {
		weight = 1
	}
	c.mu.Lock()
	if weight > c.capacity {
		weight = c.capacity
	}
	// Fast path: nothing queued ahead and capacity available.
	if len(c.queue) == 0 && c.inUse+weight <= c.capacity {
		c.inUse += weight
		c.admitted++
		c.mu.Unlock()
		return nil
	}
	if len(c.queue) >= c.maxQueue {
		c.shed++
		c.mu.Unlock()
		return ErrQueueFull
	}
	if dl, ok := ctx.Deadline(); ok {
		if wait := c.predictWaitLocked(); wait > 0 && time.Until(dl) < wait {
			c.shed++
			c.mu.Unlock()
			return ErrDeadline
		}
	}
	w := &waiter{weight: weight, ready: make(chan struct{}), since: time.Now()}
	c.queue = append(c.queue, w)
	c.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// Lost the race: the grant happened between ctx firing and
			// us taking the lock. Hand the weight back.
			c.releaseLocked(w.weight)
		} else {
			for i, q := range c.queue {
				if q == w {
					c.queue = append(c.queue[:i], c.queue[i+1:]...)
					break
				}
			}
			c.shed++
		}
		c.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns weight units acquired by a successful Acquire,
// waking queued waiters that now fit. No-op on a nil controller.
func (c *Controller) Release(weight int64) {
	if c == nil {
		return
	}
	if weight < 1 {
		weight = 1
	}
	c.mu.Lock()
	if weight > c.capacity {
		weight = c.capacity
	}
	c.releaseLocked(weight)
	c.mu.Unlock()
}

func (c *Controller) releaseLocked(weight int64) {
	c.inUse -= weight
	if c.inUse < 0 {
		c.inUse = 0
	}
	c.grantLocked()
}

// grantLocked admits queued waiters in FIFO order while the head fits.
// Granting out of order would let small queries starve a wide one at
// the head of the queue.
func (c *Controller) grantLocked() {
	for len(c.queue) > 0 {
		w := c.queue[0]
		if c.inUse+w.weight > c.capacity {
			return
		}
		c.queue = c.queue[1:]
		c.inUse += w.weight
		c.admitted++
		c.observeWaitLocked(time.Since(w.since))
		w.granted = true
		close(w.ready)
	}
}

// observeWaitLocked folds one observed queue wait into the EWMA
// (α = 1/4 — reactive enough for bursts, stable across single spikes).
func (c *Controller) observeWaitLocked(d time.Duration) {
	if c.avgWait == 0 {
		c.avgWait = d
		return
	}
	c.avgWait += (d - c.avgWait) / 4
}

// predictWaitLocked estimates the queue wait a new arrival would see:
// the EWMA of recent waits scaled by current queue depth (each waiter
// ahead roughly serialises one more wait).
func (c *Controller) predictWaitLocked() time.Duration {
	if c.avgWait == 0 {
		return 0
	}
	return c.avgWait * time.Duration(len(c.queue)+1)
}

// Saturated reports whether a new arrival would be shed or forced to
// queue: the readiness signal for /readyz. A nil controller is never
// saturated.
func (c *Controller) Saturated() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxQueue <= 0 {
		return c.inUse >= c.capacity
	}
	return len(c.queue) >= c.maxQueue
}

// Stats is a snapshot of the controller's counters.
type Stats struct {
	Capacity int64
	InUse    int64
	Queued   int
	Admitted uint64
	Shed     uint64
	AvgWait  time.Duration
}

// Stats returns a consistent snapshot. A nil controller reports zeros.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Capacity: c.capacity,
		InUse:    c.inUse,
		Queued:   len(c.queue),
		Admitted: c.admitted,
		Shed:     c.shed,
		AvgWait:  c.avgWait,
	}
}
