package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestNilController: all methods are no-ops on nil — admission
// disabled costs nothing at the call sites.
func TestNilController(t *testing.T) {
	var c *Controller
	if err := c.Acquire(context.Background(), 8); err != nil {
		t.Fatalf("nil Acquire: %v", err)
	}
	c.Release(8)
	if c.Saturated() {
		t.Fatal("nil controller reports saturated")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zero", s)
	}
}

// TestFastPath: acquisitions within capacity do not block.
func TestFastPath(t *testing.T) {
	c := New(4, 2)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := c.Acquire(ctx, 1); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s.InUse != 4 || s.Admitted != 4 {
		t.Fatalf("Stats = %+v, want InUse=4 Admitted=4", s)
	}
}

// TestWeightClamped: a weight above capacity is clamped so an
// over-wide query still runs (alone) instead of deadlocking.
func TestWeightClamped(t *testing.T) {
	c := New(4, 2)
	if err := c.Acquire(context.Background(), 100); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if s := c.Stats(); s.InUse != 4 {
		t.Fatalf("InUse = %d, want clamped to 4", s.InUse)
	}
	c.Release(100)
	if s := c.Stats(); s.InUse != 0 {
		t.Fatalf("InUse = %d after Release, want 0", s.InUse)
	}
}

// TestQueueAndRelease: a waiter beyond capacity queues FIFO and is
// granted when weight frees up.
func TestQueueAndRelease(t *testing.T) {
	c := New(2, 4)
	ctx := context.Background()
	if err := c.Acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	granted := make(chan error, 1)
	go func() { granted <- c.Acquire(ctx, 1) }()
	// The second acquire must queue, not fail.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	c.Release(2)
	select {
	case err := <-granted:
		if err != nil {
			t.Fatalf("queued Acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter never granted")
	}
	if s := c.Stats(); s.InUse != 1 || s.Queued != 0 {
		t.Fatalf("Stats = %+v, want InUse=1 Queued=0", s)
	}
}

// TestQueueFullShed: when the wait queue is at maxQueue, arrivals are
// shed immediately with ErrQueueFull.
func TestQueueFullShed(t *testing.T) {
	c := New(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = c.Acquire(ctx, 1) // occupies the single queue slot until cancel
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if !c.Saturated() {
		t.Fatal("Saturated() = false with a full queue")
	}
	if err := c.Acquire(ctx, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire = %v, want ErrQueueFull", err)
	}
	if s := c.Stats(); s.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", s.Shed)
	}
	cancel()
	wg.Wait()
}

// TestMaxQueueZero: maxQueue <= 0 disables queueing entirely —
// arrivals that do not fit are shed, and Saturated tracks capacity.
func TestMaxQueueZero(t *testing.T) {
	c := New(1, 0)
	ctx := context.Background()
	if err := c.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if !c.Saturated() {
		t.Fatal("Saturated() = false at capacity with no queue")
	}
	if err := c.Acquire(ctx, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire = %v, want ErrQueueFull", err)
	}
	c.Release(1)
	if c.Saturated() {
		t.Fatal("Saturated() = true after Release")
	}
}

// TestDeadlineShed: when the EWMA predicts a wait longer than the
// caller's deadline, the query is shed with ErrDeadline instead of
// being admitted to time out in the queue.
func TestDeadlineShed(t *testing.T) {
	c := New(1, 8)
	// Seed the EWMA with a long observed wait.
	c.mu.Lock()
	c.observeWaitLocked(time.Second)
	c.inUse = 1
	c.queue = append(c.queue, &waiter{weight: 1, ready: make(chan struct{})})
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := c.Acquire(ctx, 1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Acquire = %v, want ErrDeadline", err)
	}
	if s := c.Stats(); s.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", s.Shed)
	}
}

// TestCancelWhileQueued: a waiter whose context fires before the grant
// is removed from the queue and does not leak weight.
func TestCancelWhileQueued(t *testing.T) {
	c := New(1, 4)
	bg := context.Background()
	if err := c.Acquire(bg, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	errc := make(chan error, 1)
	go func() { errc <- c.Acquire(ctx, 1) }()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire = %v, want context.Canceled", err)
	}
	c.Release(1)
	if s := c.Stats(); s.InUse != 0 || s.Queued != 0 {
		t.Fatalf("Stats = %+v, want InUse=0 Queued=0 after cancel+release", s)
	}
}

// TestFIFOOrder: a wide waiter at the head is not starved by narrow
// arrivals behind it — grants are strictly FIFO.
func TestFIFOOrder(t *testing.T) {
	c := New(4, 8)
	bg := context.Background()
	if err := c.Acquire(bg, 4); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	acquire := func(id int, weight int64) {
		defer wg.Done()
		if err := c.Acquire(bg, weight); err != nil {
			t.Errorf("Acquire %d: %v", id, err)
			return
		}
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	wg.Add(1)
	go acquire(1, 4) // wide: must be granted first
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go acquire(2, 1) // narrow: queued behind, fits but must wait
	for c.Stats().Queued != 2 {
		if time.Now().After(deadline) {
			t.Fatal("second waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	c.Release(4) // frees everything: head (weight 4) fits, then not id 2
	// After the wide grant the narrow one still waits; release again.
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wide waiter never granted")
		}
		time.Sleep(time.Millisecond)
	}
	c.Release(4)
	wg.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("grant order = %v, want [1 2]", order)
	}
}

// TestConcurrentChurn: many goroutines acquiring and releasing under
// -race; invariant: InUse returns to zero and never exceeds capacity.
func TestConcurrentChurn(t *testing.T) {
	const capacity = 4
	c := New(capacity, 64)
	bg := context.Background()
	var over atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := int64(g%3 + 1)
			for i := 0; i < 50; i++ {
				if err := c.Acquire(bg, w); err != nil {
					continue
				}
				if c.Stats().InUse > capacity {
					over.Store(true)
				}
				c.Release(w)
			}
		}(g)
	}
	wg.Wait()
	if over.Load() {
		t.Fatal("InUse exceeded capacity")
	}
	if s := c.Stats(); s.InUse != 0 || s.Queued != 0 {
		t.Fatalf("Stats = %+v, want drained", s)
	}
}
