// Package openie implements a self-contained Open Information Extraction
// pipeline in the style of ReVerb (Fader et al., EMNLP 2011), the extractor
// family the paper uses to build the XKG (§2).
//
// The pipeline is: sentence segmentation → part-of-speech tagging (lexicon
// plus suffix heuristics) → noun-phrase chunking → relation-phrase
// extraction under ReVerb's syntactic constraint (the relation phrase must
// match V | V P | V W* P and lie between its two argument noun phrases) →
// confidence estimation from surface features.
//
// It replaces the ReVerb/OLLIE binaries the original system ran over
// ClueWeb'09; see DESIGN.md §2 for the substitution argument.
package openie

import "strings"

// Tag is a coarse part-of-speech tag.
type Tag uint8

// The tagset is deliberately coarse: it is just rich enough to express
// ReVerb's NP and relation-phrase patterns.
const (
	TagNoun Tag = iota
	TagPropNoun
	TagVerb
	TagAux // auxiliary/copula: is, was, has, ...
	TagDet
	TagAdj
	TagAdv
	TagPrep
	TagPron
	TagConj
	TagNum
	TagPunct
	TagOther
)

// String returns a short tag mnemonic.
func (t Tag) String() string {
	switch t {
	case TagNoun:
		return "N"
	case TagPropNoun:
		return "NP"
	case TagVerb:
		return "V"
	case TagAux:
		return "AUX"
	case TagDet:
		return "DET"
	case TagAdj:
		return "ADJ"
	case TagAdv:
		return "ADV"
	case TagPrep:
		return "P"
	case TagPron:
		return "PRON"
	case TagConj:
		return "CONJ"
	case TagNum:
		return "NUM"
	case TagPunct:
		return "PUNCT"
	default:
		return "O"
	}
}

// closed-class lexicons.
var (
	determiners  = wordSet("a an the this that these those his her its their my your our some any no every each")
	prepositions = wordSet("of in on at to for by with from as into about over under between through during against among within along across behind beyond near")
	pronouns     = wordSet("he she it they we you i him them us who whom which whose")
	conjunctions = wordSet("and or but nor so yet")
	auxiliaries  = wordSet("is are was were be been being am has have had do does did will would can could shall should may might must")
)

// verbLexicon lists common verb lemmas and irregular forms; inflected
// regular forms are recognised by suffix heuristics in TagWord.
var verbLexicon = wordSet(
	"win won receive received study studied work worked lecture lectured " +
		"found founded marry married bear born die died locate located house housed " +
		"graduate graduated discover discovered develop developed write wrote written " +
		"publish published meet met teach taught advise advised supervise supervised " +
		"join joined move moved visit visited lead led direct directed play played " +
		"give gave grow grew know knew make made take took hold held serve served " +
		"earn earned attend attended collaborate collaborated emigrate emigrated " +
		"invent invented propose proposed formulate formulated chair chaired head headed " +
		"mentor mentored succeed succeeded award awarded name named establish established " +
		"belong belonged reside resided settle settled immigrate immigrated travel traveled " +
		"honor honored honour honoured nominate nominated elect elected appoint appointed " +
		"become became begin began remain remained stay stayed spend spent")

// adjectiveLexicon lists adjectives that matter for NP chunking in the
// synthetic corpus; unknown words default to nouns, which chunk the same.
var adjectiveLexicon = wordSet("famous renowned great young old german american swiss eminent noted distinguished prestigious private public royal national theoretical")

func wordSet(s string) map[string]bool {
	m := make(map[string]bool)
	for _, w := range strings.Fields(s) {
		m[w] = true
	}
	return m
}

// TaggedToken is a surface token with its tag. Capital reports whether the
// original token was capitalised (used for proper-noun detection).
type TaggedToken struct {
	Text    string // original surface form
	Lower   string
	Tag     Tag
	Capital bool
}

// TagWord assigns a tag to a single word. first marks the first word of a
// sentence, where capitalisation is not evidence of a proper noun.
func TagWord(word string, first bool) Tag {
	lower := strings.ToLower(word)
	if isNumber(word) {
		return TagNum
	}
	switch {
	case determiners[lower]:
		return TagDet
	case prepositions[lower]:
		return TagPrep
	case pronouns[lower]:
		return TagPron
	case conjunctions[lower]:
		return TagConj
	case auxiliaries[lower]:
		return TagAux
	case verbLexicon[lower]:
		return TagVerb
	case adjectiveLexicon[lower]:
		return TagAdj
	}
	if isCapitalized(word) && !first {
		return TagPropNoun
	}
	// Suffix heuristics for open-class words.
	switch {
	case strings.HasSuffix(lower, "ly") && len(lower) > 4:
		return TagAdv
	case strings.HasSuffix(lower, "ing") && len(lower) > 5:
		return TagVerb
	case strings.HasSuffix(lower, "ed") && len(lower) > 4:
		return TagVerb
	}
	if isCapitalized(word) {
		// Sentence-initial capitalised unknown word: treat as proper
		// noun; corpus sentences routinely start with entity names.
		return TagPropNoun
	}
	return TagNoun
}

func isCapitalized(w string) bool {
	return len(w) > 0 && w[0] >= 'A' && w[0] <= 'Z'
}

func isNumber(w string) bool {
	if w == "" {
		return false
	}
	for i := 0; i < len(w); i++ {
		c := w[i]
		if (c < '0' || c > '9') && c != '-' && c != '.' && c != '/' {
			return false
		}
	}
	return w[0] >= '0' && w[0] <= '9'
}

// TagSentence tokenizes and tags one sentence.
func TagSentence(sentence string) []TaggedToken {
	words := tokenizeWords(sentence)
	out := make([]TaggedToken, len(words))
	for i, w := range words {
		tag := TagWord(w, i == 0)
		out[i] = TaggedToken{
			Text:    w,
			Lower:   strings.ToLower(w),
			Tag:     tag,
			Capital: isCapitalized(w),
		}
	}
	return out
}

// tokenizeWords splits a sentence into word tokens, keeping internal
// hyphens and apostrophes, dropping other punctuation.
func tokenizeWords(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			cur.WriteRune(r)
		case r == '-' || r == '\'':
			if cur.Len() > 0 {
				cur.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	// Trim trailing hyphens/apostrophes left by the permissive branch.
	for i, w := range out {
		out[i] = strings.TrimRight(w, "-'")
	}
	return out
}

// SplitSentences segments text into sentences at '.', '!' and '?', with a
// small abbreviation guard ("Prof.", "Dr.", initials).
func SplitSentences(text string) []string {
	var out []string
	var cur strings.Builder
	words := 0
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			out = append(out, s)
		}
		cur.Reset()
		words = 0
	}
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		cur.WriteRune(r)
		if r == ' ' {
			words++
		}
		if r == '!' || r == '?' {
			flush()
			continue
		}
		if r == '.' {
			if isAbbreviationBefore(runes, i) {
				continue
			}
			// A period followed by a lower-case letter is not a
			// sentence boundary (e.g. "e.g. something").
			j := i + 1
			for j < len(runes) && runes[j] == ' ' {
				j++
			}
			if j < len(runes) && runes[j] >= 'a' && runes[j] <= 'z' {
				continue
			}
			flush()
		}
	}
	flush()
	return out
}

var abbreviations = wordSet("prof dr mr mrs ms st etc vs inc jr sr univ dept fig al")

// isAbbreviationBefore reports whether the period at index i terminates a
// known abbreviation or a single-letter initial.
func isAbbreviationBefore(runes []rune, i int) bool {
	j := i - 1
	for j >= 0 && ((runes[j] >= 'a' && runes[j] <= 'z') || (runes[j] >= 'A' && runes[j] <= 'Z')) {
		j--
	}
	word := strings.ToLower(string(runes[j+1 : i]))
	if len(word) == 1 {
		return true // initial such as "M. Yahya"
	}
	return abbreviations[word]
}
