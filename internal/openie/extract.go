package openie

import (
	"sort"
	"strings"
)

// span is a half-open token range [start, end).
type span struct{ start, end int }

func (s span) len() int { return s.end - s.start }

// chunkNPs finds maximal noun-phrase spans: (DET)? (ADJ|ADV)* (N|NP|NUM|PRON)+.
// Pronouns form degenerate NPs that are later rejected as arguments, since
// the pipeline does not attempt coreference resolution.
func chunkNPs(toks []TaggedToken) []span {
	var out []span
	i := 0
	for i < len(toks) {
		start := i
		if toks[i].Tag == TagDet {
			i++
		}
		for i < len(toks) && (toks[i].Tag == TagAdj || toks[i].Tag == TagAdv) {
			i++
		}
		head := i
		for i < len(toks) && isNominal(toks[i].Tag) {
			i++
		}
		if i > head {
			out = append(out, span{start, i})
		} else {
			i = start + 1
		}
	}
	return out
}

func isNominal(t Tag) bool {
	return t == TagNoun || t == TagPropNoun || t == TagNum || t == TagPron
}

// relationSpans finds relation phrases under ReVerb's syntactic constraint:
// each phrase starts at a verb (or auxiliary) and matches V | V P | V W* P,
// where W is a noun, adjective, adverb, determiner, number, or further
// verb. Following ReVerb, the longest match is taken; the span ends at the
// last verb or at the first preposition reached after intermediate words.
func relationSpans(toks []TaggedToken) []span {
	var out []span
	i := 0
	for i < len(toks) {
		if toks[i].Tag != TagVerb && toks[i].Tag != TagAux {
			i++
			continue
		}
		start := i
		lastEnd := i + 1 // a bare V is a legal relation phrase
		j := i + 1
	scan:
		for j < len(toks) {
			switch toks[j].Tag {
			case TagVerb, TagAux:
				lastEnd = j + 1
				j++
			case TagPrep:
				lastEnd = j + 1
				j++
				break scan // V W* P ends at the first preposition
			case TagNoun, TagPropNoun, TagAdj, TagAdv, TagDet, TagNum:
				j++
			default:
				break scan
			}
		}
		out = append(out, span{start, lastEnd})
		i = lastEnd
	}
	return out
}

// Extraction is one Open-IE token triple: two argument phrases and the
// relation phrase connecting them, with the extractor's confidence.
type Extraction struct {
	Arg1, Rel, Arg2 string
	Conf            float64
	Sentence        string
}

// ExtractSentence runs the ReVerb-style extractor over one sentence and
// returns all extractions found, in left-to-right order of their relation
// phrases.
func ExtractSentence(sentence string) []Extraction {
	toks := TagSentence(sentence)
	if len(toks) < 3 {
		return nil
	}
	nps := chunkNPs(toks)
	if len(nps) < 2 {
		return nil
	}
	var out []Extraction
	for _, rel := range relationSpans(toks) {
		arg1, ok1 := argBefore(nps, rel.start)
		arg2, ok2 := argAfter(nps, rel.end)
		if !ok1 || !ok2 {
			continue
		}
		arg2 = attachOfPP(toks, nps, arg2)
		e := buildExtraction(toks, arg1, rel, arg2, sentence)
		if e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// argBefore returns the nearest NP ending at or before position pos.
func argBefore(nps []span, pos int) (span, bool) {
	for i := len(nps) - 1; i >= 0; i-- {
		if nps[i].end <= pos {
			return nps[i], true
		}
	}
	return span{}, false
}

// argAfter returns the nearest NP starting at or after position pos.
func argAfter(nps []span, pos int) (span, bool) {
	for _, np := range nps {
		if np.start >= pos {
			return np, true
		}
	}
	return span{}, false
}

// attachOfPP extends an argument NP with a following "of"-complement, so
// that phrases such as 'discovery of the photoelectric effect' form one
// argument. Only "of" attaches; other prepositions start new clauses too
// often.
func attachOfPP(toks []TaggedToken, nps []span, arg span) span {
	for {
		next := arg.end
		if next >= len(toks) || toks[next].Lower != "of" {
			return arg
		}
		ext, ok := argAfter(nps, next+1)
		if !ok || ext.start != next+1 {
			return arg
		}
		arg = span{arg.start, ext.end}
	}
}

func buildExtraction(toks []TaggedToken, arg1, rel, arg2 span, sentence string) *Extraction {
	a1 := phraseText(toks, arg1)
	a2 := phraseText(toks, arg2)
	r := relText(toks, rel)
	if a1 == "" || a2 == "" || r == "" {
		return nil
	}
	// Reject pronoun-only arguments: without coreference resolution they
	// carry no information.
	if pronounOnly(toks, arg1) || pronounOnly(toks, arg2) {
		return nil
	}
	return &Extraction{
		Arg1:     a1,
		Rel:      r,
		Arg2:     a2,
		Conf:     confidence(toks, arg1, rel, arg2),
		Sentence: sentence,
	}
}

func pronounOnly(toks []TaggedToken, sp span) bool {
	for i := sp.start; i < sp.end; i++ {
		if toks[i].Tag != TagPron {
			return false
		}
	}
	return true
}

// phraseText renders an argument span, dropping a leading determiner.
func phraseText(toks []TaggedToken, sp span) string {
	start := sp.start
	if start < sp.end && toks[start].Tag == TagDet {
		start++
	}
	var parts []string
	for i := start; i < sp.end; i++ {
		parts = append(parts, toks[i].Text)
	}
	return strings.Join(parts, " ")
}

// relText renders the relation span in lower case, which normalises
// sentence-initial capitalisation of verbs.
func relText(toks []TaggedToken, sp span) string {
	var parts []string
	for i := sp.start; i < sp.end; i++ {
		parts = append(parts, toks[i].Lower)
	}
	return strings.Join(parts, " ")
}

// confidence scores an extraction in (0, 1] from surface features, in the
// spirit of ReVerb's logistic-regression confidence function. The features
// reward short, verb-anchored relations between proper-noun arguments and
// penalise long relation phrases and distant arguments.
func confidence(toks []TaggedToken, arg1, rel, arg2 span) float64 {
	c := 0.5
	if rel.len() <= 3 {
		c += 0.15
	} else if rel.len() >= 6 {
		c -= 0.15
	}
	if toks[rel.start].Tag == TagVerb || toks[rel.start].Tag == TagAux {
		c += 0.1
	}
	if toks[rel.end-1].Tag == TagPrep {
		c += 0.05 // "V W* P" patterns are high precision in ReVerb
	}
	if hasProper(toks, arg1) {
		c += 0.1
	}
	if hasProper(toks, arg2) {
		c += 0.05
	}
	if rel.start-arg1.end > 1 || arg2.start-rel.end > 1 {
		c -= 0.1 // argument separated from the relation phrase
	}
	if arg1.start == 0 {
		c += 0.05 // sentence-initial subject
	}
	if c < 0.05 {
		c = 0.05
	}
	if c > 1 {
		c = 1
	}
	return c
}

func hasProper(toks []TaggedToken, sp span) bool {
	for i := sp.start; i < sp.end; i++ {
		if toks[i].Tag == TagPropNoun {
			return true
		}
	}
	return false
}

// ExtractDocument segments a document into sentences and extracts from each.
func ExtractDocument(doc string) []Extraction {
	var out []Extraction
	for _, s := range SplitSentences(doc) {
		out = append(out, ExtractSentence(s)...)
	}
	return out
}

// LexicalFilter implements ReVerb's lexical constraint at corpus level:
// relation phrases that occur with fewer than minPairs distinct argument
// pairs are dropped, removing over-specific or garbled relations. The input
// order is preserved for surviving extractions.
func LexicalFilter(exts []Extraction, minPairs int) []Extraction {
	if minPairs <= 1 {
		return exts
	}
	pairs := make(map[string]map[[2]string]bool)
	for _, e := range exts {
		key := strings.ToLower(e.Rel)
		if pairs[key] == nil {
			pairs[key] = make(map[[2]string]bool)
		}
		pairs[key][[2]string{e.Arg1, e.Arg2}] = true
	}
	var out []Extraction
	for _, e := range exts {
		if len(pairs[strings.ToLower(e.Rel)]) >= minPairs {
			out = append(out, e)
		}
	}
	return out
}

// RelationHistogram counts extractions per relation phrase, most frequent
// first — used by the XKG statistics experiment (E4).
func RelationHistogram(exts []Extraction) []RelationCount {
	counts := make(map[string]int)
	for _, e := range exts {
		counts[strings.ToLower(e.Rel)]++
	}
	out := make([]RelationCount, 0, len(counts))
	for r, n := range counts {
		out = append(out, RelationCount{Rel: r, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Rel < out[j].Rel
	})
	return out
}

// RelationCount pairs a relation phrase with its extraction count.
type RelationCount struct {
	Rel   string
	Count int
}
