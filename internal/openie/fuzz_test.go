package openie

import "testing"

// FuzzExtractDocument checks the whole pipeline never panics on arbitrary
// input and that extractions always have non-empty fields and confidences
// in (0, 1].
func FuzzExtractDocument(f *testing.F) {
	seeds := []string{
		"Einstein won a Nobel for his discovery of the photoelectric effect.",
		"Prof. Kleiner taught Einstein. He lectured at Princeton!",
		"a. b. c. d? e! f",
		"The IAS was housed in Princeton.",
		"...!!!???",
		"word",
		"Jean-Pierre's co-author didn't write it.",
		"ALL CAPS SENTENCES ARE PEOPLE?",
		"1879 1880 1881 1882.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		for _, e := range ExtractDocument(doc) {
			if e.Arg1 == "" || e.Rel == "" || e.Arg2 == "" {
				t.Fatalf("empty extraction field: %+v", e)
			}
			if e.Conf <= 0 || e.Conf > 1 {
				t.Fatalf("confidence out of range: %+v", e)
			}
			if e.Sentence == "" {
				t.Fatalf("extraction without provenance sentence: %+v", e)
			}
		}
	})
}
