package openie

import (
	"strings"
	"testing"
)

func TestSplitSentences(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"Einstein was born in Ulm. He lectured at Princeton.", 2},
		{"Prof. Kleiner taught Einstein.", 1},
		{"Dr. Smith met Mr. Jones. They talked!", 2},
		{"What did he win? A Nobel prize.", 2},
		{"M. Yahya wrote the paper.", 1},
		{"", 0},
		{"No terminal punctuation at all", 1},
	}
	for _, tc := range tests {
		got := SplitSentences(tc.in)
		if len(got) != tc.want {
			t.Errorf("SplitSentences(%q) = %d sentences %v, want %d", tc.in, len(got), got, tc.want)
		}
	}
}

func TestSplitSentencesKeepsText(t *testing.T) {
	got := SplitSentences("Einstein was born in Ulm. He lectured at Princeton.")
	if got[0] != "Einstein was born in Ulm." {
		t.Errorf("first sentence = %q", got[0])
	}
	if got[1] != "He lectured at Princeton." {
		t.Errorf("second sentence = %q", got[1])
	}
}

func TestTagWord(t *testing.T) {
	tests := []struct {
		word  string
		first bool
		want  Tag
	}{
		{"the", false, TagDet},
		{"of", false, TagPrep},
		{"won", false, TagVerb},
		{"was", false, TagAux},
		{"Einstein", false, TagPropNoun},
		{"Einstein", true, TagPropNoun}, // unknown capitalised first word
		{"he", false, TagPron},
		{"and", false, TagConj},
		{"quickly", false, TagAdv},
		{"discovering", false, TagVerb},
		{"graduated", false, TagVerb},
		{"famous", false, TagAdj},
		{"1879", false, TagNum},
		{"physicist", false, TagNoun},
	}
	for _, tc := range tests {
		if got := TagWord(tc.word, tc.first); got != tc.want {
			t.Errorf("TagWord(%q, first=%v) = %v, want %v", tc.word, tc.first, got, tc.want)
		}
	}
}

func TestTagSentence(t *testing.T) {
	toks := TagSentence("Einstein won a Nobel prize.")
	if len(toks) != 5 {
		t.Fatalf("token count = %d: %v", len(toks), toks)
	}
	wantTags := []Tag{TagPropNoun, TagVerb, TagDet, TagPropNoun, TagNoun}
	for i, w := range wantTags {
		if toks[i].Tag != w {
			t.Errorf("tok[%d] (%q) tag = %v, want %v", i, toks[i].Text, toks[i].Tag, w)
		}
	}
}

func TestExtractSimpleSVO(t *testing.T) {
	exts := ExtractSentence("Einstein won a Nobel prize.")
	if len(exts) != 1 {
		t.Fatalf("got %d extractions: %v", len(exts), exts)
	}
	e := exts[0]
	if e.Arg1 != "Einstein" || e.Rel != "won" || e.Arg2 != "Nobel prize" {
		t.Errorf("extraction = %+v", e)
	}
	if e.Conf <= 0 || e.Conf > 1 {
		t.Errorf("confidence out of range: %v", e.Conf)
	}
}

func TestExtractVWP(t *testing.T) {
	// The motivating §2 sentence: relation 'won a Nobel for'.
	exts := ExtractSentence("Einstein won a Nobel for his discovery of the photoelectric effect.")
	if len(exts) == 0 {
		t.Fatal("no extraction from the paper's example sentence")
	}
	e := exts[0]
	if e.Arg1 != "Einstein" {
		t.Errorf("Arg1 = %q", e.Arg1)
	}
	if e.Rel != "won a nobel for" {
		t.Errorf("Rel = %q, want 'won a nobel for'", e.Rel)
	}
	if !strings.Contains(e.Arg2, "discovery") {
		t.Errorf("Arg2 = %q, want discovery phrase", e.Arg2)
	}
}

func TestExtractVP(t *testing.T) {
	exts := ExtractSentence("Einstein lectured at Princeton.")
	if len(exts) != 1 {
		t.Fatalf("got %v", exts)
	}
	if exts[0].Rel != "lectured at" || exts[0].Arg2 != "Princeton" {
		t.Errorf("extraction = %+v", exts[0])
	}
}

func TestExtractCopula(t *testing.T) {
	exts := ExtractSentence("The IAS was housed in Princeton.")
	if len(exts) != 1 {
		t.Fatalf("got %v", exts)
	}
	e := exts[0]
	if e.Arg1 != "IAS" { // leading determiner dropped
		t.Errorf("Arg1 = %q, want IAS", e.Arg1)
	}
	if e.Rel != "was housed in" {
		t.Errorf("Rel = %q", e.Rel)
	}
}

func TestExtractRejectsPronounArgs(t *testing.T) {
	exts := ExtractSentence("He won a Nobel prize.")
	for _, e := range exts {
		if e.Arg1 == "He" || e.Arg1 == "he" {
			t.Fatalf("pronoun argument not rejected: %+v", e)
		}
	}
}

func TestExtractNoVerbNoExtraction(t *testing.T) {
	if exts := ExtractSentence("The famous physicist Albert Einstein."); len(exts) != 0 {
		t.Fatalf("extraction from verbless sentence: %v", exts)
	}
	if exts := ExtractSentence("Ulm."); len(exts) != 0 {
		t.Fatalf("extraction from single-word sentence: %v", exts)
	}
}

func TestExtractDocumentMultipleSentences(t *testing.T) {
	doc := "Einstein was born in Ulm. Einstein lectured at Princeton. Kleiner taught Einstein."
	exts := ExtractDocument(doc)
	if len(exts) != 3 {
		t.Fatalf("got %d extractions, want 3: %v", len(exts), exts)
	}
	for _, e := range exts {
		if e.Sentence == "" {
			t.Error("extraction missing its provenance sentence")
		}
	}
}

func TestConfidenceOrdering(t *testing.T) {
	// A short, proper-noun-anchored extraction should outrank a long,
	// vague one.
	short := ExtractSentence("Einstein won a Nobel prize.")
	long := ExtractSentence("somebody probably quietly maybe nearly eventually worked towards results near a lab somewhere.")
	if len(short) == 0 {
		t.Fatal("short extraction missing")
	}
	if len(long) > 0 && long[0].Conf >= short[0].Conf {
		t.Errorf("vague extraction conf %v >= crisp extraction conf %v", long[0].Conf, short[0].Conf)
	}
}

func TestLexicalFilter(t *testing.T) {
	exts := []Extraction{
		{Arg1: "A", Rel: "works at", Arg2: "X"},
		{Arg1: "B", Rel: "works at", Arg2: "Y"},
		{Arg1: "C", Rel: "works at", Arg2: "Z"},
		{Arg1: "A", Rel: "garbled rel phrase", Arg2: "X"},
	}
	got := LexicalFilter(exts, 2)
	if len(got) != 3 {
		t.Fatalf("LexicalFilter kept %d, want 3", len(got))
	}
	for _, e := range got {
		if e.Rel != "works at" {
			t.Errorf("low-support relation survived: %+v", e)
		}
	}
	// minPairs <= 1 is the identity.
	if got := LexicalFilter(exts, 1); len(got) != 4 {
		t.Fatalf("LexicalFilter(1) dropped extractions")
	}
	// Duplicate pairs do not count twice.
	dup := []Extraction{
		{Arg1: "A", Rel: "met", Arg2: "B"},
		{Arg1: "A", Rel: "met", Arg2: "B"},
	}
	if got := LexicalFilter(dup, 2); len(got) != 0 {
		t.Fatalf("duplicate arg pair counted twice: %v", got)
	}
}

func TestRelationHistogram(t *testing.T) {
	exts := []Extraction{
		{Rel: "works at"}, {Rel: "works at"}, {Rel: "born in"},
	}
	got := RelationHistogram(exts)
	if len(got) != 2 {
		t.Fatalf("histogram size = %d", len(got))
	}
	if got[0].Rel != "works at" || got[0].Count != 2 {
		t.Errorf("top relation = %+v", got[0])
	}
	if got[1].Rel != "born in" || got[1].Count != 1 {
		t.Errorf("second relation = %+v", got[1])
	}
}

func TestExtractionsAreDeterministic(t *testing.T) {
	doc := "Einstein was born in Ulm. Einstein won a Nobel for his discovery of the photoelectric effect. The IAS was housed in Princeton."
	a := ExtractDocument(doc)
	b := ExtractDocument(doc)
	if len(a) != len(b) {
		t.Fatal("non-deterministic extraction count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic extraction at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTagString(t *testing.T) {
	names := map[Tag]string{
		TagNoun: "N", TagPropNoun: "NP", TagVerb: "V", TagAux: "AUX",
		TagDet: "DET", TagAdj: "ADJ", TagAdv: "ADV", TagPrep: "P",
		TagPron: "PRON", TagConj: "CONJ", TagNum: "NUM", TagPunct: "PUNCT",
		TagOther: "O",
	}
	for tag, want := range names {
		if got := tag.String(); got != want {
			t.Errorf("Tag(%d).String() = %q, want %q", tag, got, want)
		}
	}
}
