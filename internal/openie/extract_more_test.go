package openie

import (
	"strings"
	"testing"
)

// TestExtractionShapes covers the extractor on a battery of sentence
// shapes, checking the (arg1, rel, arg2) skeleton for each.
func TestExtractionShapes(t *testing.T) {
	tests := []struct {
		sentence string
		arg1     string
		rel      string
		arg2     string
	}{
		{"Alden Ackermann worked at Northford University.", "Alden Ackermann", "worked at", "Northford University"},
		{"Greta Lindt won the Nobel Prize for quantum mechanics.", "Greta Lindt", "won the nobel prize for", "quantum mechanics"},
		{"Hugo Moser studied under Karla Planck.", "Hugo Moser", "studied under", "Karla Planck"},
		{"Berta Brenner was born in Southburg.", "Berta Brenner", "was born in", "Southburg"},
		{"Karla Planck advised Hugo Moser.", "Karla Planck", "advised", "Hugo Moser"},
		{"Irma Jaeger was awarded the Fields Medal.", "Irma Jaeger", "was awarded", "Fields Medal"},
		{"Jonas Kessler published a paper on number theory.", "Jonas Kessler", "published a paper on", "number theory"},
		{"Nils Oswald collaborated with Olga Planck.", "Nils Oswald", "collaborated with", "Olga Planck"},
		{"Thea Sommer traveled to Fairmouth.", "Thea Sommer", "traveled to", "Fairmouth"},
		{"Ulrich Quandt was the advisor of Runa Dittmar.", "Ulrich Quandt", "was the advisor of", "Runa Dittmar"},
	}
	for _, tc := range tests {
		exts := ExtractSentence(tc.sentence)
		if len(exts) == 0 {
			t.Errorf("%q: no extraction", tc.sentence)
			continue
		}
		e := exts[0]
		if e.Arg1 != tc.arg1 || e.Rel != tc.rel || e.Arg2 != tc.arg2 {
			t.Errorf("%q:\n  got  (%q, %q, %q)\n  want (%q, %q, %q)",
				tc.sentence, e.Arg1, e.Rel, e.Arg2, tc.arg1, tc.rel, tc.arg2)
		}
	}
}

func TestExtractMultipleClauses(t *testing.T) {
	// Two relations in one sentence: both should surface.
	exts := ExtractSentence("Alden Ackermann worked at Northford University and studied under Berta Brenner.")
	if len(exts) < 2 {
		t.Fatalf("got %d extractions: %+v", len(exts), exts)
	}
	rels := make(map[string]bool)
	for _, e := range exts {
		rels[e.Rel] = true
	}
	if !rels["worked at"] || !rels["studied under"] {
		t.Errorf("relations = %v", rels)
	}
}

func TestAttachOfPPChains(t *testing.T) {
	exts := ExtractSentence("Einstein wrote about the theory of the structure of spacetime.")
	if len(exts) == 0 {
		t.Fatal("no extraction")
	}
	// The of-chain must be absorbed into one argument.
	if !strings.Contains(exts[0].Arg2, "of") {
		t.Errorf("Arg2 = %q, want of-chain", exts[0].Arg2)
	}
}

func TestSplitSentencesAbbreviationsDense(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"Prof. Dr. Kleiner met Mr. Moser at St. Andrews.", 1},
		{"It rained. Einstein et al. published. Nobody read it.", 3},
		{"A. B. Cerf wrote this. D. E. Knuth read it.", 2},
	}
	for _, tc := range tests {
		got := SplitSentences(tc.in)
		if len(got) != tc.want {
			t.Errorf("SplitSentences(%q) = %d (%v), want %d", tc.in, len(got), got, tc.want)
		}
	}
}

func TestConfidenceBounds(t *testing.T) {
	sentences := []string{
		"Einstein won a Nobel for his discovery of the photoelectric effect.",
		"A b c d e f g winning h.",
		"somebody somewhere visited someone sometime.",
		"The very old strangely quiet extremely large committee was probably eventually maybe possibly led by someone.",
	}
	for _, s := range sentences {
		for _, e := range ExtractSentence(s) {
			if e.Conf < 0.05 || e.Conf > 1 {
				t.Errorf("%q: confidence %v out of bounds", s, e.Conf)
			}
		}
	}
}

func TestTokenizeWordsKeepsHyphensApostrophes(t *testing.T) {
	toks := TagSentence("Jean-Pierre's co-author didn't-")
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "Jean-Pierre") {
		t.Errorf("hyphenated name broken: %v", texts)
	}
	for _, tok := range toks {
		if strings.HasSuffix(tok.Text, "-") || strings.HasSuffix(tok.Text, "'") {
			t.Errorf("trailing punctuation kept: %q", tok.Text)
		}
	}
}

func TestExtractEmptyAndWhitespace(t *testing.T) {
	for _, in := range []string{"", "   ", "\n\t", "..."} {
		if got := ExtractDocument(in); len(got) != 0 {
			t.Errorf("ExtractDocument(%q) = %v", in, got)
		}
	}
}

func TestRelationStopsAtConjunction(t *testing.T) {
	// "and" must terminate the relation phrase, not be swallowed.
	exts := ExtractSentence("Moser taught algebra and Planck taught geometry.")
	for _, e := range exts {
		if strings.Contains(e.Rel, "and") {
			t.Errorf("conjunction swallowed into relation: %+v", e)
		}
	}
}
