// Package qa translates natural-language questions into TriniT's extended
// triple-pattern queries. The paper positions TriniT as the execution
// platform for such translations (§6: "TriniT would be a suitable platform
// for the queries into which user questions are mapped. In fact, we plan
// to use it as back-end for our own work on QA").
//
// The translator is template-based: a question is tokenised and matched
// against utterance patterns with capture slots; captured entity phrases
// are resolved against the KG vocabulary (falling back to textual tokens),
// and the matched template instantiates a query. Relaxation downstream
// then absorbs residual vocabulary mismatch, exactly as for hand-written
// queries.
package qa

import (
	"fmt"
	"strings"

	"trinit/internal/store"
	"trinit/internal/text"
)

// Translation is the result of translating a question.
type Translation struct {
	// Query is the generated query in TriniT syntax.
	Query string
	// Template names the utterance pattern that matched.
	Template string
	// Slots records the captured phrases and what they resolved to.
	Slots map[string]string
}

// Translator maps questions to queries over one store's vocabulary.
type Translator struct {
	st *store.Store
	// MinResolveSim is the similarity threshold for resolving a
	// captured phrase to a KG resource; below it the phrase stays a
	// quoted token.
	MinResolveSim float64
}

// NewTranslator builds a translator; the store must be frozen.
func NewTranslator(st *store.Store) *Translator {
	return &Translator{st: st, MinResolveSim: 0.55}
}

// template is one utterance pattern. Pattern tokens are literal words;
// <name> tokens capture one or more question words (greedy, bounded by the
// next literal). The query template references captures as {name}; the
// answer variable is ?a.
type template struct {
	name    string
	pattern string
	query   string
}

// templates are ordered: the first match wins, so more specific utterances
// come first.
var templates = []template{
	{"prize-for", "what did <x> win a nobel prize for", "{x} 'won prize for' ?a"},
	{"prize-for", "what did <x> win a prize for", "{x} 'won prize for' ?a"},
	{"prize-for", "what did <x> win the <p> for", "{x} 'won prize for' ?a"},
	{"advisor", "who was the advisor of <x>", "{x} hasAdvisor ?a"},
	{"advisor", "who advised <x>", "{x} hasAdvisor ?a"},
	{"students", "who were the students of <x>", "{x} hasStudent ?a"},
	{"students", "who studied under <x>", "?a 'studied under' {x}"},
	{"born-in", "who was born in <x>", "?a bornIn {x}"},
	{"born-where", "where was <x> born", "{x} bornIn ?a"},
	{"affiliated-with", "who is affiliated with <x>", "?a affiliation {x}"},
	{"affiliated-with", "who was affiliated with <x>", "?a affiliation {x}"},
	{"works-at", "who works at <x>", "?a affiliation {x}"},
	{"works-at", "who worked at <x>", "?a affiliation {x}"},
	{"located-in", "where is <x> located", "{x} locatedIn ?a"},
	{"located-in", "where is <x>", "{x} locatedIn ?a"},
	{"member-of", "which members does <x> have", "?a member {x}"},
	{"affiliation-of", "where did <x> work", "{x} affiliation ?a"},
	{"won-what", "what did <x> win", "{x} hasWonPrize ?a"},
}

// Translate maps a question to a query. It returns an error when no
// utterance pattern matches.
func (t *Translator) Translate(question string) (Translation, error) {
	words := questionWords(question)
	if len(words) == 0 {
		return Translation{}, fmt.Errorf("qa: empty question")
	}
	for _, tpl := range templates {
		captures, ok := matchPattern(strings.Fields(tpl.pattern), words)
		if !ok {
			continue
		}
		out := Translation{
			Template: tpl.name,
			Slots:    make(map[string]string, len(captures)),
		}
		q := tpl.query
		for name, phrase := range captures {
			resolved := t.resolve(phrase)
			out.Slots[name] = resolved
			q = strings.ReplaceAll(q, "{"+name+"}", resolved)
		}
		out.Query = q
		return out, nil
	}
	return Translation{}, fmt.Errorf("qa: no utterance pattern matches %q", question)
}

// questionWords lower-cases and tokenises the question, dropping the
// trailing question mark.
func questionWords(q string) []string {
	q = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(q), "?"))
	var words []string
	for _, w := range strings.Fields(q) {
		w = strings.Trim(w, ".,!;:")
		if w != "" {
			words = append(words, w)
		}
	}
	return words
}

// matchPattern unifies a pattern against question words. Literal tokens
// compare case-insensitively; <name> slots capture one or more words up to
// the next literal token (or the end).
func matchPattern(pattern, words []string) (map[string]string, bool) {
	captures := make(map[string]string)
	wi := 0
	for pi := 0; pi < len(pattern); pi++ {
		tok := pattern[pi]
		if strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">") {
			name := tok[1 : len(tok)-1]
			// Find where the next literal resumes.
			var stop func(int) bool
			if pi+1 < len(pattern) {
				next := pattern[pi+1]
				stop = func(i int) bool { return strings.EqualFold(words[i], next) }
			} else {
				stop = func(int) bool { return false }
			}
			start := wi
			for wi < len(words) && !stop(wi) {
				wi++
			}
			if wi == start {
				return nil, false // slot must capture at least one word
			}
			captures[name] = strings.Join(words[start:wi], " ")
			continue
		}
		if wi >= len(words) || !strings.EqualFold(words[wi], tok) {
			return nil, false
		}
		wi++
	}
	if wi != len(words) {
		return nil, false
	}
	return captures, true
}

// resolve maps a captured phrase to a KG resource name when one matches
// well, otherwise to a quoted token.
func (t *Translator) resolve(phrase string) string {
	cands := t.st.MatchToken(phrase, store.MaskResource, t.MinResolveSim, 1)
	if len(cands) > 0 {
		best := t.st.Dict().Term(cands[0].Term)
		// Require decent coverage: "Einstein" → AlbertEinstein is
		// fine, but a one-word overlap with a long label is not.
		if text.Similarity(phrase, best.Text) >= t.MinResolveSim {
			return best.Text
		}
	}
	return "'" + phrase + "'"
}
