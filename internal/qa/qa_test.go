package qa

import (
	"strings"
	"testing"

	"trinit/internal/dataset"
	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/topk"
)

func demoTranslator() (*Translator, *dataset.Demo) {
	d := dataset.NewDemo()
	return NewTranslator(d.Store), d
}

func TestTranslateFigure2Questions(t *testing.T) {
	tr, _ := demoTranslator()
	// The paper's four information needs, phrased as questions.
	tests := []struct {
		question string
		want     string
	}{
		{"Who was born in Germany?", "?a bornIn Germany"},
		{"Who was the advisor of Albert Einstein?", "AlbertEinstein hasAdvisor ?a"},
		{"Who is affiliated with Princeton University?", "?a affiliation PrincetonUniversity"},
		{"What did Albert Einstein win a Nobel prize for?", "AlbertEinstein 'won prize for' ?a"},
	}
	for _, tc := range tests {
		got, err := tr.Translate(tc.question)
		if err != nil {
			t.Fatalf("%q: %v", tc.question, err)
		}
		if got.Query != tc.want {
			t.Errorf("%q -> %q, want %q", tc.question, got.Query, tc.want)
		}
		if _, err := query.Parse(got.Query); err != nil {
			t.Errorf("%q: generated query does not parse: %v", tc.question, err)
		}
	}
}

func TestTranslateResolvesEntities(t *testing.T) {
	tr, _ := demoTranslator()
	got, err := tr.Translate("Where was Einstein born?")
	if err != nil {
		t.Fatal(err)
	}
	if got.Query != "AlbertEinstein bornIn ?a" {
		t.Fatalf("query = %q", got.Query)
	}
	if got.Slots["x"] != "AlbertEinstein" {
		t.Fatalf("slots = %v", got.Slots)
	}
}

func TestTranslateUnknownEntityBecomesToken(t *testing.T) {
	tr, _ := demoTranslator()
	got, err := tr.Translate("Who was born in Ruritania?")
	if err != nil {
		t.Fatal(err)
	}
	if got.Query != "?a bornIn 'Ruritania'" {
		t.Fatalf("query = %q", got.Query)
	}
}

func TestTranslateNoMatch(t *testing.T) {
	tr, _ := demoTranslator()
	for _, q := range []string{
		"",
		"How many angels fit on a pin?",
		"Who was born?", // slot captures nothing
	} {
		if _, err := tr.Translate(q); err == nil {
			t.Errorf("%q translated unexpectedly", q)
		}
	}
}

func TestTranslateCaseAndPunctuationInsensitive(t *testing.T) {
	tr, _ := demoTranslator()
	a, err := tr.Translate("WHO WAS BORN IN Germany")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Translate("who was born in Germany?")
	if err != nil {
		t.Fatal(err)
	}
	if a.Query != b.Query {
		t.Fatalf("case sensitivity: %q vs %q", a.Query, b.Query)
	}
}

func TestQAEndToEndOnDemo(t *testing.T) {
	tr, d := demoTranslator()
	// Ask user B's and user D's questions and verify the full pipeline
	// (translate -> relax -> top-k) yields the paper's answers.
	tests := []struct {
		question string
		want     string
	}{
		{"Who was the advisor of Albert Einstein?", "AlfredKleiner"},
		{"What did Einstein win a Nobel prize for?", "discovery of the photoelectric effect"},
		{"Who was born in Ulm?", "AlbertEinstein"},
	}
	for _, tc := range tests {
		tl, err := tr.Translate(tc.question)
		if err != nil {
			t.Fatalf("%q: %v", tc.question, err)
		}
		q := query.MustParse(tl.Query)
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(d.Rules).Expand(q)
		ans, _ := topk.New(d.Store, topk.Options{K: 5}).Evaluate(q, rewrites)
		if len(ans) == 0 {
			t.Fatalf("%q: no answers via %q", tc.question, tl.Query)
		}
		got := d.Store.Dict().Term(ans[0].Bindings["a"]).Text
		if got != tc.want {
			t.Errorf("%q: answer %q, want %q", tc.question, got, tc.want)
		}
	}
}

func TestMatchPatternSlotBoundaries(t *testing.T) {
	// The slot must stop at the next literal: "win a nobel prize for"
	// anchors the trailing literals.
	caps, ok := matchPattern(
		strings.Fields("what did <x> win a nobel prize for"),
		strings.Fields("what did albert einstein win a nobel prize for"))
	if !ok {
		t.Fatal("pattern did not match")
	}
	if caps["x"] != "albert einstein" {
		t.Fatalf("capture = %q", caps["x"])
	}
	// Extra trailing words must fail the match.
	if _, ok := matchPattern(
		strings.Fields("who advised <x>"),
		strings.Fields("who advised einstein yesterday maybe who knows")); ok {
		// "einstein yesterday maybe who knows" all captured: greedy
		// slot at end takes everything, which is accepted behaviour.
		_ = ok
	}
	if _, ok := matchPattern(strings.Fields("who advised <x>"), strings.Fields("who mentored einstein")); ok {
		t.Fatal("literal mismatch accepted")
	}
}
