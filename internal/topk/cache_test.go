package topk

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trinit/internal/query"
	"trinit/internal/relax"
	"trinit/internal/score"
)

// TestCacheSingleFlight fires many executors at one shared cache for the
// same query and checks that every distinct pattern was built exactly once
// — the single-flight guarantee — while all executors got full answers.
func TestCacheSingleFlight(t *testing.T) {
	st := demoXKG()
	cache := NewCache(0)
	q := query.MustParse("SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(figure4()).Expand(q)

	baseline, _ := New(st, Options{K: 5}).Evaluate(q, rewrites)

	const goroutines = 16
	var built atomic.Int64
	var wg sync.WaitGroup
	answers := make([][]Answer, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ex := NewExecutor(st, cache, Options{K: 5})
			ans, m := ex.Evaluate(q, rewrites)
			built.Add(int64(m.PatternsMatched))
			answers[g] = ans
		}(g)
	}
	wg.Wait()

	// Distinct patterns across the rewrite space, as a serial evaluator
	// with a fresh cache would build them.
	_, serial := New(st, Options{K: 5}).Evaluate(q, rewrites)
	if got, want := int(built.Load()), serial.PatternsMatched; got != want {
		t.Errorf("concurrent builds = %d, want %d (single flight)", got, want)
	}
	for g, ans := range answers {
		if len(ans) != len(baseline) {
			t.Fatalf("goroutine %d: %d answers, want %d", g, len(ans), len(baseline))
		}
		for i := range ans {
			if ans[i].Score != baseline[i].Score {
				t.Fatalf("goroutine %d answer %d: score %v vs %v", g, i, ans[i].Score, baseline[i].Score)
			}
			for v, id := range ans[i].Bindings {
				if baseline[i].Bindings[v] != id {
					t.Fatalf("goroutine %d answer %d: binding %s differs", g, i, v)
				}
			}
		}
	}
	s := cache.Stats()
	if s.Misses != serial.PatternsMatched {
		t.Errorf("cache misses = %d, want %d", s.Misses, serial.PatternsMatched)
	}
	if s.Hits == 0 {
		t.Error("no cache hits across 16 identical queries")
	}
}

// TestCacheEviction checks the LRU size cap: the cache never exceeds its
// capacity and evicted lists are transparently rebuilt.
func TestCacheEviction(t *testing.T) {
	st := demoXKG()
	cache := NewCache(2)
	ex := NewExecutor(st, cache, Options{K: 10})

	queries := []string{
		"?x bornIn ?y",
		"?x locatedIn ?y",
		"?x affiliation ?y",
		"?x member ?y",
	}
	for round := 0; round < 2; round++ {
		for _, qs := range queries {
			q := query.MustParse(qs)
			q.Projection = q.ProjectedVars()
			ans, _ := ex.Evaluate(q, relax.NewExpander(nil).Expand(q))
			if len(ans) == 0 {
				t.Fatalf("%s: no answers", qs)
			}
		}
	}
	s := cache.Stats()
	if s.Entries > 2 {
		t.Errorf("cache holds %d entries, cap 2", s.Entries)
	}
	if s.Evictions == 0 {
		t.Error("no evictions despite 4 distinct patterns and cap 2")
	}
	if s.Misses <= 4 {
		t.Errorf("misses = %d; evicted lists should have been rebuilt", s.Misses)
	}
}

// TestEvaluatorPrivateCacheIsolated: two evaluators must not share lists.
func TestEvaluatorPrivateCacheIsolated(t *testing.T) {
	st := demoXKG()
	q := query.MustParse("?x bornIn ?y")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	a := New(st, Options{K: 5})
	b := New(st, Options{K: 5})
	_, m1 := a.Evaluate(q, rewrites)
	_, m2 := b.Evaluate(q, rewrites)
	if m1.PatternsMatched == 0 || m2.PatternsMatched == 0 {
		t.Fatalf("private caches leaked across evaluators: %+v, %+v", m1, m2)
	}
}

// TestCacheBuildPanicDoesNotPoison: a panicking build must not leave a
// never-ready entry that hangs every later lookup of the same pattern.
func TestCacheBuildPanicDoesNotPoison(t *testing.T) {
	c := NewCache(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("build panic did not propagate")
			}
		}()
		c.get("k", func() ([]score.Match, score.MatchStats) { panic("boom") })
	}()
	done := make(chan int)
	go func() {
		_, stats, built := c.get("k", func() ([]score.Match, score.MatchStats) {
			return nil, score.MatchStats{IndexScanned: 3}
		})
		if !built {
			t.Error("post-panic get did not rebuild")
		}
		done <- stats.IndexScanned
	}()
	select {
	case accesses := <-done:
		if accesses != 3 {
			t.Fatalf("rebuild accesses = %d, want 3", accesses)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cache hung after builder panic")
	}
}
