package topk

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"trinit/internal/score"
	"trinit/internal/store"
)

// DefaultCacheSize is the default match-list cache capacity (entries).
const DefaultCacheSize = 4096

// Cache is a concurrency-safe, engine-owned cache of score-sorted
// per-pattern match lists, shared by all executors running against the
// same frozen store. It is the in-memory analogue of the precomputed
// triple-pattern index lists the original system stored in ElasticSearch,
// lifted out of the evaluator so that queries can run concurrently.
//
// Builds are single-flight: when several executors need the same pattern
// simultaneously, one builds while the others wait on the entry's ready
// channel. A size cap with least-recently-used eviction bounds memory;
// entries still being built are never evicted.
type Cache struct {
	mu      sync.RWMutex
	max     int
	entries map[string]*cacheEntry

	// estMu guards the planner's selectivity-estimate side cache.
	estMu     sync.RWMutex
	estimates map[string]int

	// resMu guards the token-resolution side cache, shared between the
	// planner's selectivity estimates and the matcher's token-resolved
	// list building so each textual token is resolved through the
	// inverted index once per engine, not once per consumer.
	resMu       sync.RWMutex
	resolutions map[string][]store.ScoredTerm

	// semiMu guards the semi-join reduction side cache: the reduction is
	// a pure function of a rewrite's (immutable, cached) match lists, so
	// its result is cached per pattern-set key and shared read-only by
	// every rewrite, executor and query that joins the same patterns.
	semiMu sync.RWMutex
	semis  map[string]*semiJoinResult

	clock     atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	waits     atomic.Uint64

	plans     atomic.Uint64
	reordered atomic.Uint64
	tokenRes  atomic.Uint64
}

type cacheEntry struct {
	// ready is closed once the build finished — successfully (list and
	// stats populated) or by panicking (failed set).
	ready chan struct{}
	// list is the score-sorted match list plus its per-variable hash
	// indexes, built once here and shared read-only by every executor.
	list  *patternList
	stats score.MatchStats
	// failed marks a build that panicked; waiters rebuild themselves
	// so the original failure surfaces everywhere instead of hanging.
	failed   bool
	lastUsed atomic.Uint64
}

// NewCache returns a cache holding at most maxEntries match lists
// (DefaultCacheSize when maxEntries <= 0).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cache{
		max:         maxEntries,
		entries:     make(map[string]*cacheEntry),
		estimates:   make(map[string]int),
		resolutions: make(map[string][]store.ScoredTerm),
		semis:       make(map[string]*semiJoinResult),
	}
}

// semiJoinResult is one cached semi-join reduction (see semiJoinReduce):
// per-list survivor masks, live counts and best surviving probabilities.
// The slices are shared read-only by every consumer — including rewrite
// traces, which alias liveCount as SemiJoinKept.
type semiJoinResult struct {
	alive     [][]bool
	liveCount []int
	headProb  []float64
}

// semiJoin returns the semi-join reduction of a rewrite's match lists,
// computing it once per pattern-set key per cache generation:
// like the estimate and resolution side caches, the map is reset
// wholesale when it outgrows the cap. key is a scratch buffer (the
// rewrite's pattern keys, NUL-joined, in pattern order — list contents
// are determined by pattern text, given that executors sharing a cache
// agree on matcher options); it is copied only when the entry is
// created. SemiJoinDropped is counted into m only by the computing call;
// cache hits do not re-count, mirroring IndexScanned and
// PatternsMatched. Concurrent misses may compute the reduction twice —
// it is deterministic and each caller then meters the work it really
// did.
func (c *Cache) semiJoin(key []byte, lists []*patternList, m *Metrics) *semiJoinResult {
	c.semiMu.RLock()
	r, ok := c.semis[string(key)]
	c.semiMu.RUnlock()
	if ok {
		return r
	}
	alive, liveCount, headProb := semiJoinReduce(lists, m)
	r = &semiJoinResult{alive: alive, liveCount: liveCount, headProb: headProb}
	c.semiMu.Lock()
	if len(c.semis) >= 4*c.max {
		c.semis = make(map[string]*semiJoinResult)
	}
	c.semis[string(key)] = r
	c.semiMu.Unlock()
	return r
}

// get returns the indexed match list for the pattern key, building it
// (list, hash indexes) with build at most once across all concurrent
// callers. It reports the list-building statistics of the call itself
// (zero on a hit) and whether this caller performed the build, so
// executors can meter their own work.
func (c *Cache) get(key string, build func() ([]score.Match, score.MatchStats)) (list *patternList, stats score.MatchStats, built bool) {
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e == nil {
		c.mu.Lock()
		if e = c.entries[key]; e == nil {
			e = &cacheEntry{ready: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			// If build panics, unpublish the entry and wake the
			// waiters as failed before re-panicking — a stuck
			// never-closed ready channel would otherwise hang
			// every later lookup of this pattern.
			defer func() {
				if !e.failed {
					return
				}
				c.mu.Lock()
				if c.entries[key] == e {
					delete(c.entries, key)
				}
				c.mu.Unlock()
				close(e.ready)
			}()
			e.failed = true
			matches, stats := build()
			e.list, e.stats = newPatternList(matches), stats
			e.failed = false
			e.lastUsed.Store(c.clock.Add(1))
			close(e.ready)
			c.misses.Add(1)
			c.evict()
			return e.list, e.stats, true
		}
		c.mu.Unlock()
	}
	select {
	case <-e.ready:
	default:
		c.waits.Add(1)
		<-e.ready
	}
	if e.failed {
		// The builder panicked; rebuild here so the same failure
		// surfaces in this caller too (fail fast, never hang).
		matches, stats := build()
		return newPatternList(matches), stats, true
	}
	c.hits.Add(1)
	e.lastUsed.Store(c.clock.Add(1))
	return e.list, score.MatchStats{}, false
}

// evict removes least-recently-used ready entries once the cache exceeds
// its cap. It drops to 90% of capacity in one pass, so the O(entries)
// scan under the write lock amortises over many misses instead of
// running on every miss of a full cache. In-flight builds are skipped:
// their waiters hold no lock, and the entry becomes evictable once ready.
func (c *Cache) evict() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) <= c.max {
		return
	}
	target := c.max * 9 / 10
	if target < 1 {
		target = 1
	}
	type aged struct {
		key      string
		lastUsed uint64
	}
	ready := make([]aged, 0, len(c.entries))
	for k, e := range c.entries {
		select {
		case <-e.ready:
			ready = append(ready, aged{k, e.lastUsed.Load()})
		default: // still building
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].lastUsed < ready[j].lastUsed })
	for _, a := range ready {
		if len(c.entries) <= target {
			break
		}
		delete(c.entries, a.key)
		c.evictions.Add(1)
	}
}

// estimate returns the planner's cached selectivity estimate for the
// pattern key, computing it on first use. Estimates are tiny, so the side
// map is simply reset when it outgrows the cache cap instead of tracking
// recency.
func (c *Cache) estimate(key string, compute func() int) int {
	c.estMu.RLock()
	v, ok := c.estimates[key]
	c.estMu.RUnlock()
	if ok {
		return v
	}
	v = compute()
	c.estMu.Lock()
	if len(c.estimates) >= 4*c.max {
		c.estimates = make(map[string]int)
	}
	c.estimates[key] = v
	c.estMu.Unlock()
	return v
}

// tokenResolver returns the shared token-resolution function wired into
// every executor's matcher and into the planner: one inverted-index
// resolution per distinct (token, threshold) pair, reused by all
// consumers. The cached slices are read-only by the score.Matcher.Resolver
// contract, so concurrent readers need no copies. Like the estimate map,
// the side cache is reset wholesale when it outgrows the cap.
func (c *Cache) tokenResolver(st *store.Store) func(tok string, minSim float64) []store.ScoredTerm {
	return func(tok string, minSim float64) []store.ScoredTerm {
		key := strconv.FormatFloat(minSim, 'g', -1, 64) + "\x00" + tok
		c.resMu.RLock()
		v, ok := c.resolutions[key]
		c.resMu.RUnlock()
		if ok {
			return v
		}
		v = st.MatchToken(tok, store.MaskAny, minSim, 0)
		c.tokenRes.Add(1)
		c.resMu.Lock()
		if len(c.resolutions) >= 4*c.max {
			c.resolutions = make(map[string][]store.ScoredTerm)
		}
		c.resolutions[key] = v
		c.resMu.Unlock()
		return v
	}
}

// notePlan records one planner invocation and whether it changed the
// pattern order, for the /stats endpoint.
func (c *Cache) notePlan(reordered bool) {
	c.plans.Add(1)
	if reordered {
		c.reordered.Add(1)
	}
}

// CacheStats is a point-in-time snapshot of cache and planner activity.
type CacheStats struct {
	// Entries is the current number of cached match lists.
	Entries int
	// Hits and Misses count lookups served from / built into the cache.
	Hits, Misses int
	// Evictions counts entries dropped by the LRU size cap.
	Evictions int
	// SingleFlightWaits counts lookups that waited for a concurrent
	// build of the same pattern instead of duplicating it.
	SingleFlightWaits int
	// PlansComputed counts planner invocations; PlansReordered counts
	// those where selectivity ordering differed from query-text order.
	PlansComputed, PlansReordered int
	// TokenResolutions counts distinct token resolutions built into the
	// shared side cache (planner estimates and matcher list builds
	// sharing a resolution count once).
	TokenResolutions int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{
		Entries:           n,
		Hits:              int(c.hits.Load()),
		Misses:            int(c.misses.Load()),
		Evictions:         int(c.evictions.Load()),
		SingleFlightWaits: int(c.waits.Load()),
		PlansComputed:     int(c.plans.Load()),
		PlansReordered:    int(c.reordered.Load()),
		TokenResolutions:  int(c.tokenRes.Load()),
	}
}
