package topk

import (
	"context"
	"errors"
	"math"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

func TestMaxOverDerivationsPicksHighestWeight(t *testing.T) {
	st := store.New(nil, nil)
	st.AddFact(rdf.Resource("A"), rdf.Token("worked at"), rdf.Resource("X"), rdf.SourceXKG, 1, rdf.NoProv)
	st.Freeze()
	// Two rules reach the same XKG fact with different weights; the
	// answer must carry the higher one.
	rules := []*relax.Rule{
		relax.MustParseRule("low", "?x affiliation ?y => ?x 'worked at' ?y", 0.3, "manual"),
		relax.MustParseRule("high", "?x affiliation ?y => ?x 'worked at' ?y", 0.9, "manual"),
	}
	q := query.MustParse("A affiliation ?y")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(rules).Expand(q)
	ans, _ := New(st, Options{K: 5}).Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d", len(ans))
	}
	if math.Abs(ans[0].Score-0.9) > 1e-12 {
		t.Fatalf("score = %v, want max-over-derivations 0.9", ans[0].Score)
	}
	if ans[0].Derivation.Rewrite.Applied[0].ID != "high" {
		t.Fatalf("winning derivation = %v", ans[0].Derivation.Rewrite.Applied[0].ID)
	}
}

func TestVariablePredicateJoin(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("A"), rdf.Resource("p"), rdf.Resource("B"))
	st.AddKG(rdf.Resource("A"), rdf.Resource("q"), rdf.Resource("B"))
	st.AddKG(rdf.Resource("A"), rdf.Resource("p"), rdf.Resource("C"))
	st.Freeze()
	// ?r ranges over predicates connecting A and B.
	q := query.MustParse("SELECT ?r WHERE { A ?r B }")
	rewrites := relax.NewExpander(nil).Expand(q)
	ans, _ := New(st, Options{K: 10}).Evaluate(q, rewrites)
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want p and q", len(ans))
	}
}

func TestRunConfigKOverrideKeepsCache(t *testing.T) {
	st := demoXKG()
	ev := New(st, Options{K: 1})
	q := query.MustParse("?x ?p ?y")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	first, m1 := ev.Evaluate(q, rewrites)
	if len(first) != 1 {
		t.Fatalf("k=1 answers = %d", len(first))
	}
	if m1.PatternsMatched == 0 {
		t.Fatal("cold evaluation did not match patterns")
	}
	second, m2, err := ev.Run(context.Background(), q, rewrites, RunConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 5 {
		t.Fatalf("k=5 answers = %d", len(second))
	}
	if m2.PatternsMatched != 0 {
		t.Fatalf("warm evaluation rebuilt %d pattern lists", m2.PatternsMatched)
	}
	if m2.IndexScanned != 0 {
		t.Fatalf("warm evaluation scanned %d postings", m2.IndexScanned)
	}
	// The override scopes to the call: the executor's default K is
	// untouched for the next borrower.
	third, _ := ev.Evaluate(q, rewrites)
	if len(third) != 1 {
		t.Fatalf("after K override, default evaluation returned %d answers, want 1", len(third))
	}
}

func TestRunNoTraceSkipsTraceEntirely(t *testing.T) {
	st := demoXKG()
	ev := New(st, Options{K: 5})
	q := query.MustParse("?x ?p ?y")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	traced, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.TraceLen() == 0 {
		t.Fatal("default run collected no trace")
	}
	bare, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := ev.TraceLen(); n != 0 {
		t.Fatalf("NoTrace run left %d trace entries", n)
	}
	if len(bare) != len(traced) {
		t.Fatalf("NoTrace changed the answers: %d vs %d", len(bare), len(traced))
	}
	for i := range bare {
		if bare[i].Score != traced[i].Score {
			t.Fatalf("answer %d: score %v vs %v", i, bare[i].Score, traced[i].Score)
		}
	}
}

func TestRunCanceledContext(t *testing.T) {
	st := demoXKG()
	ev := New(st, Options{K: 5})
	q := query.MustParse("?x ?p ?y")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	answers, _, err := ev.Run(ctx, q, rewrites, RunConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(answers) != 0 {
		t.Fatalf("pre-cancelled run produced %d answers", len(answers))
	}
	for _, tr := range ev.LastTrace() {
		if tr.Status != "canceled" {
			t.Fatalf("trace status = %q, want canceled", tr.Status)
		}
	}
	// The same executor still works for the next caller.
	answers, _, err = ev.Run(context.Background(), q, rewrites, RunConfig{})
	if err != nil || len(answers) == 0 {
		t.Fatalf("post-cancel reuse: answers=%d err=%v", len(answers), err)
	}
}

func TestRunEmitHookStreamsTopKAdmissions(t *testing.T) {
	st := demoXKG()
	ev := New(st, Options{K: 3})
	q := query.MustParse("?x ?p ?y")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	var emitted []Answer
	answers, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{
		Emit: func(a Answer) { emitted = append(emitted, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("answers = %d", len(answers))
	}
	if len(emitted) < len(answers) {
		t.Fatalf("emitted %d events for %d final answers", len(emitted), len(answers))
	}
	// Every final answer scoring strictly above the k-th score was
	// announced provisionally at some point (answers tying the k-th
	// score may enter the final ranking through the key tie-break
	// without a heap admission — documented in RunConfig.Emit).
	seen := make(map[string]bool, len(emitted))
	for _, a := range emitted {
		seen[string(appendAnswerKey(nil, a.Bindings, q.Projection))] = true
	}
	kth := answers[len(answers)-1].Score
	for _, a := range answers {
		if a.Score > kth && !seen[string(appendAnswerKey(nil, a.Bindings, q.Projection))] {
			t.Fatalf("final answer %v (score %v > kth %v) never emitted", a.Bindings, a.Score, kth)
		}
	}
}

func TestTraceRecordsRewriteLifecycle(t *testing.T) {
	st := demoXKG()
	ev := New(st, Options{K: 5})
	q := query.MustParse("AlbertEinstein hasAdvisor ?x")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(figure4()).Expand(q)
	ans, _ := ev.Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d", len(ans))
	}
	trace := ev.LastTrace()
	if len(trace) != len(rewrites) {
		t.Fatalf("trace entries = %d, rewrites = %d", len(trace), len(rewrites))
	}
	// Original query: no hasAdvisor facts exist.
	if trace[0].Status != "no matches" {
		t.Errorf("original status = %q", trace[0].Status)
	}
	// The inversion rewrite produced the answer.
	found := false
	for _, tr := range trace {
		if tr.Status == "evaluated" && tr.Answers == 1 {
			found = true
			if len(tr.Rules) != 1 || tr.Rules[0] != "r2" {
				t.Errorf("winning trace rules = %v", tr.Rules)
			}
		}
	}
	if !found {
		t.Fatalf("no trace entry with an answer: %+v", trace)
	}
	// LastTrace must return a copy.
	trace[0].Status = "mutated"
	if ev.LastTrace()[0].Status == "mutated" {
		t.Fatal("LastTrace returned shared state")
	}
}

func TestTraceMarksSkippedRewrites(t *testing.T) {
	st := demoXKG()
	ev := New(st, Options{K: 1, Mode: Incremental})
	rules := []*relax.Rule{
		relax.MustParseRule("weak", "?x bornIn ?y => ?x 'lectured at' ?y", 0.1, "manual"),
	}
	q := query.MustParse("AlbertEinstein bornIn ?y LIMIT 1")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(rules).Expand(q)
	ev.Evaluate(q, rewrites)
	skipped := 0
	for _, tr := range ev.LastTrace() {
		if tr.Status == "skipped (weight bound)" {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no rewrites marked skipped")
	}
}

func TestMissingProjectionTraced(t *testing.T) {
	st := demoXKG()
	// Rule drops ?y entirely; the rewrite cannot bind the projection.
	rules := []*relax.Rule{
		relax.MustParseRule("drop", "?x affiliation ?y ; ?x bornIn ?z => ?x bornIn ?z", 0.9, "manual"),
	}
	q := query.MustParse("SELECT ?y WHERE { AlbertEinstein affiliation ?y . AlbertEinstein bornIn ?z }")
	rewrites := relax.NewExpander(rules).Expand(q)
	// relax.Apply already rejects projection-losing rewrites when the
	// projection is explicit, so all rewrites here remain valid.
	ev := New(st, Options{K: 5})
	ans, _ := ev.Evaluate(q, rewrites)
	if len(ans) == 0 {
		t.Fatal("no answers")
	}
	for _, tr := range ev.LastTrace() {
		if tr.Status == "missing projection" {
			t.Fatalf("projection-losing rewrite reached the evaluator: %+v", tr)
		}
	}
}

func TestUniformConfAblation(t *testing.T) {
	st := store.New(nil, nil)
	st.AddFact(rdf.Resource("A"), rdf.Token("worked at"), rdf.Resource("X"), rdf.SourceXKG, 0.9, rdf.NoProv)
	st.AddFact(rdf.Resource("B"), rdf.Token("worked at"), rdf.Resource("X"), rdf.SourceXKG, 0.3, rdf.NoProv)
	st.Freeze()
	q := query.MustParse("?x 'worked at' X")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)

	full, _ := New(st, Options{K: 5}).Evaluate(q, rewrites)
	if len(full) != 2 || full[0].Score == full[1].Score {
		t.Fatalf("full scoring should separate by confidence: %+v", full)
	}
	uni, _ := New(st, Options{K: 5, UniformConf: true}).Evaluate(q, rewrites)
	if len(uni) != 2 || uni[0].Score != uni[1].Score {
		t.Fatalf("uniform-conf scoring should tie: %+v", uni)
	}
}

func TestNoNormalizeAblation(t *testing.T) {
	st := demoXKG()
	q := query.MustParse("?x bornIn ?y")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	norm, _ := New(st, Options{K: 5}).Evaluate(q, rewrites)
	raw, _ := New(st, Options{K: 5, NoNormalize: true}).Evaluate(q, rewrites)
	if len(norm) != 1 || len(raw) != 1 {
		t.Fatalf("answers: %d, %d", len(norm), len(raw))
	}
	// One bornIn fact: normalised prob 1; unnormalised raw conf 1. Equal
	// here — extend with a second fact to see the difference.
	st2 := demoXKG2()
	norm2, _ := New(st2, Options{K: 5}).Evaluate(q, rewrites)
	raw2, _ := New(st2, Options{K: 5, NoNormalize: true}).Evaluate(q, rewrites)
	if norm2[0].Score >= raw2[0].Score {
		t.Fatalf("normalised score %v should be below raw %v with 2 matches", norm2[0].Score, raw2[0].Score)
	}
}

// demoXKG2 adds a second bornIn fact so normalisation halves probabilities.
func demoXKG2() *store.Store {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("MaxBorn"), rdf.Resource("bornIn"), rdf.Resource("Breslau"))
	st.Freeze()
	return st
}

// TestTypedCompositionAnswersUserA runs the automatically mined Figure 4
// rule 1 (typed composition) end to end on user A's query.
func TestTypedCompositionAnswersUserA(t *testing.T) {
	st := store.New(nil, nil)
	add := func(s, p, o string) { st.AddKG(rdf.Resource(s), rdf.Resource(p), rdf.Resource(o)) }
	add("AlbertEinstein", "bornIn", "Ulm")
	add("MaxBorn", "bornIn", "Breslau")
	add("Ulm", "locatedIn", "Germany")
	add("Breslau", "locatedIn", "Germany")
	add("Ulm", "type", "city")
	add("Breslau", "type", "city")
	add("Germany", "type", "country")
	st.Freeze()
	rules := relax.MineTypedCompositions(st, relax.DefaultTypedCompositionOptions())
	if len(rules) == 0 {
		t.Fatal("no typed composition rules mined")
	}
	q := query.MustParse("SELECT ?x WHERE { ?x bornIn Germany . Germany type country }")
	rewrites := relax.NewExpander(rules).Expand(q)
	ans, _ := New(st, Options{K: 5}).Evaluate(q, rewrites)
	if len(ans) != 2 {
		t.Fatalf("answers = %d, want Einstein and Born", len(ans))
	}
}

func TestFilterConstrainsAnswers(t *testing.T) {
	st := store.New(nil, nil)
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Resource("bornOn"), rdf.Literal("1879-03-14"), rdf.SourceKG, 1, rdf.NoProv)
	st.AddFact(rdf.Resource("RichardFeynman"), rdf.Resource("bornOn"), rdf.Literal("1918-05-11"), rdf.SourceKG, 1, rdf.NoProv)
	st.Freeze()
	q := query.MustParse("SELECT ?x WHERE { ?x bornOn ?d . FILTER(?d < '1900-01-01') }")
	rewrites := relax.NewExpander(nil).Expand(q)
	ans, _ := New(st, Options{K: 10}).Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want 1", len(ans))
	}
	if st.Dict().Term(ans[0].Bindings["x"]).Text != "AlbertEinstein" {
		t.Fatalf("answer = %v", ans[0])
	}
}

func TestFilterSurvivesRelaxation(t *testing.T) {
	st := store.New(nil, nil)
	st.AddFact(rdf.Resource("A"), rdf.Resource("bornOn"), rdf.Literal("1850-01-01"), rdf.SourceKG, 1, rdf.NoProv)
	st.AddFact(rdf.Resource("B"), rdf.Resource("bornOn"), rdf.Literal("1950-01-01"), rdf.SourceKG, 1, rdf.NoProv)
	st.AddKG(rdf.Resource("A"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("B"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("Ulm"), rdf.Resource("locatedIn"), rdf.Resource("Germany"))
	st.Freeze()
	rules := []*relax.Rule{
		relax.MustParseRule("comp", "?x bornIn ?y => ?x bornIn ?z ; ?z locatedIn ?y", 1.0, "manual"),
	}
	// Relaxed query must still respect the date filter.
	q := query.MustParse("SELECT ?x WHERE { ?x bornIn Germany . ?x bornOn ?d . FILTER(?d < '1900') }")
	rewrites := relax.NewExpander(rules).Expand(q)
	ans, _ := New(st, Options{K: 10}).Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want only pre-1900 A", len(ans))
	}
	if st.Dict().Term(ans[0].Bindings["x"]).Text != "A" {
		t.Fatalf("answer = %v", ans[0])
	}
}

func TestFilterVarVsVar(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("A"), rdf.Resource("knows"), rdf.Resource("B"))
	st.AddKG(rdf.Resource("A"), rdf.Resource("knows"), rdf.Resource("A"))
	st.Freeze()
	q := query.MustParse("?x knows ?y . FILTER(?x != ?y)")
	rewrites := relax.NewExpander(nil).Expand(q)
	ans, _ := New(st, Options{K: 10}).Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want self-loop filtered", len(ans))
	}
}
