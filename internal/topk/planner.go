package topk

// This file implements statistics-free greedy join planning: patterns of
// a rewrite are ordered by ascending estimated selectivity before any
// match list is built, so that (a) an empty pattern aborts the rewrite
// before the expensive lists of its siblings are materialised, and (b)
// join enumeration starts from the smallest lists, shrinking the branch
// space. Estimates come straight from the store's permutation indexes (a
// binary-search range count for bound slots) and from the inverted token
// index (for textual token slots); no maintained statistics are needed —
// the index is the statistic.

import (
	"sort"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

// maxTokenCandidates bounds the per-token-slot refinement work: when a
// textual token resolves to more candidate terms than this, the planner
// falls back to the unrefined index-range count.
const maxTokenCandidates = 24

// estimateSelectivity estimates the match-list length of one pattern.
// Bound resource/literal slots contribute an exact permutation-index range
// count; token slots are refined by summing range counts over the token's
// inverted-index candidates. 0 means the pattern provably has no matches.
// resolve supplies the candidate terms of a token slot — the same shared
// resolution the matcher consumes, so planning never re-runs an
// inverted-index lookup the list build will need anyway (nil falls back to
// direct store.MatchToken calls).
func estimateSelectivity(st *store.Store, p query.Pattern, minTokenSim float64, resolve func(tok string, minSim float64) []store.ScoredTerm) int {
	if resolve == nil {
		resolve = func(tok string, minSim float64) []store.ScoredTerm {
			return st.MatchToken(tok, store.MaskAny, minSim, 0)
		}
	}
	var ids [3]rdf.TermID
	var toks [3]string
	slots := [3]query.Slot{p.S, p.P, p.O}
	for i, sl := range slots {
		switch {
		case sl.IsVar():
			// wildcard
		case sl.Term.Kind == rdf.KindToken:
			toks[i] = sl.Term.Text
		default:
			id, ok := st.Dict().Lookup(sl.Term)
			if !ok {
				return 0
			}
			ids[i] = id
		}
	}
	est := st.Count(ids[0], ids[1], ids[2])
	if est == 0 {
		return 0
	}
	for i, tok := range toks {
		if tok == "" {
			continue
		}
		cands := resolve(tok, minTokenSim)
		if len(cands) == 0 {
			return 0
		}
		if len(cands) > maxTokenCandidates {
			continue
		}
		sum := 0
		for _, c := range cands {
			probe := ids
			probe[i] = c.Term
			sum += st.Count(probe[0], probe[1], probe[2])
		}
		if sum < est {
			est = sum
		}
	}
	return est
}

// plan orders the pattern indices of one rewrite by ascending estimated
// selectivity (stable, so ties keep query-text order) and reports whether
// the order differs from query-text order.
func (ex *Executor) plan(pats []query.Pattern) (order []int, reordered bool) {
	return ex.planWith(pats, query.Pattern.String)
}

// planWith is plan with the pattern cache key supplied by the caller —
// runs pass their memoised patKey so planning a rewrite does not re-render
// pattern strings the evaluation already rendered.
func (ex *Executor) planWith(pats []query.Pattern, keyOf func(query.Pattern) string) (order []int, reordered bool) {
	order = make([]int, len(pats))
	for i := range order {
		order[i] = i
	}
	if len(pats) <= 1 {
		return order, false
	}
	est := make([]int, len(pats))
	for i, p := range pats {
		pat := p
		est[i] = ex.cache.estimate("est\x00"+keyOf(pat), func() int {
			return estimateSelectivity(ex.st, pat, ex.matcher.MinTokenSim, ex.matcher.Resolver)
		})
	}
	sort.SliceStable(order, func(a, b int) bool { return est[order[a]] < est[order[b]] })
	for i, pi := range order {
		if pi != i {
			reordered = true
			break
		}
	}
	ex.cache.notePlan(reordered)
	return order, reordered
}
