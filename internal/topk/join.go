package topk

// This file implements the hash-indexed join kernel. Three pieces replace
// the full-list scans of the original backtracking join:
//
//   - patternList: a cached match list plus per-variable hash indexes
//     (buckets keyed by bound TermID), built once when the list enters the
//     shared cache and reused by every rewrite, executor and query;
//   - semiJoinReduce: a Yannakakis-style reduction pass that prunes each
//     list to entries with at least one join partner in every neighbouring
//     pattern before enumeration starts;
//   - joinOrder: a connectivity-aware refinement of the planner's
//     selectivity order, so the join prefix always shares a variable with
//     the next pattern when the pattern graph allows it.
//
// All three preserve answers exactly: buckets enumerate precisely the
// entries that pass the binding-consistency check for the probed variable,
// in list order (descending probability), so the score-bound pruning
// semantics of the incremental algorithm are unchanged; semi-join drops
// only entries that can never take part in a complete consistent binding;
// and pattern order never affects which complete bindings exist.

import (
	"trinit/internal/rdf"
	"trinit/internal/score"
)

// patternList is a score-sorted match list plus per-variable hash indexes,
// stored in the shared cache next to the list itself.
//
// buckets[vi][t] holds the positions — ascending, which is descending
// emission probability — of the matches binding variable vars[vi] to term
// t. Probing a bucket therefore visits exactly the entries a full scan
// would have accepted for that variable, in the same relative order.
type patternList struct {
	matches []score.Match
	vars    []string
	buckets []map[rdf.TermID][]int32
}

// newPatternList indexes a match list. The per-variable layout is uniform
// across a list (see score.Match.Bindings), so variable positions are
// resolved once, on the first entry.
func newPatternList(matches []score.Match) *patternList {
	pl := &patternList{matches: matches}
	if len(matches) == 0 {
		return pl
	}
	first := matches[0].Bindings
	pl.vars = make([]string, len(first))
	pl.buckets = make([]map[rdf.TermID][]int32, len(first))
	for vi, b := range first {
		pl.vars[vi] = b.Var
		idx := make(map[rdf.TermID][]int32)
		for i, m := range matches {
			t := m.Bindings[vi].Term
			idx[t] = append(idx[t], int32(i))
		}
		pl.buckets[vi] = idx
	}
	return pl
}

// varIndex returns the position of v in the list's uniform binding layout,
// or -1 when the pattern does not bind v.
func (pl *patternList) varIndex(v string) int {
	for vi, name := range pl.vars {
		if name == v {
			return vi
		}
	}
	return -1
}

// sharedVars returns the variable names two pattern lists have in common.
func sharedVars(a, b *patternList) []string {
	var out []string
	for _, v := range a.vars {
		if b.varIndex(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// semiJoinMaxList bounds the size of lists the reduction pass will filter.
// Longer lists are left unfiltered — the hash kernel never scans them (a
// connected join order probes them through a bucket), so filtering would
// cost more than it saves — but they still act as filter *sources* for
// their neighbours through O(1) bucket-membership checks.
const semiJoinMaxList = 4096

// semiJoinReduce prunes every match list to the entries that have at least
// one join partner in each neighbouring pattern (a neighbour is a pattern
// sharing a variable). It runs a backward then a forward sweep over the
// patterns: on acyclic pattern graphs — join trees — the two sweeps
// achieve the full Yannakakis reduction with respect to per-variable
// signatures; on cyclic graphs they remain a sound partial filter.
//
// Dropping is sound because a dropped entry binds some shared variable to
// a term that no surviving entry of a neighbouring pattern binds, so no
// complete consistent binding can ever include it. alive[i] is nil when
// every entry of list i survived (or the list was too long to filter),
// otherwise alive[i][p] reports whether match p survived; liveCount[i] and
// headProb[i] are the surviving entry count and the highest surviving
// probability (0 when the list was emptied). Dropped entries are counted
// into m.SemiJoinDropped.
func semiJoinReduce(lists []*patternList, m *Metrics) (alive [][]bool, liveCount []int, headProb []float64) {
	n := len(lists)
	alive = make([][]bool, n) // nil = all entries live
	liveCount = make([]int, n)
	for i, pl := range lists {
		liveCount[i] = len(pl.matches)
	}
	isLive := func(si, p int) bool { return alive[si] == nil || alive[si][p] }

	// filter drops entries of list ti without a partner among the live
	// entries of list si, per shared variable. Both sides are bucketed by
	// term, so partner existence is decided once per *distinct* term of
	// ti's own bucket index — one lookup in si's index, short-circuiting
	// on the first live entry — and a partnerless term kills its whole
	// bucket of entries at once. (The per-entry formulation this replaces
	// re-ran the lookup for every entry; on skewed lists that made the
	// reduction pass the dominant cost of the whole join kernel.) si's
	// liveness never changes during one filter call, so the verdict per
	// term is order-independent and the result deterministic despite map
	// iteration order.
	filter := func(ti, si int) {
		if liveCount[ti] == 0 || len(lists[ti].matches) > semiJoinMaxList {
			return
		}
		for _, v := range sharedVars(lists[ti], lists[si]) {
			tvi := lists[ti].varIndex(v)
			svi := lists[si].varIndex(v)
			src := lists[si].buckets[svi]
			for t, entries := range lists[ti].buckets[tvi] {
				partner := false
				for _, bp := range src[t] {
					if isLive(si, int(bp)) {
						partner = true
						break
					}
				}
				if partner {
					continue
				}
				for _, p := range entries {
					if !isLive(ti, int(p)) {
						continue
					}
					if alive[ti] == nil {
						alive[ti] = make([]bool, len(lists[ti].matches))
						for q := range alive[ti] {
							alive[ti][q] = true
						}
					}
					alive[ti][p] = false
					liveCount[ti]--
					m.SemiJoinDropped++
				}
			}
		}
	}

	// Backward sweep (each list filtered by all later ones), then forward
	// (each filtered by all earlier, now-reduced ones).
	for i := n - 2; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			filter(i, j)
		}
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			filter(i, j)
		}
	}

	headProb = make([]float64, n)
	for i := range lists {
		if alive[i] == nil {
			if len(lists[i].matches) > 0 {
				headProb[i] = lists[i].matches[0].Prob
			}
			continue
		}
		for p := range alive[i] {
			if alive[i][p] {
				headProb[i] = lists[i].matches[p].Prob
				break
			}
		}
	}
	return alive, liveCount, headProb
}

// The connectivity-aware join-order refinement lives on varPlan (see
// slots.go): the shared-variable adjacency it consults is a pure function
// of the pattern set, resolved to slot indexes once per plan and reused
// across every rewrite with that variable shape, instead of being
// re-derived — with per-call map and Vars() allocations — per rewrite.
