package topk

// This file implements the parallel rewrite scheduler: Run with an
// effective parallelism above 1 evaluates a query's rewrites on a pool
// of workers instead of one at a time, so a single wide-rewrite query
// can use every core instead of one. The scheduling layer is the only
// thing that changes — the planner, the match-list cache and the
// semi-join/hash-join kernel underneath run exactly the serial code.
//
// Three properties make this safe and byte-identical to the serial
// schedule:
//
//   - the k-th-score threshold is published atomically (state.bits) and
//     read lock-free on the join hot path. A worker's snapshot can only
//     be *lower* than the true bound (the bound only rises), and a
//     too-low bound prunes less, never more — stale reads cost extra
//     work but can never drop an answer;
//   - answer writes go through a short critical section (state.mu), and
//     max-over-derivations scoring is order-independent; exact score
//     ties between derivations of one answer are broken by canonical
//     derivation identity (rewrite index, enumeration sequence), which
//     is precisely the serial first-wins order;
//   - the weight-bound rewrite skip runs at queue pop time against the
//     current shared bound, so a worker arriving late still skips every
//     provably-dominated rewrite. Rewrites are handed out in canonical
//     descending-weight order, and traces are emitted in that order
//     regardless of completion order.
//
// Match-list and hash-index builds already coalesce through the cache's
// single-flight protocol, so concurrent workers share one build instead
// of duplicating it.

import (
	"context"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"trinit/internal/faultinject"
	"trinit/internal/query"
	"trinit/internal/relax"
)

// AutoParallelism, used as an Options.Parallelism or
// RunConfig.Parallelism value, selects one scheduler worker per logical
// CPU (runtime.GOMAXPROCS).
const AutoParallelism = -1

// resolveParallelism maps a Parallelism knob to a worker count: 0 and 1
// mean the serial schedule, negative values one worker per logical CPU.
func resolveParallelism(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p == 0 {
		return 1
	}
	return p
}

// EffectiveParallelism maps a Parallelism knob to the worker count it
// selects (0 and 1 → 1, negative → one per logical CPU). Exported for
// admission control, which weighs a query by the evaluation goroutines
// it may occupy.
func EffectiveParallelism(p int) int { return resolveParallelism(p) }

// merge adds o's per-worker counters into m. The rewrite-space counters
// (RewritesTotal/Evaluated/Skipped) are owned by the scheduler's queue,
// not by workers, and are not merged.
func (m *Metrics) merge(o *Metrics) {
	m.SortedAccesses += o.SortedAccesses
	m.IndexScanned += o.IndexScanned
	m.PatternsMatched += o.PatternsMatched
	m.JoinBranches += o.JoinBranches
	m.PrunedBranches += o.PrunedBranches
	m.HashProbes += o.HashProbes
	m.SemiJoinDropped += o.SemiJoinDropped
	m.TokenResolutions += o.TokenResolutions
	m.ScanFallbacks += o.ScanFallbacks
	m.BlocksEmitted += o.BlocksEmitted
	m.BlockRowsFiltered += o.BlockRowsFiltered
	m.CrossShardPrunes += o.CrossShardPrunes
}

// runParallel is Run's parallel scheduler: workers pull rewrite indices
// in descending-weight order from a shared queue and evaluate them
// concurrently against one concurrent top-k state. Cancellation is
// polled by every worker exactly as in the serial schedule; a cancelled
// run drains its workers before returning the answers found so far.
func (ev *Executor) runParallel(ctx context.Context, q *query.Query, rewrites []relax.Rewrite, opts Options, cfg RunConfig, workers int) ([]Answer, Metrics, error) {
	proj := q.ProjectedVars()
	k := opts.K
	if q.Limit > 0 && q.Limit < k {
		k = q.Limit
	}
	st := newState(k, true)
	st.remote = cfg.Bound

	// Workers poll an internal context layered over the caller's: a
	// recovered worker panic cancels it, so siblings drain at their next
	// poll instead of finishing a now-pointless query.
	base := ctx
	if base == nil {
		base = context.Background()
	}
	ictx, icancel := context.WithCancel(base)
	defer icancel()
	done := ictx.Done()

	// The cost budget is one shared account: all workers charge it, and
	// the first to observe exhaustion stops the queue for everyone.
	var bt *budgetTracker
	switch {
	case cfg.BudgetShare != nil:
		bt = &cfg.BudgetShare.budgetTracker
	case cfg.Budget.limited():
		bt = newBudgetTracker(cfg.Budget)
	}

	// The emit hook is shared by every worker; serialise it so stream
	// consumers (SSE writers, REPL output) never observe concurrent
	// calls. Two admissions may still arrive in either order —
	// provisional events are best-effort by contract.
	emit := cfg.Emit
	if emit != nil {
		var emitMu sync.Mutex
		inner := cfg.Emit
		emit = func(a Answer) {
			emitMu.Lock()
			defer emitMu.Unlock()
			inner(a)
		}
	}

	// traces[ri] is owned by whichever worker pops rewrite ri, so the
	// trace assembles in canonical rewrite order no matter in which
	// order workers finish.
	var traces []RewriteTrace
	if !cfg.NoTrace {
		traces = make([]RewriteTrace, len(rewrites))
	}

	// The rewrite queue: pop hands out indices in canonical order and
	// applies the weight-bound skip against the *current* shared
	// threshold. Weights descend, so one dominated rewrite proves the
	// whole tail dominated; the bound is strict, as in the serial
	// schedule, so rewrites able to tie the k-th score still run.
	var (
		qmu        sync.Mutex
		next       int
		skipFrom   = len(rewrites)
		skipRemote bool
	)
	pop := func() (int, bool) {
		qmu.Lock()
		defer qmu.Unlock()
		if next >= len(rewrites) {
			return 0, false
		}
		if bt != nil && bt.exhausted.Load() {
			// Budget spent: stop handing out rewrites, but leave next in
			// place — it records how many were actually evaluated.
			return 0, false
		}
		if opts.Mode == Incremental && rewrites[next].Weight < st.threshold() {
			skipFrom = next
			skipRemote = st.crossShard(rewrites[next].Weight)
			next = len(rewrites)
			return 0, false
		}
		ri := next
		next++
		return ri, true
	}

	var (
		m         Metrics
		mmu       sync.Mutex
		sawCancel atomic.Bool
		panicRec  atomic.Pointer[PanicError]
		wg        sync.WaitGroup
	)
	m.RewritesTotal = len(rewrites)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			// Each worker owns a private run — per-worker scratch
			// buffers and cancellation gate — over the shared
			// executor, cache and top-k state. Metrics accumulate
			// locally and merge once at the end.
			r := &run{Executor: ev, opts: opts, done: done, emit: emit, noTrace: cfg.NoTrace}
			r.budget = bt
			if s, ok := ev.scratchPool.Get().(*evalScratch); ok {
				r.sc = *s
			}
			var local Metrics
			r.m = &local
			var scratch RewriteTrace
			var curRT *RewriteTrace
			defer func() {
				// The panic boundary of one worker: capture the first
				// panic of the run, cancel the internal context so
				// siblings drain at their next poll, and mark the
				// in-flight rewrite's trace. The scratch may be poisoned
				// mid-join (partially reset blocks, dangling env), so it
				// is NOT returned to the pool on this path; a clean exit
				// pools it as before.
				if rec := recover(); rec != nil {
					pe := &PanicError{Value: rec, Stack: debug.Stack()}
					panicRec.CompareAndSwap(nil, pe)
					icancel()
					if curRT != nil && curRT != &scratch {
						curRT.Status = "panic"
						curRT.Detail = pe.detail()
					}
				} else {
					s := r.sc
					s.env = joinEnv{}
					ev.scratchPool.Put(&s)
				}
				if r.canceled {
					sawCancel.Store(true)
				}
				mmu.Lock()
				m.merge(&local)
				mmu.Unlock()
				wg.Done()
			}()
			if faultinject.Enabled() {
				faultinject.Fire(faultinject.SiteWorkerStart, strconv.Itoa(w))
			}
			for {
				if r.pollCancel() {
					break
				}
				ri, ok := pop()
				if !ok {
					break
				}
				rt := &scratch
				if traces != nil {
					rt = &traces[ri]
				}
				*rt = RewriteTrace{}
				curRT = rt
				r.evalRewrite(rewrites[ri], ri, proj, st, &local, rt)
				curRT = nil
			}
		}(w)
	}
	wg.Wait()

	// Workers are drained; the queue counters are stable now.
	popped := next
	if skipFrom < len(rewrites) {
		m.RewritesSkipped = len(rewrites) - skipFrom
		if skipRemote {
			// Only the remote shard bound proved the tail dominated.
			m.CrossShardPrunes += len(rewrites) - skipFrom
		}
		popped = skipFrom
	}
	m.RewritesEvaluated = popped

	// Fill in the canonical-order trace: rewrite metadata for every
	// entry, and statuses for the rewrites no worker evaluated.
	ev.lastTrace = ev.lastTrace[:0]
	if traces != nil {
		for ri := range traces {
			rw := rewrites[ri]
			t := &traces[ri]
			t.Query = rw.Query.String()
			t.Weight = rw.Weight
			ids := make([]string, len(rw.Applied))
			for i, ar := range rw.Applied {
				ids[i] = ar.ID
			}
			t.Rules = ids
			if t.Status == "" {
				switch {
				case ri >= skipFrom:
					t.Status = "skipped (weight bound)"
				case bt != nil && bt.exhausted.Load():
					t.Status = "budget"
				default:
					t.Status = "canceled"
				}
			}
		}
		ev.lastTrace = traces
	}

	answers := st.ranked(k)
	// Error precedence: a recovered panic outranks budget exhaustion,
	// which outranks cancellation — a panic cancels the internal context
	// and budget exhaustion stops the queue early, so the weaker signals
	// are side effects of the stronger ones.
	var err error
	switch {
	case panicRec.Load() != nil:
		err = panicRec.Load()
	case bt != nil && bt.exhausted.Load():
		err = ErrBudgetExhausted
	case (popped < len(rewrites) && skipFrom == len(rewrites)) || sawCancel.Load():
		// The queue stopped before the end for a reason other than the
		// weight bound, or a worker unwound mid-rewrite: cancellation.
		if ctx != nil {
			err = ctx.Err()
		}
	}
	return answers, m, err
}
