package topk

// This file implements the block-at-a-time join kernel, the default
// execution strategy when hash joins are enabled (Options.NoBlockJoin
// reverts to the tuple-at-a-time kernel in topk.go).
//
// The in-flight join frontier is a batch of prefix bindings in columnar
// form: one []rdf.TermID column per variable slot of the rewrite's
// varPlan plus a parallel running-probability column. Each join depth
// extends the whole block in one pass — probing the PR 2 hash buckets
// per prefix, evaluating the score-bound arithmetic branch-free over the
// candidate list (score.BoundedExtend) and appending surviving
// (prefix × candidate) rows into a reusable output block. Only rows that
// survive to full depth and clear the shared top-k bound are projected
// back into the map-based Answer representation, through the same
// recordBinding the tuple kernel uses.
//
// Enumeration-order identity: output rows are appended in (input row,
// candidate) order and a full output block is flushed — extended
// depth-first through all remaining depths — before later input rows are
// processed. By induction complete bindings materialise in exactly the
// tuple kernel's depth-first order, so the canonical sequence numbers
// that break score ties are assigned in the same relative order and the
// two kernels rank identically. (In incremental mode the block kernel
// may prune with a slightly staler threshold — the bound is refreshed at
// block boundaries rather than per tuple — which can only prune *less*;
// anything either kernel prunes is strictly below the final k-th score,
// so rankings stay byte-identical.)

import (
	"trinit/internal/faultinject"
	"trinit/internal/rdf"
	"trinit/internal/score"
	"trinit/internal/store"
)

// maxBlockRows caps the rows of one frontier block. Full blocks are
// flushed — extended through the remaining depths — before enumeration
// continues, bounding memory at O(depth × maxBlockRows × slots) while
// preserving depth-first enumeration order.
const maxBlockRows = 1024

// joinBlock is one frontier of partially-joined prefixes in columnar
// form. slots[s][row] is the binding of variable slot s (rdf.NoTerm =
// unbound), acc[row] the running probability of the prefix, and
// trip[d][row] / prob[d][row] the triple chosen at join depth d and its
// emission probability — kept per depth so a completed row can fill the
// answer's per-pattern derivation without re-deriving it.
type joinBlock struct {
	slots [][]rdf.TermID
	acc   []float64
	trip  [][]store.ID
	prob  [][]float64
	rows  int
}

// reset shapes the block for a rewrite with nslots variable slots and
// ndepth join depths, keeping the column buffers for reuse.
func (b *joinBlock) reset(nslots, ndepth int) {
	for len(b.slots) < nslots {
		b.slots = append(b.slots, nil)
	}
	b.slots = b.slots[:nslots]
	for len(b.trip) < ndepth {
		b.trip = append(b.trip, nil)
	}
	b.trip = b.trip[:ndepth]
	for len(b.prob) < ndepth {
		b.prob = append(b.prob, nil)
	}
	b.prob = b.prob[:ndepth]
	b.resetRows()
}

// resetRows empties the block, keeping column capacity.
func (b *joinBlock) resetRows() {
	for i := range b.slots {
		b.slots[i] = b.slots[i][:0]
	}
	for i := range b.trip {
		b.trip[i] = b.trip[i][:0]
	}
	for i := range b.prob {
		b.prob[i] = b.prob[i][:0]
	}
	b.acc = b.acc[:0]
	b.rows = 0
}

// blockJoin runs the block-at-a-time kernel over the prepared join env:
// it seeds the depth-0 frontier with the single all-unbound prefix and
// extends it depth by depth. All blocks and accumulator columns live in
// the run's scratch and are reused across rewrites.
func (r *run) blockJoin(e *joinEnv) {
	sc := &r.sc
	n := e.n
	for len(sc.blocks) < n+1 {
		sc.blocks = append(sc.blocks, &joinBlock{})
	}
	for len(sc.accBufs) < n {
		sc.accBufs = append(sc.accBufs, nil)
	}
	nslots := len(e.vp.names)
	// Deeper blocks are shaped lazily, at blockExtend entry: most
	// rewrites never fill more than a couple of frontiers, and resetting
	// every depth upfront showed up on small-join profiles.
	seed := sc.blocks[0]
	seed.reset(nslots, n)
	for s := 0; s < nslots; s++ {
		seed.slots[s] = append(seed.slots[s], rdf.NoTerm)
	}
	seed.acc = append(seed.acc, 1)
	seed.rows = 1
	r.blockExtend(e, 0)
}

// blockExtend extends the depth-d frontier block by the d-th pattern of
// the join order, writing surviving rows into the depth-d+1 block and
// flushing it — recursing through the remaining depths — whenever it
// fills. At full depth the block is materialised into answers.
func (r *run) blockExtend(e *joinEnv, d int) {
	if r.canceled || r.exhausted {
		return
	}
	if d == e.n {
		r.blockMaterialise(e)
		return
	}
	sc := &r.sc
	in := sc.blocks[d]
	out := sc.blocks[d+1]
	out.reset(len(e.vp.names), e.n)
	pi := e.order[d]
	pl := e.lists[pi]
	slots := e.vp.pats[pi]
	nslots := len(e.vp.names)
	var aliveList []bool
	if e.alive != nil {
		aliveList = e.alive[pi]
	}
	incremental := r.opts.Mode == Incremental
	// thLimit is the block-level score bound: 0 in exhaustive mode (a
	// non-negative bound never goes below it, so BoundedExtend scans the
	// full candidate list), the shared top-k threshold in incremental
	// mode. It is refreshed at block boundaries — a flush may have
	// recorded answers that tightened it — not per tuple, so it is only
	// ever staler (never tighter) than the tuple kernel's bound.
	var thLimit float64
	// thRemote marks that the captured bound was driven by a remote
	// shard's broadcast rather than local answers, attributing this
	// block's tail cuts to cross-shard pruning.
	var thRemote bool
	if incremental {
		thRemote = e.state.remoteAhead()
		thLimit = e.state.threshold()
	}

	// flush extends the filled output block through the remaining
	// depths, then empties it for the next batch of rows. A whole
	// block's worth of rows is charged against the cancellation poll
	// interval in one step: block boundaries are the kernel's
	// cancellation points. After the recursion the channel is polled
	// again unconditionally — materialisation may have run emit
	// callbacks (streaming consumers cancel from inside them), and a
	// trailing flush is the last work of a rewrite, so the cancel must
	// not wait out the tick budget.
	flush := func() bool {
		e.m.BlocksEmitted++
		faultinject.Fire(faultinject.SiteBlockFlush, "")
		if r.pollCancelEvery(out.rows) {
			return false
		}
		r.blockExtend(e, d+1)
		if r.pollCancel() {
			return false
		}
		out.resetRows()
		if incremental {
			thRemote = e.state.remoteAhead()
			thLimit = e.state.threshold()
		}
		return true
	}

	// Probe memoisation: consecutive rows of a depth-first frontier
	// often agree on the pattern's bound slots, so the candidate bucket
	// is re-derived (and HashProbes counted) only when the bound-slot
	// key changes from the previous row.
	var prevKey [3]rdf.TermID
	havePrev := false
	var cand []int32
	probe := false

	for row := 0; row < in.rows; row++ {
		acc := in.acc[row]
		weighted := e.rw.Weight * acc
		var key [3]rdf.TermID
		for vi := range slots {
			key[vi] = in.slots[slots[vi]][row]
		}
		if !havePrev || key != prevKey {
			prevKey, havePrev = key, true
			cand, probe = nil, false
			for vi := range slots {
				if t := key[vi]; t != rdf.NoTerm {
					bkt := pl.buckets[vi][t]
					if !probe || len(bkt) < len(cand) {
						cand, probe = bkt, true
					}
				}
			}
			if probe {
				e.m.HashProbes++
			}
		}
		if probe && len(cand) == 0 {
			continue
		}
		var scan []int32
		total := len(pl.matches)
		if probe {
			scan = cand
			total = len(cand)
		}
		// Branch-free score pass over the candidate list: one output
		// probability per candidate up to the bound cut.
		accBuf, consumed := score.BoundedExtend(pl.matches, scan, acc, weighted, e.suffix[d+1], thLimit, sc.accBufs[d][:0])
		sc.accBufs[d] = accBuf
		if consumed < total {
			// The cut point: every remaining candidate has lower
			// probability, so the whole tail is below the bound.
			e.m.PrunedBranches++
			e.m.BlockRowsFiltered += total - consumed
			if thRemote {
				e.m.CrossShardPrunes++
			}
		}
		for j := 0; j < consumed; j++ {
			p := j
			if probe {
				p = int(cand[j])
			}
			if aliveList != nil && !aliveList[p] {
				continue
			}
			match := &pl.matches[p]
			e.m.SortedAccesses++
			e.m.JoinBranches++
			ok := true
			for bi, s := range slots {
				if cur := in.slots[s][row]; cur != rdf.NoTerm && cur != match.Bindings[bi].Term {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			orow := out.rows
			for s := 0; s < nslots; s++ {
				out.slots[s] = append(out.slots[s], in.slots[s][row])
			}
			for bi, s := range slots {
				out.slots[s][orow] = match.Bindings[bi].Term
			}
			for d2 := 0; d2 < d; d2++ {
				out.trip[d2] = append(out.trip[d2], in.trip[d2][row])
				out.prob[d2] = append(out.prob[d2], in.prob[d2][row])
			}
			out.trip[d] = append(out.trip[d], match.Triple)
			out.prob[d] = append(out.prob[d], match.Prob)
			out.acc = append(out.acc, accBuf[j])
			out.rows++
			if out.rows == maxBlockRows {
				if !flush() {
					return
				}
			}
		}
	}
	if out.rows > 0 {
		flush()
	}
}

// blockMaterialise projects the full-depth frontier back into answers:
// each row is gathered into the run's flat binding array, filtered, and
// handed to recordBinding — the same convergence point as the tuple
// kernel, so keys, scores and derivation identity are kernel-independent.
func (r *run) blockMaterialise(e *joinEnv) {
	sc := &r.sc
	b := sc.blocks[e.n]
	for row := 0; row < b.rows; row++ {
		for s := range sc.vals {
			sc.vals[s] = b.slots[s][row]
		}
		if !r.passFilters(e, sc.vals) {
			continue
		}
		for d := 0; d < e.n; d++ {
			sc.triples[e.order[d]] = b.trip[d][row]
			sc.probs[e.order[d]] = b.prob[d][row]
		}
		r.recordBinding(e, e.rw.Weight*b.acc[row], sc.vals, sc.triples, sc.probs)
	}
}
