package topk

// Tests of the robustness layer inside the evaluator: per-query cost
// budgets observed at the cancellation poll points (serial and
// parallel, block and tuple kernels), the "budget" trace marker, and
// worker panic isolation through the fault-injection sites. Run with
// -race.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"trinit/internal/faultinject"
	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

// TestBudgetZeroIsUnlimited: the zero Budget means no limits — the run
// is byte-identical to an unbudgeted one and returns no error.
func TestBudgetZeroIsUnlimited(t *testing.T) {
	ev, q, rewrites := wideFixture(t, 200, 4, Options{K: 5})
	oracle, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{Budget: Budget{}})
	if err != nil {
		t.Fatalf("zero budget: %v", err)
	}
	if !reflect.DeepEqual(got, oracle) {
		t.Fatal("zero-budget answers differ from unbudgeted")
	}
}

// TestBudgetGenerousByteIdentical: a budget large enough to never
// trip must not perturb the result in any way.
func TestBudgetGenerousByteIdentical(t *testing.T) {
	for _, p := range []int{1, 4} {
		ev, q, rewrites := wideFixture(t, 300, 5, Options{K: 5})
		oracle, om, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		got, gm, err := ev.Run(context.Background(), q, rewrites, RunConfig{
			Parallelism: p,
			Budget:      Budget{JoinBranches: 1 << 40, HashProbes: 1 << 40, Blocks: 1 << 40},
		})
		if err != nil {
			t.Fatalf("P=%d generous budget: %v", p, err)
		}
		if !reflect.DeepEqual(got, oracle) {
			t.Fatalf("P=%d: generous-budget answers differ from unbudgeted", p)
		}
		// Work counters are only deterministic on the serial schedule —
		// parallel threshold timing legitimately varies the join work.
		if p == 1 && gm.JoinBranches != om.JoinBranches {
			t.Fatalf("serial: JoinBranches %d with budget, %d without", gm.JoinBranches, om.JoinBranches)
		}
	}
}

// TestBudgetExhaustionSerial: a tiny join-branch budget stops a serial
// run early with ErrBudgetExhausted; the answers found so far are
// returned and the unevaluated rewrites are traced "budget".
func TestBudgetExhaustionSerial(t *testing.T) {
	// 6 rewrites x 1200 branches each: the budget trips inside the first
	// rewrite's join (poll interval is 256 branches).
	ev, q, rewrites := wideFixture(t, 1200, 6, Options{K: 3, Mode: Exhaustive})
	ans, m, err := ev.Run(context.Background(), q, rewrites, RunConfig{
		Budget: Budget{JoinBranches: 300},
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if m.JoinBranches >= 1200*6 {
		t.Fatalf("JoinBranches = %d: budget did not stop the run early", m.JoinBranches)
	}
	_ = ans // partial answers may legitimately be empty this early
	budgetTraced := false
	for _, tr := range ev.LastTrace() {
		switch tr.Status {
		case "budget":
			budgetTraced = true
		case "canceled":
			t.Fatalf("budget stop mislabelled as canceled: %+v", tr)
		}
	}
	if !budgetTraced {
		t.Fatal("no trace entry with status budget")
	}
}

// TestBudgetExhaustionParallel: the shared budget account stops every
// worker; the error is typed, traces use the budget marker, and the
// worker pool drains.
func TestBudgetExhaustionParallel(t *testing.T) {
	ev, q, rewrites := wideFixture(t, 1200, 6, Options{K: 3, Mode: Exhaustive})
	before := runtime.NumGoroutine()
	_, m, err := ev.Run(context.Background(), q, rewrites, RunConfig{
		Parallelism: 4,
		Budget:      Budget{JoinBranches: 500},
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if m.JoinBranches >= 1200*6 {
		t.Fatalf("JoinBranches = %d: budget did not stop the run early", m.JoinBranches)
	}
	budgetTraced := false
	for _, tr := range ev.LastTrace() {
		if tr.Status == "budget" {
			budgetTraced = true
		}
	}
	if !budgetTraced {
		t.Fatal("no trace entry with status budget")
	}
	waitForGoroutines(t, before)
}

// joinFixture builds a store where a two-pattern chain query drives
// the hash-join kernel through many probes and block flushes — the
// work the HashProbes and Blocks budget dimensions meter. The rewrite
// space is just the identity rewrite; exhaustion must therefore be
// detected mid-join, at the every-256-branches poll.
func joinFixture(t *testing.T, n int) (*Evaluator, *query.Query, []relax.Rewrite) {
	t.Helper()
	st := store.New(nil, nil)
	for i := 0; i < n; i++ {
		conf := 0.1 + 0.8*float64((i*31)%101)/101
		mid := rdf.Resource(fmt.Sprintf("B%d", i%50))
		st.AddFact(rdf.Resource(fmt.Sprintf("A%d", i)), rdf.Token("jrel0"), mid, rdf.SourceXKG, conf, rdf.NoProv)
		st.AddFact(mid, rdf.Token("jrel1"), rdf.Resource(fmt.Sprintf("C%d", i)), rdf.SourceXKG, 1-conf/2, rdf.NoProv)
	}
	st.Freeze()
	q := query.MustParse("?x 'jrel0' ?y . ?y 'jrel1' ?z")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	return New(st, Options{K: 5, Mode: Exhaustive}), q, rewrites
}

// TestBudgetHashProbesAndBlocks: the other two budget dimensions trip
// on their own counters, mid-join on a chain query.
func TestBudgetHashProbesAndBlocks(t *testing.T) {
	ev, q, rewrites := joinFixture(t, 2000)
	_, m, err := ev.Run(context.Background(), q, rewrites, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.HashProbes < 200 || m.BlocksEmitted < 4 {
		t.Fatalf("fixture too small to meter: probes=%d blocks=%d", m.HashProbes, m.BlocksEmitted)
	}
	if _, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{
		Budget: Budget{HashProbes: 100},
	}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("hash-probe budget: err = %v, want ErrBudgetExhausted", err)
	}
	if _, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{
		Budget: Budget{Blocks: 2},
	}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("block budget: err = %v, want ErrBudgetExhausted", err)
	}
}

// TestBudgetTupleKernel: budgets are enforced on the tuple-at-a-time
// ablation path too, not just the block kernel.
func TestBudgetTupleKernel(t *testing.T) {
	ev, q, rewrites := wideFixture(t, 1200, 6, Options{K: 3, Mode: Exhaustive, NoBlockJoin: true})
	_, m, err := ev.Run(context.Background(), q, rewrites, RunConfig{
		Budget: Budget{JoinBranches: 300},
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if m.JoinBranches >= 1200*6 {
		t.Fatalf("JoinBranches = %d: budget did not stop the tuple kernel early", m.JoinBranches)
	}
}

// TestBudgetAnswersSubsetOfOracle: every answer a budgeted run returns
// must be a real answer — present in the unbudgeted oracle with a
// score no higher than the oracle's (max-over-derivations can only
// grow as more rewrites are explored).
func TestBudgetAnswersSubsetOfOracle(t *testing.T) {
	ev, q, rewrites := wideFixture(t, 400, 6, Options{K: 10, Mode: Exhaustive})
	oracle, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	oracleScore := make(map[string]float64, len(oracle))
	for _, a := range oracle {
		oracleScore[bindKey(a)] = a.Score
	}
	for _, budget := range []int64{300, 900, 2000} {
		ans, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{
			Budget: Budget{JoinBranches: budget},
		})
		if err != nil && !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("budget %d: unexpected error %v", budget, err)
		}
		for _, a := range ans {
			want, ok := oracleScore[bindKey(a)]
			if !ok {
				t.Fatalf("budget %d: answer %v not in unbudgeted oracle", budget, a.Bindings)
			}
			if a.Score > want+1e-12 {
				t.Fatalf("budget %d: answer %v scored %v above oracle %v", budget, a.Bindings, a.Score, want)
			}
		}
	}
}

func bindKey(a Answer) string {
	key := ""
	for _, v := range []string{"x", "y"} {
		key += fmt.Sprintf("%s=%d;", v, a.Bindings[v])
	}
	return key
}

// TestWorkerPanicIsolated: an injected panic in one parallel worker is
// recovered at the worker boundary, returned as a typed *PanicError,
// marked in the trace, and drains the whole pool; the evaluator then
// serves a clean query byte-identically.
func TestWorkerPanicIsolated(t *testing.T) {
	ev, q, rewrites := wideFixture(t, 400, 6, Options{K: 5, Mode: Exhaustive})
	oracle, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	s := faultinject.NewScript().PanicOn(faultinject.SiteRewriteEval, "2", 1, "injected worker crash")
	clear := s.Install()
	_, _, err = ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: 4})
	clear()

	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "injected worker crash" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	if s.Fired(faultinject.SiteRewriteEval, "2") != 1 {
		t.Fatal("injected panic never fired")
	}
	panicTraced := false
	for _, tr := range ev.LastTrace() {
		if tr.Status == "panic" {
			panicTraced = true
			if tr.Detail == "" {
				t.Fatal("panic trace entry has no detail")
			}
		}
	}
	if !panicTraced {
		t.Fatal("no trace entry with status panic")
	}
	waitForGoroutines(t, before)

	// The evaluator must stay serviceable: a clean rerun is
	// byte-identical to the pre-panic oracle.
	got, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: 4})
	if err != nil {
		t.Fatalf("post-panic run: %v", err)
	}
	if !reflect.DeepEqual(got, oracle) {
		t.Fatal("post-panic answers differ from pre-panic oracle")
	}
}

// TestSerialPanicPropagates: the serial path has no worker boundary —
// the panic unwinds out of Run for the engine-level recover to catch.
// This pins the contract the engine's own boundary depends on.
func TestSerialPanicPropagates(t *testing.T) {
	ev, q, rewrites := wideFixture(t, 50, 3, Options{K: 5})
	s := faultinject.NewScript().PanicOn(faultinject.SiteRewriteEval, "1", 1, "serial crash")
	defer s.Install()()
	defer func() {
		if recover() == nil {
			t.Fatal("serial run swallowed the panic")
		}
	}()
	_, _, _ = ev.Run(context.Background(), q, rewrites, RunConfig{})
}

// waitForGoroutines asserts the goroutine count settles back to the
// baseline captured before the run under test.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("%d goroutines after run, baseline %d", n, baseline)
	}
}
