package topk

// This file implements the processor's overload defenses: per-query
// cost budgets and typed panic capture.
//
// A Budget caps the work one Run may do — join branches explored, hash
// buckets probed, frontier blocks emitted — using the Metrics counters
// the kernels already maintain. Enforcement happens at the existing
// cancellation poll points (rewrite boundaries, every
// cancelCheckInterval join branches, block flushes), so budgets add no
// new hot-path checks: a run with no budget costs one extra nil test
// per poll. Exhaustion behaves exactly like a cancellation — kernels
// unwind at the next poll, the answers found so far are ranked as
// usual — but is reported as ErrBudgetExhausted with "budget" trace
// statuses, so callers can distinguish "you hit your cost cap" from
// "you went away". The incremental threshold algorithm makes the
// partial result sound: every returned answer is a real answer whose
// reported score is the max over the derivations explored so far, i.e.
// a lower bound on its unbudgeted score.
//
// Under a parallel schedule all workers charge one shared tracker, so
// the cap bounds the query's total work, not per-worker work; the
// first worker to observe exhaustion publishes it and the others stop
// at their next poll.

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudgetExhausted is returned by Run when the query's cost budget
// was spent before the rewrite space was fully processed. The answers
// returned alongside it are a sound partial top-k (see file comment).
var ErrBudgetExhausted = errors.New("topk: query budget exhausted")

// Budget caps the work of one Run. A zero field is unlimited; the zero
// Budget disables budgeting entirely (and costs nothing at runtime).
// Limits are enforced at the kernels' cancellation poll points, so a
// run may overshoot a cap by at most one poll interval
// (cancelCheckInterval branches, or one frontier block).
type Budget struct {
	// JoinBranches caps candidate combinations explored during joins
	// (Metrics.JoinBranches).
	JoinBranches int64
	// HashProbes caps hash-index bucket lookups (Metrics.HashProbes).
	HashProbes int64
	// Blocks caps frontier blocks emitted by the block kernel
	// (Metrics.BlocksEmitted).
	Blocks int64
}

// limited reports whether any cap is set.
func (b Budget) limited() bool {
	return b.JoinBranches > 0 || b.HashProbes > 0 || b.Blocks > 0
}

// budgetTracker is the shared charge account of one Run: workers add
// their metric deltas and compare against the limits. exhausted is
// sticky — once any cap is crossed every poll on every worker reports
// over-budget.
type budgetTracker struct {
	limits    Budget
	branches  atomic.Int64
	probes    atomic.Int64
	blocks    atomic.Int64
	exhausted atomic.Bool
}

func newBudgetTracker(b Budget) *budgetTracker {
	return &budgetTracker{limits: b}
}

// BudgetShare is an externally owned budget charge account that several
// Run calls charge together (RunConfig.BudgetShare): the sharded
// coordinator hands every per-shard run the same share, so the caps
// bound the query's total work across all shards — the cross-process
// generalisation of the parallel scheduler's shared tracker. The zero
// value is not useful; construct with NewBudgetShare.
type BudgetShare struct {
	budgetTracker
}

// NewBudgetShare returns a shared charge account enforcing b, or nil
// when b sets no caps (so callers can pass the result straight into
// RunConfig.BudgetShare unconditionally).
func NewBudgetShare(b Budget) *BudgetShare {
	if !b.limited() {
		return nil
	}
	return &BudgetShare{budgetTracker{limits: b}}
}

// Exhausted reports whether any cap of the share has been crossed.
func (b *BudgetShare) Exhausted() bool {
	return b != nil && b.exhausted.Load()
}

// overBudget charges the run's uncharged metric growth against the
// budget and reports whether the budget is now exhausted. Called from
// the poll points only; the kernels' inner loops never see it. The
// charged* cursors make each Metrics unit count exactly once no matter
// how often polling happens.
func (r *run) overBudget() bool {
	b := r.budget
	if b == nil {
		return false
	}
	if b.exhausted.Load() {
		r.exhausted = true
		return true
	}
	m := r.m
	if m == nil {
		return false
	}
	over := false
	if d := int64(m.JoinBranches) - r.chargedBranches; d > 0 {
		r.chargedBranches = int64(m.JoinBranches)
		if b.limits.JoinBranches > 0 && b.branches.Add(d) > b.limits.JoinBranches {
			over = true
		}
	}
	if d := int64(m.HashProbes) - r.chargedProbes; d > 0 {
		r.chargedProbes = int64(m.HashProbes)
		if b.limits.HashProbes > 0 && b.probes.Add(d) > b.limits.HashProbes {
			over = true
		}
	}
	if d := int64(m.BlocksEmitted) - r.chargedBlocks; d > 0 {
		r.chargedBlocks = int64(m.BlocksEmitted)
		if b.limits.Blocks > 0 && b.blocks.Add(d) > b.limits.Blocks {
			over = true
		}
	}
	if over {
		b.exhausted.Store(true)
		r.exhausted = true
	}
	return over
}

// PanicError is a recovered evaluation panic: the panic value plus the
// goroutine stack at the recover point. Run returns it (wrapped by the
// engine into its ErrInternal) instead of letting a worker panic kill
// the process; the stack also lands in the "panic" trace entry's
// Detail.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("topk: recovered panic: %v", e.Value)
}

// detail renders the panic for a trace entry: value plus stack.
func (e *PanicError) detail() string {
	return fmt.Sprintf("%v\n%s", e.Value, e.Stack)
}
