package topk

import (
	"fmt"
	"math"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/score"
	"trinit/internal/store"
)

func matchList(st *store.Store, qs string) *patternList {
	q := query.MustParse(qs)
	m := score.NewMatcher(st)
	return newPatternList(m.MatchPattern(q.Patterns[0]))
}

func TestPatternListBuckets(t *testing.T) {
	st := demoXKG()
	pl := matchList(st, "?x ?p ?y")
	if len(pl.vars) != 3 {
		t.Fatalf("vars = %v, want x, p, y", pl.vars)
	}
	ein, ok := st.Dict().Lookup(rdf.Resource("AlbertEinstein"))
	if !ok {
		t.Fatal("AlbertEinstein not interned")
	}
	xi := pl.varIndex("x")
	if xi < 0 {
		t.Fatalf("varIndex(x) = %d", xi)
	}
	bucket := pl.buckets[xi][ein]
	if len(bucket) == 0 {
		t.Fatal("empty bucket for AlbertEinstein")
	}
	// Bucket positions must be ascending (list order = descending
	// probability) and every bucketed entry must bind x to the key.
	prev := int32(-1)
	for _, p := range bucket {
		if p <= prev {
			t.Fatalf("bucket not ascending: %v", bucket)
		}
		prev = p
		if got, _ := pl.matches[p].BindingOf("x"); got != ein {
			t.Fatalf("bucket entry %d binds x to %v, want %v", p, got, ein)
		}
	}
	// Every list entry binding x to the key must be in the bucket.
	n := 0
	for _, m := range pl.matches {
		if got, _ := m.BindingOf("x"); got == ein {
			n++
		}
	}
	if n != len(bucket) {
		t.Fatalf("bucket holds %d entries, list has %d matching", len(bucket), n)
	}
}

func TestSemiJoinReduceDropsPartnerlessEntries(t *testing.T) {
	st := demoXKG()
	// ?x affiliation ?u (1 match: Einstein->IAS) joins ?u member ?l
	// (1 match: Princeton->IvyLeague) on ?u with NO common binding, so
	// both lists must empty.
	lists := []*patternList{
		matchList(st, "?x affiliation ?u"),
		matchList(st, "?u member ?l"),
	}
	var m Metrics
	_, liveCount, _ := semiJoinReduce(lists, &m)
	if liveCount[0] != 0 || liveCount[1] != 0 {
		t.Fatalf("liveCount = %v, want both 0 (no join partner on ?u)", liveCount)
	}
	if m.SemiJoinDropped != 2 {
		t.Fatalf("SemiJoinDropped = %d, want 2", m.SemiJoinDropped)
	}

	// A consistent pair survives intact: Einstein's affiliation and the
	// IAS 'housed in' triple share ?u = IAS.
	lists = []*patternList{
		matchList(st, "?x affiliation ?u"),
		matchList(st, "?u 'housed in' ?w"),
	}
	m = Metrics{}
	alive, liveCount, head := semiJoinReduce(lists, &m)
	if liveCount[0] != 1 || liveCount[1] < 1 {
		t.Fatalf("liveCount = %v, want the consistent entries kept", liveCount)
	}
	if alive[0] != nil && !alive[0][0] {
		t.Fatal("surviving list 0 head marked dead")
	}
	if head[0] != lists[0].matches[0].Prob {
		t.Fatalf("headProb = %v, want %v", head[0], lists[0].matches[0].Prob)
	}
}

func TestJoinOrderPrefersConnectedPatterns(t *testing.T) {
	q := query.MustParse("?a p1 ?b . ?c p2 ?d . ?b p3 ?c")
	// Length order would interleave the disconnected patterns 0 and 1;
	// connectivity must pull pattern 2 (sharing ?b) after pattern 0.
	got := buildVarPlan(q.Patterns).joinOrder([]int{0, 1, 2})
	want := []int{0, 2, 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("joinOrder = %v, want %v", got, want)
	}
	// A fully connected chain keeps the length order when it is already
	// connected at every step.
	got = buildVarPlan(q.Patterns).joinOrder([]int{2, 0, 1})
	want = []int{2, 0, 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("joinOrder = %v, want %v", got, want)
	}
}

// TestHashJoinKernelMatchesLegacyKernel: every kernel configuration must
// return identical answers on the demo workload, while the hash kernel
// does no more join work than the legacy scans.
func TestHashJoinKernelMatchesLegacyKernel(t *testing.T) {
	st := demoXKG()
	queries := []string{
		"?x bornIn Germany",
		"AlbertEinstein hasAdvisor ?x",
		"SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }",
		"?x bornIn ?y . ?y locatedIn ?z",
		"?x ?p ?y . ?y locatedIn ?z",
		"AlbertEinstein 'won nobel for' ?x",
	}
	for _, qs := range queries {
		for _, mode := range []Mode{Incremental, Exhaustive} {
			q := query.MustParse(qs)
			q.Projection = q.ProjectedVars()
			rewrites := relax.NewExpander(figure4()).Expand(q)
			legacy, ml := New(st, Options{K: 5, Mode: mode, NoHashJoin: true}).Evaluate(q, rewrites)
			hash, mh := New(st, Options{K: 5, Mode: mode, NoSemiJoin: true, NoBlockJoin: true}).Evaluate(q, rewrites)
			full, mf := New(st, Options{K: 5, Mode: mode, NoBlockJoin: true}).Evaluate(q, rewrites)
			block, mb := New(st, Options{K: 5, Mode: mode}).Evaluate(q, rewrites)
			for name, got := range map[string][]Answer{"hash": hash, "hash+semijoin": full, "block": block} {
				if len(got) != len(legacy) {
					t.Fatalf("%s (%v, %s): %d answers vs legacy %d", qs, mode, name, len(got), len(legacy))
				}
				for i := range got {
					if math.Abs(got[i].Score-legacy[i].Score) > 1e-12 {
						t.Fatalf("%s (%v, %s): answer %d score %v vs %v", qs, mode, name, i, got[i].Score, legacy[i].Score)
					}
					for v, id := range got[i].Bindings {
						if legacy[i].Bindings[v] != id {
							t.Fatalf("%s (%v, %s): answer %d binding %s differs", qs, mode, name, i, v)
						}
					}
				}
			}
			if mh.JoinBranches > ml.JoinBranches || mf.JoinBranches > ml.JoinBranches {
				t.Errorf("%s (%v): join branches legacy=%d hash=%d full=%d — kernel did more work",
					qs, mode, ml.JoinBranches, mh.JoinBranches, mf.JoinBranches)
			}
			// The block kernel defers threshold refreshes to block
			// boundaries, so in incremental mode it may legitimately
			// explore more branches than the tuple kernels; only in
			// exhaustive mode is its exploration identical and the
			// work bound assertable.
			if mode == Exhaustive {
				if mb.JoinBranches > ml.JoinBranches {
					t.Errorf("%s (%v): block join branches %d above legacy %d",
						qs, mode, mb.JoinBranches, ml.JoinBranches)
				}
				if mb.HashProbes > mf.HashProbes {
					t.Errorf("%s (%v): block probes %d above tuple %d",
						qs, mode, mb.HashProbes, mf.HashProbes)
				}
			}
			if ml.HashProbes != 0 || ml.SemiJoinDropped != 0 {
				t.Errorf("%s (%v): legacy kernel reported probes=%d semidrops=%d", qs, mode, ml.HashProbes, ml.SemiJoinDropped)
			}
		}
	}
}

// TestHashJoinProbesReduceWork: on a join whose first pattern binds the
// probe variable, the kernel must report hash probes and fewer sorted
// accesses than the legacy scan.
func TestHashJoinProbesReduceWork(t *testing.T) {
	st := skewedStore(60)
	q := query.MustParse("SELECT ?x ?y WHERE { ?x p ?y . ?x q Z }")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	_, ml := New(st, Options{K: 10, Mode: Exhaustive, NoHashJoin: true}).Evaluate(q, rewrites)
	_, mh := New(st, Options{K: 10, Mode: Exhaustive, NoSemiJoin: true}).Evaluate(q, rewrites)
	if mh.HashProbes == 0 {
		t.Fatalf("hash kernel issued no probes: %+v", mh)
	}
	if mh.SortedAccesses >= ml.SortedAccesses {
		t.Errorf("hash SortedAccesses = %d, not below legacy %d", mh.SortedAccesses, ml.SortedAccesses)
	}
	if mh.JoinBranches >= ml.JoinBranches {
		t.Errorf("hash JoinBranches = %d, not below legacy %d", mh.JoinBranches, ml.JoinBranches)
	}
}

// TestSemiJoinEmptiesDeadRewrite: when the reduction proves a rewrite can
// produce no complete binding, enumeration is skipped entirely and the
// trace says so.
func TestSemiJoinEmptiesDeadRewrite(t *testing.T) {
	st := demoXKG()
	// affiliation (Einstein->IAS) and member (Princeton->IvyLeague)
	// share ?u but no term: joinable only through relaxation.
	q := query.MustParse("SELECT ?x WHERE { ?x affiliation ?u . ?u member ?l }")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	ev := New(st, Options{K: 5})
	ans, m := ev.Evaluate(q, rewrites)
	if len(ans) != 0 {
		t.Fatalf("answers = %d, want 0", len(ans))
	}
	if m.SemiJoinDropped == 0 {
		t.Fatalf("SemiJoinDropped = 0: %+v", m)
	}
	if m.JoinBranches != 0 {
		t.Errorf("JoinBranches = %d, want 0 (enumeration skipped)", m.JoinBranches)
	}
	tr := ev.LastTrace()
	if len(tr) != 1 || tr[0].Status != "no matches (semi-join)" {
		t.Fatalf("trace = %+v", tr)
	}
	if len(tr[0].SemiJoinKept) != 2 || tr[0].SemiJoinKept[0] != 0 || tr[0].SemiJoinKept[1] != 0 {
		t.Errorf("SemiJoinKept = %v, want [0 0]", tr[0].SemiJoinKept)
	}
}

// TestThresholdHeapMatchesSortedThreshold: the incremental min-heap must
// agree with a full sort of the answer scores after every write, including
// in-place score improvements (max-over-derivations).
func TestThresholdHeapMatchesSortedThreshold(t *testing.T) {
	ref := func(s *state) float64 {
		if len(s.answers) < s.k {
			return 0
		}
		scores := make([]float64, 0, len(s.answers))
		for _, e := range s.answers {
			scores = append(scores, e.a.Score)
		}
		for i := range scores { // selection "sort" is fine at test size
			for j := i + 1; j < len(scores); j++ {
				if scores[j] > scores[i] {
					scores[i], scores[j] = scores[j], scores[i]
				}
			}
		}
		return scores[s.k-1]
	}
	seq := []struct {
		key   string
		score float64
	}{
		{"a", 0.5}, {"b", 0.3}, {"c", 0.8}, {"d", 0.1}, {"b", 0.9},
		{"e", 0.2}, {"d", 0.95}, {"f", 0.05}, {"a", 0.55}, {"g", 0.85},
		{"f", 0.06}, {"h", 0.85}, {"c", 0.99}, {"i", 0.5}, {"e", 0.96},
	}
	for k := 1; k <= 6; k++ {
		s := newState(k, false)
		for step, w := range seq {
			score := w.score
			s.record([]byte(w.key), score, 0, step, func() Answer { return Answer{Score: score} })
			if got, want := s.threshold(), ref(s); got != want {
				t.Fatalf("k=%d step %d (%s=%v): threshold %v, want %v", k, step, w.key, w.score, got, want)
			}
		}
	}
}
