package topk

// Plan-time variable-slot resolution. The join kernels used to carry
// bindings in a map[string]rdf.TermID keyed by variable name, paying a
// hash + string compare on every probe, extension and rollback. A
// varPlan resolves the variable names of one rewrite's pattern set to
// dense slot indexes once, at plan time; the kernels then bind variables
// in flat []rdf.TermID arrays indexed by slot (rdf.NoTerm = unbound —
// dictionaries never assign it). The plan is a pure function of the
// pattern set's variable shape, so runs memoise it by signature and the
// shared-variable adjacency that joinOrder used to re-derive per rewrite
// is computed once here and reused (slot identity makes "do these
// patterns share a variable" an integer comparison).

import "trinit/internal/query"

// varPlan is the slot resolution of one pattern set.
type varPlan struct {
	// names maps slot index to variable name; len(names) is the number
	// of distinct variables, i.e. the width of a binding array.
	names []string
	// pats[pi][j] is the slot of the j-th variable of pattern pi in the
	// pattern's uniform binding layout — distinct variables in S, P, O
	// order, the order of score.Match.Bindings and patternList.vars —
	// so pats[pi] aligns index-for-index with a match's Bindings.
	pats [][]int32
}

// buildVarPlan resolves the variables of a pattern set to slots.
func buildVarPlan(pats []query.Pattern) *varPlan {
	vp := &varPlan{pats: make([][]int32, len(pats))}
	var scratch []string
	for pi, p := range pats {
		scratch = p.AppendVars(scratch[:0])
		row := make([]int32, len(scratch))
		for j, v := range scratch {
			row[j] = vp.slotID(v)
		}
		vp.pats[pi] = row
	}
	return vp
}

// slotID returns v's slot, interning it on first use. Pattern sets have
// a handful of variables, so a linear scan beats a map.
func (vp *varPlan) slotID(v string) int32 {
	for s, name := range vp.names {
		if name == v {
			return int32(s)
		}
	}
	vp.names = append(vp.names, v)
	return int32(len(vp.names) - 1)
}

// slotOf returns v's slot, or -1 when no pattern binds v.
func (vp *varPlan) slotOf(v string) int32 {
	for s, name := range vp.names {
		if name == v {
			return int32(s)
		}
	}
	return -1
}

// joinOrder refines a selectivity-sorted pattern order into the order the
// join enumerates: starting from the first pattern of lenOrder (the
// shortest list), it repeatedly appends the earliest pattern in lenOrder
// that shares a variable with the prefix, falling back to the earliest
// remaining pattern when none connects (a genuinely disconnected pattern
// graph). A connected prefix lets the hash join probe an existing binding
// at every depth instead of enumerating a Cartesian product. The
// allocating form, for tests; the kernels go through joinOrderInto with
// run-owned scratch.
func (vp *varPlan) joinOrder(lenOrder []int) []int {
	n := len(lenOrder)
	if n <= 2 {
		return lenOrder
	}
	return vp.joinOrderInto(lenOrder, make([]int, 0, n), make([]bool, n), make([]bool, len(vp.names)))
}

// joinOrderInto is joinOrder writing into caller scratch: out must have
// capacity len(lenOrder) (it is truncated here), used must be len(lenOrder)
// false, bound len(vp.names) false.
func (vp *varPlan) joinOrderInto(lenOrder, out []int, used, bound []bool) []int {
	n := len(lenOrder)
	out = out[:0]
	take := func(pi int) {
		out = append(out, pi)
		used[pi] = true
		for _, s := range vp.pats[pi] {
			bound[s] = true
		}
	}
	take(lenOrder[0])
	for len(out) < n {
		pick := -1
		for _, pi := range lenOrder {
			if used[pi] {
				continue
			}
			if pick < 0 {
				pick = pi // fallback: earliest remaining
			}
			connected := false
			for _, s := range vp.pats[pi] {
				if bound[s] {
					connected = true
					break
				}
			}
			if connected {
				pick = pi
				break
			}
		}
		take(pick)
	}
	return out
}

// varPlanFor returns the slot resolution of this pattern set, memoised
// per run by the patterns' variable signature (rewrites of one query
// share a handful of shapes, and relaxation rules rarely touch variable
// structure). Memoising per run — not on the shared Executor — keeps
// parallel workers race-free for free: each worker owns its run.
func (r *run) varPlanFor(pats []query.Pattern) *varPlan {
	sc := &r.sc
	buf := sc.sigBuf[:0]
	for _, p := range pats {
		// 0x01/0x02 separate slots and patterns; variable names are
		// parser identifiers and can contain neither.
		buf = append(buf, p.S.Var...)
		buf = append(buf, 1)
		buf = append(buf, p.P.Var...)
		buf = append(buf, 1)
		buf = append(buf, p.O.Var...)
		buf = append(buf, 2)
	}
	sc.sigBuf = buf
	if vp, ok := sc.plans[string(buf)]; ok {
		return vp
	}
	vp := buildVarPlan(pats)
	// The scratch now outlives single queries (executors keep and pool
	// it), so the memo is reset wholesale at a generous cap instead of
	// growing with every distinct shape ever evaluated.
	if sc.plans == nil || len(sc.plans) >= memoCap {
		sc.plans = make(map[string]*varPlan)
	}
	sc.plans[string(buf)] = vp
	return vp
}

// memoCap bounds the run-scratch memo maps (slot plans, pattern keys).
const memoCap = 4096

// patKey returns the canonical cache key of a pattern (its query-syntax
// rendering), memoised per run: the fmt-based String dominated warm-cache
// profiles when re-rendered for every rewrite sharing a pattern.
func (r *run) patKey(p query.Pattern) string {
	if s, ok := r.sc.patStr[p]; ok {
		return s
	}
	if r.sc.patStr == nil || len(r.sc.patStr) >= memoCap {
		r.sc.patStr = make(map[query.Pattern]string)
	}
	s := p.String()
	r.sc.patStr[p] = s
	return s
}
