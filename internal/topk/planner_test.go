package topk

import (
	"fmt"
	"math"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

// skewedStore builds a store where query-text pattern order is a bad join
// order: predicate p has many triples, predicate q exactly one.
func skewedStore(fanout int) *store.Store {
	st := store.New(nil, nil)
	for i := 0; i < fanout; i++ {
		st.AddKG(rdf.Resource(fmt.Sprintf("S%03d", i)), rdf.Resource("p"), rdf.Resource(fmt.Sprintf("O%03d", i)))
	}
	st.AddKG(rdf.Resource("S000"), rdf.Resource("q"), rdf.Resource("Z"))
	st.Freeze()
	return st
}

// TestPlannerReducesJoinWork: with the unselective pattern first in query
// text, selectivity ordering must shrink both the join branch space and
// the sorted accesses, while answers stay identical.
func TestPlannerReducesJoinWork(t *testing.T) {
	st := skewedStore(40)
	// Text order: huge ?x p ?y first, then the single-match ?x q Z.
	q := query.MustParse("SELECT ?x ?y WHERE { ?x p ?y . ?x q Z }")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)

	// Compare under the legacy scan kernel: hash probing and semi-join
	// reduction would flatten the cost difference this test isolates.
	planned, mp := New(st, Options{K: 10, Mode: Exhaustive, NoHashJoin: true}).Evaluate(q, rewrites)
	textOrd, mt := New(st, Options{K: 10, Mode: Exhaustive, NoPlan: true, NoHashJoin: true}).Evaluate(q, rewrites)

	if len(planned) != 1 || len(textOrd) != 1 {
		t.Fatalf("answers: planned %d, text-order %d, want 1", len(planned), len(textOrd))
	}
	if math.Abs(planned[0].Score-textOrd[0].Score) > 1e-12 {
		t.Fatalf("scores differ: %v vs %v", planned[0].Score, textOrd[0].Score)
	}
	for v, id := range planned[0].Bindings {
		if textOrd[0].Bindings[v] != id {
			t.Fatalf("binding %s differs", v)
		}
	}
	if mp.JoinBranches >= mt.JoinBranches {
		t.Errorf("planned JoinBranches = %d, not below text order %d", mp.JoinBranches, mt.JoinBranches)
	}
	if mp.SortedAccesses >= mt.SortedAccesses {
		t.Errorf("planned SortedAccesses = %d, not below text order %d", mp.SortedAccesses, mt.SortedAccesses)
	}
}

// TestPlannerEarlyAbortSkipsListBuilds: when the most selective pattern of
// a rewrite has no matches, the other pattern lists must not be built.
func TestPlannerEarlyAbortSkipsListBuilds(t *testing.T) {
	st := skewedStore(40)
	// ?x r Z matches nothing (no r predicate); ?x p ?y matches 40.
	q := query.MustParse("SELECT ?x ?y WHERE { ?x p ?y . ?x r Z }")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)

	ev := New(st, Options{K: 10})
	ans, m := ev.Evaluate(q, rewrites)
	if len(ans) != 0 {
		t.Fatalf("answers = %d, want 0", len(ans))
	}
	if m.PatternsMatched != 1 {
		t.Errorf("built %d pattern lists, want 1 (early abort on the empty selective pattern)", m.PatternsMatched)
	}
	trace := ev.LastTrace()
	if len(trace) != 1 || trace[0].Status != "no matches" {
		t.Fatalf("trace = %+v", trace)
	}
	// The planner must have put the provably-empty pattern first.
	if len(trace[0].Plan) == 0 || trace[0].Plan[0] != 1 {
		t.Errorf("plan = %v, want the selective pattern (index 1) first", trace[0].Plan)
	}
}

// TestPlanRecordedInTraceAndDerivation: the processed pattern order is
// surfaced both in the rewrite trace and in answer derivations.
func TestPlanRecordedInTraceAndDerivation(t *testing.T) {
	st := skewedStore(12)
	q := query.MustParse("SELECT ?x ?y WHERE { ?x p ?y . ?x q Z }")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(nil).Expand(q)
	ev := New(st, Options{K: 10})
	ans, _ := ev.Evaluate(q, rewrites)
	if len(ans) != 1 {
		t.Fatalf("answers = %d", len(ans))
	}
	wantOrder := []int{1, 0} // selective ?x q Z joins first
	gotTrace := ev.LastTrace()[0].Plan
	if len(gotTrace) != 2 || gotTrace[0] != wantOrder[0] || gotTrace[1] != wantOrder[1] {
		t.Errorf("trace plan = %v, want %v", gotTrace, wantOrder)
	}
	gotDeriv := ans[0].Derivation.Plan
	if len(gotDeriv) != 2 || gotDeriv[0] != wantOrder[0] || gotDeriv[1] != wantOrder[1] {
		t.Errorf("derivation plan = %v, want %v", gotDeriv, wantOrder)
	}
}

// TestEstimateSelectivity sanity-checks the index-derived estimates that
// drive the planner.
func TestEstimateSelectivity(t *testing.T) {
	st := demoXKG()
	est := func(qs string) int {
		p := query.MustParse(qs).Patterns[0]
		return estimateSelectivity(st, p, 0.34, nil)
	}
	if got := est("?x bornIn ?y"); got != 1 {
		t.Errorf("est(?x bornIn ?y) = %d, want 1", got)
	}
	if got := est("?x ?p ?y"); got != st.Len() {
		t.Errorf("est(?x ?p ?y) = %d, want %d", got, st.Len())
	}
	if got := est("?x NoSuchResource ?y"); got != 0 {
		t.Errorf("est over unknown resource = %d, want 0", got)
	}
	// A token slot refines through the inverted index: 'housed in'
	// occurs in exactly one triple.
	if got := est("?x 'housed in' ?y"); got < 1 || got > 2 {
		t.Errorf("est(?x 'housed in' ?y) = %d, want a tight bound near 1", got)
	}
	if got := est("?x 'completely absent phrase qqq' ?y"); got != 0 {
		t.Errorf("est over unknown token = %d, want 0", got)
	}
}

// TestPlannerMatchesNoPlanOnWorkload: planning is a pure optimisation —
// answers and scores must be identical with and without it across a mixed
// workload, in both processing modes.
func TestPlannerMatchesNoPlanOnWorkload(t *testing.T) {
	st := demoXKG()
	queries := []string{
		"?x bornIn Germany",
		"SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }",
		"?x bornIn ?y . ?y locatedIn ?z",
		"AlbertEinstein 'won nobel for' ?x",
	}
	for _, qs := range queries {
		for _, mode := range []Mode{Incremental, Exhaustive} {
			q := query.MustParse(qs)
			q.Projection = q.ProjectedVars()
			rewrites := relax.NewExpander(figure4()).Expand(q)
			with, _ := New(st, Options{K: 5, Mode: mode}).Evaluate(q, rewrites)
			without, _ := New(st, Options{K: 5, Mode: mode, NoPlan: true}).Evaluate(q, rewrites)
			if len(with) != len(without) {
				t.Fatalf("%s (mode %v): %d vs %d answers", qs, mode, len(with), len(without))
			}
			for i := range with {
				if math.Abs(with[i].Score-without[i].Score) > 1e-12 {
					t.Fatalf("%s (mode %v): answer %d score %v vs %v", qs, mode, i, with[i].Score, without[i].Score)
				}
				for v, id := range with[i].Bindings {
					if without[i].Bindings[v] != id {
						t.Fatalf("%s (mode %v): answer %d binding %s differs", qs, mode, i, v)
					}
				}
			}
		}
	}
}
