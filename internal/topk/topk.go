// Package topk implements TriniT's top-k query processor (§4): an
// adaptation of the incremental top-k algorithm of Theobald et al. [11].
//
// The processor consumes the rewrite space of a query (original query plus
// relaxations, in descending derivation-weight order) and merges their
// answers incrementally:
//
//   - a rewrite is evaluated only while its weight — an upper bound on the
//     score of any answer it can produce — exceeds the current k-th answer
//     score ("invoking a relaxation only when it can contribute to the
//     top-k answers");
//   - within a rewrite, per-pattern match lists are accessed in sorted
//     order of emission probability, and join branches are pruned as soon
//     as their best-possible completion falls below the k-th answer score
//     ("going only as far as necessary into each triple pattern index
//     list").
//
// The same evaluator also runs in exhaustive mode — materialising every
// rewrite completely — which serves as the correctness reference and as
// the cost baseline of experiment E5.
package topk

import (
	"context"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"trinit/internal/faultinject"
	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/score"
	"trinit/internal/store"
)

// Mode selects the processing strategy.
type Mode int

const (
	// Incremental is the paper's adaptive top-k strategy.
	Incremental Mode = iota
	// Exhaustive evaluates every rewrite fully; the baseline.
	Exhaustive
)

// Options configure evaluation.
type Options struct {
	// K is the number of answers to return (default 10).
	K int
	// Mode selects incremental or exhaustive processing.
	Mode Mode
	// MinTokenSim is the token-slot similarity threshold, forwarded to
	// the pattern matcher (0 = matcher default).
	MinTokenSim float64
	// UniformConf and NoNormalize ablate the tf-like and idf-like
	// effects of the scoring model (experiment E8); forwarded to the
	// pattern matcher.
	UniformConf bool
	NoNormalize bool
	// NoPlan disables join planning entirely: match lists are built
	// and joined in query-text pattern order. It is the naive cost
	// baseline for planner measurements — note it is *below* the
	// pre-planner behaviour, which already sorted the join order by
	// exact list length after building every list. Answers are
	// identical either way.
	NoPlan bool
	// NoHashJoin disables the hash-indexed join kernel: candidate
	// enumeration falls back to scanning every entry of every match
	// list, joined in exact-list-length order, and the semi-join
	// reduction pass is skipped — the kernel as it was before hash
	// indexing. Answers are identical either way; it is the cost
	// baseline for kernel measurements.
	NoHashJoin bool
	// NoSemiJoin keeps hash-index probing but skips the semi-join
	// reduction pass, isolating the two effects for ablations. Answers
	// are identical either way.
	NoSemiJoin bool
	// NoBlockJoin disables the block-at-a-time join kernel: candidates
	// are enumerated tuple-at-a-time by the backtracking join (still
	// over hash buckets and slot-resolved bindings) — the kernel shape
	// as of the parallel-scheduler work, the ablation baseline for the
	// block-kernel measurements. Answers are byte-identical either way.
	// NoHashJoin implies the tuple path: the block kernel exists to
	// batch hash-bucket probes, so there is nothing to batch without
	// them.
	NoBlockJoin bool
	// NoTokenIndex disables inverted-index token resolution in the
	// pattern matcher: token slots are matched by scanning the wildcard
	// permutation range and similarity-testing every triple — list
	// building as it was before token resolution. Match lists and
	// answers are byte-identical either way; it is the cost baseline for
	// list-building measurements.
	NoTokenIndex bool
	// Parallelism is the default number of scheduler workers a Run may
	// use to evaluate a query's rewrites concurrently (overridable per
	// call via RunConfig.Parallelism). 0 and 1 keep the serial schedule;
	// values > 1 enable the parallel scheduler with that many workers;
	// AutoParallelism (any negative value) uses one worker per logical
	// CPU. The final ranking is byte-identical at every width.
	Parallelism int
}

// RunConfig carries the per-call knobs of one Run. Every field is
// optional; zero values keep the executor's configured defaults. Because
// the overrides live in the call and not in the executor, pooled
// executors carry no per-query option state between borrows.
type RunConfig struct {
	// K overrides the executor's default answer count when > 0.
	K int
	// Mode overrides the processing strategy when ModeSet is true (the
	// Mode zero value, Incremental, is a real mode, so presence needs
	// its own flag).
	Mode    Mode
	ModeSet bool
	// NoTrace skips building the per-rewrite processing trace entirely
	// — no RewriteTrace allocations, no query re-rendering — for
	// callers that never read LastTrace. LastTrace returns an empty
	// slice after a NoTrace run.
	NoTrace bool
	// Emit, when non-nil, receives every answer the processor admits
	// into — or improves within — the current top-k, as it happens: the
	// provisional-answer stream behind QueryStream. It is called
	// synchronously from the evaluating goroutine; the answer's maps and
	// slices are freshly allocated and safe to retain. Provisional
	// events are best-effort: an answer that merely ties the k-th score
	// can enter the final ranking through the deterministic key
	// tie-break without ever being admitted to the score-only heap, so
	// consumers must treat the final answers as authoritative. Under a
	// parallel schedule calls are serialised (never concurrent), but
	// two admissions may arrive in either order.
	Emit func(Answer)
	// Parallelism overrides the executor's configured scheduler width
	// for this call: 1 forces the serial schedule, values > 1 evaluate
	// rewrites on that many concurrent workers sharing one top-k bound,
	// AutoParallelism (any negative value) uses one worker per logical
	// CPU, and 0 keeps the executor's Options.Parallelism. Answers are
	// byte-identical to serial execution at every width; Metrics work
	// counters and trace statuses may differ run to run, because a
	// worker acting on a slightly stale bound does extra (never unsafe)
	// work.
	Parallelism int
	// Budget caps the work of this call (see Budget); the zero value is
	// unlimited. A run that spends its budget stops at the next poll
	// point and returns the answers found so far with
	// ErrBudgetExhausted — a sound partial top-k, never an empty error.
	// Under a parallel schedule the budget bounds the query's total
	// work across all workers.
	Budget Budget
	// BudgetShare, when non-nil, replaces Budget with an externally
	// owned charge account shared across several Run calls — the sharded
	// coordinator's "one budget for the whole query" semantics, exactly
	// as the parallel scheduler shares one tracker across workers. When
	// set, Budget is ignored.
	BudgetShare *BudgetShare
	// Bound, when non-nil, is an external k-th-score bound this run
	// reads in addition to — and publishes into — its own local top-k
	// threshold. It is the distributed analogue of state.bits: a sharded
	// coordinator hands every shard the same BoundBroadcast so each
	// shard prunes against the best k-th score any shard has proven. The
	// same staleness argument applies — a stale remote bound is only
	// ever lower than the true global bound, so pruning against it does
	// extra work but never drops an answer.
	Bound SharedBound
}

// SharedBound is an externally shared k-th-score bound: Publish offers a
// shard's current k-th best score (implementations keep the maximum),
// and Load returns the best score published so far (0 before any
// Publish). Implementations must be safe for concurrent use; the engine's
// implementation is shard.BoundBroadcast.
type SharedBound interface {
	Publish(score float64)
	Load() float64
}

// cancelCheckInterval is how many join branches may run between two
// polls of the context's done channel. A cancelled Run returns within
// one interval (or at the next rewrite boundary, whichever comes
// first). 256 keeps the poll off the hot path — one channel select per
// 256 branches — while bounding the cancellation latency to well under
// a millisecond of join work.
const cancelCheckInterval = 256

// Answer is one ranked result: a binding of the query's projected
// variables with its score and best derivation.
type Answer struct {
	// Bindings maps projected variable names to bound terms.
	Bindings map[string]rdf.TermID
	// Score is the maximal score over all derivations of this answer.
	Score float64
	// Derivation is the derivation that achieved Score.
	Derivation Derivation
}

// Derivation records how an answer was obtained — the raw material of the
// demo's answer-explanation feature.
type Derivation struct {
	// Rewrite is the rewrite (query + applied rules + weight) that
	// produced the answer.
	Rewrite relax.Rewrite
	// Triples holds one matched triple per pattern of Rewrite.Query, in
	// pattern order.
	Triples []store.ID
	// PatternProbs holds the per-pattern emission probabilities.
	PatternProbs []float64
	// Plan holds the pattern indices in the join order the planner
	// chose (nil means query-text order). Shared, read-only.
	Plan []int
}

// Metrics quantify the work done, for the E5 efficiency experiment.
//
// Under a parallel schedule (Parallelism > 1) every worker accumulates
// its counters locally and the scheduler merges them once at the end,
// so totals cover the whole run; work-dependent counters (SortedAccesses,
// JoinBranches, PrunedBranches, RewritesEvaluated/Skipped, …) may vary
// between runs of the same query, because a worker acting on a slightly
// stale top-k bound does extra — never unsafe — work. Serial runs stay
// exactly reproducible.
type Metrics struct {
	// RewritesTotal is the size of the supplied rewrite space.
	RewritesTotal int
	// RewritesEvaluated counts rewrites whose patterns were matched.
	RewritesEvaluated int
	// RewritesSkipped counts rewrites pruned by the weight bound.
	RewritesSkipped int
	// SortedAccesses counts entries consumed from the score-sorted
	// per-pattern match lists during join processing — the paper's
	// "going only as far as necessary into each triple pattern index
	// list" is visible as a reduction of this number.
	SortedAccesses int
	// IndexScanned counts posting-list entries touched while building
	// the per-pattern lists (the index-lookup cost; shared lists are
	// built once and reused across rewrites).
	IndexScanned int
	// PatternsMatched counts per-pattern list constructions; cache hits
	// across rewrites do not count.
	PatternsMatched int
	// JoinBranches counts candidate combinations explored during joins.
	JoinBranches int
	// PrunedBranches counts join branches cut by the score bound.
	PrunedBranches int
	// HashProbes counts hash-index bucket lookups the join kernel issued
	// in place of full match-list scans: at each depth with a variable
	// already bound by the prefix, one probe replaces a scan.
	HashProbes int
	// SemiJoinDropped counts match-list entries pruned by the semi-join
	// reduction pass before join enumeration started. Reductions are
	// cached per pattern set alongside the match lists; cache hits
	// across rewrites and queries do not re-count (mirroring
	// IndexScanned and PatternsMatched).
	SemiJoinDropped int
	// BlocksEmitted counts join-frontier blocks the block-at-a-time
	// kernel handed from one join depth to the next (the final depth's
	// blocks go to answer materialisation). Zero when the block kernel
	// is disabled.
	BlocksEmitted int
	// BlockRowsFiltered counts candidate rows the block kernel cut with
	// its block-level score-bound filter before materialising them —
	// the batched counterpart of the tuple kernel's per-branch cut
	// (each cut is also one PrunedBranches event).
	BlockRowsFiltered int
	// TokenResolutions counts token slots resolved through the inverted
	// token index while building match lists (cache hits across rewrites
	// do not count, mirroring IndexScanned).
	TokenResolutions int
	// ScanFallbacks counts token-slot patterns whose lists were built by
	// the legacy wildcard scan instead of token resolution — always, under
	// NoTokenIndex, and otherwise only when the candidate cross-product
	// exceeded the matcher's cutoff or scanning was provably cheaper.
	ScanFallbacks int
	// CrossShardPrunes counts prune decisions (cut join branches and
	// skipped rewrites) that fired only because of a remote bound
	// (RunConfig.Bound) raised above this run's own k-th score — the
	// work another shard's answers saved this one. Zero without a shared
	// bound. Like the other bound-dependent counters it may vary run to
	// run under concurrency.
	CrossShardPrunes int
}

// Add accumulates o into m, field by field, RewritesTotal included — the
// coordinator-side aggregation across shards, where every shard ran the
// full rewrite space against its own partition. Contrast with the
// parallel scheduler's internal merge, which deliberately leaves the
// queue-owned rewrite counters to the scheduler.
func (m *Metrics) Add(o Metrics) {
	m.RewritesTotal += o.RewritesTotal
	m.RewritesEvaluated += o.RewritesEvaluated
	m.RewritesSkipped += o.RewritesSkipped
	m.merge(&o)
}

// RewriteTrace records what happened to one rewrite during processing —
// the "internal steps" view of the §5 demo.
type RewriteTrace struct {
	// Query is the rewritten query text.
	Query string
	// Weight is the derivation weight.
	Weight float64
	// Rules lists the IDs of the applied rules.
	Rules []string
	// Status is "evaluated", "skipped (weight bound)", "no matches",
	// "no matches (semi-join)", "missing projection", "canceled" (the
	// run's context was cancelled at or before this rewrite), "budget"
	// (the run's cost budget was exhausted at or before this rewrite),
	// or "panic" (this rewrite's evaluation panicked and was recovered).
	Status string
	// Detail carries extra status context: for "panic" entries, the
	// panic value and the recovered goroutine stack. Empty otherwise.
	Detail string
	// PatternMatches holds the match-list length per pattern (only for
	// evaluated rewrites; patterns skipped by a planner early-abort
	// stay 0).
	PatternMatches []int
	// Plan holds the pattern indices in the order the planner processed
	// them (nil when the rewrite was not matched or planning is off).
	Plan []int
	// SemiJoinKept holds the per-pattern number of match-list entries
	// that survived the semi-join reduction pass, in pattern order (nil
	// when the pass did not run).
	SemiJoinKept []int
	// Answers counts answers created or improved by this rewrite.
	Answers int
}

// Executor runs top-k processing for one query at a time against a frozen
// store, fetching score-sorted per-pattern match lists from a shared
// Cache. The executor itself carries only per-query state (the trace of
// its latest Evaluate call), so an engine can keep a pool of executors
// and run queries concurrently — all heavy state lives in the store and
// the cache, both safe for concurrent readers. A single Executor must not
// be shared by concurrent Evaluate calls.
type Executor struct {
	st      *store.Store
	opts    Options
	matcher *score.Matcher
	cache   *Cache
	// lastTrace records the rewrite-by-rewrite processing steps of the
	// most recent Evaluate call.
	lastTrace []RewriteTrace
	// scratch is the serial run's evaluation scratch, kept on the
	// executor so repeated Run calls reuse the buffers, memoised slot
	// plans and pattern keys of earlier queries. Run is single-goroutine
	// per executor (it already owns lastTrace); parallel workers draw
	// from scratchPool instead.
	scratch     evalScratch
	scratchPool sync.Pool
}

// NewExecutor returns an executor over a shared match-list cache. The
// store must be frozen. Executors built over the same cache share match
// lists and planner estimates; their matcher options must agree, since
// cached lists are keyed by pattern text only.
func NewExecutor(st *store.Store, cache *Cache, opts Options) *Executor {
	if opts.K <= 0 {
		opts.K = 10
	}
	if cache == nil {
		cache = NewCache(0)
	}
	matcher := MatcherFor(st, opts)
	// Token resolutions are shared through the cache: the planner's
	// selectivity estimates and the matcher's list builds reuse one
	// inverted-index lookup per distinct token.
	matcher.Resolver = cache.tokenResolver(st)
	return &Executor{
		st:      st,
		opts:    opts,
		matcher: matcher,
		cache:   cache,
	}
}

// Evaluator is an Executor bundled with a private match-list cache — the
// original single-goroutine API, kept for baselines, experiments and
// tests. The cache persists across Evaluate calls, warming up like the
// precomputed posting lists of the original ElasticSearch backend.
type Evaluator struct {
	Executor
}

// New returns an evaluator with its own cache. The store must be frozen.
func New(st *store.Store, opts Options) *Evaluator {
	return &Evaluator{Executor: *NewExecutor(st, NewCache(0), opts)}
}

// Cache returns the executor's match-list cache.
func (ev *Executor) Cache() *Cache { return ev.cache }

// SetMassHook installs a normalisation-mass override on the executor's
// matcher (see score.Matcher.Mass): the sharded coordinator points every
// per-shard executor at the pattern's corpus-wide match mass, so shard
// match lists carry globally normalised emission probabilities. Must be
// set before the executor serves queries; executors sharing a cache must
// agree on the hook, since cached lists are keyed by pattern text only.
func (ev *Executor) SetMassHook(f func(p query.Pattern, local float64) float64) {
	ev.matcher.Mass = f
}

// MatcherFor returns a fresh matcher configured exactly as NewExecutor
// configures its internal one (token-similarity floor, scoring
// ablations), minus the cache-backed token resolver. The sharded
// coordinator uses it to compute corpus-wide normalisation masses with
// the same configuration the per-shard executors match with.
func MatcherFor(st *store.Store, opts Options) *score.Matcher {
	m := score.NewMatcher(st)
	if opts.MinTokenSim > 0 {
		m.MinTokenSim = opts.MinTokenSim
	}
	m.UniformConf = opts.UniformConf
	m.NoNormalize = opts.NoNormalize
	m.NoTokenIndex = opts.NoTokenIndex
	return m
}

// LastTrace returns the internal processing steps of the most recent
// Evaluate call (§5: "TriniT can show internal steps").
func (ev *Executor) LastTrace() []RewriteTrace {
	return append([]RewriteTrace(nil), ev.lastTrace...)
}

// TraceLen returns the number of trace entries of the most recent
// Evaluate call without copying the trace — for callers that only need
// the length (or use it to pre-size a conversion) before deciding
// whether to pay for the LastTrace copy.
func (ev *Executor) TraceLen() int { return len(ev.lastTrace) }

// Evaluate processes the rewrites of q (the first of which must be the
// original query; the list must be sorted by descending weight, as
// produced by relax.Expander) and returns the top-k answers sorted by
// descending score, ties broken by binding key. It is Run without a
// context or per-call overrides.
func (ev *Executor) Evaluate(q *query.Query, rewrites []relax.Rewrite) ([]Answer, Metrics) {
	answers, m, _ := ev.Run(context.Background(), q, rewrites, RunConfig{})
	return answers, m
}

// Run is Evaluate with request scoping: ctx cancels the call, cfg
// overrides the executor's K, Mode and Parallelism for this call only
// and may attach a provisional-answer emit hook. Cancellation is
// checked at every rewrite boundary and every cancelCheckInterval join
// branches; a cancelled Run returns the answers found so far (ranked as
// usual) together with ctx.Err(), so callers can surface a partial
// result. With an effective parallelism above 1 the rewrites are
// evaluated by the parallel scheduler (see runParallel); the final
// ranking is byte-identical to the serial schedule.
func (ev *Executor) Run(ctx context.Context, q *query.Query, rewrites []relax.Rewrite, cfg RunConfig) ([]Answer, Metrics, error) {
	opts := ev.opts
	if cfg.K > 0 {
		opts.K = cfg.K
	}
	if cfg.ModeSet {
		opts.Mode = cfg.Mode
	}
	workers := cfg.Parallelism
	if workers == 0 {
		workers = opts.Parallelism
	}
	workers = resolveParallelism(workers)
	if workers > len(rewrites) {
		// Never spin up more workers than rewrites to hand out.
		workers = len(rewrites)
	}
	if workers > 1 {
		return ev.runParallel(ctx, q, rewrites, opts, cfg, workers)
	}

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	r := &run{Executor: ev, opts: opts, done: done, emit: cfg.Emit, noTrace: cfg.NoTrace}
	switch {
	case cfg.BudgetShare != nil:
		r.budget = &cfg.BudgetShare.budgetTracker
	case cfg.Budget.limited():
		r.budget = newBudgetTracker(cfg.Budget)
	}
	r.sc = ev.scratch
	defer func() {
		// Drop the last rewrite's env so the parked scratch does not
		// pin this run's top-k state and metrics until the next query.
		r.sc.env = joinEnv{}
		ev.scratch = r.sc
	}()

	proj := q.ProjectedVars()
	k := opts.K
	if q.Limit > 0 && q.Limit < k {
		k = q.Limit
	}

	st := newState(k, false)
	st.remote = cfg.Bound
	var m Metrics
	m.RewritesTotal = len(rewrites)
	r.m = &m
	ev.lastTrace = ev.lastTrace[:0]
	var scratch RewriteTrace
	trace := func(rw relax.Rewrite) *RewriteTrace {
		if cfg.NoTrace {
			// Hand out a reusable throwaway so evalRewrite can fill
			// its fields unconditionally without any trace surviving.
			scratch = RewriteTrace{}
			return &scratch
		}
		ids := make([]string, len(rw.Applied))
		for i, r := range rw.Applied {
			ids[i] = r.ID
		}
		ev.lastTrace = append(ev.lastTrace, RewriteTrace{
			Query:  rw.Query.String(),
			Weight: rw.Weight,
			Rules:  ids,
		})
		return &ev.lastTrace[len(ev.lastTrace)-1]
	}

	for ri, rw := range rewrites {
		if r.pollCancel() {
			status := "canceled"
			if r.exhausted {
				status = "budget"
			}
			for _, rest := range rewrites[ri:] {
				trace(rest).Status = status
			}
			break
		}
		if opts.Mode == Incremental && rw.Weight < st.threshold() {
			// No later rewrite can contribute: weights descend, and the
			// threshold stays 0 until k answers exist. The bound is
			// strict so that rewrites able to *tie* the k-th score
			// still run — ties are broken deterministically by binding
			// key, so dropping a tied answer exhaustive mode would have
			// kept could change the result set.
			m.RewritesSkipped = len(rewrites) - ri
			if st.crossShard(rw.Weight) {
				// Only the remote bound proved the tail dominated.
				m.CrossShardPrunes += len(rewrites) - ri
			}
			for _, skipped := range rewrites[ri:] {
				trace(skipped).Status = "skipped (weight bound)"
			}
			break
		}
		m.RewritesEvaluated++
		r.evalRewrite(rw, ri, proj, st, &m, trace(rw))
	}

	out := st.ranked(k)
	var err error
	switch {
	case r.exhausted:
		err = ErrBudgetExhausted
	case r.canceled && ctx != nil:
		err = ctx.Err()
	}
	return out, m, err
}

// run bundles the per-call state of one Run: the effective options (the
// executor's defaults with the RunConfig overrides applied), the
// cancellation gate, the emit hook and the evaluation scratch buffers.
// Methods that depend on per-call options hang off run; everything
// shared and immutable stays on the embedded Executor. Under a parallel
// schedule every worker owns its own run, so nothing here is ever
// shared between goroutines.
type run struct {
	*Executor
	opts Options
	// done is the context's done channel (nil when the context can
	// never be cancelled, which skips all polling).
	done <-chan struct{}
	emit func(Answer)
	// noTrace marks that trace entries are throwaways, so evalRewrite
	// skips the defensive copies of its scratch slices into them.
	noTrace bool
	// branchTick counts join branches since the last poll of done;
	// checkCancel polls every cancelCheckInterval ticks.
	branchTick int
	canceled   bool
	// m points at the Metrics this run accumulates into (the serial
	// run's totals, or a parallel worker's local counters) — the charge
	// source of budget enforcement. budget is the run's shared charge
	// account (nil = unlimited, skipping all budget work); exhausted
	// latches locally once the budget is spent, and the charged*
	// cursors mark how much of m has been charged so far.
	m               *Metrics
	budget          *budgetTracker
	exhausted       bool
	chargedBranches int64
	chargedProbes   int64
	chargedBlocks   int64
	// sc holds the buffers evalRewrite reuses across rewrites.
	sc evalScratch
}

// evalScratch is the reusable buffer set of evalRewrite: everything an
// evaluation needs that does not outlive the rewrite. Retained data —
// trace slices, answer bindings and derivations — is copied out, and
// only when actually retained. Reusing these across the rewrites of a
// run removes the bulk of the per-rewrite allocations (visible with
// -benchmem on the E5 benchmarks).
type evalScratch struct {
	textOrder []int
	lists     []*patternList
	sizes     []int
	order     []int
	suffix    []float64
	// vals is the tuple kernel's binding array, indexed by varPlan slot;
	// rdf.NoTerm marks an unbound slot. addedSlots[depth] records the
	// slots a depth bound, for O(1) rollback on backtrack.
	vals       []rdf.TermID
	addedSlots [][]int32
	triples    []store.ID
	probs      []float64
	// projSlots/fLHS/fRHS are the rewrite's projection and filter
	// variables resolved to slots (see evalRewrite).
	projSlots []int32
	fLHS      []int32
	fRHS      []int32
	keyBuf    []byte
	semiKey   []byte
	// sigBuf/plans/patStr are the run-lifetime memos of varPlanFor and
	// patKey (slots.go).
	sigBuf []byte
	plans  map[string]*varPlan
	patStr map[query.Pattern]string
	// joinOut/joinUsed/joinBound are joinOrderInto scratch.
	joinOut   []int
	joinUsed  []bool
	joinBound []bool
	// blocks[d] is the depth-d join frontier of the block kernel;
	// accBufs[d] its per-depth probability-column scratch (per depth, so
	// a recursive flush of a full block cannot clobber the column of
	// the row still being extended).
	blocks  []*joinBlock
	accBufs [][]float64
	env     joinEnv
}

// scratchSlice returns s resized to n, reusing its capacity. Elements
// are stale; callers overwrite what they read.
func scratchSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// pollCancel polls the stop conditions unconditionally — used at
// rewrite boundaries, which are rare and may follow long join phases.
// It reports true when the run must unwind: context cancelled or cost
// budget exhausted (callers distinguish via r.canceled/r.exhausted).
func (r *run) pollCancel() bool {
	if r.canceled || r.exhausted {
		return true
	}
	if r.overBudget() {
		return true
	}
	if r.done == nil {
		return false
	}
	select {
	case <-r.done:
		r.canceled = true
	default:
	}
	return r.canceled
}

// checkCancel is the tuple join loop's cancellation gate: one unit of
// work per branch against the polling interval.
func (r *run) checkCancel() bool {
	return r.pollCancelEvery(1)
}

// pollCancelEvery accounts n units of work against the cancellation
// interval and polls the done channel once the budget is spent, keeping
// the common case a counter add. The block kernel charges a whole
// emitted block at its boundary (n = the block's row count) instead of
// ticking inside the inner loop; blocks are capped at maxBlockRows, so
// cancellation latency stays bounded by a few blocks of join work.
func (r *run) pollCancelEvery(n int) bool {
	if r.canceled || r.exhausted {
		return true
	}
	if r.done == nil && r.budget == nil {
		return false
	}
	r.branchTick += n
	if r.branchTick < cancelCheckInterval {
		return false
	}
	r.branchTick = 0
	return r.pollCancel()
}

// state tracks discovered answers and the k-th score threshold. The
// threshold is maintained incrementally: top is a min-heap over the scores
// of the current best k answers, so every answer write costs O(log k) and
// every threshold read is O(1) — the seed resorted all answer scores on
// every read after a write.
//
// A state is either private to one serial run or shared by the parallel
// scheduler's workers (concurrent == true). In the concurrent case
// answer writes serialise behind mu — a short critical section — while
// the join hot path keeps reading the threshold lock-free through bits.
type state struct {
	answers map[string]*answerEntry
	k       int
	// top is the min-heap of the best min(k, len(answers)) answers; pos
	// maps an answer key to its heap index.
	top []heapEntry
	pos map[string]int
	// concurrent marks a state shared across scheduler workers: record
	// takes mu, and the threshold is read through bits only.
	concurrent bool
	mu         sync.Mutex
	// bits atomically publishes math.Float64bits of the current k-th
	// best score (0 while fewer than k answers exist), re-stored after
	// every heap update. A worker's stale read is always <= the true
	// bound — the threshold only ever rises — so pruning against it is
	// safe under staleness: extra work, never a missed answer.
	bits atomic.Uint64
	// remote, when non-nil, is an externally shared bound
	// (RunConfig.Bound): threshold reads take the max of the local and
	// remote values, and publish forwards every local rise. A remote
	// bound can only be lower than or equal to the final global k-th
	// score — each shard's k-th score only rises towards its final
	// value, which is itself <= the global one — so the same staleness
	// argument as bits applies across shards.
	remote SharedBound
}

// answerEntry is a stored answer plus the identity of the derivation
// that produced its current score: the rewrite index and the derivation
// sequence number within that rewrite, i.e. the position of the
// derivation in the canonical serial enumeration order. Among
// equal-scoring derivations of one answer the canonically earliest
// wins, which makes the stored derivation — and with it the final
// ranking — byte-identical between serial and parallel schedules.
type answerEntry struct {
	key string
	a   Answer
	ri  int
	seq int
}

type heapEntry struct {
	key   string
	score float64
}

func newState(k int, concurrent bool) *state {
	return &state{
		answers:    make(map[string]*answerEntry),
		k:          k,
		top:        make([]heapEntry, 0, k),
		pos:        make(map[string]int, k),
		concurrent: concurrent,
	}
}

// threshold returns the current k-th best answer score, or 0 when fewer
// than k answers exist. Lock-free: this is the join kernel's score-bound
// read, issued once per candidate branch. With a shared remote bound
// attached it returns the max of the local and remote values — another
// shard's proven k-th score prunes here exactly like a local one.
func (s *state) threshold() float64 {
	t := math.Float64frombits(s.bits.Load())
	if s.remote != nil {
		if rt := s.remote.Load(); rt > t {
			return rt
		}
	}
	return t
}

// crossShard reports whether a prune at the given bound is attributable
// to the remote shared bound alone: the branch or rewrite would have
// survived the local threshold. Callers invoke it only on the prune
// path, so the extra atomic load stays off the hot path.
func (s *state) crossShard(bound float64) bool {
	return s.remote != nil && bound >= math.Float64frombits(s.bits.Load())
}

// remoteAhead reports whether the remote bound currently exceeds the
// local one. The block kernel captures it alongside its block-level
// bound snapshot as the attribution proxy for tail cuts (the cut
// candidates' individual bounds are not materialised there).
func (s *state) remoteAhead() bool {
	return s.remote != nil && s.remote.Load() > math.Float64frombits(s.bits.Load())
}

// publish re-derives the atomic threshold from the heap root and, when a
// shared remote bound is attached, broadcasts the rise to the other
// shards. Callers hold mu when the state is concurrent.
func (s *state) publish() {
	if len(s.top) >= s.k {
		v := s.top[0].score
		s.bits.Store(math.Float64bits(v))
		if s.remote != nil {
			s.remote.Publish(v)
		}
	}
}

// record stores or improves an answer, materialising it with mk only if
// the write actually lands — rejected derivations cost no allocation.
// key is a scratch buffer; record copies it only when the answer is
// new. (ri, seq) identify the derivation in canonical serial order and
// break exact score ties (see answerEntry). wrote reports that the
// answer was created or improved; admitted reports that the write
// landed in the current top-k — the signal the emit hook streams.
func (s *state) record(key []byte, score float64, ri, seq int, mk func() Answer) (wrote, admitted bool) {
	if s.concurrent {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if cur, ok := s.answers[string(key)]; ok {
		if score < cur.a.Score {
			return false, false
		}
		if score == cur.a.Score {
			if ri > cur.ri || (ri == cur.ri && seq >= cur.seq) {
				return false, false
			}
			// Same score from a canonically earlier derivation: a
			// parallel schedule met the derivations out of order; keep
			// the one the serial schedule would have kept (first wins).
			// The score is unchanged, so no re-ranking and no emit.
			cur.a, cur.ri, cur.seq = mk(), ri, seq
			return true, false
		}
		// Max-over-derivations semantics (§4).
		cur.a, cur.ri, cur.seq = mk(), ri, seq
		return true, s.bump(cur.key, score)
	}
	e := &answerEntry{key: string(key), a: mk(), ri: ri, seq: seq}
	s.answers[e.key] = e
	return true, s.bump(e.key, score)
}

// bump inserts key into the top-k heap or raises its score in place,
// reporting whether the key sits in the heap afterwards. Scores only
// ever increase (max-over-derivations), so an in-heap update sifts
// towards the leaves only.
func (s *state) bump(key string, score float64) bool {
	if i, ok := s.pos[key]; ok {
		s.top[i].score = score
		s.siftDown(i)
		s.publish()
		return true
	}
	if len(s.top) < s.k {
		s.top = append(s.top, heapEntry{key, score})
		s.pos[key] = len(s.top) - 1
		s.siftUp(len(s.top) - 1)
		s.publish()
		return true
	}
	if score <= s.top[0].score {
		return false
	}
	delete(s.pos, s.top[0].key)
	s.top[0] = heapEntry{key, score}
	s.pos[key] = 0
	s.siftDown(0)
	s.publish()
	return true
}

// ranked returns the top-k answers sorted by descending score, ties
// broken by binding key. The map key IS the answer key, so no keys are
// re-derived during sorting.
func (s *state) ranked(k int) []Answer {
	rs := make([]*answerEntry, 0, len(s.answers))
	for _, e := range s.answers {
		rs = append(rs, e)
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].a.Score != rs[j].a.Score {
			return rs[i].a.Score > rs[j].a.Score
		}
		return rs[i].key < rs[j].key
	})
	if len(rs) > k {
		rs = rs[:k]
	}
	out := make([]Answer, len(rs))
	for i, e := range rs {
		out[i] = e.a
	}
	return out
}

func (s *state) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.top[p].score <= s.top[i].score {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *state) siftDown(i int) {
	for {
		small := i
		if l := 2*i + 1; l < len(s.top) && s.top[l].score < s.top[small].score {
			small = l
		}
		if r := 2*i + 2; r < len(s.top) && s.top[r].score < s.top[small].score {
			small = r
		}
		if small == i {
			return
		}
		s.swap(i, small)
		i = small
	}
}

func (s *state) swap(i, j int) {
	s.top[i], s.top[j] = s.top[j], s.top[i]
	s.pos[s.top[i].key] = i
	s.pos[s.top[j].key] = j
}

// AnswerKey appends the canonical ranking key of an answer's bindings
// over the projected variables to buf — the exact key both join kernels
// feed the top-k state, exported so a coordinator merging rankings from
// several executors breaks score ties precisely like a single run.
func AnswerKey(buf []byte, b map[string]rdf.TermID, proj []string) []byte {
	return appendAnswerKey(buf, b, proj)
}

// appendAnswerKey appends the canonical key of a binding over the
// projected variables to buf, reusing its capacity across branches.
func appendAnswerKey(buf []byte, b map[string]rdf.TermID, proj []string) []byte {
	for _, v := range proj {
		buf = append(buf, v...)
		buf = append(buf, '=')
		buf = strconv.AppendUint(buf, uint64(b[v]), 10)
		buf = append(buf, ';')
	}
	return buf
}

// joinEnv bundles the per-rewrite inputs both join kernels consume —
// the rewrite, its slot plan, match lists, join order, semi-join
// survivor masks, suffix bounds and the shared top-k state — plus the
// two counters the kernels advance: seq, the canonical enumeration
// number of complete bindings (the tie-break identity of answerEntry),
// and answers, the writes that landed, for the trace. One env lives in
// the run's scratch and is rebuilt per rewrite.
type joinEnv struct {
	rw        relax.Rewrite
	ri        int
	n         int
	proj      []string
	projSlots []int32
	filters   []query.Filter
	fLHS      []int32
	fRHS      []int32
	vp        *varPlan
	lists     []*patternList
	order     []int
	alive     [][]bool
	suffix    []float64
	state     *state
	m         *Metrics
	planFn    func(order []int) []int
	seq       int
	answers   int
}

// evalRewrite matches all patterns of one rewrite (index ri in the
// rewrite space) and joins them, filling rt with the status,
// per-pattern match counts, processed pattern order, semi-join survivor
// counts and answer count. It aborts early (leaving r.canceled set and
// the trace status "canceled") when the run's context is cancelled
// mid-join. All transient buffers come from r.sc and are reused across
// rewrites; anything that outlives the call — trace slices, answer
// bindings and derivations — is copied out, and only when retained.
//
// Join execution is block-at-a-time by default (blockJoin, block.go):
// the in-flight frontier is a batch of prefix bindings in columnar form,
// extended a whole block per depth. With NoBlockJoin — or NoHashJoin,
// which removes the buckets the block kernel batches — the
// tuple-at-a-time backtracking kernel (tupleRec) runs instead. Both
// kernels bind variables in flat slot-indexed arrays resolved by the
// rewrite's varPlan and converge in recordBinding, so answers, keys and
// derivation identity are kernel-independent.
func (r *run) evalRewrite(rw relax.Rewrite, ri int, proj []string, st *state, m *Metrics, rt *RewriteTrace) {
	ev := r.Executor
	sc := &r.sc
	pats := rw.Query.Patterns
	n := len(pats)
	defer func() {
		if r.exhausted {
			rt.Status = "budget"
		} else if r.canceled {
			rt.Status = "canceled"
		}
	}()
	if faultinject.Enabled() {
		faultinject.Fire(faultinject.SiteRewriteEval, strconv.Itoa(ri))
	}

	// Resolve this pattern set's variables to dense slots (memoised per
	// run): the kernels bind variables by slot index, and the projection
	// and filter variables resolve once, here, instead of per branch.
	vp := r.varPlanFor(pats)

	// Skip rewrites that cannot bind every projected variable.
	sc.projSlots = scratchSlice(sc.projSlots, len(proj))
	for i, v := range proj {
		s := vp.slotOf(v)
		if s < 0 {
			rt.Status = "missing projection"
			return
		}
		sc.projSlots[i] = s
	}

	// Filter operands: the variable's slot, or -1 for a constant RHS and
	// -2 for a variable the rewrite does not bind (which resolves to the
	// invalid term, exactly like the map-based kernel's zero lookup).
	filters := rw.Query.Filters
	sc.fLHS = scratchSlice(sc.fLHS, len(filters))
	sc.fRHS = scratchSlice(sc.fRHS, len(filters))
	for i, f := range filters {
		sc.fLHS[i] = vp.slotOf(f.Var)
		sc.fRHS[i] = -1
		if f.RHSVar != "" {
			if s := vp.slotOf(f.RHSVar); s >= 0 {
				sc.fRHS[i] = s
			} else {
				sc.fRHS[i] = -2
			}
		}
	}

	// Plan: build match lists in ascending estimated selectivity, so an
	// empty pattern aborts the rewrite before its siblings' lists are
	// materialised. NoPlan keeps query-text order as the baseline.
	var buildOrder []int
	if r.opts.NoPlan {
		sc.textOrder = scratchSlice(sc.textOrder, n)
		for i := range sc.textOrder {
			sc.textOrder[i] = i
		}
		buildOrder = sc.textOrder
	} else {
		buildOrder, _ = ev.planWith(pats, r.patKey)
	}

	// tracePlan is what surfaces in RewriteTrace.Plan and
	// Derivation.Plan: nil with planning off (query-text order),
	// otherwise one stable copy per rewrite, materialised lazily the
	// first time something retains it. Every call within one rewrite
	// passes the same order slice (aborts before the join-order
	// refinement return immediately), so one memo is enough.
	var planCopy []int
	tracePlan := func(order []int) []int {
		if r.opts.NoPlan {
			return nil
		}
		if planCopy == nil {
			planCopy = append([]int(nil), order...)
		}
		return planCopy
	}
	// setTrace fills the retained trace fields, skipping the defensive
	// scratch copies when the trace is a throwaway.
	setTrace := func(status string, order []int) {
		rt.Status = status
		if r.noTrace {
			return
		}
		rt.PatternMatches = append([]int(nil), sc.sizes[:n]...)
		rt.Plan = tracePlan(order)
	}

	sc.lists = scratchSlice(sc.lists, n)
	sc.sizes = scratchSlice(sc.sizes, n)
	lists, sizes := sc.lists, sc.sizes
	for i := 0; i < n; i++ {
		lists[i], sizes[i] = nil, 0
	}
	for _, pi := range buildOrder {
		// List builds can dominate a rewrite's cost (full-range scan
		// fallbacks), so cancellation is polled per pattern — not only
		// at rewrite boundaries and join branches.
		if r.pollCancel() {
			return
		}
		p := pats[pi]
		key := r.patKey(p)
		pl, stats, built := ev.cache.get(key, func() ([]score.Match, score.MatchStats) {
			faultinject.Fire(faultinject.SiteListBuild, key)
			return ev.matcher.MatchPatternCounted(p)
		})
		if built {
			m.PatternsMatched++
			m.IndexScanned += stats.IndexScanned
			m.TokenResolutions += stats.TokenResolutions
			if stats.ScanFallback {
				m.ScanFallbacks++
			}
		}
		lists[pi] = pl
		sizes[pi] = len(pl.matches)
		if len(pl.matches) == 0 {
			setTrace("no matches", buildOrder)
			return
		}
	}

	// Join order: the planner's estimate order, refined by the exact
	// list lengths now known (stable, so equal lengths keep the planned
	// order), then — for the hash kernel — reordered so every pattern
	// shares a variable with the already-joined prefix where the pattern
	// graph allows it (the adjacency comes pre-resolved from the
	// varPlan). NoPlan joins in query-text order.
	order := buildOrder
	if !r.opts.NoPlan {
		sc.order = append(sc.order[:0], buildOrder...)
		order = sc.order
		sort.SliceStable(order, func(a, b int) bool {
			return len(lists[order[a]].matches) < len(lists[order[b]].matches)
		})
		if !r.opts.NoHashJoin && n > 2 {
			sc.joinOut = scratchSlice(sc.joinOut, n)
			sc.joinUsed = scratchSlice(sc.joinUsed, n)
			sc.joinBound = scratchSlice(sc.joinBound, len(vp.names))
			for i := range sc.joinUsed {
				sc.joinUsed[i] = false
			}
			for i := range sc.joinBound {
				sc.joinBound[i] = false
			}
			order = vp.joinOrderInto(order, sc.joinOut, sc.joinUsed, sc.joinBound)
			sc.joinOut = order
		}
	}

	// Semi-join reduction: prune entries with no join partner in some
	// neighbouring pattern before enumeration. An emptied list proves
	// the rewrite can produce no complete binding. The reduction is a
	// pure function of the (immutable, cached) lists, so its result is
	// fetched from the cache's side map and computed once per pattern
	// set, not once per rewrite evaluation.
	var alive [][]bool
	var semiHead []float64
	if !r.opts.NoHashJoin && !r.opts.NoSemiJoin && n > 1 {
		if r.pollCancel() {
			return
		}
		sc.semiKey = sc.semiKey[:0]
		for _, p := range pats {
			sc.semiKey = append(sc.semiKey, r.patKey(p)...)
			sc.semiKey = append(sc.semiKey, 0)
		}
		res := ev.cache.semiJoin(sc.semiKey, lists[:n], m)
		alive = res.alive
		semiHead = res.headProb
		rt.SemiJoinKept = res.liveCount
		for _, c := range res.liveCount {
			if c == 0 {
				setTrace("no matches (semi-join)", order)
				return
			}
		}
	}

	// suffixBound[i] = product of head probabilities of patterns i..n-1
	// in join order: the best possible completion of a partial join.
	// After semi-join reduction the head is the best *surviving* entry,
	// still an upper bound on any completion.
	sc.suffix = scratchSlice(sc.suffix, n+1)
	suffixBound := sc.suffix
	suffixBound[n] = 1
	for i := n - 1; i >= 0; i-- {
		h := lists[order[i]].matches[0].Prob
		if semiHead != nil {
			h = semiHead[order[i]]
		}
		suffixBound[i] = suffixBound[i+1] * h
	}

	e := &sc.env
	*e = joinEnv{
		rw:        rw,
		ri:        ri,
		n:         n,
		proj:      proj,
		projSlots: sc.projSlots,
		filters:   filters,
		fLHS:      sc.fLHS,
		fRHS:      sc.fRHS,
		vp:        vp,
		lists:     lists,
		order:     order,
		alive:     alive,
		suffix:    suffixBound,
		state:     st,
		m:         m,
		planFn:    tracePlan,
	}
	sc.vals = scratchSlice(sc.vals, len(vp.names))
	for i := range sc.vals {
		sc.vals[i] = rdf.NoTerm
	}
	sc.triples = scratchSlice(sc.triples, n)
	sc.probs = scratchSlice(sc.probs, n)
	// Block-at-a-time execution is for joins: a single-pattern rewrite
	// has no frontier to batch (the "frontier" is one unbound seed row),
	// so it takes the plain bounded list scan of the tuple kernel.
	if !r.opts.NoHashJoin && !r.opts.NoBlockJoin && n > 1 {
		r.blockJoin(e)
	} else {
		sc.addedSlots = scratchSlice(sc.addedSlots, n)
		r.tupleRec(e, 0, 1)
	}
	setTrace("evaluated", order)
	rt.Answers = e.answers
}

// tupleRec is the tuple-at-a-time join: the original backtracking
// enumeration, over slot-indexed bindings in sc.vals. depth indexes
// e.order; partial is the running probability of the bound prefix.
func (r *run) tupleRec(e *joinEnv, depth int, partial float64) {
	sc := &r.sc
	if depth == e.n {
		if !r.passFilters(e, sc.vals) {
			return
		}
		r.recordBinding(e, e.rw.Weight*partial, sc.vals, sc.triples, sc.probs)
		return
	}
	pi := e.order[depth]
	pl := e.lists[pi]
	slots := e.vp.pats[pi]
	// Candidate enumeration: when a variable of this pattern is already
	// bound by the prefix, probe its hash bucket — the smallest one, if
	// several variables are bound — instead of scanning the whole list.
	// Buckets hold positions in list order (descending probability), so
	// the score-bound pruning below behaves exactly as it would mid-scan.
	var cand []int32
	probe := false
	if !r.opts.NoHashJoin {
		for vi := range slots {
			if t := sc.vals[slots[vi]]; t != rdf.NoTerm {
				b := pl.buckets[vi][t]
				if !probe || len(b) < len(cand) {
					cand, probe = b, true
				}
			}
		}
	}
	limit := len(pl.matches)
	if probe {
		e.m.HashProbes++
		limit = len(cand)
	}
	for ci := 0; ci < limit; ci++ {
		if r.checkCancel() {
			return
		}
		p := ci
		if probe {
			p = int(cand[ci])
		}
		if e.alive != nil && e.alive[pi] != nil && !e.alive[pi][p] {
			continue
		}
		match := &pl.matches[p]
		// Reading the next entry of the score-sorted list is one
		// sorted access.
		e.m.SortedAccesses++
		if r.opts.Mode == Incremental {
			bound := e.rw.Weight * partial * match.Prob * e.suffix[depth+1]
			if bound < e.state.threshold() {
				// The threshold is 0 until k answers exist, so this
				// never fires early. Matches are sorted by descending
				// probability: all remaining are worse. Strictly worse
				// only — a branch that can still tie the k-th score
				// must run so the deterministic tie-break over the full
				// tied set matches exhaustive mode byte for byte.
				e.m.PrunedBranches++
				if e.state.crossShard(bound) {
					e.m.CrossShardPrunes++
				}
				break
			}
		}
		e.m.JoinBranches++
		// Check binding consistency against the prefix and extend.
		added := sc.addedSlots[depth][:0]
		ok := true
		for bi, s := range slots {
			term := match.Bindings[bi].Term
			if cur := sc.vals[s]; cur != rdf.NoTerm {
				if cur != term {
					ok = false
					break
				}
			} else {
				sc.vals[s] = term
				added = append(added, s)
			}
		}
		if ok {
			sc.triples[pi] = match.Triple
			sc.probs[pi] = match.Prob
			r.tupleRec(e, depth+1, partial*match.Prob)
		}
		for _, s := range added {
			sc.vals[s] = rdf.NoTerm
		}
		sc.addedSlots[depth] = added[:0]
	}
}

// passFilters applies the rewrite's FILTER constraints to a complete
// binding. vals is indexed by slot; operand slots below zero resolve to
// the invalid term, matching the map-based kernel's zero-value lookup
// for variables the rewrite does not bind.
func (r *run) passFilters(e *joinEnv, vals []rdf.TermID) bool {
	for i, f := range e.filters {
		var lt rdf.TermID
		if s := e.fLHS[i]; s >= 0 {
			lt = vals[s]
		}
		lhs := r.st.Dict().Term(lt).Text
		rhs := f.Value.Text
		switch s := e.fRHS[i]; {
		case s >= 0:
			rhs = r.st.Dict().Term(vals[s]).Text
		case s == -2:
			rhs = r.st.Dict().Term(rdf.NoTerm).Text
		}
		if !query.EvalFilter(f.Op, lhs, rhs) {
			return false
		}
	}
	return true
}

// recordBinding materialises one complete binding (filters already
// applied): it assigns the binding's canonical sequence number, renders
// the answer key over the projected slots and offers the answer to the
// top-k state. vals is indexed by slot, triples and probs by pattern
// index. Both kernels converge here, so keys, scores, derivations and
// tie-break identity are kernel-independent by construction.
func (r *run) recordBinding(e *joinEnv, total float64, vals []rdf.TermID, triples []store.ID, probs []float64) {
	sc := &r.sc
	e.seq++
	buf := sc.keyBuf[:0]
	for i, v := range e.proj {
		buf = append(buf, v...)
		buf = append(buf, '=')
		buf = strconv.AppendUint(buf, uint64(vals[e.projSlots[i]]), 10)
		buf = append(buf, ';')
	}
	sc.keyBuf = buf
	// The answer is materialised (bindings projected, triples and
	// probabilities copied) only if the write lands.
	var stored Answer
	wrote, admitted := e.state.record(buf, total, e.ri, e.seq, func() Answer {
		b := make(map[string]rdf.TermID, len(e.proj))
		for i, v := range e.proj {
			b[v] = vals[e.projSlots[i]]
		}
		stored = Answer{
			Bindings: b,
			Score:    total,
			Derivation: Derivation{
				Rewrite:      e.rw,
				Triples:      append([]store.ID(nil), triples...),
				PatternProbs: append([]float64(nil), probs...),
				Plan:         e.planFn(e.order),
			},
		}
		return stored
	})
	if wrote {
		e.answers++
	}
	if admitted && r.emit != nil {
		r.emit(stored)
	}
}
