// Package topk implements TriniT's top-k query processor (§4): an
// adaptation of the incremental top-k algorithm of Theobald et al. [11].
//
// The processor consumes the rewrite space of a query (original query plus
// relaxations, in descending derivation-weight order) and merges their
// answers incrementally:
//
//   - a rewrite is evaluated only while its weight — an upper bound on the
//     score of any answer it can produce — exceeds the current k-th answer
//     score ("invoking a relaxation only when it can contribute to the
//     top-k answers");
//   - within a rewrite, per-pattern match lists are accessed in sorted
//     order of emission probability, and join branches are pruned as soon
//     as their best-possible completion falls below the k-th answer score
//     ("going only as far as necessary into each triple pattern index
//     list").
//
// The same evaluator also runs in exhaustive mode — materialising every
// rewrite completely — which serves as the correctness reference and as
// the cost baseline of experiment E5.
package topk

import (
	"sort"
	"strings"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/score"
	"trinit/internal/store"
)

// Mode selects the processing strategy.
type Mode int

const (
	// Incremental is the paper's adaptive top-k strategy.
	Incremental Mode = iota
	// Exhaustive evaluates every rewrite fully; the baseline.
	Exhaustive
)

// Options configure evaluation.
type Options struct {
	// K is the number of answers to return (default 10).
	K int
	// Mode selects incremental or exhaustive processing.
	Mode Mode
	// MinTokenSim is the token-slot similarity threshold, forwarded to
	// the pattern matcher (0 = matcher default).
	MinTokenSim float64
	// UniformConf and NoNormalize ablate the tf-like and idf-like
	// effects of the scoring model (experiment E8); forwarded to the
	// pattern matcher.
	UniformConf bool
	NoNormalize bool
	// NoPlan disables join planning entirely: match lists are built
	// and joined in query-text pattern order. It is the naive cost
	// baseline for planner measurements — note it is *below* the
	// pre-planner behaviour, which already sorted the join order by
	// exact list length after building every list. Answers are
	// identical either way.
	NoPlan bool
}

// Answer is one ranked result: a binding of the query's projected
// variables with its score and best derivation.
type Answer struct {
	// Bindings maps projected variable names to bound terms.
	Bindings map[string]rdf.TermID
	// Score is the maximal score over all derivations of this answer.
	Score float64
	// Derivation is the derivation that achieved Score.
	Derivation Derivation
}

// Derivation records how an answer was obtained — the raw material of the
// demo's answer-explanation feature.
type Derivation struct {
	// Rewrite is the rewrite (query + applied rules + weight) that
	// produced the answer.
	Rewrite relax.Rewrite
	// Triples holds one matched triple per pattern of Rewrite.Query, in
	// pattern order.
	Triples []store.ID
	// PatternProbs holds the per-pattern emission probabilities.
	PatternProbs []float64
	// Plan holds the pattern indices in the join order the planner
	// chose (nil means query-text order). Shared, read-only.
	Plan []int
}

// Metrics quantify the work done, for the E5 efficiency experiment.
type Metrics struct {
	// RewritesTotal is the size of the supplied rewrite space.
	RewritesTotal int
	// RewritesEvaluated counts rewrites whose patterns were matched.
	RewritesEvaluated int
	// RewritesSkipped counts rewrites pruned by the weight bound.
	RewritesSkipped int
	// SortedAccesses counts entries consumed from the score-sorted
	// per-pattern match lists during join processing — the paper's
	// "going only as far as necessary into each triple pattern index
	// list" is visible as a reduction of this number.
	SortedAccesses int
	// IndexScanned counts posting-list entries touched while building
	// the per-pattern lists (the index-lookup cost; shared lists are
	// built once and reused across rewrites).
	IndexScanned int
	// PatternsMatched counts per-pattern list constructions; cache hits
	// across rewrites do not count.
	PatternsMatched int
	// JoinBranches counts candidate combinations explored during joins.
	JoinBranches int
	// PrunedBranches counts join branches cut by the score bound.
	PrunedBranches int
}

// RewriteTrace records what happened to one rewrite during processing —
// the "internal steps" view of the §5 demo.
type RewriteTrace struct {
	// Query is the rewritten query text.
	Query string
	// Weight is the derivation weight.
	Weight float64
	// Rules lists the IDs of the applied rules.
	Rules []string
	// Status is "evaluated", "skipped (weight bound)", "no matches",
	// or "missing projection".
	Status string
	// PatternMatches holds the match-list length per pattern (only for
	// evaluated rewrites; patterns skipped by a planner early-abort
	// stay 0).
	PatternMatches []int
	// Plan holds the pattern indices in the order the planner processed
	// them (nil when the rewrite was not matched or planning is off).
	Plan []int
	// Answers counts answers created or improved by this rewrite.
	Answers int
}

// Executor runs top-k processing for one query at a time against a frozen
// store, fetching score-sorted per-pattern match lists from a shared
// Cache. The executor itself carries only per-query state (the trace of
// its latest Evaluate call), so an engine can keep a pool of executors
// and run queries concurrently — all heavy state lives in the store and
// the cache, both safe for concurrent readers. A single Executor must not
// be shared by concurrent Evaluate calls.
type Executor struct {
	st      *store.Store
	opts    Options
	matcher *score.Matcher
	cache   *Cache
	// lastTrace records the rewrite-by-rewrite processing steps of the
	// most recent Evaluate call.
	lastTrace []RewriteTrace
}

// NewExecutor returns an executor over a shared match-list cache. The
// store must be frozen. Executors built over the same cache share match
// lists and planner estimates; their matcher options must agree, since
// cached lists are keyed by pattern text only.
func NewExecutor(st *store.Store, cache *Cache, opts Options) *Executor {
	if opts.K <= 0 {
		opts.K = 10
	}
	if cache == nil {
		cache = NewCache(0)
	}
	matcher := score.NewMatcher(st)
	if opts.MinTokenSim > 0 {
		matcher.MinTokenSim = opts.MinTokenSim
	}
	matcher.UniformConf = opts.UniformConf
	matcher.NoNormalize = opts.NoNormalize
	return &Executor{
		st:      st,
		opts:    opts,
		matcher: matcher,
		cache:   cache,
	}
}

// Evaluator is an Executor bundled with a private match-list cache — the
// original single-goroutine API, kept for baselines, experiments and
// tests. The cache persists across Evaluate calls, warming up like the
// precomputed posting lists of the original ElasticSearch backend.
type Evaluator struct {
	Executor
}

// New returns an evaluator with its own cache. The store must be frozen.
func New(st *store.Store, opts Options) *Evaluator {
	return &Evaluator{Executor: *NewExecutor(st, NewCache(0), opts)}
}

// Cache returns the executor's match-list cache.
func (ev *Executor) Cache() *Cache { return ev.cache }

// LastTrace returns the internal processing steps of the most recent
// Evaluate call (§5: "TriniT can show internal steps").
func (ev *Executor) LastTrace() []RewriteTrace {
	return append([]RewriteTrace(nil), ev.lastTrace...)
}

// SetK changes the default answer count for subsequent Evaluate calls,
// keeping the warmed pattern-list cache.
func (ev *Executor) SetK(k int) {
	if k > 0 {
		ev.opts.K = k
	}
}

// Evaluate processes the rewrites of q (the first of which must be the
// original query; the list must be sorted by descending weight, as
// produced by relax.Expander) and returns the top-k answers sorted by
// descending score, ties broken by binding key.
func (ev *Executor) Evaluate(q *query.Query, rewrites []relax.Rewrite) ([]Answer, Metrics) {
	proj := q.ProjectedVars()
	k := ev.opts.K
	if q.Limit > 0 && q.Limit < k {
		k = q.Limit
	}

	st := &state{
		answers: make(map[string]*Answer),
		k:       k,
		dirty:   true,
	}
	var m Metrics
	m.RewritesTotal = len(rewrites)
	ev.lastTrace = ev.lastTrace[:0]
	trace := func(rw relax.Rewrite) *RewriteTrace {
		ids := make([]string, len(rw.Applied))
		for i, r := range rw.Applied {
			ids[i] = r.ID
		}
		ev.lastTrace = append(ev.lastTrace, RewriteTrace{
			Query:  rw.Query.String(),
			Weight: rw.Weight,
			Rules:  ids,
		})
		return &ev.lastTrace[len(ev.lastTrace)-1]
	}

	for ri, rw := range rewrites {
		if ev.opts.Mode == Incremental && len(st.answers) >= k && rw.Weight <= st.threshold() {
			// No later rewrite can contribute: weights descend.
			m.RewritesSkipped = len(rewrites) - ri
			for _, skipped := range rewrites[ri:] {
				trace(skipped).Status = "skipped (weight bound)"
			}
			break
		}
		m.RewritesEvaluated++
		rt := trace(rw)
		before := st.writes
		status, sizes, plan := ev.evalRewrite(rw, proj, st, &m)
		rt.Status = status
		rt.PatternMatches = sizes
		rt.Plan = plan
		rt.Answers = st.writes - before
	}

	out := make([]Answer, 0, len(st.answers))
	for _, a := range st.answers {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return answerKey(out[i].Bindings, proj) < answerKey(out[j].Bindings, proj)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, m
}

// state tracks discovered answers and the k-th score threshold.
type state struct {
	answers map[string]*Answer
	k       int
	dirty   bool
	cached  float64
	// writes counts answers created or improved, for tracing.
	writes int
}

// threshold returns the current k-th best answer score, or 0 when fewer
// than k answers exist.
func (s *state) threshold() float64 {
	if !s.dirty {
		return s.cached
	}
	s.dirty = false
	if len(s.answers) < s.k {
		s.cached = 0
		return 0
	}
	scores := make([]float64, 0, len(s.answers))
	for _, a := range s.answers {
		scores = append(scores, a.Score)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	s.cached = scores[s.k-1]
	return s.cached
}

func (s *state) record(key string, a Answer) {
	if cur, ok := s.answers[key]; ok {
		// Max-over-derivations semantics (§4).
		if a.Score > cur.Score {
			*cur = a
			s.dirty = true
			s.writes++
		}
		return
	}
	cp := a
	s.answers[key] = &cp
	s.dirty = true
	s.writes++
}

func answerKey(b map[string]rdf.TermID, proj []string) string {
	var sb strings.Builder
	for _, v := range proj {
		sb.WriteString(v)
		sb.WriteByte('=')
		id := b[v]
		sb.WriteString(termIDString(id))
		sb.WriteByte(';')
	}
	return sb.String()
}

func termIDString(id rdf.TermID) string {
	const digits = "0123456789"
	if id == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = digits[id%10]
		id /= 10
	}
	return string(buf[i:])
}

// evalRewrite matches all patterns of one rewrite and joins them. It
// returns a status string, per-pattern match counts, and the processed
// pattern order for the trace.
func (ev *Executor) evalRewrite(rw relax.Rewrite, proj []string, st *state, m *Metrics) (string, []int, []int) {
	pats := rw.Query.Patterns
	n := len(pats)

	// Skip rewrites that cannot bind every projected variable.
	bound := make(map[string]bool)
	for _, p := range pats {
		for _, v := range p.Vars() {
			bound[v] = true
		}
	}
	for _, v := range proj {
		if !bound[v] {
			return "missing projection", nil, nil
		}
	}

	// Plan: build match lists in ascending estimated selectivity, so an
	// empty pattern aborts the rewrite before its siblings' lists are
	// materialised. NoPlan keeps query-text order as the baseline.
	var buildOrder []int
	if ev.opts.NoPlan {
		buildOrder = make([]int, n)
		for i := range buildOrder {
			buildOrder[i] = i
		}
	} else {
		buildOrder, _ = ev.plan(pats)
	}

	// tracePlan is what surfaces in RewriteTrace.Plan and
	// Derivation.Plan: nil with planning off (query-text order).
	tracePlan := func(order []int) []int {
		if ev.opts.NoPlan {
			return nil
		}
		return order
	}

	lists := make([][]score.Match, n)
	sizes := make([]int, n)
	for _, pi := range buildOrder {
		p := pats[pi]
		matches, accesses, built := ev.cache.get(p.String(), func() ([]score.Match, int) {
			return ev.matcher.MatchPatternCounted(p)
		})
		if built {
			m.PatternsMatched++
			m.IndexScanned += accesses
		}
		lists[pi] = matches
		sizes[pi] = len(matches)
		if len(matches) == 0 {
			return "no matches", sizes, tracePlan(buildOrder)
		}
	}

	// Join order: the planner's estimate order, refined by the exact
	// list lengths now known (stable, so equal lengths keep the planned
	// order). NoPlan joins in query-text order.
	order := buildOrder
	if !ev.opts.NoPlan {
		order = append([]int(nil), buildOrder...)
		sort.SliceStable(order, func(a, b int) bool {
			return len(lists[order[a]]) < len(lists[order[b]])
		})
	}

	// suffixBound[i] = product of head probabilities of patterns i..n-1
	// in join order: the best possible completion of a partial join.
	suffixBound := make([]float64, n+1)
	suffixBound[n] = 1
	for i := n - 1; i >= 0; i-- {
		suffixBound[i] = suffixBound[i+1] * lists[order[i]][0].Prob
	}

	bindings := make(map[string]rdf.TermID)
	triples := make([]store.ID, n)
	probs := make([]float64, n)

	var rec func(depth int, partial float64)
	rec = func(depth int, partial float64) {
		if depth == n {
			// Apply the query's FILTER constraints to the complete
			// binding before recording the answer.
			for _, f := range rw.Query.Filters {
				lhs := ev.st.Dict().Term(bindings[f.Var]).Text
				rhs := f.Value.Text
				if f.RHSVar != "" {
					rhs = ev.st.Dict().Term(bindings[f.RHSVar]).Text
				}
				if !query.EvalFilter(f.Op, lhs, rhs) {
					return
				}
			}
			ans := Answer{
				Bindings: projected(bindings, proj),
				Score:    rw.Weight * partial,
				Derivation: Derivation{
					Rewrite:      rw,
					Triples:      append([]store.ID(nil), triples...),
					PatternProbs: append([]float64(nil), probs...),
					Plan:         tracePlan(order),
				},
			}
			st.record(answerKey(ans.Bindings, proj), ans)
			return
		}
		pi := order[depth]
		for _, match := range lists[pi] {
			// Reading the next entry of the score-sorted list is
			// one sorted access.
			m.SortedAccesses++
			if ev.opts.Mode == Incremental && len(st.answers) >= st.k {
				bound := rw.Weight * partial * match.Prob * suffixBound[depth+1]
				if bound <= st.threshold() {
					// Matches are sorted by descending
					// probability: all remaining are worse.
					m.PrunedBranches++
					break
				}
			}
			m.JoinBranches++
			// Check binding consistency and extend.
			var added []string
			ok := true
			for _, b := range match.Bindings {
				if cur, exists := bindings[b.Var]; exists {
					if cur != b.Term {
						ok = false
						break
					}
				} else {
					bindings[b.Var] = b.Term
					added = append(added, b.Var)
				}
			}
			if ok {
				triples[pi] = match.Triple
				probs[pi] = match.Prob
				rec(depth+1, partial*match.Prob)
			}
			for _, v := range added {
				delete(bindings, v)
			}
		}
	}
	rec(0, 1)
	return "evaluated", sizes, tracePlan(order)
}

func projected(bindings map[string]rdf.TermID, proj []string) map[string]rdf.TermID {
	out := make(map[string]rdf.TermID, len(proj))
	for _, v := range proj {
		out[v] = bindings[v]
	}
	return out
}
