package topk

import (
	"math"
	"math/rand"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

// demoXKG builds the Figure 1 KG plus the Figure 3 extension.
func demoXKG() *store.Store {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("Ulm"), rdf.Resource("locatedIn"), rdf.Resource("Germany"))
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Resource("bornOn"), rdf.Literal("1879-03-14"), rdf.SourceKG, 1, rdf.NoProv)
	st.AddKG(rdf.Resource("AlfredKleiner"), rdf.Resource("hasStudent"), rdf.Resource("AlbertEinstein"))
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("affiliation"), rdf.Resource("IAS"))
	st.AddKG(rdf.Resource("PrincetonUniversity"), rdf.Resource("member"), rdf.Resource("IvyLeague"))
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("won Nobel for"), rdf.Token("discovery of the photoelectric effect"), rdf.SourceXKG, 0.9, rdf.NoProv)
	st.AddFact(rdf.Resource("IAS"), rdf.Token("housed in"), rdf.Resource("PrincetonUniversity"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("lectured at"), rdf.Resource("PrincetonUniversity"), rdf.SourceXKG, 0.7, rdf.NoProv)
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("met his teacher"), rdf.Token("Prof. Kleiner"), rdf.SourceXKG, 0.6, rdf.NoProv)
	st.Freeze()
	return st
}

// figure4 returns the paper's example relaxation rules (rule 1 without the
// type constraints, which the Figure 1 KG does not carry).
func figure4() []*relax.Rule {
	return []*relax.Rule{
		relax.MustParseRule("r1", "?x bornIn ?y => ?x bornIn ?z ; ?z locatedIn ?y", 1.0, "manual"),
		relax.MustParseRule("r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual"),
		relax.MustParseRule("r3", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y", 0.8, "manual"),
		relax.MustParseRule("r4", "?x affiliation ?y => ?x 'lectured at' ?y", 0.7, "manual"),
	}
}

func evaluate(t *testing.T, st *store.Store, qs string, rules []*relax.Rule, mode Mode, k int) ([]Answer, Metrics) {
	t.Helper()
	q := query.MustParse(qs)
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(rules).Expand(q)
	ev := New(st, Options{K: k, Mode: mode})
	ans, m := ev.Evaluate(q, rewrites)
	return ans, m
}

func bindingText(st *store.Store, a Answer, v string) string {
	return st.Dict().Term(a.Bindings[v]).Text
}

func TestUserAQueryRelaxedToCity(t *testing.T) {
	st := demoXKG()
	// User A: "Who was born in Germany?" — empty on the raw KG because
	// people are born in cities.
	ans, _ := evaluate(t, st, "?x bornIn Germany", nil, Incremental, 10)
	if len(ans) != 0 {
		t.Fatalf("unrelaxed query returned %v", ans)
	}
	ans, _ = evaluate(t, st, "?x bornIn Germany", figure4(), Incremental, 10)
	if len(ans) != 1 {
		t.Fatalf("relaxed answers = %d, want 1", len(ans))
	}
	if got := bindingText(st, ans[0], "x"); got != "AlbertEinstein" {
		t.Fatalf("answer = %s", got)
	}
	if len(ans[0].Derivation.Rewrite.Applied) != 1 || ans[0].Derivation.Rewrite.Applied[0].ID != "r1" {
		t.Fatalf("derivation = %+v", ans[0].Derivation.Rewrite.Applied)
	}
}

func TestUserBQueryInverted(t *testing.T) {
	st := demoXKG()
	// User B: "Who was the advisor of Albert Einstein?"
	ans, _ := evaluate(t, st, "AlbertEinstein hasAdvisor ?x", figure4(), Incremental, 10)
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want 1", len(ans))
	}
	if got := bindingText(st, ans[0], "x"); got != "AlfredKleiner" {
		t.Fatalf("advisor = %s", got)
	}
	if ans[0].Score != 1.0 {
		t.Fatalf("score = %v, want 1.0 (weight-1 rule, unique matches)", ans[0].Score)
	}
}

func TestUserCQueryIvyLeague(t *testing.T) {
	st := demoXKG()
	// User C: "Ivy League university Einstein was affiliated with."
	ans, _ := evaluate(t, st, "SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }", figure4(), Incremental, 10)
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want 1", len(ans))
	}
	if got := bindingText(st, ans[0], "x"); got != "PrincetonUniversity" {
		t.Fatalf("answer = %s", got)
	}
	// Max over derivations: rule 3 (0.8) wins over rule 4 (0.7).
	if math.Abs(ans[0].Score-0.8) > 1e-12 {
		t.Fatalf("score = %v, want 0.8", ans[0].Score)
	}
	if ans[0].Derivation.Rewrite.Applied[0].ID != "r3" {
		t.Fatalf("best derivation rule = %s, want r3", ans[0].Derivation.Rewrite.Applied[0].ID)
	}
}

func TestUserDQueryTokenPattern(t *testing.T) {
	st := demoXKG()
	// User D: "What did Albert Einstein win a Nobel prize for?" — no KG
	// predicate exists; the XKG token triple answers it directly.
	ans, _ := evaluate(t, st, "AlbertEinstein 'won nobel for' ?x", nil, Incremental, 10)
	if len(ans) != 1 {
		t.Fatalf("answers = %d, want 1", len(ans))
	}
	if got := bindingText(st, ans[0], "x"); got != "discovery of the photoelectric effect" {
		t.Fatalf("answer = %q", got)
	}
}

func TestDerivationRecordsTriples(t *testing.T) {
	st := demoXKG()
	ans, _ := evaluate(t, st, "SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }", figure4(), Incremental, 10)
	d := ans[0].Derivation
	if len(d.Triples) != len(d.Rewrite.Query.Patterns) {
		t.Fatalf("derivation triples = %d, patterns = %d", len(d.Triples), len(d.Rewrite.Query.Patterns))
	}
	for i, id := range d.Triples {
		tr := st.Triple(id)
		_ = tr
		if d.PatternProbs[i] <= 0 || d.PatternProbs[i] > 1 {
			t.Fatalf("pattern prob = %v", d.PatternProbs[i])
		}
	}
}

func TestLimitOverridesK(t *testing.T) {
	st := demoXKG()
	ans, _ := evaluate(t, st, "?x ?p ?y LIMIT 3", nil, Incremental, 10)
	if len(ans) != 3 {
		t.Fatalf("answers = %d, want LIMIT 3", len(ans))
	}
}

func TestKTruncation(t *testing.T) {
	st := demoXKG()
	ans, _ := evaluate(t, st, "?x ?p ?y", nil, Exhaustive, 4)
	if len(ans) != 4 {
		t.Fatalf("answers = %d, want 4", len(ans))
	}
	for i := 1; i < len(ans); i++ {
		if ans[i-1].Score < ans[i].Score {
			t.Fatal("answers not sorted by score")
		}
	}
}

func TestFullyBoundQuery(t *testing.T) {
	st := demoXKG()
	ans, _ := evaluate(t, st, "AlbertEinstein bornIn Ulm", nil, Incremental, 10)
	if len(ans) != 1 {
		t.Fatalf("fully bound true query: %d answers", len(ans))
	}
	if ans[0].Score != 1 {
		t.Fatalf("score = %v", ans[0].Score)
	}
	ans, _ = evaluate(t, st, "AlbertEinstein bornIn Germany", nil, Incremental, 10)
	if len(ans) != 0 {
		t.Fatalf("fully bound false query: %d answers", len(ans))
	}
}

func TestIncrementalSkipsLowWeightRewrites(t *testing.T) {
	st := demoXKG()
	// The direct answer exists; weight-0.1 relaxations cannot beat it
	// once k=1 answers are found.
	rules := []*relax.Rule{
		relax.MustParseRule("weak", "?x bornIn ?y => ?x 'lectured at' ?y", 0.1, "manual"),
	}
	_, m := evaluate(t, st, "AlbertEinstein bornIn ?y LIMIT 1", rules, Incremental, 1)
	if m.RewritesSkipped == 0 {
		t.Fatalf("no rewrites skipped: %+v", m)
	}
	_, mx := evaluate(t, st, "AlbertEinstein bornIn ?y LIMIT 1", rules, Exhaustive, 1)
	if mx.RewritesSkipped != 0 {
		t.Fatalf("exhaustive mode skipped rewrites: %+v", mx)
	}
	if mx.RewritesEvaluated <= m.RewritesEvaluated {
		t.Fatalf("exhaustive evaluated %d <= incremental %d", mx.RewritesEvaluated, m.RewritesEvaluated)
	}
}

func TestIncrementalMatchesExhaustiveOnDemo(t *testing.T) {
	st := demoXKG()
	queries := []string{
		"?x bornIn Germany",
		"AlbertEinstein hasAdvisor ?x",
		"SELECT ?x WHERE { AlbertEinstein affiliation ?x . ?x member IvyLeague }",
		"AlbertEinstein 'won nobel for' ?x",
		"?x ?p PrincetonUniversity",
		"?x bornIn ?y . ?y locatedIn ?z",
	}
	for _, qs := range queries {
		inc, _ := evaluate(t, st, qs, figure4(), Incremental, 5)
		exh, _ := evaluate(t, st, qs, figure4(), Exhaustive, 5)
		if len(inc) != len(exh) {
			t.Fatalf("%s: incremental %d answers, exhaustive %d", qs, len(inc), len(exh))
		}
		for i := range inc {
			if math.Abs(inc[i].Score-exh[i].Score) > 1e-12 {
				t.Fatalf("%s: answer %d score %v vs %v", qs, i, inc[i].Score, exh[i].Score)
			}
			for v, id := range inc[i].Bindings {
				if exh[i].Bindings[v] != id {
					t.Fatalf("%s: answer %d binding %s differs", qs, i, v)
				}
			}
		}
	}
}

// Property: on random stores, queries and rules, incremental and exhaustive
// processing return identical top-k answers and scores.
func TestIncrementalEquivalentToExhaustiveProperty(t *testing.T) {
	gen := rand.New(rand.NewSource(99))
	ents := []string{"A", "B", "C", "D", "E"}
	preds := []string{"p", "q", "r"}
	for round := 0; round < 40; round++ {
		st := store.New(nil, nil)
		n := 5 + gen.Intn(25)
		for i := 0; i < n; i++ {
			conf := 0.2 + 0.8*gen.Float64()
			src := rdf.SourceXKG
			if gen.Intn(2) == 0 {
				conf = 1
				src = rdf.SourceKG
			}
			st.AddFact(
				rdf.Resource(ents[gen.Intn(len(ents))]),
				rdf.Resource(preds[gen.Intn(len(preds))]),
				rdf.Resource(ents[gen.Intn(len(ents))]),
				src, conf, rdf.NoProv)
		}
		st.Freeze()
		var rules []*relax.Rule
		for _, pair := range [][2]string{{"p", "q"}, {"q", "r"}, {"r", "p"}} {
			w := 0.3 + 0.7*gen.Float64()
			rules = append(rules, relax.MustParseRule(
				"m"+pair[0]+pair[1],
				"?x "+pair[0]+" ?y => ?x "+pair[1]+" ?y", w, "manual"))
		}
		queries := []string{
			"?x p ?y",
			"?x p ?y . ?y q ?z",
			"A p ?y",
			"?x q B",
		}
		qs := queries[gen.Intn(len(queries))]
		k := 1 + gen.Intn(5)
		q := query.MustParse(qs)
		q.Projection = q.ProjectedVars()
		rewrites := relax.NewExpander(rules).Expand(q)
		inc, _ := New(st, Options{K: k, Mode: Incremental}).Evaluate(q, rewrites)
		exh, _ := New(st, Options{K: k, Mode: Exhaustive}).Evaluate(q, rewrites)
		if len(inc) != len(exh) {
			t.Fatalf("round %d (%s, k=%d): %d vs %d answers", round, qs, k, len(inc), len(exh))
		}
		for i := range inc {
			if math.Abs(inc[i].Score-exh[i].Score) > 1e-9 {
				t.Fatalf("round %d (%s, k=%d): answer %d score %v vs %v", round, qs, k, i, inc[i].Score, exh[i].Score)
			}
		}
	}
}

func TestIncrementalDoesLessWork(t *testing.T) {
	st := demoXKG()
	rules := figure4()
	q := query.MustParse("AlbertEinstein affiliation ?x LIMIT 1")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(rules).Expand(q)
	_, mi := New(st, Options{K: 1, Mode: Incremental}).Evaluate(q, rewrites)
	_, me := New(st, Options{K: 1, Mode: Exhaustive}).Evaluate(q, rewrites)
	if mi.RewritesEvaluated+mi.RewritesSkipped > me.RewritesEvaluated+1 {
		t.Fatalf("metrics inconsistent: %+v vs %+v", mi, me)
	}
	if mi.JoinBranches > me.JoinBranches {
		t.Fatalf("incremental explored more branches (%d) than exhaustive (%d)", mi.JoinBranches, me.JoinBranches)
	}
}

func TestRepeatedVariableJoin(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("A"), rdf.Resource("knows"), rdf.Resource("B"))
	st.AddKG(rdf.Resource("B"), rdf.Resource("knows"), rdf.Resource("A"))
	st.AddKG(rdf.Resource("A"), rdf.Resource("knows"), rdf.Resource("C"))
	st.Freeze()
	// Mutual acquaintance: ?x knows ?y . ?y knows ?x.
	ans, _ := evaluate(t, st, "?x knows ?y . ?y knows ?x", nil, Incremental, 10)
	if len(ans) != 2 { // (A,B) and (B,A)
		t.Fatalf("answers = %d, want 2: %v", len(ans), ans)
	}
}

func TestEmptyStoreNoAnswers(t *testing.T) {
	st := store.New(nil, nil)
	st.Freeze()
	ans, m := evaluate(t, st, "?x p ?y", figure4(), Incremental, 5)
	if len(ans) != 0 {
		t.Fatalf("answers from empty store: %v", ans)
	}
	if m.RewritesTotal == 0 {
		t.Fatal("rewrite space empty")
	}
}

func TestDeterministicAnswers(t *testing.T) {
	st := demoXKG()
	var prev []Answer
	for i := 0; i < 5; i++ {
		ans, _ := evaluate(t, st, "?x ?p ?y", figure4(), Incremental, 8)
		if prev != nil {
			if len(ans) != len(prev) {
				t.Fatal("non-deterministic answer count")
			}
			for j := range ans {
				if ans[j].Score != prev[j].Score {
					t.Fatal("non-deterministic scores")
				}
				for v, id := range ans[j].Bindings {
					if prev[j].Bindings[v] != id {
						t.Fatal("non-deterministic bindings")
					}
				}
			}
		}
		prev = ans
	}
}
