package topk

// Tests of the parallel rewrite scheduler: byte-identical answers at
// every width, canonical trace order, queue-level weight-bound
// skipping, cancellation drain and the serialised emit hook. The
// full-workload differential across kernel configs lives at the repo
// root (parallel_test.go); these are the package-level units. Run with
// -race.

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/relax"
	"trinit/internal/store"
)

func TestResolveParallelism(t *testing.T) {
	if got := resolveParallelism(0); got != 1 {
		t.Fatalf("resolveParallelism(0) = %d, want 1", got)
	}
	if got := resolveParallelism(1); got != 1 {
		t.Fatalf("resolveParallelism(1) = %d, want 1", got)
	}
	if got := resolveParallelism(6); got != 6 {
		t.Fatalf("resolveParallelism(6) = %d, want 6", got)
	}
	if got := resolveParallelism(AutoParallelism); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("resolveParallelism(auto) = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
}

// wideFixture builds a store with rels token predicates of perRel facts
// each plus relaxation rules rewriting the first predicate into every
// other — a rewrite space of rels rewrites whose joins each walk perRel
// branches, so parallel workers have genuinely concurrent work and a
// cancellation poll (every 256 branches) is guaranteed mid-rewrite.
func wideFixture(t *testing.T, perRel, rels int, opts Options) (*Evaluator, *query.Query, []relax.Rewrite) {
	t.Helper()
	st := store.New(nil, nil)
	for r := 0; r < rels; r++ {
		rel := fmt.Sprintf("widerel%d", r)
		for i := 0; i < perRel; i++ {
			conf := 0.1 + 0.8*float64((i*31+r*7)%101)/101
			st.AddFact(rdf.Resource(fmt.Sprintf("E%d_%d", r, i)), rdf.Token(rel),
				rdf.Resource(fmt.Sprintf("F%d", i)), rdf.SourceXKG, conf, rdf.NoProv)
		}
	}
	st.Freeze()
	var rules []*relax.Rule
	for r := 1; r < rels; r++ {
		rules = append(rules, relax.MustParseRule(fmt.Sprintf("w%d", r),
			fmt.Sprintf("?x 'widerel0' ?y => ?x 'widerel%d' ?y", r), 1-0.05*float64(r), "manual"))
	}
	q := query.MustParse("?x 'widerel0' ?y")
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(rules).Expand(q)
	if len(rewrites) != rels {
		t.Fatalf("rewrite space has %d rewrites, want %d", len(rewrites), rels)
	}
	return New(st, opts), q, rewrites
}

// parallelFixture returns the demo evaluator plus a parsed query and
// its expanded rewrite space.
func parallelFixture(t *testing.T, qs string, opts Options) (*Evaluator, *query.Query, []relax.Rewrite) {
	t.Helper()
	st := demoXKG()
	q := query.MustParse(qs)
	q.Projection = q.ProjectedVars()
	rewrites := relax.NewExpander(figure4()).Expand(q)
	return New(st, opts), q, rewrites
}

func TestParallelRunByteIdenticalToSerial(t *testing.T) {
	queries := []string{
		"?x bornIn Germany",
		"AlbertEinstein hasAdvisor ?x",
		"AlbertEinstein affiliation ?x . ?x member IvyLeague",
		"?x ?p ?y",
		"AlbertEinstein 'won nobel for' ?x",
	}
	for _, mode := range []Mode{Incremental, Exhaustive} {
		for _, qs := range queries {
			ev, q, rewrites := parallelFixture(t, qs, Options{K: 5, Mode: mode})
			serial, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{2, 3, 8, AutoParallelism} {
				got, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: p})
				if err != nil {
					t.Fatalf("%s P=%d: %v", qs, p, err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("%s mode=%v P=%d: answers differ from serial\n got: %+v\n want: %+v",
						qs, mode, p, got, serial)
				}
			}
		}
	}
}

func TestParallelOptionsDefaultEnablesScheduler(t *testing.T) {
	ev, q, rewrites := parallelFixture(t, "?x bornIn Germany", Options{K: 5, Parallelism: 4})
	serial, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaOpts, serial) {
		t.Fatalf("Options.Parallelism run differs from forced-serial run")
	}
}

func TestParallelTraceCanonicalOrder(t *testing.T) {
	ev, q, rewrites := parallelFixture(t, "?x bornIn Germany", Options{K: 5})
	if _, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	trace := ev.LastTrace()
	if len(trace) != len(rewrites) {
		t.Fatalf("trace has %d entries, rewrite space %d", len(trace), len(rewrites))
	}
	valid := map[string]bool{
		"evaluated": true, "skipped (weight bound)": true, "no matches": true,
		"no matches (semi-join)": true, "missing projection": true, "canceled": true,
	}
	for i, tr := range trace {
		if tr.Query != rewrites[i].Query.String() {
			t.Fatalf("trace[%d] = %q, want canonical rewrite %q", i, tr.Query, rewrites[i].Query.String())
		}
		if tr.Weight != rewrites[i].Weight {
			t.Fatalf("trace[%d] weight = %v, want %v", i, tr.Weight, rewrites[i].Weight)
		}
		if !valid[tr.Status] {
			t.Fatalf("trace[%d] has invalid status %q", i, tr.Status)
		}
	}
}

func TestParallelNoTraceSkipsTrace(t *testing.T) {
	ev, q, rewrites := parallelFixture(t, "?x bornIn Germany", Options{K: 5})
	ans, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: 4, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) == 0 {
		t.Fatal("no answers")
	}
	if n := ev.TraceLen(); n != 0 {
		t.Fatalf("TraceLen = %d after NoTrace parallel run, want 0", n)
	}
}

func TestParallelRewriteAccounting(t *testing.T) {
	// Low K forces weight-bound skipping on the demo fixture; the queue
	// must account every rewrite as either evaluated or skipped.
	ev, q, rewrites := parallelFixture(t, "?x bornIn Germany", Options{K: 1})
	_, m, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.RewritesTotal != len(rewrites) {
		t.Fatalf("RewritesTotal = %d, want %d", m.RewritesTotal, len(rewrites))
	}
	if m.RewritesEvaluated+m.RewritesSkipped != m.RewritesTotal {
		t.Fatalf("evaluated %d + skipped %d != total %d",
			m.RewritesEvaluated, m.RewritesSkipped, m.RewritesTotal)
	}
}

func TestParallelWideRewriteSpaceByteIdenticalToSerial(t *testing.T) {
	for _, mode := range []Mode{Incremental, Exhaustive} {
		ev, q, rewrites := wideFixture(t, 400, 6, Options{K: 10, Mode: mode})
		serial, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) == 0 {
			t.Fatal("no answers")
		}
		for _, p := range []int{2, 4, 8} {
			got, _, err := ev.Run(context.Background(), q, rewrites, RunConfig{Parallelism: p})
			if err != nil {
				t.Fatalf("P=%d: %v", p, err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("mode=%v P=%d: wide-rewrite answers differ from serial", mode, p)
			}
		}
	}
}

func TestParallelEmitSerializedAndCancelDrains(t *testing.T) {
	// Each of the 6 rewrites joins 1200 branches, so the worker whose
	// emit hook cancels the run is guaranteed to observe its own
	// cancellation at the next 256-branch poll, mid-rewrite.
	ev, q, rewrites := wideFixture(t, 1200, 6, Options{K: 3, Mode: Exhaustive})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The emit hook cancels the run after the first admission. A
	// non-atomic counter doubles as the serialisation check: -race
	// flags the scheduler if emits ever run concurrently.
	emits := 0
	ans, _, err := ev.Run(ctx, q, rewrites, RunConfig{
		Parallelism: 4,
		Emit: func(Answer) {
			emits++
			cancel()
		},
	})
	if emits == 0 {
		t.Fatal("no emit before cancellation")
	}
	if err == nil {
		t.Fatal("cancelled parallel run returned nil error")
	}
	if len(ans) == 0 {
		t.Fatal("cancelled run dropped the answers found so far")
	}
	canceledTraced := false
	for _, tr := range ev.LastTrace() {
		if tr.Status == "canceled" {
			canceledTraced = true
		}
	}
	if !canceledTraced {
		t.Fatal("no trace entry with status canceled")
	}
	// Run returning past wg.Wait proves the workers drained; double-check
	// the goroutine count settles back to the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("%d goroutines after cancelled parallel run, baseline %d", n, before)
	}
}

func TestParallelPreCanceledContext(t *testing.T) {
	ev, q, rewrites := parallelFixture(t, "?x bornIn Germany", Options{K: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, m, err := ev.Run(ctx, q, rewrites, RunConfig{Parallelism: 4})
	if err == nil {
		t.Fatal("pre-cancelled parallel run returned nil error")
	}
	if m.RewritesTotal != len(rewrites) {
		t.Fatalf("RewritesTotal = %d, want %d", m.RewritesTotal, len(rewrites))
	}
	for _, tr := range ev.LastTrace() {
		if tr.Status != "canceled" {
			t.Fatalf("trace status = %q on a pre-cancelled run, want canceled", tr.Status)
		}
	}
}
