package relax

import (
	"container/heap"
	"context"

	"trinit/internal/query"
)

// Rewrite is one node of the rewrite space: a (possibly) relaxed query, the
// sequence of rules that produced it, and the product of their weights. The
// original query is the Rewrite with no applied rules and weight 1.
type Rewrite struct {
	Query   *query.Query
	Applied []*Rule
	Weight  float64
}

// Expander enumerates the rewrite space of a query in best-first order of
// derivation weight. The space is otherwise prohibitively large (§4), so
// expansion is bounded by depth, count, and minimum weight; the top-k
// processor additionally opens rewrites lazily.
type Expander struct {
	// Rules is the rule repertoire.
	Rules []*Rule
	// MaxDepth bounds the number of rule applications per derivation;
	// 0 disables relaxation entirely (only the original query is
	// returned), negative values select the default depth of 2.
	MaxDepth int
	// MaxRewrites bounds the total number of rewrites returned,
	// including the original query. Zero means no bound.
	MaxRewrites int
	// MinWeight prunes derivations below this weight.
	MinWeight float64
}

// NewExpander returns an expander with the default bounds used by the
// engine: depth 2, 64 rewrites, minimum weight 0.05.
func NewExpander(rules []*Rule) *Expander {
	return &Expander{Rules: rules, MaxDepth: 2, MaxRewrites: 64, MinWeight: 0.05}
}

type rwItem struct {
	rw    Rewrite
	depth int
}

type rwHeap []rwItem

func (h rwHeap) Len() int      { return len(h) }
func (h rwHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h rwHeap) Less(i, j int) bool {
	if h[i].rw.Weight != h[j].rw.Weight {
		return h[i].rw.Weight > h[j].rw.Weight
	}
	// Deterministic tie-break: shallower derivations first, then by
	// canonical query text.
	if h[i].depth != h[j].depth {
		return h[i].depth < h[j].depth
	}
	return canonicalKey(h[i].rw.Query) < canonicalKey(h[j].rw.Query)
}
func (h *rwHeap) Push(x any) { *h = append(*h, x.(rwItem)) }
func (h *rwHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Expand returns the rewrite space of q in descending weight order. The
// first element is always the original query (weight 1, no rules). Each
// distinct query appears once, with its maximum-weight derivation — the
// paper's max-over-sequences semantics (§4) applied at the rewrite level.
func (e *Expander) Expand(q *query.Query) []Rewrite {
	out, _ := e.ExpandContext(context.Background(), q)
	return out
}

// ExpandContext is Expand with request scoping: the context is polled at
// every expansion step (one popped rewrite per step), and a cancelled
// expansion returns the rewrites enumerated so far — still in descending
// weight order, led by the original query unless the context was
// cancelled before the first step — together with ctx.Err(), so callers
// can surface a partial result.
func (e *Expander) ExpandContext(ctx context.Context, q *query.Query) ([]Rewrite, error) {
	maxDepth := e.MaxDepth
	if maxDepth < 0 {
		maxDepth = 2
	}
	done := ctx.Done()
	h := &rwHeap{{rw: Rewrite{Query: q, Weight: 1}, depth: 0}}
	heap.Init(h)
	seen := make(map[string]bool)
	var out []Rewrite
	for h.Len() > 0 {
		if done != nil {
			select {
			case <-done:
				return out, ctx.Err()
			default:
			}
		}
		it := heap.Pop(h).(rwItem)
		key := canonicalKey(it.rw.Query)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, it.rw)
		if e.MaxRewrites > 0 && len(out) >= e.MaxRewrites {
			break
		}
		if it.depth >= maxDepth {
			continue
		}
		for _, r := range e.Rules {
			for _, app := range Apply(it.rw.Query, r) {
				w := it.rw.Weight * r.Weight
				if w < e.MinWeight {
					continue
				}
				if seen[canonicalKey(app.Query)] {
					continue
				}
				applied := make([]*Rule, len(it.rw.Applied), len(it.rw.Applied)+1)
				copy(applied, it.rw.Applied)
				applied = append(applied, r)
				heap.Push(h, rwItem{
					rw:    Rewrite{Query: app.Query, Applied: applied, Weight: w},
					depth: it.depth + 1,
				})
			}
		}
	}
	return out, nil
}
