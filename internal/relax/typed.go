package relax

import (
	"fmt"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

// TypedCompositionOptions configure MineTypedCompositions.
type TypedCompositionOptions struct {
	// TypePredicate names the instance-of predicate (default "type").
	TypePredicate string
	// Containment lists candidate containment predicates (default
	// locatedIn, partOf, memberOf).
	Containment []string
	// MinSupport is the minimum number of witnessing chains.
	MinSupport int
	// MinWeight drops rules below this weight.
	MinWeight float64
	// MaxRules caps the output (0 = unbounded).
	MaxRules int
}

// DefaultTypedCompositionOptions returns moderate defaults.
func DefaultTypedCompositionOptions() TypedCompositionOptions {
	return TypedCompositionOptions{TypePredicate: "type", MinSupport: 2, MinWeight: 0.1}
}

// MineTypedCompositions mines rules in the *exact* shape of Figure 4
// rule 1, with type constraints on both sides:
//
//	?x p ?y ; ?y type T_coarse  →  ?x p ?z ; ?z type T_fine ; ?z c ?y
//
// A rule is emitted when the KG witnesses the pattern: objects of p are
// predominantly of type T_fine, and those objects are contained (via c) in
// entities of type T_coarse. The weight is the fraction of p-objects of
// type T_fine whose containment target has type T_coarse — 1.0 when, as in
// the paper's example, everybody is born in a city and every city lies in
// a country. The store must be frozen.
func MineTypedCompositions(st *store.Store, opts TypedCompositionOptions) []*Rule {
	if opts.TypePredicate == "" {
		opts.TypePredicate = "type"
	}
	if len(opts.Containment) == 0 {
		opts.Containment = []string{"locatedIn", "partOf", "memberOf"}
	}
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	dict := st.Dict()
	typeID, ok := dict.Lookup(rdf.Resource(opts.TypePredicate))
	if !ok {
		return nil
	}
	// typeOf[e] = the entity's first type (entities with multiple types
	// use the lowest term ID for determinism).
	typeOf := make(map[rdf.TermID]rdf.TermID)
	for _, id := range st.Match(rdf.NoTerm, typeID, rdf.NoTerm) {
		t := st.Triple(id)
		if cur, ok := typeOf[t.S]; !ok || t.O < cur {
			typeOf[t.S] = t.O
		}
	}
	var cPreds []rdf.TermID
	for _, name := range opts.Containment {
		if id, ok := dict.Lookup(rdf.Resource(name)); ok {
			cPreds = append(cPreds, id)
		}
	}
	if len(cPreds) == 0 {
		return nil
	}
	// containerOf[c][e] = what e is contained in via c.
	containerOf := make(map[rdf.TermID]map[rdf.TermID]rdf.TermID)
	for _, c := range cPreds {
		m := make(map[rdf.TermID]rdf.TermID)
		for _, id := range st.Match(rdf.NoTerm, c, rdf.NoTerm) {
			t := st.Triple(id)
			if cur, ok := m[t.S]; !ok || t.O < cur {
				m[t.S] = t.O
			}
		}
		containerOf[c] = m
	}

	// For every predicate p and containment c, bucket chains by the
	// (fine type, coarse type) pair they witness.
	type key struct {
		p, c, fine, coarse rdf.TermID
	}
	witness := make(map[key]int)
	objTyped := make(map[[2]rdf.TermID]int) // (p, fineType) → #objects with that type (with repetition per triple)
	for _, ps := range st.Predicates() {
		p := ps.Pred
		if p == typeID {
			continue
		}
		for _, id := range st.Match(rdf.NoTerm, p, rdf.NoTerm) {
			t := st.Triple(id)
			fine, ok := typeOf[t.O]
			if !ok {
				continue
			}
			objTyped[[2]rdf.TermID{p, fine}]++
			for _, c := range cPreds {
				container, ok := containerOf[c][t.O]
				if !ok {
					continue
				}
				coarse, ok := typeOf[container]
				if !ok || coarse == fine {
					continue
				}
				witness[key{p: p, c: c, fine: fine, coarse: coarse}]++
			}
		}
	}

	var rules []*Rule
	for k, n := range witness {
		if n < opts.MinSupport {
			continue
		}
		denom := objTyped[[2]rdf.TermID{k.p, k.fine}]
		if denom == 0 {
			continue
		}
		w := float64(n) / float64(denom)
		if w > 1 {
			w = 1
		}
		if w < opts.MinWeight {
			continue
		}
		pt := dict.Term(k.p)
		ct := dict.Term(k.c)
		fineT := dict.Term(k.fine)
		coarseT := dict.Term(k.coarse)
		typeT := rdf.Resource(opts.TypePredicate)
		x, y, z := query.Variable("x"), query.Variable("y"), query.Variable("z")
		rules = append(rules, &Rule{
			ID: fmt.Sprintf("typed:%s/%s:%s->%s", pt, ct, coarseT, fineT),
			LHS: []query.Pattern{
				{S: x, P: query.Bound(pt), O: y},
				{S: y, P: query.Bound(typeT), O: query.Bound(coarseT)},
			},
			RHS: []query.Pattern{
				{S: x, P: query.Bound(pt), O: z},
				{S: z, P: query.Bound(typeT), O: query.Bound(fineT)},
				{S: z, P: query.Bound(ct), O: y},
			},
			Weight: w,
			Origin: "typed-composition",
		})
	}
	sortRules(rules)
	if opts.MaxRules > 0 && len(rules) > opts.MaxRules {
		rules = rules[:opts.MaxRules]
	}
	return rules
}

// TypedCompositionOperator plugs MineTypedCompositions into the operator
// API.
type TypedCompositionOperator struct {
	Options TypedCompositionOptions
}

// Name implements Operator.
func (TypedCompositionOperator) Name() string { return "typed-composition" }

// Rules implements Operator.
func (op TypedCompositionOperator) Rules(st *store.Store) ([]*Rule, error) {
	o := op.Options
	if o.TypePredicate == "" && o.MinSupport == 0 {
		o = DefaultTypedCompositionOptions()
	}
	return MineTypedCompositions(st, o), nil
}
