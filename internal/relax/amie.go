package relax

import (
	"fmt"
	"sort"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

// HornOptions configure AMIE-style chain-rule mining (§3 cites AMIE
// (Galárraga et al., WWW 2013) as a source of relaxation rules).
type HornOptions struct {
	// MinSupport is the minimum number of chain instances that are also
	// head facts.
	MinSupport int
	// MinConfidence is the minimum PCA confidence for a rule.
	MinConfidence float64
	// MaxRules caps the output (0 = unbounded).
	MaxRules int
	// MaxPredicateTriples skips body predicates with more triples, to
	// bound the join cost on token-heavy stores (0 = no bound).
	MaxPredicateTriples int
}

// DefaultHornOptions are moderate defaults for laptop-scale stores.
func DefaultHornOptions() HornOptions {
	return HornOptions{MinSupport: 2, MinConfidence: 0.25, MaxPredicateTriples: 20000}
}

// MineHornRules mines chain rules in AMIE's most useful shape,
//
//	p(x, y)  ⇐  q(x, z) ∧ r(z, y)
//
// scored with PCA confidence (the denominator counts only chains whose x
// has *some* p fact, AMIE's partial-completeness assumption for
// incomplete KGs). Each mined rule is emitted as the relaxation
//
//	?x p ?y  →  ?x q ?z ; ?z r ?y   with weight = PCA confidence,
//
// which generalises Figure 4 rule 1: a query for the head predicate is
// relaxed into the two-hop body. The store must be frozen.
func MineHornRules(st *store.Store, opts HornOptions) []*Rule {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	dict := st.Dict()

	// Group edges by predicate.
	type edges struct {
		out      map[rdf.TermID][]rdf.TermID // subject -> objects
		args     map[[2]rdf.TermID]bool
		subjects map[rdf.TermID]bool
		size     int
	}
	byPred := make(map[rdf.TermID]*edges)
	var preds []rdf.TermID
	for i := 0; i < st.Len(); i++ {
		t := st.Triple(store.ID(i))
		e := byPred[t.P]
		if e == nil {
			e = &edges{
				out:      make(map[rdf.TermID][]rdf.TermID),
				args:     make(map[[2]rdf.TermID]bool),
				subjects: make(map[rdf.TermID]bool),
			}
			byPred[t.P] = e
			preds = append(preds, t.P)
		}
		if e.args[[2]rdf.TermID{t.S, t.O}] {
			continue
		}
		e.args[[2]rdf.TermID{t.S, t.O}] = true
		e.out[t.S] = append(e.out[t.S], t.O)
		e.subjects[t.S] = true
		e.size++
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })

	usable := func(p rdf.TermID) bool {
		return opts.MaxPredicateTriples <= 0 || byPred[p].size <= opts.MaxPredicateTriples
	}

	var rules []*Rule
	for _, q := range preds {
		if !usable(q) {
			continue
		}
		for _, r := range preds {
			if !usable(r) {
				continue
			}
			// Materialise the chain q(x,z) ∧ r(z,y) as a set of
			// (x, y) pairs.
			chain := make(map[[2]rdf.TermID]bool)
			for x, zs := range byPred[q].out {
				for _, z := range zs {
					for _, y := range byPred[r].out[z] {
						chain[[2]rdf.TermID{x, y}] = true
					}
				}
			}
			if len(chain) < opts.MinSupport {
				continue
			}
			// Score every head predicate against this chain.
			for _, p := range preds {
				head := byPred[p]
				support := 0
				pcaDenom := 0
				for pair := range chain {
					if head.subjects[pair[0]] {
						pcaDenom++
						if head.args[pair] {
							support++
						}
					}
				}
				if support < opts.MinSupport || pcaDenom == 0 {
					continue
				}
				conf := float64(support) / float64(pcaDenom)
				if conf < opts.MinConfidence {
					continue
				}
				// Trivial self-explanations (p == q with r
				// acting as identity, etc.) are filtered by
				// requiring the rule to be non-degenerate.
				if p == q && p == r {
					continue
				}
				pt, qt, rt := dict.Term(p), dict.Term(q), dict.Term(r)
				x, y, z := query.Variable("x"), query.Variable("y"), query.Variable("z")
				rules = append(rules, &Rule{
					ID:  fmt.Sprintf("horn:%s<=%s.%s", pt, qt, rt),
					LHS: []query.Pattern{{S: x, P: query.Bound(pt), O: y}},
					RHS: []query.Pattern{
						{S: x, P: query.Bound(qt), O: z},
						{S: z, P: query.Bound(rt), O: y},
					},
					Weight: conf,
					Origin: "horn",
				})
			}
		}
	}
	sortRules(rules)
	if opts.MaxRules > 0 && len(rules) > opts.MaxRules {
		rules = rules[:opts.MaxRules]
	}
	return rules
}

// HornOperator plugs MineHornRules into the operator API.
type HornOperator struct {
	Options HornOptions
}

// Name implements Operator.
func (HornOperator) Name() string { return "horn" }

// Rules implements Operator.
func (op HornOperator) Rules(st *store.Store) ([]*Rule, error) {
	o := op.Options
	if o.MinSupport == 0 && o.MinConfidence == 0 {
		o = DefaultHornOptions()
	}
	return MineHornRules(st, o), nil
}
