package relax

import (
	"testing"

	"trinit/internal/rdf"
	"trinit/internal/store"
)

// figure1Typed is the Figure 1 KG plus the type facts the paper's rule 1
// presumes: people are born in cities, cities lie in countries.
func figure1Typed() *store.Store {
	st := store.New(nil, nil)
	add := func(s, p, o string) { st.AddKG(rdf.Resource(s), rdf.Resource(p), rdf.Resource(o)) }
	add("AlbertEinstein", "bornIn", "Ulm")
	add("MaxBorn", "bornIn", "Breslau")
	add("Ulm", "locatedIn", "Germany")
	add("Breslau", "locatedIn", "Germany")
	add("Ulm", "type", "city")
	add("Breslau", "type", "city")
	add("Germany", "type", "country")
	st.Freeze()
	return st
}

func TestMineTypedCompositionsReproducesFigure4Rule1(t *testing.T) {
	st := figure1Typed()
	rules := MineTypedCompositions(st, DefaultTypedCompositionOptions())
	r := findRule(rules, "typed:bornIn/locatedIn:country->city")
	if r == nil {
		t.Fatalf("Figure 4 rule 1 not mined; got %v", rules)
	}
	// Every bornIn object is a city located in a typed country: w = 1.
	if r.Weight != 1.0 {
		t.Errorf("weight = %v, want 1.0 (paper's rule 1 weight)", r.Weight)
	}
	// Shape check against Figure 4 rule 1.
	if len(r.LHS) != 2 || len(r.RHS) != 3 {
		t.Fatalf("rule shape LHS=%d RHS=%d, want 2/3", len(r.LHS), len(r.RHS))
	}
	if r.LHS[1].P.Term.Text != "type" || r.LHS[1].O.Term.Text != "country" {
		t.Errorf("LHS type constraint = %v", r.LHS[1])
	}
	if r.RHS[1].O.Term.Text != "city" {
		t.Errorf("RHS type constraint = %v", r.RHS[1])
	}
}

func TestMineTypedCompositionsNoTypePredicate(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("A"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.Freeze()
	if rules := MineTypedCompositions(st, DefaultTypedCompositionOptions()); len(rules) != 0 {
		t.Fatalf("rules without type facts: %v", rules)
	}
}

func TestMineTypedCompositionsMinSupport(t *testing.T) {
	st := figure1Typed()
	opts := DefaultTypedCompositionOptions()
	opts.MinSupport = 3
	if r := findRule(MineTypedCompositions(st, opts), "typed:bornIn/locatedIn:country->city"); r != nil {
		t.Fatal("support-2 rule survived MinSupport 3")
	}
}

func TestMineTypedCompositionsPartialCoverage(t *testing.T) {
	st := store.New(nil, nil)
	add := func(s, p, o string) { st.AddKG(rdf.Resource(s), rdf.Resource(p), rdf.Resource(o)) }
	add("A", "bornIn", "Ulm")
	add("B", "bornIn", "Atlantis") // typed city without containment
	add("Ulm", "locatedIn", "Germany")
	add("Ulm", "type", "city")
	add("Atlantis", "type", "city")
	add("Germany", "type", "country")
	st.Freeze()
	opts := DefaultTypedCompositionOptions()
	opts.MinSupport = 1
	rules := MineTypedCompositions(st, opts)
	r := findRule(rules, "typed:bornIn/locatedIn:country->city")
	if r == nil {
		t.Fatalf("rule missing: %v", rules)
	}
	// One of two typed city objects has a containment chain: w = 0.5.
	if r.Weight != 0.5 {
		t.Errorf("weight = %v, want 0.5", r.Weight)
	}
}

func TestTypedCompositionOperator(t *testing.T) {
	st := figure1Typed()
	op := TypedCompositionOperator{}
	if op.Name() != "typed-composition" {
		t.Errorf("name = %q", op.Name())
	}
	rules, err := op.Rules(st)
	if err != nil {
		t.Fatal(err)
	}
	if findRule(rules, "typed:bornIn/locatedIn:country->city") == nil {
		t.Fatalf("operator missed the rule: %v", rules)
	}
}
