package relax

import (
	"fmt"
	"sort"
	"strings"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

// MiningOptions control the XKG rule miners.
type MiningOptions struct {
	// MinSupport is the minimum size of the args intersection for a rule
	// to be emitted.
	MinSupport int
	// MinWeight drops rules below this weight.
	MinWeight float64
	// MaxRules caps the number of rules returned (0 = unbounded); the
	// highest-weight rules are kept.
	MaxRules int
	// IncludeInverse also mines predicate-inversion rules such as
	// Figure 4 rule 2 (?x hasAdvisor ?y → ?y hasStudent ?x).
	IncludeInverse bool
}

// DefaultMiningOptions mirror the engine defaults.
func DefaultMiningOptions() MiningOptions {
	return MiningOptions{MinSupport: 2, MinWeight: 0.1, MaxRules: 0, IncludeInverse: true}
}

// Mine derives predicate-rewriting rules from the XKG, as described in §3:
// for predicates p1, p2 it emits
//
//	?x p1 ?y  →  ?x p2 ?y   with   w = |args(p1) ∩ args(p2)| / |args(p2)|
//
// where args(p) is the set of (subject, object) pairs connected by p. With
// IncludeInverse, it additionally emits
//
//	?x p1 ?y  →  ?y p2 ?x   with   w = |args(p1) ∩ args(p2)⁻¹| / |args(p2)|.
//
// The store must be frozen. Rules are returned in descending weight order
// (ties broken by rule ID).
func Mine(st *store.Store, opts MiningOptions) []*Rule {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	dict := st.Dict()

	// Build pair → predicate postings so that co-counts are accumulated
	// only over co-occurring argument pairs, rather than over all
	// predicate pairs.
	predsByPair := make(map[[2]rdf.TermID][]rdf.TermID)
	argCount := make(map[rdf.TermID]int)
	seenPair := make(map[[3]rdf.TermID]bool) // (p, s, o) dedup
	for i := 0; i < st.Len(); i++ {
		t := st.Triple(store.ID(i))
		key := [3]rdf.TermID{t.P, t.S, t.O}
		if seenPair[key] {
			continue
		}
		seenPair[key] = true
		pair := [2]rdf.TermID{t.S, t.O}
		predsByPair[pair] = append(predsByPair[pair], t.P)
		argCount[t.P]++
	}

	co := make(map[[2]rdf.TermID]int)    // (p1, p2): |args(p1) ∩ args(p2)|
	coInv := make(map[[2]rdf.TermID]int) // (p1, p2): |args(p1) ∩ args(p2)⁻¹|
	for pair, preds := range predsByPair {
		for _, p1 := range preds {
			for _, p2 := range preds {
				if p1 != p2 {
					co[[2]rdf.TermID{p1, p2}]++
				}
			}
		}
		if opts.IncludeInverse {
			inv := [2]rdf.TermID{pair[1], pair[0]}
			if invPreds, ok := predsByPair[inv]; ok {
				for _, p1 := range preds {
					for _, p2 := range invPreds {
						// p1(s,o) and p2(o,s): p1 rewrites to inverted p2.
						coInv[[2]rdf.TermID{p1, p2}]++
					}
				}
			}
		}
	}

	var rules []*Rule
	emit := func(p1, p2 rdf.TermID, inter int, inverse bool) {
		if inter < opts.MinSupport {
			return
		}
		w := float64(inter) / float64(argCount[p2])
		if w > 1 {
			w = 1
		}
		if w < opts.MinWeight {
			return
		}
		t1, t2 := dict.Term(p1), dict.Term(p2)
		x, y := query.Variable("x"), query.Variable("y")
		lhs := []query.Pattern{{S: x, P: query.Bound(t1), O: y}}
		var rhs []query.Pattern
		var id string
		if inverse {
			rhs = []query.Pattern{{S: y, P: query.Bound(t2), O: x}}
			id = fmt.Sprintf("inv:%s->%s", t1, t2)
		} else {
			rhs = []query.Pattern{{S: x, P: query.Bound(t2), O: y}}
			id = fmt.Sprintf("mine:%s->%s", t1, t2)
		}
		origin := "mined"
		if inverse {
			origin = "inversion"
		}
		rules = append(rules, &Rule{ID: id, LHS: lhs, RHS: rhs, Weight: w, Origin: origin})
	}
	for pq, inter := range co {
		emit(pq[0], pq[1], inter, false)
	}
	for pq, inter := range coInv {
		emit(pq[0], pq[1], inter, true)
	}

	sortRules(rules)
	if opts.MaxRules > 0 && len(rules) > opts.MaxRules {
		rules = rules[:opts.MaxRules]
	}
	return rules
}

// MineCompositions derives structural expansion rules in the shape of
// Figure 4 rule 1: when the objects of predicate p are frequently subjects
// of a containment predicate c (cities are locatedIn countries), it emits
//
//	?x p ?y  →  ?x p ?z ; ?z c ?y
//
// with weight |objects(p) ∩ subjects(c)| / |objects(p)|. This lets a query
// for people born in a country reach people whose KG birthplace is a city
// located in that country.
func MineCompositions(st *store.Store, containment []string, opts MiningOptions) []*Rule {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	dict := st.Dict()
	var cPreds []rdf.TermID
	for _, name := range containment {
		if id, ok := dict.Lookup(rdf.Resource(name)); ok {
			cPreds = append(cPreds, id)
		}
	}
	if len(cPreds) == 0 {
		return nil
	}
	objects := make(map[rdf.TermID]map[rdf.TermID]bool)  // p → object set
	subjects := make(map[rdf.TermID]map[rdf.TermID]bool) // c → subject set
	isC := make(map[rdf.TermID]bool)
	for _, c := range cPreds {
		isC[c] = true
		subjects[c] = make(map[rdf.TermID]bool)
	}
	for i := 0; i < st.Len(); i++ {
		t := st.Triple(store.ID(i))
		if isC[t.P] {
			subjects[t.P][t.S] = true
		}
		if objects[t.P] == nil {
			objects[t.P] = make(map[rdf.TermID]bool)
		}
		objects[t.P][t.O] = true
	}

	var rules []*Rule
	for p, objs := range objects {
		for _, c := range cPreds {
			if p == c {
				continue
			}
			inter := 0
			for o := range objs {
				if subjects[c][o] {
					inter++
				}
			}
			if inter < opts.MinSupport {
				continue
			}
			w := float64(inter) / float64(len(objs))
			if w < opts.MinWeight {
				continue
			}
			pt, ct := dict.Term(p), dict.Term(c)
			x, y, z := query.Variable("x"), query.Variable("y"), query.Variable("z")
			rules = append(rules, &Rule{
				ID:     fmt.Sprintf("comp:%s/%s", pt, ct),
				LHS:    []query.Pattern{{S: x, P: query.Bound(pt), O: y}},
				RHS:    []query.Pattern{{S: x, P: query.Bound(pt), O: z}, {S: z, P: query.Bound(ct), O: y}},
				Weight: w,
				Origin: "composition",
			})
		}
	}
	sortRules(rules)
	if opts.MaxRules > 0 && len(rules) > opts.MaxRules {
		rules = rules[:opts.MaxRules]
	}
	return rules
}

func sortRules(rules []*Rule) {
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Weight != rules[j].Weight {
			return rules[i].Weight > rules[j].Weight
		}
		return rules[i].ID < rules[j].ID
	})
}

// Operator is the plug-in API of §3: "TriniT has an API for relaxation
// operators, which administrators and advanced users can use to plug in
// their code for generating relaxation rules and their weights."
type Operator interface {
	// Name identifies the operator in rule origins and diagnostics.
	Name() string
	// Rules generates relaxation rules from the (frozen) store.
	Rules(st *store.Store) ([]*Rule, error)
}

// AlignmentOperator mines predicate alignment and inversion rules with Mine.
type AlignmentOperator struct {
	Options MiningOptions
}

// Name implements Operator.
func (AlignmentOperator) Name() string { return "alignment" }

// Rules implements Operator.
func (op AlignmentOperator) Rules(st *store.Store) ([]*Rule, error) {
	return Mine(st, op.Options), nil
}

// CompositionOperator mines structural expansion rules with
// MineCompositions. Containment defaults to common part-of predicates.
type CompositionOperator struct {
	Containment []string
	Options     MiningOptions
}

// Name implements Operator.
func (CompositionOperator) Name() string { return "composition" }

// Rules implements Operator.
func (op CompositionOperator) Rules(st *store.Store) ([]*Rule, error) {
	c := op.Containment
	if len(c) == 0 {
		c = []string{"locatedIn", "partOf", "memberOf"}
	}
	return MineCompositions(st, c, op.Options), nil
}

// ManualOperator serves a fixed rule list, e.g. administrator-supplied
// rules or the user-customised relaxations of the demo.
type ManualOperator struct {
	List []*Rule
}

// Name implements Operator.
func (ManualOperator) Name() string { return "manual" }

// Rules implements Operator.
func (op ManualOperator) Rules(*store.Store) ([]*Rule, error) {
	for _, r := range op.List {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return op.List, nil
}

// ParseRule builds a rule from textual pattern lists, e.g.
//
//	ParseRule("r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual")
//
// Both sides use the query shorthand syntax with ';'- or '.'-separated
// patterns.
func ParseRule(id, s string, weight float64, origin string) (*Rule, error) {
	parts := strings.SplitN(s, "=>", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("rule %s: missing '=>' in %q", id, s)
	}
	lhs, err := parsePatterns(parts[0])
	if err != nil {
		return nil, fmt.Errorf("rule %s LHS: %w", id, err)
	}
	rhs, err := parsePatterns(parts[1])
	if err != nil {
		return nil, fmt.Errorf("rule %s RHS: %w", id, err)
	}
	r := &Rule{ID: id, LHS: lhs, RHS: rhs, Weight: weight, Origin: origin}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// MustParseRule is ParseRule panicking on error; for fixtures and tests.
func MustParseRule(id, s string, weight float64, origin string) *Rule {
	r, err := ParseRule(id, s, weight, origin)
	if err != nil {
		panic(err)
	}
	return r
}

func parsePatterns(s string) ([]query.Pattern, error) {
	q, err := query.Parse(strings.TrimSpace(s))
	if err != nil {
		return nil, err
	}
	return q.Patterns, nil
}
