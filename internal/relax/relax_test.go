package relax

import (
	"strings"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

func TestParseRule(t *testing.T) {
	r, err := ParseRule("r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LHS) != 1 || len(r.RHS) != 1 {
		t.Fatalf("rule shape: %+v", r)
	}
	if r.LHS[0].P.Term.Text != "hasAdvisor" || r.RHS[0].P.Term.Text != "hasStudent" {
		t.Fatalf("predicates wrong: %v", r)
	}
	if r.RHS[0].S.Var != "y" || r.RHS[0].O.Var != "x" {
		t.Fatalf("inversion lost: %v", r.RHS[0])
	}
}

func TestParseRuleMultiPattern(t *testing.T) {
	// Figure 4 rule 3.
	r, err := ParseRule("r3", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y", 0.8, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RHS) != 2 {
		t.Fatalf("RHS size = %d", len(r.RHS))
	}
	if r.RHS[1].P.Term.Kind != rdf.KindToken {
		t.Fatalf("token predicate lost: %v", r.RHS[1])
	}
}

func TestParseRuleErrors(t *testing.T) {
	cases := []struct{ id, s string }{
		{"noarrow", "?x p ?y"},
		{"badlhs", "?x p => ?x q ?y"},
		{"badrhs", "?x p ?y => ?x"},
	}
	for _, c := range cases {
		if _, err := ParseRule(c.id, c.s, 1, "manual"); err == nil {
			t.Errorf("ParseRule(%q) succeeded", c.s)
		}
	}
	if _, err := ParseRule("w", "?x p ?y => ?x q ?y", 1.5, "manual"); err == nil {
		t.Error("weight 1.5 accepted")
	}
	if _, err := ParseRule("w", "?x p ?y => ?x q ?y", -0.1, "manual"); err == nil {
		t.Error("weight -0.1 accepted")
	}
}

func TestMustParseRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseRule("bad", "no arrow here", 1, "manual")
}

func TestApplyInversionRule(t *testing.T) {
	// User B's failing query, fixed by Figure 4 rule 2.
	q := query.MustParse("AlbertEinstein hasAdvisor ?x")
	r := MustParseRule("r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual")
	apps := Apply(q, r)
	if len(apps) != 1 {
		t.Fatalf("got %d applications, want 1", len(apps))
	}
	got := apps[0].Query.Patterns
	if len(got) != 1 {
		t.Fatalf("patterns = %v", got)
	}
	// ?x in the rule bound AlbertEinstein, ?y bound the query's ?x, so
	// the rewritten pattern is: ?x hasStudent AlbertEinstein.
	p := got[0]
	if !p.S.IsVar() || p.S.Var != "x" {
		t.Errorf("S = %v, want ?x", p.S)
	}
	if p.P.Term.Text != "hasStudent" {
		t.Errorf("P = %v", p.P)
	}
	if p.O.IsVar() || p.O.Term.Text != "AlbertEinstein" {
		t.Errorf("O = %v, want AlbertEinstein", p.O)
	}
}

func TestApplyExpansionRuleCreatesFreshVariable(t *testing.T) {
	// Figure 4 rule 3 applied to user C's first pattern.
	q := query.MustParse("AlbertEinstein affiliation ?x . ?x member IvyLeague")
	r := MustParseRule("r3", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y", 0.8, "manual")
	apps := Apply(q, r)
	if len(apps) != 1 {
		t.Fatalf("applications = %d", len(apps))
	}
	nq := apps[0].Query
	if len(nq.Patterns) != 3 {
		t.Fatalf("rewritten query = %v", nq)
	}
	// The fresh variable must not clash with the existing ?x.
	vars := nq.Vars()
	seen := make(map[string]bool)
	for _, v := range vars {
		if seen[v] {
			t.Fatalf("duplicate variable %s", v)
		}
		seen[v] = true
	}
	if len(vars) != 2 {
		t.Fatalf("vars = %v, want x plus one fresh", vars)
	}
	// The 'housed in' pattern must end in the original variable ?x.
	last := nq.Patterns[2]
	if last.P.Term.Kind != rdf.KindToken || last.O.Var != "x" {
		t.Fatalf("last pattern = %v", last)
	}
}

func TestApplyConstantLHSRequiresExactMatch(t *testing.T) {
	r := MustParseRule("r", "?x bornIn Germany => ?x bornIn ?z ; ?z locatedIn Germany", 0.9, "manual")
	hit := query.MustParse("?x bornIn Germany")
	miss := query.MustParse("?x bornIn France")
	if got := Apply(hit, r); len(got) != 1 {
		t.Fatalf("constant match failed: %v", got)
	}
	if got := Apply(miss, r); len(got) != 0 {
		t.Fatalf("constant mismatch applied: %v", got)
	}
}

func TestApplyTokenNormalisedMatch(t *testing.T) {
	// Token constants unify up to normalisation: 'won nobel for' in the
	// rule matches 'won a Nobel for' in the query.
	r := MustParseRule("r", "?x 'won nobel for' ?y => ?x wonPrize ?y", 0.9, "manual")
	q := query.MustParse("AlbertEinstein 'won a Nobel for' ?w")
	if got := Apply(q, r); len(got) != 1 {
		t.Fatalf("normalised token unification failed: %v", got)
	}
}

func TestApplyRejectsProjectionLoss(t *testing.T) {
	// Rewriting the only pattern binding the projected variable away
	// must be rejected.
	q := query.MustParse("SELECT ?y WHERE { ?x knows ?y }")
	r := MustParseRule("r", "?a knows ?b => ?a lonely ?a", 0.5, "manual")
	if got := Apply(q, r); len(got) != 0 {
		t.Fatalf("projection-losing rewrite accepted: %v", got[0].Query)
	}
}

func TestApplyNoMatch(t *testing.T) {
	q := query.MustParse("?x bornIn ?y")
	r := MustParseRule("r", "?x diedIn ?y => ?x buriedIn ?y", 0.5, "manual")
	if got := Apply(q, r); got != nil {
		t.Fatalf("unexpected application: %v", got)
	}
}

func TestApplyMultiplePositions(t *testing.T) {
	// A rule matching two different patterns yields two rewrites.
	q := query.MustParse("?x affiliation ?y . ?z affiliation ?w")
	r := MustParseRule("r4", "?a affiliation ?b => ?a 'lectured at' ?b", 0.7, "manual")
	got := Apply(q, r)
	if len(got) != 2 {
		t.Fatalf("applications = %d, want 2", len(got))
	}
}

func TestApplyIdentityRewriteSuppressed(t *testing.T) {
	q := query.MustParse("?x p ?y")
	r := MustParseRule("id", "?a p ?b => ?a p ?b", 1.0, "manual")
	if got := Apply(q, r); len(got) != 0 {
		t.Fatalf("identity rewrite emitted: %v", got)
	}
}

func TestApplyMultiPatternLHS(t *testing.T) {
	// Collapse a two-pattern chain into one predicate.
	q := query.MustParse("?x affiliation ?i . ?i 'housed in' ?u")
	r := MustParseRule("collapse", "?a affiliation ?b ; ?b 'housed in' ?c => ?a affiliatedWith ?c", 0.8, "manual")
	got := Apply(q, r)
	if len(got) != 1 {
		t.Fatalf("applications = %d, want 1", len(got))
	}
	nq := got[0].Query
	if len(nq.Patterns) != 1 || nq.Patterns[0].P.Term.Text != "affiliatedWith" {
		t.Fatalf("rewritten = %v", nq)
	}
}

func TestRuleValidate(t *testing.T) {
	bad := &Rule{ID: "b"}
	if bad.Validate() == nil {
		t.Error("empty rule validated")
	}
	ok := MustParseRule("ok", "?x p ?y => ?x q ?y", 0.5, "manual")
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRuleString(t *testing.T) {
	r := MustParseRule("r", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual")
	s := r.String()
	if !strings.Contains(s, "hasAdvisor") || !strings.Contains(s, "=>") || !strings.Contains(s, "1.00") {
		t.Errorf("String = %q", s)
	}
}

func TestExpanderOriginalFirst(t *testing.T) {
	q := query.MustParse("AlbertEinstein hasAdvisor ?x")
	rules := []*Rule{
		MustParseRule("r2", "?x hasAdvisor ?y => ?y hasStudent ?x", 1.0, "manual"),
	}
	e := NewExpander(rules)
	rws := e.Expand(q)
	if len(rws) != 2 {
		t.Fatalf("rewrites = %d, want 2", len(rws))
	}
	if rws[0].Weight != 1 || len(rws[0].Applied) != 0 {
		t.Fatalf("first rewrite is not the original: %+v", rws[0])
	}
	if rws[1].Weight != 1.0 || len(rws[1].Applied) != 1 {
		t.Fatalf("second rewrite: %+v", rws[1])
	}
}

func TestExpanderWeightsMultiply(t *testing.T) {
	q := query.MustParse("?x affiliation ?y")
	rules := []*Rule{
		MustParseRule("a", "?a affiliation ?b => ?a 'lectured at' ?b", 0.7, "manual"),
		MustParseRule("b", "?a 'lectured at' ?b => ?a 'visited' ?b", 0.5, "manual"),
	}
	e := NewExpander(rules)
	rws := e.Expand(q)
	var found bool
	for _, rw := range rws {
		if len(rw.Applied) == 2 {
			found = true
			if rw.Weight != 0.7*0.5 {
				t.Fatalf("two-step weight = %v, want 0.35", rw.Weight)
			}
		}
	}
	if !found {
		t.Fatal("two-step derivation missing")
	}
}

func TestExpanderDescendingWeights(t *testing.T) {
	q := query.MustParse("?x affiliation ?y")
	rules := []*Rule{
		MustParseRule("a", "?a affiliation ?b => ?a worksAt ?b", 0.9, "manual"),
		MustParseRule("b", "?a affiliation ?b => ?a 'lectured at' ?b", 0.7, "manual"),
		MustParseRule("c", "?a worksAt ?b => ?a employedBy ?b", 0.8, "manual"),
	}
	e := NewExpander(rules)
	rws := e.Expand(q)
	for i := 1; i < len(rws); i++ {
		if rws[i-1].Weight < rws[i].Weight {
			t.Fatalf("rewrites not in descending weight order: %v then %v", rws[i-1].Weight, rws[i].Weight)
		}
	}
}

func TestExpanderMaxDepth(t *testing.T) {
	q := query.MustParse("?x p0 ?y")
	rules := []*Rule{
		MustParseRule("s1", "?a p0 ?b => ?a p1 ?b", 0.9, "manual"),
		MustParseRule("s2", "?a p1 ?b => ?a p2 ?b", 0.9, "manual"),
		MustParseRule("s3", "?a p2 ?b => ?a p3 ?b", 0.9, "manual"),
	}
	e := NewExpander(rules)
	e.MaxDepth = 1
	rws := e.Expand(q)
	for _, rw := range rws {
		if len(rw.Applied) > 1 {
			t.Fatalf("depth bound violated: %d rules applied", len(rw.Applied))
		}
	}
	if len(rws) != 2 {
		t.Fatalf("rewrites = %d, want original + one relaxation", len(rws))
	}
}

func TestExpanderMinWeightPrunes(t *testing.T) {
	q := query.MustParse("?x p ?y")
	rules := []*Rule{MustParseRule("weak", "?a p ?b => ?a q ?b", 0.01, "manual")}
	e := NewExpander(rules)
	e.MinWeight = 0.05
	if rws := e.Expand(q); len(rws) != 1 {
		t.Fatalf("weak rule not pruned: %d rewrites", len(rws))
	}
}

func TestExpanderMaxRewrites(t *testing.T) {
	q := query.MustParse("?x p ?y")
	var rules []*Rule
	for _, s := range []string{"a", "b", "c", "d", "e"} {
		rules = append(rules, MustParseRule(s, "?a p ?b => ?a "+s+" ?b", 0.9, "manual"))
	}
	e := NewExpander(rules)
	e.MaxRewrites = 3
	if rws := e.Expand(q); len(rws) != 3 {
		t.Fatalf("rewrites = %d, want 3", len(rws))
	}
}

func TestExpanderDeterministic(t *testing.T) {
	q := query.MustParse("?x affiliation ?y . ?y member IvyLeague")
	rules := []*Rule{
		MustParseRule("r3", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y", 0.8, "manual"),
		MustParseRule("r4", "?x affiliation ?y => ?x 'lectured at' ?y", 0.7, "manual"),
	}
	e := NewExpander(rules)
	a := e.Expand(q)
	for round := 0; round < 5; round++ {
		b := NewExpander(rules).Expand(q)
		if len(a) != len(b) {
			t.Fatal("non-deterministic rewrite count")
		}
		for i := range a {
			if a[i].Query.String() != b[i].Query.String() || a[i].Weight != b[i].Weight {
				t.Fatalf("non-deterministic rewrite %d", i)
			}
		}
	}
}

// mineStore builds a store where alignment and inversion weights are known
// exactly.
func mineStore() *store.Store {
	st := store.New(nil, nil)
	// affiliation and 'works at' share 2 of 'works at''s 4 pairs.
	add := func(s, p, o string, tokenP bool) {
		pt := rdf.Resource(p)
		if tokenP {
			pt = rdf.Token(p)
		}
		st.AddFact(rdf.Resource(s), pt, rdf.Resource(o), rdf.SourceKG, 1, rdf.NoProv)
	}
	add("E", "affiliation", "IAS", false)
	add("N", "affiliation", "PU", false)
	add("G", "affiliation", "IAS", false)
	add("E", "works at", "IAS", true)
	add("N", "works at", "PU", true)
	add("A", "works at", "ETH", true)
	add("B", "works at", "ETH", true)
	// hasAdvisor / hasStudent are exact inverses on 2 pairs.
	add("E", "hasAdvisor", "K", false)
	add("M", "hasAdvisor", "L", false)
	add("K", "hasStudent", "E", false)
	add("L", "hasStudent", "M", false)
	st.Freeze()
	return st
}

func findRule(rules []*Rule, id string) *Rule {
	for _, r := range rules {
		if r.ID == id {
			return r
		}
	}
	return nil
}

func TestMineAlignmentWeights(t *testing.T) {
	st := mineStore()
	rules := Mine(st, MiningOptions{MinSupport: 1, MinWeight: 0, IncludeInverse: false})
	// w(affiliation -> 'works at') = |∩| / |args(works at)| = 2/4.
	r := findRule(rules, "mine:affiliation->'works at'")
	if r == nil {
		t.Fatalf("alignment rule missing; got %v", rules)
	}
	if r.Weight != 0.5 {
		t.Errorf("w(affiliation->works at) = %v, want 0.5", r.Weight)
	}
	// w('works at' -> affiliation) = 2/3.
	r2 := findRule(rules, "mine:'works at'->affiliation")
	if r2 == nil {
		t.Fatal("reverse alignment rule missing")
	}
	if want := 2.0 / 3.0; r2.Weight != want {
		t.Errorf("w(works at->affiliation) = %v, want %v", r2.Weight, want)
	}
}

func TestMineInversionRule(t *testing.T) {
	st := mineStore()
	rules := Mine(st, MiningOptions{MinSupport: 2, MinWeight: 0, IncludeInverse: true})
	r := findRule(rules, "inv:hasAdvisor->hasStudent")
	if r == nil {
		t.Fatalf("inversion rule missing; got %v", rules)
	}
	// |args(hasAdvisor) ∩ inv(args(hasStudent))| = 2, |args(hasStudent)| = 2.
	if r.Weight != 1.0 {
		t.Errorf("inversion weight = %v, want 1.0", r.Weight)
	}
	// The rule must actually invert argument order.
	if r.RHS[0].S.Var != "y" || r.RHS[0].O.Var != "x" {
		t.Errorf("inversion RHS = %v", r.RHS[0])
	}
}

func TestMineMinSupport(t *testing.T) {
	st := mineStore()
	rules := Mine(st, MiningOptions{MinSupport: 3, MinWeight: 0, IncludeInverse: true})
	if len(rules) != 0 {
		t.Fatalf("rules above support 3: %v", rules)
	}
}

func TestMineMaxRulesKeepsHighestWeight(t *testing.T) {
	st := mineStore()
	all := Mine(st, MiningOptions{MinSupport: 1, MinWeight: 0, IncludeInverse: true})
	top := Mine(st, MiningOptions{MinSupport: 1, MinWeight: 0, IncludeInverse: true, MaxRules: 2})
	if len(top) != 2 {
		t.Fatalf("MaxRules ignored: %d", len(top))
	}
	if top[0].Weight < all[len(all)-1].Weight {
		t.Fatal("MaxRules did not keep the highest-weight rules")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Weight < all[i].Weight {
			t.Fatal("mined rules not sorted by weight")
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	st := mineStore()
	a := Mine(st, DefaultMiningOptions())
	for i := 0; i < 5; i++ {
		b := Mine(st, DefaultMiningOptions())
		if len(a) != len(b) {
			t.Fatal("non-deterministic rule count")
		}
		for j := range a {
			if a[j].ID != b[j].ID || a[j].Weight != b[j].Weight {
				t.Fatalf("non-deterministic rule %d: %v vs %v", j, a[j], b[j])
			}
		}
	}
}

func TestMineCompositions(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("E"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddKG(rdf.Resource("M"), rdf.Resource("bornIn"), rdf.Resource("Paris"))
	st.AddKG(rdf.Resource("Ulm"), rdf.Resource("locatedIn"), rdf.Resource("Germany"))
	st.AddKG(rdf.Resource("Paris"), rdf.Resource("locatedIn"), rdf.Resource("France"))
	st.Freeze()
	rules := MineCompositions(st, []string{"locatedIn"}, MiningOptions{MinSupport: 2, MinWeight: 0})
	r := findRule(rules, "comp:bornIn/locatedIn")
	if r == nil {
		t.Fatalf("composition rule missing: %v", rules)
	}
	// Both bornIn objects are locatedIn subjects: weight 1.
	if r.Weight != 1.0 {
		t.Errorf("composition weight = %v, want 1", r.Weight)
	}
	if len(r.RHS) != 2 {
		t.Fatalf("composition RHS = %v", r.RHS)
	}
	// Applying it to user A's query produces the Figure 4 rule 1 shape.
	q := query.MustParse("?x bornIn Germany")
	apps := Apply(q, r)
	if len(apps) != 1 {
		t.Fatalf("composition did not apply: %v", apps)
	}
	nq := apps[0].Query
	if len(nq.Patterns) != 2 {
		t.Fatalf("rewritten = %v", nq)
	}
}

func TestMineCompositionsNoContainmentPredicate(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("E"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.Freeze()
	if rules := MineCompositions(st, []string{"locatedIn"}, DefaultMiningOptions()); len(rules) != 0 {
		t.Fatalf("rules without containment predicate: %v", rules)
	}
}

func TestOperators(t *testing.T) {
	st := mineStore()
	ops := []Operator{
		AlignmentOperator{Options: MiningOptions{MinSupport: 1, MinWeight: 0, IncludeInverse: true}},
		CompositionOperator{Options: MiningOptions{MinSupport: 1, MinWeight: 0}},
		ManualOperator{List: []*Rule{MustParseRule("m", "?x p ?y => ?x q ?y", 0.4, "manual")}},
	}
	names := map[string]bool{}
	for _, op := range ops {
		names[op.Name()] = true
		rules, err := op.Rules(st)
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
		for _, r := range rules {
			if err := r.Validate(); err != nil {
				t.Errorf("%s produced invalid rule: %v", op.Name(), err)
			}
		}
	}
	if !names["alignment"] || !names["composition"] || !names["manual"] {
		t.Fatalf("operator names = %v", names)
	}
}

func TestManualOperatorRejectsInvalidRule(t *testing.T) {
	op := ManualOperator{List: []*Rule{{ID: "bad", Weight: 2}}}
	if _, err := op.Rules(nil); err == nil {
		t.Fatal("invalid manual rule accepted")
	}
}
