package relax

import (
	"context"
	"errors"
	"testing"

	"trinit/internal/query"
)

func expandRules(t *testing.T) []*Rule {
	t.Helper()
	specs := []struct{ id, text string }{
		{"inv", "?x hasAdvisor ?y => ?y hasStudent ?x"},
		{"tok", "?x affiliation ?y => ?x 'worked at' ?y"},
		{"comp", "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y"},
	}
	rules := make([]*Rule, len(specs))
	for i, s := range specs {
		rules[i] = MustParseRule(s.id, s.text, 0.8, "manual")
	}
	return rules
}

// ExpandContext with a live context is Expand.
func TestExpandContextMatchesExpand(t *testing.T) {
	e := NewExpander(expandRules(t))
	q := query.MustParse("AlbertEinstein affiliation ?u . ?u hasAdvisor ?v")
	plain := e.Expand(q)
	scoped, err := e.ExpandContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(scoped) {
		t.Fatalf("%d vs %d rewrites", len(plain), len(scoped))
	}
	for i := range plain {
		if plain[i].Query.String() != scoped[i].Query.String() || plain[i].Weight != scoped[i].Weight {
			t.Fatalf("rewrite %d differs: %s (%v) vs %s (%v)", i,
				plain[i].Query, plain[i].Weight, scoped[i].Query, scoped[i].Weight)
		}
	}
}

// A cancelled expansion surfaces ctx.Err() and a weight-ordered prefix
// of the rewrite space.
func TestExpandContextCanceled(t *testing.T) {
	e := NewExpander(expandRules(t))
	q := query.MustParse("AlbertEinstein affiliation ?u . ?u hasAdvisor ?v")
	full := e.Expand(q)
	if len(full) < 3 {
		t.Fatalf("rewrite space too small for the test: %d", len(full))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := e.ExpandContext(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 0 {
		t.Fatalf("pre-cancelled expansion returned %d rewrites", len(out))
	}
}
