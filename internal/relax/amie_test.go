package relax

import (
	"strings"
	"testing"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
)

// hornStore encodes a KG where livesIn(x,y) is (mostly) explained by
// bornIn(x,z) ∧ locatedIn(z,y).
func hornStore() *store.Store {
	st := store.New(nil, nil)
	add := func(s, p, o string) {
		st.AddKG(rdf.Resource(s), rdf.Resource(p), rdf.Resource(o))
	}
	add("A", "bornIn", "Ulm")
	add("B", "bornIn", "Ulm")
	add("C", "bornIn", "Paris")
	add("D", "bornIn", "Paris")
	add("Ulm", "locatedIn", "Germany")
	add("Paris", "locatedIn", "France")
	// livesIn holds for A, B, C (chain-consistent) but not for D, whose
	// livesIn fact is elsewhere.
	add("A", "livesIn", "Germany")
	add("B", "livesIn", "Germany")
	add("C", "livesIn", "France")
	add("D", "livesIn", "Spain")
	st.Freeze()
	return st
}

func TestMineHornRulesFindsChain(t *testing.T) {
	st := hornStore()
	rules := MineHornRules(st, HornOptions{MinSupport: 2, MinConfidence: 0.2})
	r := findRule(rules, "horn:livesIn<=bornIn.locatedIn")
	if r == nil {
		t.Fatalf("chain rule missing; got %v", rules)
	}
	// Chain pairs: (A,Germany),(B,Germany),(C,France),(D,France).
	// All four x's have some livesIn fact, so PCA denominator = 4;
	// support = 3 (A, B, C).
	if want := 0.75; r.Weight != want {
		t.Errorf("PCA confidence = %v, want %v", r.Weight, want)
	}
	if len(r.RHS) != 2 {
		t.Fatalf("RHS = %v", r.RHS)
	}
	// The rule must actually relax a livesIn query into the chain.
	q := query.MustParse("?p livesIn Germany")
	apps := Apply(q, r)
	if len(apps) != 1 {
		t.Fatalf("rule did not apply: %v", apps)
	}
}

func TestMineHornRulesSupportThreshold(t *testing.T) {
	st := hornStore()
	rules := MineHornRules(st, HornOptions{MinSupport: 4, MinConfidence: 0})
	if findRule(rules, "horn:livesIn<=bornIn.locatedIn") != nil {
		t.Fatal("rule with support 3 survived MinSupport 4")
	}
}

func TestMineHornRulesConfidenceThreshold(t *testing.T) {
	st := hornStore()
	rules := MineHornRules(st, HornOptions{MinSupport: 1, MinConfidence: 0.9})
	if findRule(rules, "horn:livesIn<=bornIn.locatedIn") != nil {
		t.Fatal("0.75-confidence rule survived MinConfidence 0.9")
	}
}

func TestMineHornRulesSkipsFullyDegenerate(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("A"), rdf.Resource("p"), rdf.Resource("B"))
	st.AddKG(rdf.Resource("B"), rdf.Resource("p"), rdf.Resource("C"))
	st.AddKG(rdf.Resource("A"), rdf.Resource("p"), rdf.Resource("C"))
	st.Freeze()
	rules := MineHornRules(st, HornOptions{MinSupport: 1, MinConfidence: 0})
	for _, r := range rules {
		if strings.Contains(r.ID, "horn:p<=p.p") {
			t.Fatalf("fully degenerate rule emitted: %v", r)
		}
	}
}

func TestMineHornRulesMaxPredicateTriples(t *testing.T) {
	st := hornStore()
	rules := MineHornRules(st, HornOptions{MinSupport: 1, MinConfidence: 0, MaxPredicateTriples: 1})
	if len(rules) != 0 {
		t.Fatalf("size bound ignored: %v", rules)
	}
}

func TestHornOperator(t *testing.T) {
	st := hornStore()
	op := HornOperator{}
	rules, err := op.Rules(st)
	if err != nil {
		t.Fatal(err)
	}
	if op.Name() != "horn" {
		t.Errorf("name = %q", op.Name())
	}
	if findRule(rules, "horn:livesIn<=bornIn.locatedIn") == nil {
		t.Fatalf("operator missed the chain rule: %v", rules)
	}
}

func paraStore() *store.Store {
	st := store.New(nil, nil)
	st.AddFact(rdf.Resource("A"), rdf.Token("worked at"), rdf.Resource("X"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.AddFact(rdf.Resource("B"), rdf.Token("was employed by"), rdf.Resource("Y"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.AddFact(rdf.Resource("C"), rdf.Token("collected stamps with"), rdf.Resource("D"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.Freeze()
	return st
}

func TestParaphraseOperator(t *testing.T) {
	st := paraStore()
	op := ParaphraseOperator{}
	rules, err := op.Rules(st)
	if err != nil {
		t.Fatal(err)
	}
	if op.Name() != "paraphrase" {
		t.Errorf("name = %q", op.Name())
	}
	// 'worked at' and 'was employed by' are in the same builtin cluster
	// and both occur as predicates: two directed rules.
	var found int
	for _, r := range rules {
		if strings.Contains(r.ID, "worked at") && strings.Contains(r.ID, "was employed by") {
			found++
			if r.Weight != 0.8 {
				t.Errorf("weight = %v", r.Weight)
			}
		}
		if strings.Contains(r.ID, "collected stamps") {
			t.Errorf("out-of-repository predicate got a rule: %v", r)
		}
	}
	if found != 2 {
		t.Fatalf("found %d worked-at/employed-by rules, want 2 (both directions); rules: %v", found, rules)
	}
}

func TestParaphraseOperatorCustomClusters(t *testing.T) {
	st := paraStore()
	op := ParaphraseOperator{
		Clusters: [][]string{{"collected stamps with", "worked at"}},
		Weight:   0.5,
	}
	rules, err := op.Rules(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	if rules[0].Weight != 0.5 {
		t.Errorf("custom weight ignored: %v", rules[0].Weight)
	}
}

func TestRelatednessOperator(t *testing.T) {
	st := store.New(nil, nil)
	st.AddKG(rdf.Resource("A"), rdf.Resource("bornIn"), rdf.Resource("Ulm"))
	st.AddFact(rdf.Resource("B"), rdf.Token("was born in"), rdf.Resource("Paris"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.AddFact(rdf.Resource("C"), rdf.Token("jousted near"), rdf.Resource("Lyon"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.Freeze()
	op := RelatednessOperator{MinSim: 0.5}
	rules, err := op.Rules(st)
	if err != nil {
		t.Fatal(err)
	}
	if op.Name() != "relatedness" {
		t.Errorf("name = %q", op.Name())
	}
	// bornIn (camel-split "born in") relates to 'was born in'.
	found := false
	for _, r := range rules {
		if r.ID == "rel:bornIn->'was born in'" {
			found = true
			if r.Weight < 0.5 || r.Weight > 1 {
				t.Errorf("weight = %v", r.Weight)
			}
		}
		if strings.Contains(r.ID, "jousted") {
			t.Errorf("unrelated predicate got a rule: %v", r)
		}
	}
	if !found {
		t.Fatalf("bornIn <-> 'was born in' relatedness rule missing: %v", rules)
	}
	// MaxRules cap.
	capped, _ := RelatednessOperator{MinSim: 0.1, MaxRules: 1}.Rules(st)
	if len(capped) > 1 {
		t.Fatalf("MaxRules ignored: %v", capped)
	}
}

func TestRelatednessBridgesUserBWithoutManualRule(t *testing.T) {
	// End to end: with a relatedness rule mined from labels alone, the
	// query 'X hasAdvisor ?y' can reach 'was advised by' XKG facts.
	st := store.New(nil, nil)
	st.AddFact(rdf.Resource("AlbertEinstein"), rdf.Token("was advised by"), rdf.Resource("AlfredKleiner"), rdf.SourceXKG, 0.8, rdf.NoProv)
	st.AddKG(rdf.Resource("AlbertEinstein"), rdf.Resource("hasAdvisor2"), rdf.Resource("Nobody"))
	st.Freeze()
	// Note: hasAdvisor must occur as a predicate somewhere for the
	// label-based operator to see it; here we use the related spelling.
	op := RelatednessOperator{MinSim: 0.3}
	rules, err := op.Rules(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no relatedness rules")
	}
}
