package relax

import (
	"fmt"
	"sort"

	"trinit/internal/query"
	"trinit/internal/rdf"
	"trinit/internal/store"
	"trinit/internal/text"
)

// ParaphraseOperator generates relaxation rules from a paraphrase
// repository: clusters of relation phrases known to express the same
// relation (§3 cites PATTY and Biperpedia as sources of such clusters).
// For every pair of cluster members that both occur as predicates in the
// store, it emits rewrite rules in both directions.
type ParaphraseOperator struct {
	// Clusters are groups of interchangeable relation phrases. Empty
	// uses BuiltinParaphrases.
	Clusters [][]string
	// Weight is the rule weight (default 0.8). Paraphrase repositories
	// assert near-synonymy, so a single high weight is appropriate.
	Weight float64
	// MinMatch is the label-similarity needed to consider a store
	// predicate an occurrence of a cluster phrase (default 0.75).
	MinMatch float64
}

// BuiltinParaphrases is a small PATTY-style repository covering the
// relation families of the paper's examples and the synthetic world.
var BuiltinParaphrases = [][]string{
	{"worked at", "was employed by", "worked for", "joined", "taught at", "lectured at"},
	{"was born in", "born in", "is a native of", "grew up in", "was raised in"},
	{"studied under", "was a student of", "was advised by"},
	{"advised", "supervised", "mentored", "was the advisor of"},
	{"won", "received", "was awarded", "earned"},
	{"located in", "situated in", "based in", "housed in"},
	{"died in", "passed away in"},
}

// Name implements Operator.
func (ParaphraseOperator) Name() string { return "paraphrase" }

// Rules implements Operator. The store must be frozen.
func (op ParaphraseOperator) Rules(st *store.Store) ([]*Rule, error) {
	clusters := op.Clusters
	if len(clusters) == 0 {
		clusters = BuiltinParaphrases
	}
	weight := op.Weight
	if weight <= 0 {
		weight = 0.8
	}
	minMatch := op.MinMatch
	if minMatch <= 0 {
		minMatch = 0.75
	}

	// Store predicates with their normalised labels.
	type pred struct {
		id    rdf.TermID
		label string
	}
	var preds []pred
	for _, ps := range st.Predicates() {
		term := st.Dict().Term(ps.Pred)
		preds = append(preds, pred{id: ps.Pred, label: term.Text})
	}

	var rules []*Rule
	seen := make(map[[2]rdf.TermID]bool)
	for _, cluster := range clusters {
		// Resolve each phrase to matching store predicates.
		var members []rdf.TermID
		memberSet := make(map[rdf.TermID]bool)
		for _, phrase := range cluster {
			for _, p := range preds {
				if memberSet[p.id] {
					continue
				}
				if text.Similarity(phrase, p.label) >= minMatch {
					members = append(members, p.id)
					memberSet[p.id] = true
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, a := range members {
			for _, b := range members {
				if a == b || seen[[2]rdf.TermID{a, b}] {
					continue
				}
				seen[[2]rdf.TermID{a, b}] = true
				at, bt := st.Dict().Term(a), st.Dict().Term(b)
				x, y := query.Variable("x"), query.Variable("y")
				rules = append(rules, &Rule{
					ID:     fmt.Sprintf("para:%s->%s", at, bt),
					LHS:    []query.Pattern{{S: x, P: query.Bound(at), O: y}},
					RHS:    []query.Pattern{{S: x, P: query.Bound(bt), O: y}},
					Weight: weight,
					Origin: "paraphrase",
				})
			}
		}
	}
	sortRules(rules)
	return rules, nil
}

// RelatednessOperator generates rules from label similarity alone (§3
// cites explicit semantic relatedness measures such as ESA). A rule
// p1 → p2 is emitted when the predicates' surface labels are similar,
// weighted by that similarity; camel-case splitting and stemming make KG
// predicates comparable to token phrases, so 'was advised by' relates to
// hasAdvisor without any argument overlap.
type RelatednessOperator struct {
	// MinSim is the minimum label similarity (default 0.5).
	MinSim float64
	// MaxRules caps the output (0 = unbounded).
	MaxRules int
}

// Name implements Operator.
func (RelatednessOperator) Name() string { return "relatedness" }

// Rules implements Operator. The store must be frozen.
func (op RelatednessOperator) Rules(st *store.Store) ([]*Rule, error) {
	minSim := op.MinSim
	if minSim <= 0 {
		minSim = 0.5
	}
	stats := st.Predicates()
	var rules []*Rule
	for _, a := range stats {
		at := st.Dict().Term(a.Pred)
		for _, b := range stats {
			if a.Pred == b.Pred {
				continue
			}
			bt := st.Dict().Term(b.Pred)
			sim := text.StemSimilarity(at.Text, bt.Text)
			if sim < minSim {
				continue
			}
			x, y := query.Variable("x"), query.Variable("y")
			rules = append(rules, &Rule{
				ID:     fmt.Sprintf("rel:%s->%s", at, bt),
				LHS:    []query.Pattern{{S: x, P: query.Bound(at), O: y}},
				RHS:    []query.Pattern{{S: x, P: query.Bound(bt), O: y}},
				Weight: sim,
				Origin: "relatedness",
			})
		}
	}
	sortRules(rules)
	if op.MaxRules > 0 && len(rules) > op.MaxRules {
		rules = rules[:op.MaxRules]
	}
	return rules, nil
}
